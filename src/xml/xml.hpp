// Minimal XML DOM, written from scratch as a substitute for TinyXML (which
// the paper uses to load unzipped Simulink .slx files).
//
// Supported subset: elements, attributes, character data, comments (skipped),
// XML declarations (skipped), CDATA sections, and the five predefined
// entities. This covers everything the CFTCG model format needs while staying
// dependency-free.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace cftcg::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// One XML element. Children are owned; text content is the concatenation of
/// all character data directly inside the element.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& text() const { return text_; }
  /// 1-based source line of the start tag; 0 for elements built in memory.
  [[nodiscard]] std::size_t line() const { return line_; }
  void set_line(std::size_t line) { line_ = line; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_ += text; }

  // -- Attributes ------------------------------------------------------
  void SetAttr(std::string key, std::string value);
  [[nodiscard]] bool HasAttr(std::string_view key) const;
  /// Returns the attribute value or the fallback if absent.
  [[nodiscard]] std::string Attr(std::string_view key, std::string_view fallback = "") const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- Children --------------------------------------------------------
  Element& AddChild(std::string name);
  void AdoptChild(ElementPtr child) { children_.push_back(std::move(child)); }
  [[nodiscard]] const std::vector<ElementPtr>& children() const { return children_; }
  /// First child with the given element name, or nullptr.
  [[nodiscard]] const Element* FirstChild(std::string_view name) const;
  [[nodiscard]] Element* FirstChild(std::string_view name);
  /// All children with the given element name.
  [[nodiscard]] std::vector<const Element*> Children(std::string_view name) const;

 private:
  std::string name_;
  std::string text_;
  std::size_t line_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<ElementPtr> children_;
};

/// A parsed document: exactly one root element.
struct Document {
  ElementPtr root;
};

/// Parses an XML document from text. Errors carry a line number.
Result<Document> Parse(std::string_view text);

/// Serializes with 2-space indentation. Inverse of Parse for documents the
/// writer produced.
std::string Write(const Element& root);

/// Convenience file I/O.
Result<Document> ParseFile(const std::string& path);
Status WriteFile(const Element& root, const std::string& path);

}  // namespace cftcg::xml
