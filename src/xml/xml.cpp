#include "xml/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/atomic_file.hpp"
#include "support/strings.hpp"

namespace cftcg::xml {

void Element::SetAttr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

bool Element::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

std::string Element::Attr(std::string_view key, std::string_view fallback) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

Element& Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

const Element* Element::FirstChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::FirstChild(std::string_view name) {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::Children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Document> Run() {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipWhitespaceAndComments();
    if (pos_ != text_.size()) return MakeError("trailing content after root element");
    Document doc;
    doc.root = root.take();
    return doc;
  }

 private:
  Status MakeError(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::Error(StrFormat("xml parse error at line %zu: %s", line, what.c_str()));
  }
  Result<ElementPtr> Fail(const std::string& what) const { return MakeError(what); }

  // 1-based line of the current position. The scan cursor only moves forward,
  // so repeated calls stay O(document) overall.
  std::size_t CurrentLine() {
    while (scan_pos_ < pos_ && scan_pos_ < text_.size()) {
      if (text_[scan_pos_] == '\n') ++scan_line_;
      ++scan_pos_;
    }
    return scan_line_;
  }

  [[nodiscard]] bool AtEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const { return text_[pos_]; }
  [[nodiscard]] bool LookingAt(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  bool SkipComment() {
    if (!LookingAt("<!--")) return false;
    const std::size_t end = text_.find("-->", pos_ + 4);
    pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
    return true;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (!SkipComment()) return;
    }
  }

  void SkipProlog() {
    for (;;) {
      SkipWhitespaceAndComments();
      if (LookingAt("<?")) {
        const std::size_t end = text_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (LookingAt("<!DOCTYPE")) {
        const std::size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string ParseName() {
    const std::size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // Decodes the predefined entities plus decimal/hex character references.
  std::string DecodeEntities(std::string_view raw) const {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out += raw[i];
        continue;
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") out += '&';
      else if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "quot") out += '"';
      else if (ent == "apos") out += '\'';
      else if (!ent.empty() && ent[0] == '#') {
        long long code = 0;
        const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
        const std::string digits(ent.substr(hex ? 2 : 1));
        char* end = nullptr;
        code = std::strtoll(digits.c_str(), &end, hex ? 16 : 10);
        if (end == digits.c_str() + digits.size() && code > 0 && code < 128) {
          out += static_cast<char>(code);
        }
      } else {
        out += raw.substr(i, semi - i + 1);  // unknown entity: keep verbatim
      }
      i = semi;
    }
    return out;
  }

  Result<ElementPtr> ParseElement() {
    SkipWhitespaceAndComments();
    if (AtEnd() || Peek() != '<') return Fail("expected '<'");
    const std::size_t tag_line = CurrentLine();
    ++pos_;
    std::string name = ParseName();
    if (name.empty()) return Fail("expected element name");
    auto elem = std::make_unique<Element>(name);
    elem->set_line(tag_line);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated start tag for <" + name + ">");
      if (LookingAt("/>")) {
        pos_ += 2;
        return elem;
      }
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      std::string key = ParseName();
      if (key.empty()) return Fail("expected attribute name in <" + name + ">");
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Fail("expected '=' after attribute " + key);
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Fail("expected quoted value for attribute " + key);
      }
      const char quote = Peek();
      ++pos_;
      const std::size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Fail("unterminated attribute value for " + key);
      elem->SetAttr(std::move(key), DecodeEntities(text_.substr(start, pos_ - start)));
      ++pos_;
    }

    // Content.
    for (;;) {
      if (AtEnd()) return Fail("unterminated element <" + name + ">");
      if (LookingAt("<![CDATA[")) {
        const std::size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Fail("unterminated CDATA");
        elem->append_text(text_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
      } else if (LookingAt("<!--")) {
        SkipComment();
      } else if (LookingAt("</")) {
        pos_ += 2;
        const std::string close = ParseName();
        if (close != name) return Fail("mismatched close tag </" + close + "> for <" + name + ">");
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Fail("expected '>' in close tag");
        ++pos_;
        return elem;
      } else if (Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        elem->AdoptChild(child.take());
      } else {
        const std::size_t start = pos_;
        while (!AtEnd() && Peek() != '<') ++pos_;
        const std::string decoded = DecodeEntities(text_.substr(start, pos_ - start));
        // Character data that is pure whitespace between child elements is
        // layout, not content.
        if (!TrimString(decoded).empty()) elem->append_text(decoded);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t scan_pos_ = 0;
  std::size_t scan_line_ = 1;
};

void WriteElement(const Element& e, int depth, std::string& out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  out += '<';
  out += e.name();
  for (const auto& [k, v] : e.attrs()) {
    out += ' ';
    out += k;
    out += "=\"";
    out += XmlEscape(v);
    out += '"';
  }
  const bool has_children = !e.children().empty();
  const bool has_text = !e.text().empty();
  if (!has_children && !has_text) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (has_text) out += XmlEscape(e.text());
  if (has_children) {
    out += '\n';
    for (const auto& c : e.children()) WriteElement(*c, depth + 1, out);
    out += indent;
  }
  out += "</";
  out += e.name();
  out += ">\n";
}

}  // namespace

Result<Document> Parse(std::string_view text) { return Parser(text).Run(); }

std::string Write(const Element& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  WriteElement(root, 0, out);
  return out;
}

Result<Document> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

Status WriteFile(const Element& root, const std::string& path) {
  // Atomic temp+rename: an interrupted save never leaves a torn .cmx.
  return support::WriteFileAtomic(path, Write(root));
}

}  // namespace cftcg::xml
