#include "analysis/depgraph.hpp"

#include <algorithm>
#include <deque>

namespace cftcg::analysis {

namespace {

using ir::Block;
using ir::BlockKind;

/// True for blocks whose output at step t depends on inputs of steps < t.
bool IsStateful(BlockKind k) {
  switch (k) {
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory:
    case BlockKind::kDiscreteIntegrator:
    case BlockKind::kCounterLimited:
    case BlockKind::kRateLimiter:
    case BlockKind::kRelay:
    case BlockKind::kEdgeDetector:
    case BlockKind::kChart:
    case BlockKind::kEnabledSubsystem:  // holds outputs while disabled
      return true;
    default:
      return false;
  }
}

/// Edge label for a wire into input `port` of a block of kind `k`. Purely a
/// refinement — the closure follows every edge regardless of kind.
DepEdgeKind ClassifyInput(BlockKind k, int port) {
  switch (k) {
    case BlockKind::kSwitch:
      return port == 1 ? DepEdgeKind::kControl : DepEdgeKind::kData;
    case BlockKind::kMultiportSwitch:
    case BlockKind::kActionIf:
    case BlockKind::kActionSwitch:
    case BlockKind::kEnabledSubsystem:
    case BlockKind::kCounterLimited:
      return port == 0 ? DepEdgeKind::kControl : DepEdgeKind::kData;
    case BlockKind::kChart:
      return DepEdgeKind::kControl;  // inputs steer guards and actions
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory:
    case BlockKind::kDiscreteIntegrator:
    case BlockKind::kRateLimiter:
    case BlockKind::kRelay:
    case BlockKind::kEdgeDetector:
      return DepEdgeKind::kState;  // reaches the output one step later
    default:
      return DepEdgeKind::kData;
  }
}

/// True for the gated compounds whose port-0 driver decides whether the
/// contained sub-tree executes at all.
bool IsGatedCompound(BlockKind k) {
  return k == BlockKind::kActionIf || k == BlockKind::kActionSwitch ||
         k == BlockKind::kEnabledSubsystem;
}

}  // namespace

std::string_view DepEdgeKindName(DepEdgeKind k) {
  switch (k) {
    case DepEdgeKind::kData: return "data";
    case DepEdgeKind::kControl: return "control";
    case DepEdgeKind::kState: return "state";
  }
  return "?";
}

void DepGraph::AddEdge(const DepNode& to, DepNode from, DepEdgeKind kind) {
  if (from.block == ir::kNoBlock) return;
  auto& edges = in_[to];
  const DepEdge e{from, kind};
  if (std::find(edges.begin(), edges.end(), e) != edges.end()) return;
  edges.push_back(e);
  ++num_edges_;
}

void DepGraph::GateSubTree(const ir::Model& sub, const DepNode& gate) {
  for (const Block& b : sub.blocks()) {
    AddEdge(DepNode{&sub, b.id()}, gate, DepEdgeKind::kControl);
    for (const auto& nested : b.subs()) GateSubTree(*nested, gate);
  }
}

void DepGraph::AddSystem(const ir::Model& sys, const std::string& path) {
  sys_index_.emplace(&sys, static_cast<int>(sys_index_.size()));
  sys_path_.emplace(&sys, path);

  for (const Block& b : sys.blocks()) {
    const DepNode n{&sys, b.id()};
    nodes_.push_back(n);
    in_.try_emplace(n);  // every node gets an (possibly empty) edge list
    if (IsStateful(b.kind())) AddEdge(n, n, DepEdgeKind::kState);
  }

  // Every wire is a dependence edge; the kind only labels it.
  for (const ir::Wire& w : sys.wires()) {
    const Block& dst = sys.block(w.dst_block);
    AddEdge(DepNode{&sys, w.dst_block}, DepNode{&sys, w.src.block},
            ClassifyInput(dst.kind(), w.dst_port));
  }

  // Hierarchy: compound inputs seed sub-model inports, sub-model outports
  // feed the compound's outputs, and gating drivers control the sub-tree.
  for (const Block& b : sys.blocks()) {
    if (b.subs().empty()) continue;
    const DepNode compound{&sys, b.id()};
    // Data inputs sit after the control port on gated compounds (the same
    // offset the abstract interpreter's SeedSub uses).
    const int offset = b.kind() == BlockKind::kSubsystem ? 0 : 1;
    const ir::Wire* gate =
        IsGatedCompound(b.kind()) ? sys.DriverOf(b.id(), 0) : nullptr;
    for (const auto& sub : b.subs()) {
      const auto inports = sub->Inports();
      for (std::size_t k = 0; k < inports.size(); ++k) {
        const ir::Wire* w = sys.DriverOf(b.id(), offset + static_cast<int>(k));
        if (w == nullptr) continue;
        AddEdge(DepNode{sub.get(), inports[k]}, DepNode{&sys, w->src.block},
                DepEdgeKind::kData);
      }
      for (ir::BlockId op : sub->Outports()) {
        AddEdge(compound, DepNode{sub.get(), op}, DepEdgeKind::kData);
      }
      if (gate != nullptr) {
        GateSubTree(*sub, DepNode{&sys, gate->src.block});
      }
      AddSystem(*sub, path + "/" + b.name());
    }
  }
}

DepGraph DepGraph::Build(const sched::ScheduledModel& sm) {
  DepGraph g;
  g.AddSystem(*sm.root, sm.root->name());

  // Root inport -> tuple field index (Inports() is port-index order, which
  // is exactly the fuzz driver's field order).
  const auto inports = sm.root->Inports();
  for (std::size_t i = 0; i < inports.size(); ++i) {
    g.inport_field_[DepNode{sm.root, inports[i]}] = static_cast<int>(i);
  }

  // Deterministic node and edge order: (system pre-order index, block id).
  auto order = [&g](const DepNode& a, const DepNode& b) {
    return g.OrderKey(a) < g.OrderKey(b);
  };
  std::sort(g.nodes_.begin(), g.nodes_.end(), order);
  for (auto& [node, edges] : g.in_) {
    std::sort(edges.begin(), edges.end(), [&](const DepEdge& a, const DepEdge& b) {
      if (a.from != b.from) return order(a.from, b.from);
      return a.kind < b.kind;
    });
  }
  return g;
}

const std::vector<DepEdge>& DepGraph::InEdges(const DepNode& n) const {
  static const std::vector<DepEdge> kNone;
  auto it = in_.find(n);
  return it == in_.end() ? kNone : it->second;
}

std::map<DepNode, DepEdgeKind> DepGraph::BackwardClosure(const DepNode& start) const {
  std::map<DepNode, DepEdgeKind> cone;
  std::deque<DepNode> queue;
  cone.emplace(start, DepEdgeKind::kData);
  queue.push_back(start);
  while (!queue.empty()) {
    const DepNode n = queue.front();
    queue.pop_front();
    for (const DepEdge& e : InEdges(n)) {
      if (cone.emplace(e.from, e.kind).second) queue.push_back(e.from);
    }
  }
  return cone;
}

int DepGraph::SystemIndex(const ir::Model* sys) const {
  auto it = sys_index_.find(sys);
  return it == sys_index_.end() ? -1 : it->second;
}

std::string DepGraph::NodeName(const DepNode& n) const {
  auto it = sys_path_.find(n.system);
  const std::string base = it == sys_path_.end() ? "?" : it->second;
  if (n.system == nullptr || n.block == ir::kNoBlock) return base + "/?";
  return base + "/" + n.system->block(n.block).name();
}

int DepGraph::InportField(const DepNode& n) const {
  auto it = inport_field_.find(n);
  return it == inport_field_.end() ? -1 : it->second;
}

std::vector<int> DepGraph::InportFieldsIn(
    const std::map<DepNode, DepEdgeKind>& cone) const {
  std::vector<int> fields;
  for (const auto& [node, kind] : cone) {
    const int f = InportField(node);
    if (f >= 0) fields.push_back(f);
  }
  std::sort(fields.begin(), fields.end());
  return fields;
}

}  // namespace cftcg::analysis
