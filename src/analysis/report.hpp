// Renderers for `cftcg analyze`: human-readable text and a machine-readable
// JSON document (parsed back by tests and downstream tooling via obs JSON).
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "sched/schedule.hpp"

namespace cftcg::analysis {

/// Human-readable name for every fuzz slot, in slot order: decision outcomes
/// first, then condition polarities (mirrors CoverageSpec's slot layout).
/// Shared by the analysis report and the slice report.
std::vector<std::string> SlotNames(const coverage::CoverageSpec& spec);

/// Multi-line human-readable report: lint diagnostics grouped by severity,
/// then every justified objective with its verdict and reason, then the
/// harvested per-inport search ranges.
std::string FormatAnalysisReport(const sched::ScheduledModel& sm, const ModelAnalysis& ma);

/// One JSON object:
///   {"model": ..., "converged": ..., "iterations": ...,
///    "lints": [{"severity","check","block","message"}...],
///    "objectives": [{"slot","name","verdict","reason"}...],   // justified only
///    "mcdc": [{"condition","name","verdict","reason"}...],    // justified only
///    "inport_ranges": [{"lo","hi"}...]}                        // null lo/hi = unbounded
std::string AnalysisReportJson(const sched::ScheduledModel& sm, const ModelAnalysis& ma);

}  // namespace cftcg::analysis
