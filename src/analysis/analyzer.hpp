// Static model analyzer: forward interval/constant propagation over the
// dataflow graph of a scheduled model.
//
// The analyzer runs an *abstract* version of the simulation interpreter:
// every signal carries an interval hull (plus a may-be-NaN flag — raw fuzz
// bytes can encode NaN, and NaN compares false against everything), every
// stateful block carries an abstract state, and the model is stepped until
// the state reaches a fixpoint (classic widening after a few iterations
// guarantees termination). On the fixpoint — an over-approximation of every
// concrete reachable state at any iteration — one recording pass derives:
//
//   * a per-objective verdict for every slot in coverage::Spec
//     (kProvedUnreachable / kTriviallyConstant / kUnknown), the SLDV-style
//     "justified objective" input to coverage::MetricReport;
//   * model lint diagnostics (unconnected ports, dead blocks,
//     constant-conditioned switches, always/never-saturating saturations,
//     possible division by zero, narrowing dtype conversions);
//   * heuristic per-inport "interesting" ranges harvested from the
//     thresholds each inport can reach (seeding the goal solver's search
//     ranges and the fuzzer's boundary-value corpus).
//
// Soundness contract: a verdict of kProvedUnreachable must never be emitted
// for an objective any concrete execution can hit (tests/analysis_test.cpp
// fuzzes every bench model against this). The analyzer defaults to
// kUnknown whenever it cannot model a behavior precisely, and emits no
// unreachability verdicts at all if the fixpoint iteration fails to
// converge.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "coverage/justify.hpp"
#include "ir/dtype.hpp"
#include "sched/schedule.hpp"
#include "sldv/interval.hpp"

namespace cftcg::analysis {

/// Abstract signal value: interval hull of the possible values plus a flag
/// for "could also be NaN" (floats only; integer signals never carry NaN).
/// `type` mirrors the interpreter's IVal::type so casts and comparisons can
/// reproduce the runtime's promotion/wrapping behavior.
struct AbsVal {
  sldv::Interval iv;
  bool maybe_nan = false;
  ir::DType type = ir::DType::kDouble;

  AbsVal() = default;
  explicit AbsVal(sldv::Interval i, bool nan = false, ir::DType t = ir::DType::kDouble)
      : iv(i), maybe_nan(nan), type(t) {}
  static AbsVal Point(double v, ir::DType t = ir::DType::kDouble) {
    return AbsVal(sldv::Interval::Point(v), false, t);
  }
  static AbsVal Top() { return AbsVal(sldv::Interval::Whole(), true); }

  /// Interval hull of both operands. When the operands' dtypes disagree the
  /// result carries the usual-arithmetic promotion of the two (keeping one
  /// side's type silently would later clamp a float hull to an integer
  /// range — unsound). An integer-typed union can never be NaN.
  [[nodiscard]] AbsVal Union(const AbsVal& o) const {
    const ir::DType t = type == o.type ? type : ir::PromoteDTypes(type, o.type);
    const bool nan = (maybe_nan || o.maybe_nan) && ir::DTypeIsFloat(t);
    return AbsVal(iv.Union(o.iv), nan, t);
  }
  bool operator==(const AbsVal&) const = default;
};

enum class LintSeverity { kInfo, kWarning, kError };
std::string_view LintSeverityName(LintSeverity s);

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  std::string check;    // stable kebab-case id, e.g. "constant-switch"
  std::string block;    // hierarchical block path ("ctrl/Switch1")
  std::string message;  // human-readable detail with the offending interval
};

struct ModelAnalysis {
  /// Fixpoint interval per signal, keyed like the interpreter's value map:
  /// (owning system, block id, output port).
  std::map<std::tuple<const ir::Model*, ir::BlockId, int>, AbsVal> signals;

  /// Heuristic search range per root inport (port order): the hull of the
  /// comparison thresholds / saturation bounds / lookup breakpoints the
  /// inport feeds, padded outward and clipped to the dtype range. Never
  /// used as a soundness fact — only to focus search.
  std::vector<sldv::Interval> inport_ranges;

  coverage::JustificationSet justifications;
  std::vector<LintDiagnostic> lints;

  int iterations = 0;     // abstract model steps until the state fixpoint
  bool converged = false;  // false => no unreachability verdicts were emitted
};

/// Tuning and restriction knobs for AnalyzeScheduledModel.
struct AnalyzeOptions {
  /// When non-null, abstract execution models only the blocks in this set
  /// (keyed (owning system, block id)); everything else stays unevaluated,
  /// so its signals read as Top. Verdicts from a restricted run are sound
  /// ONLY for objectives whose full dependence cone (analysis/depgraph.hpp
  /// backward closure) is inside the set — out-of-cone objectives look
  /// never-evaluated and must not be merged. Not owned; must outlive the
  /// call.
  const std::set<std::pair<const ir::Model*, ir::BlockId>>* restrict_to = nullptr;
  /// Fixpoint iterations before interval widening kicks in. Slice-restricted
  /// reruns delay widening for precision (small cones converge without it).
  int widen_after = 4;
  /// Iteration cap; non-convergence means no verdicts (soundness contract).
  int max_iters = 64;
};

/// Runs the analyzer. Deterministic, read-only, and total: any model that
/// scheduled successfully can be analyzed.
ModelAnalysis AnalyzeScheduledModel(const sched::ScheduledModel& sm);

/// Same, with explicit options (restricted cones, delayed widening).
ModelAnalysis AnalyzeScheduledModel(const sched::ScheduledModel& sm,
                                    const AnalyzeOptions& options);

}  // namespace cftcg::analysis
