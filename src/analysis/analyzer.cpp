#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/strings.hpp"

namespace cftcg::analysis {

std::string_view LintSeverityName(LintSeverity s) {
  switch (s) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "warning";
}

namespace {

using blocks::mex::Expr;
using blocks::mex::ExprKind;
using blocks::mex::IfBranch;
using blocks::mex::Stmt;
using blocks::mex::StmtKind;
using ir::Block;
using ir::BlockKind;
using ir::DType;
using ir::Model;
using sldv::Interval;

// ---------------------------------------------------------------------------
// Tri-state interval comparisons: 1 = always true, 0 = never true, -1 =
// undecided. Interval bounds are saturated at +-Interval::kInf, which stands
// in for "unbounded": a bound stored at a saturation limit may extend past
// any other bound stored at the same limit, so equality between two
// same-limit bounds proves nothing. Strict comparisons are self-guarding
// (they can never compare two equal saturated bounds as different).

bool FinB(double v) { return std::fabs(v) < Interval::kInf; }

bool BoundGe(double x, double y) { return x >= y && (x != y || FinB(x)); }

int TriLt(const Interval& a, const Interval& c) {
  if (a.empty() || c.empty()) return -1;
  if (a.hi() < c.lo()) return 1;
  if (BoundGe(a.lo(), c.hi())) return 0;
  return -1;
}

int TriLe(const Interval& a, const Interval& c) {
  if (a.empty() || c.empty()) return -1;
  if (BoundGe(c.lo(), a.hi())) return 1;
  if (a.lo() > c.hi()) return 0;
  return -1;
}

int TriEq(const Interval& a, const Interval& c) {
  if (a.empty() || c.empty()) return -1;
  if (a.lo() == a.hi() && c.lo() == c.hi() && a.lo() == c.lo() && FinB(a.lo())) return 1;
  if (a.lo() > c.hi() || c.lo() > a.hi()) return 0;
  return -1;
}

int Not(int tri) { return tri < 0 ? -1 : 1 - tri; }

/// Reachability of a nested context gated by a tri-state predicate.
int CombineReach(int reach, int tri) {
  if (reach == 0 || tri == 0) return 0;
  if (reach == 1 && tri == 1) return 1;
  return -1;
}

bool UnbLo(const Interval& iv) { return !iv.empty() && iv.lo() <= -Interval::kInf; }
bool UnbHi(const Interval& iv) { return !iv.empty() && iv.hi() >= Interval::kInf; }
bool Unb(const Interval& iv) { return UnbLo(iv) || UnbHi(iv); }

// ---------------------------------------------------------------------------
// AV: an AbsVal plus the set of root inport fields it (transitively) depends
// on. The dependency sets drive the threshold-harvesting heuristic only.

struct AV {
  AbsVal v;
  std::set<int> deps;

  bool operator==(const AV&) const = default;
};

Interval TypeRange(DType t) {
  return Interval(static_cast<double>(ir::DTypeMin(t)), static_cast<double>(ir::DTypeMax(t)));
}

/// Integer-typed value with the interpreter's wrapping semantics abstracted:
/// a hull that stays inside the representable range is exact; anything that
/// could wrap degrades to the full range of the type (sound, never empty).
AV MakeI(const Interval& iv, DType t, std::set<int> deps) {
  const Interval r = TypeRange(t);
  AV out;
  out.deps = std::move(deps);
  if (!iv.empty() && iv.lo() >= r.lo() && iv.hi() <= r.hi()) {
    out.v = AbsVal(iv, false, t);
  } else {
    out.v = AbsVal(r, false, t);
  }
  return out;
}

AV MakeB(int tri, std::set<int> deps) {
  Interval iv = tri == 1 ? Interval::Point(1) : tri == 0 ? Interval::Point(0) : Interval(0, 1);
  AV out;
  out.v = AbsVal(iv, false, DType::kBool);
  out.deps = std::move(deps);
  return out;
}

/// IVal::AsD(): integer values convert exactly into the double domain.
AV AsDouble(const AV& x) {
  AV out = x;
  out.v.type = DType::kDouble;
  if (!ir::DTypeIsFloat(x.v.type)) out.v.maybe_nan = false;
  return out;
}

AV AUnion(const AV& a, const AV& c) {
  AV out;
  out.v = a.v.Union(c.v);
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

/// Truthiness tri-state: `d != 0.0` for floats (NaN counts as true, exactly
/// like the runtime) and `i != 0` for integers.
int ABool(const AV& x) {
  const Interval& iv = x.v.iv;
  if (iv.empty()) return -1;
  const bool can_false = iv.Contains(0.0);
  const bool can_true = x.v.maybe_nan || !(iv.lo() == 0 && iv.hi() == 0);
  if (can_true && !can_false) return 1;
  if (!can_true && can_false) return 0;
  return -1;
}

/// Mirrors the interpreter's Cast (itself the VM lowering's CastTo).
AV ACast(const AV& x, DType want) {
  const bool want_float = ir::DTypeIsFloat(want);
  const bool is_float = ir::DTypeIsFloat(x.v.type);
  if (want_float) {
    // float->float carries the same double; int->float is exact.
    AV out = x;
    out.v.type = want;
    if (!is_float) out.v.maybe_nan = false;
    return out;
  }
  if (!is_float) {
    if (want == DType::kBool) return MakeB(ABool(x), x.deps);
    return MakeI(x.v.iv, want, x.deps);
  }
  // float -> integer
  if (want == DType::kBool) return MakeB(ABool(x), x.deps);
  // TruncToI64 then wrap. NaN truncates to 0; a hull reaching the saturation
  // region (stand-in for +-inf) or past the int64 edge could land anywhere
  // after the wrap, so degrade to the full range.
  const Interval& iv = x.v.iv;
  if (x.v.maybe_nan || iv.empty() || iv.lo() <= -9.2e18 || iv.hi() >= 9.2e18) {
    return MakeI(Interval::Whole(), want, x.deps);
  }
  return MakeI(Interval(std::trunc(iv.lo()), std::trunc(iv.hi())), want, x.deps);
}

/// Tri-state of `a <op> c` with the interpreter's Relate semantics: operands
/// promoted (and integer-cast, with wrapping) before comparison; NaN compares
/// false under everything except `ne`, where it compares true.
int ARelate(const AV& a, const AV& c, std::string_view op) {
  const DType pt = ir::PromoteDTypes(a.v.type, c.v.type);
  AV x = a;
  AV y = c;
  if (!ir::DTypeIsFloat(pt)) {
    x = ACast(a, pt);
    y = ACast(c, pt);
  }
  const bool nan = x.v.maybe_nan || y.v.maybe_nan;
  int t;
  bool is_ne = false;
  if (op == "lt" || op == "<") {
    t = TriLt(x.v.iv, y.v.iv);
  } else if (op == "le" || op == "<=") {
    t = TriLe(x.v.iv, y.v.iv);
  } else if (op == "gt" || op == ">") {
    t = TriLt(y.v.iv, x.v.iv);
  } else if (op == "ge" || op == ">=") {
    t = TriLe(y.v.iv, x.v.iv);
  } else if (op == "eq" || op == "==") {
    t = TriEq(x.v.iv, y.v.iv);
  } else {  // ne / != / ~= (and, like the runtime, any unknown op)
    t = Not(TriEq(x.v.iv, y.v.iv));
    is_ne = true;
  }
  if (is_ne) {
    if (nan && t == 0) t = -1;  // NaN != x is true
  } else {
    if (nan && t == 1) t = -1;  // NaN breaks every always-claim
  }
  return t;
}

// -- float arithmetic with NaN generation -----------------------------------
// inf - inf and 0 * inf produce NaN at runtime; a bound at the saturation
// limit may stand for a true +-inf, so those combinations set maybe_nan.

AV AAdd(const AV& a, const AV& c) {
  AV out;
  out.v.iv = a.v.iv.Add(c.v.iv);
  out.v.maybe_nan = a.v.maybe_nan || c.v.maybe_nan || (UnbHi(a.v.iv) && UnbLo(c.v.iv)) ||
                    (UnbLo(a.v.iv) && UnbHi(c.v.iv));
  out.v.type = DType::kDouble;
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

AV ASub(const AV& a, const AV& c) {
  AV out;
  out.v.iv = a.v.iv.Sub(c.v.iv);
  out.v.maybe_nan = a.v.maybe_nan || c.v.maybe_nan || (UnbHi(a.v.iv) && UnbHi(c.v.iv)) ||
                    (UnbLo(a.v.iv) && UnbLo(c.v.iv));
  out.v.type = DType::kDouble;
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

AV AMul(const AV& a, const AV& c) {
  AV out;
  out.v.iv = a.v.iv.Mul(c.v.iv);
  out.v.maybe_nan = a.v.maybe_nan || c.v.maybe_nan ||
                    (a.v.iv.Contains(0.0) && Unb(c.v.iv)) ||
                    (c.v.iv.Contains(0.0) && Unb(a.v.iv));
  out.v.type = DType::kDouble;
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

/// SafeDiv clamps any non-finite quotient to 0, so the abstract result never
/// carries NaN but must include 0 whenever the runtime could produce inf or
/// NaN: divisor touching zero, NaN operands, or operands/quotients reaching
/// the saturation region.
AV ASafeDiv(const AV& a, const AV& c) {
  AV out;
  Interval r = a.v.iv.Div(c.v.iv);
  if (c.v.iv.Contains(0.0) || a.v.maybe_nan || c.v.maybe_nan || Unb(a.v.iv) || Unb(c.v.iv) ||
      Unb(r)) {
    r = r.Union(Interval::Point(0));
  }
  out.v = AbsVal(r, false, DType::kDouble);
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

/// SafeMod / SafeRem: |result| < |divisor| and a zero divisor yields 0; an
/// infinite dividend makes fmod return NaN.
AV ASafeMod(const AV& a, const AV& c) {
  AV out;
  double m = 0;
  if (!c.v.iv.empty()) m = std::max(std::fabs(c.v.iv.lo()), std::fabs(c.v.iv.hi()));
  out.v.iv = Interval(-m, m);
  out.v.maybe_nan = a.v.maybe_nan || c.v.maybe_nan || Unb(a.v.iv);
  out.v.type = DType::kDouble;
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

/// fmin/fmax semantics: NaN loses unless both are NaN, so a maybe-NaN side
/// widens the hull to the other side's values.
AV AFMinMax(const AV& a, const AV& c, bool is_min) {
  AV out;
  out.v.iv = is_min ? a.v.iv.Min(c.v.iv) : a.v.iv.Max(c.v.iv);
  if (a.v.maybe_nan) out.v.iv = out.v.iv.Union(c.v.iv);
  if (c.v.maybe_nan) out.v.iv = out.v.iv.Union(a.v.iv);
  out.v.maybe_nan = a.v.maybe_nan && c.v.maybe_nan;
  out.v.type = DType::kDouble;
  out.deps = a.deps;
  out.deps.insert(c.deps.begin(), c.deps.end());
  return out;
}

// ---------------------------------------------------------------------------
// AbstractExec: the abstract twin of sim/interpreter.cpp's Exec. One Step()
// is one abstract model iteration; Run() iterates to a state fixpoint (with
// widening) and then performs a recording pass that derives objective
// verdicts, lints, and threshold harvests from the stable hulls.

class AbstractExec {
 public:
  AbstractExec(const sched::ScheduledModel& sm, const AnalyzeOptions& opts)
      : sm_(sm),
        spec_(sm.spec),
        opts_(opts),
        feasible_(static_cast<std::size_t>(sm.spec.FuzzBranchCount()), 0),
        visited_(static_cast<std::size_t>(sm.spec.FuzzBranchCount()), 0),
        dead_reason_(static_cast<std::size_t>(sm.spec.FuzzBranchCount())),
        trivial_reason_(static_cast<std::size_t>(sm.spec.FuzzBranchCount())) {}

  ModelAnalysis Run() {
    ModelAnalysis res;
    res.justifications = coverage::JustificationSet(spec_);
    int iter = 0;
    for (; iter < opts_.max_iters; ++iter) {
      widen_ = iter >= opts_.widen_after;
      record_ = false;
      if (!Step()) {
        res.converged = true;
        break;
      }
    }
    res.iterations = iter;
    converged_ = res.converged;
    // Recording pass over the fixpoint state (a no-op on the state itself).
    record_ = true;
    widen_ = false;
    Step();
    for (const auto& [key, av] : values_) res.signals[key] = av.v;
    StaticLints(*sm_.root, sm_.root->name(), res.lints);
    if (converged_) {
      res.lints.insert(res.lints.end(), dyn_lints_.begin(), dyn_lints_.end());
      Finalize(res);
    }
    res.inport_ranges = ComputeInportRanges();
    return res;
  }

 private:
  using Key = std::tuple<const Model*, ir::BlockId, int>;

  struct BState {
    bool init = false;
    std::vector<AV> outs;               // value state (delays, held outputs, ...)
    std::set<int> istates;              // small discrete state (relay, chart, ...)
    std::map<std::string, AV> vars;     // chart variables and outputs
  };

  // -- plumbing ---------------------------------------------------------------

  bool Step() {
    changed_ = false;
    values_.clear();
    ExecSystem(*sm_.root, 1, sm_.root->name());
    return changed_;
  }

  void Set(const Model& sys, ir::BlockId b, int port, AV v) {
    values_[Key{&sys, b, port}] = std::move(v);
  }
  AV Get(const Model& sys, ir::BlockId b, int port) const {
    auto it = values_.find(Key{&sys, b, port});
    if (it == values_.end()) {
      AV top;
      top.v = AbsVal::Top();
      return top;
    }
    return it->second;
  }
  AV In(const Model& sys, const Block& b, int port) const {
    const ir::Wire* w = sys.DriverOf(b.id(), port);
    if (w == nullptr) {
      AV top;
      top.v = AbsVal::Top();
      return top;
    }
    return Get(sys, w->src.block, w->src.port);
  }

  void MergeAV(AV& slot, const AV& v) {
    AV u = AUnion(slot, v);
    u.v.type = slot.v.type;
    if (widen_) u.v.iv = slot.v.iv.Widen(u.v.iv);
    if (!ir::DTypeIsFloat(u.v.type)) {
      u.v.iv = u.v.iv.Intersect(TypeRange(u.v.type));
      if (u.v.iv.empty()) u.v.iv = TypeRange(u.v.type);
      u.v.maybe_nan = false;
    }
    if (!(u == slot)) {
      slot = std::move(u);
      changed_ = true;
    }
  }

  void AddIState(BState& st, int s) {
    if (st.istates.insert(s).second) changed_ = true;
  }

  // -- objective marking (recording pass only) --------------------------------

  void MarkSlot(int slot, bool can, int reach, const std::string& why_dead) {
    if (!record_ || reach == 0) return;
    const auto i = static_cast<std::size_t>(slot);
    visited_[i] = 1;
    if (can) {
      feasible_[i] = 1;
    } else if (dead_reason_[i].empty()) {
      dead_reason_[i] = why_dead;
    }
  }

  void MarkTrivial(int slot, const std::string& why) {
    if (!record_) return;
    auto& r = trivial_reason_[static_cast<std::size_t>(slot)];
    if (r.empty()) r = why;
  }

  void MarkOutcome(coverage::DecisionId d, int o, bool can, int reach,
                   const std::string& why_dead) {
    MarkSlot(spec_.OutcomeSlot(d, o), can, reach, why_dead);
  }

  /// Two-outcome decision driven by one tri-state predicate.
  void MarkOutcomes2(coverage::DecisionId d, int tri, int reach, const std::string& why0,
                     const std::string& why1, const std::string& const_why) {
    MarkOutcome(d, 0, tri != 0, reach, why0);
    MarkOutcome(d, 1, tri != 1, reach, why1);
    if (reach == 1 && tri != -1) MarkTrivial(spec_.OutcomeSlot(d, tri == 1 ? 0 : 1), const_why);
  }

  /// Three-outcome below/inside/above decision (Saturation, DeadZone, ...).
  void MarkOutcomes3(coverage::DecisionId d, bool can0, bool can1, bool can2, int reach,
                     const std::string& why0, const std::string& why1, const std::string& why2,
                     const std::string& const_why) {
    MarkOutcome(d, 0, can0, reach, why0);
    MarkOutcome(d, 1, can1, reach, why1);
    MarkOutcome(d, 2, can2, reach, why2);
    if (reach == 1 && (can0 + can1 + can2) == 1) {
      MarkTrivial(spec_.OutcomeSlot(d, can0 ? 0 : can1 ? 1 : 2), const_why);
    }
  }

  void MarkCondTri(coverage::ConditionId c, int tri, int reach, const std::string& what) {
    const std::string& name = spec_.condition(c).name;
    MarkSlot(spec_.ConditionTrueSlot(c), tri != 0, reach,
             StrFormat("condition '%s' is never true: %s", name.c_str(), what.c_str()));
    MarkSlot(spec_.ConditionFalseSlot(c), tri != 1, reach,
             StrFormat("condition '%s' is never false: %s", name.c_str(), what.c_str()));
    if (reach == 1 && tri != -1) {
      MarkTrivial(tri == 1 ? spec_.ConditionTrueSlot(c) : spec_.ConditionFalseSlot(c),
                  StrFormat("condition '%s' is constant: %s", name.c_str(), what.c_str()));
    }
  }

  // -- heuristics -------------------------------------------------------------

  void Harvest(const AV& from, double threshold) {
    if (!record_ || !FinB(threshold)) return;
    for (int field : from.deps) thresholds_[field].insert(threshold);
  }

  void Lint(const void* site, LintSeverity sev, const char* check, const std::string& path,
            std::string msg) {
    if (!record_) return;
    if (!linted_.insert({site, check}).second) return;
    dyn_lints_.push_back({sev, check, path, std::move(msg)});
  }

  static std::string BlockPath(const std::string& path, const Block& b) {
    return path + "/" + b.name();
  }

  // -- execution --------------------------------------------------------------

  /// True when a restriction set is installed and `id` is outside it.
  /// Skipped blocks are never executed, so their signals read as Top;
  /// sound for cones closed under the dependence relation (depgraph.hpp).
  [[nodiscard]] bool Restricted(const Model& sys, ir::BlockId id) const {
    return opts_.restrict_to != nullptr &&
           opts_.restrict_to->find({&sys, id}) == opts_.restrict_to->end();
  }

  void ExecSystem(const Model& sys, int reach, const std::string& path) {
    for (ir::BlockId id : sm_.OrderOf(&sys)) {
      if (Restricted(sys, id)) continue;
      ExecBlock(sys, sys.block(id), reach, path);
    }
    for (ir::BlockId id : sm_.OrderOf(&sys)) {
      if (Restricted(sys, id)) continue;
      UpdateState(sys, sys.block(id), reach);
    }
  }

  void SeedSub(const Model& sys, const Block& b, const Model& sub, int offset) {
    const auto inports = sub.Inports();
    for (std::size_t k = 0; k < inports.size(); ++k) {
      const Block& ip = sub.block(inports[k]);
      Set(sub, ip.id(), 0, ACast(In(sys, b, offset + static_cast<int>(k)), ip.out_type(0)));
    }
  }

  /// Publishes one executed sub-model's outports into an accumulating union
  /// of the compound block's outputs.
  void AccumulateSubOutputs(const Block& b, const Model& sub, std::vector<AV>& acc,
                            bool& first) {
    const auto outports = sub.Outports();
    for (std::size_t k = 0; k < outports.size() && k < acc.size(); ++k) {
      const ir::Wire* w = sub.DriverOf(outports[k], 0);
      if (w == nullptr) continue;
      AV v = ACast(Get(sub, w->src.block, w->src.port), b.out_type(static_cast<int>(k)));
      acc[k] = first ? v : AUnion(acc[k], v);
    }
    first = false;
  }

  void UpdateState(const Model& sys, const Block& b, int reach) {
    switch (b.kind()) {
      case BlockKind::kUnitDelay:
      case BlockKind::kMemory:
      case BlockKind::kDelay: {
        BState& st = state_[&b];
        if (!st.init) return;  // output pass initializes; order guarantees init
        MergeAV(st.outs[0], ACast(In(sys, b, 0), b.out_type(0)));
        return;
      }
      case BlockKind::kDiscreteIntegrator: {
        BState& st = state_[&b];
        if (!st.init) return;
        const double gain = b.params().GetDouble("gain", 1.0);
        AV gain_av;
        gain_av.v = AbsVal::Point(gain);
        AV acc = AAdd(st.outs[0], AMul(gain_av, AsDouble(In(sys, b, 0))));
        if (b.params().Has("upper") || b.params().Has("lower")) {
          const auto d = sm_.DecisionAt(&b, 0);
          const double lo = b.params().GetDouble("lower", -1e30);
          const double hi = b.params().GetDouble("upper", 1e30);
          AV lo_av;
          lo_av.v = AbsVal::Point(lo);
          AV hi_av;
          hi_av.v = AbsVal::Point(hi);
          const int tri_lo = ARelate(acc, lo_av, "lt");
          const int tri_hi = ARelate(acc, hi_av, "gt");
          const bool can0 = tri_lo != 0;
          const bool can2 = tri_lo != 1 && tri_hi != 0;
          const bool can1 = tri_lo != 1 && tri_hi != 1;
          MarkOutcomes3(d, can0, can1, can2, reach,
                        StrFormat("accumulator %s never drops below lower limit %g",
                                  acc.v.iv.ToString().c_str(), lo),
                        StrFormat("accumulator %s never stays inside [%g, %g]",
                                  acc.v.iv.ToString().c_str(), lo, hi),
                        StrFormat("accumulator %s never exceeds upper limit %g",
                                  acc.v.iv.ToString().c_str(), hi),
                        "integrator accumulator is constant");
          AV clamped;
          clamped.v.type = DType::kDouble;
          clamped.deps = acc.deps;
          Interval iv;
          if (can0) iv = iv.Union(Interval::Point(lo));
          if (can2) iv = iv.Union(Interval::Point(hi));
          if (can1) iv = iv.Union(acc.v.iv.Intersect(Interval(lo, hi)));
          if (iv.empty()) iv = acc.v.iv;
          clamped.v.iv = iv;
          clamped.v.maybe_nan = acc.v.maybe_nan;  // NaN sails through the compares
          acc = clamped;
        }
        MergeAV(st.outs[0], acc);
        return;
      }
      default:
        return;
    }
  }

  void InitNumericState(const Block& b, BState& st, DType t, double init) {
    AV v;
    if (ir::DTypeIsFloat(t)) {
      v.v = AbsVal::Point(init, t);
    } else {
      v.v = AbsVal::Point(
          static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(init), t)), t);
      v.v.type = t;
    }
    st.outs.assign(1, std::move(v));
    st.init = true;
    changed_ = true;
  }

  void ExecBlock(const Model& sys, const Block& b, int reach, const std::string& path);

  // -- mex --------------------------------------------------------------------

  using Env = std::map<std::string, AV>;

  AV AEvalExpr(const Expr& e, Env& env);
  int AEvalBool(const Expr& e, Env& env);
  int AEvalCond(const Expr& e, Env& env, const std::map<const Expr*, int>& bit_of, int reach);
  int AEvalDecisionExpr(const Expr& cond, Env& env, coverage::DecisionId d, int reach);
  void AEvalStmts(const std::vector<blocks::mex::StmtPtr>& stmts, Env& env, int reach);
  void AEvalStmt(const Stmt& stmt, Env& env, int reach);

  static Env MergeEnvs(std::vector<Env>& envs) {
    Env out = std::move(envs.front());
    for (std::size_t i = 1; i < envs.size(); ++i) {
      for (auto& [k, v] : envs[i]) {
        auto it = out.find(k);
        if (it == out.end()) {
          out.emplace(k, std::move(v));
        } else {
          it->second = AUnion(it->second, v);
        }
      }
    }
    return out;
  }

  void ExecExprFunc(const Model& sys, const Block& b, int reach, const std::string& path);
  void ExecChart(const Model& sys, const Block& b, int reach, const std::string& path);

  // -- finalization -----------------------------------------------------------

  void StaticLints(const Model& sys, const std::string& path, std::vector<LintDiagnostic>& out);
  void Finalize(ModelAnalysis& res);
  std::vector<Interval> ComputeInportRanges();

  const sched::ScheduledModel& sm_;
  const coverage::CoverageSpec& spec_;
  AnalyzeOptions opts_;
  std::map<Key, AV> values_;
  std::map<const Block*, BState> state_;
  bool widen_ = false;
  bool record_ = false;
  bool converged_ = false;
  bool changed_ = false;
  std::string cur_mex_path_;  // block path of the ExprFunc/Chart being evaluated

  std::vector<char> feasible_;
  std::vector<char> visited_;
  std::vector<std::string> dead_reason_;
  std::vector<std::string> trivial_reason_;
  std::map<int, std::set<double>> thresholds_;  // root inport field -> thresholds
  std::vector<LintDiagnostic> dyn_lints_;
  std::set<std::pair<const void*, std::string>> linted_;
};

void AbstractExec::ExecBlock(const Model& sys, const Block& b, int reach,
                             const std::string& path) {
  const std::string bpath = BlockPath(path, b);
  auto point = [](double v) {
    AV x;
    x.v = AbsVal::Point(v);
    return x;
  };
  auto arith2 = [&](char op) {
    const DType t = b.out_type(0);
    if (ir::DTypeIsFloat(t)) {
      const AV a = AsDouble(In(sys, b, 0));
      const AV c = AsDouble(In(sys, b, 1));
      AV y = op == '-' ? ASub(a, c) : ASafeMod(a, c);
      y.v.type = t;
      Set(sys, b.id(), 0, std::move(y));
    } else {
      const AV a = ACast(In(sys, b, 0), t);
      const AV c = ACast(In(sys, b, 1), t);
      std::set<int> deps = a.deps;
      deps.insert(c.deps.begin(), c.deps.end());
      if (op == '-') {
        Set(sys, b.id(), 0, MakeI(a.v.iv.Sub(c.v.iv), t, std::move(deps)));
      } else {
        // SafeModI/SafeRemI: |result| <= max|divisor| and 0 on zero divisors.
        const double m =
            c.v.iv.empty() ? 0 : std::max(std::fabs(c.v.iv.lo()), std::fabs(c.v.iv.hi()));
        Set(sys, b.id(), 0, MakeI(Interval(-m, m), t, std::move(deps)));
      }
    }
  };
  switch (b.kind()) {
    case BlockKind::kInport: {
      if (values_.count(Key{&sys, b.id(), 0}) != 0) return;  // seeded by a compound
      const int field = static_cast<int>(b.params().GetInt("port", 0));
      const DType t = b.out_type(0);
      AV v;
      // Raw fuzz bytes: any bit pattern. Float inports can carry NaN/inf;
      // integer inports span the full representable range. Interval::OfType's
      // "practical" float range is a search heuristic, not a sound bound, so
      // it is NOT used here.
      v.v = ir::DTypeIsFloat(t) ? AbsVal(Interval::Whole(), true, t)
                                : AbsVal(TypeRange(t), false, t);
      v.deps.insert(field);
      Set(sys, b.id(), 0, std::move(v));
      return;
    }
    case BlockKind::kOutport:
      return;
    case BlockKind::kConstant: {
      const DType t = b.out_type(0);
      const double v = b.params().GetDouble("value", 0.0);
      AV x;
      x.v = ir::DTypeIsFloat(t)
                ? AbsVal::Point(v, t)
                : AbsVal::Point(
                      static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(v), t)), t);
      Set(sys, b.id(), 0, std::move(x));
      return;
    }
    case BlockKind::kGain: {
      AV y = AMul(AsDouble(In(sys, b, 0)), point(b.params().GetDouble("gain", 1.0)));
      Set(sys, b.id(), 0, ACast(y, b.out_type(0)));
      return;
    }
    case BlockKind::kBias: {
      AV y = AAdd(AsDouble(In(sys, b, 0)), point(b.params().GetDouble("bias", 0.0)));
      Set(sys, b.id(), 0, ACast(y, b.out_type(0)));
      return;
    }
    case BlockKind::kSum: {
      const std::string signs = b.params().GetString("signs", "++");
      const DType t = b.out_type(0);
      if (ir::DTypeIsFloat(t)) {
        AV acc;
        for (std::size_t k = 0; k < signs.size(); ++k) {
          AV v = AsDouble(In(sys, b, static_cast<int>(k)));
          if (k == 0) {
            acc = signs[k] == '-' ? ASub(point(0.0), v) : v;
          } else {
            acc = signs[k] == '-' ? ASub(acc, v) : AAdd(acc, v);
          }
        }
        acc.v.type = t;
        Set(sys, b.id(), 0, std::move(acc));
      } else {
        AV acc;
        for (std::size_t k = 0; k < signs.size(); ++k) {
          AV v = ACast(In(sys, b, static_cast<int>(k)), t);
          if (k == 0) {
            acc = signs[k] == '-' ? MakeI(v.v.iv.Neg(), t, v.deps) : v;
          } else {
            std::set<int> deps = acc.deps;
            deps.insert(v.deps.begin(), v.deps.end());
            acc = MakeI(signs[k] == '-' ? acc.v.iv.Sub(v.v.iv) : acc.v.iv.Add(v.v.iv), t,
                        std::move(deps));
          }
        }
        Set(sys, b.id(), 0, std::move(acc));
      }
      return;
    }
    case BlockKind::kSubtract:
      return arith2('-');
    case BlockKind::kMod:
    case BlockKind::kRem:
      return arith2('%');
    case BlockKind::kProduct: {
      const std::string ops = b.params().GetString("ops", "**");
      AV acc = AsDouble(In(sys, b, 0));
      if (!ops.empty() && ops[0] == '/') {
        if (acc.v.iv.Contains(0.0)) {
          Lint(&b, LintSeverity::kWarning, "possible-division-by-zero", bpath,
               StrFormat("reciprocal input range %s contains zero", acc.v.iv.ToString().c_str()));
        }
        acc = ASafeDiv(point(1.0), acc);
      }
      for (std::size_t k = 1; k < ops.size(); ++k) {
        AV v = AsDouble(In(sys, b, static_cast<int>(k)));
        if (ops[k] == '/') {
          if (v.v.iv.Contains(0.0)) {
            Lint(&b, LintSeverity::kWarning, "possible-division-by-zero", bpath,
                 StrFormat("divisor input %zu range %s contains zero", k,
                           v.v.iv.ToString().c_str()));
          }
          acc = ASafeDiv(acc, v);
        } else {
          acc = AMul(acc, v);
        }
      }
      Set(sys, b.id(), 0, ACast(acc, b.out_type(0)));
      return;
    }
    case BlockKind::kDivide: {
      const AV a = AsDouble(In(sys, b, 0));
      const AV c = AsDouble(In(sys, b, 1));
      if (c.v.iv.Contains(0.0)) {
        Lint(&b, LintSeverity::kWarning, "possible-division-by-zero", bpath,
             StrFormat("divisor range %s contains zero", c.v.iv.ToString().c_str()));
      }
      Set(sys, b.id(), 0, ACast(ASafeDiv(a, c), b.out_type(0)));
      return;
    }
    case BlockKind::kMin:
    case BlockKind::kMax: {
      const bool is_min = b.kind() == BlockKind::kMin;
      const DType t = b.out_type(0);
      const AV a = ACast(In(sys, b, 0), t);
      const AV c = ACast(In(sys, b, 1), t);
      const auto d = sm_.DecisionAt(&b, 0);
      const int tri = ARelate(a, c, is_min ? "le" : "ge");
      MarkOutcomes2(d, tri, reach,
                    StrFormat("first input %s never wins against %s",
                              a.v.iv.ToString().c_str(), c.v.iv.ToString().c_str()),
                    StrFormat("second input %s never wins against %s",
                              c.v.iv.ToString().c_str(), a.v.iv.ToString().c_str()),
                    "min/max choice is constant");
      Set(sys, b.id(), 0, tri == 1 ? a : tri == 0 ? c : AUnion(a, c));
      return;
    }
    case BlockKind::kAbs: {
      const DType t = b.out_type(0);
      const AV u = ACast(In(sys, b, 0), t);
      if (ir::DTypeIsFloat(t)) {
        AV y = u;
        y.v.iv = u.v.iv.Abs();
        Set(sys, b.id(), 0, std::move(y));
        return;
      }
      const auto d = sm_.DecisionAt(&b, 0);
      AV zero;
      zero.v = AbsVal::Point(0, t);
      const int tri = ARelate(u, zero, "lt");
      MarkOutcomes2(d, tri, reach,
                    StrFormat("input %s is never negative", u.v.iv.ToString().c_str()),
                    StrFormat("input %s is always negative", u.v.iv.ToString().c_str()),
                    "abs sign test is constant");
      Set(sys, b.id(), 0, MakeI(u.v.iv.Abs(), t, u.deps));
      return;
    }
    case BlockKind::kUnaryMinus: {
      const DType t = b.out_type(0);
      const AV u = ACast(In(sys, b, 0), t);
      if (ir::DTypeIsFloat(t)) {
        AV y = u;
        y.v.iv = u.v.iv.Neg();
        Set(sys, b.id(), 0, std::move(y));
      } else {
        Set(sys, b.id(), 0, MakeI(u.v.iv.Neg(), t, u.deps));
      }
      return;
    }
    case BlockKind::kSign: {
      const DType t = b.out_type(0);
      const AV u = ACast(In(sys, b, 0), t);
      const auto d = sm_.DecisionAt(&b, 0);
      AV zero;
      zero.v = AbsVal::Point(0, u.v.type);
      const int tri_p = ARelate(u, zero, "gt");
      const int tri_n = ARelate(u, zero, "lt");
      const bool can0 = tri_p != 0;
      const bool can1 = tri_p != 1 && tri_n != 0;
      const bool can2 = tri_p != 1 && tri_n != 1;
      MarkOutcomes3(d, can0, can1, can2, reach,
                    StrFormat("input %s is never positive", u.v.iv.ToString().c_str()),
                    StrFormat("input %s is never negative", u.v.iv.ToString().c_str()),
                    StrFormat("input %s is never zero", u.v.iv.ToString().c_str()),
                    "sign of the input is constant");
      Interval iv;
      if (can0) iv = iv.Union(Interval::Point(1));
      if (can1) iv = iv.Union(Interval::Point(-1));
      if (can2) iv = iv.Union(Interval::Point(0));
      if (iv.empty()) iv = Interval(-1, 1);
      AV y;
      if (ir::DTypeIsFloat(t)) {
        y.v = AbsVal(iv, false, t);
        y.deps = u.deps;
      } else {
        y = MakeI(iv, t, u.deps);
      }
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kSqrt: {
      const AV u = AsDouble(In(sys, b, 0));
      auto safe_sqrt = [](double v) { return v < 0 ? 0.0 : std::sqrt(v); };
      AV y;
      y.v = AbsVal(u.v.iv.empty() ? Interval()
                                  : Interval(safe_sqrt(u.v.iv.lo()), safe_sqrt(u.v.iv.hi())),
                   u.v.maybe_nan, DType::kDouble);
      y.deps = u.deps;
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kExp: {
      const AV u = AsDouble(In(sys, b, 0));
      AV y;
      y.deps = u.deps;
      const double elo = u.v.iv.empty() ? 0 : std::exp(u.v.iv.lo());
      const double ehi = u.v.iv.empty() ? 0 : std::exp(u.v.iv.hi());
      Interval iv(std::isfinite(elo) ? elo : Interval::kInf,
                  std::isfinite(ehi) ? ehi : Interval::kInf);
      // Finite() clamps an overflowed (or NaN) result to 0.
      if (!std::isfinite(ehi) || u.v.maybe_nan || UnbHi(u.v.iv)) iv = iv.Union(Interval::Point(0));
      y.v = AbsVal(iv, false, DType::kDouble);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kLog: {
      const AV u = AsDouble(In(sys, b, 0));
      AV y;
      y.deps = u.deps;
      Interval iv;
      if (!u.v.iv.empty() && u.v.iv.hi() > 0) {
        const double lo =
            u.v.iv.lo() <= 0 ? -Interval::kInf : std::log(u.v.iv.lo());
        iv = Interval(std::max(lo, -Interval::kInf), std::min(std::log(u.v.iv.hi()),
                                                              Interval::kInf));
      }
      if (u.v.iv.empty() || u.v.iv.lo() <= 0) iv = iv.Union(Interval::Point(0));
      y.v = AbsVal(iv, u.v.maybe_nan, DType::kDouble);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kSin:
    case BlockKind::kCos: {
      const AV u = AsDouble(In(sys, b, 0));
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(Interval(-1, 1), u.v.maybe_nan || Unb(u.v.iv), DType::kDouble);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kTan: {
      const AV u = AsDouble(In(sys, b, 0));
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(Interval::Whole(), false, DType::kDouble);  // Finite() kills NaN/inf
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kFloor:
    case BlockKind::kCeil:
    case BlockKind::kRound: {
      const DType t = b.out_type(0);
      if (!ir::DTypeIsFloat(t)) {
        Set(sys, b.id(), 0, In(sys, b, 0));
        return;
      }
      const AV u = AsDouble(In(sys, b, 0));
      auto f = [&](double v) {
        if (b.kind() == BlockKind::kFloor) return std::floor(v);
        if (b.kind() == BlockKind::kCeil) return std::ceil(v);
        return std::nearbyint(v);
      };
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(u.v.iv.empty() ? Interval() : Interval(f(u.v.iv.lo()), f(u.v.iv.hi())),
                   u.v.maybe_nan, t);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kAtan2: {
      const AV a = AsDouble(In(sys, b, 0));
      const AV c = AsDouble(In(sys, b, 1));
      AV y;
      y.deps = a.deps;
      y.deps.insert(c.deps.begin(), c.deps.end());
      y.v = AbsVal(Interval(-3.14159265358979323846, 3.14159265358979323846),
                   a.v.maybe_nan || c.v.maybe_nan, DType::kDouble);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kPow: {
      const AV a = AsDouble(In(sys, b, 0));
      const AV c = AsDouble(In(sys, b, 1));
      AV y;
      y.deps = a.deps;
      y.deps.insert(c.deps.begin(), c.deps.end());
      y.v = AbsVal(Interval::Whole(), false, DType::kDouble);  // Finite() kills NaN/inf
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kSaturation: {
      const DType t = b.out_type(0);
      const AV u = ACast(In(sys, b, 0), t);
      const auto d = sm_.DecisionAt(&b, 0);
      double lo = b.params().GetDouble("lower", 0.0);
      double hi = b.params().GetDouble("upper", 1.0);
      if (!ir::DTypeIsFloat(t)) {
        lo = static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(lo), t));
        hi = static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(hi), t));
      }
      Harvest(u, lo);
      Harvest(u, hi);
      AV lo_av;
      lo_av.v = AbsVal::Point(lo, u.v.type);
      AV hi_av;
      hi_av.v = AbsVal::Point(hi, u.v.type);
      const int tri_lo = ARelate(u, lo_av, "lt");
      // The runtime tests the limits sequentially (u < lo, else u > hi, else
      // inside), so the later branches see only the not-below values. The
      // refinement matters when integer wrapping inverts the limits (lo > hi
      // makes "inside" impossible). NaN fails both comparisons and falls
      // through to the inside branch unclamped.
      const Interval not_below = u.v.iv.RefineGe(lo_av.v.iv);
      const bool can0 = tri_lo != 0;
      const bool can2 = !not_below.RefineGt(hi_av.v.iv).empty();
      const bool can1 = !not_below.RefineLe(hi_av.v.iv).empty() || u.v.maybe_nan;
      MarkOutcomes3(
          d, can0, can1, can2, reach,
          StrFormat("input %s never drops below lower limit %g", u.v.iv.ToString().c_str(), lo),
          StrFormat("input %s never lands inside [%g, %g]", u.v.iv.ToString().c_str(), lo, hi),
          StrFormat("input %s never exceeds upper limit %g", u.v.iv.ToString().c_str(), hi),
          "saturation region is constant");
      if (reach != 0) {
        if (!can1) {
          Lint(&b, LintSeverity::kWarning, "always-saturating", bpath,
               StrFormat("input %s always saturates at [%g, %g]", u.v.iv.ToString().c_str(), lo,
                         hi));
        } else if (!can0 && !can2) {
          Lint(&b, LintSeverity::kInfo, "never-saturates", bpath,
               StrFormat("input %s never reaches the limits [%g, %g]; the block is a pass-through",
                         u.v.iv.ToString().c_str(), lo, hi));
        }
      }
      Interval iv;
      if (can0) iv = iv.Union(Interval::Point(lo));
      if (can2) iv = iv.Union(Interval::Point(hi));
      if (can1) iv = iv.Union(u.v.iv.Intersect(Interval(lo, hi)));
      if (iv.empty()) iv = u.v.iv.Clamp(lo, hi);
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(iv, u.v.maybe_nan, t);  // NaN input falls through unclamped
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kDeadZone: {
      const AV u = AsDouble(In(sys, b, 0));
      const double s0 = b.params().GetDouble("start", -0.5);
      const double s1 = b.params().GetDouble("end", 0.5);
      Harvest(u, s0);
      Harvest(u, s1);
      const auto d = sm_.DecisionAt(&b, 0);
      const int tri_lo = ARelate(u, point(s0), "lt");
      const int tri_hi = ARelate(u, point(s1), "gt");
      const bool can0 = tri_lo != 0;
      const bool can2 = tri_lo != 1 && tri_hi != 0;
      const bool can1 = tri_lo != 1 && tri_hi != 1;
      MarkOutcomes3(
          d, can0, can1, can2, reach,
          StrFormat("input %s never drops below start %g", u.v.iv.ToString().c_str(), s0),
          StrFormat("input %s never lands inside the dead zone [%g, %g]",
                    u.v.iv.ToString().c_str(), s0, s1),
          StrFormat("input %s never exceeds end %g", u.v.iv.ToString().c_str(), s1),
          "dead-zone region is constant");
      Interval iv;
      if (can0) iv = iv.Union(u.v.iv.RefineLt(point(s0).v.iv).Sub(Interval::Point(s0)));
      if (can2) iv = iv.Union(u.v.iv.RefineGt(point(s1).v.iv).Sub(Interval::Point(s1)));
      if (can1) iv = iv.Union(Interval::Point(0));
      if (iv.empty()) iv = Interval::Point(0);
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(iv, false, DType::kDouble);  // NaN input lands in the zone: output 0
      Set(sys, b.id(), 0, ACast(y, b.out_type(0)));
      return;
    }
    case BlockKind::kRateLimiter: {
      BState& st = state_[&b];
      if (!st.init) InitNumericState(b, st, DType::kDouble, b.params().GetDouble("init", 0.0));
      const AV u = AsDouble(In(sys, b, 0));
      const double rise = b.params().GetDouble("rising", 1.0);
      const double fall = b.params().GetDouble("falling", -1.0);
      const auto d = sm_.DecisionAt(&b, 0);
      const AV delta = ASub(u, st.outs[0]);
      const int tri_r = ARelate(delta, point(rise), "gt");
      const int tri_f = ARelate(delta, point(fall), "lt");
      const bool can0 = tri_r != 0;
      const bool can2 = tri_r != 1 && tri_f != 0;
      const bool can1 = tri_r != 1 && tri_f != 1;
      MarkOutcomes3(
          d, can0, can2, can1, reach,  // outcome order: 0 rising, 2 falling, 1 pass
          StrFormat("delta %s never exceeds the rising rate %g", delta.v.iv.ToString().c_str(),
                    rise),
          StrFormat("delta %s never stays within the rate limits", delta.v.iv.ToString().c_str()),
          StrFormat("delta %s never drops below the falling rate %g",
                    delta.v.iv.ToString().c_str(), fall),
          "rate-limiter branch is constant");
      AV y;
      y.deps = u.deps;
      Interval iv;
      bool nan = false;
      if (can0) iv = iv.Union(st.outs[0].v.iv.Add(Interval::Point(rise)));
      if (can2) iv = iv.Union(st.outs[0].v.iv.Add(Interval::Point(fall)));
      if (can1) {
        iv = iv.Union(u.v.iv);
        nan = nan || u.v.maybe_nan;
      }
      if (iv.empty()) iv = u.v.iv;
      nan = nan || st.outs[0].v.maybe_nan;
      y.v = AbsVal(iv, nan, DType::kDouble);
      y.deps.insert(st.outs[0].deps.begin(), st.outs[0].deps.end());
      MergeAV(st.outs[0], y);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kQuantizer: {
      const double q = b.params().GetDouble("interval", 1.0);
      const AV u = AsDouble(In(sys, b, 0));
      AV r = ASafeDiv(u, point(q));
      Interval iv = r.v.iv.empty()
                        ? Interval::Point(0)
                        : Interval(std::nearbyint(r.v.iv.lo()), std::nearbyint(r.v.iv.hi()));
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(iv.Mul(Interval::Point(q)), false, DType::kDouble);
      Set(sys, b.id(), 0, ACast(y, b.out_type(0)));
      return;
    }
    case BlockKind::kRelay: {
      BState& st = state_[&b];
      if (!st.init) {
        st.init = true;
        changed_ = true;
        st.istates.insert(b.params().GetDouble("init", 0.0) != 0.0 ? 1 : 0);
      }
      const AV u = AsDouble(In(sys, b, 0));
      const double off_pt = b.params().GetDouble("off_point", 0.0);
      const double on_pt = b.params().GetDouble("on_point", 1.0);
      Harvest(u, off_pt);
      Harvest(u, on_pt);
      const auto d = sm_.DecisionAt(&b, 0);
      const int tri_off = ARelate(u, point(off_pt), "le");
      const int tri_on = ARelate(u, point(on_pt), "ge");
      std::set<int> next;
      for (int s : st.istates) {
        if (s == 1) {
          if (tri_off != 0) next.insert(0);
          if (tri_off != 1) next.insert(1);
        } else {
          if (tri_on != 0) next.insert(1);
          if (tri_on != 1) next.insert(0);
        }
      }
      const bool can_on = next.count(1) != 0;
      const bool can_off = next.count(0) != 0;
      MarkOutcome(d, 0, can_on, reach,
                  StrFormat("input %s keeps the relay off", u.v.iv.ToString().c_str()));
      MarkOutcome(d, 1, can_off, reach,
                  StrFormat("input %s keeps the relay on", u.v.iv.ToString().c_str()));
      if (reach == 1 && (can_on != can_off)) {
        MarkTrivial(spec_.OutcomeSlot(d, can_on ? 0 : 1), "relay state is constant");
      }
      Interval iv;
      if (can_on) iv = iv.Union(Interval::Point(b.params().GetDouble("on_value", 1.0)));
      if (can_off) iv = iv.Union(Interval::Point(b.params().GetDouble("off_value", 0.0)));
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(iv, false, DType::kDouble);
      for (int s : next) AddIState(st, s);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kRelationalOp:
    case BlockKind::kCompareToConstant:
    case BlockKind::kCompareToZero: {
      const std::string op = b.params().GetString("op", "lt");
      const AV a = In(sys, b, 0);
      AV c;
      if (b.kind() == BlockKind::kRelationalOp) {
        c = In(sys, b, 1);
        if (c.v.iv.lo() == c.v.iv.hi()) Harvest(a, c.v.iv.lo());
        if (a.v.iv.lo() == a.v.iv.hi()) Harvest(c, a.v.iv.lo());
      } else if (b.kind() == BlockKind::kCompareToConstant) {
        const double v = b.params().GetDouble("value", 0.0);
        const bool fractional = v != std::floor(v);
        if (ir::DTypeIsFloat(a.v.type) || fractional) {
          c.v = AbsVal::Point(v);
        } else {
          c.v = AbsVal::Point(
              static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(v), a.v.type)),
              a.v.type);
        }
        Harvest(a, v);
      } else {
        c.v = ir::DTypeIsFloat(a.v.type) ? AbsVal::Point(0.0) : AbsVal::Point(0, a.v.type);
        c.v.type = a.v.type;
        Harvest(a, 0.0);
      }
      const int tri = ARelate(a, c, op);
      auto cit = sm_.condition_sites.find({&b, 0});
      if (cit != sm_.condition_sites.end()) {
        MarkCondTri(cit->second, tri, reach,
                    StrFormat("input %s vs %s", a.v.iv.ToString().c_str(),
                              c.v.iv.ToString().c_str()));
      }
      AV y = MakeB(tri, a.deps);
      y.deps.insert(c.deps.begin(), c.deps.end());
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kLogicalAnd:
    case BlockKind::kLogicalOr:
    case BlockKind::kLogicalXor:
    case BlockKind::kLogicalNand:
    case BlockKind::kLogicalNor: {
      const int n = b.num_inputs();
      const auto d = sm_.DecisionAt(&b, 0);
      int acc = 0;
      std::set<int> deps;
      for (int k = 0; k < n; ++k) {
        const AV vk = In(sys, b, k);
        deps.insert(vk.deps.begin(), vk.deps.end());
        const int tk = ABool(vk);
        auto cit = sm_.condition_sites.find({&b, k + 1});
        if (cit != sm_.condition_sites.end()) {
          MarkCondTri(cit->second, tk, reach,
                      StrFormat("input %d range %s", k, vk.v.iv.ToString().c_str()));
        }
        if (k == 0) {
          acc = tk;
          continue;
        }
        switch (b.kind()) {
          case BlockKind::kLogicalOr:
          case BlockKind::kLogicalNor:
            acc = (acc == 1 || tk == 1) ? 1 : (acc == 0 && tk == 0) ? 0 : -1;
            break;
          case BlockKind::kLogicalXor:
            acc = (acc == -1 || tk == -1) ? -1 : (acc != tk ? 1 : 0);
            break;
          default:  // and / nand
            acc = (acc == 0 || tk == 0) ? 0 : (acc == 1 && tk == 1) ? 1 : -1;
            break;
        }
      }
      if (b.kind() == BlockKind::kLogicalNand || b.kind() == BlockKind::kLogicalNor) {
        acc = Not(acc);
      }
      MarkOutcomes2(d, acc, reach, "the combined logic output is never true",
                    "the combined logic output is never false", "logic output is constant");
      Set(sys, b.id(), 0, MakeB(acc, std::move(deps)));
      return;
    }
    case BlockKind::kLogicalNot: {
      const AV u = In(sys, b, 0);
      Set(sys, b.id(), 0, MakeB(Not(ABool(u)), u.deps));
      return;
    }
    case BlockKind::kBitwiseAnd:
    case BlockKind::kBitwiseOr:
    case BlockKind::kBitwiseXor: {
      const DType t = b.out_type(0);
      const AV a = ACast(In(sys, b, 0), t);
      const AV c = ACast(In(sys, b, 1), t);
      std::set<int> deps = a.deps;
      deps.insert(c.deps.begin(), c.deps.end());
      if (a.v.iv.lo() == a.v.iv.hi() && c.v.iv.lo() == c.v.iv.hi() && FinB(a.v.iv.lo()) &&
          FinB(c.v.iv.lo())) {
        const auto x = static_cast<std::int64_t>(a.v.iv.lo());
        const auto y = static_cast<std::int64_t>(c.v.iv.lo());
        std::int64_t r = x & y;
        if (b.kind() == BlockKind::kBitwiseOr) r = x | y;
        if (b.kind() == BlockKind::kBitwiseXor) r = x ^ y;
        Set(sys, b.id(), 0, MakeI(Interval::Point(static_cast<double>(r)), t, std::move(deps)));
      } else {
        Set(sys, b.id(), 0, MakeI(Interval::Whole(), t, std::move(deps)));
      }
      return;
    }
    case BlockKind::kShiftLeft:
    case BlockKind::kShiftRight: {
      const DType t = b.out_type(0);
      const AV a = ACast(In(sys, b, 0), t);
      const int bits = static_cast<int>(b.params().GetInt("bits", 1)) & 63;
      const double p = std::pow(2.0, bits);
      Interval iv;
      if (b.kind() == BlockKind::kShiftLeft) {
        iv = a.v.iv.Mul(Interval::Point(p));  // wrap handled by MakeI
      } else if (!a.v.iv.empty()) {
        iv = Interval(std::floor(a.v.iv.lo() / p), std::floor(a.v.iv.hi() / p));
      }
      Set(sys, b.id(), 0, MakeI(iv, t, a.deps));
      return;
    }
    case BlockKind::kSwitch: {
      const DType t = b.out_type(0);
      const AV ctrl = In(sys, b, 1);
      const std::string criteria = b.params().GetString("criteria", "ge");
      const auto d = sm_.DecisionAt(&b, 0);
      int tri;
      if (criteria == "ne") {
        tri = ABool(ctrl);
      } else {
        const double thr = b.params().GetDouble("threshold", 0.0);
        const bool fractional = thr != std::floor(thr);
        AV th;
        if (ir::DTypeIsFloat(ctrl.v.type) || fractional) {
          th.v = AbsVal::Point(thr);
        } else {
          th.v = AbsVal::Point(
              static_cast<double>(ir::WrapToDType(static_cast<std::int64_t>(thr), ctrl.v.type)),
              ctrl.v.type);
        }
        Harvest(ctrl, thr);
        tri = ARelate(ctrl, th, criteria);
      }
      MarkOutcomes2(
          d, tri, reach,
          StrFormat("control %s never satisfies the switch criteria", ctrl.v.iv.ToString().c_str()),
          StrFormat("control %s always satisfies the switch criteria",
                    ctrl.v.iv.ToString().c_str()),
          StrFormat("switch control %s is constant", ctrl.v.iv.ToString().c_str()));
      if (reach != 0 && tri != -1) {
        Lint(&b, LintSeverity::kWarning, "constant-switch", bpath,
             StrFormat("control range %s makes the switch always take the %s input",
                       ctrl.v.iv.ToString().c_str(), tri == 1 ? "first" : "third"));
      }
      AV y;
      bool first = true;
      if (tri != 0) {
        y = ACast(In(sys, b, 0), t);
        first = false;
      }
      if (tri != 1) {
        AV e = ACast(In(sys, b, 2), t);
        y = first ? e : AUnion(y, e);
      }
      y.deps.insert(ctrl.deps.begin(), ctrl.deps.end());
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kMultiportSwitch: {
      const DType t = b.out_type(0);
      const int cases = static_cast<int>(b.params().GetInt("cases", 2));
      const auto d = sm_.DecisionAt(&b, 0);
      const AV idx = ACast(In(sys, b, 0), DType::kInt32);
      for (int k = 0; k < cases - 1; ++k) Harvest(idx, k + 1);
      AV y;
      bool first = true;
      int feas = 0;
      for (int k = 0; k < cases - 1; ++k) {
        const bool can = idx.v.iv.Contains(k + 1);
        MarkOutcome(d, k, can, reach,
                    StrFormat("selector %s never equals %d", idx.v.iv.ToString().c_str(), k + 1));
        if (can) {
          ++feas;
          AV e = ACast(In(sys, b, 1 + k), t);
          y = first ? e : AUnion(y, e);
          first = false;
        }
      }
      const bool can_def = idx.v.iv.empty() || idx.v.iv.lo() <= 0 ||
                           idx.v.iv.hi() >= static_cast<double>(cases);
      MarkOutcome(d, cases - 1, can_def, reach,
                  StrFormat("selector %s always matches an explicit case",
                            idx.v.iv.ToString().c_str()));
      if (can_def) {
        ++feas;
        AV e = ACast(In(sys, b, cases), t);
        y = first ? e : AUnion(y, e);
        first = false;
      }
      if (reach == 1 && feas == 1) {
        for (int k = 0; k < cases; ++k) {
          const bool can = k < cases - 1 ? idx.v.iv.Contains(k + 1) : can_def;
          if (can) MarkTrivial(spec_.OutcomeSlot(d, k), "multiport selector is constant");
        }
      }
      y.deps.insert(idx.deps.begin(), idx.deps.end());
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kMerge: {
      const DType t = b.out_type(0);
      const int n = b.num_inputs();
      AV y;
      bool first = true;
      int chain = 1;
      for (int k = 0; k < n - 1 && chain != 0; ++k) {
        const int tk = ABool(In(sys, b, k));
        if (tk != 0) {
          AV e = ACast(In(sys, b, k), t);
          y = first ? e : AUnion(y, e);
          first = false;
        }
        chain = CombineReach(chain, Not(tk));
      }
      if (chain != 0) {
        AV e = ACast(In(sys, b, n - 1), t);
        y = first ? e : AUnion(y, e);
      }
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kUnitDelay:
    case BlockKind::kMemory: {
      BState& st = state_[&b];
      const DType t = b.out_type(0);
      if (!st.init) InitNumericState(b, st, t, b.params().GetDouble("init", 0.0));
      Set(sys, b.id(), 0, st.outs[0]);
      return;
    }
    case BlockKind::kDelay: {
      BState& st = state_[&b];
      const DType t = b.out_type(0);
      if (!st.init) InitNumericState(b, st, t, b.params().GetDouble("init", 0.0));
      Set(sys, b.id(), 0, st.outs[0]);  // hull of the whole delay line
      return;
    }
    case BlockKind::kDiscreteIntegrator: {
      BState& st = state_[&b];
      if (!st.init) InitNumericState(b, st, DType::kDouble, b.params().GetDouble("init", 0.0));
      Set(sys, b.id(), 0, st.outs[0]);
      return;
    }
    case BlockKind::kCounterLimited: {
      BState& st = state_[&b];
      const DType t = b.out_type(0);
      if (!st.init) InitNumericState(b, st, t, b.params().GetDouble("init", 0.0));
      const auto d = sm_.DecisionAt(&b, 0);
      const AV en = In(sys, b, 0);
      const int tri_en = ABool(en);
      const int reach_c = CombineReach(reach, tri_en);
      const auto limit = static_cast<double>(b.params().GetInt("limit", 10));
      const Interval stv = st.outs[0].v.iv;
      const Interval wrap_part = stv.RefineGe(Interval::Point(limit));
      const Interval inc_part = stv.RefineLt(Interval::Point(limit)).Add(Interval::Point(1));
      MarkOutcome(d, 0, !wrap_part.empty(), reach_c,
                  StrFormat("counter %s never reaches the limit %g", stv.ToString().c_str(),
                            limit));
      MarkOutcome(d, 1, !inc_part.empty(), reach_c,
                  StrFormat("counter %s is always at the limit %g", stv.ToString().c_str(),
                            limit));
      Interval nxt;
      if (tri_en != 1) nxt = nxt.Union(stv);
      if (tri_en != 0) {
        if (!wrap_part.empty()) nxt = nxt.Union(Interval::Point(0));
        if (!inc_part.empty()) nxt = nxt.Union(inc_part);
      }
      if (nxt.empty()) nxt = stv;
      AV y = MakeI(nxt, t, st.outs[0].deps);
      y.deps.insert(en.deps.begin(), en.deps.end());
      MergeAV(st.outs[0], y);
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kEdgeDetector: {
      BState& st = state_[&b];
      if (!st.init) {
        st.init = true;
        changed_ = true;
        st.istates.insert(0);
      }
      const std::string edge = b.params().GetString("edge", "rising");
      const AV uav = In(sys, b, 0);
      const int tri_u = ABool(uav);
      bool can_out_true = false;
      bool can_out_false = false;
      for (int prev = 0; prev <= 1; ++prev) {
        if (st.istates.count(prev) == 0) continue;
        for (int u = 0; u <= 1; ++u) {
          if (u == 1 && tri_u == 0) continue;
          if (u == 0 && tri_u == 1) continue;
          bool out;
          if (edge == "falling") {
            out = u == 0 && prev == 1;
          } else if (edge == "either") {
            out = u != prev;
          } else {
            out = u == 1 && prev == 0;
          }
          (out ? can_out_true : can_out_false) = true;
        }
      }
      const auto d = sm_.DecisionAt(&b, 0);
      const int tri_out = can_out_true ? (can_out_false ? -1 : 1) : 0;
      MarkOutcomes2(d, tri_out, reach, "no edge of the configured polarity can occur",
                    "an edge of the configured polarity always occurs", "edge output is constant");
      auto cit = sm_.condition_sites.find({&b, 1});
      if (cit != sm_.condition_sites.end()) {
        MarkCondTri(cit->second, tri_out, reach, "edge-detector output");
      }
      if (tri_u != 0) AddIState(st, 1);
      if (tri_u != 1) AddIState(st, 0);
      Set(sys, b.id(), 0, MakeB(tri_out, uav.deps));
      return;
    }
    case BlockKind::kLookup1D: {
      const auto bp = b.params().GetList("breakpoints");
      const auto tb = b.params().GetList("table");
      const AV u = AsDouble(In(sys, b, 0));
      for (double v : bp) Harvest(u, v);
      double lo = 0;
      double hi = 0;
      if (!tb.empty()) {
        lo = *std::min_element(tb.begin(), tb.end());
        hi = *std::max_element(tb.begin(), tb.end());
      }
      AV y;
      y.deps = u.deps;
      y.v = AbsVal(Interval(lo, hi), false, DType::kDouble);  // NaN input maps to table end
      Set(sys, b.id(), 0, std::move(y));
      return;
    }
    case BlockKind::kDataTypeConversion: {
      const AV u = In(sys, b, 0);
      const DType t = b.out_type(0);
      if (reach != 0 && !ir::DTypeIsFloat(t)) {
        const Interval r = TypeRange(t);
        if (u.v.maybe_nan || u.v.iv.empty() || u.v.iv.lo() < r.lo() || u.v.iv.hi() > r.hi()) {
          Lint(&b, LintSeverity::kWarning, "narrowing-conversion", bpath,
               StrFormat("input range %s does not fit the %s range %s; values wrap",
                         u.v.iv.ToString().c_str(), std::string(ir::DTypeName(t)).c_str(),
                         r.ToString().c_str()));
        }
      }
      Set(sys, b.id(), 0, ACast(u, t));
      return;
    }
    case BlockKind::kSubsystem: {
      const Model& sub = *b.subs()[0];
      SeedSub(sys, b, sub, 0);
      ExecSystem(sub, reach, bpath);
      std::vector<AV> outs(static_cast<std::size_t>(b.num_outputs()));
      bool first = true;
      AccumulateSubOutputs(b, sub, outs, first);
      for (int k = 0; k < b.num_outputs(); ++k) {
        Set(sys, b.id(), k, std::move(outs[static_cast<std::size_t>(k)]));
      }
      return;
    }
    case BlockKind::kActionIf: {
      const auto d = sm_.DecisionAt(&b, 0);
      const AV cond = In(sys, b, 0);
      const int tri = ABool(cond);
      MarkOutcomes2(d, tri, reach,
                    StrFormat("condition %s is never true", cond.v.iv.ToString().c_str()),
                    StrFormat("condition %s is never false", cond.v.iv.ToString().c_str()),
                    "if-action branch is constant");
      if (reach != 0 && tri != -1) {
        Lint(&b, LintSeverity::kWarning, "constant-branch", bpath,
             StrFormat("condition range %s always selects the %s action",
                       cond.v.iv.ToString().c_str(), tri == 1 ? "then" : "else"));
      }
      std::vector<AV> outs(static_cast<std::size_t>(b.num_outputs()));
      bool first = true;
      if (tri != 0) {
        const Model& sub = *b.subs()[0];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub, CombineReach(reach, tri), bpath);
        AccumulateSubOutputs(b, sub, outs, first);
      }
      if (tri != 1) {
        const Model& sub = *b.subs()[1];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub, CombineReach(reach, Not(tri)), bpath);
        AccumulateSubOutputs(b, sub, outs, first);
      }
      for (int k = 0; k < b.num_outputs(); ++k) {
        Set(sys, b.id(), k, std::move(outs[static_cast<std::size_t>(k)]));
      }
      return;
    }
    case BlockKind::kActionSwitch: {
      const auto d = sm_.DecisionAt(&b, 0);
      const int n_subs = static_cast<int>(b.subs().size());
      const AV idx = ACast(In(sys, b, 0), DType::kInt32);
      for (int k = 0; k < n_subs - 1; ++k) Harvest(idx, k + 1);
      std::vector<AV> outs(static_cast<std::size_t>(b.num_outputs()));
      bool first = true;
      int feas = 0;
      for (int k = 0; k < n_subs - 1; ++k) {
        const bool can = idx.v.iv.Contains(k + 1);
        MarkOutcome(d, k, can, reach,
                    StrFormat("selector %s never equals %d", idx.v.iv.ToString().c_str(), k + 1));
        if (!can) continue;
        ++feas;
        const Model& sub = *b.subs()[static_cast<std::size_t>(k)];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub, CombineReach(reach, -1), bpath);
        AccumulateSubOutputs(b, sub, outs, first);
      }
      const bool can_def = idx.v.iv.empty() || idx.v.iv.lo() <= 0 ||
                           idx.v.iv.hi() >= static_cast<double>(n_subs);
      MarkOutcome(d, n_subs - 1, can_def, reach,
                  StrFormat("selector %s always matches an explicit case",
                            idx.v.iv.ToString().c_str()));
      if (can_def) {
        ++feas;
        const Model& sub = *b.subs()[static_cast<std::size_t>(n_subs - 1)];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub, CombineReach(reach, -1), bpath);
        AccumulateSubOutputs(b, sub, outs, first);
      }
      if (reach == 1 && feas == 1) {
        for (int k = 0; k < n_subs; ++k) {
          const bool can = k < n_subs - 1 ? idx.v.iv.Contains(k + 1) : can_def;
          if (can) MarkTrivial(spec_.OutcomeSlot(d, k), "action selector is constant");
        }
      }
      for (int k = 0; k < b.num_outputs(); ++k) {
        Set(sys, b.id(), k, std::move(outs[static_cast<std::size_t>(k)]));
      }
      return;
    }
    case BlockKind::kEnabledSubsystem: {
      const auto d = sm_.DecisionAt(&b, 0);
      BState& st = state_[&b];
      if (!st.init) {
        st.init = true;
        changed_ = true;
        AV init;
        init.v = AbsVal::Point(b.params().GetDouble("init", 0.0));
        st.outs.assign(static_cast<std::size_t>(b.num_outputs()), init);
      }
      const AV en = In(sys, b, 0);
      const int tri = ABool(en);
      MarkOutcomes2(d, tri, reach,
                    StrFormat("enable input %s is never true", en.v.iv.ToString().c_str()),
                    StrFormat("enable input %s is never false", en.v.iv.ToString().c_str()),
                    "enable input is constant");
      if (tri != 0) {
        const Model& sub = *b.subs()[0];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub, CombineReach(reach, tri), bpath);
        const auto outports = sub.Outports();
        for (std::size_t k = 0; k < outports.size() && k < st.outs.size(); ++k) {
          const ir::Wire* w = sub.DriverOf(outports[k], 0);
          if (w == nullptr) continue;
          AV v = ACast(Get(sub, w->src.block, w->src.port), b.out_type(static_cast<int>(k)));
          MergeAV(st.outs[k], AsDouble(v));
        }
      }
      for (int k = 0; k < b.num_outputs(); ++k) {
        Set(sys, b.id(), k, ACast(st.outs[static_cast<std::size_t>(k)], b.out_type(k)));
      }
      return;
    }
    case BlockKind::kChart:
      return ExecChart(sys, b, reach, bpath);
    case BlockKind::kExprFunc:
      return ExecExprFunc(sys, b, reach, bpath);
  }
}

// -- mex abstract evaluation --------------------------------------------------

AV AbstractExec::AEvalExpr(const Expr& e, Env& env) {
  switch (e.kind) {
    case ExprKind::kNumber: {
      AV x;
      x.v = AbsVal::Point(e.number);
      return x;
    }
    case ExprKind::kVar: {
      auto it = env.find(e.name);
      if (it != env.end()) return it->second;
      AV x;
      x.v = AbsVal::Top();
      return x;
    }
    case ExprKind::kUnary: {
      if (e.op == "!") return MakeB(Not(AEvalBool(*e.args[0], env)), {});
      AV u = AEvalExpr(*e.args[0], env);
      u.v.iv = u.v.iv.Neg();
      return u;
    }
    case ExprKind::kBinary: {
      if (blocks::mex::IsBooleanOp(e.op)) return MakeB(AEvalBool(e, env), {});
      const AV a = AEvalExpr(*e.args[0], env);
      const AV c = AEvalExpr(*e.args[1], env);
      if (e.op == "+") return AAdd(a, c);
      if (e.op == "-") return ASub(a, c);
      if (e.op == "*") return AMul(a, c);
      if (e.op == "/") {
        if (c.v.iv.Contains(0.0)) {
          Lint(&e, LintSeverity::kWarning, "possible-division-by-zero", cur_mex_path_,
               StrFormat("divisor of '%s' has range %s which contains zero",
                         blocks::mex::ExprToString(e).c_str(), c.v.iv.ToString().c_str()));
        }
        return ASafeDiv(a, c);
      }
      return ASafeMod(a, c);
    }
    case ExprKind::kCall: {
      auto arg = [&](std::size_t k) { return AEvalExpr(*e.args[k], env); };
      AV y;
      if (e.name == "abs") {
        AV a = arg(0);
        a.v.iv = a.v.iv.Abs();
        return a;
      }
      if (e.name == "min" || e.name == "max") return AFMinMax(arg(0), arg(1), e.name == "min");
      if (e.name == "floor" || e.name == "ceil" || e.name == "round") {
        AV a = arg(0);
        auto f = [&](double v) {
          if (e.name == "floor") return std::floor(v);
          if (e.name == "ceil") return std::ceil(v);
          return std::nearbyint(v);
        };
        if (!a.v.iv.empty()) a.v.iv = Interval(f(a.v.iv.lo()), f(a.v.iv.hi()));
        return a;
      }
      if (e.name == "sqrt") {
        AV a = arg(0);
        auto s = [](double v) { return v < 0 ? 0.0 : std::sqrt(v); };
        if (!a.v.iv.empty()) a.v.iv = Interval(s(a.v.iv.lo()), s(a.v.iv.hi()));
        return a;
      }
      if (e.name == "exp") {
        const AV a = arg(0);
        const double elo = a.v.iv.empty() ? 0 : std::exp(a.v.iv.lo());
        const double ehi = a.v.iv.empty() ? 0 : std::exp(a.v.iv.hi());
        Interval iv(std::isfinite(elo) ? elo : Interval::kInf,
                    std::isfinite(ehi) ? ehi : Interval::kInf);
        if (!std::isfinite(ehi) || a.v.maybe_nan || UnbHi(a.v.iv)) {
          iv = iv.Union(Interval::Point(0));
        }
        y.v = AbsVal(iv, false);
        y.deps = a.deps;
        return y;
      }
      if (e.name == "log") {
        const AV a = arg(0);
        Interval iv;
        if (!a.v.iv.empty() && a.v.iv.hi() > 0) {
          const double lo = a.v.iv.lo() <= 0 ? -Interval::kInf : std::log(a.v.iv.lo());
          iv = Interval(lo, std::min(std::log(a.v.iv.hi()), Interval::kInf));
        }
        if (a.v.iv.empty() || a.v.iv.lo() <= 0) iv = iv.Union(Interval::Point(0));
        y.v = AbsVal(iv, a.v.maybe_nan);
        y.deps = a.deps;
        return y;
      }
      if (e.name == "sin" || e.name == "cos") {
        const AV a = arg(0);
        y.v = AbsVal(Interval(-1, 1), a.v.maybe_nan || Unb(a.v.iv));
        y.deps = a.deps;
        return y;
      }
      if (e.name == "tan") {
        const AV a = arg(0);
        y.v = AbsVal(Interval::Whole(), false);
        y.deps = a.deps;
        return y;
      }
      if (e.name == "atan2") {
        const AV a = arg(0);
        const AV c = arg(1);
        y.v = AbsVal(Interval(-3.14159265358979323846, 3.14159265358979323846),
                     a.v.maybe_nan || c.v.maybe_nan);
        y.deps = a.deps;
        y.deps.insert(c.deps.begin(), c.deps.end());
        return y;
      }
      if (e.name == "pow") {
        const AV a = arg(0);
        const AV c = arg(1);
        y.v = AbsVal(Interval::Whole(), false);
        y.deps = a.deps;
        y.deps.insert(c.deps.begin(), c.deps.end());
        return y;
      }
      if (e.name == "mod" || e.name == "rem") return ASafeMod(arg(0), arg(1));
      if (e.name == "sign") {
        const AV a = arg(0);
        y.v = AbsVal(Interval(-1, 1), false);
        y.deps = a.deps;
        return y;
      }
      y.v = AbsVal::Point(0);
      return y;  // unknown function: interpreter returns 0.0
    }
  }
  AV x;
  x.v = AbsVal::Top();
  return x;
}

int AbstractExec::AEvalBool(const Expr& e, Env& env) {
  if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
    const int lhs = AEvalBool(*e.args[0], env);
    if (e.op == "&&") {
      if (lhs == 0) return 0;
      const int rhs = AEvalBool(*e.args[1], env);
      return lhs == 1 ? rhs : (rhs == 0 ? 0 : -1);
    }
    if (lhs == 1) return 1;
    const int rhs = AEvalBool(*e.args[1], env);
    return lhs == 0 ? rhs : (rhs == 1 ? 1 : -1);
  }
  if (e.kind == ExprKind::kUnary && e.op == "!") return Not(AEvalBool(*e.args[0], env));
  if (e.kind == ExprKind::kBinary && blocks::mex::IsBooleanOp(e.op)) {
    const AV a = AEvalExpr(*e.args[0], env);
    const AV c = AEvalExpr(*e.args[1], env);
    if (c.v.iv.lo() == c.v.iv.hi()) Harvest(a, c.v.iv.lo());
    if (a.v.iv.lo() == a.v.iv.hi()) Harvest(c, a.v.iv.lo());
    return ARelate(a, c, e.op);
  }
  return ABool(AEvalExpr(e, env));
}

int AbstractExec::AEvalCond(const Expr& e, Env& env, const std::map<const Expr*, int>& bit_of,
                            int reach) {
  if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
    const int lhs = AEvalCond(*e.args[0], env, bit_of, reach);
    if (e.op == "&&") {
      const int rhs = AEvalCond(*e.args[1], env, bit_of, CombineReach(reach, lhs));
      return lhs == 0 ? 0 : (lhs == 1 ? rhs : (rhs == 0 ? 0 : -1));
    }
    const int rhs = AEvalCond(*e.args[1], env, bit_of, CombineReach(reach, Not(lhs)));
    return lhs == 1 ? 1 : (lhs == 0 ? rhs : (rhs == 1 ? 1 : -1));
  }
  if (e.kind == ExprKind::kUnary && e.op == "!") {
    return Not(AEvalCond(*e.args[0], env, bit_of, reach));
  }
  const int v = AEvalBool(e, env);
  auto it = bit_of.find(&e);
  if (it != bit_of.end() && it->second < 24) {
    auto cit = sm_.condition_sites.find({&e, 0});
    if (cit != sm_.condition_sites.end()) {
      MarkCondTri(cit->second, v, reach, blocks::mex::ExprToString(e));
    }
  }
  return v;
}

int AbstractExec::AEvalDecisionExpr(const Expr& cond, Env& env, coverage::DecisionId d,
                                    int reach) {
  (void)d;
  std::map<const Expr*, int> bit_of;
  std::vector<const Expr*> leaves;
  blocks::mex::CollectConditionLeaves(cond, leaves);
  for (std::size_t k = 0; k < leaves.size(); ++k) bit_of[leaves[k]] = static_cast<int>(k);
  return AEvalCond(cond, env, bit_of, reach);
}

void AbstractExec::AEvalStmts(const std::vector<blocks::mex::StmtPtr>& stmts, Env& env,
                              int reach) {
  for (const auto& s : stmts) AEvalStmt(*s, env, reach);
}

void AbstractExec::AEvalStmt(const Stmt& stmt, Env& env, int reach) {
  if (stmt.kind == StmtKind::kAssign) {
    env[stmt.target] = AEvalExpr(*stmt.value, env);
    return;
  }
  std::vector<Env> exits;
  int chain = reach;
  bool had_else = false;
  for (std::size_t arm = 0; arm < stmt.branches.size(); ++arm) {
    const IfBranch& br = stmt.branches[arm];
    if (chain == 0) break;  // unvisited arms keep the generic "never evaluated" reason
    if (!br.cond) {
      had_else = true;
      Env body = env;
      AEvalStmts(br.body, body, chain);
      exits.push_back(std::move(body));
      chain = 0;
      break;
    }
    const auto d = sm_.DecisionAt(&stmt, static_cast<int>(arm));
    const int tri = AEvalDecisionExpr(*br.cond, env, d, chain);
    MarkOutcomes2(d, tri, chain,
                  StrFormat("guard '%s' is never true", blocks::mex::ExprToString(*br.cond).c_str()),
                  StrFormat("guard '%s' is never false",
                            blocks::mex::ExprToString(*br.cond).c_str()),
                  "guard is constant");
    if (tri != 0) {
      Env body = env;
      AEvalStmts(br.body, body, CombineReach(chain, tri));
      exits.push_back(std::move(body));
    }
    chain = CombineReach(chain, Not(tri));
  }
  if (chain != 0 && !had_else) exits.push_back(env);  // fallthrough: no arm taken
  if (!exits.empty()) env = MergeEnvs(exits);
}

void AbstractExec::ExecExprFunc(const Model& sys, const Block& b, int reach,
                                const std::string& path) {
  const auto* compiled = sm_.analysis.programs.FindExprFunc(&b);
  if (compiled == nullptr) return;
  cur_mex_path_ = path;
  Env env;
  for (std::size_t k = 0; k < compiled->in_names.size(); ++k) {
    env[compiled->in_names[k]] = AsDouble(In(sys, b, static_cast<int>(k)));
  }
  AV zero;
  zero.v = AbsVal::Point(0);
  for (const auto& name : compiled->out_names) env[name] = zero;
  for (const auto& name : compiled->local_names) env[name] = zero;
  AEvalStmts(compiled->program.stmts, env, reach);
  for (std::size_t k = 0; k < compiled->out_names.size(); ++k) {
    Set(sys, b.id(), static_cast<int>(k),
        ACast(env[compiled->out_names[k]], b.out_type(static_cast<int>(k))));
  }
}

void AbstractExec::ExecChart(const Model& sys, const Block& b, int reach,
                             const std::string& path) {
  const auto* compiled = sm_.analysis.programs.FindChart(&b);
  if (compiled == nullptr) return;
  const ir::ChartDef& def = *b.chart();
  cur_mex_path_ = path;
  BState& st = state_[&b];
  if (!st.init) {
    st.init = true;
    changed_ = true;
    st.istates.insert(def.initial_state);
    for (const auto& v : def.vars) {
      AV x;
      x.v = AbsVal::Point(v.init);
      st.vars[v.name] = x;
    }
    for (const auto& o : def.outputs) {
      AV x;
      x.v = AbsVal::Point(o.init);
      st.vars[o.name] = x;
    }
  }
  Env inenv;
  for (std::size_t k = 0; k < def.inputs.size(); ++k) {
    inenv[def.inputs[k]] = AsDouble(In(sys, b, static_cast<int>(k)));
  }
  const std::set<int> states_now = st.istates;
  // With more than one abstractly-active state, a given state is only *maybe*
  // active this step, so everything below it is maybe-reachable at best.
  const int sreach = states_now.size() > 1 ? CombineReach(reach, -1) : reach;
  std::set<int> new_states;
  std::vector<Env> exits;
  for (int s : states_now) {
    Env env = inenv;
    for (const auto& [name, v] : st.vars) env[name] = v;
    int chain = sreach;
    const auto& sc = compiled->states[static_cast<std::size_t>(s)];
    for (int t : compiled->outgoing[static_cast<std::size_t>(s)]) {
      if (chain == 0) break;
      const auto& ct = compiled->transitions[static_cast<std::size_t>(t)];
      const ir::ChartTransition& dt = def.transitions[static_cast<std::size_t>(t)];
      const auto d = sm_.DecisionAt(&b, 1000 + t);
      int tri;
      if (!ct.guard) {
        tri = 1;
        MarkOutcome(d, 0, true, chain, "");
        MarkOutcome(d, 1, false, chain,
                    "transition is unconditional; it always fires when evaluated");
        if (chain == 1) {
          MarkTrivial(spec_.OutcomeSlot(d, 0), "transition is unconditional");
        }
      } else {
        tri = AEvalDecisionExpr(*ct.guard->expr, env, d, chain);
        MarkOutcomes2(d, tri, chain,
                      StrFormat("guard from state '%s' is never true",
                                def.states[static_cast<std::size_t>(s)].name.c_str()),
                      StrFormat("guard from state '%s' is never false",
                                def.states[static_cast<std::size_t>(s)].name.c_str()),
                      "transition guard is constant");
      }
      if (tri != 0) {
        Env e = env;
        const int r2 = CombineReach(chain, tri);
        if (sc.exit) AEvalStmts(sc.exit->stmts, e, r2);
        if (ct.action) AEvalStmts(ct.action->stmts, e, r2);
        const auto dest = static_cast<std::size_t>(dt.to);
        if (compiled->states[dest].entry) {
          AEvalStmts(compiled->states[dest].entry->stmts, e, r2);
        }
        new_states.insert(dt.to);
        exits.push_back(std::move(e));
      }
      chain = CombineReach(chain, Not(tri));
    }
    if (chain != 0) {  // no transition fired: during action, state persists
      Env e = env;
      if (sc.during) AEvalStmts(sc.during->stmts, e, chain);
      new_states.insert(s);
      exits.push_back(std::move(e));
    }
  }
  for (auto& e : exits) {
    for (auto& [name, v] : st.vars) {
      auto it = e.find(name);
      if (it != e.end()) MergeAV(v, it->second);
    }
  }
  for (int s : new_states) AddIState(st, s);
  for (std::size_t k = 0; k < def.outputs.size(); ++k) {
    auto it = st.vars.find(def.outputs[k].name);
    AV v;
    if (it != st.vars.end()) v = it->second;
    Set(sys, b.id(), static_cast<int>(k), ACast(v, def.outputs[k].type));
  }
}

// -- lints and finalization ---------------------------------------------------

void AbstractExec::StaticLints(const Model& sys, const std::string& path,
                               std::vector<LintDiagnostic>& out) {
  std::set<std::pair<ir::BlockId, int>> used;
  for (const auto& w : sys.wires()) used.insert({w.src.block, w.src.port});
  for (const auto& b : sys.blocks()) {
    const std::string bpath = path + "/" + b.name();
    for (int k = 0; k < b.num_inputs(); ++k) {
      if (sys.DriverOf(b.id(), k) == nullptr) {
        out.push_back({LintSeverity::kError, "unconnected-input", bpath,
                       StrFormat("input port %d has no driving wire", k)});
      }
    }
    if (b.num_outputs() > 0 && b.kind() != BlockKind::kOutport) {
      bool any_used = false;
      for (int k = 0; k < b.num_outputs() && !any_used; ++k) {
        any_used = used.count({b.id(), k}) != 0;
      }
      if (!any_used) {
        out.push_back({LintSeverity::kWarning, "dead-block", bpath,
                       "no output of this block is connected; it has no effect"});
      }
    }
    for (const auto& sub : b.subs()) StaticLints(*sub, bpath, out);
  }
}

void AbstractExec::Finalize(ModelAnalysis& res) {
  auto& just = res.justifications;
  const int n = spec_.FuzzBranchCount();
  for (int slot = 0; slot < n; ++slot) {
    if (feasible_[static_cast<std::size_t>(slot)] != 0) continue;
    std::string reason = dead_reason_[static_cast<std::size_t>(slot)];
    if (reason.empty()) {
      reason = visited_[static_cast<std::size_t>(slot)] != 0
                   ? "objective is infeasible on every evaluation path"
                   : "never evaluated: the enclosing context is unreachable";
    }
    just.JustifySlot(slot, coverage::ObjectiveVerdict::kProvedUnreachable, reason);
  }
  for (const auto& dec : spec_.decisions()) {
    int n_feas = 0;
    int feas_outcome = -1;
    for (int o = 0; o < dec.num_outcomes; ++o) {
      if (feasible_[static_cast<std::size_t>(spec_.OutcomeSlot(dec.id, o))] != 0) {
        ++n_feas;
        feas_outcome = o;
      }
    }
    if (n_feas == 1) {
      const int slot = spec_.OutcomeSlot(dec.id, feas_outcome);
      const std::string& why = trivial_reason_[static_cast<std::size_t>(slot)];
      if (!why.empty()) {
        just.JustifySlot(slot, coverage::ObjectiveVerdict::kTriviallyConstant, why);
      }
    }
    // MCDC: a condition cannot demonstrate independent influence when the
    // decision has fewer than two feasible outcomes.
    if (n_feas < 2) {
      for (coverage::ConditionId c : dec.conditions) {
        just.JustifyMcdc(c, coverage::ObjectiveVerdict::kProvedUnreachable,
                         StrFormat("decision '%s' has a single feasible outcome",
                                   dec.name.c_str()));
      }
    }
  }
  for (const auto& cond : spec_.conditions()) {
    const int ts = spec_.ConditionTrueSlot(cond.id);
    const int fs = spec_.ConditionFalseSlot(cond.id);
    const bool can_t = feasible_[static_cast<std::size_t>(ts)] != 0;
    const bool can_f = feasible_[static_cast<std::size_t>(fs)] != 0;
    if (can_t != can_f) {
      const int slot = can_t ? ts : fs;
      const std::string& why = trivial_reason_[static_cast<std::size_t>(slot)];
      if (!why.empty()) {
        just.JustifySlot(slot, coverage::ObjectiveVerdict::kTriviallyConstant, why);
      }
    }
    if (just.McdcVerdict(cond.id) == coverage::ObjectiveVerdict::kUnknown && (!can_t || !can_f)) {
      just.JustifyMcdc(cond.id, coverage::ObjectiveVerdict::kProvedUnreachable,
                       StrFormat("condition '%s' is stuck at %s", cond.name.c_str(),
                                 can_t ? "true" : "false"));
    }
  }
}

std::vector<Interval> AbstractExec::ComputeInportRanges() {
  const std::vector<DType> types = sm_.InportTypes();
  std::vector<Interval> out;
  out.reserve(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    auto it = thresholds_.find(static_cast<int>(i));
    if (it == thresholds_.end() || it->second.empty()) {
      out.push_back(Interval::OfType(types[i]));
      continue;
    }
    std::set<double> pts = it->second;
    pts.insert(0.0);
    double lo = *pts.begin();
    double hi = *pts.rbegin();
    const double pad = std::max(1.0, 0.5 * (hi - lo));
    Interval r(lo - pad, hi + pad);
    if (!ir::DTypeIsFloat(types[i])) {
      r = r.Intersect(TypeRange(types[i]));
      if (r.empty()) r = Interval::OfType(types[i]);
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace

ModelAnalysis AnalyzeScheduledModel(const sched::ScheduledModel& sm) {
  return AbstractExec(sm, AnalyzeOptions{}).Run();
}

ModelAnalysis AnalyzeScheduledModel(const sched::ScheduledModel& sm,
                                    const AnalyzeOptions& options) {
  return AbstractExec(sm, options).Run();
}

}  // namespace cftcg::analysis
