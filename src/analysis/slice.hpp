// Per-coverage-objective backward slices over the static dependence graph.
//
// For every fuzz branch slot (decision outcome or condition polarity) the
// slicer resolves the owning block instance — including objectives buried
// inside mex programs (ExprFunc if-arms, chart guards and action
// conditions), which are mapped back to their ExprFunc/Chart block — and
// computes the backward dependence closure (depgraph.hpp): the *cone* of
// blocks that can influence the objective at any simulation step, the set
// of root inport tuple fields inside that cone, and an independence
// partition (objectives whose cones are disjoint can be pursued by
// independent search effort — the contract `fuzz --focus` and the ROADMAP's
// bandit scheduler consume).
//
// Soundness: the dependence graph over-approximates influence, so a field
// *outside* an objective's slice provably cannot change the objective's
// branch events in any concrete execution (tests/slice_test.cpp fuzzes
// every bench model against exactly this property).
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/depgraph.hpp"
#include "sched/schedule.hpp"

namespace cftcg::analysis {

/// One block of an objective's supporting cone, with the dependence kind
/// through which it first entered the backward closure (the "reason").
struct SliceConeEntry {
  DepNode node;
  DepEdgeKind via = DepEdgeKind::kData;
  std::string name;  // hierarchical block path ("root/ctrl/Switch1")
};

struct ObjectiveSlice {
  int slot = -1;          // fuzz branch slot (CoverageSpec slot space)
  std::string name;       // human-readable objective name
  DepNode owner;          // block instance owning the objective
  std::string owner_name;
  /// Influencing root inport tuple fields, sorted ascending. Empty when the
  /// objective depends on no inport (constant-driven logic).
  std::vector<int> fields;
  /// Supporting cone in deterministic (system pre-order, block id) order.
  std::vector<SliceConeEntry> cone;
  /// Independence partition id: slices share a component iff their cones
  /// intersect (transitively). Dense, in first-slot order.
  int component = -1;
};

struct SliceReport {
  std::vector<ObjectiveSlice> slices;  // one per fuzz slot, slot order
  int num_components = 0;
  std::size_t num_nodes = 0;  // dependence graph size
  std::size_t num_edges = 0;
};

/// Computes the per-objective slices. Deterministic and read-only; the
/// report holds pointers into `sm` (DepNode systems) and must not outlive
/// it.
SliceReport ComputeSlices(const sched::ScheduledModel& sm);

/// Sharpened unreachability: reruns the interval fixpoint once per
/// independence component, restricted to the component's cone and with
/// delayed widening (small cones often converge exactly where the whole-
/// model fixpoint had to widen). Strengthens kUnknown slot verdicts in `ma`
/// in place; never weakens or overwrites an existing verdict. Returns the
/// number of newly justified slots.
int RefineVerdictsWithSlices(const sched::ScheduledModel& sm, const SliceReport& slices,
                             ModelAnalysis& ma);

/// Human-readable slice report (`cftcg analyze --slices`).
std::string FormatSliceReport(const sched::ScheduledModel& sm, const SliceReport& sr);

/// JSON document (`cftcg analyze --slices --json`):
///   {"model":...,"num_components":N,"graph":{"nodes":N,"edges":N},
///    "slices":[{"slot","name","owner","component","fields":[...],
///               "cone":[{"block","via"}...]}...]}
std::string SliceReportJson(const sched::ScheduledModel& sm, const SliceReport& sr);

}  // namespace cftcg::analysis
