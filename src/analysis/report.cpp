#include "analysis/report.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace cftcg::analysis {

std::vector<std::string> SlotNames(const coverage::CoverageSpec& spec) {
  std::vector<std::string> names(static_cast<std::size_t>(spec.FuzzBranchCount()));
  for (const auto& d : spec.decisions()) {
    for (int o = 0; o < d.num_outcomes; ++o) {
      names[static_cast<std::size_t>(spec.OutcomeSlot(d.id, o))] =
          StrFormat("decision '%s' outcome %d", d.name.c_str(), o);
    }
  }
  for (const auto& c : spec.conditions()) {
    names[static_cast<std::size_t>(spec.ConditionTrueSlot(c.id))] =
        StrFormat("condition '%s' true", c.name.c_str());
    names[static_cast<std::size_t>(spec.ConditionFalseSlot(c.id))] =
        StrFormat("condition '%s' false", c.name.c_str());
  }
  return names;
}

namespace {

bool Bounded(double v) { return std::fabs(v) < sldv::Interval::kInf; }

}  // namespace

std::string FormatAnalysisReport(const sched::ScheduledModel& sm, const ModelAnalysis& ma) {
  std::string out;
  out += StrFormat("model %s: analysis %s after %d iteration%s\n", sm.root->name().c_str(),
                   ma.converged ? "converged" : "did NOT converge (no verdicts emitted)",
                   ma.iterations, ma.iterations == 1 ? "" : "s");

  if (ma.lints.empty()) {
    out += "lint: clean\n";
  } else {
    out += StrFormat("lint: %zu finding%s\n", ma.lints.size(), ma.lints.size() == 1 ? "" : "s");
    for (const auto& l : ma.lints) {
      out += StrFormat("  [%s] %s %s: %s\n", std::string(LintSeverityName(l.severity)).c_str(),
                       l.check.c_str(), l.block.c_str(), l.message.c_str());
    }
  }

  const auto& spec = sm.spec;
  const auto names = SlotNames(spec);
  std::size_t justified = 0;
  for (int s = 0; s < spec.FuzzBranchCount(); ++s) {
    if (ma.justifications.SlotVerdict(s) != coverage::ObjectiveVerdict::kUnknown) ++justified;
  }
  out += StrFormat("objectives: %d total, %zu justified\n", spec.FuzzBranchCount(), justified);
  for (int s = 0; s < spec.FuzzBranchCount(); ++s) {
    const auto v = ma.justifications.SlotVerdict(s);
    if (v == coverage::ObjectiveVerdict::kUnknown) continue;
    out += StrFormat("  [%s] %s: %s\n", std::string(coverage::ObjectiveVerdictName(v)).c_str(),
                     names[static_cast<std::size_t>(s)].c_str(),
                     ma.justifications.SlotReason(s).c_str());
  }
  for (const auto& c : spec.conditions()) {
    const auto v = ma.justifications.McdcVerdict(c.id);
    if (v == coverage::ObjectiveVerdict::kUnknown) continue;
    out += StrFormat("  [%s] mcdc '%s': %s\n",
                     std::string(coverage::ObjectiveVerdictName(v)).c_str(), c.name.c_str(),
                     ma.justifications.McdcReason(c.id).c_str());
  }

  for (std::size_t i = 0; i < ma.inport_ranges.size(); ++i) {
    out += StrFormat("inport %zu search range: %s\n", i,
                     ma.inport_ranges[i].ToString().c_str());
  }
  return out;
}

std::string AnalysisReportJson(const sched::ScheduledModel& sm, const ModelAnalysis& ma) {
  using obs::JsonEscape;
  using obs::JsonNumber;
  std::string out = "{";
  out += StrFormat("\"model\":\"%s\",", JsonEscape(sm.root->name()).c_str());
  out += StrFormat("\"converged\":%s,", ma.converged ? "true" : "false");
  out += StrFormat("\"iterations\":%d,", ma.iterations);

  out += "\"lints\":[";
  for (std::size_t i = 0; i < ma.lints.size(); ++i) {
    const auto& l = ma.lints[i];
    if (i != 0) out += ",";
    out += StrFormat("{\"severity\":\"%s\",\"check\":\"%s\",\"block\":\"%s\",\"message\":\"%s\"}",
                     std::string(LintSeverityName(l.severity)).c_str(),
                     JsonEscape(l.check).c_str(), JsonEscape(l.block).c_str(),
                     JsonEscape(l.message).c_str());
  }
  out += "],";

  const auto& spec = sm.spec;
  const auto names = SlotNames(spec);
  out += "\"objectives\":[";
  bool first = true;
  for (int s = 0; s < spec.FuzzBranchCount(); ++s) {
    const auto v = ma.justifications.SlotVerdict(s);
    if (v == coverage::ObjectiveVerdict::kUnknown) continue;
    if (!first) out += ",";
    first = false;
    out += StrFormat("{\"slot\":%d,\"name\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\"}", s,
                     JsonEscape(names[static_cast<std::size_t>(s)]).c_str(),
                     std::string(coverage::ObjectiveVerdictName(v)).c_str(),
                     JsonEscape(ma.justifications.SlotReason(s)).c_str());
  }
  out += "],";

  out += "\"mcdc\":[";
  first = true;
  for (const auto& c : spec.conditions()) {
    const auto v = ma.justifications.McdcVerdict(c.id);
    if (v == coverage::ObjectiveVerdict::kUnknown) continue;
    if (!first) out += ",";
    first = false;
    out += StrFormat("{\"condition\":%d,\"name\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\"}",
                     c.id, JsonEscape(c.name).c_str(),
                     std::string(coverage::ObjectiveVerdictName(v)).c_str(),
                     JsonEscape(ma.justifications.McdcReason(c.id)).c_str());
  }
  out += "],";

  out += "\"inport_ranges\":[";
  for (std::size_t i = 0; i < ma.inport_ranges.size(); ++i) {
    const auto& r = ma.inport_ranges[i];
    if (i != 0) out += ",";
    out += StrFormat("{\"lo\":%s,\"hi\":%s}",
                     Bounded(r.lo()) ? JsonNumber(r.lo()).c_str() : "null",
                     Bounded(r.hi()) ? JsonNumber(r.hi()).c_str() : "null");
  }
  out += "]}";
  return out;
}

}  // namespace cftcg::analysis
