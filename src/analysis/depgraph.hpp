// Static dependence graph over the scheduled dataflow.
//
// Nodes are block instances — one per (owning system, block id) across the
// whole model tree, so a block inside an ActionIf arm is distinct from its
// siblings. Edges point from the *influencing* block to the *influenced*
// block and carry a kind:
//
//   * kData    — a dataflow wire, a compound input feeding a sub-model
//                inport, or a sub-model outport feeding its compound's
//                output port;
//   * kControl — a signal that selects *which* behavior runs rather than
//                what value flows: Switch/MultiportSwitch selectors, the
//                ActionIf condition, the ActionSwitch selector and the
//                EnabledSubsystem enable (each of which also gates every
//                block of the contained sub-tree), the CounterLimited
//                enable, and every chart input (transition guards);
//   * kState   — influence that crosses a simulation step: the inputs of
//                delay-class blocks (UnitDelay/Delay/Memory/Integrator),
//                the inputs of internally stateful blocks (RateLimiter,
//                Relay, EdgeDetector, CounterLimited), plus a self-loop on
//                every stateful block and chart.
//
// The graph is deliberately conservative: *every* input wire contributes an
// in-edge (the kinds above only refine the label), so a backward closure
// over-approximates the set of blocks that can influence a node — across
// steps, because state edges are ordinary edges and the closure is
// transitive. That over-approximation is what makes objective slices
// (analysis/slice.hpp) sound: anything outside the closure provably cannot
// change the node's behavior in any concrete execution.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sched/schedule.hpp"

namespace cftcg::analysis {

enum class DepEdgeKind : std::uint8_t { kData, kControl, kState };
std::string_view DepEdgeKindName(DepEdgeKind k);

/// One block instance in the model tree.
struct DepNode {
  const ir::Model* system = nullptr;
  ir::BlockId block = ir::kNoBlock;

  auto operator<=>(const DepNode&) const = default;
};

/// An in-edge: `from` influences the edge's owner through `kind`.
struct DepEdge {
  DepNode from;
  DepEdgeKind kind = DepEdgeKind::kData;

  auto operator<=>(const DepEdge&) const = default;
};

class DepGraph {
 public:
  /// Builds the graph for a scheduled model. Deterministic and read-only;
  /// the graph holds pointers into `sm` and must not outlive it.
  static DepGraph Build(const sched::ScheduledModel& sm);

  /// All nodes, in deterministic (system pre-order, block id) order.
  [[nodiscard]] const std::vector<DepNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// In-edges of `n`, deterministically ordered.
  [[nodiscard]] const std::vector<DepEdge>& InEdges(const DepNode& n) const;

  /// Backward dependence closure from `start` (inclusive): every node whose
  /// outputs or state can influence `start` at any simulation step, mapped
  /// to the edge kind through which it first entered the closure (`start`
  /// itself maps to kData). Deterministic BFS.
  [[nodiscard]] std::map<DepNode, DepEdgeKind> BackwardClosure(const DepNode& start) const;

  /// Dense index of a system in deterministic pre-order (root = 0), or -1.
  [[nodiscard]] int SystemIndex(const ir::Model* sys) const;
  /// Hierarchical display name of a node, e.g. "root/ctrl/Switch1".
  [[nodiscard]] std::string NodeName(const DepNode& n) const;
  /// Root tuple-field index when `n` is a root-model inport, else -1.
  [[nodiscard]] int InportField(const DepNode& n) const;
  /// Sorted tuple-field indices of the root inports inside `cone`.
  [[nodiscard]] std::vector<int> InportFieldsIn(
      const std::map<DepNode, DepEdgeKind>& cone) const;
  /// Deterministic ordering key for report rendering.
  [[nodiscard]] std::pair<int, int> OrderKey(const DepNode& n) const {
    return {SystemIndex(n.system), n.block};
  }

 private:
  void AddSystem(const ir::Model& sys, const std::string& path);
  void AddEdge(const DepNode& to, DepNode from, DepEdgeKind kind);
  /// kControl edges from `gate` to every block of `sub`'s whole tree.
  void GateSubTree(const ir::Model& sub, const DepNode& gate);

  std::vector<DepNode> nodes_;
  std::map<DepNode, std::vector<DepEdge>> in_;
  std::map<const ir::Model*, int> sys_index_;
  std::map<const ir::Model*, std::string> sys_path_;
  std::map<DepNode, int> inport_field_;
  std::size_t num_edges_ = 0;
};

}  // namespace cftcg::analysis
