#include "analysis/slice.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "analysis/report.hpp"
#include "blocks/mex.hpp"
#include "obs/json.hpp"
#include "support/strings.hpp"

namespace cftcg::analysis {
namespace {

using blocks::mex::Expr;
using blocks::mex::StmtPtr;

/// Site owners are ir::Block*, mex::Stmt* or mex::Expr* addresses
/// (sched::SiteKey); this map resolves any of them to the block instance
/// that owns the objective.
using OwnerMap = std::map<const void*, DepNode>;

void RegisterExpr(const Expr& e, const DepNode& n, OwnerMap& owner) {
  owner.emplace(&e, n);
  for (const auto& a : e.args) RegisterExpr(*a, n, owner);
}

void RegisterStmts(const std::vector<StmtPtr>& stmts, const DepNode& n, OwnerMap& owner) {
  for (const auto& s : stmts) {
    owner.emplace(s.get(), n);
    if (s->value != nullptr) RegisterExpr(*s->value, n, owner);
    for (const auto& br : s->branches) {
      if (br.cond != nullptr) RegisterExpr(*br.cond, n, owner);
      RegisterStmts(br.body, n, owner);
    }
  }
}

void RegisterSystem(const ir::Model& sys, const sched::ScheduledModel& sm, OwnerMap& owner) {
  for (const ir::Block& b : sys.blocks()) {
    const DepNode n{&sys, b.id()};
    owner.emplace(&b, n);
    if (const auto* ef = sm.analysis.programs.FindExprFunc(&b); ef != nullptr) {
      RegisterStmts(ef->program.stmts, n, owner);
    }
    if (const auto* ch = sm.analysis.programs.FindChart(&b); ch != nullptr) {
      for (const auto& st : ch->states) {
        if (st.entry) RegisterStmts(st.entry->stmts, n, owner);
        if (st.during) RegisterStmts(st.during->stmts, n, owner);
        if (st.exit) RegisterStmts(st.exit->stmts, n, owner);
      }
      for (const auto& t : ch->transitions) {
        if (t.guard && t.guard->expr != nullptr) RegisterExpr(*t.guard->expr, n, owner);
        if (t.action) RegisterStmts(t.action->stmts, n, owner);
      }
    }
    for (const auto& sub : b.subs()) RegisterSystem(*sub, sm, owner);
  }
}

}  // namespace

SliceReport ComputeSlices(const sched::ScheduledModel& sm) {
  SliceReport sr;
  const DepGraph g = DepGraph::Build(sm);
  sr.num_nodes = g.nodes().size();
  sr.num_edges = g.num_edges();

  OwnerMap owner;
  RegisterSystem(*sm.root, sm, owner);

  const auto names = SlotNames(sm.spec);
  const int n = sm.spec.FuzzBranchCount();
  sr.slices.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    sr.slices[static_cast<std::size_t>(s)].slot = s;
    sr.slices[static_cast<std::size_t>(s)].name = names[static_cast<std::size_t>(s)];
  }

  auto assign = [&](const void* site_owner, int slot) {
    auto it = owner.find(site_owner);
    if (it != owner.end()) sr.slices[static_cast<std::size_t>(slot)].owner = it->second;
  };
  for (const auto& [key, did] : sm.decision_sites) {
    const auto& d = sm.spec.decision(did);
    for (int o = 0; o < d.num_outcomes; ++o) assign(key.owner, sm.spec.OutcomeSlot(did, o));
  }
  for (const auto& [key, cid] : sm.condition_sites) {
    assign(key.owner, sm.spec.ConditionTrueSlot(cid));
    assign(key.owner, sm.spec.ConditionFalseSlot(cid));
  }

  // One backward closure per distinct owner block (objectives of one block
  // share their cone).
  std::map<DepNode, std::map<DepNode, DepEdgeKind>> cones;
  for (auto& sl : sr.slices) {
    if (sl.owner.system == nullptr) continue;
    auto [it, fresh] = cones.try_emplace(sl.owner);
    if (fresh) it->second = g.BackwardClosure(sl.owner);
    const auto& cone = it->second;
    sl.owner_name = g.NodeName(sl.owner);
    sl.fields = g.InportFieldsIn(cone);
    sl.cone.clear();
    sl.cone.reserve(cone.size());
    for (const auto& [node, via] : cone) {
      sl.cone.push_back(SliceConeEntry{node, via, g.NodeName(node)});
    }
    std::sort(sl.cone.begin(), sl.cone.end(),
              [&g](const SliceConeEntry& a, const SliceConeEntry& b) {
                return g.OrderKey(a.node) < g.OrderKey(b.node);
              });
  }

  // Independence partition: union-find over slots; two slots join when
  // their cones share any block instance.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  };
  std::map<DepNode, int> claimed;
  for (const auto& sl : sr.slices) {
    for (const auto& entry : sl.cone) {
      auto [it, fresh] = claimed.try_emplace(entry.node, sl.slot);
      if (!fresh) unite(sl.slot, it->second);
    }
  }
  // Dense component ids in first-slot order.
  std::map<int, int> component_of_root;
  for (auto& sl : sr.slices) {
    if (sl.owner.system == nullptr) continue;
    const int root = find(sl.slot);
    auto [it, fresh] = component_of_root.try_emplace(root, sr.num_components);
    if (fresh) ++sr.num_components;
    sl.component = it->second;
  }
  return sr;
}

int RefineVerdictsWithSlices(const sched::ScheduledModel& sm, const SliceReport& sr,
                             ModelAnalysis& ma) {
  // The whole-model fixpoint did not converge: the restricted reruns could
  // still converge, but the base justification set was never populated with
  // sound context — stay conservative and change nothing.
  if (!ma.converged) return 0;
  int strengthened = 0;
  for (int c = 0; c < sr.num_components; ++c) {
    std::vector<int> slots;
    bool any_unknown = false;
    std::set<std::pair<const ir::Model*, ir::BlockId>> cone_set;
    for (const auto& sl : sr.slices) {
      if (sl.component != c) continue;
      slots.push_back(sl.slot);
      if (ma.justifications.SlotVerdict(sl.slot) == coverage::ObjectiveVerdict::kUnknown) {
        any_unknown = true;
      }
      for (const auto& entry : sl.cone) cone_set.emplace(entry.node.system, entry.node.block);
    }
    if (!any_unknown || cone_set.empty()) continue;

    // Delayed widening: the restricted state space is a fraction of the
    // model's, so trading iterations for precision is cheap and often turns
    // a widened-to-type-range hull into an exact bound.
    AnalyzeOptions opts;
    opts.restrict_to = &cone_set;
    opts.widen_after = 12;
    opts.max_iters = 256;
    const ModelAnalysis sub = AnalyzeScheduledModel(sm, opts);
    if (!sub.converged) continue;

    // Merge ONLY this component's slots: every other slot looks
    // never-evaluated in the restricted run, which is not a verdict.
    for (const int slot : slots) {
      if (ma.justifications.SlotVerdict(slot) != coverage::ObjectiveVerdict::kUnknown) continue;
      if (sub.justifications.SlotVerdict(slot) !=
          coverage::ObjectiveVerdict::kProvedUnreachable) {
        continue;
      }
      ma.justifications.JustifySlot(slot, coverage::ObjectiveVerdict::kProvedUnreachable,
                                    sub.justifications.SlotReason(slot) + " [sliced fixpoint]");
      ++strengthened;
    }
  }
  return strengthened;
}

std::string FormatSliceReport(const sched::ScheduledModel& sm, const SliceReport& sr) {
  std::string out;
  out += StrFormat("model %s: dependence graph %zu nodes, %zu edges\n",
                   sm.root->name().c_str(), sr.num_nodes, sr.num_edges);
  out += StrFormat("objectives: %zu slots in %d independent component%s\n", sr.slices.size(),
                   sr.num_components, sr.num_components == 1 ? "" : "s");
  for (const auto& sl : sr.slices) {
    if (sl.owner.system == nullptr) {
      out += StrFormat("  slot %d %s: no owner resolved\n", sl.slot, sl.name.c_str());
      continue;
    }
    std::string fields = "none";
    if (!sl.fields.empty()) {
      fields.clear();
      for (std::size_t i = 0; i < sl.fields.size(); ++i) {
        if (i != 0) fields += ",";
        fields += StrFormat("%d", sl.fields[i]);
      }
    }
    out += StrFormat("  slot %d %s [component %d]\n", sl.slot, sl.name.c_str(), sl.component);
    out += StrFormat("    owner: %s; influencing inport fields: %s; cone: %zu blocks\n",
                     sl.owner_name.c_str(), fields.c_str(), sl.cone.size());
    for (const auto& entry : sl.cone) {
      out += StrFormat("      %s (%s)\n", entry.name.c_str(),
                       std::string(DepEdgeKindName(entry.via)).c_str());
    }
  }
  return out;
}

std::string SliceReportJson(const sched::ScheduledModel& sm, const SliceReport& sr) {
  using obs::JsonEscape;
  std::string out = "{";
  out += StrFormat("\"model\":\"%s\",", JsonEscape(sm.root->name()).c_str());
  out += StrFormat("\"num_components\":%d,", sr.num_components);
  out += StrFormat("\"graph\":{\"nodes\":%zu,\"edges\":%zu},", sr.num_nodes, sr.num_edges);
  out += "\"slices\":[";
  for (std::size_t i = 0; i < sr.slices.size(); ++i) {
    const auto& sl = sr.slices[i];
    if (i != 0) out += ",";
    out += StrFormat("{\"slot\":%d,\"name\":\"%s\",\"owner\":\"%s\",\"component\":%d,", sl.slot,
                     JsonEscape(sl.name).c_str(), JsonEscape(sl.owner_name).c_str(),
                     sl.component);
    out += "\"fields\":[";
    for (std::size_t k = 0; k < sl.fields.size(); ++k) {
      if (k != 0) out += ",";
      out += StrFormat("%d", sl.fields[k]);
    }
    out += "],\"cone\":[";
    for (std::size_t k = 0; k < sl.cone.size(); ++k) {
      if (k != 0) out += ",";
      out += StrFormat("{\"block\":\"%s\",\"via\":\"%s\"}",
                       JsonEscape(sl.cone[k].name).c_str(),
                       std::string(DepEdgeKindName(sl.cone[k].via)).c_str());
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace cftcg::analysis
