#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <vector>

#include "support/io.hpp"
#include "support/strings.hpp"

namespace cftcg::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 64 * 1024;  // headers only; no bodies

Status Errno(const char* what) {
  return Status::Error(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SetRecvTimeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer, retrying on short writes / EINTR (support::io,
/// shared with the supervisor's worker pipes).
bool WriteAll(int fd, const char* data, std::size_t size) {
  return support::io::WriteFull(fd, data, size).ok();
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "";
  }
}

void WriteResponse(int fd, const HttpResponse& resp) {
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      resp.status, ReasonPhrase(resp.status), resp.content_type.c_str(), resp.body.size());
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, resp.body.data(), resp.body.size());
  }
}

/// Reads until the end of the header block ("\r\n\r\n"); GET carries no body.
bool ReadRequestHead(int fd, std::string* out) {
  char buf[4096];
  while (out->find("\r\n\r\n") == std::string::npos) {
    if (out->size() > kMaxRequestBytes) return false;
    const std::ptrdiff_t n = support::io::ReadSome(fd, buf, sizeof(buf));
    if (n <= 0) return false;  // peer closed, receive timeout, or error
    out->append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(std::uint16_t port,
                                                      HttpHandler handler) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // monitor is local-only
  addr.sin_port = htons(port);
  // A fixed port may be lingering in TIME_WAIT from the previous campaign
  // (SO_REUSEADDR covers most of that) or still held by a process on its way
  // out; retry with backoff before giving up. Ephemeral binds (port 0)
  // cannot meaningfully collide, so they fail fast.
  constexpr int kBindAttempts = 5;
  for (int attempt = 0;; ++attempt) {
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    if (errno != EADDRINUSE || port == 0 || attempt + 1 >= kBindAttempts) {
      const Status s = Errno(StrFormat("bind 127.0.0.1:%u", port).c_str());
      ::close(fd);
      return s;
    }
    support::io::SleepMs(50 << attempt);
  }
  if (::listen(fd, 16) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  // Read the bound port back: the whole point of port 0.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<HttpServer>(
      new HttpServer(fd, ntohs(addr.sin_port), std::move(handler)));
}

HttpServer::HttpServer(int listen_fd, std::uint16_t port, HttpHandler handler)
    : listen_fd_(listen_fd), port_(port), handler_(std::move(handler)) {
  thread_ = std::thread([this]() { Serve(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (!stop_.exchange(true) && thread_.joinable()) thread_.join();
}

void HttpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll with a short timeout instead of blocking in accept(2): Stop()
    // only has to flip the flag and join, no cross-thread socket shutdown.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = support::io::PollRetry(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or transient error
    const int client = support::io::AcceptRetry(listen_fd_);
    if (client < 0) continue;
    SetRecvTimeout(client, 5.0);
    HandleConnection(client);
    ::close(client);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::HandleConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t eol = head.find("\r\n");
  const std::vector<std::string> parts =
      SplitString(head.substr(0, eol == std::string::npos ? 0 : eol), ' ');
  if (parts.size() < 3) {
    WriteResponse(fd, HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  HttpRequest req;
  req.method = parts[0];
  req.target = parts[1];
  if (req.method != "GET" && req.method != "HEAD") {
    WriteResponse(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "only GET is supported\n"});
    return;
  }
  HttpResponse resp = handler_ ? handler_(req)
                               : HttpResponse{404, "text/plain; charset=utf-8",
                                              "no handler\n"};
  if (req.method == "HEAD") resp.body.clear();
  WriteResponse(fd, resp);
}

Status HttpGet(std::uint16_t port, const std::string& path, HttpResponse* out,
               double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  SetRecvTimeout(fd, timeout_s);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno(StrFormat("connect 127.0.0.1:%u", port).c_str());
    ::close(fd);
    return s;
  }
  const std::string request = StrFormat(
      "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n", path.c_str());
  if (!WriteAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::Error("send failed");
  }

  // Connection: close — read to EOF, then split head from body.
  std::string raw;
  char buf[4096];
  while (true) {
    const std::ptrdiff_t n = support::io::ReadSome(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > 64 * 1024 * 1024) break;  // runaway-response backstop
  }
  ::close(fd);

  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) {
    return Status::Error(StrFormat("malformed HTTP response (%zu bytes)", raw.size()));
  }
  const std::string head = raw.substr(0, split);
  out->body = raw.substr(split + 4);

  // Status line: HTTP/1.1 SP CODE SP REASON.
  const std::vector<std::string> parts =
      SplitString(head.substr(0, head.find("\r\n")), ' ');
  long long code = 0;
  if (parts.size() < 2 || !ParseInt64(parts[1], code)) {
    return Status::Error("malformed HTTP status line");
  }
  out->status = static_cast<int>(code);
  // Content-Type header (case-insensitive name match, simple parse).
  out->content_type.clear();
  for (const std::string& line : SplitString(head, '\n')) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name == "content-type") {
      out->content_type = std::string(TrimString(line.substr(colon + 1)));
    }
  }
  return Status::Ok();
}

}  // namespace cftcg::net
