// Minimal dependency-free HTTP/1.1 server and client over POSIX sockets.
//
// The server exists to expose live campaign state (obs::MonitorServer); it
// deliberately implements only what a metrics scraper or a browser polling
// a status page needs: GET requests, one request per connection
// (Connection: close), sequential handling on a single background thread.
// The listen loop polls with a short timeout so Stop() returns promptly
// without racing the accept(2) call, and every client socket gets a receive
// timeout so a stuck peer cannot wedge the serving thread.
//
// The client half (HttpGet) is the same few syscalls in the other
// direction, used by the monitor round-trip tests and the `cftcg-http-get`
// test tool so CI needs no curl.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "support/status.hpp"

namespace cftcg::net {

struct HttpRequest {
  std::string method;  // "GET", ...
  std::string target;  // path as sent, e.g. "/status"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Request handler; runs on the serving thread. Must not block indefinitely.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Blocking HTTP/1.1 server bound to 127.0.0.1. Construction via Start()
/// binds and spawns the serving thread; `port` 0 picks an ephemeral port
/// (read the bound one back with port()).
class HttpServer {
 public:
  static Result<std::unique_ptr<HttpServer>> Start(std::uint16_t port, HttpHandler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (the ephemeral one when Start was given 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stops accepting, joins the serving thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// Requests served so far (including error responses).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  HttpServer(int listen_fd, std::uint16_t port, HttpHandler handler);
  void Serve();                    // accept/dispatch loop (serving thread)
  void HandleConnection(int fd);   // one request/response exchange

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

/// Blocking GET against 127.0.0.1:port. On success fills `out` with the
/// response and returns OK (including for non-200 statuses — the status
/// code is the caller's to inspect); errors are connection/protocol level.
Status HttpGet(std::uint16_t port, const std::string& path, HttpResponse* out,
               double timeout_s = 5.0);

}  // namespace cftcg::net
