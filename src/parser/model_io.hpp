// Model file I/O — the paper's "Model Parser" stage.
//
// CFTCG's original parser unzips .slx archives and reads the block/line XML
// with TinyXML. Our substitute format (.cmx) is a plain XML document with
// the same information content:
//
//   <model name="SolarPV">
//     <block kind="Inport" name="Enable">
//       <param name="port" kind="int">0</param>
//       <param name="type" kind="str">int8</param>
//     </block>
//     <block kind="Chart" name="fsm">
//       <chart initial="0">
//         <input name="power"/>
//         <output name="mode" type="int32" init="0"/>
//         <var name="charge" init="0"/>
//         <state name="Idle" entry="..." during="..." exit="..."/>
//         <transition from="0" to="1" guard="power &gt; 10" action="..."/>
//       </chart>
//     </block>
//     <block kind="ActionIf" name="ctl">
//       <sub> <model name="then">...</model> </sub>
//       <sub> <model name="else">...</model> </sub>
//     </block>
//     <wire from="Enable:0" to="ctl:0"/>
//   </model>
//
// SaveModel/LoadModel round-trip exactly (property-tested).
#pragma once

#include <memory>
#include <string>

#include "ir/model.hpp"
#include "support/status.hpp"

namespace cftcg::parser {

/// Parses a model from XML text. The result is *not* analyzed; run
/// blocks::AnalyzeModel (or sched::AnalyzeAndSchedule) next.
Result<std::unique_ptr<ir::Model>> LoadModel(const std::string& xml_text);
Result<std::unique_ptr<ir::Model>> LoadModelFile(const std::string& path);

/// Serializes a model to XML text.
std::string SaveModel(const ir::Model& model);
Status SaveModelFile(const ir::Model& model, const std::string& path);

}  // namespace cftcg::parser
