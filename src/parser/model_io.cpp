#include "parser/model_io.hpp"

#include <map>

#include "support/strings.hpp"
#include "xml/xml.hpp"

namespace cftcg::parser {

using ir::Block;
using ir::BlockKind;
using ir::Model;

namespace {

// ---- saving -----------------------------------------------------------------

void SaveChart(const ir::ChartDef& def, xml::Element& parent) {
  xml::Element& chart = parent.AddChild("chart");
  chart.SetAttr("initial", StrFormat("%d", def.initial_state));
  for (const auto& name : def.inputs) {
    chart.AddChild("input").SetAttr("name", name);
  }
  for (const auto& o : def.outputs) {
    auto& e = chart.AddChild("output");
    e.SetAttr("name", o.name);
    e.SetAttr("type", std::string(ir::DTypeName(o.type)));
    e.SetAttr("init", DoubleToString(o.init));
  }
  for (const auto& v : def.vars) {
    auto& e = chart.AddChild("var");
    e.SetAttr("name", v.name);
    e.SetAttr("init", DoubleToString(v.init));
  }
  for (const auto& s : def.states) {
    auto& e = chart.AddChild("state");
    e.SetAttr("name", s.name);
    if (!s.entry_action.empty()) e.SetAttr("entry", s.entry_action);
    if (!s.during_action.empty()) e.SetAttr("during", s.during_action);
    if (!s.exit_action.empty()) e.SetAttr("exit", s.exit_action);
  }
  for (const auto& t : def.transitions) {
    auto& e = chart.AddChild("transition");
    e.SetAttr("from", StrFormat("%d", t.from));
    e.SetAttr("to", StrFormat("%d", t.to));
    if (!t.guard.empty()) e.SetAttr("guard", t.guard);
    if (!t.action.empty()) e.SetAttr("action", t.action);
  }
}

void SaveInto(const Model& model, xml::Element& elem) {
  elem.SetAttr("name", model.name());
  for (const auto& b : model.blocks()) {
    auto& be = elem.AddChild("block");
    be.SetAttr("kind", std::string(ir::BlockKindName(b.kind())));
    be.SetAttr("name", b.name());
    for (const auto& [key, value] : b.params().entries()) {
      auto& pe = be.AddChild("param");
      pe.SetAttr("name", key);
      pe.SetAttr("kind", value.SerializedKind());
      pe.set_text(value.Serialize());
    }
    if (b.chart()) SaveChart(*b.chart(), be);
    for (const auto& sub : b.subs()) {
      auto& se = be.AddChild("sub");
      SaveInto(*sub, se.AddChild("model"));
    }
  }
  for (const auto& w : model.wires()) {
    auto& we = elem.AddChild("wire");
    we.SetAttr("from", StrFormat("%s:%d", model.block(w.src.block).name().c_str(), w.src.port));
    we.SetAttr("to", StrFormat("%s:%d", model.block(w.dst_block).name().c_str(), w.dst_port));
  }
}

// ---- loading -----------------------------------------------------------------

Result<ir::ChartDef> LoadChart(const xml::Element& ce) {
  ir::ChartDef def;
  long long initial = 0;
  ParseInt64(ce.Attr("initial", "0"), initial);
  def.initial_state = static_cast<int>(initial);
  for (const auto& child : ce.children()) {
    const std::string& n = child->name();
    if (n == "input") {
      def.inputs.push_back(child->Attr("name"));
    } else if (n == "output") {
      ir::ChartOutput o;
      o.name = child->Attr("name");
      auto t = ir::DTypeFromName(child->Attr("type", "double"));
      if (!t.ok()) return t.status();
      o.type = t.value();
      ParseDouble(child->Attr("init", "0"), o.init);
      def.outputs.push_back(std::move(o));
    } else if (n == "var") {
      ir::ChartVar v;
      v.name = child->Attr("name");
      ParseDouble(child->Attr("init", "0"), v.init);
      def.vars.push_back(std::move(v));
    } else if (n == "state") {
      ir::ChartState s;
      s.name = child->Attr("name");
      s.entry_action = child->Attr("entry");
      s.during_action = child->Attr("during");
      s.exit_action = child->Attr("exit");
      def.states.push_back(std::move(s));
    } else if (n == "transition") {
      ir::ChartTransition t;
      long long from = 0;
      long long to = 0;
      ParseInt64(child->Attr("from", "0"), from);
      ParseInt64(child->Attr("to", "0"), to);
      t.from = static_cast<int>(from);
      t.to = static_cast<int>(to);
      t.guard = child->Attr("guard");
      t.action = child->Attr("action");
      def.transitions.push_back(std::move(t));
    } else {
      return Status::Error("unknown chart element <" + n + ">");
    }
  }
  return def;
}

Result<std::unique_ptr<Model>> LoadFrom(const xml::Element& elem) {
  if (elem.name() != "model") return Status::Error("expected <model> element");
  auto model = std::make_unique<Model>(elem.Attr("name", "model"));

  struct PendingWire {
    std::string from;
    std::string to;
  };
  std::vector<PendingWire> wires;
  std::map<std::string, ir::BlockId> by_name;

  for (const auto& child : elem.children()) {
    if (child->name() == "block") {
      auto kind = ir::BlockKindFromName(child->Attr("kind"));
      if (!kind.ok()) return kind.status();
      const std::string name = child->Attr("name");
      if (name.empty()) return Status::Error("block without a name");
      if (by_name.count(name)) return Status::Error("duplicate block name '" + name + "'");
      Block& b = model->AddBlock(kind.value(), name);
      by_name[name] = b.id();
      for (const auto& sub : child->children()) {
        if (sub->name() == "param") {
          b.params().Set(sub->Attr("name"),
                         ir::ParamValue::Parse(sub->Attr("kind", "str"), sub->text()));
        } else if (sub->name() == "chart") {
          auto chart = LoadChart(*sub);
          if (!chart.ok()) return chart.status();
          b.set_chart(chart.take());
        } else if (sub->name() == "sub") {
          const xml::Element* me = sub->FirstChild("model");
          if (me == nullptr) return Status::Error("<sub> without <model> in '" + name + "'");
          auto loaded = LoadFrom(*me);
          if (!loaded.ok()) return loaded.status();
          b.AdoptSub(loaded.take());
        } else {
          return Status::Error("unknown block child <" + sub->name() + ">");
        }
      }
    } else if (child->name() == "wire") {
      wires.push_back(PendingWire{child->Attr("from"), child->Attr("to")});
    } else {
      return Status::Error("unknown model element <" + child->name() + ">");
    }
  }

  auto parse_ref = [&](const std::string& ref, std::string& name, int& port) -> Status {
    const std::size_t colon = ref.rfind(':');
    if (colon == std::string::npos) {
      name = ref;
      port = 0;
    } else {
      name = ref.substr(0, colon);
      long long p = 0;
      if (!ParseInt64(ref.substr(colon + 1), p)) {
        return Status::Error("bad port reference '" + ref + "'");
      }
      port = static_cast<int>(p);
    }
    if (!by_name.count(name)) return Status::Error("wire references unknown block '" + name + "'");
    return Status::Ok();
  };

  for (const auto& w : wires) {
    std::string from_name;
    std::string to_name;
    int from_port = 0;
    int to_port = 0;
    if (Status s = parse_ref(w.from, from_name, from_port); !s.ok()) return s;
    if (Status s = parse_ref(w.to, to_name, to_port); !s.ok()) return s;
    model->AddWire(ir::PortRef{by_name[from_name], from_port}, by_name[to_name], to_port);
  }
  return model;
}

}  // namespace

Result<std::unique_ptr<Model>> LoadModel(const std::string& xml_text) {
  auto doc = xml::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  return LoadFrom(*doc.value().root);
}

Result<std::unique_ptr<Model>> LoadModelFile(const std::string& path) {
  auto doc = xml::ParseFile(path);
  if (!doc.ok()) return doc.status();
  return LoadFrom(*doc.value().root);
}

std::string SaveModel(const Model& model) {
  xml::Element root("model");
  SaveInto(model, root);
  return xml::Write(root);
}

Status SaveModelFile(const Model& model, const std::string& path) {
  xml::Element root("model");
  SaveInto(model, root);
  return xml::WriteFile(root, path);
}

}  // namespace cftcg::parser
