#include "parser/model_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "support/strings.hpp"
#include "xml/xml.hpp"

namespace cftcg::parser {

using ir::Block;
using ir::BlockKind;
using ir::Model;

namespace {

// ---- saving -----------------------------------------------------------------

void SaveChart(const ir::ChartDef& def, xml::Element& parent) {
  xml::Element& chart = parent.AddChild("chart");
  chart.SetAttr("initial", StrFormat("%d", def.initial_state));
  for (const auto& name : def.inputs) {
    chart.AddChild("input").SetAttr("name", name);
  }
  for (const auto& o : def.outputs) {
    auto& e = chart.AddChild("output");
    e.SetAttr("name", o.name);
    e.SetAttr("type", std::string(ir::DTypeName(o.type)));
    e.SetAttr("init", DoubleToString(o.init));
  }
  for (const auto& v : def.vars) {
    auto& e = chart.AddChild("var");
    e.SetAttr("name", v.name);
    e.SetAttr("init", DoubleToString(v.init));
  }
  for (const auto& s : def.states) {
    auto& e = chart.AddChild("state");
    e.SetAttr("name", s.name);
    if (!s.entry_action.empty()) e.SetAttr("entry", s.entry_action);
    if (!s.during_action.empty()) e.SetAttr("during", s.during_action);
    if (!s.exit_action.empty()) e.SetAttr("exit", s.exit_action);
  }
  for (const auto& t : def.transitions) {
    auto& e = chart.AddChild("transition");
    e.SetAttr("from", StrFormat("%d", t.from));
    e.SetAttr("to", StrFormat("%d", t.to));
    if (!t.guard.empty()) e.SetAttr("guard", t.guard);
    if (!t.action.empty()) e.SetAttr("action", t.action);
  }
}

void SaveInto(const Model& model, xml::Element& elem) {
  elem.SetAttr("name", model.name());
  for (const auto& b : model.blocks()) {
    auto& be = elem.AddChild("block");
    be.SetAttr("kind", std::string(ir::BlockKindName(b.kind())));
    be.SetAttr("name", b.name());
    for (const auto& [key, value] : b.params().entries()) {
      auto& pe = be.AddChild("param");
      pe.SetAttr("name", key);
      pe.SetAttr("kind", value.SerializedKind());
      pe.set_text(value.Serialize());
    }
    if (b.chart()) SaveChart(*b.chart(), be);
    for (const auto& sub : b.subs()) {
      auto& se = be.AddChild("sub");
      SaveInto(*sub, se.AddChild("model"));
    }
  }
  for (const auto& w : model.wires()) {
    auto& we = elem.AddChild("wire");
    we.SetAttr("from", StrFormat("%s:%d", model.block(w.src.block).name().c_str(), w.src.port));
    we.SetAttr("to", StrFormat("%s:%d", model.block(w.dst_block).name().c_str(), w.dst_port));
  }
}

// ---- loading -----------------------------------------------------------------

// Diagnostic context threaded through the loaders so every error names the
// source file, the line of the offending element, and the path of the block
// being loaded: `file.cmx:12: block 'Ctl/Servo': <what>`. Malformed models
// arrive from external tooling; a bare "bad transition" is useless at scale.
struct LoadCtx {
  std::string file;        // source path, or "<memory>" for in-memory text
  std::string block_path;  // '/'-joined path of enclosing blocks, may be empty

  [[nodiscard]] LoadCtx Nested(const std::string& block) const {
    LoadCtx out = *this;
    out.block_path = block_path.empty() ? block : block_path + "/" + block;
    return out;
  }

  [[nodiscard]] Status Error(const xml::Element& where, const std::string& what) const {
    std::string msg = file;
    if (where.line() != 0) msg += StrFormat(":%zu", where.line());
    msg += ": ";
    if (!block_path.empty()) msg += "block '" + block_path + "': ";
    msg += what;
    return Status::Error(msg);
  }
};

enum class NumParse { kOk, kNotNumber, kOutOfRange };

// ParseDouble folds range overflow (errno == ERANGE) into a generic failure;
// reclassify so the diagnostic can distinguish "banana" from "1e999".
NumParse ParseFinite(const std::string& text, double& out) {
  if (ParseDouble(text, out)) {
    return std::isfinite(out) ? NumParse::kOk : NumParse::kOutOfRange;
  }
  const std::string buf(TrimString(text));
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(buf.c_str(), &end);
  if (!buf.empty() && end == buf.c_str() + buf.size() && errno == ERANGE) {
    return NumParse::kOutOfRange;
  }
  return NumParse::kNotNumber;
}

// Strict counterpart of ir::ParamValue::Parse: numeric kinds must actually
// parse and stay finite. The tolerant Parse silently turns garbage into 0,
// which then drives block semantics far from what the model author wrote.
Result<ir::ParamValue> ParseParamStrict(const std::string& kind, const std::string& text) {
  if (kind == "real") {
    double d = 0;
    switch (ParseFinite(text, d)) {
      case NumParse::kNotNumber: return Status::Error("is not a number: '" + text + "'");
      case NumParse::kOutOfRange: return Status::Error("is out of range: '" + text + "'");
      case NumParse::kOk: break;
    }
    return ir::ParamValue(d);
  }
  if (kind == "int") {
    long long i = 0;
    if (!ParseInt64(text, i)) return Status::Error("is not an integer: '" + text + "'");
    return ir::ParamValue(static_cast<std::int64_t>(i));
  }
  if (kind == "list") {
    std::vector<double> xs;
    for (const auto& part : SplitString(text, ' ')) {
      if (TrimString(part).empty()) continue;
      double d = 0;
      switch (ParseFinite(part, d)) {
        case NumParse::kNotNumber:
          return Status::Error("has a non-numeric list entry: '" + part + "'");
        case NumParse::kOutOfRange:
          return Status::Error("has an out-of-range entry: '" + part + "'");
        case NumParse::kOk: break;
      }
      xs.push_back(d);
    }
    return ir::ParamValue(std::move(xs));
  }
  if (kind != "str") return Status::Error("has unknown kind '" + kind + "'");
  return ir::ParamValue(text);
}

Result<ir::ChartDef> LoadChart(const xml::Element& ce, const LoadCtx& ctx) {
  ir::ChartDef def;
  long long initial = 0;
  if (!ParseInt64(ce.Attr("initial", "0"), initial)) {
    return ctx.Error(ce, "chart 'initial' is not an integer: '" + ce.Attr("initial") + "'");
  }
  def.initial_state = static_cast<int>(initial);
  // Transitions may precede <state> elements in document order, so index
  // validation happens after the scan; keep the elements for line numbers.
  std::vector<const xml::Element*> transition_elems;
  for (const auto& child : ce.children()) {
    const std::string& n = child->name();
    if (n == "input") {
      def.inputs.push_back(child->Attr("name"));
    } else if (n == "output") {
      ir::ChartOutput o;
      o.name = child->Attr("name");
      auto t = ir::DTypeFromName(child->Attr("type", "double"));
      if (!t.ok()) return ctx.Error(*child, "chart output '" + o.name + "': " + t.message());
      o.type = t.value();
      if (!ParseDouble(child->Attr("init", "0"), o.init)) {
        return ctx.Error(*child, "chart output '" + o.name + "' has non-numeric init: '" +
                                     child->Attr("init") + "'");
      }
      def.outputs.push_back(std::move(o));
    } else if (n == "var") {
      ir::ChartVar v;
      v.name = child->Attr("name");
      if (!ParseDouble(child->Attr("init", "0"), v.init)) {
        return ctx.Error(*child, "chart var '" + v.name + "' has non-numeric init: '" +
                                     child->Attr("init") + "'");
      }
      def.vars.push_back(std::move(v));
    } else if (n == "state") {
      ir::ChartState s;
      s.name = child->Attr("name");
      s.entry_action = child->Attr("entry");
      s.during_action = child->Attr("during");
      s.exit_action = child->Attr("exit");
      def.states.push_back(std::move(s));
    } else if (n == "transition") {
      ir::ChartTransition t;
      long long from = 0;
      long long to = 0;
      if (!ParseInt64(child->Attr("from", "0"), from)) {
        return ctx.Error(*child, "transition 'from' is not an integer: '" + child->Attr("from") +
                                     "'");
      }
      if (!ParseInt64(child->Attr("to", "0"), to)) {
        return ctx.Error(*child, "transition 'to' is not an integer: '" + child->Attr("to") + "'");
      }
      t.from = static_cast<int>(from);
      t.to = static_cast<int>(to);
      t.guard = child->Attr("guard");
      t.action = child->Attr("action");
      def.transitions.push_back(std::move(t));
      transition_elems.push_back(child.get());
    } else {
      return ctx.Error(*child, "unknown chart element <" + n + ">");
    }
  }
  // Out-of-range state indices would flow straight into the lowering's
  // states[] accesses; reject them here with a source location instead.
  const int n_states = static_cast<int>(def.states.size());
  if (n_states == 0) return ctx.Error(ce, "chart has no states");
  if (def.initial_state < 0 || def.initial_state >= n_states) {
    return ctx.Error(ce, StrFormat("chart 'initial' state index %d out of range (chart has %d "
                                   "states)",
                                   def.initial_state, n_states));
  }
  for (std::size_t i = 0; i < def.transitions.size(); ++i) {
    const auto& t = def.transitions[i];
    if (t.from < 0 || t.from >= n_states || t.to < 0 || t.to >= n_states) {
      return ctx.Error(*transition_elems[i],
                       StrFormat("transition %d->%d references a state out of range (chart has "
                                 "%d states)",
                                 t.from, t.to, n_states));
    }
  }
  return def;
}

Result<std::unique_ptr<Model>> LoadFrom(const xml::Element& elem, const LoadCtx& ctx) {
  if (elem.name() != "model") {
    return ctx.Error(elem, "expected <model> element, got <" + elem.name() + ">");
  }
  auto model = std::make_unique<Model>(elem.Attr("name", "model"));

  struct PendingWire {
    std::string from;
    std::string to;
    const xml::Element* elem;
  };
  std::vector<PendingWire> wires;
  std::map<std::string, ir::BlockId> by_name;

  for (const auto& child : elem.children()) {
    if (child->name() == "block") {
      const std::string name = child->Attr("name");
      if (name.empty()) return ctx.Error(*child, "block without a name");
      const LoadCtx bctx = ctx.Nested(name);
      auto kind = ir::BlockKindFromName(child->Attr("kind"));
      if (!kind.ok()) return bctx.Error(*child, kind.status().message());
      if (by_name.count(name)) return ctx.Error(*child, "duplicate block name '" + name + "'");
      Block& b = model->AddBlock(kind.value(), name);
      by_name[name] = b.id();
      for (const auto& sub : child->children()) {
        if (sub->name() == "param") {
          auto value = ParseParamStrict(sub->Attr("kind", "str"), sub->text());
          if (!value.ok()) {
            return bctx.Error(*sub,
                              "parameter '" + sub->Attr("name") + "' " + value.message());
          }
          b.params().Set(sub->Attr("name"), value.take());
        } else if (sub->name() == "chart") {
          auto chart = LoadChart(*sub, bctx);
          if (!chart.ok()) return chart.status();
          b.set_chart(chart.take());
        } else if (sub->name() == "sub") {
          const xml::Element* me = sub->FirstChild("model");
          if (me == nullptr) return bctx.Error(*sub, "<sub> without <model>");
          auto loaded = LoadFrom(*me, bctx);
          if (!loaded.ok()) return loaded.status();
          b.AdoptSub(loaded.take());
        } else {
          return bctx.Error(*sub, "unknown block child <" + sub->name() + ">");
        }
      }
    } else if (child->name() == "wire") {
      wires.push_back(PendingWire{child->Attr("from"), child->Attr("to"), child.get()});
    } else {
      return ctx.Error(*child, "unknown model element <" + child->name() + ">");
    }
  }

  auto parse_ref = [&](const PendingWire& w, const std::string& ref, std::string& name,
                       int& port) -> Status {
    const std::size_t colon = ref.rfind(':');
    if (colon == std::string::npos) {
      name = ref;
      port = 0;
    } else {
      name = ref.substr(0, colon);
      long long p = 0;
      if (!ParseInt64(ref.substr(colon + 1), p)) {
        return ctx.Error(*w.elem, "bad port reference '" + ref + "'");
      }
      port = static_cast<int>(p);
    }
    if (!by_name.count(name)) {
      return ctx.Error(*w.elem, "wire references unknown block '" + name + "'");
    }
    return Status::Ok();
  };

  for (const auto& w : wires) {
    std::string from_name;
    std::string to_name;
    int from_port = 0;
    int to_port = 0;
    if (Status s = parse_ref(w, w.from, from_name, from_port); !s.ok()) return s;
    if (Status s = parse_ref(w, w.to, to_name, to_port); !s.ok()) return s;
    model->AddWire(ir::PortRef{by_name[from_name], from_port}, by_name[to_name], to_port);
  }
  return model;
}

}  // namespace

Result<std::unique_ptr<Model>> LoadModel(const std::string& xml_text) {
  auto doc = xml::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  return LoadFrom(*doc.value().root, LoadCtx{"<memory>", ""});
}

Result<std::unique_ptr<Model>> LoadModelFile(const std::string& path) {
  auto doc = xml::ParseFile(path);
  if (!doc.ok()) {
    return Status::Error(path + ": " + doc.message());
  }
  return LoadFrom(*doc.value().root, LoadCtx{path, ""});
}

std::string SaveModel(const Model& model) {
  xml::Element root("model");
  SaveInto(model, root);
  return xml::Write(root);
}

Status SaveModelFile(const Model& model, const std::string& path) {
  xml::Element root("model");
  SaveInto(model, root);
  return xml::WriteFile(root, path);
}

}  // namespace cftcg::parser
