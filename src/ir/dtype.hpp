// Signal data types.
//
// These mirror the Simulink built-in types used by embedded controller
// models. The byte sizes drive the fuzz driver's tuple layout (one model
// iteration consumes the sum of the inport type sizes, cf. Figure 3 of the
// paper) and the field-wise mutation boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.hpp"

namespace cftcg::ir {

enum class DType : std::uint8_t {
  kBool,
  kInt8,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kSingle,
  kDouble,
};

inline constexpr int kNumDTypes = 9;

/// Storage size in bytes (matches the generated C code's layout).
std::size_t DTypeSize(DType t);

bool DTypeIsFloat(DType t);
bool DTypeIsInteger(DType t);
bool DTypeIsSigned(DType t);

/// Inclusive representable range for integer types (used by mutation and by
/// the constraint baseline's interval domain).
std::int64_t DTypeMin(DType t);
std::int64_t DTypeMax(DType t);

/// Wraps a wide integer into the type's representable range using two's
/// complement semantics (what the generated C code does on overflow).
std::int64_t WrapToDType(std::int64_t value, DType t);

/// Name used in model files and generated code ("int32", "boolean", ...).
std::string_view DTypeName(DType t);
Result<DType> DTypeFromName(std::string_view name);

/// C type name used by the code emitter ("int32_T", ...).
std::string_view DTypeCName(DType t);

/// Usual arithmetic promotion for two operand types: any float wins (double
/// over single); otherwise the wider integer; equal-width signed/unsigned
/// promotes to the signed next width, saturating at int32.
DType PromoteDTypes(DType a, DType b);

}  // namespace cftcg::ir
