// Typed runtime value for scalar signals.
//
// Integers (and booleans) are held in an int64 payload already wrapped to the
// declared width; floats are held in a double payload (kSingle values are
// rounded through float). This is the value representation used by the
// interpreter, the parser and the baselines; the VM uses raw register files
// for speed.
#pragma once

#include <cstdint>
#include <string>

#include "ir/dtype.hpp"

namespace cftcg::ir {

class Value {
 public:
  Value() : type_(DType::kDouble), d_(0) {}

  static Value Bool(bool b);
  static Value Int(DType t, std::int64_t v);   // wraps to width
  static Value Real(DType t, double v);        // rounds through float for kSingle
  static Value Double(double v) { return Real(DType::kDouble, v); }

  /// Reinterprets a raw little-endian byte buffer of DTypeSize(t) bytes —
  /// exactly what the generated fuzz driver's memcpy does.
  static Value FromBytes(DType t, const std::uint8_t* bytes);
  /// Inverse of FromBytes; writes DTypeSize(type()) bytes.
  void ToBytes(std::uint8_t* bytes) const;

  [[nodiscard]] DType type() const { return type_; }

  /// Numeric view as double (integers convert exactly below 2^53).
  [[nodiscard]] double AsDouble() const;
  /// Integer view; floats truncate toward zero.
  [[nodiscard]] std::int64_t AsInt64() const;
  [[nodiscard]] bool AsBool() const;

  /// Converts to another type with C cast semantics (wrap for ints, round
  /// through float for single).
  [[nodiscard]] Value CastTo(DType t) const;

  /// Exact comparison (same type and payload).
  bool operator==(const Value& other) const;

  [[nodiscard]] std::string ToString() const;

 private:
  DType type_;
  union {
    std::int64_t i_;
    double d_;
  };
};

}  // namespace cftcg::ir
