#include "ir/model.hpp"

#include <algorithm>
#include <cassert>

namespace cftcg::ir {

Model& Block::AddSub(std::string name) {
  subs_.push_back(std::make_unique<Model>(std::move(name)));
  return *subs_.back();
}

Block& Model::AddBlock(BlockKind kind, std::string name) {
  const BlockId id = static_cast<BlockId>(blocks_.size());
  blocks_.emplace_back(id, kind, std::move(name));
  return blocks_.back();
}

const Block* Model::FindBlock(std::string_view name) const {
  for (const auto& b : blocks_) {
    if (b.name() == name) return &b;
  }
  return nullptr;
}

void Model::AddWire(PortRef src, BlockId dst_block, int dst_port) {
  wires_.push_back(Wire{src, dst_block, dst_port});
}

const Wire* Model::DriverOf(BlockId block, int port) const {
  for (const auto& w : wires_) {
    if (w.dst_block == block && w.dst_port == port) return &w;
  }
  return nullptr;
}

namespace {

std::vector<BlockId> PortsOfKind(const Model& model, BlockKind kind) {
  std::vector<BlockId> ids;
  for (const auto& b : model.blocks()) {
    if (b.kind() == kind) ids.push_back(b.id());
  }
  std::sort(ids.begin(), ids.end(), [&](BlockId a, BlockId b) {
    return model.block(a).params().GetInt("port", 0) < model.block(b).params().GetInt("port", 0);
  });
  return ids;
}

}  // namespace

std::vector<BlockId> Model::Inports() const { return PortsOfKind(*this, BlockKind::kInport); }
std::vector<BlockId> Model::Outports() const { return PortsOfKind(*this, BlockKind::kOutport); }

std::size_t Model::TotalBlockCount() const {
  std::size_t total = blocks_.size();
  for (const auto& b : blocks_) {
    for (const auto& sub : b.subs()) total += sub->TotalBlockCount();
  }
  return total;
}

std::unique_ptr<Model> Model::Clone() const {
  auto copy = std::make_unique<Model>(name_);
  for (const auto& b : blocks_) {
    Block& nb = copy->AddBlock(b.kind(), b.name());
    nb.params() = b.params();
    nb.set_port_counts(b.num_inputs(), b.num_outputs());
    nb.set_out_types(b.out_types());
    if (b.chart()) nb.set_chart(*b.chart());
    for (const auto& sub : b.subs()) nb.AdoptSub(sub->Clone());
  }
  for (const auto& w : wires_) copy->AddWire(w.src, w.dst_block, w.dst_port);
  return copy;
}

}  // namespace cftcg::ir
