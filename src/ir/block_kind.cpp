#include "ir/block_kind.hpp"

#include <array>

namespace cftcg::ir {
namespace {

constexpr std::array<std::string_view, kNumBlockKinds> kNames = {
    "Inport",
    "Outport",
    "Constant",
    "Gain",
    "Bias",
    "Sum",
    "Subtract",
    "Product",
    "Divide",
    "Abs",
    "UnaryMinus",
    "Min",
    "Max",
    "Sign",
    "Sqrt",
    "Exp",
    "Log",
    "Floor",
    "Ceil",
    "Round",
    "Mod",
    "Rem",
    "Sin",
    "Cos",
    "Tan",
    "Atan2",
    "Pow",
    "Saturation",
    "DeadZone",
    "RateLimiter",
    "Quantizer",
    "Relay",
    "RelationalOp",
    "CompareToConstant",
    "CompareToZero",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "LogicalXor",
    "LogicalNand",
    "LogicalNor",
    "BitwiseAnd",
    "BitwiseOr",
    "BitwiseXor",
    "ShiftLeft",
    "ShiftRight",
    "Switch",
    "MultiportSwitch",
    "Merge",
    "UnitDelay",
    "Delay",
    "Memory",
    "DiscreteIntegrator",
    "CounterLimited",
    "EdgeDetector",
    "Lookup1D",
    "DataTypeConversion",
    "Subsystem",
    "ActionIf",
    "ActionSwitch",
    "EnabledSubsystem",
    "Chart",
    "ExprFunc",
};

}  // namespace

std::string_view BlockKindName(BlockKind kind) {
  return kNames[static_cast<std::size_t>(kind)];
}

Result<BlockKind> BlockKindFromName(std::string_view name) {
  for (int i = 0; i < kNumBlockKinds; ++i) {
    if (kNames[static_cast<std::size_t>(i)] == name) return static_cast<BlockKind>(i);
  }
  return Status::Error("unknown block kind: " + std::string(name));
}

bool BlockKindIsCompound(BlockKind kind) {
  switch (kind) {
    case BlockKind::kSubsystem:
    case BlockKind::kActionIf:
    case BlockKind::kActionSwitch:
    case BlockKind::kEnabledSubsystem: return true;
    default: return false;
  }
}

}  // namespace cftcg::ir
