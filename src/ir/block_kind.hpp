// The block vocabulary.
//
// The paper reports "block templates for over fifty commonly used blocks";
// this enum is our equivalent vocabulary, covering the discrete-time control
// blocks that appear in the eight benchmark model domains (Table 2). Block
// *semantics* (port counts, typing, state, lowering, interpretation) live in
// src/blocks; this header only names the kinds so the IR stays lightweight.
#pragma once

#include <string_view>

#include "support/status.hpp"

namespace cftcg::ir {

enum class BlockKind : int {
  // -- Ports & sources --------------------------------------------------
  kInport,
  kOutport,
  kConstant,
  // -- Math --------------------------------------------------------------
  kGain,
  kBias,
  kSum,
  kSubtract,
  kProduct,
  kDivide,
  kAbs,
  kUnaryMinus,
  kMin,
  kMax,
  kSign,
  kSqrt,
  kExp,
  kLog,
  kFloor,
  kCeil,
  kRound,
  kMod,
  kRem,
  kSin,
  kCos,
  kTan,
  kAtan2,
  kPow,
  // -- Discontinuities (decision-bearing, instrumentation mode (d)) -------
  kSaturation,
  kDeadZone,
  kRateLimiter,
  kQuantizer,
  kRelay,
  // -- Logic & comparisons (modes (a)) ------------------------------------
  kRelationalOp,       // param "op": lt/le/gt/ge/eq/ne
  kCompareToConstant,  // params "op", "value"
  kCompareToZero,      // param "op"
  kLogicalAnd,         // param "inputs" (>=2)
  kLogicalOr,
  kLogicalNot,
  kLogicalXor,
  kLogicalNand,
  kLogicalNor,
  kBitwiseAnd,
  kBitwiseOr,
  kBitwiseXor,
  kShiftLeft,   // param "bits"
  kShiftRight,  // param "bits"
  // -- Signal routing (modes (b)) -----------------------------------------
  kSwitch,           // params "criteria" (gt/ge/ne), "threshold"
  kMultiportSwitch,  // param "cases"
  kMerge,
  // -- Discrete (stateful) -------------------------------------------------
  kUnitDelay,           // param "init"
  kDelay,               // params "length", "init"
  kMemory,              // param "init"
  kDiscreteIntegrator,  // params "gain", "init", optional "upper"/"lower" (limited: mode (d))
  kCounterLimited,      // param "limit" (wraps; wrap check is a decision)
  kEdgeDetector,        // param "edge": rising/falling/either
  // -- Lookup ----------------------------------------------------------------
  kLookup1D,  // params "breakpoints", "table"
  // -- Conversion --------------------------------------------------------------
  kDataTypeConversion,  // param "to"
  // -- Hierarchy (modes (c)) ----------------------------------------------------
  kSubsystem,         // virtual grouping; flattened by the scheduler
  kActionIf,          // 1 bool condition + N data inputs; then/else sub-models
  kActionSwitch,      // 1 int control + N data inputs; K case sub-models + default
  kEnabledSubsystem,  // 1 enable + N data inputs; holds outputs while disabled
  // -- Complex logic -----------------------------------------------------------
  kChart,     // Stateflow-like state machine (mode (d))
  kExprFunc,  // MATLAB-Function-like expression block (mode (d))
};

inline constexpr int kNumBlockKinds = static_cast<int>(BlockKind::kExprFunc) + 1;

std::string_view BlockKindName(BlockKind kind);
Result<BlockKind> BlockKindFromName(std::string_view name);

/// True for the four compound kinds that own sub-models.
bool BlockKindIsCompound(BlockKind kind);

}  // namespace cftcg::ir
