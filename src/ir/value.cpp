#include "ir/value.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "support/strings.hpp"

namespace cftcg::ir {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = DType::kBool;
  v.i_ = b ? 1 : 0;
  return v;
}

Value Value::Int(DType t, std::int64_t raw) {
  assert(!DTypeIsFloat(t));
  Value v;
  v.type_ = t;
  v.i_ = WrapToDType(raw, t);
  return v;
}

Value Value::Real(DType t, double raw) {
  assert(DTypeIsFloat(t));
  Value v;
  v.type_ = t;
  v.d_ = (t == DType::kSingle) ? static_cast<double>(static_cast<float>(raw)) : raw;
  return v;
}

Value Value::FromBytes(DType t, const std::uint8_t* bytes) {
  switch (t) {
    case DType::kBool: return Bool((*bytes & 1) != 0);
    case DType::kInt8: {
      std::int8_t v;
      std::memcpy(&v, bytes, 1);
      return Int(t, v);
    }
    case DType::kUInt8: {
      std::uint8_t v;
      std::memcpy(&v, bytes, 1);
      return Int(t, v);
    }
    case DType::kInt16: {
      std::int16_t v;
      std::memcpy(&v, bytes, 2);
      return Int(t, v);
    }
    case DType::kUInt16: {
      std::uint16_t v;
      std::memcpy(&v, bytes, 2);
      return Int(t, v);
    }
    case DType::kInt32: {
      std::int32_t v;
      std::memcpy(&v, bytes, 4);
      return Int(t, v);
    }
    case DType::kUInt32: {
      std::uint32_t v;
      std::memcpy(&v, bytes, 4);
      return Int(t, v);
    }
    case DType::kSingle: {
      float v;
      std::memcpy(&v, bytes, 4);
      // Normalize NaN/Inf payloads out of the driver: Simulink models reject
      // non-finite external inputs, and the generated driver clamps them.
      if (!std::isfinite(v)) v = 0.0F;
      return Real(t, v);
    }
    case DType::kDouble: {
      double v;
      std::memcpy(&v, bytes, 8);
      if (!std::isfinite(v)) v = 0.0;
      return Real(t, v);
    }
  }
  return Value();
}

void Value::ToBytes(std::uint8_t* bytes) const {
  switch (type_) {
    case DType::kBool: {
      *bytes = i_ ? 1 : 0;
      return;
    }
    case DType::kInt8:
    case DType::kUInt8: {
      auto v = static_cast<std::uint8_t>(i_);
      std::memcpy(bytes, &v, 1);
      return;
    }
    case DType::kInt16:
    case DType::kUInt16: {
      auto v = static_cast<std::uint16_t>(i_);
      std::memcpy(bytes, &v, 2);
      return;
    }
    case DType::kInt32:
    case DType::kUInt32: {
      auto v = static_cast<std::uint32_t>(i_);
      std::memcpy(bytes, &v, 4);
      return;
    }
    case DType::kSingle: {
      auto v = static_cast<float>(d_);
      std::memcpy(bytes, &v, 4);
      return;
    }
    case DType::kDouble: {
      std::memcpy(bytes, &d_, 8);
      return;
    }
  }
}

double Value::AsDouble() const {
  return DTypeIsFloat(type_) ? d_ : static_cast<double>(i_);
}

std::int64_t Value::AsInt64() const {
  if (!DTypeIsFloat(type_)) return i_;
  if (!std::isfinite(d_)) return 0;
  // Truncate toward zero, clamping to int64 range.
  if (d_ >= 9.2233720368547758e18) return INT64_MAX;
  if (d_ <= -9.2233720368547758e18) return INT64_MIN;
  return static_cast<std::int64_t>(d_);
}

bool Value::AsBool() const { return DTypeIsFloat(type_) ? d_ != 0.0 : i_ != 0; }

Value Value::CastTo(DType t) const {
  if (t == type_) return *this;
  if (DTypeIsFloat(t)) return Real(t, AsDouble());
  if (t == DType::kBool) return Bool(AsBool());
  return Int(t, AsInt64());
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  if (DTypeIsFloat(type_)) return d_ == other.d_;
  return i_ == other.i_;
}

std::string Value::ToString() const {
  if (DTypeIsFloat(type_)) return DoubleToString(d_);
  if (type_ == DType::kBool) return i_ ? "true" : "false";
  return StrFormat("%lld", static_cast<long long>(i_));
}

}  // namespace cftcg::ir
