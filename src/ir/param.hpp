// Block parameters.
//
// Parameters are what a model file attaches to a block besides its wiring:
// gains, thresholds, initial states, lookup-table data, relational operator
// choice, chart source, ... They are stored as a small variant and looked up
// by name with typed accessors that validate at model-load time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "support/status.hpp"

namespace cftcg::ir {

class ParamValue {
 public:
  ParamValue() : v_(0.0) {}
  ParamValue(double d) : v_(d) {}                       // NOLINT
  ParamValue(std::int64_t i) : v_(i) {}                 // NOLINT
  ParamValue(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  ParamValue(std::string s) : v_(std::move(s)) {}       // NOLINT
  ParamValue(const char* s) : v_(std::string(s)) {}     // NOLINT
  ParamValue(std::vector<double> xs) : v_(std::move(xs)) {}  // NOLINT

  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_) || std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_list() const { return std::holds_alternative<std::vector<double>>(v_); }

  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] std::int64_t AsInt64() const;
  [[nodiscard]] const std::string& AsString() const;
  [[nodiscard]] const std::vector<double>& AsList() const;

  /// Serialized form used by the XML writer; Parse is its inverse.
  [[nodiscard]] std::string Serialize() const;
  static ParamValue Parse(const std::string& kind, const std::string& text);
  [[nodiscard]] std::string SerializedKind() const;

  bool operator==(const ParamValue& other) const = default;

 private:
  std::variant<double, std::int64_t, std::string, std::vector<double>> v_;
};

/// Name -> value map with typed, defaulting accessors.
class ParamMap {
 public:
  void Set(const std::string& key, ParamValue value) { params_[key] = std::move(value); }
  [[nodiscard]] bool Has(const std::string& key) const { return params_.count(key) != 0; }

  [[nodiscard]] double GetDouble(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key, std::int64_t fallback = 0) const;
  [[nodiscard]] std::string GetString(const std::string& key, const std::string& fallback = "") const;
  [[nodiscard]] std::vector<double> GetList(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, ParamValue>& entries() const { return params_; }

  bool operator==(const ParamMap& other) const = default;

 private:
  std::map<std::string, ParamValue> params_;
};

}  // namespace cftcg::ir
