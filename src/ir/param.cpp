#include "ir/param.hpp"

#include <cassert>

#include "support/strings.hpp"

namespace cftcg::ir {

double ParamValue::AsDouble() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  return 0.0;
}

std::int64_t ParamValue::AsInt64() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) return static_cast<std::int64_t>(*d);
  return 0;
}

const std::string& ParamValue::AsString() const {
  static const std::string kEmpty;
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  return kEmpty;
}

const std::vector<double>& ParamValue::AsList() const {
  static const std::vector<double> kEmpty;
  if (const auto* xs = std::get_if<std::vector<double>>(&v_)) return *xs;
  return kEmpty;
}

std::string ParamValue::Serialize() const {
  if (const auto* d = std::get_if<double>(&v_)) return DoubleToString(*d);
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return StrFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  const auto& xs = std::get<std::vector<double>>(v_);
  std::vector<std::string> parts;
  parts.reserve(xs.size());
  for (double x : xs) parts.push_back(DoubleToString(x));
  return JoinStrings(parts, " ");
}

std::string ParamValue::SerializedKind() const {
  if (std::holds_alternative<double>(v_)) return "real";
  if (std::holds_alternative<std::int64_t>(v_)) return "int";
  if (std::holds_alternative<std::string>(v_)) return "str";
  return "list";
}

ParamValue ParamValue::Parse(const std::string& kind, const std::string& text) {
  if (kind == "real") {
    double d = 0;
    ParseDouble(text, d);
    return ParamValue(d);
  }
  if (kind == "int") {
    long long i = 0;
    ParseInt64(text, i);
    return ParamValue(static_cast<std::int64_t>(i));
  }
  if (kind == "list") {
    std::vector<double> xs;
    for (const auto& part : SplitString(text, ' ')) {
      if (TrimString(part).empty()) continue;
      double d = 0;
      ParseDouble(part, d);
      xs.push_back(d);
    }
    return ParamValue(std::move(xs));
  }
  return ParamValue(text);
}

double ParamMap::GetDouble(const std::string& key, double fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? fallback : it->second.AsDouble();
}

std::int64_t ParamMap::GetInt(const std::string& key, std::int64_t fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? fallback : it->second.AsInt64();
}

std::string ParamMap::GetString(const std::string& key, const std::string& fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? fallback : it->second.AsString();
}

std::vector<double> ParamMap::GetList(const std::string& key) const {
  auto it = params_.find(key);
  return it == params_.end() ? std::vector<double>{} : it->second.AsList();
}

}  // namespace cftcg::ir
