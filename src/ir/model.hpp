// The model graph: blocks connected by wires, possibly hierarchical through
// compound blocks that own sub-models.
//
// This is the in-memory equivalent of an unzipped Simulink .slx: what the
// paper's Model Parser produces and every later stage (schedule conversion,
// branch instrumentation, code synthesis, simulation) consumes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/block_kind.hpp"
#include "ir/chart.hpp"
#include "ir/dtype.hpp"
#include "ir/param.hpp"

namespace cftcg::ir {

using BlockId = int;
inline constexpr BlockId kNoBlock = -1;

/// Identifies one output port of one block.
struct PortRef {
  BlockId block = kNoBlock;
  int port = 0;

  bool operator==(const PortRef&) const = default;
};

/// A connection from a source output port to a destination input port.
/// Every input port of every block must be driven by exactly one wire.
struct Wire {
  PortRef src;
  BlockId dst_block = kNoBlock;
  int dst_port = 0;

  bool operator==(const Wire&) const = default;
};

class Model;

class Block {
 public:
  Block(BlockId id, BlockKind kind, std::string name)
      : id_(id), kind_(kind), name_(std::move(name)) {}

  // Blocks own sub-models through unique_ptr; they move but do not copy.
  Block(Block&&) = default;
  Block& operator=(Block&&) = default;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] BlockId id() const { return id_; }
  [[nodiscard]] BlockKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] ParamMap& params() { return params_; }
  [[nodiscard]] const ParamMap& params() const { return params_; }

  /// Port counts; fixed by kind + params, filled in by analysis (src/blocks).
  [[nodiscard]] int num_inputs() const { return num_inputs_; }
  [[nodiscard]] int num_outputs() const { return num_outputs_; }
  void set_port_counts(int in, int out) {
    num_inputs_ = in;
    num_outputs_ = out;
  }

  /// Inferred output types, one per output port (filled in by analysis).
  [[nodiscard]] const std::vector<DType>& out_types() const { return out_types_; }
  void set_out_types(std::vector<DType> types) { out_types_ = std::move(types); }
  [[nodiscard]] DType out_type(int port = 0) const { return out_types_.at(static_cast<std::size_t>(port)); }

  /// Sub-models for compound blocks (ActionIf: {then, else}; ActionSwitch:
  /// {case 0..K-1, default}; Subsystem/EnabledSubsystem: {body}).
  [[nodiscard]] const std::vector<std::unique_ptr<Model>>& subs() const { return subs_; }
  Model& AddSub(std::string name);
  void AdoptSub(std::unique_ptr<Model> sub) { subs_.push_back(std::move(sub)); }

  /// Chart definition; only present for kChart blocks.
  [[nodiscard]] const std::optional<ChartDef>& chart() const { return chart_; }
  void set_chart(ChartDef chart) { chart_ = std::move(chart); }

 private:
  BlockId id_;
  BlockKind kind_;
  std::string name_;
  ParamMap params_;
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  std::vector<DType> out_types_;
  std::vector<std::unique_ptr<Model>> subs_;
  std::optional<ChartDef> chart_;
};

class Model {
 public:
  explicit Model(std::string name = "model") : name_(std::move(name)) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Block& AddBlock(BlockKind kind, std::string name);
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] std::vector<Block>& blocks() { return blocks_; }
  [[nodiscard]] const Block& block(BlockId id) const { return blocks_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] Block& block(BlockId id) { return blocks_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const Block* FindBlock(std::string_view name) const;

  void AddWire(PortRef src, BlockId dst_block, int dst_port);
  [[nodiscard]] const std::vector<Wire>& wires() const { return wires_; }

  /// The wire driving (block, port), or nullptr if the port is unconnected
  /// (which validation rejects).
  [[nodiscard]] const Wire* DriverOf(BlockId block, int port) const;

  /// Inport blocks in port-index order (the fuzz driver's field order) and
  /// Outport blocks in port-index order. Populated lazily from the blocks.
  [[nodiscard]] std::vector<BlockId> Inports() const;
  [[nodiscard]] std::vector<BlockId> Outports() const;

  /// Total number of blocks including those inside compound sub-models
  /// (the paper's Table 2 "#Block").
  [[nodiscard]] std::size_t TotalBlockCount() const;

  /// Deep copy (sub-models included).
  [[nodiscard]] std::unique_ptr<Model> Clone() const;

 private:
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<Wire> wires_;
};

}  // namespace cftcg::ir
