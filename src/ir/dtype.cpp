#include "ir/dtype.hpp"

#include <array>
#include <cassert>

namespace cftcg::ir {
namespace {

struct DTypeInfo {
  std::string_view name;
  std::string_view cname;
  std::size_t size;
  bool is_float;
  bool is_signed;
  std::int64_t min;
  std::int64_t max;
};

constexpr std::array<DTypeInfo, kNumDTypes> kInfo = {{
    {"boolean", "boolean_T", 1, false, false, 0, 1},
    {"int8", "int8_T", 1, false, true, -128, 127},
    {"uint8", "uint8_T", 1, false, false, 0, 255},
    {"int16", "int16_T", 2, false, true, -32768, 32767},
    {"uint16", "uint16_T", 2, false, false, 0, 65535},
    {"int32", "int32_T", 4, false, true, INT32_MIN, INT32_MAX},
    {"uint32", "uint32_T", 4, false, false, 0, UINT32_MAX},
    {"single", "real32_T", 4, true, true, 0, 0},
    {"double", "real_T", 8, true, true, 0, 0},
}};

const DTypeInfo& Info(DType t) { return kInfo[static_cast<std::size_t>(t)]; }

}  // namespace

std::size_t DTypeSize(DType t) { return Info(t).size; }
bool DTypeIsFloat(DType t) { return Info(t).is_float; }
bool DTypeIsInteger(DType t) { return !Info(t).is_float && t != DType::kBool; }
bool DTypeIsSigned(DType t) { return Info(t).is_signed; }

std::int64_t DTypeMin(DType t) {
  assert(!DTypeIsFloat(t));
  return Info(t).min;
}

std::int64_t DTypeMax(DType t) {
  assert(!DTypeIsFloat(t));
  return Info(t).max;
}

std::int64_t WrapToDType(std::int64_t value, DType t) {
  switch (t) {
    case DType::kBool: return value != 0 ? 1 : 0;
    case DType::kInt8: return static_cast<std::int8_t>(value);
    case DType::kUInt8: return static_cast<std::uint8_t>(value);
    case DType::kInt16: return static_cast<std::int16_t>(value);
    case DType::kUInt16: return static_cast<std::uint16_t>(value);
    case DType::kInt32: return static_cast<std::int32_t>(value);
    case DType::kUInt32: return static_cast<std::uint32_t>(value);
    case DType::kSingle:
    case DType::kDouble: return value;
  }
  return value;
}

std::string_view DTypeName(DType t) { return Info(t).name; }
std::string_view DTypeCName(DType t) { return Info(t).cname; }

Result<DType> DTypeFromName(std::string_view name) {
  for (int i = 0; i < kNumDTypes; ++i) {
    if (kInfo[static_cast<std::size_t>(i)].name == name) return static_cast<DType>(i);
  }
  return Status::Error("unknown data type: " + std::string(name));
}

DType PromoteDTypes(DType a, DType b) {
  if (a == DType::kDouble || b == DType::kDouble) return DType::kDouble;
  if (a == DType::kSingle || b == DType::kSingle) return DType::kSingle;
  if (a == b) return a;
  if (a == DType::kBool) return b;
  if (b == DType::kBool) return a;
  const std::size_t wa = DTypeSize(a);
  const std::size_t wb = DTypeSize(b);
  if (wa != wb) {
    // Wider type wins; if the narrower is signed and the wider unsigned keep
    // the wider unsigned type (C conversion rules).
    return wa > wb ? a : b;
  }
  // Same width, mixed signedness: promote to the signed type one width up,
  // capped at int32 (embedded models do not use 64-bit signals).
  if (wa == 1) return DType::kInt16;
  if (wa == 2) return DType::kInt32;
  return DType::kInt32;
}

}  // namespace cftcg::ir
