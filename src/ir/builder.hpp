// ModelBuilder: fluent construction API for model graphs.
//
// Used by the benchmark-model suite, the examples and the tests. Inputs are
// given as PortRefs so dataflow reads top-down:
//
//   ModelBuilder mb("demo");
//   auto u = mb.Inport("u", DType::kInt32);
//   auto k = mb.Constant(10);
//   auto s = mb.Op(BlockKind::kSum, "add", {u, k});
//   mb.Outport("y", s);
//   auto model = mb.Build();
//
// The builder performs no semantic checking; run blocks::AnalyzeModel on the
// result to validate and type the graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/model.hpp"

namespace cftcg::ir {

class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name) : model_(std::make_unique<Model>(std::move(name))) {}

  /// Adds an inport; port indices are assigned in call order (0-based).
  PortRef Inport(const std::string& name, DType type);

  /// Adds an outport driven by src; port indices assigned in call order.
  void Outport(const std::string& name, PortRef src);

  PortRef Constant(double value, DType type = DType::kDouble);
  PortRef ConstantInt(std::int64_t value, DType type);
  PortRef ConstantBool(bool value);

  /// Adds a block of any kind, wiring `inputs` to its input ports in order.
  /// Returns output port 0. Use the BlockId overloads for multi-output
  /// blocks or when parameters must be set after creation.
  PortRef Op(BlockKind kind, const std::string& name, const std::vector<PortRef>& inputs,
             ParamMap params = {});

  BlockId AddBlock(BlockKind kind, const std::string& name, const std::vector<PortRef>& inputs,
                   ParamMap params = {});

  /// Adds a compound block owning the given sub-models.
  BlockId AddCompound(BlockKind kind, const std::string& name, const std::vector<PortRef>& inputs,
                      std::vector<std::unique_ptr<Model>> subs, ParamMap params = {});

  /// Adds a Stateflow-like chart block.
  BlockId AddChart(const std::string& name, const std::vector<PortRef>& inputs, ChartDef chart);

  /// Output port `port` of block `id`.
  [[nodiscard]] static PortRef Out(BlockId id, int port = 0) { return PortRef{id, port}; }

  /// Adds a wire after the fact (for feedback loops through delays: create
  /// the delay with a placeholder, then connect its input here).
  void Connect(PortRef src, BlockId dst, int dst_port);

  [[nodiscard]] Model& model() { return *model_; }

  /// Convenience single-input helpers.
  PortRef Gain(PortRef in, double k, const std::string& name = "");
  PortRef Sum(PortRef a, PortRef b, const std::string& name = "");
  PortRef Sub(PortRef a, PortRef b, const std::string& name = "");
  PortRef Mul(PortRef a, PortRef b, const std::string& name = "");
  PortRef Relational(const std::string& op, PortRef a, PortRef b, const std::string& name = "");
  PortRef And(const std::vector<PortRef>& ins, const std::string& name = "");
  PortRef Or(const std::vector<PortRef>& ins, const std::string& name = "");
  PortRef Not(PortRef a, const std::string& name = "");
  PortRef Switch(PortRef on_true, PortRef control, PortRef on_false, double threshold = 0.5,
                 const std::string& name = "");
  PortRef UnitDelay(PortRef in, double init = 0.0, const std::string& name = "");
  PortRef Saturation(PortRef in, double lo, double hi, const std::string& name = "");

  /// Relinquishes the built model.
  std::unique_ptr<Model> Build() { return std::move(model_); }

 private:
  std::string AutoName(const std::string& given, const char* stem);

  std::unique_ptr<Model> model_;
  int next_inport_ = 0;
  int next_outport_ = 0;
  int auto_counter_ = 0;
};

}  // namespace cftcg::ir
