// Stateflow-like chart definition (pure data; the `mex` expression strings
// are compiled by src/blocks at analysis time).
//
// Semantics (a faithful subset of Stateflow's discrete charts):
//   * exactly one active state per chart;
//   * on every step, outgoing transitions of the active state are evaluated
//     in priority order; the first transition whose guard holds fires:
//     exit action of the source, transition action, entry action of the
//     destination run in that order;
//   * if no transition fires, the active state's `during` action runs;
//   * guards/actions read chart inputs and chart variables; actions may
//     assign chart variables and outputs.
// Every transition guard is a decision (instrumentation mode (d)); its leaf
// boolean terms are conditions.
#pragma once

#include <string>
#include <vector>

#include "ir/dtype.hpp"

namespace cftcg::ir {

struct ChartState {
  std::string name;
  std::string entry_action;   // mex statements, may be empty
  std::string during_action;  // mex statements, may be empty
  std::string exit_action;    // mex statements, may be empty
};

struct ChartTransition {
  int from = 0;        // state index
  int to = 0;          // state index
  std::string guard;   // mex expression; empty = always true
  std::string action;  // mex statements, may be empty
  // Transitions are stored in evaluation order (priority = position among
  // the source state's outgoing transitions).
};

struct ChartVar {
  std::string name;
  double init = 0.0;
};

struct ChartOutput {
  std::string name;
  DType type = DType::kDouble;
  double init = 0.0;
};

struct ChartDef {
  std::vector<std::string> inputs;  // names bound to block input ports, in order
  std::vector<ChartOutput> outputs;
  std::vector<ChartVar> vars;
  std::vector<ChartState> states;
  std::vector<ChartTransition> transitions;
  int initial_state = 0;

  bool operator==(const ChartDef&) const = default;
};

inline bool operator==(const ChartState& a, const ChartState& b) {
  return a.name == b.name && a.entry_action == b.entry_action &&
         a.during_action == b.during_action && a.exit_action == b.exit_action;
}
inline bool operator==(const ChartTransition& a, const ChartTransition& b) {
  return a.from == b.from && a.to == b.to && a.guard == b.guard && a.action == b.action;
}
inline bool operator==(const ChartVar& a, const ChartVar& b) {
  return a.name == b.name && a.init == b.init;
}
inline bool operator==(const ChartOutput& a, const ChartOutput& b) {
  return a.name == b.name && a.type == b.type && a.init == b.init;
}

}  // namespace cftcg::ir
