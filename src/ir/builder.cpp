#include "ir/builder.hpp"

#include "support/strings.hpp"

namespace cftcg::ir {

std::string ModelBuilder::AutoName(const std::string& given, const char* stem) {
  if (!given.empty()) return given;
  return StrFormat("%s_%d", stem, auto_counter_++);
}

PortRef ModelBuilder::Inport(const std::string& name, DType type) {
  Block& b = model_->AddBlock(BlockKind::kInport, name);
  b.params().Set("port", ParamValue(static_cast<std::int64_t>(next_inport_++)));
  b.params().Set("type", ParamValue(std::string(DTypeName(type))));
  return PortRef{b.id(), 0};
}

void ModelBuilder::Outport(const std::string& name, PortRef src) {
  Block& b = model_->AddBlock(BlockKind::kOutport, name);
  b.params().Set("port", ParamValue(static_cast<std::int64_t>(next_outport_++)));
  model_->AddWire(src, b.id(), 0);
}

PortRef ModelBuilder::Constant(double value, DType type) {
  Block& b = model_->AddBlock(BlockKind::kConstant, AutoName("", "const"));
  b.params().Set("value", ParamValue(value));
  b.params().Set("type", ParamValue(std::string(DTypeName(type))));
  return PortRef{b.id(), 0};
}

PortRef ModelBuilder::ConstantInt(std::int64_t value, DType type) {
  Block& b = model_->AddBlock(BlockKind::kConstant, AutoName("", "const"));
  b.params().Set("value", ParamValue(static_cast<double>(value)));
  b.params().Set("type", ParamValue(std::string(DTypeName(type))));
  return PortRef{b.id(), 0};
}

PortRef ModelBuilder::ConstantBool(bool value) {
  return ConstantInt(value ? 1 : 0, DType::kBool);
}

BlockId ModelBuilder::AddBlock(BlockKind kind, const std::string& name,
                               const std::vector<PortRef>& inputs, ParamMap params) {
  Block& b = model_->AddBlock(kind, AutoName(name, "blk"));
  b.params() = std::move(params);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    model_->AddWire(inputs[i], b.id(), static_cast<int>(i));
  }
  return b.id();
}

PortRef ModelBuilder::Op(BlockKind kind, const std::string& name,
                         const std::vector<PortRef>& inputs, ParamMap params) {
  return PortRef{AddBlock(kind, name, inputs, std::move(params)), 0};
}

BlockId ModelBuilder::AddCompound(BlockKind kind, const std::string& name,
                                  const std::vector<PortRef>& inputs,
                                  std::vector<std::unique_ptr<Model>> subs, ParamMap params) {
  const BlockId id = AddBlock(kind, name, inputs, std::move(params));
  for (auto& sub : subs) model_->block(id).AdoptSub(std::move(sub));
  return id;
}

BlockId ModelBuilder::AddChart(const std::string& name, const std::vector<PortRef>& inputs,
                               ChartDef chart) {
  const BlockId id = AddBlock(BlockKind::kChart, name, inputs);
  model_->block(id).set_chart(std::move(chart));
  return id;
}

void ModelBuilder::Connect(PortRef src, BlockId dst, int dst_port) {
  model_->AddWire(src, dst, dst_port);
}

PortRef ModelBuilder::Gain(PortRef in, double k, const std::string& name) {
  ParamMap p;
  p.Set("gain", ParamValue(k));
  return Op(BlockKind::kGain, AutoName(name, "gain"), {in}, std::move(p));
}

PortRef ModelBuilder::Sum(PortRef a, PortRef b, const std::string& name) {
  return Op(BlockKind::kSum, AutoName(name, "sum"), {a, b});
}

PortRef ModelBuilder::Sub(PortRef a, PortRef b, const std::string& name) {
  return Op(BlockKind::kSubtract, AutoName(name, "sub"), {a, b});
}

PortRef ModelBuilder::Mul(PortRef a, PortRef b, const std::string& name) {
  return Op(BlockKind::kProduct, AutoName(name, "mul"), {a, b});
}

PortRef ModelBuilder::Relational(const std::string& op, PortRef a, PortRef b,
                                 const std::string& name) {
  ParamMap p;
  p.Set("op", ParamValue(op));
  return Op(BlockKind::kRelationalOp, AutoName(name, "rel"), {a, b}, std::move(p));
}

PortRef ModelBuilder::And(const std::vector<PortRef>& ins, const std::string& name) {
  ParamMap p;
  p.Set("inputs", ParamValue(static_cast<std::int64_t>(ins.size())));
  return Op(BlockKind::kLogicalAnd, AutoName(name, "and"), ins, std::move(p));
}

PortRef ModelBuilder::Or(const std::vector<PortRef>& ins, const std::string& name) {
  ParamMap p;
  p.Set("inputs", ParamValue(static_cast<std::int64_t>(ins.size())));
  return Op(BlockKind::kLogicalOr, AutoName(name, "or"), ins, std::move(p));
}

PortRef ModelBuilder::Not(PortRef a, const std::string& name) {
  return Op(BlockKind::kLogicalNot, AutoName(name, "not"), {a});
}

PortRef ModelBuilder::Switch(PortRef on_true, PortRef control, PortRef on_false, double threshold,
                             const std::string& name) {
  ParamMap p;
  p.Set("criteria", ParamValue(std::string("ge")));
  p.Set("threshold", ParamValue(threshold));
  return Op(BlockKind::kSwitch, AutoName(name, "switch"), {on_true, control, on_false},
            std::move(p));
}

PortRef ModelBuilder::UnitDelay(PortRef in, double init, const std::string& name) {
  ParamMap p;
  p.Set("init", ParamValue(init));
  return Op(BlockKind::kUnitDelay, AutoName(name, "delay"), {in}, std::move(p));
}

PortRef ModelBuilder::Saturation(PortRef in, double lo, double hi, const std::string& name) {
  ParamMap p;
  p.Set("lower", ParamValue(lo));
  p.Set("upper", ParamValue(hi));
  return Op(BlockKind::kSaturation, AutoName(name, "sat"), {in}, std::move(p));
}

}  // namespace cftcg::ir
