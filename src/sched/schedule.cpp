#include "sched/schedule.hpp"

#include <cassert>
#include <algorithm>
#include <functional>

#include "blocks/registry.hpp"
#include "support/strings.hpp"

namespace cftcg::sched {

using blocks::mex::Expr;
using blocks::mex::ExprKind;
using blocks::mex::Program;
using blocks::mex::Stmt;
using blocks::mex::StmtKind;
using ir::Block;
using ir::BlockKind;
using ir::Model;

coverage::DecisionId ScheduledModel::DecisionAt(const void* owner, int sub) const {
  auto it = decision_sites.find(SiteKey{owner, sub});
  assert(it != decision_sites.end() && "decision site not registered");
  return it->second;
}

coverage::ConditionId ScheduledModel::ConditionAt(const void* owner, int sub) const {
  auto it = condition_sites.find(SiteKey{owner, sub});
  assert(it != condition_sites.end() && "condition site not registered");
  return it->second;
}

const std::vector<ir::BlockId>& ScheduledModel::OrderOf(const ir::Model* system) const {
  auto it = order.find(system);
  assert(it != order.end() && "system not scheduled");
  return it->second;
}

std::vector<ir::DType> ScheduledModel::InportTypes() const {
  std::vector<ir::DType> types;
  for (ir::BlockId id : root->Inports()) types.push_back(root->block(id).out_type(0));
  return types;
}

std::size_t ScheduledModel::TupleSize() const {
  std::size_t total = 0;
  for (ir::DType t : InportTypes()) total += ir::DTypeSize(t);
  return total;
}

namespace {

class Scheduler {
 public:
  explicit Scheduler(ScheduledModel& out) : out_(out) {}

  Status Run(const Model& model, const std::string& path) {
    auto order = TopoSort(model);
    if (!order.ok()) return order.status();
    out_.order[&model] = order.value();

    // Walk blocks in schedule order so decision/condition ids are assigned
    // in execution order (deterministic and shared across backends).
    for (ir::BlockId id : order.value()) {
      const Block& b = model.block(id);
      const std::string bpath = path.empty() ? b.name() : path + "/" + b.name();
      if (Status s = ExtractBlockSites(b, bpath); !s.ok()) return s;
      for (std::size_t i = 0; i < b.subs().size(); ++i) {
        const std::string spath = StrFormat("%s.%zu", bpath.c_str(), i);
        if (Status s = Run(*b.subs()[i], spath); !s.ok()) return s;
      }
    }
    return Status::Ok();
  }

 private:
  Result<std::vector<ir::BlockId>> TopoSort(const Model& model) {
    const std::size_t n = model.blocks().size();
    std::vector<int> in_degree(n, 0);
    std::vector<std::vector<ir::BlockId>> successors(n);
    for (const auto& w : model.wires()) {
      const Block& dst = model.block(w.dst_block);
      if (!blocks::InputIsDirectFeedthrough(dst, w.dst_port)) continue;
      successors[static_cast<std::size_t>(w.src.block)].push_back(w.dst_block);
      ++in_degree[static_cast<std::size_t>(w.dst_block)];
    }
    // Kahn's algorithm; the ready set is kept id-sorted for determinism.
    std::vector<ir::BlockId> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_degree[i] == 0) ready.push_back(static_cast<ir::BlockId>(i));
    }
    std::vector<ir::BlockId> order;
    order.reserve(n);
    while (!ready.empty()) {
      // Pop the smallest id (ready is maintained sorted descending).
      std::sort(ready.begin(), ready.end(), std::greater<>());
      const ir::BlockId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (ir::BlockId succ : successors[static_cast<std::size_t>(id)]) {
        if (--in_degree[static_cast<std::size_t>(succ)] == 0) ready.push_back(succ);
      }
    }
    if (order.size() != n) {
      return Status::Error("model '" + model.name() + "': algebraic loop detected in scheduling");
    }
    return order;
  }

  void AddDecision(const void* owner, int sub, const std::string& name, int outcomes) {
    out_.decision_sites[SiteKey{owner, sub}] = out_.spec.AddDecision(name, outcomes);
  }
  void AddCondition(const void* owner, int sub, const std::string& name,
                    coverage::DecisionId decision) {
    out_.condition_sites[SiteKey{owner, sub}] = out_.spec.AddCondition(name, decision);
  }

  Status ExtractBlockSites(const Block& b, const std::string& path) {
    // Mode (a): boolean blocks — decision on the output, condition per input.
    switch (b.kind()) {
      case BlockKind::kLogicalAnd:
      case BlockKind::kLogicalOr:
      case BlockKind::kLogicalXor:
      case BlockKind::kLogicalNand:
      case BlockKind::kLogicalNor: {
        AddDecision(&b, 0, path, 2);
        const auto d = out_.decision_sites[SiteKey{&b, 0}];
        for (int i = 0; i < b.num_inputs(); ++i) {
          AddCondition(&b, i + 1, StrFormat("%s.in%d", path.c_str(), i + 1), d);
        }
        return Status::Ok();
      }
      // Standalone boolean producers: conditions (true/false polarity).
      case BlockKind::kRelationalOp:
      case BlockKind::kCompareToConstant:
      case BlockKind::kCompareToZero: {
        AddCondition(&b, 0, path, -1);
        return Status::Ok();
      }
      default: break;
    }

    // Modes (b)/(c)/(d): block-level decisions from the registry.
    const int outcomes = blocks::BlockDecisionOutcomes(b);
    if (outcomes > 0) AddDecision(&b, 0, path, outcomes);

    // EdgeDetector both decides (edge / no edge) and is a boolean producer.
    if (b.kind() == BlockKind::kEdgeDetector) AddCondition(&b, 1, path + ".out", -1);

    // Mode (d): conditionals inside complex blocks.
    if (b.kind() == BlockKind::kExprFunc) {
      const auto* compiled = out_.analysis.programs.FindExprFunc(&b);
      assert(compiled != nullptr);
      ExtractProgramSites(compiled->program, path);
    } else if (b.kind() == BlockKind::kChart) {
      const auto* compiled = out_.analysis.programs.FindChart(&b);
      assert(compiled != nullptr);
      ExtractChartSites(b, *compiled, path);
    }
    return Status::Ok();
  }

  void ExtractProgramSites(const Program& program, const std::string& path) {
    int if_counter = 0;
    for (const auto& stmt : program.stmts) ExtractStmtSites(*stmt, path, if_counter);
  }

  void ExtractStmtSites(const Stmt& stmt, const std::string& path, int& if_counter) {
    if (stmt.kind != StmtKind::kIf) return;
    const int my_if = if_counter++;
    for (std::size_t arm = 0; arm < stmt.branches.size(); ++arm) {
      const auto& branch = stmt.branches[arm];
      if (branch.cond) {
        const std::string name = StrFormat("%s.if%d#%zu", path.c_str(), my_if, arm);
        AddDecision(&stmt, static_cast<int>(arm), name, 2);
        const auto d = out_.decision_sites[SiteKey{&stmt, static_cast<int>(arm)}];
        ExtractConditionLeaves(*branch.cond, name, d);
      }
      for (const auto& inner : branch.body) ExtractStmtSites(*inner, path, if_counter);
    }
  }

  void ExtractConditionLeaves(const Expr& cond, const std::string& name,
                              coverage::DecisionId decision) {
    std::vector<const Expr*> leaves;
    blocks::mex::CollectConditionLeaves(cond, leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      AddCondition(leaves[i], 0, StrFormat("%s.c%zu", name.c_str(), i), decision);
    }
  }

  void ExtractChartSites(const Block& b, const blocks::CompiledChart& chart,
                         const std::string& path) {
    const ir::ChartDef& def = *b.chart();
    // Transitions in definition order: decision (taken / not taken) plus
    // guard condition leaves.
    for (std::size_t t = 0; t < chart.transitions.size(); ++t) {
      const std::string name = StrFormat("%s.t%zu[%s->%s]", path.c_str(), t,
                                         def.states[static_cast<std::size_t>(def.transitions[t].from)].name.c_str(),
                                         def.states[static_cast<std::size_t>(def.transitions[t].to)].name.c_str());
      AddDecision(&b, 1000 + static_cast<int>(t), name, 2);
      if (chart.transitions[t].guard) {
        const auto d = out_.decision_sites[SiteKey{&b, 1000 + static_cast<int>(t)}];
        ExtractConditionLeaves(*chart.transitions[t].guard->expr, name, d);
      }
      if (chart.transitions[t].action) {
        ExtractProgramSites(*chart.transitions[t].action, name);
      }
    }
    // ifs inside state actions.
    for (std::size_t s = 0; s < chart.states.size(); ++s) {
      const std::string sname = path + "." + def.states[s].name;
      if (chart.states[s].entry) ExtractProgramSites(*chart.states[s].entry, sname + ".entry");
      if (chart.states[s].during) ExtractProgramSites(*chart.states[s].during, sname + ".during");
      if (chart.states[s].exit) ExtractProgramSites(*chart.states[s].exit, sname + ".exit");
    }
  }

  ScheduledModel& out_;
};

}  // namespace

Result<ScheduledModel> Schedule(const ir::Model& model, blocks::Analysis analysis) {
  ScheduledModel out;
  out.root = &model;
  out.analysis = std::move(analysis);
  Scheduler scheduler(out);
  if (Status s = scheduler.Run(model, ""); !s.ok()) return s;
  return out;
}

Result<ScheduledModel> AnalyzeAndSchedule(ir::Model& model) {
  auto analysis = blocks::AnalyzeModel(model);
  if (!analysis.ok()) return analysis.status();
  return Schedule(model, analysis.take());
}

}  // namespace cftcg::sched
