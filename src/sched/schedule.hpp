// Schedule conversion + branch instrumentation point extraction.
//
// Schedule(): orders every system (the root model and each compound block's
// sub-models) topologically along direct-feedthrough dataflow edges — the
// paper's "Schedule Convert" step that turns a block diagram into a
// sequential step function. Delay-class inputs are not feedthrough, so
// feedback loops through UnitDelay/Delay/Memory/Integrator schedule fine;
// a cycle without a delay is an algebraic loop and is rejected.
//
// During the same walk the *branch instrumentation points* are enumerated
// (the paper's four modes):
//   (a) boolean-block inputs            -> conditions + a 2-way decision
//   (b) data switch/select blocks       -> N-way decisions
//   (c) branch blocks (If/SwitchCase)   -> ActionIf/ActionSwitch decisions
//   (d) in-block conditionals           -> Saturation/Sign/... decisions and
//                                          every chart guard / mex `if`
// The resulting CoverageSpec (decision/condition ids, slot layout) is shared
// verbatim by the interpreter, the VM lowering, and the C emitter, so all
// backends report coverage in the same space. Sites are keyed by the
// address of the owning IR object plus a small discriminator.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "blocks/analyze.hpp"
#include "coverage/spec.hpp"
#include "ir/model.hpp"

namespace cftcg::sched {

struct SiteKey {
  const void* owner = nullptr;  // ir::Block*, mex::Stmt*, or mex::Expr*
  int sub = 0;                  // discriminator (transition index, branch arm, input port)

  auto operator<=>(const SiteKey&) const = default;
};

struct ScheduledModel {
  const ir::Model* root = nullptr;
  blocks::Analysis analysis;  // compiled mex programs (owned)
  /// Execution order of blocks per system (root model and every sub-model).
  std::map<const ir::Model*, std::vector<ir::BlockId>> order;

  coverage::CoverageSpec spec;
  std::map<SiteKey, coverage::DecisionId> decision_sites;
  std::map<SiteKey, coverage::ConditionId> condition_sites;

  [[nodiscard]] coverage::DecisionId DecisionAt(const void* owner, int sub = 0) const;
  [[nodiscard]] coverage::ConditionId ConditionAt(const void* owner, int sub = 0) const;
  [[nodiscard]] const std::vector<ir::BlockId>& OrderOf(const ir::Model* system) const;

  /// Tuple layout of the fuzz driver: the root model's inport types in port
  /// order, and the total bytes consumed per model iteration.
  [[nodiscard]] std::vector<ir::DType> InportTypes() const;
  [[nodiscard]] std::size_t TupleSize() const;

  /// Branch count reported in the paper's Table 2 (#Branch): total decision
  /// outcomes.
  [[nodiscard]] int NumBranchOutcomes() const { return spec.num_outcome_slots(); }
};

/// Schedules and instruments an *analyzed* model (run blocks::AnalyzeModel
/// first and pass its Analysis in; the ScheduledModel takes ownership).
Result<ScheduledModel> Schedule(const ir::Model& model, blocks::Analysis analysis);

/// Convenience: analyze + schedule in one call.
Result<ScheduledModel> AnalyzeAndSchedule(ir::Model& model);

}  // namespace cftcg::sched
