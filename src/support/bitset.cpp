#include "support/bitset.hpp"

#include <bit>
#include <cassert>

namespace cftcg {

DynamicBitset::DynamicBitset(std::size_t num_bits) { Resize(num_bits); }

void DynamicBitset::Resize(std::size_t num_bits) {
  num_bits_ = num_bits;
  words_.assign((num_bits + 63) / 64, 0);
}

void DynamicBitset::Set(std::size_t index) {
  assert(index < num_bits_);
  words_[index >> 6] |= (1ULL << (index & 63));
}

void DynamicBitset::Reset(std::size_t index) {
  assert(index < num_bits_);
  words_[index >> 6] &= ~(1ULL << (index & 63));
}

bool DynamicBitset::Test(std::size_t index) const {
  assert(index < num_bits_);
  return (words_[index >> 6] >> (index & 63)) & 1;
}

void DynamicBitset::ClearAll() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::Count() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t DynamicBitset::CountDifferences(const DynamicBitset& other) const {
  assert(num_bits_ == other.num_bits_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::size_t DynamicBitset::MergeAndCountNew(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  std::size_t new_bits = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t fresh = other.words_[i] & ~words_[i];
    new_bits += static_cast<std::size_t>(std::popcount(fresh));
    words_[i] |= other.words_[i];
  }
  return new_bits;
}

bool DynamicBitset::HasNewBitsRelativeTo(const DynamicBitset& total) const {
  assert(num_bits_ == total.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~total.words_[i]) return true;
  }
  return false;
}

std::uint64_t DynamicBitset::Hash() const {
  // FNV-1a over the words; cheap and adequate for signature dedup.
  std::uint64_t h = 1469598103934665603ULL;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace cftcg
