// Deterministic pseudo-random number generation.
//
// All randomness in CFTCG (mutation choices, baseline search, workload
// generation) flows through Rng so that experiments are reproducible from a
// single seed. The generator is xoshiro256** (public domain algorithm by
// Blackman & Vigna), chosen for speed inside the fuzzing loop.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cftcg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw.
  bool NextBool(double probability_true = 0.5);

  /// One uniform byte.
  std::uint8_t NextByte();

  /// Fills a buffer with uniform bytes.
  void FillBytes(std::uint8_t* data, std::size_t size);

  /// Picks a random index into a container of the given size. size must be > 0.
  std::size_t NextIndex(std::size_t size);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Splits off an independently seeded child generator (for parallel or
  /// per-repetition streams).
  Rng Fork();

  /// Raw xoshiro256** state for checkpointing. Restoring a saved state
  /// reproduces the exact draw sequence from that point.
  [[nodiscard]] std::array<std::uint64_t, 4> GetState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace cftcg
