// Deterministic fault injection for the supervised execution engine.
//
// Robustness claims are only testable if faults are reproducible, so the
// injector draws its entire schedule up front from a seed: which lane
// faults, with what, and when (an execution count for lane faults, an
// ordinal for driver-side faults). The supervisor arms lane faults through
// the worker command pipe and consumes each event exactly once, so a
// respawned worker does not re-fire the fault that killed its predecessor.
//
// Activation is explicit: the `fuzz --faults SPEC` flag, or the CFTCG_FAULTS
// environment variable for processes that cannot take flags (CI matrices,
// spawned tools). A campaign with no spec runs with a null injector.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace cftcg::support {

enum class FaultKind : std::uint8_t {
  kCrash = 0,           // worker calls _Exit mid-round
  kHang = 1,            // worker stops responding (sleeps forever)
  kTornCheckpoint = 2,  // driver truncates a checkpoint write, bypassing the atomic writer
  kCorruptDelta = 3,    // one corpus-sync frame is bit-flipped on the wire
  kSlowLane = 4,        // worker delays its round reply
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int lane = 0;             // target worker (lane faults; ignored for kTornCheckpoint)
  std::uint64_t at = 0;     // lane faults: cumulative execution count; driver faults: ordinal
  std::uint64_t param = 0;  // kSlowLane: delay in milliseconds
  bool armed = false;       // handed to a worker / scheduled this round
  bool fired = false;       // consumed — never fires again
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses a schedule spec: comma-separated `kind` or `kind*count` tokens,
  /// where kind is one of crash|hang|torn|corrupt|slow. Lane assignments and
  /// fire points are drawn deterministically from `seed`; `horizon_execs` is
  /// the approximate per-lane execution budget the fire points are placed in.
  static Result<FaultInjector> FromSpec(std::string_view spec, std::uint64_t seed,
                                        int num_workers, std::uint64_t horizon_execs);

  /// Reads CFTCG_FAULTS (and CFTCG_FAULT_SEED, defaulting to `seed`).
  /// An unset variable yields an inactive injector.
  static Result<FaultInjector> FromEnv(std::uint64_t seed, int num_workers,
                                       std::uint64_t horizon_execs);

  [[nodiscard]] bool active() const { return !events_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  std::vector<FaultEvent>& events() { return events_; }

  /// Next unconsumed lane fault (crash/hang/slow) for `lane` firing at or
  /// before `limit` executions. Marks nothing; call Arm/Consume on the result.
  FaultEvent* NextLaneFault(int lane, std::uint64_t limit);

  /// Next unconsumed driver fault of `kind` whose ordinal is `<= ordinal`.
  FaultEvent* NextDriverFault(FaultKind kind, std::uint64_t ordinal);

  /// Unconsumed corrupt-delta fault for `lane` (fires on the next sync frame).
  FaultEvent* NextCorruptDelta(int lane, std::uint64_t round);

  [[nodiscard]] std::string Describe() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace cftcg::support
