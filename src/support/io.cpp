#include "support/io.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>

namespace cftcg::support::io {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Status ReadFull(int fd, void* buf, std::size_t size) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return Status::Error("unexpected EOF");
    if (errno == EINTR) continue;
    return Status::Error(Errno("read"));
  }
  return Status::Ok();
}

Status WriteFull(int fd, const void* buf, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p + sent, size - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Error(Errno("write"));
  }
  return Status::Ok();
}

std::ptrdiff_t ReadSome(int fd, void* buf, std::size_t size) {
  while (true) {
    ssize_t n = ::recv(fd, buf, size, 0);
    if (n < 0 && errno == ENOTSOCK) n = ::read(fd, buf, size);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

int PollRetry(struct pollfd* fds, int nfds, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  int remaining = timeout_ms;
  while (true) {
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), remaining);
    if (rc >= 0 || errno != EINTR) return rc;
    if (timeout_ms >= 0) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      remaining = static_cast<int>(std::max<std::int64_t>(0, left.count()));
      if (remaining == 0) return 0;
    }
  }
}

int AcceptRetry(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
}

void SleepMs(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

}  // namespace cftcg::support::io
