// EINTR/EAGAIN-safe POSIX I/O retry helpers.
//
// Every place CFTCG talks to a file descriptor under signals — the monitor's
// HTTP sockets, the supervisor's worker pipes — needs the same three-line
// retry loops. They live here once, so a missed EINTR can't take down a
// campaign that happens to catch a SIGCHLD mid-read.
#pragma once

#include <cstddef>

#include "support/status.hpp"

struct pollfd;  // <poll.h>

namespace cftcg::support::io {

/// Reads exactly `size` bytes. Retries EINTR; EOF or any other error is a
/// failure (short reads never succeed silently).
Status ReadFull(int fd, void* buf, std::size_t size);

/// Writes exactly `size` bytes, retrying EINTR. Uses send(MSG_NOSIGNAL) on
/// sockets (falling back to write(2) for pipes/files), so a peer hangup
/// surfaces as EPIPE instead of a process-killing SIGPIPE.
Status WriteFull(int fd, const void* buf, std::size_t size);

/// One recv/read of up to `size` bytes, retrying EINTR. Returns the byte
/// count (0 at EOF) or -1 on error.
std::ptrdiff_t ReadSome(int fd, void* buf, std::size_t size);

/// poll(2) that re-arms after EINTR with the remaining timeout (measured on
/// the monotonic clock). Semantics otherwise identical to poll.
int PollRetry(struct pollfd* fds, int nfds, int timeout_ms);

/// accept(2) retrying EINTR and the transient ECONNABORTED. Returns the
/// connection fd, or -1 for everything else (including EAGAIN on a
/// non-blocking listener).
int AcceptRetry(int listen_fd);

void SleepMs(int ms);

}  // namespace cftcg::support::io
