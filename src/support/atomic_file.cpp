#include "support/atomic_file.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace cftcg::support {
namespace {

// Monotonic counter so concurrent writers in one process (parallel fuzzing
// workers quarantining hangs into a shared directory) never collide on the
// temporary name.
std::atomic<std::uint64_t> g_temp_counter{0};

std::string Errno() { return std::strerror(errno); }

}  // namespace

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

Status AtomicFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Error("atomic writer already open");
  path_ = path;
  temp_path_ = path + ".tmp." + std::to_string(::getpid()) + "." +
               std::to_string(g_temp_counter.fetch_add(1));
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Error("cannot open temporary file " + temp_path_ + ": " + Errno());
  }
  return Status::Ok();
}

Status AtomicFileWriter::Write(std::string_view bytes) {
  if (file_ == nullptr) return Status::Error("atomic writer is not open");
  if (bytes.empty()) return Status::Ok();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::Error("short write to " + temp_path_ + ": " + Errno());
  }
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) return Status::Error("atomic writer is not open");
  bool ok = std::fflush(file_) == 0;
  ok = ok && ::fsync(::fileno(file_)) == 0;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok) {
    std::string err = "cannot flush " + temp_path_ + ": " + Errno();
    ::unlink(temp_path_.c_str());
    return Status::Error(err);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::string err = "cannot rename " + temp_path_ + " to " + path_ + ": " + Errno();
    ::unlink(temp_path_.c_str());
    return Status::Error(err);
  }
  return Status::Ok();
}

void AtomicFileWriter::Abort() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
  ::unlink(temp_path_.c_str());
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  AtomicFileWriter writer;
  if (Status s = writer.Open(path); !s.ok()) return s;
  if (Status s = writer.Write(content); !s.ok()) return s;
  return writer.Commit();
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::Error("cannot create directory " + path + ": " + Errno());
}

}  // namespace cftcg::support
