// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cftcg {

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimString(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins items with a separator.
std::string JoinStrings(const std::vector<std::string>& items, std::string_view sep);

/// Parses a decimal integer / floating value; returns false on any trailing
/// garbage. Used by the model parser, so errors must be detectable.
bool ParseInt64(std::string_view text, long long& out);
bool ParseDouble(std::string_view text, double& out);

/// Escapes XML special characters (&, <, >, ", ').
std::string XmlEscape(std::string_view text);

/// Renders a double so that it round-trips exactly through ParseDouble.
std::string DoubleToString(double value);

}  // namespace cftcg
