#include "support/fault_inject.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/rng.hpp"

namespace cftcg::support {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kTornCheckpoint: return "torn";
    case FaultKind::kCorruptDelta: return "corrupt";
    case FaultKind::kSlowLane: return "slow";
  }
  return "?";
}

namespace {

Status ParseKind(std::string_view token, FaultKind* out) {
  for (FaultKind k : {FaultKind::kCrash, FaultKind::kHang, FaultKind::kTornCheckpoint,
                      FaultKind::kCorruptDelta, FaultKind::kSlowLane}) {
    if (token == FaultKindName(k)) {
      *out = k;
      return Status::Ok();
    }
  }
  return Status::Error("unknown fault kind '" + std::string(token) +
                       "' (expected crash|hang|torn|corrupt|slow)");
}

}  // namespace

Result<FaultInjector> FaultInjector::FromSpec(std::string_view spec, std::uint64_t seed,
                                              int num_workers, std::uint64_t horizon_execs) {
  FaultInjector inj;
  if (spec.empty()) return inj;
  if (num_workers < 1) num_workers = 1;
  // Fire points land in the middle half of the per-lane budget: late enough
  // that the lane has state worth losing, early enough that recovery runs.
  const std::uint64_t horizon = std::max<std::uint64_t>(horizon_execs, 16);
  Rng rng(seed ^ 0xFA017EC7ED5EEDULL);
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string token(spec.substr(start, comma - start));
    start = comma + 1;
    token.erase(std::remove(token.begin(), token.end(), ' '), token.end());
    if (token.empty()) continue;
    std::uint64_t count = 1;
    const std::size_t star = token.find('*');
    if (star != std::string::npos) {
      char* end = nullptr;
      count = std::strtoull(token.c_str() + star + 1, &end, 10);
      if (end == token.c_str() + star + 1 || *end != '\0' || count == 0 || count > 64) {
        return Status::Error("bad fault count in '" + token + "'");
      }
      token.resize(star);
    }
    FaultKind kind{};
    Status st = ParseKind(token, &kind);
    if (!st.ok()) return st;
    for (std::uint64_t i = 0; i < count; ++i) {
      FaultEvent ev;
      ev.kind = kind;
      ev.lane = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(num_workers)));
      if (kind == FaultKind::kTornCheckpoint) {
        ev.at = 1 + rng.NextBelow(3);  // ordinal of the checkpoint write to tear
      } else if (kind == FaultKind::kCorruptDelta) {
        ev.at = 1 + rng.NextBelow(6);  // ordinal of the sync round to corrupt
      } else {
        ev.at = horizon / 4 + rng.NextBelow(horizon / 2 + 1);
        if (kind == FaultKind::kSlowLane) ev.param = 100 + rng.NextBelow(400);
      }
      inj.events_.push_back(ev);
    }
  }
  return inj;
}

Result<FaultInjector> FaultInjector::FromEnv(std::uint64_t seed, int num_workers,
                                             std::uint64_t horizon_execs) {
  const char* spec = std::getenv("CFTCG_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return FaultInjector();
  if (const char* s = std::getenv("CFTCG_FAULT_SEED"); s != nullptr && s[0] != '\0') {
    seed = std::strtoull(s, nullptr, 10);
  }
  return FromSpec(spec, seed, num_workers, horizon_execs);
}

FaultEvent* FaultInjector::NextLaneFault(int lane, std::uint64_t limit) {
  for (FaultEvent& ev : events_) {
    if (ev.fired || ev.armed || ev.lane != lane || ev.at > limit) continue;
    if (ev.kind == FaultKind::kCrash || ev.kind == FaultKind::kHang ||
        ev.kind == FaultKind::kSlowLane) {
      return &ev;
    }
  }
  return nullptr;
}

FaultEvent* FaultInjector::NextDriverFault(FaultKind kind, std::uint64_t ordinal) {
  for (FaultEvent& ev : events_) {
    if (!ev.fired && ev.kind == kind && ev.at <= ordinal) return &ev;
  }
  return nullptr;
}

FaultEvent* FaultInjector::NextCorruptDelta(int lane, std::uint64_t round) {
  for (FaultEvent& ev : events_) {
    if (!ev.fired && ev.kind == FaultKind::kCorruptDelta && ev.lane == lane && ev.at <= round) {
      return &ev;
    }
  }
  return nullptr;
}

std::string FaultInjector::Describe() const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out += ", ";
    out += FaultKindName(ev.kind);
    out += "@lane" + std::to_string(ev.lane) + ":" + std::to_string(ev.at);
  }
  return out.empty() ? "none" : out;
}

}  // namespace cftcg::support
