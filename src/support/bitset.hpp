// DynamicBitset: a compact runtime-sized bit vector used for coverage maps.
//
// The fuzzing loop manipulates per-iteration and cumulative coverage maps at
// high frequency, so the operations the loop needs (clear, set, popcount,
// difference counting, or-with-detect-new) are implemented word-wise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cftcg {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t num_bits);

  void Resize(std::size_t num_bits);
  [[nodiscard]] std::size_t size() const { return num_bits_; }

  void Set(std::size_t index);
  void Reset(std::size_t index);
  [[nodiscard]] bool Test(std::size_t index) const;

  /// Clears every bit (keeps the size).
  void ClearAll();

  /// Number of set bits.
  [[nodiscard]] std::size_t Count() const;

  /// Number of positions where this and other differ. Sizes must match.
  [[nodiscard]] std::size_t CountDifferences(const DynamicBitset& other) const;

  /// ORs other into this; returns the number of bits newly set by the merge.
  std::size_t MergeAndCountNew(const DynamicBitset& other);

  /// True if other sets at least one bit this does not have.
  [[nodiscard]] bool HasNewBitsRelativeTo(const DynamicBitset& total) const;

  bool operator==(const DynamicBitset& other) const = default;

  /// 64-bit hash of the contents (used to deduplicate coverage signatures).
  [[nodiscard]] std::uint64_t Hash() const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

  /// Restores a bitset from checkpointed words. The word vector must be the
  /// exact backing store for num_bits (returns false and leaves the bitset
  /// untouched otherwise).
  bool Restore(std::size_t num_bits, std::vector<std::uint64_t> words) {
    if (words.size() != (num_bits + 63) / 64) return false;
    num_bits_ = num_bits;
    words_ = std::move(words);
    return true;
  }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cftcg
