// Atomic file emission: write-to-temp + rename.
//
// Every artifact CFTCG emits (checkpoints, metrics JSON, CSV suites, HTML
// reports, trace files) is produced through this module so that a crash or
// signal mid-write can never leave a torn file at the destination path: the
// content streams into a same-directory temporary file and only an fsync'd,
// complete temporary is renamed over the final name (rename(2) is atomic
// within a filesystem on POSIX).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "support/status.hpp"

namespace cftcg::support {

/// Streams content into "<path>.tmp.<unique>" and renames it onto `path` on
/// Commit(). If the writer is destroyed without Commit(), the temporary is
/// unlinked and the destination is left untouched.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens the temporary file next to `path`. Fails if the directory is not
  /// writable.
  Status Open(const std::string& path);

  /// Appends bytes to the temporary file.
  Status Write(std::string_view bytes);

  /// Flushes, fsyncs, closes, and renames the temporary onto the destination.
  /// After Commit() the writer is inert; further writes fail.
  Status Commit();

  /// Closes and unlinks the temporary without touching the destination.
  void Abort();

  [[nodiscard]] bool open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& temp_path() const { return temp_path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string temp_path_;
};

/// One-shot convenience: atomically replaces `path` with `content`.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// Creates a directory (single level, like mkdir -p for one component).
/// Succeeds if the directory already exists.
Status EnsureDir(const std::string& path);

}  // namespace cftcg::support
