// Lightweight status / expected types used across the library.
//
// CFTCG is built as a set of libraries that a downstream tool embeds, so we
// avoid exceptions on anticipated failure paths (malformed model files,
// unsatisfiable schedules, ...) and return Status / Result<T> instead.
// Programming errors still assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cftcg {

/// Outcome of an operation that can fail with a human-readable message.
class Status {
 public:
  Status() = default;  // ok
  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Value-or-error. On error, value() must not be called.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const std::string& message() const { return status_.message(); }

  [[nodiscard]] T& value() {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return *value_;
  }
  T take() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cftcg
