#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cftcg {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view TrimString(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

bool ParseInt64(std::string_view text, long long& out) {
  text = TrimString(text);
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool ParseDouble(std::string_view text, double& out) {
  text = TrimString(text);
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string DoubleToString(double value) {
  // %.17g guarantees round-trip for IEEE double; shorten when %.15g already
  // round-trips so files stay readable.
  std::string s = StrFormat("%.15g", value);
  double back = 0;
  if (ParseDouble(s, back) && back == value) return s;
  return StrFormat("%.17g", value);
}

}  // namespace cftcg
