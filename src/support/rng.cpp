#include "support/rng.hpp"

#include <cassert>
#include <cstring>

namespace cftcg {
namespace {

// splitmix64: used to expand the user seed into the xoshiro state so that
// nearby seeds give unrelated streams.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~0ULL) return static_cast<std::int64_t>(NextU64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + NextBelow(span + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double probability_true) { return NextDouble() < probability_true; }

std::uint8_t Rng::NextByte() { return static_cast<std::uint8_t>(NextU64() & 0xFF); }

void Rng::FillBytes(std::uint8_t* data, std::size_t size) {
  std::size_t i = 0;
  while (i + 8 <= size) {
    std::uint64_t v = NextU64();
    std::memcpy(data + i, &v, 8);
    i += 8;
  }
  if (i < size) {
    std::uint64_t v = NextU64();
    std::memcpy(data + i, &v, size - i);
  }
}

std::size_t Rng::NextIndex(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(NextBelow(size));
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace cftcg
