// Shared numeric semantics for model execution.
//
// Both backends (the bytecode VM and the simulation interpreter) must agree
// bit-for-bit — the paper validates its generated code by comparing
// simulation results with code execution results, and our equivalence tests
// do the same — so the guarded operations live here, in exactly one place.
#pragma once

#include <cmath>
#include <cstdint>

namespace cftcg::num {

inline double SafeDiv(double a, double b) {
  const double r = a / b;
  return std::isfinite(r) ? r : 0.0;  // generated code guards division by zero
}

inline std::int64_t SafeDivI(std::int64_t a, std::int64_t b) { return b == 0 ? 0 : a / b; }

/// MATLAB mod: result follows the divisor's sign.
inline std::int64_t SafeModI(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

inline std::int64_t SafeRemI(std::int64_t a, std::int64_t b) { return b == 0 ? 0 : a % b; }

inline double SafeMod(double a, double b) {
  if (b == 0.0) return 0.0;
  const double r = std::fmod(a, b);
  return (r != 0.0 && ((r < 0.0) != (b < 0.0))) ? r + b : r;
}

inline double SafeRem(double a, double b) { return b == 0.0 ? 0.0 : std::fmod(a, b); }

inline double Finite(double v) { return std::isfinite(v) ? v : 0.0; }

inline double SafeSqrt(double v) { return v < 0.0 ? 0.0 : std::sqrt(v); }
inline double SafeLog(double v) { return v <= 0.0 ? 0.0 : std::log(v); }

/// Double -> int64 with saturation at the representable edge (then callers
/// wrap to the model type).
inline std::int64_t TruncToI64(double v) {
  if (!std::isfinite(v)) return 0;
  if (v >= 9.2233720368547758e18) return INT64_MAX;
  if (v <= -9.2233720368547758e18) return INT64_MIN;
  return static_cast<std::int64_t>(v);
}

}  // namespace cftcg::num
