#include "codegen/lower.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <tuple>

#include "blocks/registry.hpp"
#include "support/strings.hpp"

namespace cftcg::codegen {

using blocks::mex::Expr;
using blocks::mex::ExprKind;
using blocks::mex::IfBranch;
using blocks::mex::Program;
using blocks::mex::Stmt;
using blocks::mex::StmtKind;
using ir::Block;
using ir::BlockKind;
using ir::DType;
using ir::Model;
using vm::Insn;
using vm::Op;

namespace {

/// A lowered value: which register file, which register, and the model-level
/// signal type it carries.
struct Slot {
  bool is_float = true;
  int reg = 0;
  DType type = DType::kDouble;
};

class Lowerer {
 public:
  Lowerer(const sched::ScheduledModel& sm, const LoweringOptions& opts) : sm_(sm), opts_(opts) {}

  Result<vm::Program> Run() {
    const Model& root = *sm_.root;
    prog_.input_types = sm_.InportTypes();
    prog_.output_types.resize(root.Outports().size());
    if (opts_.edge_instrumentation) NewEdge();  // entry edge
    if (Status s = LowerSystem(root, ""); !s.ok()) return s;
    EmitOp(Op::kHalt);
    prog_.num_dregs = next_dreg_;
    prog_.num_iregs = next_ireg_;
    return std::move(prog_);
  }

 private:
  // ---- emission primitives -------------------------------------------------
  std::size_t Emit(Insn in) {
    prog_.code.push_back(in);
    // Block attribution (profiler VM plane): every instruction carries the
    // index of the model block whose lowering emitted it; -1 = glue. All
    // emission funnels through here, so the side table stays parallel.
    prog_.insn_block.push_back(cur_block_);
    return prog_.code.size() - 1;
  }
  std::size_t EmitOp(Op op, int dst = 0, int a = 0, int b = 0, int imm = 0, int aux = 0,
                     double dimm = 0.0, DType type = DType::kDouble) {
    Insn in;
    in.op = op;
    in.dst = dst;
    in.a = a;
    in.b = b;
    in.imm = imm;
    in.aux = aux;
    in.dimm = dimm;
    in.type = type;
    return Emit(in);
  }
  int NewD() { return next_dreg_++; }
  int NewI() { return next_ireg_++; }
  int NewEdge() { return prog_.num_edges++; }

  std::size_t Here() const { return prog_.code.size(); }
  std::size_t EmitJmp() { return EmitOp(Op::kJmp); }
  std::size_t EmitJz(int ireg) { return EmitOp(Op::kJmpIfZero, 0, ireg); }
  std::size_t EmitJnz(int ireg) { return EmitOp(Op::kJmpIfNotZero, 0, ireg); }
  void Patch(std::size_t at) { prog_.code[at].imm = static_cast<std::int32_t>(Here()); }
  void PatchAll(std::vector<std::size_t>& ats) {
    for (auto at : ats) Patch(at);
    ats.clear();
  }

  int NewStateD(double init, DType type, std::string name) {
    vm::StateSlot s;
    s.is_float = true;
    s.init = init;
    s.type = type;
    s.name = std::move(name);
    prog_.state_d.push_back(std::move(s));
    return static_cast<int>(prog_.state_d.size()) - 1;
  }
  int NewStateI(double init, DType type, std::string name) {
    vm::StateSlot s;
    s.is_float = false;
    s.init = init;
    s.type = type;
    s.name = std::move(name);
    prog_.state_i.push_back(std::move(s));
    return static_cast<int>(prog_.state_i.size()) - 1;
  }

  // ---- value helpers --------------------------------------------------------
  Slot ConstD(double v) {
    Slot s{true, NewD(), DType::kDouble};
    EmitOp(Op::kLoadConstD, s.reg, 0, 0, 0, 0, v);
    return s;
  }
  Slot ConstI(std::int64_t v, DType t) {
    Slot s{false, NewI(), t};
    EmitOp(Op::kLoadConstI, s.reg, 0, 0, 0, 0, static_cast<double>(v), t);
    return s;
  }

  /// Converts a slot to the requested model type, emitting conversions as
  /// needed. Single-precision values are carried in double registers (see
  /// DESIGN.md deviation note).
  Slot CastTo(Slot s, DType want) {
    const bool want_float = ir::DTypeIsFloat(want);
    if (s.is_float == want_float && (s.type == want || want_float)) {
      s.type = want;
      return s;
    }
    if (want_float && !s.is_float) {
      Slot out{true, NewD(), want};
      EmitOp(Op::kCvtIToD, out.reg, s.reg);
      return out;
    }
    if (!want_float && s.is_float) {
      Slot out{false, NewI(), want};
      if (want == DType::kBool) {
        EmitOp(Op::kBoolD, out.reg, s.reg);
      } else {
        EmitOp(Op::kCvtDToI, out.reg, s.reg, 0, 0, 0, 0, want);
      }
      return out;
    }
    // int -> int rewrap (or int -> bool).
    Slot out{false, NewI(), want};
    if (want == DType::kBool) {
      EmitOp(Op::kBoolI, out.reg, s.reg);
    } else {
      EmitOp(Op::kWrapI, out.reg, s.reg, 0, 0, 0, 0, want);
    }
    return out;
  }

  Slot ToDouble(Slot s) { return CastTo(s, DType::kDouble); }

  /// Boolean view (ireg holding 0/1).
  int ToBool(Slot s) {
    if (!s.is_float && s.type == DType::kBool) return s.reg;
    const int out = NewI();
    EmitOp(s.is_float ? Op::kBoolD : Op::kBoolI, out, s.reg);
    return out;
  }

  /// Fresh register of the given type.
  Slot NewSlot(DType t) {
    if (ir::DTypeIsFloat(t)) return Slot{true, NewD(), t};
    return Slot{false, NewI(), t};
  }

  /// Copies src into dst (same register file required).
  void Move(const Slot& dst, const Slot& src) {
    assert(dst.is_float == src.is_float);
    EmitOp(dst.is_float ? Op::kMovD : Op::kMovI, dst.reg, src.reg);
  }

  // ---- dataflow bookkeeping --------------------------------------------------
  using ValueKey = std::tuple<const Model*, ir::BlockId, int>;

  void SetValue(const Model& sys, ir::BlockId b, int port, Slot s) {
    values_[ValueKey{&sys, b, port}] = s;
  }
  Slot GetValue(const Model& sys, ir::BlockId b, int port) const {
    auto it = values_.find(ValueKey{&sys, b, port});
    assert(it != values_.end() && "value not lowered yet");
    return it->second;
  }
  Slot InputOf(const Model& sys, const Block& b, int port) const {
    const ir::Wire* w = sys.DriverOf(b.id(), port);
    assert(w != nullptr);
    return GetValue(sys, w->src.block, w->src.port);
  }

  // ---- coverage helpers -------------------------------------------------------
  bool Instr() const { return opts_.model_instrumentation; }

  void EmitCov(int slot) { EmitOp(Op::kCov, 0, 0, 0, slot); }
  void EmitEdge() {
    if (opts_.edge_instrumentation) EmitOp(Op::kEdge, 0, 0, 0, NewEdge());
  }

  /// if (breg) { cov true_slot } else { cov false_slot } — the paper's
  /// mode (a) if/else instrumentation for one boolean signal.
  void EmitPolarityCov(int breg, int true_slot, int false_slot) {
    const std::size_t jz = EmitJz(breg);
    EmitCov(true_slot);
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitCov(false_slot);
    Patch(jend);
  }

  void EmitConditionCov(coverage::ConditionId c, int breg) {
    EmitPolarityCov(breg, sm_.spec.ConditionTrueSlot(c), sm_.spec.ConditionFalseSlot(c));
  }

  void EmitDecisionOutcomeCov(coverage::DecisionId d, int outcome) {
    EmitCov(sm_.spec.OutcomeSlot(d, outcome));
  }

  void EmitMargin(coverage::DecisionId d, int ge_outcome, int lt_outcome, int margin_dreg) {
    if (opts_.record_margins) {
      EmitOp(Op::kMargin, 0, margin_dreg, ge_outcome, d, lt_outcome);
    }
  }

  /// Margin register for a comparison a-b (double domain).
  int MarginReg(Slot a, Slot b) {
    const Slot da = ToDouble(a);
    const Slot db = ToDouble(b);
    const int m = NewD();
    EmitOp(Op::kSubD, m, da.reg, db.reg);
    return m;
  }

  /// Memoized index of a block path in Program::block_names.
  std::int32_t BlockIndex(const std::string& bpath) {
    const auto [it, inserted] =
        block_index_.emplace(bpath, static_cast<std::int32_t>(prog_.block_names.size()));
    if (inserted) prog_.block_names.push_back(bpath);
    return it->second;
  }

  // ---- systems ---------------------------------------------------------------
  Status LowerSystem(const Model& sys, const std::string& path) {
    const auto& order = sm_.OrderOf(&sys);
    // Attribution save/restore around every block: a compound block's nested
    // LowerSystem re-enters here, so its glue (guard evaluation, region
    // jumps) books to the compound while inner blocks book to themselves.
    for (ir::BlockId id : order) {
      const Block& b = sys.block(id);
      const std::int32_t prev = cur_block_;
      cur_block_ = BlockIndex(path.empty() ? b.name() : path + "/" + b.name());
      const Status s = LowerBlock(sys, b, path);
      cur_block_ = prev;
      if (!s.ok()) return s;
    }
    // Update phase: delay-class blocks commit their next state at the end of
    // the system body (inside any enclosing conditional region).
    for (ir::BlockId id : order) {
      const Block& b = sys.block(id);
      const std::int32_t prev = cur_block_;
      cur_block_ = BlockIndex(path.empty() ? b.name() : path + "/" + b.name());
      EmitStateUpdate(sys, b);
      cur_block_ = prev;
    }
    return Status::Ok();
  }

  void EmitStateUpdate(const Model& sys, const Block& b) {
    switch (b.kind()) {
      case BlockKind::kUnitDelay:
      case BlockKind::kMemory: {
        const Slot in = CastTo(InputOf(sys, b, 0), b.out_type(0));
        const int slot = delay_state_.at(&b)[0];
        EmitOp(in.is_float ? Op::kStoreStateD : Op::kStoreStateI, 0, in.reg, 0, slot);
        break;
      }
      case BlockKind::kDelay: {
        const auto& slots = delay_state_.at(&b);
        // Shift register: s[n-1] <- s[n-2] <- ... <- s[0] <- input.
        const bool f = ir::DTypeIsFloat(b.out_type(0));
        const Op load = f ? Op::kLoadStateD : Op::kLoadStateI;
        const Op store = f ? Op::kStoreStateD : Op::kStoreStateI;
        const int tmp = f ? NewD() : NewI();
        for (std::size_t i = slots.size(); i > 1; --i) {
          EmitOp(load, tmp, 0, 0, slots[i - 2]);
          EmitOp(store, 0, tmp, 0, slots[i - 1]);
        }
        const Slot in = CastTo(InputOf(sys, b, 0), b.out_type(0));
        EmitOp(store, 0, in.reg, 0, slots[0]);
        break;
      }
      case BlockKind::kDiscreteIntegrator: {
        const int slot = delay_state_.at(&b)[0];
        const Slot u = ToDouble(InputOf(sys, b, 0));
        const int acc = NewD();
        EmitOp(Op::kLoadStateD, acc, 0, 0, slot);
        const int scaled = NewD();
        const Slot gain = ConstD(b.params().GetDouble("gain", 1.0));
        EmitOp(Op::kMulD, scaled, u.reg, gain.reg);
        EmitOp(Op::kAddD, acc, acc, scaled);
        if (b.params().Has("upper") || b.params().Has("lower")) {
          // Limited integrator: clamp with a 3-way decision (mode (d)).
          const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
          const Slot lo = ConstD(b.params().GetDouble("lower", -1e30));
          const Slot hi = ConstD(b.params().GetDouble("upper", 1e30));
          const int below = NewI();
          EmitOp(Op::kLtD, below, acc, lo.reg);
          const std::size_t jz1 = EmitJz(below);
          EmitEdge();
          if (Instr()) EmitDecisionOutcomeCov(d, 0);
          EmitOp(Op::kMovD, acc, lo.reg);
          const std::size_t jend1 = EmitJmp();
          Patch(jz1);
          const int above = NewI();
          EmitOp(Op::kGtD, above, acc, hi.reg);
          const std::size_t jz2 = EmitJz(above);
          EmitEdge();
          if (Instr()) EmitDecisionOutcomeCov(d, 2);
          EmitOp(Op::kMovD, acc, hi.reg);
          const std::size_t jend2 = EmitJmp();
          Patch(jz2);
          EmitEdge();
          if (Instr()) EmitDecisionOutcomeCov(d, 1);
          Patch(jend1);
          Patch(jend2);
        }
        EmitOp(Op::kStoreStateD, 0, acc, 0, slot);
        break;
      }
      default: break;
    }
  }

  // ---- blocks ------------------------------------------------------------------
  Status LowerBlock(const Model& sys, const Block& b, const std::string& path) {
    const std::string bpath = path.empty() ? b.name() : path + "/" + b.name();
    switch (b.kind()) {
      case BlockKind::kInport: {
        // Sub-model inports are pre-seeded by the enclosing compound.
        if (values_.count(ValueKey{&sys, b.id(), 0})) return Status::Ok();
        const auto field = static_cast<int>(b.params().GetInt("port", 0));
        const DType t = b.out_type(0);
        Slot s = NewSlot(t);
        EmitOp(s.is_float ? Op::kLoadInD : Op::kLoadInI, s.reg, 0, 0, field);
        SetValue(sys, b.id(), 0, s);
        return Status::Ok();
      }
      case BlockKind::kOutport: {
        if (&sys != sm_.root) return Status::Ok();  // read by the compound wrapper
        const auto port = static_cast<std::size_t>(b.params().GetInt("port", 0));
        const Slot in = InputOf(sys, b, 0);
        prog_.output_types[port] = in.type;
        EmitOp(in.is_float ? Op::kStoreOutD : Op::kStoreOutI, 0, in.reg, 0,
               static_cast<int>(port));
        return Status::Ok();
      }
      case BlockKind::kConstant: {
        const DType t = b.out_type(0);
        const double v = b.params().GetDouble("value", 0.0);
        Slot s = ir::DTypeIsFloat(t) ? ConstD(v)
                                     : ConstI(ir::WrapToDType(static_cast<std::int64_t>(v), t), t);
        s.type = t;
        SetValue(sys, b.id(), 0, s);
        return Status::Ok();
      }
      case BlockKind::kGain:
      case BlockKind::kBias: {
        const Slot in = ToDouble(InputOf(sys, b, 0));
        const double k = (b.kind() == BlockKind::kGain) ? b.params().GetDouble("gain", 1.0)
                                                        : b.params().GetDouble("bias", 0.0);
        const Slot kslot = ConstD(k);
        const int out = NewD();
        EmitOp(b.kind() == BlockKind::kGain ? Op::kMulD : Op::kAddD, out, in.reg, kslot.reg);
        SetValue(sys, b.id(), 0, CastTo(Slot{true, out, DType::kDouble}, b.out_type(0)));
        return Status::Ok();
      }
      case BlockKind::kSum: return LowerSum(sys, b);
      case BlockKind::kSubtract: return LowerArith2(sys, b, Op::kSubD, Op::kSubI);
      case BlockKind::kProduct: return LowerProduct(sys, b);
      case BlockKind::kDivide: {
        const Slot a = ToDouble(InputOf(sys, b, 0));
        const Slot c = ToDouble(InputOf(sys, b, 1));
        const int out = NewD();
        EmitOp(Op::kDivD, out, a.reg, c.reg);
        SetValue(sys, b.id(), 0, CastTo(Slot{true, out, DType::kDouble}, b.out_type(0)));
        return Status::Ok();
      }
      case BlockKind::kMod: return LowerArith2(sys, b, Op::kModD, Op::kModI);
      case BlockKind::kRem: return LowerArith2(sys, b, Op::kRemD, Op::kRemI);
      case BlockKind::kMin: return LowerMinMax(sys, b, /*is_min=*/true);
      case BlockKind::kMax: return LowerMinMax(sys, b, /*is_min=*/false);
      case BlockKind::kAbs: return LowerAbs(sys, b);
      case BlockKind::kUnaryMinus: {
        const Slot in = CastTo(InputOf(sys, b, 0), b.out_type(0));
        Slot out = NewSlot(b.out_type(0));
        EmitOp(out.is_float ? Op::kNegD : Op::kNegI, out.reg, in.reg, 0, 0, 0, 0, out.type);
        SetValue(sys, b.id(), 0, out);
        return Status::Ok();
      }
      case BlockKind::kSign: return LowerSign(sys, b);
      case BlockKind::kSqrt: return LowerUnaryD(sys, b, Op::kSqrtD);
      case BlockKind::kExp: return LowerUnaryD(sys, b, Op::kExpD);
      case BlockKind::kLog: return LowerUnaryD(sys, b, Op::kLogD);
      case BlockKind::kSin: return LowerUnaryD(sys, b, Op::kSinD);
      case BlockKind::kCos: return LowerUnaryD(sys, b, Op::kCosD);
      case BlockKind::kTan: return LowerUnaryD(sys, b, Op::kTanD);
      case BlockKind::kFloor: return LowerRounding(sys, b, Op::kFloorD);
      case BlockKind::kCeil: return LowerRounding(sys, b, Op::kCeilD);
      case BlockKind::kRound: return LowerRounding(sys, b, Op::kRoundD);
      case BlockKind::kAtan2:
      case BlockKind::kPow: {
        const Slot a = ToDouble(InputOf(sys, b, 0));
        const Slot c = ToDouble(InputOf(sys, b, 1));
        const int out = NewD();
        EmitOp(b.kind() == BlockKind::kAtan2 ? Op::kAtan2D : Op::kPowD, out, a.reg, c.reg);
        SetValue(sys, b.id(), 0, Slot{true, out, DType::kDouble});
        return Status::Ok();
      }
      case BlockKind::kSaturation: return LowerSaturation(sys, b);
      case BlockKind::kDeadZone: return LowerDeadZone(sys, b);
      case BlockKind::kRateLimiter: return LowerRateLimiter(sys, b, bpath);
      case BlockKind::kQuantizer: {
        const Slot u = ToDouble(InputOf(sys, b, 0));
        const Slot q = ConstD(b.params().GetDouble("interval", 1.0));
        const int t = NewD();
        EmitOp(Op::kDivD, t, u.reg, q.reg);
        EmitOp(Op::kRoundD, t, t);
        EmitOp(Op::kMulD, t, t, q.reg);
        SetValue(sys, b.id(), 0, CastTo(Slot{true, t, DType::kDouble}, b.out_type(0)));
        return Status::Ok();
      }
      case BlockKind::kRelay: return LowerRelay(sys, b, bpath);
      case BlockKind::kRelationalOp:
      case BlockKind::kCompareToConstant:
      case BlockKind::kCompareToZero: return LowerRelational(sys, b);
      case BlockKind::kLogicalAnd:
      case BlockKind::kLogicalOr:
      case BlockKind::kLogicalXor:
      case BlockKind::kLogicalNand:
      case BlockKind::kLogicalNor: return LowerLogical(sys, b);
      case BlockKind::kLogicalNot: {
        const int in = ToBool(InputOf(sys, b, 0));
        const int out = NewI();
        EmitOp(Op::kNotL, out, in);
        SetValue(sys, b.id(), 0, Slot{false, out, DType::kBool});
        return Status::Ok();
      }
      case BlockKind::kBitwiseAnd: return LowerBitwise(sys, b, Op::kAndBitsI);
      case BlockKind::kBitwiseOr: return LowerBitwise(sys, b, Op::kOrBitsI);
      case BlockKind::kBitwiseXor: return LowerBitwise(sys, b, Op::kXorBitsI);
      case BlockKind::kShiftLeft:
      case BlockKind::kShiftRight: {
        const Slot in = CastTo(InputOf(sys, b, 0), b.out_type(0));
        const Slot bits = ConstI(b.params().GetInt("bits", 1), DType::kInt32);
        Slot out = NewSlot(b.out_type(0));
        EmitOp(b.kind() == BlockKind::kShiftLeft ? Op::kShlI : Op::kShrI, out.reg, in.reg,
               bits.reg, 0, 0, 0, out.type);
        SetValue(sys, b.id(), 0, out);
        return Status::Ok();
      }
      case BlockKind::kSwitch: return LowerSwitch(sys, b);
      case BlockKind::kMultiportSwitch: return LowerMultiportSwitch(sys, b);
      case BlockKind::kMerge: return LowerMerge(sys, b);
      case BlockKind::kUnitDelay:
      case BlockKind::kMemory: {
        const DType t = b.out_type(0);
        const int slot = ir::DTypeIsFloat(t)
                             ? NewStateD(b.params().GetDouble("init", 0.0), t, bpath)
                             : NewStateI(b.params().GetDouble("init", 0.0), t, bpath);
        delay_state_[&b] = {slot};
        Slot out = NewSlot(t);
        EmitOp(out.is_float ? Op::kLoadStateD : Op::kLoadStateI, out.reg, 0, 0, slot);
        SetValue(sys, b.id(), 0, out);
        return Status::Ok();
      }
      case BlockKind::kDelay: {
        const DType t = b.out_type(0);
        const int n = static_cast<int>(b.params().GetInt("length", 1));
        if (n < 1) return Status::Error(b.name() + ": Delay length must be >= 1");
        const double init = b.params().GetDouble("init", 0.0);
        std::vector<int> slots;
        for (int i = 0; i < n; ++i) {
          slots.push_back(ir::DTypeIsFloat(t)
                              ? NewStateD(init, t, StrFormat("%s#%d", bpath.c_str(), i))
                              : NewStateI(init, t, StrFormat("%s#%d", bpath.c_str(), i)));
        }
        delay_state_[&b] = slots;
        Slot out = NewSlot(t);
        EmitOp(out.is_float ? Op::kLoadStateD : Op::kLoadStateI, out.reg, 0, 0, slots.back());
        SetValue(sys, b.id(), 0, out);
        return Status::Ok();
      }
      case BlockKind::kDiscreteIntegrator: {
        const int slot = NewStateD(b.params().GetDouble("init", 0.0), DType::kDouble, bpath);
        delay_state_[&b] = {slot};
        Slot out = NewSlot(DType::kDouble);
        EmitOp(Op::kLoadStateD, out.reg, 0, 0, slot);
        SetValue(sys, b.id(), 0, out);
        return Status::Ok();
      }
      case BlockKind::kCounterLimited: return LowerCounter(sys, b, bpath);
      case BlockKind::kEdgeDetector: return LowerEdgeDetector(sys, b, bpath);
      case BlockKind::kLookup1D: return LowerLookup(sys, b);
      case BlockKind::kDataTypeConversion: {
        SetValue(sys, b.id(), 0, CastTo(InputOf(sys, b, 0), b.out_type(0)));
        return Status::Ok();
      }
      case BlockKind::kSubsystem: return LowerSubsystem(sys, b, bpath);
      case BlockKind::kActionIf: return LowerActionIf(sys, b, bpath);
      case BlockKind::kActionSwitch: return LowerActionSwitch(sys, b, bpath);
      case BlockKind::kEnabledSubsystem: return LowerEnabled(sys, b, bpath);
      case BlockKind::kChart: return LowerChart(sys, b, bpath);
      case BlockKind::kExprFunc: return LowerExprFunc(sys, b);
    }
    return Status::Error("unhandled block kind in lowering");
  }

  // -- arithmetic families ------------------------------------------------
  Status LowerSum(const Model& sys, const Block& b) {
    const std::string signs = b.params().GetString("signs", "++");
    const DType t = b.out_type(0);
    if (ir::DTypeIsFloat(t)) {
      int acc = -1;
      for (std::size_t i = 0; i < signs.size(); ++i) {
        const Slot in = ToDouble(InputOf(sys, b, static_cast<int>(i)));
        if (acc < 0) {
          acc = NewD();
          if (signs[i] == '-') {
            EmitOp(Op::kNegD, acc, in.reg);
          } else {
            EmitOp(Op::kMovD, acc, in.reg);
          }
        } else {
          EmitOp(signs[i] == '-' ? Op::kSubD : Op::kAddD, acc, acc, in.reg);
        }
      }
      SetValue(sys, b.id(), 0, Slot{true, acc, t});
    } else {
      int acc = -1;
      for (std::size_t i = 0; i < signs.size(); ++i) {
        const Slot in = CastTo(InputOf(sys, b, static_cast<int>(i)), t);
        if (acc < 0) {
          acc = NewI();
          if (signs[i] == '-') {
            EmitOp(Op::kNegI, acc, in.reg, 0, 0, 0, 0, t);
          } else {
            EmitOp(Op::kMovI, acc, in.reg);
          }
        } else {
          EmitOp(signs[i] == '-' ? Op::kSubI : Op::kAddI, acc, acc, in.reg, 0, 0, 0, t);
        }
      }
      SetValue(sys, b.id(), 0, Slot{false, acc, t});
    }
    return Status::Ok();
  }

  Status LowerProduct(const Model& sys, const Block& b) {
    const std::string ops = b.params().GetString("ops", "**");
    const Slot first = ToDouble(InputOf(sys, b, 0));
    const int acc = NewD();
    if (ops[0] == '/') {
      const Slot one = ConstD(1.0);
      EmitOp(Op::kDivD, acc, one.reg, first.reg);
    } else {
      EmitOp(Op::kMovD, acc, first.reg);
    }
    for (std::size_t i = 1; i < ops.size(); ++i) {
      const Slot in = ToDouble(InputOf(sys, b, static_cast<int>(i)));
      EmitOp(ops[i] == '/' ? Op::kDivD : Op::kMulD, acc, acc, in.reg);
    }
    SetValue(sys, b.id(), 0, CastTo(Slot{true, acc, DType::kDouble}, b.out_type(0)));
    return Status::Ok();
  }

  Status LowerArith2(const Model& sys, const Block& b, Op dop, Op iop) {
    const DType t = b.out_type(0);
    if (ir::DTypeIsFloat(t)) {
      const Slot a = ToDouble(InputOf(sys, b, 0));
      const Slot c = ToDouble(InputOf(sys, b, 1));
      const int out = NewD();
      EmitOp(dop, out, a.reg, c.reg);
      SetValue(sys, b.id(), 0, Slot{true, out, t});
    } else {
      const Slot a = CastTo(InputOf(sys, b, 0), t);
      const Slot c = CastTo(InputOf(sys, b, 1), t);
      const int out = NewI();
      EmitOp(iop, out, a.reg, c.reg, 0, 0, 0, t);
      SetValue(sys, b.id(), 0, Slot{false, out, t});
    }
    return Status::Ok();
  }

  Status LowerUnaryD(const Model& sys, const Block& b, Op op) {
    const Slot in = ToDouble(InputOf(sys, b, 0));
    const int out = NewD();
    EmitOp(op, out, in.reg);
    SetValue(sys, b.id(), 0, Slot{true, out, DType::kDouble});
    return Status::Ok();
  }

  Status LowerRounding(const Model& sys, const Block& b, Op op) {
    const DType t = b.out_type(0);
    if (!ir::DTypeIsFloat(t)) {  // integers are already integral
      SetValue(sys, b.id(), 0, InputOf(sys, b, 0));
      return Status::Ok();
    }
    const Slot in = ToDouble(InputOf(sys, b, 0));
    const int out = NewD();
    EmitOp(op, out, in.reg);
    SetValue(sys, b.id(), 0, Slot{true, out, t});
    return Status::Ok();
  }

  /// Comparison of two slots in their promoted domain -> bool ireg.
  int Compare(Slot a, Slot c, const std::string& op) {
    const DType pt = ir::PromoteDTypes(a.type, c.type);
    const bool fl = ir::DTypeIsFloat(pt);
    const Slot ca = fl ? ToDouble(a) : CastTo(a, pt);
    const Slot cc = fl ? ToDouble(c) : CastTo(c, pt);
    const int out = NewI();
    Op o;
    if (op == "lt" || op == "<") o = fl ? Op::kLtD : Op::kLtI;
    else if (op == "le" || op == "<=") o = fl ? Op::kLeD : Op::kLeI;
    else if (op == "gt" || op == ">") o = fl ? Op::kGtD : Op::kGtI;
    else if (op == "ge" || op == ">=") o = fl ? Op::kGeD : Op::kGeI;
    else if (op == "eq" || op == "==") o = fl ? Op::kEqD : Op::kEqI;
    else o = fl ? Op::kNeD : Op::kNeI;
    EmitOp(o, out, ca.reg, cc.reg);
    return out;
  }

  Status LowerMinMax(const Model& sys, const Block& b, bool is_min) {
    const DType t = b.out_type(0);
    const Slot a = CastTo(InputOf(sys, b, 0), t);
    const Slot c = CastTo(InputOf(sys, b, 1), t);
    if (!Instr()) {
      // Branch-free (what -O2 produces): no decision observable at code level.
      Slot out = NewSlot(t);
      const Op op = out.is_float ? (is_min ? Op::kMinD : Op::kMaxD)
                                 : (is_min ? Op::kMinI : Op::kMaxI);
      EmitOp(op, out.reg, a.reg, c.reg, 0, 0, 0, t);
      SetValue(sys, b.id(), 0, out);
      return Status::Ok();
    }
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int cmp = Compare(a, c, is_min ? "le" : "ge");
    EmitMargin(d, 0, 1, MarginReg(is_min ? c : a, is_min ? a : c));
    Slot out = NewSlot(t);
    const std::size_t jz = EmitJz(cmp);
    EmitDecisionOutcomeCov(d, 0);
    Move(out, a);
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitDecisionOutcomeCov(d, 1);
    Move(out, c);
    Patch(jend);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerAbs(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const Slot in = CastTo(InputOf(sys, b, 0), t);
    if (ir::DTypeIsFloat(t) || !Instr()) {
      Slot out = NewSlot(t);
      EmitOp(out.is_float ? Op::kAbsD : Op::kAbsI, out.reg, in.reg, 0, 0, 0, 0, t);
      SetValue(sys, b.id(), 0, out);
      return Status::Ok();
    }
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const Slot zero = ConstI(0, t);
    const int neg = NewI();
    EmitOp(Op::kLtI, neg, in.reg, zero.reg);
    Slot out = NewSlot(t);
    const std::size_t jz = EmitJz(neg);
    EmitDecisionOutcomeCov(d, 0);
    EmitOp(Op::kNegI, out.reg, in.reg, 0, 0, 0, 0, t);
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitDecisionOutcomeCov(d, 1);
    EmitOp(Op::kMovI, out.reg, in.reg);
    Patch(jend);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerSign(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const Slot in = CastTo(InputOf(sys, b, 0), t);
    if (!Instr()) {
      Slot out = NewSlot(t);
      EmitOp(out.is_float ? Op::kSignD : Op::kSignI, out.reg, in.reg, 0, 0, 0, 0, t);
      SetValue(sys, b.id(), 0, out);
      return Status::Ok();
    }
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    Slot out = NewSlot(t);
    Slot zero = out.is_float ? ConstD(0.0) : ConstI(0, t);
    const int pos = NewI();
    EmitOp(out.is_float ? Op::kGtD : Op::kGtI, pos, in.reg, zero.reg);
    const std::size_t jz1 = EmitJz(pos);
    EmitDecisionOutcomeCov(d, 0);
    if (out.is_float) EmitOp(Op::kLoadConstD, out.reg, 0, 0, 0, 0, 1.0);
    else EmitOp(Op::kLoadConstI, out.reg, 0, 0, 0, 0, 1.0, t);
    const std::size_t jend1 = EmitJmp();
    Patch(jz1);
    const int negr = NewI();
    EmitOp(out.is_float ? Op::kLtD : Op::kLtI, negr, in.reg, zero.reg);
    const std::size_t jz2 = EmitJz(negr);
    EmitDecisionOutcomeCov(d, 1);
    if (out.is_float) EmitOp(Op::kLoadConstD, out.reg, 0, 0, 0, 0, -1.0);
    else EmitOp(Op::kLoadConstI, out.reg, 0, 0, 0, 0, -1.0, t);
    const std::size_t jend2 = EmitJmp();
    Patch(jz2);
    EmitDecisionOutcomeCov(d, 2);
    if (out.is_float) EmitOp(Op::kLoadConstD, out.reg, 0, 0, 0, 0, 0.0);
    else EmitOp(Op::kLoadConstI, out.reg, 0, 0, 0, 0, 0.0, t);
    Patch(jend1);
    Patch(jend2);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerSaturation(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const Slot u = CastTo(InputOf(sys, b, 0), t);
    const double lo_v = b.params().GetDouble("lower", 0.0);
    const double hi_v = b.params().GetDouble("upper", 1.0);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    Slot out = NewSlot(t);
    Slot lo = out.is_float ? ConstD(lo_v) : ConstI(static_cast<std::int64_t>(lo_v), t);
    Slot hi = out.is_float ? ConstD(hi_v) : ConstI(static_cast<std::int64_t>(hi_v), t);
    EmitMargin(d, 1, 0, MarginReg(u, lo));
    EmitMargin(d, 2, 1, MarginReg(u, hi));
    const int below = NewI();
    EmitOp(out.is_float ? Op::kLtD : Op::kLtI, below, u.reg, lo.reg);
    const std::size_t jz1 = EmitJz(below);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    Move(out, lo);
    const std::size_t jend1 = EmitJmp();
    Patch(jz1);
    const int above = NewI();
    EmitOp(out.is_float ? Op::kGtD : Op::kGtI, above, u.reg, hi.reg);
    const std::size_t jz2 = EmitJz(above);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 2);
    Move(out, hi);
    const std::size_t jend2 = EmitJmp();
    Patch(jz2);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    Move(out, u);
    Patch(jend1);
    Patch(jend2);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerDeadZone(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const Slot u = ToDouble(InputOf(sys, b, 0));
    const Slot start = ConstD(b.params().GetDouble("start", -0.5));
    const Slot end = ConstD(b.params().GetDouble("end", 0.5));
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    EmitMargin(d, 1, 0, MarginReg(u, start));
    EmitMargin(d, 2, 1, MarginReg(u, end));
    const int out = NewD();
    const int below = NewI();
    EmitOp(Op::kLtD, below, u.reg, start.reg);
    const std::size_t jz1 = EmitJz(below);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    EmitOp(Op::kSubD, out, u.reg, start.reg);
    const std::size_t jend1 = EmitJmp();
    Patch(jz1);
    const int above = NewI();
    EmitOp(Op::kGtD, above, u.reg, end.reg);
    const std::size_t jz2 = EmitJz(above);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 2);
    EmitOp(Op::kSubD, out, u.reg, end.reg);
    const std::size_t jend2 = EmitJmp();
    Patch(jz2);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    EmitOp(Op::kLoadConstD, out, 0, 0, 0, 0, 0.0);
    Patch(jend1);
    Patch(jend2);
    SetValue(sys, b.id(), 0, CastTo(Slot{true, out, DType::kDouble}, t));
    return Status::Ok();
  }

  Status LowerRateLimiter(const Model& sys, const Block& b, const std::string& bpath) {
    const Slot u = ToDouble(InputOf(sys, b, 0));
    const double rising = b.params().GetDouble("rising", 1.0);
    const double falling = b.params().GetDouble("falling", -1.0);
    const int slot = NewStateD(b.params().GetDouble("init", 0.0), DType::kDouble, bpath);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int prev = NewD();
    EmitOp(Op::kLoadStateD, prev, 0, 0, slot);
    const int delta = NewD();
    EmitOp(Op::kSubD, delta, u.reg, prev);
    const Slot rise = ConstD(rising);
    const Slot fall = ConstD(falling);
    EmitMargin(d, 0, 1, MarginReg(Slot{true, delta, DType::kDouble}, rise));
    const int out = NewD();
    const int over = NewI();
    EmitOp(Op::kGtD, over, delta, rise.reg);
    const std::size_t jz1 = EmitJz(over);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    EmitOp(Op::kAddD, out, prev, rise.reg);
    const std::size_t jend1 = EmitJmp();
    Patch(jz1);
    const int under = NewI();
    EmitOp(Op::kLtD, under, delta, fall.reg);
    const std::size_t jz2 = EmitJz(under);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 2);
    EmitOp(Op::kAddD, out, prev, fall.reg);
    const std::size_t jend2 = EmitJmp();
    Patch(jz2);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    EmitOp(Op::kMovD, out, u.reg);
    Patch(jend1);
    Patch(jend2);
    EmitOp(Op::kStoreStateD, 0, out, 0, slot);
    SetValue(sys, b.id(), 0, Slot{true, out, DType::kDouble});
    return Status::Ok();
  }

  Status LowerRelay(const Model& sys, const Block& b, const std::string& bpath) {
    const Slot u = ToDouble(InputOf(sys, b, 0));
    const Slot on_pt = ConstD(b.params().GetDouble("on_point", 1.0));
    const Slot off_pt = ConstD(b.params().GetDouble("off_point", 0.0));
    const int slot = NewStateI(b.params().GetDouble("init", 0.0), DType::kBool, bpath);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int on = NewI();
    EmitOp(Op::kLoadStateI, on, 0, 0, slot);
    // Hysteresis update.
    const std::size_t jz = EmitJz(on);
    {  // currently on: turn off when u <= off_point
      const int le = NewI();
      EmitOp(Op::kLeD, le, u.reg, off_pt.reg);
      const std::size_t skip = EmitJz(le);
      EmitOp(Op::kLoadConstI, on, 0, 0, 0, 0, 0.0, DType::kBool);
      Patch(skip);
    }
    const std::size_t jend = EmitJmp();
    Patch(jz);
    {  // currently off: turn on when u >= on_point
      const int ge = NewI();
      EmitOp(Op::kGeD, ge, u.reg, on_pt.reg);
      const std::size_t skip = EmitJz(ge);
      EmitOp(Op::kLoadConstI, on, 0, 0, 0, 0, 1.0, DType::kBool);
      Patch(skip);
    }
    Patch(jend);
    EmitOp(Op::kStoreStateI, 0, on, 0, slot);
    EmitMargin(d, 0, 1, MarginReg(u, on_pt));
    const int out = NewD();
    const std::size_t jz2 = EmitJz(on);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    EmitOp(Op::kLoadConstD, out, 0, 0, 0, 0, b.params().GetDouble("on_value", 1.0));
    const std::size_t jend2 = EmitJmp();
    Patch(jz2);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    EmitOp(Op::kLoadConstD, out, 0, 0, 0, 0, b.params().GetDouble("off_value", 0.0));
    Patch(jend2);
    SetValue(sys, b.id(), 0, Slot{true, out, DType::kDouble});
    return Status::Ok();
  }

  Status LowerRelational(const Model& sys, const Block& b) {
    const std::string op = b.params().GetString("op", "lt");
    Slot a = InputOf(sys, b, 0);
    Slot c;
    if (b.kind() == BlockKind::kRelationalOp) {
      c = InputOf(sys, b, 1);
    } else if (b.kind() == BlockKind::kCompareToConstant) {
      const double v = b.params().GetDouble("value", 0.0);
      // A fractional threshold against an integer signal must compare in the
      // floating domain, as the generated C would.
      const bool fractional = v != std::floor(v);
      c = (a.is_float || fractional) ? ConstD(v) : ConstI(static_cast<std::int64_t>(v), a.type);
    } else {
      c = a.is_float ? ConstD(0.0) : ConstI(0, a.type);
    }
    const int result = Compare(a, c, op);
    if (Instr()) EmitConditionCov(sm_.ConditionAt(&b, 0), result);
    SetValue(sys, b.id(), 0, Slot{false, result, DType::kBool});
    return Status::Ok();
  }

  Status LowerLogical(const Model& sys, const Block& b) {
    const int n = b.num_inputs();
    const coverage::DecisionId d = Instr() ? sm_.DecisionAt(&b, 0) : -1;
    std::vector<int> bools;
    const int vals = NewI();
    if (Instr()) EmitOp(Op::kLoadConstI, vals, 0, 0, 0, 0, 0.0, DType::kUInt32);
    for (int i = 0; i < n; ++i) {
      const int bi = ToBool(InputOf(sys, b, i));
      bools.push_back(bi);
      if (Instr()) {
        // Mode (a): if/else instrumentation on every boolean input, plus
        // MCDC vector accumulation.
        const coverage::ConditionId c = sm_.ConditionAt(&b, i + 1);
        const std::size_t jz = EmitJz(bi);
        EmitCov(sm_.spec.ConditionTrueSlot(c));
        const Slot bit = ConstI(1LL << i, DType::kUInt32);
        EmitOp(Op::kOrBitsI, vals, vals, bit.reg, 0, 0, 0, DType::kUInt32);
        const std::size_t jend = EmitJmp();
        Patch(jz);
        EmitCov(sm_.spec.ConditionFalseSlot(c));
        Patch(jend);
      }
    }
    // Combine branch-free (the paper's observation: no jump instructions for
    // boolean operators in optimized code).
    int acc = NewI();
    EmitOp(Op::kMovI, acc, bools[0]);
    for (int i = 1; i < n; ++i) {
      Op op = Op::kAndBitsI;
      if (b.kind() == BlockKind::kLogicalOr || b.kind() == BlockKind::kLogicalNor) {
        op = Op::kOrBitsI;
      } else if (b.kind() == BlockKind::kLogicalXor) {
        op = Op::kXorBitsI;
      }
      EmitOp(op, acc, acc, bools[i], 0, 0, 0, DType::kBool);
    }
    if (b.kind() == BlockKind::kLogicalNand || b.kind() == BlockKind::kLogicalNor) {
      const int inv = NewI();
      EmitOp(Op::kNotL, inv, acc);
      acc = inv;
    }
    if (Instr()) {
      const Slot mask = ConstI((1LL << n) - 1, DType::kUInt32);
      EmitOp(Op::kMcdcEval, 0, vals, mask.reg, d, acc);
      EmitPolarityCov(acc, sm_.spec.OutcomeSlot(d, 0), sm_.spec.OutcomeSlot(d, 1));
    }
    SetValue(sys, b.id(), 0, Slot{false, acc, DType::kBool});
    return Status::Ok();
  }

  Status LowerBitwise(const Model& sys, const Block& b, Op op) {
    const DType t = b.out_type(0);
    const Slot a = CastTo(InputOf(sys, b, 0), t);
    const Slot c = CastTo(InputOf(sys, b, 1), t);
    const int out = NewI();
    EmitOp(op, out, a.reg, c.reg, 0, 0, 0, t);
    SetValue(sys, b.id(), 0, Slot{false, out, t});
    return Status::Ok();
  }

  Status LowerSwitch(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const Slot in0 = InputOf(sys, b, 0);
    const Slot ctrl = InputOf(sys, b, 1);
    const Slot in2 = InputOf(sys, b, 2);
    const std::string criteria = b.params().GetString("criteria", "ge");
    const double thr = b.params().GetDouble("threshold", 0.0);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    int cond;
    if (criteria == "ne") {
      Slot zero = ctrl.is_float ? ConstD(0.0) : ConstI(0, ctrl.type);
      cond = Compare(ctrl, zero, "ne");
    } else {
      // A fractional threshold against an integer control compares in the
      // floating domain (generated C promotes the operand).
      const bool fractional = thr != std::floor(thr);
      Slot th = (ctrl.is_float || fractional)
                    ? ConstD(thr)
                    : ConstI(static_cast<std::int64_t>(thr), ctrl.type);
      cond = Compare(ctrl, th, criteria);
      EmitMargin(d, 0, 1, MarginReg(ctrl, th));
    }
    Slot out = NewSlot(t);
    const std::size_t jz = EmitJz(cond);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    Move(out, CastTo(in0, t));
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    Move(out, CastTo(in2, t));
    Patch(jend);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerMultiportSwitch(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const int cases = static_cast<int>(b.params().GetInt("cases", 2));
    const Slot idx = CastTo(InputOf(sys, b, 0), DType::kInt32);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    Slot out = NewSlot(t);
    std::vector<std::size_t> ends;
    for (int i = 0; i < cases - 1; ++i) {
      const Slot k = ConstI(i + 1, DType::kInt32);  // 1-based port selection
      const int eq = NewI();
      EmitOp(Op::kEqI, eq, idx.reg, k.reg);
      const std::size_t jz = EmitJz(eq);
      EmitEdge();
      if (Instr()) EmitDecisionOutcomeCov(d, i);
      Move(out, CastTo(InputOf(sys, b, 1 + i), t));
      ends.push_back(EmitJmp());
      Patch(jz);
    }
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, cases - 1);
    Move(out, CastTo(InputOf(sys, b, cases), t));
    PatchAll(ends);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerMerge(const Model& sys, const Block& b) {
    const DType t = b.out_type(0);
    const int n = b.num_inputs();
    Slot out = NewSlot(t);
    std::vector<std::size_t> ends;
    for (int i = 0; i < n - 1; ++i) {
      const Slot in = InputOf(sys, b, i);
      const int nz = ToBool(in);
      const std::size_t jz = EmitJz(nz);
      Move(out, CastTo(in, t));
      ends.push_back(EmitJmp());
      Patch(jz);
    }
    Move(out, CastTo(InputOf(sys, b, n - 1), t));
    PatchAll(ends);
    SetValue(sys, b.id(), 0, out);
    return Status::Ok();
  }

  Status LowerCounter(const Model& sys, const Block& b, const std::string& bpath) {
    const DType t = b.out_type(0);
    const int limit = static_cast<int>(b.params().GetInt("limit", 10));
    const int slot = NewStateI(b.params().GetDouble("init", 0.0), t, bpath);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int enable = ToBool(InputOf(sys, b, 0));
    const int count = NewI();
    EmitOp(Op::kLoadStateI, count, 0, 0, slot);
    const std::size_t skip = EmitJz(enable);
    const Slot lim = ConstI(limit, t);
    const int wrap = NewI();
    EmitOp(Op::kGeI, wrap, count, lim.reg);
    const std::size_t jz = EmitJz(wrap);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    EmitOp(Op::kLoadConstI, count, 0, 0, 0, 0, 0.0, t);
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    const Slot one = ConstI(1, t);
    EmitOp(Op::kAddI, count, count, one.reg, 0, 0, 0, t);
    Patch(jend);
    EmitOp(Op::kStoreStateI, 0, count, 0, slot);
    Patch(skip);
    SetValue(sys, b.id(), 0, Slot{false, count, t});
    return Status::Ok();
  }

  Status LowerEdgeDetector(const Model& sys, const Block& b, const std::string& bpath) {
    const std::string edge = b.params().GetString("edge", "rising");
    const int slot = NewStateI(0.0, DType::kBool, bpath);
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int u = ToBool(InputOf(sys, b, 0));
    const int prev = NewI();
    EmitOp(Op::kLoadStateI, prev, 0, 0, slot);
    const int nprev = NewI();
    EmitOp(Op::kNotL, nprev, prev);
    const int nu = NewI();
    EmitOp(Op::kNotL, nu, u);
    const int out = NewI();
    if (edge == "falling") {
      EmitOp(Op::kAndBitsI, out, nu, prev, 0, 0, 0, DType::kBool);
    } else if (edge == "either") {
      EmitOp(Op::kXorBitsI, out, u, prev, 0, 0, 0, DType::kBool);
    } else {  // rising
      EmitOp(Op::kAndBitsI, out, u, nprev, 0, 0, 0, DType::kBool);
    }
    EmitOp(Op::kStoreStateI, 0, u, 0, slot);
    if (Instr()) {
      EmitPolarityCov(out, sm_.spec.OutcomeSlot(d, 0), sm_.spec.OutcomeSlot(d, 1));
      EmitConditionCov(sm_.ConditionAt(&b, 1), out);
    }
    SetValue(sys, b.id(), 0, Slot{false, out, DType::kBool});
    return Status::Ok();
  }

  Status LowerLookup(const Model& sys, const Block& b) {
    const auto bp = b.params().GetList("breakpoints");
    const auto tb = b.params().GetList("table");
    if (bp.size() < 2 || bp.size() != tb.size()) {
      return Status::Error(b.name() + ": Lookup1D needs matching breakpoints/table, size >= 2");
    }
    const Slot u = ToDouble(InputOf(sys, b, 0));
    const int out = NewD();
    std::vector<std::size_t> ends;
    // Clamp below.
    {
      const Slot b0 = ConstD(bp.front());
      const int lt = NewI();
      EmitOp(Op::kLeD, lt, u.reg, b0.reg);
      const std::size_t jz = EmitJz(lt);
      EmitOp(Op::kLoadConstD, out, 0, 0, 0, 0, tb.front());
      ends.push_back(EmitJmp());
      Patch(jz);
    }
    // Interior segments.
    for (std::size_t i = 1; i + 1 < bp.size(); ++i) {
      const Slot bi = ConstD(bp[i]);
      const int lt = NewI();
      EmitOp(Op::kLeD, lt, u.reg, bi.reg);
      const std::size_t jz = EmitJz(lt);
      EmitSegment(u.reg, out, bp[i - 1], bp[i], tb[i - 1], tb[i]);
      ends.push_back(EmitJmp());
      Patch(jz);
    }
    // Last segment + clamp above.
    {
      const std::size_t n = bp.size();
      const Slot bn = ConstD(bp[n - 1]);
      const int lt = NewI();
      EmitOp(Op::kLeD, lt, u.reg, bn.reg);
      const std::size_t jz = EmitJz(lt);
      EmitSegment(u.reg, out, bp[n - 2], bp[n - 1], tb[n - 2], tb[n - 1]);
      const std::size_t jend = EmitJmp();
      Patch(jz);
      EmitOp(Op::kLoadConstD, out, 0, 0, 0, 0, tb.back());
      Patch(jend);
    }
    PatchAll(ends);
    SetValue(sys, b.id(), 0, Slot{true, out, DType::kDouble});
    return Status::Ok();
  }

  void EmitSegment(int ureg, int out, double x0, double x1, double y0, double y1) {
    const double slope = (x1 == x0) ? 0.0 : (y1 - y0) / (x1 - x0);
    const Slot sx0 = ConstD(x0);
    const Slot sslope = ConstD(slope);
    const Slot sy0 = ConstD(y0);
    const int t = NewD();
    EmitOp(Op::kSubD, t, ureg, sx0.reg);
    EmitOp(Op::kMulD, t, t, sslope.reg);
    EmitOp(Op::kAddD, out, t, sy0.reg);
  }

  // -- compound blocks --------------------------------------------------------
  /// Seeds a sub-model's inports with the compound's data inputs.
  void SeedSubInports(const Model& sys, const Block& b, const Model& sub, int data_offset) {
    const auto inports = sub.Inports();
    for (std::size_t i = 0; i < inports.size(); ++i) {
      const Block& ip = sub.block(inports[i]);
      const Slot s = CastTo(InputOf(sys, b, data_offset + static_cast<int>(i)), ip.out_type(0));
      SetValue(sub, ip.id(), 0, s);
    }
  }

  /// Copies a sub-model's outport drivers into the compound's output regs.
  void StoreSubOutputs(const Model& sub, const std::vector<Slot>& outs) {
    const auto outports = sub.Outports();
    for (std::size_t i = 0; i < outports.size(); ++i) {
      const ir::Wire* w = sub.DriverOf(outports[i], 0);
      const Slot s = CastTo(GetValue(sub, w->src.block, w->src.port), outs[i].type);
      Move(outs[i], s);
    }
  }

  std::vector<Slot> MakeOutputRegs(const Block& b) {
    std::vector<Slot> outs;
    for (int i = 0; i < b.num_outputs(); ++i) outs.push_back(NewSlot(b.out_type(i)));
    return outs;
  }

  void PublishOutputs(const Model& sys, const Block& b, const std::vector<Slot>& outs) {
    for (std::size_t i = 0; i < outs.size(); ++i) {
      SetValue(sys, b.id(), static_cast<int>(i), outs[i]);
    }
  }

  Status LowerSubsystem(const Model& sys, const Block& b, const std::string& bpath) {
    const Model& sub = *b.subs()[0];
    SeedSubInports(sys, b, sub, 0);
    if (Status s = LowerSystem(sub, bpath); !s.ok()) return s;
    auto outs = MakeOutputRegs(b);
    StoreSubOutputs(sub, outs);
    PublishOutputs(sys, b, outs);
    return Status::Ok();
  }

  Status LowerActionIf(const Model& sys, const Block& b, const std::string& bpath) {
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int cond = ToBool(InputOf(sys, b, 0));
    auto outs = MakeOutputRegs(b);
    const std::size_t jz = EmitJz(cond);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    {
      const Model& then_sub = *b.subs()[0];
      SeedSubInports(sys, b, then_sub, 1);
      if (Status s = LowerSystem(then_sub, bpath + ".then"); !s.ok()) return s;
      StoreSubOutputs(then_sub, outs);
    }
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    {
      const Model& else_sub = *b.subs()[1];
      SeedSubInports(sys, b, else_sub, 1);
      if (Status s = LowerSystem(else_sub, bpath + ".else"); !s.ok()) return s;
      StoreSubOutputs(else_sub, outs);
    }
    Patch(jend);
    PublishOutputs(sys, b, outs);
    return Status::Ok();
  }

  Status LowerActionSwitch(const Model& sys, const Block& b, const std::string& bpath) {
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const int n_subs = static_cast<int>(b.subs().size());  // K cases + default
    const Slot idx = CastTo(InputOf(sys, b, 0), DType::kInt32);
    auto outs = MakeOutputRegs(b);
    std::vector<std::size_t> ends;
    for (int i = 0; i < n_subs - 1; ++i) {
      const Slot k = ConstI(i + 1, DType::kInt32);
      const int eq = NewI();
      EmitOp(Op::kEqI, eq, idx.reg, k.reg);
      const std::size_t jz = EmitJz(eq);
      EmitEdge();
      if (Instr()) EmitDecisionOutcomeCov(d, i);
      const Model& sub = *b.subs()[static_cast<std::size_t>(i)];
      SeedSubInports(sys, b, sub, 1);
      if (Status s = LowerSystem(sub, StrFormat("%s.case%d", bpath.c_str(), i)); !s.ok()) return s;
      StoreSubOutputs(sub, outs);
      ends.push_back(EmitJmp());
      Patch(jz);
    }
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, n_subs - 1);
    {
      const Model& sub = *b.subs().back();
      SeedSubInports(sys, b, sub, 1);
      if (Status s = LowerSystem(sub, bpath + ".default"); !s.ok()) return s;
      StoreSubOutputs(sub, outs);
    }
    PatchAll(ends);
    PublishOutputs(sys, b, outs);
    return Status::Ok();
  }

  Status LowerEnabled(const Model& sys, const Block& b, const std::string& bpath) {
    const coverage::DecisionId d = sm_.DecisionAt(&b, 0);
    const Model& sub = *b.subs()[0];
    const double init = b.params().GetDouble("init", 0.0);
    // Outputs live in state slots so they hold their value while disabled.
    std::vector<Slot> outs;
    std::vector<int> slots;
    for (int i = 0; i < b.num_outputs(); ++i) {
      const DType t = b.out_type(i);
      const int slot = ir::DTypeIsFloat(t)
                           ? NewStateD(init, t, StrFormat("%s.y%d", bpath.c_str(), i))
                           : NewStateI(init, t, StrFormat("%s.y%d", bpath.c_str(), i));
      slots.push_back(slot);
      outs.push_back(NewSlot(t));
    }
    const int enable = ToBool(InputOf(sys, b, 0));
    const std::size_t jz = EmitJz(enable);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 0);
    SeedSubInports(sys, b, sub, 1);
    if (Status s = LowerSystem(sub, bpath); !s.ok()) return s;
    {
      const auto outports = sub.Outports();
      for (std::size_t i = 0; i < outports.size(); ++i) {
        const ir::Wire* w = sub.DriverOf(outports[i], 0);
        const Slot s = CastTo(GetValue(sub, w->src.block, w->src.port), outs[i].type);
        EmitOp(s.is_float ? Op::kStoreStateD : Op::kStoreStateI, 0, s.reg, 0, slots[i]);
      }
    }
    const std::size_t jend = EmitJmp();
    Patch(jz);
    EmitEdge();
    if (Instr()) EmitDecisionOutcomeCov(d, 1);
    Patch(jend);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      EmitOp(outs[i].is_float ? Op::kLoadStateD : Op::kLoadStateI, outs[i].reg, 0, 0, slots[i]);
    }
    PublishOutputs(sys, b, outs);
    return Status::Ok();
  }

  // -- mex lowering ------------------------------------------------------------
  struct MexEnv {
    std::map<std::string, int> vars;  // name -> dreg
  };

  /// Arithmetic-context expression -> dreg.
  int LowerMexExpr(const Expr& e, MexEnv& env) {
    switch (e.kind) {
      case ExprKind::kNumber: {
        const int r = NewD();
        EmitOp(Op::kLoadConstD, r, 0, 0, 0, 0, e.number);
        return r;
      }
      case ExprKind::kVar: {
        auto it = env.vars.find(e.name);
        assert(it != env.vars.end());
        return it->second;
      }
      case ExprKind::kUnary: {
        if (e.op == "!") {
          const int b = LowerMexBool(*e.args[0], env);
          const int nb = NewI();
          EmitOp(Op::kNotL, nb, b);
          const int r = NewD();
          EmitOp(Op::kCvtIToD, r, nb);
          return r;
        }
        const int a = LowerMexExpr(*e.args[0], env);
        const int r = NewD();
        EmitOp(Op::kNegD, r, a);
        return r;
      }
      case ExprKind::kBinary: {
        if (blocks::mex::IsBooleanOp(e.op)) {
          const int b = LowerMexBool(e, env);
          const int r = NewD();
          EmitOp(Op::kCvtIToD, r, b);
          return r;
        }
        const int a = LowerMexExpr(*e.args[0], env);
        const int c = LowerMexExpr(*e.args[1], env);
        const int r = NewD();
        Op op = Op::kAddD;
        if (e.op == "-") op = Op::kSubD;
        else if (e.op == "*") op = Op::kMulD;
        else if (e.op == "/") op = Op::kDivD;
        else if (e.op == "%") op = Op::kModD;
        EmitOp(op, r, a, c);
        return r;
      }
      case ExprKind::kCall: return LowerMexCall(e, env);
    }
    return 0;
  }

  int LowerMexCall(const Expr& e, MexEnv& env) {
    std::vector<int> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(LowerMexExpr(*a, env));
    const int r = NewD();
    if (e.name == "abs") EmitOp(Op::kAbsD, r, args[0]);
    else if (e.name == "min") EmitOp(Op::kMinD, r, args[0], args[1]);
    else if (e.name == "max") EmitOp(Op::kMaxD, r, args[0], args[1]);
    else if (e.name == "floor") EmitOp(Op::kFloorD, r, args[0]);
    else if (e.name == "ceil") EmitOp(Op::kCeilD, r, args[0]);
    else if (e.name == "round") EmitOp(Op::kRoundD, r, args[0]);
    else if (e.name == "sqrt") EmitOp(Op::kSqrtD, r, args[0]);
    else if (e.name == "exp") EmitOp(Op::kExpD, r, args[0]);
    else if (e.name == "log") EmitOp(Op::kLogD, r, args[0]);
    else if (e.name == "sin") EmitOp(Op::kSinD, r, args[0]);
    else if (e.name == "cos") EmitOp(Op::kCosD, r, args[0]);
    else if (e.name == "tan") EmitOp(Op::kTanD, r, args[0]);
    else if (e.name == "atan2") EmitOp(Op::kAtan2D, r, args[0], args[1]);
    else if (e.name == "pow") EmitOp(Op::kPowD, r, args[0], args[1]);
    else if (e.name == "mod") EmitOp(Op::kModD, r, args[0], args[1]);
    else if (e.name == "rem") EmitOp(Op::kRemD, r, args[0], args[1]);
    else if (e.name == "sign") EmitOp(Op::kSignD, r, args[0]);
    return r;
  }

  /// Plain boolean value of an expression (no condition instrumentation).
  int LowerMexBool(const Expr& e, MexEnv& env) {
    if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
      // Short-circuit.
      const int res = NewI();
      const int lhs = LowerMexBool(*e.args[0], env);
      EmitOp(Op::kMovI, res, lhs);
      const std::size_t skip = (e.op == "&&") ? EmitJz(lhs) : EmitJnz(lhs);
      const int rhs = LowerMexBool(*e.args[1], env);
      EmitOp(Op::kMovI, res, rhs);
      Patch(skip);
      return res;
    }
    if (e.kind == ExprKind::kUnary && e.op == "!") {
      const int inner = LowerMexBool(*e.args[0], env);
      const int r = NewI();
      EmitOp(Op::kNotL, r, inner);
      return r;
    }
    if (e.kind == ExprKind::kBinary && blocks::mex::IsBooleanOp(e.op)) {
      const int a = LowerMexExpr(*e.args[0], env);
      const int c = LowerMexExpr(*e.args[1], env);
      const int r = NewI();
      Op op = Op::kLtD;
      if (e.op == "<=") op = Op::kLeD;
      else if (e.op == ">") op = Op::kGtD;
      else if (e.op == ">=") op = Op::kGeD;
      else if (e.op == "==") op = Op::kEqD;
      else if (e.op == "!=") op = Op::kNeD;
      EmitOp(op, r, a, c);
      return r;
    }
    const int v = LowerMexExpr(e, env);
    const int r = NewI();
    EmitOp(Op::kBoolD, r, v);
    return r;
  }

  /// Boolean *decision context*: instruments condition leaves (COV +
  /// MCDC vector bits) while preserving short-circuit evaluation.
  /// `bit_of` maps leaf Expr* to its bit index in the decision's vector.
  int LowerMexCond(const Expr& e, MexEnv& env, const std::map<const Expr*, int>& bit_of, int vals,
                   int mask) {
    if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
      const int res = NewI();
      const int lhs = LowerMexCond(*e.args[0], env, bit_of, vals, mask);
      EmitOp(Op::kMovI, res, lhs);
      const std::size_t skip = (e.op == "&&") ? EmitJz(lhs) : EmitJnz(lhs);
      const int rhs = LowerMexCond(*e.args[1], env, bit_of, vals, mask);
      EmitOp(Op::kMovI, res, rhs);
      Patch(skip);
      return res;
    }
    if (e.kind == ExprKind::kUnary && e.op == "!") {
      const int inner = LowerMexCond(*e.args[0], env, bit_of, vals, mask);
      const int r = NewI();
      EmitOp(Op::kNotL, r, inner);
      return r;
    }
    // Leaf condition.
    const int v = LowerMexBool(e, env);
    if (Instr()) {
      auto it = bit_of.find(&e);
      if (it != bit_of.end() && it->second < 24) {
        const int bit = it->second;
        const Slot bitc = ConstI(1LL << bit, DType::kUInt32);
        EmitOp(Op::kOrBitsI, mask, mask, bitc.reg, 0, 0, 0, DType::kUInt32);
        const coverage::ConditionId c = sm_.ConditionAt(&e, 0);
        const std::size_t jz = EmitJz(v);
        EmitCov(sm_.spec.ConditionTrueSlot(c));
        EmitOp(Op::kOrBitsI, vals, vals, bitc.reg, 0, 0, 0, DType::kUInt32);
        const std::size_t jend = EmitJmp();
        Patch(jz);
        EmitCov(sm_.spec.ConditionFalseSlot(c));
        Patch(jend);
      }
    }
    return v;
  }

  /// Lowers a guarded decision (chart transition guard or if arm):
  /// evaluates the condition with instrumentation and returns the bool reg.
  int LowerDecisionCond(const Expr& cond, MexEnv& env, coverage::DecisionId d) {
    std::map<const Expr*, int> bit_of;
    std::vector<const Expr*> leaves;
    blocks::mex::CollectConditionLeaves(cond, leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) bit_of[leaves[i]] = static_cast<int>(i);

    // Margin guidance for simple single-leaf relational guards.
    if (opts_.record_margins && leaves.size() == 1 && cond.kind == ExprKind::kBinary &&
        blocks::mex::IsBooleanOp(cond.op) && !blocks::mex::IsLogicalOp(cond.op)) {
      const int a = LowerMexExpr(*cond.args[0], env);
      const int c = LowerMexExpr(*cond.args[1], env);
      const int m = NewD();
      if (cond.op == "<" || cond.op == "<=") {
        EmitOp(Op::kSubD, m, c, a);
        EmitOp(Op::kMargin, 0, m, 0, d, 1);
      } else if (cond.op == ">" || cond.op == ">=") {
        EmitOp(Op::kSubD, m, a, c);
        EmitOp(Op::kMargin, 0, m, 0, d, 1);
      } else {
        const int diff = NewD();
        EmitOp(Op::kSubD, diff, a, c);
        EmitOp(Op::kAbsD, diff, diff);
        EmitOp(Op::kNegD, m, diff);
        // eq: margin >= 0 (i.e. == 0) means equal.
        EmitOp(Op::kMargin, 0, m, cond.op == "==" ? 0 : 1, d, cond.op == "==" ? 1 : 0);
      }
    }

    const int vals = NewI();
    const int mask = NewI();
    if (Instr()) {
      EmitOp(Op::kLoadConstI, vals, 0, 0, 0, 0, 0.0, DType::kUInt32);
      EmitOp(Op::kLoadConstI, mask, 0, 0, 0, 0, 0.0, DType::kUInt32);
    }
    const int res = LowerMexCond(cond, env, bit_of, vals, mask);
    if (Instr()) EmitOp(Op::kMcdcEval, 0, vals, mask, d, res);
    return res;
  }

  void LowerMexStmts(const std::vector<blocks::mex::StmtPtr>& stmts, MexEnv& env) {
    for (const auto& s : stmts) LowerMexStmt(*s, env);
  }

  void LowerMexStmt(const Stmt& stmt, MexEnv& env) {
    if (stmt.kind == StmtKind::kAssign) {
      const int v = LowerMexExpr(*stmt.value, env);
      auto it = env.vars.find(stmt.target);
      assert(it != env.vars.end());
      EmitOp(Op::kMovD, it->second, v);
      return;
    }
    // if / elseif / else chain.
    std::vector<std::size_t> ends;
    for (std::size_t arm = 0; arm < stmt.branches.size(); ++arm) {
      const IfBranch& br = stmt.branches[arm];
      if (br.cond) {
        const coverage::DecisionId d =
            Instr() ? sm_.DecisionAt(&stmt, static_cast<int>(arm)) : -1;
        int cond;
        if (Instr()) {
          cond = LowerDecisionCond(*br.cond, env, d);
        } else {
          cond = LowerMexBool(*br.cond, env);
        }
        const std::size_t jz = EmitJz(cond);
        EmitEdge();
        if (Instr()) EmitDecisionOutcomeCov(d, 0);
        LowerMexStmts(br.body, env);
        ends.push_back(EmitJmp());
        Patch(jz);
        if (Instr()) EmitDecisionOutcomeCov(d, 1);
      } else {
        EmitEdge();
        LowerMexStmts(br.body, env);
      }
    }
    PatchAll(ends);
  }

  Status LowerExprFunc(const Model& sys, const Block& b) {
    const auto* compiled = sm_.analysis.programs.FindExprFunc(&b);
    assert(compiled != nullptr);
    MexEnv env;
    for (std::size_t i = 0; i < compiled->in_names.size(); ++i) {
      const Slot in = ToDouble(InputOf(sys, b, static_cast<int>(i)));
      env.vars[compiled->in_names[i]] = in.reg;
    }
    for (const auto& name : compiled->out_names) {
      const int r = NewD();
      EmitOp(Op::kLoadConstD, r, 0, 0, 0, 0, 0.0);
      env.vars[name] = r;
    }
    for (const auto& name : compiled->local_names) {
      const int r = NewD();
      EmitOp(Op::kLoadConstD, r, 0, 0, 0, 0, 0.0);
      env.vars[name] = r;
    }
    LowerMexStmts(compiled->program.stmts, env);
    for (std::size_t i = 0; i < compiled->out_names.size(); ++i) {
      const int r = env.vars[compiled->out_names[i]];
      SetValue(sys, b.id(), static_cast<int>(i),
               CastTo(Slot{true, r, DType::kDouble}, b.out_type(static_cast<int>(i))));
    }
    return Status::Ok();
  }

  Status LowerChart(const Model& sys, const Block& b, const std::string& bpath) {
    const auto* compiled = sm_.analysis.programs.FindChart(&b);
    assert(compiled != nullptr);
    const ir::ChartDef& def = *b.chart();

    // Persistent storage: active state index, chart variables, outputs.
    const int state_slot = NewStateI(def.initial_state, ir::DType::kInt32, bpath + ".state");
    std::vector<int> var_slots;
    for (const auto& v : def.vars) {
      var_slots.push_back(NewStateD(v.init, DType::kDouble, bpath + "." + v.name));
    }
    std::vector<int> out_slots;
    for (const auto& o : def.outputs) {
      out_slots.push_back(NewStateD(o.init, DType::kDouble, bpath + "." + o.name));
    }

    MexEnv env;
    for (std::size_t i = 0; i < def.inputs.size(); ++i) {
      const Slot in = ToDouble(InputOf(sys, b, static_cast<int>(i)));
      env.vars[def.inputs[i]] = in.reg;
    }
    for (std::size_t i = 0; i < def.vars.size(); ++i) {
      const int r = NewD();
      EmitOp(Op::kLoadStateD, r, 0, 0, var_slots[i]);
      env.vars[def.vars[i].name] = r;
    }
    for (std::size_t i = 0; i < def.outputs.size(); ++i) {
      const int r = NewD();
      EmitOp(Op::kLoadStateD, r, 0, 0, out_slots[i]);
      env.vars[def.outputs[i].name] = r;
    }

    const int s = NewI();
    EmitOp(Op::kLoadStateI, s, 0, 0, state_slot);
    const int snext = NewI();
    EmitOp(Op::kMovI, snext, s);

    std::vector<std::size_t> done_jumps;
    for (std::size_t k = 0; k < def.states.size(); ++k) {
      const Slot kconst = ConstI(static_cast<std::int64_t>(k), DType::kInt32);
      const int is_k = NewI();
      EmitOp(Op::kEqI, is_k, s, kconst.reg);
      const std::size_t skip_state = EmitJz(is_k);
      EmitEdge();
      // Transitions in priority order.
      for (int t : compiled->outgoing[k]) {
        const auto& ct = compiled->transitions[static_cast<std::size_t>(t)];
        const ir::ChartTransition& dt = def.transitions[static_cast<std::size_t>(t)];
        const coverage::DecisionId d = sm_.DecisionAt(&b, 1000 + t);
        int guard;
        if (ct.guard) {
          if (Instr()) {
            guard = LowerDecisionCond(*ct.guard->expr, env, d);
          } else {
            guard = LowerMexBool(*ct.guard->expr, env);
          }
        } else {
          const Slot one = ConstI(1, DType::kBool);
          guard = one.reg;
        }
        const std::size_t not_taken = EmitJz(guard);
        EmitEdge();
        if (Instr()) EmitDecisionOutcomeCov(d, 0);
        if (compiled->states[k].exit) LowerMexStmts(compiled->states[k].exit->stmts, env);
        if (ct.action) LowerMexStmts(ct.action->stmts, env);
        const auto dest = static_cast<std::size_t>(dt.to);
        if (compiled->states[dest].entry) LowerMexStmts(compiled->states[dest].entry->stmts, env);
        const Slot destc = ConstI(dt.to, DType::kInt32);
        EmitOp(Op::kMovI, snext, destc.reg);
        done_jumps.push_back(EmitJmp());
        Patch(not_taken);
        if (Instr()) EmitDecisionOutcomeCov(d, 1);
      }
      // No transition fired: during action.
      if (compiled->states[k].during) LowerMexStmts(compiled->states[k].during->stmts, env);
      done_jumps.push_back(EmitJmp());
      Patch(skip_state);
    }
    PatchAll(done_jumps);

    EmitOp(Op::kStoreStateI, 0, snext, 0, state_slot);
    for (std::size_t i = 0; i < def.vars.size(); ++i) {
      EmitOp(Op::kStoreStateD, 0, env.vars[def.vars[i].name], 0, var_slots[i]);
    }
    for (std::size_t i = 0; i < def.outputs.size(); ++i) {
      EmitOp(Op::kStoreStateD, 0, env.vars[def.outputs[i].name], 0, out_slots[i]);
      SetValue(sys, b.id(), static_cast<int>(i),
               CastTo(Slot{true, env.vars[def.outputs[i].name], DType::kDouble},
                      def.outputs[i].type));
    }
    return Status::Ok();
  }

  const sched::ScheduledModel& sm_;
  const LoweringOptions& opts_;
  vm::Program prog_;
  int next_dreg_ = 0;
  int next_ireg_ = 0;
  std::map<ValueKey, Slot> values_;
  std::map<const Block*, std::vector<int>> delay_state_;
  std::int32_t cur_block_ = -1;  // attribution target for Emit(); -1 = glue
  std::map<std::string, std::int32_t> block_index_;
};

}  // namespace

Result<vm::Program> LowerToBytecode(const sched::ScheduledModel& sm, const LoweringOptions& opts) {
  return Lowerer(sm, opts).Run();
}

}  // namespace cftcg::codegen
