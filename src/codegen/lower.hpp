// Lowering: ScheduledModel -> vm::Program.
//
// This is the reproduction's equivalent of the paper's code synthesis with
// branch instrumentation: every model decision becomes a *real conditional
// jump* in the bytecode, with coverage instructions (kCov / kMcdcEval)
// inserted in each arm exactly where the paper's CoverageStatistics() calls
// go (Figure 4). Three orthogonal switches:
//
//   * model_instrumentation — the paper's model-level branch instrumentation
//     (modes (a)-(d)). When OFF, boolean/min/abs/sign logic is compiled
//     branch-free (as Clang -O2 does), and no condition instrumentation is
//     emitted — this is the "Fuzz Only" configuration of Figure 8.
//   * edge_instrumentation — code-level edge marks (kEdge) at every *real*
//     branch arm, i.e. what an off-the-shelf fuzzer's compiler
//     instrumentation would see. Used as the "Fuzz Only" feedback signal.
//   * record_margins — numeric distance-to-flip recording (kMargin) used by
//     the constraint-solving baseline's guided search; never on in fuzzing.
#pragma once

#include "sched/schedule.hpp"
#include "support/status.hpp"
#include "vm/program.hpp"

namespace cftcg::codegen {

struct LoweringOptions {
  bool model_instrumentation = true;
  bool edge_instrumentation = false;
  bool record_margins = false;
};

Result<vm::Program> LowerToBytecode(const sched::ScheduledModel& sm, const LoweringOptions& opts);

}  // namespace cftcg::codegen
