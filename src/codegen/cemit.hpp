// C code emission.
//
// Produces the textual artifacts the paper shows:
//   * the model step function with model-level branch instrumentation
//     (CoverageStatistics() calls in every decision arm — Figure 4);
//   * the fuzz driver (FuzzTestOneInput) that splits the fuzzer's byte
//     stream into per-iteration tuples and memcpy's each field into the
//     inport variables (Figure 3);
//   * the model init function.
//
// The emitted code is self-contained C99 (compiles with `gcc -std=c99`):
// tests verify it is syntactically valid when a compiler is available. The
// in-process execution path uses the VM lowering; both walk the same
// ScheduledModel, so the printed CoverageStatistics slot numbers match the
// VM's coverage space exactly.
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "support/status.hpp"

namespace cftcg::codegen {

struct CEmitOptions {
  bool model_instrumentation = true;
  std::string model_name;  // defaults to the model's own name
};

/// Emits the full fuzzing-code translation unit (init + step + driver).
Result<std::string> EmitC(const sched::ScheduledModel& sm, const CEmitOptions& opts);

}  // namespace cftcg::codegen
