// Metrics registry — lock-cheap counters, gauges and fixed-bucket
// histograms with a pull-style snapshot API.
//
// Hot-path writes are a single relaxed atomic op (Counter/Gauge) or a few
// plain stores (Histogram, single-writer); registration and snapshotting
// take a mutex but happen off the hot path. Metric objects have stable
// addresses for the life of the registry, so callers hoist the lookup out
// of their loops:
//
//   obs::Counter& execs = registry.GetCounter("fuzz.executions");
//   while (...) { execs.Increment(); }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cftcg::obs {

class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples with
/// value <= bounds[i] (and > bounds[i-1]); one overflow bucket catches the
/// rest. Single-writer: concurrent Record calls on one histogram race.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_counts().size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> bounds_;           // ascending upper bounds
  std::vector<std::uint64_t> buckets_;   // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  [[nodiscard]] double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0; }
};

/// A point-in-time copy of every metric; later registry updates do not
/// affect an already-taken snapshot. Entries are sorted by name.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t CounterValue(std::string_view name, std::uint64_t fallback) const;
  [[nodiscard]] double GaugeValue(std::string_view name, double fallback) const;
  [[nodiscard]] const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  /// buckets:[{le,count},...]}}} — parses back with obs::ParseJson.
  [[nodiscard]] std::string ToJson() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Re-requesting a name returns the same object;
  /// a histogram's bounds are fixed by its first registration.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] RegistrySnapshot Snapshot() const;

  /// Process-wide registry used by the pipeline phase timers (and by the
  /// CLI's --metrics dump). Library embedders that want isolation pass
  /// their own Registry instead.
  static Registry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Default bucket bounds for phase/span durations in seconds.
std::vector<double> DurationBucketBounds();

}  // namespace cftcg::obs
