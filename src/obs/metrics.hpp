// Metrics registry — lock-cheap counters, gauges and fixed-bucket
// histograms with a pull-style snapshot API.
//
// Hot-path writes are a single relaxed atomic op (Counter/Gauge) or a few
// relaxed atomic ops (Histogram — safe under concurrent recorders);
// registration and snapshotting take a mutex but happen off the hot path.
// Metric objects have stable addresses for the life of the registry, so
// callers hoist the lookup out of their loops:
//
//   obs::Counter& execs = registry.GetCounter("fuzz.executions");
//   while (...) { execs.Increment(); }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cftcg::obs {

class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples with
/// value <= bounds[i] (and > bounds[i-1]); one overflow bucket catches the
/// rest. Record is thread-safe (the parallel engine's workers share the
/// global registry): bucket/count/sum updates are relaxed atomic adds and
/// min/max maintenance is a CAS loop, so concurrent recorders never lose a
/// sample. Cross-field consistency is only as strong as a snapshot taken
/// between bursts — sum and count drift apart transiently mid-Record, which
/// is the standard contract for lock-free metrics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// min()/max() report 0 until the first sample lands (matching count()==0).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Copied out (relaxed loads): size() == bounds().size() + 1, last = overflow.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;                          // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_;  // +inf until the first Record
  std::atomic<double> max_;  // -inf until the first Record
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  [[nodiscard]] double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0; }
  /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket holding the target rank — the Prometheus histogram_quantile
  /// estimator, clamped to the observed [min, max]. 0 when empty.
  [[nodiscard]] double Quantile(double q) const;
};

/// A point-in-time copy of every metric; later registry updates do not
/// affect an already-taken snapshot. Entries are sorted by name.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t CounterValue(std::string_view name, std::uint64_t fallback) const;
  [[nodiscard]] double GaugeValue(std::string_view name, double fallback) const;
  [[nodiscard]] const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  /// buckets:[{le,count},...]}}} — parses back with obs::ParseJson.
  [[nodiscard]] std::string ToJson() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Re-requesting a name returns the same object;
  /// a histogram's bounds are fixed by its first registration.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] RegistrySnapshot Snapshot() const;

  /// Process-wide registry used by the pipeline phase timers (and by the
  /// CLI's --metrics dump). Library embedders that want isolation pass
  /// their own Registry instead.
  static Registry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Default bucket bounds for phase/span durations in seconds.
std::vector<double> DurationBucketBounds();

/// Finer sub-millisecond bounds for per-execution durations in seconds —
/// a fuzzing executor runs in microseconds, far below the phase buckets.
std::vector<double> ExecDurationBucketBounds();

}  // namespace cftcg::obs
