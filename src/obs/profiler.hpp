// Campaign self-profiler: aggregation and export over the VM plane
// (vm::ExecProfile + Program block attribution) and the phase plane
// (PhaseProfile lap accounting).
//
// The raw buffers are deliberately dumb counters owned by the fuzz/vm
// layers; everything here is pure aggregation over finished (or snapshotted)
// counters, so it can run off the hot path — at heartbeats, at campaign end,
// or offline over a saved profile.json. Three export surfaces:
//
//   * CampaignProfile::ToJson()    — the profile.json artifact (round-trips
//                                    through ParseCampaignProfile for diffs);
//   * CampaignProfile::ToFolded()  — Brendan-Gregg folded-stack lines, one
//                                    `frame;frame value` per line, ready for
//                                    flamegraph.pl / speedscope;
//   * CampaignProfile::RenderText()— the `cftcg profile` terminal view.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"
#include "support/status.hpp"
#include "vm/profile.hpp"
#include "vm/program.hpp"

namespace cftcg::obs {

// ---------------------------------------------------------------------------
// Phase plane.

/// Fixed campaign phase taxonomy. The order is the serialization order (JSON,
/// checkpoints) — append only.
enum class ProfilePhase : int {
  kLoad = 0,        // model parse + schedule + lowering
  kAnalyze,         // static analyzer pass
  kMutate,          // test-case mutation / generation
  kExecute,         // VM dispatch (Machine::Step)
  kCoverageUpdate,  // coverage map diffing + corpus admission
  kCorpusSync,      // parallel cross-worker corpus exchange
  kCheckpoint,      // durability: checkpoint serialization + write
  kReport,          // final report / CSV / trace flush
  kIdle,            // barrier wait: worker finished its round early
};
inline constexpr int kNumProfilePhases = 9;

std::string_view ProfilePhaseName(ProfilePhase phase);

/// Cumulative per-phase wall time for one worker (or one merged campaign).
struct PhaseProfile {
  std::array<double, kNumProfilePhases> seconds{};
  std::array<std::uint64_t, kNumProfilePhases> laps{};

  void Add(ProfilePhase phase, double s) {
    seconds[static_cast<std::size_t>(phase)] += s;
    ++laps[static_cast<std::size_t>(phase)];
  }
  void MergeFrom(const PhaseProfile& other) {
    for (int i = 0; i < kNumProfilePhases; ++i) {
      seconds[static_cast<std::size_t>(i)] += other.seconds[static_cast<std::size_t>(i)];
      laps[static_cast<std::size_t>(i)] += other.laps[static_cast<std::size_t>(i)];
    }
  }
  [[nodiscard]] double Total() const {
    double total = 0;
    for (double s : seconds) total += s;
    return total;
  }
};

/// Lap-model phase ticker: one clock read per phase boundary instead of a
/// begin/end pair per phase. The caller Arm()s at the top of a work loop and
/// Lap(phase)s after each segment; the elapsed time since the previous mark
/// books to that phase. A null sink disarms the ticker entirely (no clock
/// reads), which is how the hot fuzz loop stays free when --profile is off.
class PhaseLapTimer {
 public:
  explicit PhaseLapTimer(PhaseProfile* sink) : sink_(sink) {}

  [[nodiscard]] bool active() const { return sink_ != nullptr; }

  void Arm() {
    if (sink_ != nullptr) last_ = Clock::Now();
  }
  void Lap(ProfilePhase phase) {
    if (sink_ == nullptr) return;
    const Clock::TimePoint now = Clock::Now();
    sink_->Add(phase, Clock::SecondsBetween(last_, now));
    last_ = now;
  }

 private:
  PhaseProfile* sink_ = nullptr;
  Clock::TimePoint last_{};
};

// ---------------------------------------------------------------------------
// Aggregated artifact.

struct ProfileBlockRow {
  std::string name;  // block path, or "(glue)" for scheduler glue
  std::uint64_t dispatches = 0;
  std::uint64_t samples = 0;
  double dispatch_pct = 0;  // share of total dispatches
  double sample_pct = 0;    // share of strobe samples (≈ execute-time share)
};

struct ProfileOpcodeRow {
  std::string name;
  std::uint64_t dispatches = 0;
  double dispatch_pct = 0;
};

struct ProfilePhaseRow {
  std::string name;
  double seconds = 0;
  std::uint64_t laps = 0;
  double pct = 0;  // share of accounted phase time
};

/// One campaign's complete self-profile. Built by BuildCampaignProfile from
/// live counters or parsed back from profile.json for render/diff.
struct CampaignProfile {
  // Metadata (filled by the caller; empty/zero when unknown).
  std::string model;
  std::string mode;
  std::uint64_t seed = 0;
  int workers = 1;
  double elapsed_s = 0;

  // VM plane.
  std::uint64_t vm_steps = 0;       // Machine::Step calls (model iterations)
  std::uint64_t vm_dispatches = 0;  // instruction dispatches (Σ block rows)
  std::uint64_t strobe_period = 0;  // 0 = count-only mode
  std::uint64_t samples = 0;        // Σ strobe samples
  std::vector<ProfileBlockRow> blocks;    // sorted by dispatches, descending
  std::vector<ProfileOpcodeRow> opcodes;  // sorted by dispatches, descending

  // Phase plane.
  std::vector<ProfilePhaseRow> phases;  // taxonomy order, zero rows included

  [[nodiscard]] std::string ToJson() const;
  [[nodiscard]] std::string ToFolded() const;
  [[nodiscard]] std::string RenderText() const;
};

/// Parses a profile.json document written by CampaignProfile::ToJson.
Result<CampaignProfile> ParseCampaignProfile(std::string_view json_text);

/// Terminal diff of two saved profiles (bench regression triage): phase-time
/// and hot-block deltas, base -> current.
std::string RenderProfileDiff(const CampaignProfile& base, const CampaignProfile& current);

/// Folds raw VM counters against the program's block attribution and joins
/// the phase plane. Metadata fields (model/mode/seed/workers/elapsed_s) are
/// left for the caller to fill.
CampaignProfile BuildCampaignProfile(const vm::Program& program, const vm::ExecProfile& exec,
                                     const PhaseProfile& phases);

// ---------------------------------------------------------------------------
// Live publication (the /profile endpoint).

/// Hand-off point between the campaign driver and the monitor's HTTP thread:
/// the driver publishes a rendered JSON snapshot at safe points (heartbeats,
/// sync barriers, campaign end); readers get the last published document.
/// Never blocks the hot loop — publishing is one string swap under a mutex.
class ProfilePublisher {
 public:
  void Publish(std::string json) {
    const std::lock_guard<std::mutex> lock(mu_);
    json_ = std::move(json);
  }
  /// Last published snapshot; empty string when nothing published yet.
  [[nodiscard]] std::string Snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return json_;
  }

 private:
  mutable std::mutex mu_;
  std::string json_;
};

}  // namespace cftcg::obs
