#include "obs/timer.hpp"

namespace cftcg::obs {

ScopedTimer::ScopedTimer(std::string_view phase, Registry* registry, TraceWriter* trace)
    : phase_(phase), registry_(registry), trace_(trace) {}

ScopedTimer::~ScopedTimer() { Stop(); }

double ScopedTimer::Stop() {
  if (stopped_) return 0;
  stopped_ = true;
  const double seconds = watch_.Elapsed();
  if (registry_ != nullptr) {
    registry_->GetHistogram("phase." + phase_ + ".seconds", DurationBucketBounds())
        .Record(seconds);
  }
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("phase").Str("name", phase_).F64("seconds", seconds));
  }
  return seconds;
}

void PhaseAccumulator::Commit(Registry* registry, TraceWriter* trace) {
  if (registry != nullptr) {
    registry->GetHistogram("phase." + phase_ + ".seconds", DurationBucketBounds())
        .Record(total_);
  }
  if (trace != nullptr) {
    trace->Emit(TraceEvent("phase").Str("name", phase_).F64("seconds", total_));
  }
}

}  // namespace cftcg::obs
