#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace cftcg::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string : std::string(fallback);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Integers (the common case for counters) print without an exponent. The
  // magnitude guard must come first: double -> long long is undefined for
  // values outside the long long range (e.g. a gauge holding 1e300).
  if (std::fabs(value) < 1e15 && value == static_cast<double>(static_cast<long long>(value))) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return DoubleToString(value);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    if (Status s = ParseValue(value); !s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  Status Fail(std::string_view what) const {
    return Status::Error(StrFormat("json: %s at offset %zu", std::string(what).c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return ParseString(out.string);
    }
    if (ConsumeWord("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      out.kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected object key");
      std::string key;
      if (Status s = ParseString(key); !s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (Status s = ParseValue(value); !s.ok()) return s;
      out.members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(value); !s.ok()) return s;
      out.items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through individually;
          // the writer never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double value = 0;
    if (!ParseDouble(text_.substr(start, pos_ - start), value)) return Fail("malformed number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) { return Parser(text).Parse(); }

JsonlStats ForEachJsonl(std::string_view text, const std::function<void(const JsonValue&)>& fn) {
  JsonlStats stats;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    ++stats.lines;
    auto value = ParseJson(line);
    if (!value.ok()) {
      ++stats.skipped;
      continue;
    }
    ++stats.parsed;
    if (fn) fn(value.value());
  }
  return stats;
}

}  // namespace cftcg::obs
