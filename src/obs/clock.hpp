// The single monotonic clock source for campaign telemetry.
//
// Every timestamp the system reports — TestCase::time_s, CampaignResult::
// elapsed_s, trace-event `t` fields, phase-timer durations — is derived from
// this one steady clock, so timestamps from different layers are directly
// comparable (no mixing of system_clock and steady_clock epochs).
#pragma once

#include <chrono>

namespace cftcg::obs {

struct Clock {
  using TimePoint = std::chrono::steady_clock::time_point;

  static TimePoint Now() { return std::chrono::steady_clock::now(); }

  static double SecondsBetween(TimePoint from, TimePoint to) {
    return std::chrono::duration<double>(to - from).count();
  }
};

/// Elapsed-seconds helper over Clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::Now()) {}

  void Restart() { start_ = Clock::Now(); }
  [[nodiscard]] double Elapsed() const { return Clock::SecondsBetween(start_, Clock::Now()); }
  [[nodiscard]] Clock::TimePoint start() const { return start_; }

 private:
  Clock::TimePoint start_;
};

}  // namespace cftcg::obs
