#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace cftcg::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

std::uint64_t RegistrySnapshot::CounterValue(std::string_view name,
                                            std::uint64_t fallback) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

double RegistrySnapshot::GaugeValue(std::string_view name, double fallback) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(c.name).c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(g.name).c_str(), JsonNumber(g.value).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[",
                     JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
                     JsonNumber(h.sum).c_str(), JsonNumber(h.min).c_str(),
                     JsonNumber(h.max).c_str());
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le = i < h.bounds.size() ? JsonNumber(h.bounds[i]) : "\"inf\"";
      out += StrFormat("{\"le\":%s,\"count\":%llu}", le.c_str(),
                       static_cast<unsigned long long>(h.bucket_counts[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back(HistogramSnapshot{name, hist->count(), hist->sum(), hist->min(),
                                                hist->max(), hist->bounds(),
                                                hist->bucket_counts()});
  }
  return snap;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed (safe at exit)
  return *registry;
}

std::vector<double> DurationBucketBounds() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60, 300};
}

}  // namespace cftcg::obs
