#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace cftcg::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Min/max via CAS loops: each retries only while another thread holds a
  // less extreme value, so every recorded sample is reflected exactly once.
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0 : v;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample (1-based); walk the cumulative distribution
  // to the bucket containing it.
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Linear interpolation within [lo, hi]: lo is the previous bound (or
    // the observed min for the lowest populated bucket), hi the bucket's own
    // bound (or the observed max for the overflow bucket).
    const double lo = i == 0 ? min : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : max;
    const double frac =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    const double est = lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
    return std::min(std::max(est, min), max);  // never outside observed range
  }
  return max;
}

std::uint64_t RegistrySnapshot::CounterValue(std::string_view name,
                                            std::uint64_t fallback) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

double RegistrySnapshot::GaugeValue(std::string_view name, double fallback) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(c.name).c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(g.name).c_str(), JsonNumber(g.value).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[",
                     JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
                     JsonNumber(h.sum).c_str(), JsonNumber(h.min).c_str(),
                     JsonNumber(h.max).c_str());
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le = i < h.bounds.size() ? JsonNumber(h.bounds[i]) : "\"inf\"";
      out += StrFormat("{\"le\":%s,\"count\":%llu}", le.c_str(),
                       static_cast<unsigned long long>(h.bucket_counts[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back(HistogramSnapshot{name, hist->count(), hist->sum(), hist->min(),
                                                hist->max(), hist->bounds(),
                                                hist->bucket_counts()});
  }
  return snap;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed (safe at exit)
  return *registry;
}

std::vector<double> DurationBucketBounds() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60, 300};
}

std::vector<double> ExecDurationBucketBounds() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 0.1, 1};
}

}  // namespace cftcg::obs
