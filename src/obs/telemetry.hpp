// Campaign telemetry wiring.
//
// One CampaignTelemetry bundles the sinks a fuzzing campaign reports into.
// Every part is optional and defaults to off; a default-constructed (or
// absent) CampaignTelemetry keeps the fuzzing hot path free of telemetry
// work, which is how the "within 5% of untraced throughput" budget is met.
#pragma once

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cftcg::obs {

struct CampaignTelemetry {
  /// Metrics sink (fuzz.* counters/gauges/histograms). Null disables.
  Registry* registry = nullptr;
  /// JSONL event trace (start/new/frontier/stat/stop). Null disables.
  TraceWriter* trace = nullptr;
  /// Heartbeat period for `stat` events and the status line; <= 0 disables.
  double stats_every_s = 0;
  /// Stream for the libFuzzer-style periodic status line
  /// (`#exec cov: D/C/MCDC corp: N exec/s: R`), typically stderr. Null
  /// disables the line (stat trace events are still emitted).
  std::FILE* status_stream = nullptr;

  [[nodiscard]] bool active() const {
    return registry != nullptr || trace != nullptr || stats_every_s > 0 ||
           status_stream != nullptr;
  }
};

}  // namespace cftcg::obs
