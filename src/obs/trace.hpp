// Campaign event trace — JSONL records of fuzzer milestones.
//
// One line per event: {"t":<seconds since writer creation>,"ev":"<kind>",
// ...payload}. The `t` field comes from obs::Clock, the same monotonic
// source as every other timestamp in the system, so trace records line up
// with CampaignResult timings. Event payloads are flat (scalar fields only)
// so downstream consumers (`cftcg trace-summary`, the bench harness, any
// jq/pandas pipeline) stay trivial.
//
// Event kinds emitted by the pipeline:
//   start    campaign configuration (mode, seed, budget, branch space)
//   new      a test case triggered NEW model coverage
//   frontier the covered branch-slot frontier advanced
//   stat     periodic heartbeat (exec/s, iters/s, corpus, energy, per-
//            strategy counts)
//   stop     final totals and coverage percentages
//   phase    a ScopedTimer span closed (name + seconds)
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/clock.hpp"
#include "support/status.hpp"

namespace cftcg::obs {

/// One event under construction: a kind plus flat key/value payload.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view kind) : kind_(kind) {}

  TraceEvent& U64(std::string_view key, std::uint64_t value);
  TraceEvent& I64(std::string_view key, std::int64_t value);
  TraceEvent& F64(std::string_view key, double value);
  TraceEvent& Str(std::string_view key, std::string_view value);

 private:
  friend class TraceWriter;
  std::string kind_;
  std::string payload_;  // pre-rendered ,"key":value fragments
};

/// Append-only JSONL sink. Writes either to a file or to an in-memory
/// string (tests and the bench harness parse the buffer back). Emit and
/// Flush are thread-safe: each event is rendered outside the lock and
/// written as one fwrite/append, so concurrent writers (the parallel
/// fuzzing engine's workers) never interleave partial JSONL lines.
class TraceWriter {
 public:
  /// File sink; fails if the path cannot be opened for writing.
  static Result<std::unique_ptr<TraceWriter>> Open(const std::string& path);

  /// In-memory sink appending lines to `buffer` (not owned).
  explicit TraceWriter(std::string* buffer) : buffer_(buffer) {}

  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Stamps the event with seconds-since-construction and writes one line.
  void Emit(const TraceEvent& event);

  void Flush();

  [[nodiscard]] std::uint64_t events_written() const;
  [[nodiscard]] const Stopwatch& clock() const { return clock_; }

 private:
  explicit TraceWriter(std::FILE* file) : file_(file) {}

  Stopwatch clock_;
  mutable std::mutex mutex_;     // guards file_/buffer_ writes and events_
  std::FILE* file_ = nullptr;    // owned when non-null
  std::string partial_path_;     // file sink streams here ("<path>.partial")
  std::string final_path_;       // renamed onto this on close
  std::string* buffer_ = nullptr;
  std::uint64_t events_ = 0;
};

}  // namespace cftcg::obs
