// Prometheus text exposition (format 0.0.4) of a metrics-registry snapshot.
//
// Renders every counter, gauge and histogram of an obs::RegistrySnapshot as
// the plain-text format Prometheus scrapes: `# HELP` / `# TYPE` comment
// pairs followed by samples, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Registry names are dotted
// (`fuzz.exec_per_s`); exposition names are the sanitized form with a
// `cftcg_` namespace prefix (`cftcg_fuzz_exec_per_s`), counters with the
// conventional `_total` suffix.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cftcg::obs {

/// `cftcg_` + name with every character outside [a-zA-Z0-9_:] mapped to '_'.
std::string PrometheusName(std::string_view name);

/// The full exposition document for one snapshot. Deterministic: metrics
/// appear in snapshot (name-sorted) order, histogram buckets in bound order.
std::string RenderPrometheusText(const RegistrySnapshot& snapshot);

}  // namespace cftcg::obs
