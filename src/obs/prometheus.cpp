#include "obs/prometheus.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace cftcg::obs {

namespace {

/// Prometheus sample-value syntax: Go strconv floats plus the literal
/// tokens +Inf / -Inf / NaN (exposition format 0.0.4).
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

void AppendHeader(std::string* out, const std::string& prom_name,
                  std::string_view source_name, const char* type) {
  out->append(StrFormat("# HELP %s cftcg metric %.*s\n", prom_name.c_str(),
                        static_cast<int>(source_name.size()), source_name.data()));
  out->append(StrFormat("# TYPE %s %s\n", prom_name.c_str(), type));
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "cftcg_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name) + "_total";
    AppendHeader(&out, name, c.name, "counter");
    out.append(StrFormat("%s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(c.value)));
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    AppendHeader(&out, name, g.name, "gauge");
    out.append(StrFormat("%s %s\n", name.c_str(), PromNumber(g.value).c_str()));
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    AppendHeader(&out, name, h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const std::string le =
          i < h.bounds.size() ? PromNumber(h.bounds[i]) : std::string("+Inf");
      out.append(StrFormat("%s_bucket{le=\"%s\"} %llu\n", name.c_str(), le.c_str(),
                           static_cast<unsigned long long>(cumulative)));
    }
    out.append(StrFormat("%s_sum %s\n", name.c_str(), PromNumber(h.sum).c_str()));
    out.append(StrFormat("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.count)));
  }
  return out;
}

}  // namespace cftcg::obs
