#include "obs/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "support/strings.hpp"

namespace cftcg::obs {

// --------------------------------------------------------------------------
// CampaignStatusBoard

void CampaignStatusBoard::BeginCampaign(const CampaignInfo& info) {
  std::lock_guard<std::mutex> lock(mutex_);
  info_ = info;
  agg_ = CampaignAggregates{};
  agg_.elapsed_s = info.time_base_s;
  running_ = true;
  watch_.Restart();
  events_.clear();
  dropped_events_ = 0;
  const int workers = std::max(info.workers, 1);
  // Lanes allocate once; publishing through num_lanes_ (release) makes the
  // array visible to wait-free readers that load it (acquire) without the
  // mutex. Re-begin with more workers regrows; with fewer, spare lanes idle.
  if (workers > num_lanes_.load(std::memory_order_relaxed)) {
    lanes_ = std::make_unique<Lane[]>(static_cast<std::size_t>(workers));
    num_lanes_.store(workers, std::memory_order_release);
  } else {
    for (int i = 0; i < num_lanes_.load(std::memory_order_relaxed); ++i) {
      lanes_[static_cast<std::size_t>(i)].epoch.store(0, std::memory_order_relaxed);
      lanes_[static_cast<std::size_t>(i)].executions.store(0, std::memory_order_relaxed);
      lanes_[static_cast<std::size_t>(i)].done.store(false, std::memory_order_relaxed);
      lanes_[static_cast<std::size_t>(i)].stalled.store(false, std::memory_order_relaxed);
      lanes_[static_cast<std::size_t>(i)].restarting.store(false, std::memory_order_relaxed);
      lanes_[static_cast<std::size_t>(i)].restarts.store(0, std::memory_order_relaxed);
    }
  }
}

void CampaignStatusBoard::UpdateAggregates(const CampaignAggregates& agg) {
  std::lock_guard<std::mutex> lock(mutex_);
  agg_ = agg;
}

void CampaignStatusBoard::EndCampaign() {
  const double end_s = Elapsed();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_) return;
  running_ = false;
  AppendEvent(Event{"campaign", 0, info_.time_base_s, end_s - info_.time_base_s});
}

bool CampaignStatusBoard::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int CampaignStatusBoard::num_workers() const {
  return num_lanes_.load(std::memory_order_acquire);
}

double CampaignStatusBoard::Elapsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return info_.time_base_s + watch_.Elapsed();
}

void CampaignStatusBoard::StampWorker(int worker, std::uint64_t executions) {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return;
  Lane& lane = lanes_[static_cast<std::size_t>(worker)];
  lane.executions.store(executions, std::memory_order_relaxed);
  lane.epoch.fetch_add(1, std::memory_order_relaxed);
}

void CampaignStatusBoard::SetWorkerDone(int worker) {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return;
  lanes_[static_cast<std::size_t>(worker)].done.store(true, std::memory_order_relaxed);
}

void CampaignStatusBoard::SetWorkerStalled(int worker, bool stalled) {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return;
  lanes_[static_cast<std::size_t>(worker)].stalled.store(stalled, std::memory_order_relaxed);
}

void CampaignStatusBoard::SetWorkerRestarting(int worker, bool restarting) {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return;
  lanes_[static_cast<std::size_t>(worker)].restarting.store(restarting,
                                                            std::memory_order_relaxed);
}

void CampaignStatusBoard::CountWorkerRestart(int worker) {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return;
  lanes_[static_cast<std::size_t>(worker)].restarts.fetch_add(1, std::memory_order_relaxed);
}

bool CampaignStatusBoard::WorkerRestarting(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return false;
  return lanes_[static_cast<std::size_t>(worker)].restarting.load(std::memory_order_relaxed);
}

std::uint64_t CampaignStatusBoard::WorkerRestarts(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return 0;
  return lanes_[static_cast<std::size_t>(worker)].restarts.load(std::memory_order_relaxed);
}

std::uint64_t CampaignStatusBoard::WorkerEpoch(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return 0;
  return lanes_[static_cast<std::size_t>(worker)].epoch.load(std::memory_order_relaxed);
}

std::uint64_t CampaignStatusBoard::WorkerExecutions(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return 0;
  return lanes_[static_cast<std::size_t>(worker)].executions.load(std::memory_order_relaxed);
}

bool CampaignStatusBoard::WorkerDone(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return false;
  return lanes_[static_cast<std::size_t>(worker)].done.load(std::memory_order_relaxed);
}

bool CampaignStatusBoard::WorkerStalled(int worker) const {
  if (worker < 0 || worker >= num_lanes_.load(std::memory_order_acquire)) return false;
  return lanes_[static_cast<std::size_t>(worker)].stalled.load(std::memory_order_relaxed);
}

std::uint64_t CampaignStatusBoard::TotalWorkerExecutions() const {
  std::uint64_t total = 0;
  const int n = num_lanes_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    total += lanes_[static_cast<std::size_t>(i)].executions.load(std::memory_order_relaxed);
  }
  return total;
}

void CampaignStatusBoard::CountStall() {
  stalls_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t CampaignStatusBoard::stall_count() const {
  return stalls_.load(std::memory_order_relaxed);
}

void CampaignStatusBoard::AppendEvent(Event event) {
  // Caller holds mutex_.
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back(std::move(event));
}

void CampaignStatusBoard::LogSpan(std::string_view name, int tid, double start_s,
                                  double dur_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendEvent(Event{std::string(name), tid, start_s, std::max(dur_s, 0.0)});
}

void CampaignStatusBoard::LogInstant(std::string_view name, int tid, double t_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendEvent(Event{std::string(name), tid, t_s, -1.0});
}

std::string CampaignStatusBoard::StatusJson() const {
  // Lane reads are wait-free; take them before the mutex so the hot path is
  // never behind it.
  const int workers = num_workers();
  const std::uint64_t live_executions = TotalWorkerExecutions();
  std::string lanes = "[";
  for (int i = 0; i < workers; ++i) {
    if (i > 0) lanes += ',';
    lanes += StrFormat(
        "{\"worker\":%d,\"epoch\":%llu,\"executions\":%llu,\"done\":%s,\"stalled\":%s,"
        "\"restarting\":%s,\"restarts\":%llu}",
        i, static_cast<unsigned long long>(WorkerEpoch(i)),
        static_cast<unsigned long long>(WorkerExecutions(i)),
        WorkerDone(i) ? "true" : "false", WorkerStalled(i) ? "true" : "false",
        WorkerRestarting(i) ? "true" : "false",
        static_cast<unsigned long long>(WorkerRestarts(i)));
  }
  lanes += ']';

  std::lock_guard<std::mutex> lock(mutex_);
  const double elapsed = running_ ? info_.time_base_s + watch_.Elapsed() : agg_.elapsed_s;
  std::string out = StrFormat(
      "{\"model\":\"%s\",\"mode\":\"%s\",\"seed\":%llu,\"workers\":%d,"
      "\"budget_s\":%s,\"running\":%s,\"elapsed_s\":%s,\"executions\":%llu,"
      "\"exec_per_s\":%s,\"model_iterations\":%llu,\"corpus\":%llu,\"test_cases\":%llu",
      JsonEscape(info_.model).c_str(), JsonEscape(info_.mode).c_str(),
      static_cast<unsigned long long>(info_.seed), info_.workers,
      JsonNumber(info_.budget_s).c_str(), running_ ? "true" : "false",
      JsonNumber(elapsed).c_str(),
      static_cast<unsigned long long>(std::max(live_executions, agg_.executions)),
      JsonNumber(agg_.exec_per_s).c_str(),
      static_cast<unsigned long long>(agg_.model_iterations),
      static_cast<unsigned long long>(agg_.corpus),
      static_cast<unsigned long long>(agg_.test_cases));
  out += StrFormat(
      ",\"coverage\":{\"decision_pct\":%s,\"condition_pct\":%s,\"mcdc_pct\":%s,"
      "\"adjusted\":{\"decision_pct\":%s,\"condition_pct\":%s,\"mcdc_pct\":%s}}",
      JsonNumber(agg_.decision_pct).c_str(), JsonNumber(agg_.condition_pct).c_str(),
      JsonNumber(agg_.mcdc_pct).c_str(), JsonNumber(agg_.adj_decision_pct).c_str(),
      JsonNumber(agg_.adj_condition_pct).c_str(), JsonNumber(agg_.adj_mcdc_pct).c_str());
  if (agg_.objectives_total > 0) {
    out += StrFormat(",\"objectives\":{\"covered\":%llu,\"total\":%llu,\"residual\":%llu}",
                     static_cast<unsigned long long>(agg_.objectives_covered),
                     static_cast<unsigned long long>(agg_.objectives_total),
                     static_cast<unsigned long long>(agg_.objectives_total -
                                                     agg_.objectives_covered));
  }
  out += StrFormat(",\"hangs\":%llu,\"stalls\":%llu,\"dropped_events\":%zu",
                   static_cast<unsigned long long>(agg_.hangs),
                   static_cast<unsigned long long>(stall_count()), dropped_events_);
  out += ",\"workers_detail\":" + lanes + "}";
  return out;
}

std::string CampaignStatusBoard::PerfettoJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += StrFormat(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cftcg %s (%s)\"}}",
      JsonEscape(info_.model).c_str(), JsonEscape(info_.mode).c_str());
  out +=
      ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"driver\"}}";
  const int workers = num_lanes_.load(std::memory_order_acquire);
  for (int i = 0; i < workers; ++i) {
    out += StrFormat(
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"worker %d\"}}",
        i + 1, i);
  }
  for (const Event& e : events_) {
    const double ts_us = e.start_s * 1e6;
    if (e.dur_s < 0) {
      out += StrFormat(
          ",{\"name\":\"%s\",\"cat\":\"campaign\",\"ph\":\"i\",\"s\":\"t\","
          "\"pid\":1,\"tid\":%d,\"ts\":%s}",
          JsonEscape(e.name).c_str(), e.tid, JsonNumber(ts_us).c_str());
    } else {
      out += StrFormat(
          ",{\"name\":\"%s\",\"cat\":\"campaign\",\"ph\":\"X\","
          "\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s}",
          JsonEscape(e.name).c_str(), e.tid, JsonNumber(ts_us).c_str(),
          JsonNumber(e.dur_s * 1e6).c_str());
    }
  }
  out += StrFormat("],\"otherData\":{\"dropped_events\":\"%zu\"}}", dropped_events_);
  return out;
}

// --------------------------------------------------------------------------
// StallWatchdog

StallWatchdog::StallWatchdog(CampaignStatusBoard* board, Registry* registry,
                             double window_s)
    : board_(board), registry_(registry), window_s_(std::max(window_s, 0.1)) {}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this]() {
    // Poll a few times per window so detection lands well inside it.
    const auto tick = std::chrono::milliseconds(
        std::clamp(static_cast<int>(window_s_ * 250), 50, 1000));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, tick);
      if (stop_) break;
      lock.unlock();
      Poll(board_->Elapsed());
      lock.lock();
    }
  });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::Poll(double now_s) {
  const int n = board_->num_workers();
  if (static_cast<int>(watched_.size()) < n) {
    watched_.resize(static_cast<std::size_t>(n));
  }
  for (int i = 0; i < n; ++i) {
    Watched& w = watched_[static_cast<std::size_t>(i)];
    if (board_->WorkerDone(i)) {
      // Finished workers cannot stall; clear any leftover flag.
      if (board_->WorkerStalled(i)) board_->SetWorkerStalled(i, false);
      continue;
    }
    if (board_->WorkerRestarting(i)) {
      // The supervisor is respawning this lane: its epoch is legitimately
      // frozen. Re-arm the window from now so the recovery gap itself never
      // counts toward `fuzz.worker_stalls`.
      if (board_->WorkerStalled(i)) board_->SetWorkerStalled(i, false);
      w.epoch = board_->WorkerEpoch(i);
      w.last_change_s = now_s;
      w.seen = true;
      continue;
    }
    const std::uint64_t epoch = board_->WorkerEpoch(i);
    if (!w.seen || epoch != w.epoch) {
      if (w.seen && board_->WorkerStalled(i)) {
        board_->SetWorkerStalled(i, false);
        board_->LogInstant("stall_cleared", i + 1, now_s);
      }
      w.epoch = epoch;
      w.last_change_s = now_s;
      w.seen = true;
      continue;
    }
    // A lane that never stamped is a worker that has not started yet (e.g.
    // still compiling); only flag lanes that made progress and then stopped.
    if (epoch == 0) continue;
    if (now_s - w.last_change_s >= window_s_ && !board_->WorkerStalled(i)) {
      board_->SetWorkerStalled(i, true);
      board_->CountStall();
      if (registry_ != nullptr) registry_->GetCounter("fuzz.worker_stalls").Increment();
      board_->LogInstant("stall", i + 1, now_s);
    }
  }
}

// --------------------------------------------------------------------------
// MonitorServer

namespace {

constexpr const char kIndexHtml[] = R"html(<!doctype html>
<html><head><meta charset="utf-8"><title>cftcg monitor</title>
<style>
body{font-family:monospace;margin:2em;background:#111;color:#ddd}
h1{font-size:1.2em} table{border-collapse:collapse;margin-top:1em}
td,th{border:1px solid #444;padding:.3em .8em;text-align:right}
th{background:#222} .stalled{color:#f55;font-weight:bold}
#agg{white-space:pre;line-height:1.6}
</style></head><body>
<h1>cftcg live monitor</h1>
<div id="agg">loading /status ...</div>
<table id="workers"></table>
<p>endpoints: <a href="/status">/status</a> &middot;
<a href="/metrics">/metrics</a> &middot; <a href="/trace.json">/trace.json</a> &middot;
<a href="/profile">/profile</a></p>
<script>
async function tick(){
  try{
    const s = await (await fetch('/status')).json();
    const pct = x => x.toFixed(2)+'%';
    document.getElementById('agg').textContent =
      `model ${s.model}  mode ${s.mode}  seed ${s.seed}  workers ${s.workers}\n`+
      `${s.running?'RUNNING':'finished'}  elapsed ${s.elapsed_s.toFixed(1)}s`+
      `  execs ${s.executions}  exec/s ${Math.round(s.exec_per_s)}\n`+
      `corpus ${s.corpus}  tests ${s.test_cases}  hangs ${s.hangs}  stalls ${s.stalls}\n`+
      `coverage D ${pct(s.coverage.decision_pct)}  C ${pct(s.coverage.condition_pct)}`+
      `  MC/DC ${pct(s.coverage.mcdc_pct)}  (adjusted D ${pct(s.coverage.adjusted.decision_pct)})`;
    const rows = s.workers_detail.map(w =>
      `<tr class="${w.stalled?'stalled':''}"><td>${w.worker}</td><td>${w.executions}</td>`+
      `<td>${w.epoch}</td><td>${w.done?'done':(w.stalled?'STALLED':'running')}</td></tr>`);
    document.getElementById('workers').innerHTML =
      '<tr><th>worker</th><th>executions</th><th>epoch</th><th>state</th></tr>'+rows.join('');
  }catch(e){ document.getElementById('agg').textContent = 'status fetch failed: '+e; }
}
tick(); setInterval(tick, 1000);
</script></body></html>
)html";

}  // namespace

MonitorServer::MonitorServer(CampaignStatusBoard* board, Registry* registry,
                             double stall_window_s)
    : board_(board),
      registry_(registry),
      watchdog_(std::make_unique<StallWatchdog>(board, registry, stall_window_s)) {}

Result<std::unique_ptr<MonitorServer>> MonitorServer::Start(CampaignStatusBoard* board,
                                                            Registry* registry,
                                                            const MonitorOptions& options) {
  std::unique_ptr<MonitorServer> monitor(
      new MonitorServer(board, registry, options.stall_window_s));
  auto server = net::HttpServer::Start(
      options.port,
      [raw = monitor.get()](const net::HttpRequest& req) { return raw->Handle(req); });
  if (!server.ok()) return server.status();
  monitor->server_ = server.take();
  monitor->watchdog_->Start();
  return monitor;
}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::Stop() {
  watchdog_->Stop();
  if (server_ != nullptr) server_->Stop();
}

net::HttpResponse MonitorServer::Handle(const net::HttpRequest& request) const {
  // Ignore any query string: "/status?x=1" routes like "/status".
  std::string path = request.target.substr(0, request.target.find('?'));
  net::HttpResponse resp;
  if (path == "/status") {
    resp.content_type = "application/json";
    resp.body = board_->StatusJson();
  } else if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = registry_ != nullptr ? RenderPrometheusText(registry_->Snapshot())
                                     : std::string();
  } else if (path == "/trace.json") {
    resp.content_type = "application/json";
    resp.body = board_->PerfettoJson();
  } else if (path == "/profile") {
    const std::string snapshot = profile_ != nullptr ? profile_->Snapshot() : std::string();
    if (snapshot.empty()) {
      resp.status = 404;
      resp.content_type = "text/plain; charset=utf-8";
      resp.body = "no profile snapshot published yet (campaign still warming up,"
                  " or running without a profile publisher)\n";
    } else {
      resp.content_type = "application/json";
      resp.body = snapshot;
    }
  } else if (path == "/" || path == "/index.html") {
    resp.content_type = "text/html; charset=utf-8";
    resp.body = kIndexHtml;
  } else {
    resp.status = 404;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = "not found; try /status, /metrics, /trace.json, /profile\n";
  }
  return resp;
}

std::string MonitorArtifactJson(std::uint16_t port) {
  // "port" must stay the first member: shell readers (CI monitor smoke, the
  // roundtrip test) extract it with a positional sed over this line.
  return StrFormat(
      "{\"port\":%u,\"serve_version\":2,\"endpoints\":[\"/status\",\"/metrics\","
      "\"/trace.json\",\"/profile\"]}\n",
      static_cast<unsigned>(port));
}

}  // namespace cftcg::obs
