// Live campaign monitoring: status board, stall watchdog, HTTP endpoints.
//
// The pieces compose as
//
//   CampaignStatusBoard   lock-cheap shared state: per-worker progress lanes
//                         (relaxed atomics, stamped from the execute loop)
//                         plus campaign aggregates and a bounded timeline
//                         event log updated under a mutex at heartbeat /
//                         round boundaries only. Renders itself as the
//                         /status JSON document and the /trace.json
//                         Chrome/Perfetto trace.
//   StallWatchdog         a polling thread that flags workers whose progress
//                         epoch has not advanced within a window: sets the
//                         lane's stalled bit, bumps the `fuzz.worker_stalls`
//                         counter and logs a `stall` instant event. Poll()
//                         is public so tests drive detection synchronously.
//   MonitorServer         binds net::HttpServer to the board + a metrics
//                         Registry and owns the watchdog. GET /status,
//                         /metrics (Prometheus 0.0.4), /trace.json, and a
//                         minimal auto-refreshing HTML page at /.
//
// Concurrency contract: BeginCampaign() must happen-before any worker or
// serving thread touches the board (the CLI begins the campaign before
// starting the server and before spawning workers). After that, lane stamps
// are wait-free; every other mutator takes the board mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "support/status.hpp"

namespace cftcg::obs {

class ProfilePublisher;  // obs/profiler.hpp: /profile snapshot hand-off

/// Immutable facts about the campaign, set once at BeginCampaign.
struct CampaignInfo {
  std::string model;
  std::string mode;  // "cftcg" | "fuzz_only"
  std::uint64_t seed = 0;
  int workers = 1;
  double budget_s = 0;       // 0 = unbounded
  double time_base_s = 0;    // elapsed seconds inherited from a resumed run
};

/// Rolled-up campaign numbers, refreshed at heartbeat / round boundaries.
struct CampaignAggregates {
  double elapsed_s = 0;
  std::uint64_t executions = 0;
  std::uint64_t model_iterations = 0;
  double exec_per_s = 0;
  std::uint64_t corpus = 0;
  std::uint64_t test_cases = 0;
  double decision_pct = 0;
  double condition_pct = 0;
  double mcdc_pct = 0;
  double adj_decision_pct = 0;
  double adj_condition_pct = 0;
  double adj_mcdc_pct = 0;
  std::uint64_t objectives_covered = 0;
  std::uint64_t objectives_total = 0;  // 0 = objective accounting unavailable
  std::uint64_t hangs = 0;
};

class CampaignStatusBoard {
 public:
  CampaignStatusBoard() = default;
  CampaignStatusBoard(const CampaignStatusBoard&) = delete;
  CampaignStatusBoard& operator=(const CampaignStatusBoard&) = delete;

  /// Allocates the worker lanes and starts the campaign clock. Must
  /// happen-before any StampWorker / StatusJson caller starts.
  void BeginCampaign(const CampaignInfo& info);
  void UpdateAggregates(const CampaignAggregates& agg);
  /// Marks the campaign finished and logs the whole-campaign span.
  void EndCampaign();
  [[nodiscard]] bool running() const;
  [[nodiscard]] int num_workers() const;
  /// Campaign-relative seconds (time_base_s + time since BeginCampaign).
  [[nodiscard]] double Elapsed() const;

  // --- Worker lanes: wait-free, called from engine hot loops. ---
  /// Stamp forward progress: bumps the lane's epoch, publishes the worker's
  /// execution count. The epoch is what the stall watchdog watches.
  void StampWorker(int worker, std::uint64_t executions);
  void SetWorkerDone(int worker);
  void SetWorkerStalled(int worker, bool stalled);
  /// Marks a lane as being respawned by the supervisor. A restarting lane is
  /// exempt from stall detection — its epoch is legitimately frozen while
  /// the replacement process boots — so supervised recovery does not inflate
  /// `fuzz.worker_stalls`. Clearing the flag re-arms the watchdog from the
  /// current time.
  void SetWorkerRestarting(int worker, bool restarting);
  /// Counts one completed respawn of the lane (shown in /status).
  void CountWorkerRestart(int worker);
  [[nodiscard]] std::uint64_t WorkerEpoch(int worker) const;
  [[nodiscard]] std::uint64_t WorkerExecutions(int worker) const;
  [[nodiscard]] bool WorkerDone(int worker) const;
  [[nodiscard]] bool WorkerStalled(int worker) const;
  [[nodiscard]] bool WorkerRestarting(int worker) const;
  [[nodiscard]] std::uint64_t WorkerRestarts(int worker) const;
  /// Sum of the per-worker execution counters — livelier than the
  /// heartbeat-refreshed aggregate, used for the top-level /status count.
  [[nodiscard]] std::uint64_t TotalWorkerExecutions() const;

  void CountStall();
  [[nodiscard]] std::uint64_t stall_count() const;

  // --- Timeline events for /trace.json. Bounded: kMaxEvents, then dropped
  // (the drop count is reported in both JSON documents). Times are
  // campaign-relative seconds; tid 0 = driver, tid 1+i = worker i. ---
  void LogSpan(std::string_view name, int tid, double start_s, double dur_s);
  void LogInstant(std::string_view name, int tid, double t_s);

  /// The /status document. Self-describing JSON; parses with obs::ParseJson.
  [[nodiscard]] std::string StatusJson() const;
  /// Chrome trace-event JSON ({"traceEvents":[...]}) loadable in Perfetto /
  /// chrome://tracing: process+thread metadata, "X" complete spans, "i"
  /// instants, microsecond timestamps.
  [[nodiscard]] std::string PerfettoJson() const;

  static constexpr std::size_t kMaxEvents = 8192;

 private:
  struct Lane {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<bool> done{false};
    std::atomic<bool> stalled{false};
    std::atomic<bool> restarting{false};
    std::atomic<std::uint64_t> restarts{0};
  };
  struct Event {
    std::string name;
    int tid = 0;
    double start_s = 0;
    double dur_s = 0;  // < 0 marks an instant event
  };

  void AppendEvent(Event event);

  mutable std::mutex mutex_;
  CampaignInfo info_;
  CampaignAggregates agg_;
  bool running_ = false;
  Stopwatch watch_;
  std::vector<Event> events_;
  std::size_t dropped_events_ = 0;
  std::unique_ptr<Lane[]> lanes_;
  std::atomic<int> num_lanes_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

/// Detects workers that stop making progress. A lane is stalled when its
/// epoch has not moved for `window_s` board-seconds; the flag clears as soon
/// as the epoch advances again (and a `stall_cleared` instant is logged).
/// Workers that finished (done bit) and workers that never stamped are
/// exempt. Start() runs Poll on a background thread; tests call Poll(now)
/// directly with fabricated times.
class StallWatchdog {
 public:
  StallWatchdog(CampaignStatusBoard* board, Registry* registry, double window_s);
  ~StallWatchdog();
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void Start();
  void Stop();
  /// One detection pass at board time `now_s`. Not thread-safe against
  /// itself (the background thread is the only production caller).
  void Poll(double now_s);
  [[nodiscard]] double window_s() const { return window_s_; }

 private:
  struct Watched {
    std::uint64_t epoch = 0;
    double last_change_s = 0;
    bool seen = false;
  };

  CampaignStatusBoard* board_;
  Registry* registry_;  // may be null: stall counter then lives on the board only
  double window_s_;
  std::vector<Watched> watched_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

struct MonitorOptions {
  std::uint16_t port = 0;       // 0 = ephemeral
  double stall_window_s = 10.0;
};

/// The `fuzz --serve` endpoint bundle: HTTP server + stall watchdog over a
/// status board and an optional metrics registry.
class MonitorServer {
 public:
  static Result<std::unique_ptr<MonitorServer>> Start(CampaignStatusBoard* board,
                                                      Registry* registry,
                                                      const MonitorOptions& options);
  ~MonitorServer();
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] StallWatchdog& watchdog() { return *watchdog_; }
  /// Wires the /profile endpoint to a snapshot publisher (obs/profiler.hpp).
  /// Until set — or until the campaign publishes its first snapshot — the
  /// endpoint answers 404. Not owned; must outlive the server.
  void set_profile_publisher(const ProfilePublisher* publisher) { profile_ = publisher; }
  /// Stops the watchdog and the HTTP server (also run by the destructor).
  void Stop();

  /// Routes one request; public so tests exercise endpoints in-process.
  [[nodiscard]] net::HttpResponse Handle(const net::HttpRequest& request) const;

 private:
  MonitorServer(CampaignStatusBoard* board, Registry* registry, double stall_window_s);

  CampaignStatusBoard* board_;
  Registry* registry_;
  const ProfilePublisher* profile_ = nullptr;
  std::unique_ptr<StallWatchdog> watchdog_;
  std::unique_ptr<net::HttpServer> server_;
};

/// The monitor.json discovery artifact the CLI writes next to its outputs:
/// {"port":N,"serve_version":2,"endpoints":[...]}. "port" stays the first
/// member — existing shell readers grep for it positionally; serve_version
/// and the endpoint list were appended in v2 (the /profile endpoint).
std::string MonitorArtifactJson(std::uint16_t port);

}  // namespace cftcg::obs
