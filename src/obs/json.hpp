// Minimal JSON support for the observability layer.
//
// The trace writer emits JSONL and the metrics registry exports a JSON
// snapshot; the `trace-summary` CLI command and the bench harness read those
// artifacts back. This is a small, strict parser for that closed loop — it
// accepts all of RFC 8259 (objects, arrays, strings with escapes, numbers,
// booleans, null) and rejects trailing garbage; it is not meant as a
// general-purpose JSON library.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace cftcg::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  /// Convenience accessors over Find() for flat event records.
  [[nodiscard]] double NumberOr(std::string_view key, double fallback) const;
  [[nodiscard]] std::string StringOr(std::string_view key, std::string_view fallback) const;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed).
Result<JsonValue> ParseJson(std::string_view text);

/// Line accounting from ForEachJsonl. `lines` counts non-blank lines,
/// `parsed` the ones delivered to the callback, `skipped` the malformed
/// remainder (lines == parsed + skipped).
struct JsonlStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t skipped = 0;
};

/// Iterates a JSONL document line by line, invoking `fn` on every line that
/// parses as a JSON value. Malformed lines — a truncated tail from a killed
/// campaign, interleaved log garbage — are counted and skipped instead of
/// aborting, so readers degrade gracefully on partial traces. Blank lines
/// are ignored entirely.
JsonlStats ForEachJsonl(std::string_view text, const std::function<void(const JsonValue&)>& fn);

/// Escapes a string for embedding between JSON double quotes (quotes not
/// included in the output).
std::string JsonEscape(std::string_view text);

/// Renders a double as a JSON number (finite values round-trip; NaN and
/// infinities — not representable in JSON — are rendered as null).
std::string JsonNumber(double value);

}  // namespace cftcg::obs
