// RAII phase timers.
//
// A ScopedTimer measures one pipeline span (parse, schedule, codegen,
// vm_load, fuzz, ...) and on close records a `phase.<name>.seconds`
// histogram sample in a Registry and, optionally, a `phase` trace event.
// Construction/destruction cost is one clock read each, so spans can wrap
// whole stages without distorting them.
#pragma once

#include <string>
#include <string_view>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cftcg::obs {

class ScopedTimer {
 public:
  /// Records into `registry` (default: the process-global registry) and,
  /// when non-null, emits a `phase` event to `trace` on close.
  explicit ScopedTimer(std::string_view phase, Registry* registry = &Registry::Global(),
                       TraceWriter* trace = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Closes the span early and returns its duration; the destructor then
  /// does nothing. Safe to call once.
  double Stop();

 private:
  std::string phase_;
  Registry* registry_;
  TraceWriter* trace_;
  Stopwatch watch_;
  bool stopped_ = false;
};

/// Accumulating phase timer for spans that run in many discontiguous
/// chunks (a parallel worker's per-round busy time). Add() sums chunk
/// durations; Commit() records the total as ONE `phase.<name>.seconds`
/// histogram sample and one `phase` trace event, exactly like a single
/// ScopedTimer span would. Not thread-safe: each worker owns its own
/// accumulator and the driver commits after join.
class PhaseAccumulator {
 public:
  explicit PhaseAccumulator(std::string_view phase) : phase_(phase) {}

  void Add(double seconds) { total_ += seconds; }
  [[nodiscard]] double total() const { return total_; }

  /// Records the accumulated total; safe to call with null arguments
  /// (records/emits only where a sink is present). Call once.
  void Commit(Registry* registry, TraceWriter* trace);

 private:
  std::string phase_;
  double total_ = 0;
};

}  // namespace cftcg::obs
