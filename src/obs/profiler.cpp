#include "obs/profiler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cftcg::obs {
namespace {

constexpr std::array<std::string_view, kNumProfilePhases> kPhaseNames = {
    "load",   "analyze",    "mutate",     "execute", "coverage-update",
    "corpus-sync", "checkpoint", "report", "idle",
};

std::string U64(std::uint64_t v) { return std::to_string(v); }

/// Rounded share in percent; 0 denominator -> 0.
double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// Recomputes derived percentages and canonical row order in place.
void FinishRows(CampaignProfile* p) {
  std::uint64_t total_samples = 0;
  std::uint64_t total_dispatches = 0;
  for (const auto& b : p->blocks) {
    total_dispatches += b.dispatches;
    total_samples += b.samples;
  }
  p->vm_dispatches = total_dispatches;
  p->samples = total_samples;
  for (auto& b : p->blocks) {
    b.dispatch_pct = Pct(b.dispatches, total_dispatches);
    b.sample_pct = Pct(b.samples, total_samples);
  }
  for (auto& o : p->opcodes) o.dispatch_pct = Pct(o.dispatches, total_dispatches);

  // Deterministic order: hottest first, name as tiebreak.
  auto by_heat = [](const auto& a, const auto& b) {
    if (a.dispatches != b.dispatches) return a.dispatches > b.dispatches;
    return a.name < b.name;
  };
  std::sort(p->blocks.begin(), p->blocks.end(), by_heat);
  std::sort(p->opcodes.begin(), p->opcodes.end(), by_heat);

  double phase_total = 0;
  for (const auto& ph : p->phases) phase_total += ph.seconds;
  for (auto& ph : p->phases) {
    ph.pct = phase_total <= 0 ? 0.0 : 100.0 * ph.seconds / phase_total;
  }
}

std::string Fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string_view ProfilePhaseName(ProfilePhase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

CampaignProfile BuildCampaignProfile(const vm::Program& program, const vm::ExecProfile& exec,
                                     const PhaseProfile& phases) {
  CampaignProfile p;
  p.vm_steps = exec.steps;
  p.strobe_period = exec.strobe_period;

  // Fold instruction counters by block (insn_block parallel to code; programs
  // built without attribution profile as all-glue) and by opcode.
  const bool attributed = program.insn_block.size() == program.code.size();
  const std::size_t num_blocks = program.block_names.size();
  std::vector<ProfileBlockRow> blocks(num_blocks + 1);  // + glue bucket
  for (std::size_t i = 0; i < num_blocks; ++i) blocks[i].name = program.block_names[i];
  blocks[num_blocks].name = "(glue)";
  std::map<std::string, ProfileOpcodeRow> opcodes;
  const std::size_t n = std::min(exec.insn_counts.size(), program.code.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t count = exec.insn_counts[i];
    const std::uint64_t sample = i < exec.insn_samples.size() ? exec.insn_samples[i] : 0;
    if (count == 0 && sample == 0) continue;
    std::size_t slot = num_blocks;  // glue
    if (attributed && program.insn_block[i] >= 0 &&
        static_cast<std::size_t>(program.insn_block[i]) < num_blocks) {
      slot = static_cast<std::size_t>(program.insn_block[i]);
    }
    blocks[slot].dispatches += count;
    blocks[slot].samples += sample;
    auto& op = opcodes[std::string(vm::OpName(program.code[i].op))];
    op.dispatches += count;
  }
  for (auto& b : blocks) {
    if (b.dispatches != 0 || b.samples != 0) p.blocks.push_back(std::move(b));
  }
  for (auto& [name, row] : opcodes) {
    row.name = name;
    p.opcodes.push_back(std::move(row));
  }

  p.phases.reserve(kNumProfilePhases);
  for (int i = 0; i < kNumProfilePhases; ++i) {
    ProfilePhaseRow row;
    row.name = std::string(kPhaseNames[static_cast<std::size_t>(i)]);
    row.seconds = phases.seconds[static_cast<std::size_t>(i)];
    row.laps = phases.laps[static_cast<std::size_t>(i)];
    p.phases.push_back(std::move(row));
  }

  FinishRows(&p);
  return p;
}

std::string CampaignProfile::ToJson() const {
  std::string out = "{\"cftcg_profile\":1";
  out += ",\"model\":\"" + JsonEscape(model) + "\"";
  out += ",\"mode\":\"" + JsonEscape(mode) + "\"";
  out += ",\"seed\":" + U64(seed);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"elapsed_s\":" + JsonNumber(elapsed_s);
  out += ",\"vm_steps\":" + U64(vm_steps);
  out += ",\"vm_dispatches\":" + U64(vm_dispatches);
  out += ",\"strobe_period\":" + U64(strobe_period);
  out += ",\"samples\":" + U64(samples);
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(phases[i].name) + "\",\"seconds\":" +
           JsonNumber(phases[i].seconds) + ",\"laps\":" + U64(phases[i].laps) + "}";
  }
  out += "],\"blocks\":[";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(blocks[i].name) +
           "\",\"dispatches\":" + U64(blocks[i].dispatches) +
           ",\"samples\":" + U64(blocks[i].samples) + "}";
  }
  out += "],\"opcodes\":[";
  for (std::size_t i = 0; i < opcodes.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(opcodes[i].name) +
           "\",\"dispatches\":" + U64(opcodes[i].dispatches) + "}";
  }
  out += "]}\n";
  return out;
}

Result<CampaignProfile> ParseCampaignProfile(std::string_view json_text) {
  Result<JsonValue> doc = ParseJson(json_text);
  if (!doc.ok()) return doc.status();
  const JsonValue& root = doc.value();
  if (root.kind != JsonValue::Kind::kObject || root.Find("cftcg_profile") == nullptr) {
    return Status::Error("not a cftcg profile document (missing \"cftcg_profile\" marker)");
  }
  CampaignProfile p;
  p.model = root.StringOr("model", "");
  p.mode = root.StringOr("mode", "");
  p.seed = static_cast<std::uint64_t>(root.NumberOr("seed", 0));
  p.workers = static_cast<int>(root.NumberOr("workers", 1));
  p.elapsed_s = root.NumberOr("elapsed_s", 0);
  p.vm_steps = static_cast<std::uint64_t>(root.NumberOr("vm_steps", 0));
  p.strobe_period = static_cast<std::uint64_t>(root.NumberOr("strobe_period", 0));
  if (const JsonValue* phases = root.Find("phases");
      phases != nullptr && phases->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& item : phases->items) {
      ProfilePhaseRow row;
      row.name = item.StringOr("name", "");
      row.seconds = item.NumberOr("seconds", 0);
      row.laps = static_cast<std::uint64_t>(item.NumberOr("laps", 0));
      p.phases.push_back(std::move(row));
    }
  }
  if (const JsonValue* blocks = root.Find("blocks");
      blocks != nullptr && blocks->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& item : blocks->items) {
      ProfileBlockRow row;
      row.name = item.StringOr("name", "");
      row.dispatches = static_cast<std::uint64_t>(item.NumberOr("dispatches", 0));
      row.samples = static_cast<std::uint64_t>(item.NumberOr("samples", 0));
      p.blocks.push_back(std::move(row));
    }
  }
  if (const JsonValue* ops = root.Find("opcodes");
      ops != nullptr && ops->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& item : ops->items) {
      ProfileOpcodeRow row;
      row.name = item.StringOr("name", "");
      row.dispatches = static_cast<std::uint64_t>(item.NumberOr("dispatches", 0));
      p.opcodes.push_back(std::move(row));
    }
  }
  FinishRows(&p);
  return p;
}

std::string CampaignProfile::ToFolded() const {
  std::string out;
  double phase_total = 0;
  double execute_s = 0;
  for (const auto& ph : phases) {
    phase_total += ph.seconds;
    if (ph.name == "execute") execute_s = ph.seconds;
  }
  auto usec = [](double s) { return static_cast<std::uint64_t>(s * 1e6 + 0.5); };

  if (phase_total > 0) {
    // Timed campaign: phase rows in microseconds; the execute phase is
    // subdivided per block by strobe-sample share when samples exist.
    for (const auto& ph : phases) {
      if (ph.seconds <= 0 || ph.name == "execute") continue;
      out += "cftcg;" + ph.name + " " + U64(usec(ph.seconds)) + "\n";
    }
    if (execute_s > 0) {
      if (samples > 0) {
        for (const auto& b : blocks) {
          if (b.samples == 0) continue;
          const double share =
              execute_s * static_cast<double>(b.samples) / static_cast<double>(samples);
          out += "cftcg;execute;" + b.name + " " + U64(usec(share)) + "\n";
        }
      } else {
        out += "cftcg;execute " + U64(usec(execute_s)) + "\n";
      }
    }
  } else {
    // Count-only profile (no phase timing): weight frames by dispatch count.
    for (const auto& b : blocks) {
      if (b.dispatches == 0) continue;
      out += "vm;" + b.name + " " + U64(b.dispatches) + "\n";
    }
  }
  return out;
}

std::string CampaignProfile::RenderText() const {
  std::string out;
  out += "campaign profile";
  if (!model.empty()) out += ": " + model;
  if (!mode.empty()) out += " [" + mode + "]";
  out += "\n";
  out += Fmt("  workers=%d seed=%" PRIu64 " elapsed=%.3fs\n", workers, seed, elapsed_s);
  out += Fmt("  vm: %" PRIu64 " steps, %" PRIu64 " dispatches", vm_steps, vm_dispatches);
  if (vm_steps > 0) {
    out += Fmt(" (%.1f insns/iteration)",
               static_cast<double>(vm_dispatches) / static_cast<double>(vm_steps));
  }
  if (strobe_period != 0) {
    out += Fmt("; strobe 1/%" PRIu64 ", %" PRIu64 " samples", strobe_period, samples);
  }
  out += "\n";

  double phase_total = 0;
  for (const auto& ph : phases) phase_total += ph.seconds;
  if (phase_total > 0) {
    out += "phases:\n";
    for (const auto& ph : phases) {
      if (ph.seconds <= 0 && ph.laps == 0) continue;
      out += Fmt("  %-16s %10.3fs %5.1f%%  (%" PRIu64 " laps)\n", ph.name.c_str(), ph.seconds,
                 ph.pct, ph.laps);
    }
  }
  if (!blocks.empty()) {
    out += "hot blocks (by dispatch count):\n";
    std::size_t shown = 0;
    for (const auto& b : blocks) {
      if (shown++ == 20) {
        out += Fmt("  ... %zu more\n", blocks.size() - 20);
        break;
      }
      out += Fmt("  %-40s %12" PRIu64 " %5.1f%%", b.name.c_str(), b.dispatches, b.dispatch_pct);
      if (samples > 0) out += Fmt("  time~%5.1f%%", b.sample_pct);
      out += "\n";
    }
  }
  if (!opcodes.empty()) {
    out += "hot opcodes:\n";
    std::size_t shown = 0;
    for (const auto& o : opcodes) {
      if (shown++ == 10) break;
      out += Fmt("  %-16s %12" PRIu64 " %5.1f%%\n", o.name.c_str(), o.dispatches, o.dispatch_pct);
    }
  }
  return out;
}

std::string RenderProfileDiff(const CampaignProfile& base, const CampaignProfile& current) {
  std::string out;
  out += "profile diff (base -> current)\n";
  auto rate = [](const CampaignProfile& p) {
    return p.elapsed_s > 0 ? static_cast<double>(p.vm_steps) / p.elapsed_s : 0.0;
  };
  out += Fmt("  elapsed:    %.3fs -> %.3fs\n", base.elapsed_s, current.elapsed_s);
  out += Fmt("  vm steps:   %" PRIu64 " -> %" PRIu64 "\n", base.vm_steps, current.vm_steps);
  out += Fmt("  dispatches: %" PRIu64 " -> %" PRIu64 "\n", base.vm_dispatches,
             current.vm_dispatches);
  const double rb = rate(base);
  const double rc = rate(current);
  if (rb > 0 && rc > 0) {
    out += Fmt("  iter rate:  %.0f/s -> %.0f/s (%+.1f%%)\n", rb, rc, 100.0 * (rc - rb) / rb);
  }

  // Phase deltas (taxonomy union, base order first).
  std::map<std::string, std::pair<double, double>> phase_s;
  std::vector<std::string> phase_order;
  for (const auto& ph : base.phases) {
    if (phase_s.emplace(ph.name, std::make_pair(ph.seconds, 0.0)).second) {
      phase_order.push_back(ph.name);
    }
  }
  for (const auto& ph : current.phases) {
    auto [it, inserted] = phase_s.emplace(ph.name, std::make_pair(0.0, ph.seconds));
    if (inserted) {
      phase_order.push_back(ph.name);
    } else {
      it->second.second = ph.seconds;
    }
  }
  bool any = false;
  for (const auto& name : phase_order) {
    const auto [b, c] = phase_s[name];
    if (b <= 0 && c <= 0) continue;
    if (!any) {
      out += "  phase time:\n";
      any = true;
    }
    out += Fmt("    %-16s %9.3fs -> %9.3fs (%+.3fs)\n", name.c_str(), b, c, c - b);
  }

  // Block share deltas over the union of both top-10s.
  std::map<std::string, std::pair<double, double>> block_pct;
  for (std::size_t i = 0; i < base.blocks.size() && i < 10; ++i) {
    block_pct[base.blocks[i].name].first = base.blocks[i].dispatch_pct;
  }
  for (std::size_t i = 0; i < current.blocks.size() && i < 10; ++i) {
    block_pct[current.blocks[i].name].second = current.blocks[i].dispatch_pct;
  }
  // Fill in the other side's share for union members outside its top-10.
  for (const auto& b : base.blocks) {
    auto it = block_pct.find(b.name);
    if (it != block_pct.end() && it->second.first == 0) it->second.first = b.dispatch_pct;
  }
  for (const auto& b : current.blocks) {
    auto it = block_pct.find(b.name);
    if (it != block_pct.end() && it->second.second == 0) it->second.second = b.dispatch_pct;
  }
  if (!block_pct.empty()) {
    out += "  hot-block dispatch share:\n";
    for (const auto& [name, shares] : block_pct) {
      out += Fmt("    %-40s %5.1f%% -> %5.1f%% (%+.1f)\n", name.c_str(), shares.first,
                 shares.second, shares.second - shares.first);
    }
  }
  return out;
}

}  // namespace cftcg::obs
