#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace cftcg::obs {

TraceEvent& TraceEvent::U64(std::string_view key, std::uint64_t value) {
  payload_ += StrFormat(",\"%s\":%llu", JsonEscape(key).c_str(),
                        static_cast<unsigned long long>(value));
  return *this;
}

TraceEvent& TraceEvent::I64(std::string_view key, std::int64_t value) {
  payload_ +=
      StrFormat(",\"%s\":%lld", JsonEscape(key).c_str(), static_cast<long long>(value));
  return *this;
}

TraceEvent& TraceEvent::F64(std::string_view key, double value) {
  payload_ += StrFormat(",\"%s\":%s", JsonEscape(key).c_str(), JsonNumber(value).c_str());
  return *this;
}

TraceEvent& TraceEvent::Str(std::string_view key, std::string_view value) {
  payload_ += StrFormat(",\"%s\":\"%s\"", JsonEscape(key).c_str(), JsonEscape(value).c_str());
  return *this;
}

Result<std::unique_ptr<TraceWriter>> TraceWriter::Open(const std::string& path) {
  // The trace streams into "<path>.partial" and is renamed onto the final
  // name when the writer closes, so the destination path only ever holds a
  // complete trace. A campaign killed outright (SIGKILL, power loss) leaves
  // the .partial behind for inspection instead of a torn file at `path`.
  const std::string partial = path + ".partial";
  std::FILE* file = std::fopen(partial.c_str(), "w");
  if (file == nullptr) {
    return Status::Error(StrFormat("cannot open trace file %s for writing", partial.c_str()));
  }
  auto writer = std::unique_ptr<TraceWriter>(new TraceWriter(file));
  writer->partial_path_ = partial;
  writer->final_path_ = path;
  return writer;
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    if (!final_path_.empty()) std::rename(partial_path_.c_str(), final_path_.c_str());
  }
}

void TraceWriter::Emit(const TraceEvent& event) {
  // Render outside the lock; one locked fwrite/append per event keeps
  // JSONL lines whole under concurrent emitters.
  const std::string line =
      StrFormat("{\"t\":%.6f,\"ev\":\"%s\"%s}\n", clock_.Elapsed(),
                JsonEscape(event.kind_).c_str(), event.payload_.c_str());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fwrite(line.data(), 1, line.size(), file_);
  if (buffer_ != nullptr) buffer_->append(line);
  ++events_;
}

void TraceWriter::Flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

std::uint64_t TraceWriter::events_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace cftcg::obs
