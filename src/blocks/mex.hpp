// mex — the model expression language.
//
// A small MATLAB-action-language-like language used by two model elements:
//   * ExprFunc blocks (our MATLAB Function equivalent): a statement program
//     reading inputs and assigning outputs/locals;
//   * Chart guards (single boolean expression) and chart actions (statement
//     programs).
//
// Values are doubles (booleans are 0/1). `&&` and `||` short-circuit; their
// leaf operands are coverage *conditions* and every `if`/`elseif` arm and
// guard is a coverage *decision* (instrumentation mode (d) of the paper).
//
// Every AST node carries a stable `node_id` (dense, per parse) so the
// instrumentation pass can attach decision/condition identities that are
// shared between the interpreter, the VM lowering, and the C emitter.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace cftcg::blocks::mex {

enum class ExprKind { kNumber, kVar, kUnary, kBinary, kCall };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int node_id = -1;
  double number = 0.0;        // kNumber
  std::string name;           // kVar (variable) / kCall (function)
  std::string op;             // kUnary: "-" "!" ; kBinary: arithmetic/relational/logical
  std::vector<ExprPtr> args;  // operands / call arguments
};

enum class StmtKind { kAssign, kIf };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct IfBranch {
  ExprPtr cond;  // null for the trailing `else`
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  int node_id = -1;
  // kAssign
  std::string target;
  ExprPtr value;
  // kIf: if / elseif* / else? in order
  std::vector<IfBranch> branches;
};

struct Program {
  std::vector<StmtPtr> stmts;
  int num_nodes = 0;  // node_ids are in [0, num_nodes)
};

/// Parses a statement program:
///   stmt    := ident '=' expr ';' | 'if' '(' expr ')' block ('elseif' ...)* ('else' block)?
///   block   := '{' stmt* '}'
/// Grammar accepts both C-style (&&, ||, !=) and MATLAB-style (~=) spellings.
Result<Program> ParseProgram(std::string_view source);

/// Parses a single expression (chart guards).
Result<Program> ParseGuard(std::string_view source);  // program with one synthetic stmt? see below

/// Guard parse result: the expression plus node count.
struct Guard {
  ExprPtr expr;
  int num_nodes = 0;
};
Result<Guard> ParseExpr(std::string_view source);

/// True if `op` is a relational or logical operator (boolean-valued).
bool IsBooleanOp(const std::string& op);
/// True for the short-circuit logical operators "&&" and "||".
bool IsLogicalOp(const std::string& op);

/// Collects the coverage conditions of a boolean expression: the leaves of
/// its &&/|| tree (a leaf is any subexpression that is not &&/||/!).
void CollectConditionLeaves(const Expr& expr, std::vector<const Expr*>& leaves);

/// Variables read / assigned by a program (for validation).
void CollectReads(const Program& program, std::vector<std::string>& names);
void CollectWrites(const Program& program, std::vector<std::string>& names);
void CollectExprReads(const Expr& expr, std::vector<std::string>& names);

/// Pretty-printer (used by the C emitter and tests).
std::string ExprToString(const Expr& expr);

/// The call functions mex supports; Validate* reject anything else.
bool IsKnownFunction(const std::string& name, std::size_t arity);

}  // namespace cftcg::blocks::mex
