#include "blocks/mex.hpp"

#include <cctype>
#include <cstdlib>

#include "support/strings.hpp"

namespace cftcg::blocks::mex {
namespace {

struct Token {
  enum Kind { kEnd, kNumber, kIdent, kPunct } kind = kEnd;
  double number = 0;
  std::string text;  // ident name or punct spelling
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { Advance(); }

  const Token& Peek() const { return tok_; }
  Token Take() {
    Token t = tok_;
    Advance();
    return t;
  }
  bool TakeIf(std::string_view punct_or_kw) {
    if ((tok_.kind == Token::kPunct || tok_.kind == Token::kIdent) && tok_.text == punct_or_kw) {
      Advance();
      return true;
    }
    return false;
  }

 private:
  void Advance() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '%') {  // MATLAB comment
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    tok_ = Token{};
    tok_.pos = pos_;
    if (pos_ >= src_.size()) {
      tok_.kind = Token::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      const char* start = src_.data() + pos_;
      char* end = nullptr;
      tok_.kind = Token::kNumber;
      tok_.number = std::strtod(start, &end);
      pos_ += static_cast<std::size_t>(end - start);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        ++pos_;
      }
      tok_.kind = Token::kIdent;
      tok_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    // Multi-char punctuators first.
    static constexpr std::string_view kTwo[] = {"&&", "||", "<=", ">=", "==", "!=", "~="};
    for (auto two : kTwo) {
      if (src_.substr(pos_, 2) == two) {
        tok_.kind = Token::kPunct;
        tok_.text = std::string(two);
        pos_ += 2;
        return;
      }
    }
    tok_.kind = Token::kPunct;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token tok_;
};

class MexParser {
 public:
  explicit MexParser(std::string_view src) : lex_(src) {}

  Result<Program> ParseProgramAll() {
    Program prog;
    while (lex_.Peek().kind != Token::kEnd) {
      auto stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      prog.stmts.push_back(stmt.take());
    }
    prog.num_nodes = next_id_;
    return prog;
  }

  Result<Guard> ParseExprAll() {
    auto e = ParseExprTop();
    if (!e.ok()) return e.status();
    if (lex_.Peek().kind != Token::kEnd) return Err("trailing tokens after expression");
    Guard g;
    g.expr = e.take();
    g.num_nodes = next_id_;
    return g;
  }

 private:
  Status Err(const std::string& what) {
    return Status::Error(StrFormat("mex parse error at offset %zu: %s", lex_.Peek().pos,
                                   what.c_str()));
  }

  int NewId() { return next_id_++; }

  ExprPtr MakeExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->node_id = NewId();
    return e;
  }

  Result<StmtPtr> ParseStmt() {
    if (lex_.Peek().kind == Token::kIdent && lex_.Peek().text == "if") {
      return ParseIf();
    }
    if (lex_.Peek().kind != Token::kIdent) return Status(Err("expected statement"));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->node_id = NewId();
    stmt->target = lex_.Take().text;
    if (!lex_.TakeIf("=")) return Status(Err("expected '=' in assignment"));
    auto value = ParseExprTop();
    if (!value.ok()) return value.status();
    stmt->value = value.take();
    if (!lex_.TakeIf(";")) return Status(Err("expected ';' after assignment"));
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseIf() {
    lex_.Take();  // 'if'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->node_id = NewId();
    for (;;) {
      IfBranch branch;
      if (!lex_.TakeIf("(")) return Status(Err("expected '(' after if/elseif"));
      auto cond = ParseExprTop();
      if (!cond.ok()) return cond.status();
      branch.cond = cond.take();
      if (!lex_.TakeIf(")")) return Status(Err("expected ')' after condition"));
      auto body = ParseBlock();
      if (!body.ok()) return body.status();
      branch.body = body.take();
      stmt->branches.push_back(std::move(branch));
      if (lex_.TakeIf("elseif")) continue;
      if (lex_.TakeIf("else")) {
        if (lex_.Peek().kind == Token::kIdent && lex_.Peek().text == "if") {
          // `else if` spelled with a space.
          lex_.Take();
          continue;
        }
        IfBranch else_branch;
        auto body2 = ParseBlock();
        if (!body2.ok()) return body2.status();
        else_branch.body = body2.take();
        stmt->branches.push_back(std::move(else_branch));
      }
      break;
    }
    return StmtPtr(std::move(stmt));
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    if (!lex_.TakeIf("{")) return Status(Err("expected '{'"));
    std::vector<StmtPtr> stmts;
    while (!lex_.TakeIf("}")) {
      if (lex_.Peek().kind == Token::kEnd) return Status(Err("unterminated block"));
      auto stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      stmts.push_back(stmt.take());
    }
    return stmts;
  }

  // Precedence climbing: || < && < relational < additive < multiplicative < unary.
  Result<ExprPtr> ParseExprTop() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (lex_.Peek().kind == Token::kPunct && lex_.Peek().text == "||") {
      lex_.Take();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      auto e = MakeExpr(ExprKind::kBinary);
      e->op = "||";
      e->args.push_back(lhs.take());
      e->args.push_back(rhs.take());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseRel();
    if (!lhs.ok()) return lhs;
    while (lex_.Peek().kind == Token::kPunct && lex_.Peek().text == "&&") {
      lex_.Take();
      auto rhs = ParseRel();
      if (!rhs.ok()) return rhs;
      auto e = MakeExpr(ExprKind::kBinary);
      e->op = "&&";
      e->args.push_back(lhs.take());
      e->args.push_back(rhs.take());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseRel() {
    auto lhs = ParseAdd();
    if (!lhs.ok()) return lhs;
    const Token& t = lex_.Peek();
    if (t.kind == Token::kPunct &&
        (t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">=" || t.text == "==" ||
         t.text == "!=" || t.text == "~=")) {
      std::string op = lex_.Take().text;
      if (op == "~=") op = "!=";
      auto rhs = ParseAdd();
      if (!rhs.ok()) return rhs;
      auto e = MakeExpr(ExprKind::kBinary);
      e->op = op;
      e->args.push_back(lhs.take());
      e->args.push_back(rhs.take());
      return Result<ExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdd() {
    auto lhs = ParseMul();
    if (!lhs.ok()) return lhs;
    while (lex_.Peek().kind == Token::kPunct &&
           (lex_.Peek().text == "+" || lex_.Peek().text == "-")) {
      std::string op = lex_.Take().text;
      auto rhs = ParseMul();
      if (!rhs.ok()) return rhs;
      auto e = MakeExpr(ExprKind::kBinary);
      e->op = op;
      e->args.push_back(lhs.take());
      e->args.push_back(rhs.take());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    while (lex_.Peek().kind == Token::kPunct &&
           (lex_.Peek().text == "*" || lex_.Peek().text == "/" || lex_.Peek().text == "%")) {
      std::string op = lex_.Take().text;
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      auto e = MakeExpr(ExprKind::kBinary);
      e->op = op;
      e->args.push_back(lhs.take());
      e->args.push_back(rhs.take());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (lex_.Peek().kind == Token::kPunct &&
        (lex_.Peek().text == "-" || lex_.Peek().text == "!" || lex_.Peek().text == "~")) {
      std::string op = lex_.Take().text;
      if (op == "~") op = "!";
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto e = MakeExpr(ExprKind::kUnary);
      e->op = op;
      e->args.push_back(operand.take());
      return Result<ExprPtr>(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    if (t.kind == Token::kNumber) {
      auto e = MakeExpr(ExprKind::kNumber);
      e->number = lex_.Take().number;
      return Result<ExprPtr>(std::move(e));
    }
    if (t.kind == Token::kIdent) {
      Token name = lex_.Take();
      if (name.text == "true" || name.text == "false") {
        auto e = MakeExpr(ExprKind::kNumber);
        e->number = (name.text == "true") ? 1.0 : 0.0;
        return Result<ExprPtr>(std::move(e));
      }
      if (lex_.TakeIf("(")) {
        auto e = MakeExpr(ExprKind::kCall);
        e->name = name.text;
        if (!lex_.TakeIf(")")) {
          for (;;) {
            auto arg = ParseExprTop();
            if (!arg.ok()) return arg;
            e->args.push_back(arg.take());
            if (lex_.TakeIf(")")) break;
            if (!lex_.TakeIf(",")) return Status(Err("expected ',' or ')' in call"));
          }
        }
        if (!IsKnownFunction(e->name, e->args.size())) {
          return Status(Err(StrFormat("unknown function %s/%zu", e->name.c_str(), e->args.size())));
        }
        return Result<ExprPtr>(std::move(e));
      }
      auto e = MakeExpr(ExprKind::kVar);
      e->name = name.text;
      return Result<ExprPtr>(std::move(e));
    }
    if (t.kind == Token::kPunct && t.text == "(") {
      lex_.Take();
      auto inner = ParseExprTop();
      if (!inner.ok()) return inner;
      if (!lex_.TakeIf(")")) return Status(Err("expected ')'"));
      return inner;
    }
    return Status(Err("expected expression"));
  }

  Lexer lex_;
  int next_id_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  return MexParser(source).ParseProgramAll();
}

Result<Guard> ParseExpr(std::string_view source) { return MexParser(source).ParseExprAll(); }

bool IsBooleanOp(const std::string& op) {
  return op == "&&" || op == "||" || op == "<" || op == "<=" || op == ">" || op == ">=" ||
         op == "==" || op == "!=";
}

bool IsLogicalOp(const std::string& op) { return op == "&&" || op == "||"; }

void CollectConditionLeaves(const Expr& expr, std::vector<const Expr*>& leaves) {
  if (expr.kind == ExprKind::kBinary && IsLogicalOp(expr.op)) {
    CollectConditionLeaves(*expr.args[0], leaves);
    CollectConditionLeaves(*expr.args[1], leaves);
    return;
  }
  if (expr.kind == ExprKind::kUnary && expr.op == "!") {
    CollectConditionLeaves(*expr.args[0], leaves);
    return;
  }
  leaves.push_back(&expr);
}

void CollectExprReads(const Expr& expr, std::vector<std::string>& names) {
  if (expr.kind == ExprKind::kVar) names.push_back(expr.name);
  for (const auto& a : expr.args) CollectExprReads(*a, names);
}

namespace {

void CollectStmtReads(const Stmt& stmt, std::vector<std::string>& names) {
  if (stmt.kind == StmtKind::kAssign) {
    CollectExprReads(*stmt.value, names);
    return;
  }
  for (const auto& br : stmt.branches) {
    if (br.cond) CollectExprReads(*br.cond, names);
    for (const auto& s : br.body) CollectStmtReads(*s, names);
  }
}

void CollectStmtWrites(const Stmt& stmt, std::vector<std::string>& names) {
  if (stmt.kind == StmtKind::kAssign) {
    names.push_back(stmt.target);
    return;
  }
  for (const auto& br : stmt.branches) {
    for (const auto& s : br.body) CollectStmtWrites(*s, names);
  }
}

}  // namespace

void CollectReads(const Program& program, std::vector<std::string>& names) {
  for (const auto& s : program.stmts) CollectStmtReads(*s, names);
}

void CollectWrites(const Program& program, std::vector<std::string>& names) {
  for (const auto& s : program.stmts) CollectStmtWrites(*s, names);
}

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber: return DoubleToString(expr.number);
    case ExprKind::kVar: return expr.name;
    case ExprKind::kUnary: return "(" + expr.op + ExprToString(*expr.args[0]) + ")";
    case ExprKind::kBinary:
      return "(" + ExprToString(*expr.args[0]) + " " + expr.op + " " +
             ExprToString(*expr.args[1]) + ")";
    case ExprKind::kCall: {
      std::vector<std::string> parts;
      parts.reserve(expr.args.size());
      for (const auto& a : expr.args) parts.push_back(ExprToString(*a));
      return expr.name + "(" + JoinStrings(parts, ", ") + ")";
    }
  }
  return "";
}

bool IsKnownFunction(const std::string& name, std::size_t arity) {
  struct Fn {
    std::string_view name;
    std::size_t arity;
  };
  static constexpr Fn kFns[] = {
      {"abs", 1},   {"min", 2},  {"max", 2},   {"floor", 1}, {"ceil", 1}, {"round", 1},
      {"sqrt", 1},  {"exp", 1},  {"log", 1},   {"sin", 1},   {"cos", 1},  {"tan", 1},
      {"atan2", 2}, {"pow", 2},  {"mod", 2},   {"rem", 2},   {"sign", 1},
  };
  for (const auto& fn : kFns) {
    if (fn.name == name && fn.arity == arity) return true;
  }
  return false;
}

}  // namespace cftcg::blocks::mex
