#include "blocks/analyze.hpp"

#include <algorithm>
#include <set>

#include "support/strings.hpp"

namespace cftcg::blocks {

using ir::Block;
using ir::BlockKind;
using ir::DType;
using ir::Model;

const CompiledExprFunc* CompiledPrograms::FindExprFunc(const ir::Block* block) const {
  auto it = exprfuncs_.find(block);
  return it == exprfuncs_.end() ? nullptr : &it->second;
}

const CompiledChart* CompiledPrograms::FindChart(const ir::Block* block) const {
  auto it = charts_.find(block);
  return it == charts_.end() ? nullptr : &it->second;
}

namespace {

Status Err(const Model& m, const std::string& what) {
  return Status::Error("model '" + m.name() + "': " + what);
}

Status ValidateWiring(const Model& m) {
  std::set<std::string> names;
  for (const auto& b : m.blocks()) {
    if (!names.insert(b.name()).second) return Err(m, "duplicate block name '" + b.name() + "'");
  }
  for (const auto& w : m.wires()) {
    if (w.src.block < 0 || static_cast<std::size_t>(w.src.block) >= m.blocks().size()) {
      return Err(m, "wire source block out of range");
    }
    if (w.dst_block < 0 || static_cast<std::size_t>(w.dst_block) >= m.blocks().size()) {
      return Err(m, "wire destination block out of range");
    }
  }
  return Status::Ok();
}

Status ValidatePortsDriven(const Model& m) {
  for (const auto& b : m.blocks()) {
    for (int port = 0; port < b.num_inputs(); ++port) {
      int drivers = 0;
      for (const auto& w : m.wires()) {
        if (w.dst_block == b.id() && w.dst_port == port) ++drivers;
      }
      if (drivers != 1) {
        return Err(m, StrFormat("block '%s' input %d has %d drivers (want 1)", b.name().c_str(),
                                port, drivers));
      }
    }
    for (const auto& w : m.wires()) {
      if (w.dst_block == b.id() && w.dst_port >= b.num_inputs()) {
        return Err(m, StrFormat("wire into '%s' port %d exceeds input count %d", b.name().c_str(),
                                w.dst_port, b.num_inputs()));
      }
      if (w.src.block == b.id() && w.src.port >= b.num_outputs()) {
        return Err(m, StrFormat("wire from '%s' port %d exceeds output count %d",
                                b.name().c_str(), w.src.port, b.num_outputs()));
      }
    }
  }
  return Status::Ok();
}

Status ValidatePortIndices(const Model& m, BlockKind kind) {
  std::vector<std::int64_t> indices;
  for (const auto& b : m.blocks()) {
    if (b.kind() == kind) indices.push_back(b.params().GetInt("port", 0));
  }
  std::sort(indices.begin(), indices.end());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != static_cast<std::int64_t>(i)) {
      return Err(m, std::string(ir::BlockKindName(kind)) + " port indices must be 0..n-1");
    }
  }
  return Status::Ok();
}

Status ValidateNameList(const Model& m, const Block& b, const std::vector<std::string>& reads,
                        const std::set<std::string>& known, const char* where) {
  for (const auto& name : reads) {
    if (known.count(name) == 0) {
      return Err(m, "block '" + b.name() + "' " + where + " references unknown name '" + name +
                        "'");
    }
  }
  return Status::Ok();
}

Result<CompiledExprFunc> CompileExprFunc(const Model& m, const Block& b) {
  CompiledExprFunc out;
  const int n_in = static_cast<int>(b.params().GetInt("in", 1));
  const int n_out = static_cast<int>(b.params().GetInt("out", 1));
  const std::string in_names = b.params().GetString("in_names", "");
  const std::string out_names = b.params().GetString("out_names", "");
  if (in_names.empty()) {
    for (int i = 0; i < n_in; ++i) out.in_names.push_back(StrFormat("u%d", i + 1));
  } else {
    for (const auto& s : SplitString(in_names, ' ')) {
      if (!s.empty()) out.in_names.push_back(s);
    }
    if (static_cast<int>(out.in_names.size()) != n_in) {
      return Err(m, "block '" + b.name() + "': in_names count != in");
    }
  }
  if (out_names.empty()) {
    for (int i = 0; i < n_out; ++i) out.out_names.push_back(StrFormat("y%d", i + 1));
  } else {
    for (const auto& s : SplitString(out_names, ' ')) {
      if (!s.empty()) out.out_names.push_back(s);
    }
    if (static_cast<int>(out.out_names.size()) != n_out) {
      return Err(m, "block '" + b.name() + "': out_names count != out");
    }
  }

  auto program = mex::ParseProgram(b.params().GetString("body", ""));
  if (!program.ok()) {
    return Status::Error("block '" + b.name() + "': " + program.message());
  }
  out.program = program.take();

  std::vector<std::string> writes;
  mex::CollectWrites(out.program, writes);
  std::set<std::string> inputs(out.in_names.begin(), out.in_names.end());
  std::set<std::string> outputs(out.out_names.begin(), out.out_names.end());
  for (const auto& w : writes) {
    if (inputs.count(w)) return Err(m, "block '" + b.name() + "': assignment to input '" + w + "'");
    if (!outputs.count(w) &&
        std::find(out.local_names.begin(), out.local_names.end(), w) == out.local_names.end()) {
      out.local_names.push_back(w);
    }
  }
  std::set<std::string> known = inputs;
  known.insert(outputs.begin(), outputs.end());
  known.insert(out.local_names.begin(), out.local_names.end());
  std::vector<std::string> reads;
  mex::CollectReads(out.program, reads);
  if (Status s = ValidateNameList(m, b, reads, known, "body"); !s.ok()) return s;
  return out;
}

Result<CompiledChart> CompileChart(const Model& m, const Block& b) {
  const ir::ChartDef& def = *b.chart();
  CompiledChart out;
  if (def.states.empty()) return Err(m, "chart '" + b.name() + "' has no states");
  if (def.initial_state < 0 || def.initial_state >= static_cast<int>(def.states.size())) {
    return Err(m, "chart '" + b.name() + "' initial state out of range");
  }
  std::set<std::string> known;
  for (const auto& name : def.inputs) {
    if (!known.insert(name).second) return Err(m, "chart '" + b.name() + "' duplicate name " + name);
  }
  for (const auto& v : def.vars) {
    if (!known.insert(v.name).second) return Err(m, "chart '" + b.name() + "' duplicate name " + v.name);
  }
  for (const auto& o : def.outputs) {
    if (!known.insert(o.name).second) return Err(m, "chart '" + b.name() + "' duplicate name " + o.name);
  }

  auto compile_program = [&](const std::string& src, const char* where,
                             std::optional<mex::Program>& slot) -> Status {
    if (TrimString(src).empty()) return Status::Ok();
    auto prog = mex::ParseProgram(src);
    if (!prog.ok()) {
      return Status::Error("chart '" + b.name() + "' " + where + ": " + prog.message());
    }
    std::vector<std::string> reads;
    std::vector<std::string> writes;
    mex::CollectReads(prog.value(), reads);
    mex::CollectWrites(prog.value(), writes);
    if (Status s = ValidateNameList(m, b, reads, known, where); !s.ok()) return s;
    std::set<std::string> inputs(def.inputs.begin(), def.inputs.end());
    for (const auto& w : writes) {
      if (inputs.count(w)) {
        return Err(m, "chart '" + b.name() + "' " + where + " assigns input '" + w + "'");
      }
      if (known.count(w) == 0) {
        return Err(m, "chart '" + b.name() + "' " + where + " assigns unknown '" + w + "'");
      }
    }
    slot = prog.take();
    return Status::Ok();
  };

  out.states.resize(def.states.size());
  for (std::size_t i = 0; i < def.states.size(); ++i) {
    if (Status s = compile_program(def.states[i].entry_action, "entry", out.states[i].entry);
        !s.ok()) {
      return s;
    }
    if (Status s = compile_program(def.states[i].during_action, "during", out.states[i].during);
        !s.ok()) {
      return s;
    }
    if (Status s = compile_program(def.states[i].exit_action, "exit", out.states[i].exit); !s.ok()) {
      return s;
    }
  }

  out.transitions.resize(def.transitions.size());
  out.outgoing.resize(def.states.size());
  for (std::size_t i = 0; i < def.transitions.size(); ++i) {
    const auto& t = def.transitions[i];
    if (t.from < 0 || t.from >= static_cast<int>(def.states.size()) || t.to < 0 ||
        t.to >= static_cast<int>(def.states.size())) {
      return Err(m, "chart '" + b.name() + "' transition state index out of range");
    }
    if (!TrimString(t.guard).empty()) {
      auto guard = mex::ParseExpr(t.guard);
      if (!guard.ok()) {
        return Status::Error("chart '" + b.name() + "' guard: " + guard.message());
      }
      std::vector<std::string> reads;
      mex::CollectExprReads(*guard.value().expr, reads);
      if (Status s = ValidateNameList(m, b, reads, known, "guard"); !s.ok()) return s;
      out.transitions[i].guard = guard.take();
    }
    if (Status s = compile_program(t.action, "transition action", out.transitions[i].action);
        !s.ok()) {
      return s;
    }
    out.outgoing[static_cast<std::size_t>(t.from)].push_back(static_cast<int>(i));
  }
  return out;
}

/// Recursive worker. `inport_types` provides the types of the sub-model's
/// inports (empty for the root model, which must declare them via params).
Status AnalyzeIn(Model& model, std::span<const DType> inport_types, CompiledPrograms& programs);

Status AnalyzeCompound(Model& model, Block& b, CompiledPrograms& programs) {
  const bool has_control = b.kind() != BlockKind::kSubsystem;
  const int data_in = b.num_inputs() - (has_control ? 1 : 0);
  const int expected_subs = [&] {
    switch (b.kind()) {
      case BlockKind::kSubsystem:
      case BlockKind::kEnabledSubsystem: return 1;
      case BlockKind::kActionIf: return 2;
      default: return static_cast<int>(b.subs().size());  // ActionSwitch: K cases + default
    }
  }();
  if (static_cast<int>(b.subs().size()) != expected_subs || b.subs().empty()) {
    return Err(model, "block '" + b.name() + "' has wrong number of sub-models");
  }
  if (b.kind() == BlockKind::kActionSwitch && b.subs().size() < 2) {
    return Err(model, "ActionSwitch '" + b.name() + "' needs at least one case plus default");
  }

  // Data input types feed each sub-model's inports.
  std::vector<DType> sub_in;
  for (int i = 0; i < data_in; ++i) {
    const ir::Wire* w = model.DriverOf(b.id(), (has_control ? 1 : 0) + i);
    sub_in.push_back(model.block(w->src.block).out_type(w->src.port));
  }

  std::vector<DType> out_types(static_cast<std::size_t>(b.num_outputs()), DType::kBool);
  bool first_sub = true;
  for (const auto& sub : b.subs()) {
    if (static_cast<int>(sub->Inports().size()) != data_in ||
        static_cast<int>(sub->Outports().size()) != b.num_outputs()) {
      return Err(model, "sub-model '" + sub->name() + "' arity mismatch in '" + b.name() + "'");
    }
    if (Status s = AnalyzeIn(*sub, sub_in, programs); !s.ok()) return s;
    // Output type = promotion across branches of the sub outport drivers.
    const auto outports = sub->Outports();
    for (std::size_t i = 0; i < outports.size(); ++i) {
      const ir::Wire* w = sub->DriverOf(outports[i], 0);
      const DType t = sub->block(w->src.block).out_type(w->src.port);
      out_types[i] = first_sub ? t : ir::PromoteDTypes(out_types[i], t);
    }
    first_sub = false;
  }
  b.set_out_types(std::move(out_types));
  return Status::Ok();
}

Status AnalyzeIn(Model& model, std::span<const DType> inport_types, CompiledPrograms& programs) {
  if (Status s = ValidateWiring(model); !s.ok()) return s;

  // Pass 1: port counts (depend only on params / chart defs / sub arities).
  for (auto& b : model.blocks()) {
    auto spec = GetPortSpec(b);
    if (!spec.ok()) return Err(model, spec.message());
    b.set_port_counts(spec.value().num_inputs, spec.value().num_outputs);
  }
  if (Status s = ValidatePortsDriven(model); !s.ok()) return s;
  if (Status s = ValidatePortIndices(model, BlockKind::kInport); !s.ok()) return s;
  if (Status s = ValidatePortIndices(model, BlockKind::kOutport); !s.ok()) return s;

  // Pass 2: compile embedded programs (needed before typing charts).
  for (auto& b : model.blocks()) {
    if (b.kind() == BlockKind::kExprFunc) {
      auto compiled = CompileExprFunc(model, b);
      if (!compiled.ok()) return compiled.status();
      programs.AddExprFunc(&b, compiled.take());
    } else if (b.kind() == BlockKind::kChart) {
      if (!b.chart()) return Err(model, "chart '" + b.name() + "' missing definition");
      auto compiled = CompileChart(model, b);
      if (!compiled.ok()) return compiled.status();
      programs.AddChart(&b, compiled.take());
    }
  }

  // Pass 3: type inference to fixpoint. Delay-like blocks and charts are
  // typable without their inputs, which breaks feedback cycles.
  const std::size_t n = model.blocks().size();
  std::vector<bool> typed(n, false);
  std::size_t remaining = n;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (auto& b : model.blocks()) {
      if (typed[static_cast<std::size_t>(b.id())]) continue;
      // Gather input types; a block is ready when all its inputs that are
      // direct feedthrough come from typed blocks. Non-feedthrough inputs
      // use the (param-declared) type of the block itself, so any
      // placeholder works; we still record the real type when available.
      bool ready = true;
      std::vector<DType> in_types(static_cast<std::size_t>(b.num_inputs()), DType::kDouble);
      for (int port = 0; port < b.num_inputs(); ++port) {
        const ir::Wire* w = model.DriverOf(b.id(), port);
        const Block& src = model.block(w->src.block);
        if (typed[static_cast<std::size_t>(src.id())]) {
          in_types[static_cast<std::size_t>(port)] = src.out_type(w->src.port);
        } else if (InputIsDirectFeedthrough(b, port)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      if (ir::BlockKindIsCompound(b.kind())) {
        if (Status s = AnalyzeCompound(model, b, programs); !s.ok()) return s;
      } else if (b.kind() == BlockKind::kInport) {
        DType t = DType::kDouble;
        if (!inport_types.empty()) {
          const auto idx = static_cast<std::size_t>(b.params().GetInt("port", 0));
          if (idx >= inport_types.size()) return Err(model, "inport index out of range");
          t = inport_types[idx];
        } else {
          if (!b.params().Has("type")) {
            return Err(model, "root inport '" + b.name() + "' must declare a type");
          }
          auto parsed = ir::DTypeFromName(b.params().GetString("type"));
          if (!parsed.ok()) return Err(model, parsed.message());
          t = parsed.value();
        }
        b.set_out_types({t});
      } else if (b.kind() == BlockKind::kOutport) {
        b.set_out_types({});
      } else {
        std::vector<DType> out_types;
        for (int port = 0; port < b.num_outputs(); ++port) {
          auto t = InferOutType(b, in_types, port);
          if (!t.ok()) return Err(model, t.message());
          out_types.push_back(t.value());
        }
        b.set_out_types(std::move(out_types));
      }
      typed[static_cast<std::size_t>(b.id())] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    std::string names;
    for (const auto& b : model.blocks()) {
      if (!typed[static_cast<std::size_t>(b.id())]) names += " '" + b.name() + "'";
    }
    return Err(model, "algebraic loop (no delay in cycle) involving:" + names);
  }
  return Status::Ok();
}

}  // namespace

Result<Analysis> AnalyzeModel(Model& model) {
  Analysis analysis;
  if (Status s = AnalyzeIn(model, {}, analysis.programs); !s.ok()) return s;
  return analysis;
}

}  // namespace cftcg::blocks
