#include "blocks/registry.hpp"

#include "support/strings.hpp"

namespace cftcg::blocks {

using ir::Block;
using ir::BlockKind;
using ir::DType;

Result<PortSpec> GetPortSpec(const Block& block) {
  const auto& p = block.params();
  switch (block.kind()) {
    case BlockKind::kInport: return PortSpec{0, 1};
    case BlockKind::kOutport: return PortSpec{1, 0};
    case BlockKind::kConstant: return PortSpec{0, 1};

    case BlockKind::kGain:
    case BlockKind::kBias:
    case BlockKind::kAbs:
    case BlockKind::kUnaryMinus:
    case BlockKind::kSign:
    case BlockKind::kSqrt:
    case BlockKind::kExp:
    case BlockKind::kLog:
    case BlockKind::kFloor:
    case BlockKind::kCeil:
    case BlockKind::kRound:
    case BlockKind::kSin:
    case BlockKind::kCos:
    case BlockKind::kTan:
    case BlockKind::kSaturation:
    case BlockKind::kDeadZone:
    case BlockKind::kRateLimiter:
    case BlockKind::kQuantizer:
    case BlockKind::kRelay:
    case BlockKind::kCompareToConstant:
    case BlockKind::kCompareToZero:
    case BlockKind::kLogicalNot:
    case BlockKind::kShiftLeft:
    case BlockKind::kShiftRight:
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory:
    case BlockKind::kDiscreteIntegrator:
    case BlockKind::kCounterLimited:
    case BlockKind::kEdgeDetector:
    case BlockKind::kLookup1D:
    case BlockKind::kDataTypeConversion: return PortSpec{1, 1};

    case BlockKind::kSubtract:
    case BlockKind::kDivide:
    case BlockKind::kMin:
    case BlockKind::kMax:
    case BlockKind::kMod:
    case BlockKind::kRem:
    case BlockKind::kAtan2:
    case BlockKind::kPow:
    case BlockKind::kRelationalOp:
    case BlockKind::kBitwiseAnd:
    case BlockKind::kBitwiseOr:
    case BlockKind::kBitwiseXor: return PortSpec{2, 1};

    case BlockKind::kSum: {
      const std::string signs = p.GetString("signs", "++");
      return PortSpec{static_cast<int>(signs.size()), 1};
    }
    case BlockKind::kProduct: {
      const std::string ops = p.GetString("ops", "**");
      return PortSpec{static_cast<int>(ops.size()), 1};
    }
    case BlockKind::kLogicalAnd:
    case BlockKind::kLogicalOr:
    case BlockKind::kLogicalXor:
    case BlockKind::kLogicalNand:
    case BlockKind::kLogicalNor: {
      const int n = static_cast<int>(p.GetInt("inputs", 2));
      if (n < 1) return Status::Error(block.name() + ": logical op needs >=1 input");
      return PortSpec{n, 1};
    }
    case BlockKind::kSwitch: return PortSpec{3, 1};
    case BlockKind::kMultiportSwitch: {
      const int cases = static_cast<int>(p.GetInt("cases", 2));
      if (cases < 1) return Status::Error(block.name() + ": MultiportSwitch needs >=1 case");
      return PortSpec{1 + cases, 1};
    }
    case BlockKind::kMerge: {
      const int n = static_cast<int>(p.GetInt("inputs", 2));
      return PortSpec{n, 1};
    }

    case BlockKind::kSubsystem:
    case BlockKind::kEnabledSubsystem:
    case BlockKind::kActionIf:
    case BlockKind::kActionSwitch: {
      if (block.subs().empty()) {
        return Status::Error(block.name() + ": compound block has no sub-model");
      }
      const ir::Model& body = *block.subs()[0];
      const int data_in = static_cast<int>(body.Inports().size());
      const int data_out = static_cast<int>(body.Outports().size());
      // ActionIf/ActionSwitch/Enabled have one leading control input.
      const int control = (block.kind() == BlockKind::kSubsystem) ? 0 : 1;
      return PortSpec{control + data_in, data_out};
    }

    case BlockKind::kChart: {
      if (!block.chart()) return Status::Error(block.name() + ": chart block without definition");
      return PortSpec{static_cast<int>(block.chart()->inputs.size()),
                      static_cast<int>(block.chart()->outputs.size())};
    }
    case BlockKind::kExprFunc: {
      const int n_in = static_cast<int>(p.GetInt("in", 1));
      const int n_out = static_cast<int>(p.GetInt("out", 1));
      if (n_in < 0 || n_out < 1) return Status::Error(block.name() + ": bad ExprFunc arity");
      return PortSpec{n_in, n_out};
    }
  }
  return Status::Error("unhandled block kind");
}

bool HasState(BlockKind kind) {
  switch (kind) {
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory:
    case BlockKind::kDiscreteIntegrator:
    case BlockKind::kCounterLimited:
    case BlockKind::kEdgeDetector:
    case BlockKind::kRateLimiter:
    case BlockKind::kRelay:
    case BlockKind::kChart:
    case BlockKind::kEnabledSubsystem: return true;
    default: return false;
  }
}

bool InputIsDirectFeedthrough(const Block& block, int port) {
  switch (block.kind()) {
    // Pure delays: the current output is last step's state; the input only
    // feeds the next step.
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory: return false;
    // Forward-Euler integrator: output is the accumulated state.
    case BlockKind::kDiscreteIntegrator: return false;
    default: (void)port; return true;
  }
}

namespace {

Result<DType> TypeFromParam(const Block& block, const std::string& key, DType fallback) {
  if (!block.params().Has(key)) return fallback;
  return ir::DTypeFromName(block.params().GetString(key));
}

DType PromoteAll(std::span<const DType> in_types) {
  DType t = DType::kBool;
  bool first = true;
  for (DType it : in_types) {
    t = first ? it : ir::PromoteDTypes(t, it);
    first = false;
  }
  return first ? DType::kDouble : t;
}

}  // namespace

Result<DType> InferOutType(const Block& block, std::span<const DType> in_types, int port) {
  switch (block.kind()) {
    case BlockKind::kInport: return TypeFromParam(block, "type", DType::kDouble);
    case BlockKind::kOutport: return Status::Error("outports have no outputs");
    case BlockKind::kConstant: return TypeFromParam(block, "type", DType::kDouble);

    // Arithmetic: promoted input type (Gain/Bias keep the input type).
    case BlockKind::kGain:
    case BlockKind::kBias:
    case BlockKind::kAbs:
    case BlockKind::kUnaryMinus:
    case BlockKind::kQuantizer:
    case BlockKind::kSaturation:
    case BlockKind::kDeadZone: return in_types[0];
    case BlockKind::kSum:
    case BlockKind::kSubtract:
    case BlockKind::kProduct:
    case BlockKind::kMin:
    case BlockKind::kMax:
    case BlockKind::kMod:
    case BlockKind::kRem: return PromoteAll(in_types);
    case BlockKind::kDivide: {
      const DType t = PromoteAll(in_types);
      return ir::DTypeIsFloat(t) ? t : DType::kDouble;  // integer division promotes to double
    }
    case BlockKind::kSign: return in_types[0];

    // Transcendental: always floating.
    case BlockKind::kSqrt:
    case BlockKind::kExp:
    case BlockKind::kLog:
    case BlockKind::kSin:
    case BlockKind::kCos:
    case BlockKind::kTan:
    case BlockKind::kAtan2:
    case BlockKind::kPow: return DType::kDouble;
    case BlockKind::kFloor:
    case BlockKind::kCeil:
    case BlockKind::kRound: return in_types[0];

    case BlockKind::kRateLimiter: return DType::kDouble;
    case BlockKind::kRelay: return DType::kDouble;

    // Boolean-valued.
    case BlockKind::kRelationalOp:
    case BlockKind::kCompareToConstant:
    case BlockKind::kCompareToZero:
    case BlockKind::kLogicalAnd:
    case BlockKind::kLogicalOr:
    case BlockKind::kLogicalNot:
    case BlockKind::kLogicalXor:
    case BlockKind::kLogicalNand:
    case BlockKind::kLogicalNor:
    case BlockKind::kEdgeDetector: return DType::kBool;

    case BlockKind::kBitwiseAnd:
    case BlockKind::kBitwiseOr:
    case BlockKind::kBitwiseXor: {
      const DType t = PromoteAll(in_types);
      if (!ir::DTypeIsInteger(t) && t != DType::kBool) {
        return Status::Error(block.name() + ": bitwise op on non-integer type");
      }
      return t;
    }
    case BlockKind::kShiftLeft:
    case BlockKind::kShiftRight: {
      if (!ir::DTypeIsInteger(in_types[0])) {
        return Status::Error(block.name() + ": shift on non-integer type");
      }
      return in_types[0];
    }

    case BlockKind::kSwitch: return ir::PromoteDTypes(in_types[0], in_types[2]);
    case BlockKind::kMultiportSwitch: {
      DType t = in_types[1];
      for (std::size_t i = 2; i < in_types.size(); ++i) t = ir::PromoteDTypes(t, in_types[i]);
      return t;
    }
    case BlockKind::kMerge: return PromoteAll(in_types);

    // Delays carry a declared type (default double): feedback loops through
    // a delay would otherwise make inference cyclic.
    case BlockKind::kUnitDelay:
    case BlockKind::kDelay:
    case BlockKind::kMemory: return TypeFromParam(block, "type", DType::kDouble);
    case BlockKind::kDiscreteIntegrator: return DType::kDouble;
    case BlockKind::kCounterLimited: return TypeFromParam(block, "type", DType::kInt32);

    case BlockKind::kLookup1D: return DType::kDouble;
    case BlockKind::kDataTypeConversion: return TypeFromParam(block, "to", DType::kDouble);

    case BlockKind::kSubsystem:
    case BlockKind::kEnabledSubsystem:
    case BlockKind::kActionIf:
    case BlockKind::kActionSwitch: {
      // Output types are resolved by AnalyzeModel after sub-model analysis;
      // this path is only used as a fallback.
      (void)port;
      return DType::kDouble;
    }
    case BlockKind::kChart: {
      return block.chart()->outputs.at(static_cast<std::size_t>(port)).type;
    }
    case BlockKind::kExprFunc: {
      // Optional per-output types via param "out_types" ("double int32 ...").
      const std::string types = block.params().GetString("out_types", "");
      if (types.empty()) return DType::kDouble;
      const auto names = SplitString(types, ' ');
      if (port < 0 || static_cast<std::size_t>(port) >= names.size()) return DType::kDouble;
      return ir::DTypeFromName(names[static_cast<std::size_t>(port)]);
    }
  }
  return Status::Error("unhandled block kind in InferOutType");
}

int BlockDecisionOutcomes(const ir::Block& block) {
  switch (block.kind()) {
    case BlockKind::kSwitch: return 2;
    case BlockKind::kMultiportSwitch: return static_cast<int>(block.params().GetInt("cases", 2));
    case BlockKind::kSaturation:
    case BlockKind::kDeadZone:
    case BlockKind::kRateLimiter: return 3;
    case BlockKind::kRelay: return 2;
    case BlockKind::kAbs: return ir::DTypeIsFloat(block.out_type(0)) ? 0 : 2;
    case BlockKind::kSign: return 3;
    case BlockKind::kMin:
    case BlockKind::kMax: return 2;
    case BlockKind::kDiscreteIntegrator:
      return (block.params().Has("upper") || block.params().Has("lower")) ? 3 : 0;
    case BlockKind::kCounterLimited: return 2;
    case BlockKind::kEdgeDetector: return 2;
    case BlockKind::kActionIf: return 2;
    case BlockKind::kActionSwitch:
      return static_cast<int>(block.subs().size());  // cases + default
    case BlockKind::kEnabledSubsystem: return 2;
    default: return 0;
  }
}

std::string BlockDecisionLabel(const ir::Block& block) {
  if (BlockDecisionOutcomes(block) == 0) return "";
  return std::string(ir::BlockKindName(block.kind()));
}

}  // namespace cftcg::blocks
