// Block semantics metadata: port counts, state, feedthrough, output typing.
//
// This is the single source of truth consulted by validation, scheduling,
// the interpreter and the code generator, so a new block kind is added in
// exactly one place.
#pragma once

#include <span>

#include "ir/model.hpp"
#include "support/status.hpp"

namespace cftcg::blocks {

struct PortSpec {
  int num_inputs = 0;
  int num_outputs = 0;
};

/// Port counts for a block (may depend on params, e.g. LogicalAnd "inputs",
/// ActionSwitch "cases", ExprFunc "in"/"out" lists, Chart definition).
Result<PortSpec> GetPortSpec(const ir::Block& block);

/// True if the block carries state across iterations (delays, integrator,
/// counter, rate limiter, relay hysteresis, edge detector, chart, enabled
/// subsystem output hold).
bool HasState(ir::BlockKind kind);

/// False when the given input port does not influence the current-step
/// output (classic delay inputs). Used to break cycles in scheduling.
bool InputIsDirectFeedthrough(const ir::Block& block, int port);

/// Output type of `port` given the (already inferred) input types.
/// `in_types` has one entry per input port.
Result<ir::DType> InferOutType(const ir::Block& block, std::span<const ir::DType> in_types,
                               int port);

/// Number of decision outcomes contributed directly by this block kind
/// (0 = not a decision point). Compound/chart/exprfunc blocks contribute
/// through their bodies as well; this covers only the block-level decision
/// (e.g. Switch: 2, Saturation: 3, ActionSwitch: cases + 1).
int BlockDecisionOutcomes(const ir::Block& block);

/// Human-readable label for the block-level decision ("switch criteria",
/// "saturation range", ...); empty if none.
std::string BlockDecisionLabel(const ir::Block& block);

}  // namespace cftcg::blocks
