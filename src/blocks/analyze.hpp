// Model analysis: validation, type inference, and compilation of embedded
// mex programs (ExprFunc bodies, chart guards/actions).
//
// AnalyzeModel must succeed before a model is scheduled, simulated, or
// lowered. It fills in each block's port counts and output types and returns
// the compiled mex ASTs keyed by block so that the interpreter, the VM
// lowering and the C emitter share one AST (and therefore one set of
// coverage node identities).
#pragma once

#include <map>
#include <optional>

#include "blocks/mex.hpp"
#include "blocks/registry.hpp"
#include "ir/model.hpp"
#include "support/status.hpp"

namespace cftcg::blocks {

/// Compiled body of an ExprFunc block.
struct CompiledExprFunc {
  mex::Program program;
  std::vector<std::string> in_names;    // one per input port
  std::vector<std::string> out_names;   // one per output port
  std::vector<std::string> local_names; // assigned, not outputs (zeroed per step)
};

/// Compiled chart programs.
struct CompiledChart {
  struct State {
    std::optional<mex::Program> entry;
    std::optional<mex::Program> during;
    std::optional<mex::Program> exit;
  };
  struct Transition {
    std::optional<mex::Guard> guard;  // absent = unconditional
    std::optional<mex::Program> action;
  };
  std::vector<State> states;
  std::vector<Transition> transitions;  // same order as ChartDef::transitions
  /// Outgoing transition indices per state, in priority order.
  std::vector<std::vector<int>> outgoing;
};

/// Compiled program artifacts for every ExprFunc/Chart block in a model tree.
class CompiledPrograms {
 public:
  [[nodiscard]] const CompiledExprFunc* FindExprFunc(const ir::Block* block) const;
  [[nodiscard]] const CompiledChart* FindChart(const ir::Block* block) const;

  void AddExprFunc(const ir::Block* block, CompiledExprFunc c) {
    exprfuncs_.emplace(block, std::move(c));
  }
  void AddChart(const ir::Block* block, CompiledChart c) { charts_.emplace(block, std::move(c)); }

 private:
  std::map<const ir::Block*, CompiledExprFunc> exprfuncs_;
  std::map<const ir::Block*, CompiledChart> charts_;
};

/// Result of a successful analysis.
struct Analysis {
  CompiledPrograms programs;
};

/// Validates and types the model in place (recursing into sub-models).
/// Checks: unique block names, every input port driven exactly once, wire
/// targets exist, inport/outport indices contiguous, compound sub-model
/// arities consistent, charts well-formed, mex programs parse and reference
/// only known names, types consistent (bitwise on integers, no algebraic
/// loops without a delay).
Result<Analysis> AnalyzeModel(ir::Model& model);

}  // namespace cftcg::blocks
