#include "vm/machine.hpp"

#include <cmath>
#include <limits>

#include "support/numerics.hpp"

namespace cftcg::vm {

using namespace cftcg::num;

Machine::Machine(const Program& program) : program_(&program) {
  dregs_.assign(static_cast<std::size_t>(program.num_dregs), 0.0);
  iregs_.assign(static_cast<std::size_t>(program.num_iregs), 0);
  in_d_.assign(program.input_types.size(), 0.0);
  in_i_.assign(program.input_types.size(), 0);
  out_d_.assign(program.output_types.size(), 0.0);
  out_i_.assign(program.output_types.size(), 0);
  state_d_.resize(program.state_d.size());
  state_i_.resize(program.state_i.size());
  Reset();
}

void Machine::Reset() {
  for (std::size_t i = 0; i < state_d_.size(); ++i) state_d_[i] = program_->state_d[i].init;
  for (std::size_t i = 0; i < state_i_.size(); ++i) {
    state_i_[i] = ir::WrapToDType(static_cast<std::int64_t>(program_->state_i[i].init),
                                  program_->state_i[i].type);
  }
}

void Machine::SetInputsFromBytes(const std::uint8_t* tuple) {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < program_->input_types.size(); ++i) {
    const ir::DType t = program_->input_types[i];
    const ir::Value v = ir::Value::FromBytes(t, tuple + offset);
    if (ir::DTypeIsFloat(t)) {
      in_d_[i] = v.AsDouble();
    } else {
      in_i_[i] = v.AsInt64();
    }
    offset += ir::DTypeSize(t);
  }
}

void Machine::SetInputs(std::span<const ir::Value> values) {
  for (std::size_t i = 0; i < values.size() && i < program_->input_types.size(); ++i) {
    const ir::Value v = values[i].CastTo(program_->input_types[i]);
    if (ir::DTypeIsFloat(program_->input_types[i])) {
      in_d_[i] = v.AsDouble();
    } else {
      in_i_[i] = v.AsInt64();
    }
  }
}

ir::Value Machine::GetOutput(int index) const {
  const auto i = static_cast<std::size_t>(index);
  const ir::DType t = program_->output_types[i];
  if (ir::DTypeIsFloat(t)) return ir::Value::Real(t, out_d_[i]);
  return ir::Value::Int(t, out_i_[i]);
}

bool Machine::Step(coverage::CoverageSink* sink, std::uint8_t* edge_map) {
  // Specialized dispatch loops: the detached path compiles with zero
  // profiling code (not even a per-dispatch branch), the count-only path is
  // a single increment per dispatch, and only the strobe path carries the
  // sampling countdown.
  if (profile_ == nullptr) return StepImpl<ProfileMode::kOff>(sink, edge_map);
  if (profile_->strobe_period == 0) return StepImpl<ProfileMode::kCount>(sink, edge_map);
  return StepImpl<ProfileMode::kStrobe>(sink, edge_map);
}

template <Machine::ProfileMode kMode>
bool Machine::StepImpl(coverage::CoverageSink* sink, std::uint8_t* edge_map) {
  constexpr bool kCounting = kMode != ProfileMode::kOff;
  constexpr bool kStrobing = kMode == ProfileMode::kStrobe;
  const Insn* code = program_->code.data();
  double* d = dregs_.data();
  std::int64_t* r = iregs_.data();
  std::size_t pc = 0;
  // Back-edge budget: decremented only on backward control transfers, so the
  // common straight-line path pays nothing. 0 configured = unlimited.
  std::uint64_t back_jumps =
      step_budget_ == 0 ? std::numeric_limits<std::uint64_t>::max() : step_budget_;
  // Counting covers every dispatch — including the final kHalt and the
  // aborted tail of a hang — so Σ insn_counts equals total dispatches. The
  // strobe countdown lives in a register for the duration of the iteration
  // and is written back at every exit, so the sampled positions stay a pure
  // function of the executed instruction stream across Step() calls.
  [[maybe_unused]] std::uint64_t* prof_counts = nullptr;
  [[maybe_unused]] std::uint64_t strobe_period = 0;
  [[maybe_unused]] std::uint64_t strobe_countdown = 0;
  if constexpr (kCounting) {
    prof_counts = profile_->insn_counts.data();
    ++profile_->steps;
  }
  if constexpr (kStrobing) {
    strobe_period = profile_->strobe_period;
    strobe_countdown = profile_->strobe_countdown;
  }
  // Hang abort (back-edge budget exhausted): flush strobe state, then false.
  auto abort_hang = [&]() -> bool {
    if constexpr (kStrobing) profile_->strobe_countdown = strobe_countdown;
    return false;
  };

  for (;;) {
    const Insn& in = code[pc];
    if constexpr (kCounting) ++prof_counts[pc];
    if constexpr (kStrobing) {
      // Instruction-count strobe (timed mode): one sample every N
      // dispatches, no clock read.
      if (--strobe_countdown == 0) {
        strobe_countdown = strobe_period;
        ++profile_->insn_samples[pc];
      }
    }
    switch (in.op) {
      case Op::kHalt:
        if constexpr (kStrobing) profile_->strobe_countdown = strobe_countdown;
        return true;
      case Op::kLoadConstD: d[in.dst] = in.dimm; break;
      case Op::kLoadConstI:
        // Wrap to the declared width: an out-of-range literal (e.g. a
        // negative saturation bound wired to an unsigned signal) must behave
        // like the same assignment in the generated C.
        r[in.dst] = ir::WrapToDType(static_cast<std::int64_t>(in.dimm), in.type);
        break;
      case Op::kMovD: d[in.dst] = d[in.a]; break;
      case Op::kMovI: r[in.dst] = r[in.a]; break;
      case Op::kCvtDToI: {
        r[in.dst] = ir::WrapToDType(TruncToI64(d[in.a]), in.type);
        break;
      }
      case Op::kCvtIToD: d[in.dst] = static_cast<double>(r[in.a]); break;
      case Op::kWrapI: r[in.dst] = ir::WrapToDType(r[in.a], in.type); break;
      case Op::kBoolD: r[in.dst] = d[in.a] != 0.0; break;
      case Op::kBoolI: r[in.dst] = r[in.a] != 0; break;

      case Op::kAddD: d[in.dst] = d[in.a] + d[in.b]; break;
      case Op::kSubD: d[in.dst] = d[in.a] - d[in.b]; break;
      case Op::kMulD: d[in.dst] = d[in.a] * d[in.b]; break;
      case Op::kDivD: d[in.dst] = SafeDiv(d[in.a], d[in.b]); break;
      case Op::kMinD: d[in.dst] = std::fmin(d[in.a], d[in.b]); break;
      case Op::kMaxD: d[in.dst] = std::fmax(d[in.a], d[in.b]); break;
      case Op::kModD: d[in.dst] = SafeMod(d[in.a], d[in.b]); break;
      case Op::kRemD: d[in.dst] = SafeRem(d[in.a], d[in.b]); break;
      case Op::kPowD: d[in.dst] = Finite(std::pow(d[in.a], d[in.b])); break;
      case Op::kAtan2D: d[in.dst] = std::atan2(d[in.a], d[in.b]); break;
      case Op::kNegD: d[in.dst] = -d[in.a]; break;
      case Op::kAbsD: d[in.dst] = std::fabs(d[in.a]); break;
      case Op::kSignD: d[in.dst] = (d[in.a] > 0.0) ? 1.0 : ((d[in.a] < 0.0) ? -1.0 : 0.0); break;
      case Op::kSqrtD: d[in.dst] = SafeSqrt(d[in.a]); break;
      case Op::kExpD: d[in.dst] = Finite(std::exp(d[in.a])); break;
      case Op::kLogD: d[in.dst] = SafeLog(d[in.a]); break;
      case Op::kFloorD: d[in.dst] = std::floor(d[in.a]); break;
      case Op::kCeilD: d[in.dst] = std::ceil(d[in.a]); break;
      case Op::kRoundD: d[in.dst] = std::nearbyint(d[in.a]); break;
      case Op::kSinD: d[in.dst] = std::sin(d[in.a]); break;
      case Op::kCosD: d[in.dst] = std::cos(d[in.a]); break;
      case Op::kTanD: d[in.dst] = Finite(std::tan(d[in.a])); break;

      case Op::kAddI: r[in.dst] = ir::WrapToDType(r[in.a] + r[in.b], in.type); break;
      case Op::kSubI: r[in.dst] = ir::WrapToDType(r[in.a] - r[in.b], in.type); break;
      case Op::kMulI: r[in.dst] = ir::WrapToDType(r[in.a] * r[in.b], in.type); break;
      case Op::kDivI: r[in.dst] = ir::WrapToDType(SafeDivI(r[in.a], r[in.b]), in.type); break;
      case Op::kMinI: r[in.dst] = r[in.a] < r[in.b] ? r[in.a] : r[in.b]; break;
      case Op::kMaxI: r[in.dst] = r[in.a] > r[in.b] ? r[in.a] : r[in.b]; break;
      case Op::kModI: r[in.dst] = ir::WrapToDType(SafeModI(r[in.a], r[in.b]), in.type); break;
      case Op::kRemI: r[in.dst] = ir::WrapToDType(SafeRemI(r[in.a], r[in.b]), in.type); break;
      case Op::kNegI: r[in.dst] = ir::WrapToDType(-r[in.a], in.type); break;
      case Op::kAbsI: r[in.dst] = ir::WrapToDType(r[in.a] < 0 ? -r[in.a] : r[in.a], in.type); break;
      case Op::kSignI: r[in.dst] = (r[in.a] > 0) ? 1 : ((r[in.a] < 0) ? -1 : 0); break;
      case Op::kAndBitsI: r[in.dst] = ir::WrapToDType(r[in.a] & r[in.b], in.type); break;
      case Op::kOrBitsI: r[in.dst] = ir::WrapToDType(r[in.a] | r[in.b], in.type); break;
      case Op::kXorBitsI: r[in.dst] = ir::WrapToDType(r[in.a] ^ r[in.b], in.type); break;
      case Op::kShlI: {
        const auto sh = static_cast<std::uint64_t>(r[in.b] & 63);
        r[in.dst] = ir::WrapToDType(static_cast<std::int64_t>(
                                        static_cast<std::uint64_t>(r[in.a]) << sh),
                                    in.type);
        break;
      }
      case Op::kShrI: {
        const auto sh = r[in.b] & 63;
        r[in.dst] = ir::WrapToDType(r[in.a] >> sh, in.type);
        break;
      }
      case Op::kNotL: r[in.dst] = r[in.a] == 0; break;

      case Op::kLtD: r[in.dst] = d[in.a] < d[in.b]; break;
      case Op::kLeD: r[in.dst] = d[in.a] <= d[in.b]; break;
      case Op::kGtD: r[in.dst] = d[in.a] > d[in.b]; break;
      case Op::kGeD: r[in.dst] = d[in.a] >= d[in.b]; break;
      case Op::kEqD:
        r[in.dst] = d[in.a] == d[in.b];
        if (cmp_trace_ != nullptr && d[in.a] != d[in.b]) {
          cmp_trace_->RecordDouble(d[in.a], d[in.b]);
        }
        break;
      case Op::kNeD:
        r[in.dst] = d[in.a] != d[in.b];
        if (cmp_trace_ != nullptr && d[in.a] != d[in.b]) {
          cmp_trace_->RecordDouble(d[in.a], d[in.b]);
        }
        break;
      case Op::kLtI: r[in.dst] = r[in.a] < r[in.b]; break;
      case Op::kLeI: r[in.dst] = r[in.a] <= r[in.b]; break;
      case Op::kGtI: r[in.dst] = r[in.a] > r[in.b]; break;
      case Op::kGeI: r[in.dst] = r[in.a] >= r[in.b]; break;
      case Op::kEqI:
        r[in.dst] = r[in.a] == r[in.b];
        if (cmp_trace_ != nullptr && r[in.a] != r[in.b]) {
          cmp_trace_->RecordInt(r[in.a], r[in.b]);
        }
        break;
      case Op::kNeI:
        r[in.dst] = r[in.a] != r[in.b];
        if (cmp_trace_ != nullptr && r[in.a] != r[in.b]) {
          cmp_trace_->RecordInt(r[in.a], r[in.b]);
        }
        break;

      case Op::kJmp: {
        const auto target = static_cast<std::size_t>(in.imm);
        if (target <= pc && --back_jumps == 0) return abort_hang();
        pc = target;
        continue;
      }
      case Op::kJmpIfZero:
        if (r[in.a] == 0) {
          const auto target = static_cast<std::size_t>(in.imm);
          if (target <= pc && --back_jumps == 0) return abort_hang();
          pc = target;
          continue;
        }
        break;
      case Op::kJmpIfNotZero:
        if (r[in.a] != 0) {
          const auto target = static_cast<std::size_t>(in.imm);
          if (target <= pc && --back_jumps == 0) return abort_hang();
          pc = target;
          continue;
        }
        break;

      case Op::kLoadInD: d[in.dst] = in_d_[static_cast<std::size_t>(in.imm)]; break;
      case Op::kLoadInI: r[in.dst] = in_i_[static_cast<std::size_t>(in.imm)]; break;
      case Op::kStoreOutD: out_d_[static_cast<std::size_t>(in.imm)] = d[in.a]; break;
      case Op::kStoreOutI: out_i_[static_cast<std::size_t>(in.imm)] = r[in.a]; break;
      case Op::kLoadStateD: d[in.dst] = state_d_[static_cast<std::size_t>(in.imm)]; break;
      case Op::kLoadStateI: r[in.dst] = state_i_[static_cast<std::size_t>(in.imm)]; break;
      case Op::kStoreStateD: state_d_[static_cast<std::size_t>(in.imm)] = d[in.a]; break;
      case Op::kStoreStateI: state_i_[static_cast<std::size_t>(in.imm)] = r[in.a]; break;

      case Op::kCov:
        if (sink != nullptr) sink->Hit(in.imm);
        break;
      case Op::kEdge:
        if (edge_map != nullptr) edge_map[in.imm] = 1;
        break;
      case Op::kMcdcEval:
        if (sink != nullptr) {
          sink->RecordEval(in.imm, static_cast<std::uint32_t>(r[in.a]),
                           static_cast<std::uint32_t>(r[in.b]), static_cast<int>(r[in.aux]));
        }
        break;
      case Op::kMargin:
        if (sink != nullptr) sink->RecordMargin(in.imm, in.b, in.aux, d[in.a]);
        break;
    }
    ++pc;
  }
}

}  // namespace cftcg::vm
