// The bytecode executor.
//
// One Machine instance holds the mutable run state (registers, input/output
// slots, persistent state). Step() executes one model iteration — the
// equivalent of calling the generated Model_step() function in the paper's
// fuzz driver. Reset() is Model_init(): it restores every state slot to its
// initial value (run once per test case).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/sink.hpp"
#include "vm/cmp_trace.hpp"
#include "vm/profile.hpp"
#include "vm/program.hpp"

namespace cftcg::vm {

class Machine {
 public:
  explicit Machine(const Program& program);

  /// Model_init(): restores initial state.
  void Reset();

  /// Fills the input slots from one raw tuple (TupleSize() bytes), exactly
  /// like the generated driver's per-field memcpy (Figure 3 of the paper).
  void SetInputsFromBytes(const std::uint8_t* tuple);

  /// Typed input assignment (used by the baselines and tests).
  void SetInputs(std::span<const ir::Value> values);

  /// Executes one model iteration. `sink` receives model-level coverage
  /// events (may be nullptr when running uninstrumented programs);
  /// `edge_map` (size program.num_edges) receives code-level edges (may be
  /// nullptr). Returns true if the iteration ran to kHalt; false if it was
  /// aborted because the step budget was exhausted (a hang).
  bool Step(coverage::CoverageSink* sink, std::uint8_t* edge_map = nullptr);

  /// Hang containment: caps the number of backward control transfers (loop
  /// iterations) one Step() may take before it is aborted. Straight-line
  /// bytecode cannot exceed the program length, so back edges are the only
  /// way an iteration can run unboundedly. 0 means unlimited.
  void set_step_budget(std::uint64_t max_back_jumps) { step_budget_ = max_back_jumps; }
  [[nodiscard]] std::uint64_t step_budget() const { return step_budget_; }

  [[nodiscard]] ir::Value GetOutput(int index) const;
  [[nodiscard]] int num_outputs() const { return static_cast<int>(program_->output_types.size()); }

  [[nodiscard]] const Program& program() const { return *program_; }

  /// Attaches a comparison-operand trace (libFuzzer-style TORC). Failed
  /// equality comparisons record both operands. Pass nullptr to detach.
  void set_cmp_trace(CmpTrace* trace) { cmp_trace_ = trace; }

  /// Attaches an execution profile: every dispatch bumps one counter (and,
  /// when the strobe is armed, occasionally one sample slot). The caller
  /// sizes the buffers with ExecProfile::AttachTo first. Pass nullptr to
  /// detach; the detached dispatch loop is a separate specialization and
  /// carries no profiling code at all.
  void set_profile(ExecProfile* profile) { profile_ = profile; }

  /// Peek at persistent state (tests / debugging).
  [[nodiscard]] double state_d(int slot) const { return state_d_[static_cast<std::size_t>(slot)]; }
  [[nodiscard]] std::int64_t state_i(int slot) const {
    return state_i_[static_cast<std::size_t>(slot)];
  }

 private:
  /// Dispatch-loop profiling modes, one specialization each: kOff carries no
  /// profiling code at all, kCount is one counter increment per dispatch
  /// (the always-on plane, gated ≤5% overhead by the bench suite), kStrobe
  /// adds the sampling countdown kept in a register.
  enum class ProfileMode { kOff, kCount, kStrobe };
  template <ProfileMode kMode>
  bool StepImpl(coverage::CoverageSink* sink, std::uint8_t* edge_map);

  const Program* program_;
  CmpTrace* cmp_trace_ = nullptr;
  ExecProfile* profile_ = nullptr;
  std::uint64_t step_budget_ = 0;
  std::vector<double> dregs_;
  std::vector<std::int64_t> iregs_;
  std::vector<double> in_d_;
  std::vector<std::int64_t> in_i_;
  std::vector<double> out_d_;
  std::vector<std::int64_t> out_i_;
  std::vector<double> state_d_;
  std::vector<std::int64_t> state_i_;
};

}  // namespace cftcg::vm
