// Comparison-operand tracing (libFuzzer's TORC — Table Of Recent Compares).
//
// The paper builds its fuzzer on LibFuzzer, which instruments comparisons
// and feeds the observed operands back into mutation so equality-guarded
// logic (opcodes, sequence numbers, magic values) becomes reachable. The VM
// records the operands of *failed* equality comparisons into this small
// ring; the mutators use it as a value dictionary.
#pragma once

#include <array>
#include <cstdint>

namespace cftcg::vm {

class CmpTrace {
 public:
  static constexpr std::size_t kCapacity = 64;

  void RecordInt(std::int64_t a, std::int64_t b) {
    ints_[int_idx_++ % kCapacity] = a;
    ints_[int_idx_++ % kCapacity] = b;
    int_count_ = int_count_ < kCapacity ? int_idx_ : kCapacity;
  }
  void RecordDouble(double a, double b) {
    doubles_[double_idx_++ % kCapacity] = a;
    doubles_[double_idx_++ % kCapacity] = b;
    double_count_ = double_count_ < kCapacity ? double_idx_ : kCapacity;
    // Integer-valued operands also feed the integer dictionary: chart/mex
    // comparisons compute in double even when the data came from integer
    // inports, and the dictionary must reach those fields.
    const auto integral = [](double v) {
      return v > -9e15 && v < 9e15 && v == static_cast<double>(static_cast<std::int64_t>(v));
    };
    if (integral(a) && integral(b)) {
      RecordInt(static_cast<std::int64_t>(a), static_cast<std::int64_t>(b));
    }
  }

  [[nodiscard]] std::size_t int_count() const { return int_count_; }
  [[nodiscard]] std::size_t double_count() const { return double_count_; }
  [[nodiscard]] std::int64_t int_at(std::size_t i) const { return ints_[i % kCapacity]; }
  [[nodiscard]] double double_at(std::size_t i) const { return doubles_[i % kCapacity]; }

  void Clear() {
    int_idx_ = int_count_ = 0;
    double_idx_ = double_count_ = 0;
  }

  /// Checkpointable snapshot of the ring. The dictionary feeds future
  /// mutation draws, so bit-identical resume requires restoring it exactly.
  struct State {
    std::array<std::int64_t, kCapacity> ints{};
    std::array<double, kCapacity> doubles{};
    std::uint64_t int_idx = 0;
    std::uint64_t int_count = 0;
    std::uint64_t double_idx = 0;
    std::uint64_t double_count = 0;
  };

  [[nodiscard]] State Save() const {
    State s;
    s.ints = ints_;
    s.doubles = doubles_;
    s.int_idx = int_idx_;
    s.int_count = int_count_;
    s.double_idx = double_idx_;
    s.double_count = double_count_;
    return s;
  }
  void Restore(const State& s) {
    ints_ = s.ints;
    doubles_ = s.doubles;
    int_idx_ = static_cast<std::size_t>(s.int_idx);
    int_count_ = static_cast<std::size_t>(s.int_count);
    double_idx_ = static_cast<std::size_t>(s.double_idx);
    double_count_ = static_cast<std::size_t>(s.double_count);
  }

 private:
  std::array<std::int64_t, kCapacity> ints_{};
  std::array<double, kCapacity> doubles_{};
  std::size_t int_idx_ = 0;
  std::size_t int_count_ = 0;
  std::size_t double_idx_ = 0;
  std::size_t double_count_ = 0;
};

}  // namespace cftcg::vm
