#include "vm/program.hpp"

#include "support/strings.hpp"

namespace cftcg::vm {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kHalt: return "halt";
    case Op::kLoadConstD: return "ldc.d";
    case Op::kLoadConstI: return "ldc.i";
    case Op::kMovD: return "mov.d";
    case Op::kMovI: return "mov.i";
    case Op::kCvtDToI: return "cvt.d2i";
    case Op::kCvtIToD: return "cvt.i2d";
    case Op::kWrapI: return "wrap.i";
    case Op::kBoolD: return "bool.d";
    case Op::kBoolI: return "bool.i";
    case Op::kAddD: return "add.d";
    case Op::kSubD: return "sub.d";
    case Op::kMulD: return "mul.d";
    case Op::kDivD: return "div.d";
    case Op::kMinD: return "min.d";
    case Op::kMaxD: return "max.d";
    case Op::kModD: return "mod.d";
    case Op::kRemD: return "rem.d";
    case Op::kPowD: return "pow.d";
    case Op::kAtan2D: return "atan2.d";
    case Op::kNegD: return "neg.d";
    case Op::kAbsD: return "abs.d";
    case Op::kSignD: return "sign.d";
    case Op::kSqrtD: return "sqrt.d";
    case Op::kExpD: return "exp.d";
    case Op::kLogD: return "log.d";
    case Op::kFloorD: return "floor.d";
    case Op::kCeilD: return "ceil.d";
    case Op::kRoundD: return "round.d";
    case Op::kSinD: return "sin.d";
    case Op::kCosD: return "cos.d";
    case Op::kTanD: return "tan.d";
    case Op::kAddI: return "add.i";
    case Op::kSubI: return "sub.i";
    case Op::kMulI: return "mul.i";
    case Op::kDivI: return "div.i";
    case Op::kMinI: return "min.i";
    case Op::kMaxI: return "max.i";
    case Op::kModI: return "mod.i";
    case Op::kRemI: return "rem.i";
    case Op::kNegI: return "neg.i";
    case Op::kAbsI: return "abs.i";
    case Op::kSignI: return "sign.i";
    case Op::kAndBitsI: return "and.i";
    case Op::kOrBitsI: return "or.i";
    case Op::kXorBitsI: return "xor.i";
    case Op::kShlI: return "shl.i";
    case Op::kShrI: return "shr.i";
    case Op::kNotL: return "not.l";
    case Op::kLtD: return "lt.d";
    case Op::kLeD: return "le.d";
    case Op::kGtD: return "gt.d";
    case Op::kGeD: return "ge.d";
    case Op::kEqD: return "eq.d";
    case Op::kNeD: return "ne.d";
    case Op::kLtI: return "lt.i";
    case Op::kLeI: return "le.i";
    case Op::kGtI: return "gt.i";
    case Op::kGeI: return "ge.i";
    case Op::kEqI: return "eq.i";
    case Op::kNeI: return "ne.i";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfZero: return "jz";
    case Op::kJmpIfNotZero: return "jnz";
    case Op::kLoadInD: return "ldin.d";
    case Op::kLoadInI: return "ldin.i";
    case Op::kStoreOutD: return "stout.d";
    case Op::kStoreOutI: return "stout.i";
    case Op::kLoadStateD: return "ldst.d";
    case Op::kLoadStateI: return "ldst.i";
    case Op::kStoreStateD: return "stst.d";
    case Op::kStoreStateI: return "stst.i";
    case Op::kCov: return "cov";
    case Op::kEdge: return "edge";
    case Op::kMcdcEval: return "mcdc";
    case Op::kMargin: return "margin";
  }
  return "?";
}

std::string Disassemble(const Program& program) {
  std::string out;
  out += StrFormat("; dregs=%d iregs=%d state_d=%zu state_i=%zu inputs=%zu outputs=%zu edges=%d\n",
                   program.num_dregs, program.num_iregs, program.state_d.size(),
                   program.state_i.size(), program.input_types.size(),
                   program.output_types.size(), program.num_edges);
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    const Insn& in = program.code[pc];
    out += StrFormat("%4zu  %-8s dst=%d a=%d b=%d imm=%d aux=%d dimm=%s type=%s\n", pc,
                     std::string(OpName(in.op)).c_str(), in.dst, in.a, in.b, in.imm, in.aux,
                     DoubleToString(in.dimm).c_str(), std::string(ir::DTypeName(in.type)).c_str());
  }
  return out;
}

}  // namespace cftcg::vm
