// Raw VM execution-profile buffers (the campaign self-profiler's VM plane).
//
// An ExecProfile is a plain counter buffer a Machine writes into while it
// dispatches: one dispatch count per instruction (always cheap — one add per
// dispatch), plus an opt-in instruction-count strobe that takes one "sample"
// every strobe_period dispatches without ever reading a clock. Sampled
// dispatch positions are a deterministic function of the executed
// instruction stream, so profiles merge and resume exactly like the other
// campaign counters.
//
// The buffers deliberately live VM-side with no aggregation logic; the
// obs::profiler layer folds them against Program::insn_block /
// Program::block_names into per-block and per-opcode attributions.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace cftcg::vm {

struct ExecProfile {
  /// Dispatch count per instruction index (size = program.code.size()).
  std::vector<std::uint64_t> insn_counts;
  /// Strobe samples per instruction index; only advanced when
  /// strobe_period != 0 (the --profile timed mode).
  std::vector<std::uint64_t> insn_samples;
  /// Completed-or-aborted Step() calls (model iterations started).
  std::uint64_t steps = 0;
  /// Take one sample every N dispatches; 0 disables sampling (count-only).
  /// A prime default avoids resonating with short model loops.
  std::uint64_t strobe_period = 0;
  /// Dispatches until the next sample. Cross-Step state: it is part of the
  /// campaign checkpoint so a resumed profile is bit-identical.
  std::uint64_t strobe_countdown = 0;

  /// Sizes the buffers for `program` (idempotent; preserves counts when the
  /// sizes already match) and arms the strobe countdown.
  void AttachTo(const Program& program) {
    insn_counts.resize(program.code.size(), 0);
    insn_samples.resize(program.code.size(), 0);
    if (strobe_period != 0 && strobe_countdown == 0) strobe_countdown = strobe_period;
  }

  /// Total instruction dispatches across the program (Σ insn_counts).
  [[nodiscard]] std::uint64_t TotalDispatches() const {
    std::uint64_t total = 0;
    for (std::uint64_t c : insn_counts) total += c;
    return total;
  }

  /// Element-wise merge (parallel workers, worker-id order). Buffers must
  /// describe the same program; shorter buffers are grown to match.
  void MergeFrom(const ExecProfile& other) {
    if (insn_counts.size() < other.insn_counts.size()) {
      insn_counts.resize(other.insn_counts.size(), 0);
    }
    for (std::size_t i = 0; i < other.insn_counts.size(); ++i) {
      insn_counts[i] += other.insn_counts[i];
    }
    if (insn_samples.size() < other.insn_samples.size()) {
      insn_samples.resize(other.insn_samples.size(), 0);
    }
    for (std::size_t i = 0; i < other.insn_samples.size(); ++i) {
      insn_samples[i] += other.insn_samples[i];
    }
    steps += other.steps;
  }
};

}  // namespace cftcg::vm
