// Bytecode program representation.
//
// The lowering in src/codegen compiles a scheduled model into this register
// bytecode; the Machine in machine.hpp executes it. The bytecode plays the
// role of the paper's Clang-compiled fuzz code: straight-line typed register
// operations with real conditional jumps at every model decision, plus
// explicit coverage instructions inserted by the branch instrumentation.
//
// Register model:
//   * dregs: double registers (floating signals; kSingle is computed in
//     double precision — see DESIGN.md);
//   * iregs: int64 registers (integer/boolean signals, pre-wrapped to the
//     declared width by the instruction's `type`);
//   * in_d/in_i: per-field input slots filled by the driver from one tuple;
//   * out_d/out_i: root outport slots;
//   * state_d/state_i: persistent state (delays, chart state, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/spec.hpp"
#include "ir/dtype.hpp"
#include "ir/value.hpp"

namespace cftcg::vm {

enum class Op : std::uint8_t {
  kHalt,
  // Constants and moves.
  kLoadConstD,  // dregs[dst] = dimm
  kLoadConstI,  // iregs[dst] = (int64)dimm (exact: all model ints fit 2^53)
  kMovD,        // dregs[dst] = dregs[a]
  kMovI,        // iregs[dst] = iregs[a]
  // Conversions.
  kCvtDToI,  // iregs[dst] = wrap(trunc(dregs[a]), type)
  kCvtIToD,  // dregs[dst] = (double)iregs[a]
  kWrapI,    // iregs[dst] = wrap(iregs[a], type)
  kBoolD,    // iregs[dst] = dregs[a] != 0
  kBoolI,    // iregs[dst] = iregs[a] != 0
  // Double arithmetic.
  kAddD, kSubD, kMulD, kDivD, kMinD, kMaxD, kModD, kRemD, kPowD, kAtan2D,
  kNegD, kAbsD, kSignD, kSqrtD, kExpD, kLogD, kFloorD, kCeilD, kRoundD,
  kSinD, kCosD, kTanD,
  // Integer arithmetic (results wrapped to `type`).
  kAddI, kSubI, kMulI, kDivI, kMinI, kMaxI, kModI, kRemI, kNegI, kAbsI, kSignI,
  kAndBitsI, kOrBitsI, kXorBitsI, kShlI, kShrI,
  kNotL,  // iregs[dst] = iregs[a] == 0
  // Comparisons (-> iregs 0/1).
  kLtD, kLeD, kGtD, kGeD, kEqD, kNeD,
  kLtI, kLeI, kGtI, kGeI, kEqI, kNeI,
  // Control flow.
  kJmp,           // pc = imm
  kJmpIfZero,     // if (!iregs[a]) pc = imm
  kJmpIfNotZero,  // if (iregs[a]) pc = imm
  // I/O and state.
  kLoadInD,     // dregs[dst] = in_d[imm]
  kLoadInI,     // iregs[dst] = in_i[imm]
  kStoreOutD,   // out_d[imm] = dregs[a]
  kStoreOutI,   // out_i[imm] = iregs[a]
  kLoadStateD,  // dregs[dst] = state_d[imm]
  kLoadStateI,  // iregs[dst] = state_i[imm]
  kStoreStateD, // state_d[imm] = dregs[a]
  kStoreStateI, // state_i[imm] = iregs[a]
  // Coverage instrumentation.
  kCov,       // sink->Hit(imm)                       [model-level]
  kEdge,      // edge_map[imm] = 1                    [code-level]
  kMcdcEval,  // sink->RecordEval(imm, iregs[a], iregs[b], iregs[aux])
  kMargin,    // sink->RecordMargin(imm, b, aux, dregs[a])
};

struct Insn {
  Op op = Op::kHalt;
  ir::DType type = ir::DType::kDouble;  // wrap width for integer ops
  std::int32_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t imm = 0;   // jump target / slot / decision id
  std::int32_t aux = 0;
  double dimm = 0.0;
};

struct StateSlot {
  bool is_float = true;
  double init = 0.0;       // initial value (also used for int slots)
  ir::DType type = ir::DType::kDouble;
  std::string name;        // "<block path>#<k>" for debugging
};

struct Program {
  std::vector<Insn> code;
  int num_dregs = 0;
  int num_iregs = 0;
  std::vector<StateSlot> state_d;
  std::vector<StateSlot> state_i;
  std::vector<ir::DType> input_types;   // tuple fields, root inport order
  std::vector<ir::DType> output_types;  // root outports
  int num_edges = 0;                    // code-level edge slots (kEdge)

  // Block attribution (the self-profiler's VM plane): for every instruction,
  // the index into block_names of the model block whose lowering emitted it,
  // or -1 for scheduler glue (prologue jumps, the final kHalt). Parallel to
  // `code`; empty for hand-built programs, which profile as all-glue.
  std::vector<std::int32_t> insn_block;
  std::vector<std::string> block_names;  // block paths, first-emission order

  /// Bytes of one input tuple (sum of input field sizes).
  [[nodiscard]] std::size_t TupleSize() const {
    std::size_t total = 0;
    for (auto t : input_types) total += ir::DTypeSize(t);
    return total;
  }
};

std::string_view OpName(Op op);

/// Human-readable disassembly (debugging, golden tests).
std::string Disassemble(const Program& program);

}  // namespace cftcg::vm
