// The CFTCG pipeline — the library's main entry point.
//
// Ties the stages of Figure 2 together:
//   model file --parse--> Model --analyze+schedule--> ScheduledModel
//     --lower--> instrumented program (+ fuzz-only program, + C text)
//     --model-oriented fuzzing loop--> test cases + coverage report
//
// A CompiledModel owns everything whose lifetime the later stages need
// (the Model, the ScheduledModel with compiled mex programs, and the
// lowered programs), so callers hold one object.
#pragma once

#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/slice.hpp"
#include "codegen/cemit.hpp"
#include "codegen/lower.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/parallel.hpp"
#include "fuzz/supervisor.hpp"
#include "ir/model.hpp"
#include "sched/schedule.hpp"
#include "support/status.hpp"
#include "vm/program.hpp"

namespace cftcg {

/// A fully processed model: analyzed, scheduled, instrumented and lowered.
class CompiledModel {
 public:
  static Result<std::unique_ptr<CompiledModel>> FromModel(std::unique_ptr<ir::Model> model);
  static Result<std::unique_ptr<CompiledModel>> FromXml(const std::string& xml_text);
  static Result<std::unique_ptr<CompiledModel>> FromFile(const std::string& path);

  [[nodiscard]] const ir::Model& model() const { return *model_; }
  [[nodiscard]] const sched::ScheduledModel& scheduled() const { return scheduled_; }
  [[nodiscard]] const coverage::CoverageSpec& spec() const { return scheduled_.spec; }

  /// Model-level instrumented program (the CFTCG fuzzing target).
  [[nodiscard]] const vm::Program& instrumented() const { return instrumented_; }
  /// Edge-instrumented, model-uninstrumented program ("Fuzz Only" target);
  /// built lazily on first use.
  const vm::Program& fuzz_only();
  /// Margin-recording program (constraint baseline); built lazily.
  const vm::Program& with_margins();

  /// Static model analysis (interval propagation, lint, justified
  /// objectives); computed lazily on first use and cached.
  const analysis::ModelAnalysis& analysis();

  /// Per-objective dependence slices (analysis/slice.hpp); computed lazily
  /// on first use and cached.
  const analysis::SliceReport& slices();

  /// Projects slices() into the plain-data focus plan `fuzz --focus`
  /// consumes (FuzzerOptions::focus points at a caller-owned copy).
  [[nodiscard]] fuzz::FocusPlan BuildFocusPlan();

  /// The generated fuzzing code as C text (Figure 3 + Figure 4 artifacts).
  Result<std::string> EmitFuzzingCode() const;

  /// Runs the CFTCG fuzzing loop.
  fuzz::CampaignResult Fuzz(const fuzz::FuzzerOptions& options, const fuzz::FuzzBudget& budget);

  /// Runs the parallel multi-worker fuzzing loop (fuzz/parallel.hpp).
  /// parallel.num_workers <= 1 delegates to Fuzz() — the sequential engine,
  /// which additionally supports margin recording and per-campaign
  /// heartbeats — and wraps its result.
  fuzz::ParallelCampaignResult FuzzParallel(const fuzz::FuzzerOptions& options,
                                            const fuzz::FuzzBudget& budget,
                                            const fuzz::ParallelOptions& parallel);

  /// Runs the crash-isolated supervised engine (fuzz/supervisor.hpp): every
  /// worker in its own process, with fault detection, quarantine and
  /// respawn. Unlike FuzzParallel there is no sequential delegation —
  /// one-worker campaigns still fork, so the isolation boundary (and its
  /// determinism guarantee against the threaded engine) always holds.
  fuzz::SupervisedCampaignResult FuzzSupervised(const fuzz::FuzzerOptions& options,
                                                const fuzz::FuzzBudget& budget,
                                                const fuzz::SupervisorOptions& supervise);

  /// Table 2 statistics.
  [[nodiscard]] int NumBranches() const { return scheduled_.NumBranchOutcomes(); }
  [[nodiscard]] std::size_t NumBlocks() const { return model_->TotalBlockCount(); }

 private:
  CompiledModel() = default;

  std::unique_ptr<ir::Model> model_;
  sched::ScheduledModel scheduled_;
  vm::Program instrumented_;
  std::unique_ptr<vm::Program> fuzz_only_;
  std::unique_ptr<vm::Program> with_margins_;
  std::unique_ptr<analysis::ModelAnalysis> analysis_;
  std::unique_ptr<analysis::SliceReport> slices_;
};

}  // namespace cftcg
