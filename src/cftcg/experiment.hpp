// Shared experiment runner for the benchmark harness.
//
// Every table/figure bench runs (model x tool x budget x repetitions) cells
// through this one entry point so configurations stay comparable.
#pragma once

#include <string>
#include <vector>

#include "cftcg/pipeline.hpp"
#include "fuzz/fuzzer.hpp"
#include "obs/telemetry.hpp"

namespace cftcg {

enum class Tool {
  kSldv,       // constraint-solving baseline (bounded goal solver)
  kSimCoTest,  // simulation-based baseline (signal diversity on interpreter)
  kCftcg,      // the paper's tool: model-oriented fuzzing loop
  kFuzzOnly,   // ablation: generic fuzzing of uninstrumented code (Fig. 8)
  kCftcgNoIdc, // ablation: CFTCG without Iteration Difference Coverage energy
  kCftcgHybrid,// §6 future work: fuzzing first, constraint solving on the
               // residual uncovered objectives (70/30 budget split)
};
std::string_view ToolName(Tool tool);

/// Runs one tool on one compiled model under a budget. `telemetry` (may be
/// null) is honored by the fuzzing-loop tools (CFTCG, FuzzOnly, CFTCG-noIDC
/// and the fuzzing phase of the hybrid); the baselines ignore it. Every
/// tool run is additionally wrapped in a `tool.<name>` phase timer.
/// `provenance`/`margins` (may be null) attach per-objective first-hit
/// attribution and residual-distance recording to the same fuzzing-loop
/// tools; margins force the margin-instrumented lowering for the campaign.
fuzz::CampaignResult RunTool(CompiledModel& cm, Tool tool, const fuzz::FuzzBudget& budget,
                             std::uint64_t seed, obs::CampaignTelemetry* telemetry = nullptr,
                             coverage::ProvenanceMap* provenance = nullptr,
                             coverage::MarginRecorder* margins = nullptr);

struct AveragedMetrics {
  double decision_pct = 0;
  double condition_pct = 0;
  double mcdc_pct = 0;
  double executions = 0;
  double iterations = 0;
  /// Mean executions/second, read from the per-repetition telemetry
  /// snapshot (`fuzz.exec_per_s`); falls back to executions/elapsed for
  /// tools that do not emit fuzzer telemetry.
  double exec_per_s = 0;
};

/// Repeats RunTool with seeds seed+0..reps-1 and averages the metrics
/// (the paper repeats 10x for the randomized tools). Each repetition runs
/// against a private obs::Registry and the averages are computed from the
/// same registry snapshots the CLI and benches export.
AveragedMetrics RunAveraged(CompiledModel& cm, Tool tool, const fuzz::FuzzBudget& budget,
                            std::uint64_t seed, int reps);

}  // namespace cftcg
