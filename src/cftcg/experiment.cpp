#include "cftcg/experiment.hpp"

#include "obs/timer.hpp"
#include "simcotest/simcotest.hpp"
#include "sldv/goal_solver.hpp"
#include "support/strings.hpp"

namespace cftcg {

std::string_view ToolName(Tool tool) {
  switch (tool) {
    case Tool::kSldv: return "SLDV";
    case Tool::kSimCoTest: return "SimCoTest";
    case Tool::kCftcg: return "CFTCG";
    case Tool::kFuzzOnly: return "FuzzOnly";
    case Tool::kCftcgNoIdc: return "CFTCG-noIDC";
    case Tool::kCftcgHybrid: return "CFTCG+solver";
  }
  return "?";
}

namespace {

/// The hybrid pipeline of the paper's §6 future work: run the fuzzing loop
/// for most of the budget, then point the constraint-style goal solver at
/// whatever decision outcomes remain uncovered (inter-inport-correlated
/// guards are exactly where fuzzing plateaus, §5).
fuzz::CampaignResult RunHybrid(CompiledModel& cm, const fuzz::FuzzBudget& budget,
                               std::uint64_t seed, obs::CampaignTelemetry* telemetry,
                               coverage::ProvenanceMap* provenance,
                               coverage::MarginRecorder* margins) {
  fuzz::FuzzerOptions fo;
  fo.seed = seed;
  fo.telemetry = telemetry;
  fo.provenance = provenance;
  fo.margins = margins;
  const vm::Program& target = margins != nullptr ? cm.with_margins() : cm.instrumented();
  fuzz::Fuzzer fuzzer(target, cm.spec(), fo);
  fuzz::FuzzBudget fuzz_budget;
  fuzz_budget.wall_seconds = budget.wall_seconds * 0.7;
  fuzz_budget.max_executions = budget.max_executions;
  fuzz::CampaignResult merged = fuzzer.Run(fuzz_budget);

  sldv::SolverOptions so;
  so.seed = seed;
  so.horizon = 8;
  sldv::GoalSolver solver(cm.with_margins(), cm.spec(), so);
  solver.SeedInputRanges(cm.analysis().inport_ranges);
  solver.SeedCoverage(fuzzer.sink().total());
  fuzz::FuzzBudget solve_budget;
  solve_budget.wall_seconds = budget.wall_seconds * 0.3;
  const auto solved = solver.Run(solve_budget);

  for (auto tc : solved.test_cases) {
    tc.time_s += fuzz_budget.wall_seconds;
    merged.test_cases.push_back(std::move(tc));
  }
  merged.executions += solved.executions;
  merged.model_iterations += solved.model_iterations;
  merged.elapsed_s += solved.elapsed_s;

  // Union coverage of both phases for the report.
  DynamicBitset total = fuzzer.sink().total();
  total.MergeAndCountNew(solver.sink().total());
  auto evals = fuzzer.sink().evals();
  for (std::size_t d = 0; d < evals.size(); ++d) {
    for (auto e : solver.sink().evals()[d]) evals[d].insert(e);
  }
  merged.report = coverage::ComputeReportFrom(cm.spec(), total, evals);
  return merged;
}

}  // namespace

fuzz::CampaignResult RunTool(CompiledModel& cm, Tool tool, const fuzz::FuzzBudget& budget,
                             std::uint64_t seed, obs::CampaignTelemetry* telemetry,
                             coverage::ProvenanceMap* provenance,
                             coverage::MarginRecorder* margins) {
  obs::ScopedTimer span(StrFormat("tool.%s", std::string(ToolName(tool)).c_str()));
  switch (tool) {
    case Tool::kSldv: {
      sldv::SolverOptions options;
      options.seed = seed;
      sldv::GoalSolver solver(cm.with_margins(), cm.spec(), options);
      solver.SeedInputRanges(cm.analysis().inport_ranges);
      return solver.Run(budget);
    }
    case Tool::kSimCoTest: {
      simcotest::SimCoTestOptions options;
      options.seed = seed;
      simcotest::SimCoTest tool_impl(cm.scheduled(), options);
      return tool_impl.Run(budget);
    }
    case Tool::kCftcg: {
      fuzz::FuzzerOptions options;
      options.seed = seed;
      options.model_oriented = true;
      options.telemetry = telemetry;
      options.provenance = provenance;
      options.margins = margins;
      return cm.Fuzz(options, budget);
    }
    case Tool::kFuzzOnly: {
      fuzz::FuzzerOptions options;
      options.seed = seed;
      options.model_oriented = false;
      options.telemetry = telemetry;
      options.provenance = provenance;
      options.margins = margins;
      return cm.Fuzz(options, budget);
    }
    case Tool::kCftcgNoIdc: {
      fuzz::FuzzerOptions options;
      options.seed = seed;
      options.model_oriented = true;
      options.use_idc_energy = false;
      options.telemetry = telemetry;
      options.provenance = provenance;
      options.margins = margins;
      return cm.Fuzz(options, budget);
    }
    case Tool::kCftcgHybrid: return RunHybrid(cm, budget, seed, telemetry, provenance, margins);
  }
  return {};
}

AveragedMetrics RunAveraged(CompiledModel& cm, Tool tool, const fuzz::FuzzBudget& budget,
                            std::uint64_t seed, int reps) {
  AveragedMetrics avg;
  for (int r = 0; r < reps; ++r) {
    obs::Registry registry;
    obs::CampaignTelemetry telemetry;
    telemetry.registry = &registry;
    const auto result =
        RunTool(cm, tool, budget, seed + static_cast<std::uint64_t>(r), &telemetry);
    const obs::RegistrySnapshot snap = registry.Snapshot();
    avg.decision_pct += result.report.DecisionPct();
    avg.condition_pct += result.report.ConditionPct();
    avg.mcdc_pct += result.report.McdcPct();
    avg.executions += static_cast<double>(result.executions);
    avg.iterations += static_cast<double>(result.model_iterations);
    avg.exec_per_s += snap.GaugeValue(
        "fuzz.exec_per_s",
        result.elapsed_s > 0 ? static_cast<double>(result.executions) / result.elapsed_s : 0);
  }
  const double n = reps > 0 ? reps : 1;
  avg.decision_pct /= n;
  avg.condition_pct /= n;
  avg.mcdc_pct /= n;
  avg.executions /= n;
  avg.iterations /= n;
  avg.exec_per_s /= n;
  return avg;
}

}  // namespace cftcg
