#include "cftcg/pipeline.hpp"

#include "fuzz/checkpoint.hpp"
#include "obs/timer.hpp"
#include "parser/model_io.hpp"

namespace cftcg {

// Every pipeline stage runs under an obs::ScopedTimer recording a
// `phase.<name>.seconds` histogram in the global registry (parse →
// analyze+schedule → codegen → vm_load → fuzz); the CLI's --metrics flag
// dumps them, and `cftcg trace-summary` reads the matching `phase` trace
// events.

Result<std::unique_ptr<CompiledModel>> CompiledModel::FromModel(
    std::unique_ptr<ir::Model> model) {
  auto compiled = std::unique_ptr<CompiledModel>(new CompiledModel());
  compiled->model_ = std::move(model);
  {
    obs::ScopedTimer span("analyze_schedule");
    auto scheduled = sched::AnalyzeAndSchedule(*compiled->model_);
    if (!scheduled.ok()) return scheduled.status();
    compiled->scheduled_ = scheduled.take();
  }
  obs::ScopedTimer span("codegen");
  codegen::LoweringOptions opts;
  opts.model_instrumentation = true;
  auto program = codegen::LowerToBytecode(compiled->scheduled_, opts);
  if (!program.ok()) return program.status();
  compiled->instrumented_ = program.take();
  return compiled;
}

Result<std::unique_ptr<CompiledModel>> CompiledModel::FromXml(const std::string& xml_text) {
  obs::ScopedTimer span("parse");
  auto model = parser::LoadModel(xml_text);
  if (!model.ok()) return model.status();
  span.Stop();
  return FromModel(model.take());
}

Result<std::unique_ptr<CompiledModel>> CompiledModel::FromFile(const std::string& path) {
  obs::ScopedTimer span("parse");
  auto model = parser::LoadModelFile(path);
  if (!model.ok()) return model.status();
  span.Stop();
  return FromModel(model.take());
}

const vm::Program& CompiledModel::fuzz_only() {
  if (!fuzz_only_) {
    obs::ScopedTimer span("codegen");
    codegen::LoweringOptions opts;
    opts.model_instrumentation = false;
    opts.edge_instrumentation = true;
    auto program = codegen::LowerToBytecode(scheduled_, opts);
    // Lowering cannot fail in ways analysis did not already reject; assert
    // via value() in debug and fall back to the instrumented program.
    if (program.ok()) {
      fuzz_only_ = std::make_unique<vm::Program>(program.take());
    } else {
      fuzz_only_ = std::make_unique<vm::Program>(instrumented_);
    }
  }
  return *fuzz_only_;
}

const vm::Program& CompiledModel::with_margins() {
  if (!with_margins_) {
    obs::ScopedTimer span("codegen");
    codegen::LoweringOptions opts;
    opts.model_instrumentation = true;
    opts.record_margins = true;
    auto program = codegen::LowerToBytecode(scheduled_, opts);
    if (program.ok()) {
      with_margins_ = std::make_unique<vm::Program>(program.take());
    } else {
      with_margins_ = std::make_unique<vm::Program>(instrumented_);
    }
  }
  return *with_margins_;
}

const analysis::ModelAnalysis& CompiledModel::analysis() {
  if (!analysis_) {
    obs::ScopedTimer span("static_analysis");
    analysis_ = std::make_unique<analysis::ModelAnalysis>(
        analysis::AnalyzeScheduledModel(scheduled_));
  }
  return *analysis_;
}

const analysis::SliceReport& CompiledModel::slices() {
  if (!slices_) {
    obs::ScopedTimer span("slice_analysis");
    slices_ = std::make_unique<analysis::SliceReport>(analysis::ComputeSlices(scheduled_));
  }
  return *slices_;
}

fuzz::FocusPlan CompiledModel::BuildFocusPlan() {
  const analysis::SliceReport& sr = slices();
  fuzz::FocusPlan plan;
  plan.slot_fields.resize(sr.slices.size());
  plan.slot_component.assign(sr.slices.size(), -1);
  plan.num_components = sr.num_components;
  for (std::size_t i = 0; i < sr.slices.size(); ++i) {
    const analysis::ObjectiveSlice& sl = sr.slices[i];
    plan.slot_component[i] = sl.component;
    plan.slot_fields[i].reserve(sl.fields.size());
    for (int f : sl.fields) plan.slot_fields[i].push_back(static_cast<std::size_t>(f));
  }
  return plan;
}

Result<std::string> CompiledModel::EmitFuzzingCode() const {
  codegen::CEmitOptions opts;
  return codegen::EmitC(scheduled_, opts);
}

fuzz::CampaignResult CompiledModel::Fuzz(const fuzz::FuzzerOptions& options,
                                         const fuzz::FuzzBudget& budget) {
  const vm::Program* fo = options.model_oriented ? nullptr : &fuzz_only();
  // Residual diagnostics need kMargin instructions; the margin lowering is
  // coverage-identical to the plain instrumented program, so swapping it in
  // only when a MarginRecorder is attached keeps the default hot path free
  // of margin dispatch.
  const vm::Program& target = options.margins != nullptr ? with_margins() : instrumented_;
  obs::ScopedTimer vm_span("vm_load");
  fuzz::Fuzzer fuzzer(target, spec(), options, fo);
  vm_span.Stop();
  obs::ScopedTimer span("fuzz");
  return fuzzer.Run(budget);
}

fuzz::ParallelCampaignResult CompiledModel::FuzzParallel(const fuzz::FuzzerOptions& options,
                                                         const fuzz::FuzzBudget& budget,
                                                         const fuzz::ParallelOptions& parallel) {
  if (parallel.num_workers <= 1) {
    fuzz::ParallelCampaignResult out;
    fuzz::FuzzerOptions seq = options;
    // A one-worker checkpoint resumes through the sequential engine.
    if (parallel.resume != nullptr && !parallel.resume->workers.empty()) {
      seq.resume = &parallel.resume->workers[0];
    }
    out.merged = Fuzz(seq, budget);
    out.interrupted = out.merged.interrupted;
    out.worker_executions.push_back(out.merged.executions);
    return out;
  }
  const vm::Program* fo = options.model_oriented ? nullptr : &fuzz_only();
  obs::ScopedTimer vm_span("vm_load");
  fuzz::ParallelFuzzer fuzzer(instrumented_, spec(), options, parallel, fo);
  vm_span.Stop();
  obs::ScopedTimer span("fuzz");
  return fuzzer.Run(budget);
}

fuzz::SupervisedCampaignResult CompiledModel::FuzzSupervised(
    const fuzz::FuzzerOptions& options, const fuzz::FuzzBudget& budget,
    const fuzz::SupervisorOptions& supervise) {
  const vm::Program* fo = options.model_oriented ? nullptr : &fuzz_only();
  obs::ScopedTimer vm_span("vm_load");
  fuzz::Supervisor supervisor(instrumented_, spec(), options, supervise, fo);
  vm_span.Stop();
  obs::ScopedTimer span("fuzz");
  return supervisor.Run(budget);
}

}  // namespace cftcg
