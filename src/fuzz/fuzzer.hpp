// The model-oriented fuzzing loop (paper §3.2) — a libFuzzer-style
// in-process loop over the compiled model program.
//
// Two configurations share this engine:
//   * CFTCG mode (model_oriented = true): the program carries model-level
//     branch instrumentation; feedback is the model branch space; mutation
//     is field-wise over tuples; corpus scheduling uses the Iteration
//     Difference Coverage metric of Algorithm 1.
//   * Fuzz Only mode (model_oriented = false): the program is compiled
//     without model instrumentation (boolean logic branch-free) but with
//     code-level edge marks; feedback is the edge map; mutation is generic
//     byte-level. Saved test cases are *measured* on the instrumented
//     program afterwards — just like the paper converts test cases and
//     measures with Simulink's coverage tooling — so both modes report in
//     the same model-coverage space (Figure 8). Measurement re-runs are
//     accounted separately (measure_iterations) so throughput numbers only
//     count iterations of the fuzzing target.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coverage/provenance.hpp"
#include "coverage/report.hpp"
#include "coverage/sink.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/focus.hpp"
#include "fuzz/mutator.hpp"
#include "obs/clock.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "vm/machine.hpp"

namespace cftcg::obs {
class CampaignStatusBoard;  // obs/monitor.hpp: live-monitoring status board
}

namespace cftcg::fuzz {

struct FuzzerState;        // checkpoint.hpp: full resumable state of one Fuzzer
struct CampaignCheckpoint; // checkpoint.hpp: on-disk campaign checkpoint

struct FuzzerOptions {
  std::uint64_t seed = 1;
  bool model_oriented = true;     // field-wise mutation + model feedback + IDC
  bool use_idc_energy = true;     // Algorithm 1 corpus scheduling (ablation switch)
  std::size_t max_tuples = 256;   // length cap per input, in tuples (~libFuzzer max_len)
  std::size_t seed_inputs = 8;    // initial random corpus entries
  /// Optional per-inport value ranges (§5 of the paper: testers can narrow
  /// the random exploration space of over-wide integer inports).
  std::vector<FieldRange> field_ranges;
  /// Optional static-analysis verdicts (src/analysis). Proved-unreachable
  /// slots are dropped from the campaign's stopping frontier — the fuzzer
  /// stops early once every *reachable* slot is covered — and the final
  /// report carries justified-objective accounting. Not owned; must outlive
  /// the Fuzzer. Null disables both.
  const coverage::JustificationSet* justifications = nullptr;
  /// Optional focused-mutation plan (`fuzz --focus`): per-objective
  /// dependence slices computed by analysis/slice.hpp and projected into
  /// plain data (focus.hpp). When set (CFTCG mode only), the field-edit
  /// strategies restrict their target fields to the current frontier
  /// objective's slice; null (the default) leaves the mutation schedule
  /// bit-identical to builds without focus. Not owned; must outlive the
  /// Fuzzer.
  const FocusPlan* focus = nullptr;
  /// Optional per-inport "interesting" ranges harvested by the analyzer
  /// (ModelAnalysis::inport_ranges). Used ONLY to seed the corpus with
  /// boundary-value inputs — never as mutation clamps, which would
  /// unsoundly restrict the search space. One entry per inport field;
  /// inactive entries are skipped.
  std::vector<FieldRange> boundary_seed_ranges;
  /// Optional campaign telemetry (metrics registry, JSONL trace, periodic
  /// heartbeat/status line). Not owned; must outlive the Fuzzer. Null keeps
  /// the loop telemetry-free.
  obs::CampaignTelemetry* telemetry = nullptr;
  /// Optional live status board (obs/monitor.hpp, the `fuzz --serve`
  /// endpoints): the engine stamps per-execution progress into its worker
  /// lane (two relaxed atomic stores) and publishes heartbeat aggregates.
  /// Not owned; must outlive the Fuzzer. Null (default) keeps the loop
  /// entirely monitoring-free.
  obs::CampaignStatusBoard* status_board = nullptr;
  /// This engine's lane on the status board (parallel workers use 0..N-1).
  int status_worker = 0;
  /// Optional per-objective first-hit attribution (fed on new-coverage
  /// events only, so no hot-path cost when covered slots stop growing —
  /// except the per-execution MCDC eval-set growth check, which exists
  /// only when this is set). Not owned; must outlive the Fuzzer.
  coverage::ProvenanceMap* provenance = nullptr;
  /// Optional best-observed-distance recording for residual diagnostics.
  /// Only effective when the fuzzed program carries kMargin instructions
  /// (CompiledModel::Fuzz switches to the margin-instrumented lowering when
  /// this is set). Not owned; Reset(spec) is called by the Fuzzer.
  coverage::MarginRecorder* margins = nullptr;
  /// Compute a per-input coverage signature during execution (the parallel
  /// engine's corpus-sync dedup key). Off by default: the sequential loop
  /// never pays for the hashing.
  bool collect_signatures = false;
  // -- Self-profiling (obs/profiler.hpp) ----------------------------------
  /// The count plane (per-instruction dispatch counters) is always on — one
  /// add per dispatch. Setting this additionally arms the strobe sampler
  /// and the phase lap clock (the `--profile` timed mode).
  bool profile_timing = false;
  /// Strobe period in dispatches for the timed mode. Prime, so the sampler
  /// does not resonate with short bytecode loops.
  std::uint64_t profile_strobe_period = 97;
  /// Optional live snapshot sink (the monitor's /profile endpoint): the
  /// engine publishes a rendered CampaignProfile at heartbeats and at
  /// Finish(). Not owned; must outlive the Fuzzer. Null skips publication.
  /// The parallel driver publishes merged snapshots itself and leaves the
  /// per-worker publishers null.
  obs::ProfilePublisher* profile_publisher = nullptr;
  // -- Campaign durability (checkpoint.hpp) -------------------------------
  /// Resume from a checkpointed state instead of seeding a fresh corpus.
  /// Not owned; must outlive Begin(). The caller validates identity with
  /// ValidateCheckpoint() first.
  const FuzzerState* resume = nullptr;
  /// Periodic checkpointing: write `checkpoint_path` atomically every this
  /// many executions (0 = only on interrupt). Checkpoints are taken between
  /// executions, so they never perturb the deterministic schedule.
  std::uint64_t checkpoint_every = 0;
  /// Destination for checkpoints (periodic and interrupt-time). Empty
  /// disables checkpointing entirely.
  std::string checkpoint_path;
  /// Cooperative interruption (SIGINT/SIGTERM): when the pointed-to flag
  /// becomes true, RunChunk finishes the in-flight execution, writes a
  /// final checkpoint (if checkpoint_path is set) and returns; Finish()
  /// then produces the report as usual. Not owned; may be null.
  const std::atomic<bool>* interrupt = nullptr;
  // -- Hang containment ---------------------------------------------------
  /// Per-model-iteration cap on backward control transfers in the VM (see
  /// vm::Machine::set_step_budget). Inputs that blow the budget are
  /// quarantined instead of wedging the campaign. Healthy models never get
  /// near the default; 0 disables containment.
  std::uint64_t step_budget = 1 << 20;
  /// Where quarantined hanging inputs are written (libFuzzer's timeout
  /// artifacts). Empty: hangs are counted and traced but not saved.
  std::string hangs_dir;
  // -- Crash forensics ----------------------------------------------------
  /// Invoked immediately before every input execution with the input bytes.
  /// The supervised engine points this at a shared-memory stamp so the
  /// supervisor can quarantine the in-flight input when the worker process
  /// dies mid-execution. Must be cheap; may be null.
  void (*input_tap)(void* ctx, const std::uint8_t* data, std::size_t size) = nullptr;
  void* input_tap_ctx = nullptr;
};

struct FuzzBudget {
  double wall_seconds = 1.0;               // stop after this much wall-clock
  std::uint64_t max_executions = UINT64_MAX;  // or after this many inputs
};

/// One generated test case (an input that triggered new model coverage).
struct TestCase {
  std::vector<std::uint8_t> data;
  double time_s = 0;             // seconds since campaign start
  std::size_t new_slots = 0;     // branch slots newly covered
  int decision_outcomes_covered = 0;  // cumulative, for Figure 7 curves
};

struct CampaignResult {
  std::vector<TestCase> test_cases;
  std::uint64_t executions = 0;
  /// Iterations of the fuzzing target only (throughput denominator).
  std::uint64_t model_iterations = 0;
  /// Iterations spent re-running saved/imported inputs on the instrumented
  /// program for model-coverage measurement (Fuzz Only mode, corpus-sync
  /// imports). Excluded from iters_per_s so Fig. 8 speed numbers are honest.
  std::uint64_t measure_iterations = 0;
  coverage::MetricReport report;  // measured on the instrumented program
  double elapsed_s = 0;
  /// Per-strategy application / NEW-coverage-credit counts (Table 1
  /// accounting). All zero in Fuzz Only mode (byte mutation has no
  /// strategy structure).
  StrategyStats strategy_stats;
  /// Per-independence-component focus accounting (empty without --focus).
  /// Telemetry only: intentionally not checkpointed, so enabling focus does
  /// not change the checkpoint format.
  FocusStats focus_stats;
  /// Inputs that exceeded the per-iteration step budget and were quarantined.
  std::uint64_t hangs = 0;
  /// True when the campaign stopped on options.interrupt rather than budget
  /// exhaustion (the report is partial; a checkpoint was written if
  /// configured).
  bool interrupted = false;
  /// Determinism fingerprints of the final campaign state (checkpoint.hpp):
  /// identical between an interrupted-and-resumed campaign and an
  /// uninterrupted one.
  std::uint64_t corpus_fingerprint = 0;
  std::uint64_t coverage_fingerprint = 0;
  /// Self-profile (obs/profiler.hpp): per-instruction dispatch counters of
  /// the instrumented machine (the fuzzing target in CFTCG mode, the
  /// measurement plane in Fuzz Only mode), the edge machine's counters
  /// (Fuzz Only mode's fuzzing target; empty otherwise), and cumulative
  /// phase wall time. Deterministic, merged across workers in worker-id
  /// order, preserved across checkpoint/resume.
  vm::ExecProfile exec_profile;
  vm::ExecProfile fuzz_exec_profile;
  obs::PhaseProfile phase_profile;
};

class Fuzzer {
 public:
  /// `instrumented` must carry model-level instrumentation (used for
  /// measurement in both modes and as the fuzzing target in CFTCG mode).
  /// `fuzz_only_program` is required when model_oriented is false: compiled
  /// without model instrumentation but with edge marks.
  Fuzzer(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
         FuzzerOptions options, const vm::Program* fuzz_only_program = nullptr);
  ~Fuzzer();  // out-of-line: Monitor is incomplete here

  CampaignResult Run(const FuzzBudget& budget);

  // -- Incremental driving (the parallel engine, parallel.hpp) ------------
  // Run(budget) == Begin(budget) + RunChunk(UINT64_MAX) + Finish(), step for
  // step, so a single chunked worker is bit-identical to the sequential
  // campaign for the same seed.
  /// Seeds the corpus and opens the campaign (emits the `start` event).
  void Begin(const FuzzBudget& budget);
  /// Advances the loop until the cumulative execution count reaches
  /// `until_executions`, the budget is exhausted, or the wall clock runs
  /// out. Returns the cumulative execution count.
  std::uint64_t RunChunk(std::uint64_t until_executions);
  /// True once the campaign budget is exhausted (RunChunk became a no-op).
  [[nodiscard]] bool done() const { return campaign_done_; }
  /// Closes the campaign (final MCDC sweep, report, `stop` event).
  CampaignResult Finish();

  // -- Corpus-sync hooks (the parallel engine) ----------------------------
  /// Runs a foreign corpus entry through this worker's executors and admits
  /// it to the local corpus (lineage chain "import"). The re-runs count as
  /// measure_iterations, not throughput; no test case is emitted (the
  /// discovering worker already exported it) and no provenance is recorded
  /// (the merged attribution keeps the discoverer's first hit).
  void ImportEntry(const std::vector<std::uint8_t>& data, std::uint64_t signature);

  /// Executes one input through the instrumented program, implementing
  /// Algorithm 1: per-iteration coverage, test-case output on new coverage,
  /// and the Iteration Difference Coverage metric as the return value.
  /// Exposed publicly for unit tests.
  std::size_t RunOneInstrumented(const std::vector<std::uint8_t>& data, bool* found_new,
                                 std::size_t* new_slots);

  [[nodiscard]] const coverage::CoverageSink& sink() const { return sink_; }
  [[nodiscard]] const Corpus& corpus() const { return corpus_; }
  /// Live self-profile counters (the parallel driver merges these at sync
  /// barriers; safe to read whenever the engine is not inside RunChunk).
  [[nodiscard]] const vm::ExecProfile& exec_profile() const { return exec_profile_; }
  [[nodiscard]] const vm::ExecProfile& fuzz_exec_profile() const { return fuzz_exec_profile_; }
  [[nodiscard]] const obs::PhaseProfile& phase_profile() const { return phase_profile_; }
  [[nodiscard]] std::uint64_t executions() const { return result_.executions; }
  [[nodiscard]] std::uint64_t model_iterations() const { return model_iterations_; }
  [[nodiscard]] std::uint64_t measure_iterations() const { return measure_iterations_; }
  /// True when RunChunk returned because options.interrupt fired (the
  /// campaign budget is NOT exhausted; a checkpoint was written if
  /// configured and Finish() still produces the partial report).
  [[nodiscard]] bool interrupted() const { return interrupted_; }

  // -- Campaign durability (checkpoint.hpp) -------------------------------
  /// Captures the complete resumable state at the current (inter-execution)
  /// point. Valid between Begin() and Finish().
  [[nodiscard]] FuzzerState SaveState() const;
  /// Wraps SaveState() in a single-worker on-disk checkpoint carrying the
  /// campaign identity (the parallel driver builds its own multi-worker
  /// checkpoint from per-worker SaveState() calls).
  [[nodiscard]] CampaignCheckpoint MakeCheckpoint() const;
  /// Identity hash this engine validates checkpoints against.
  [[nodiscard]] std::uint64_t spec_fingerprint() const;

 private:
  class Monitor;  // telemetry state for one campaign (defined in fuzzer.cpp)

  void MeasureOnInstrumented(const std::vector<std::uint8_t>& data);
  std::size_t RunOneEdges(const std::vector<std::uint8_t>& data, bool* found_new);
  /// True when every fuzz slot not proved unreachable by the analyzer is
  /// covered (early-stop criterion; always false without justifications).
  [[nodiscard]] bool AllReachableCovered() const;
  /// Admits one seed input to the corpus (shared by random and boundary
  /// seeding in Begin()).
  void AdmitSeed(std::vector<std::uint8_t> data, const char* chain, std::size_t tuple_size);
  /// Deterministic boundary-value seeds from options_.boundary_seed_ranges.
  void SeedBoundaryInputs(std::size_t tuple_size);
  /// Campaign wall time: watch_ plus the elapsed seconds a resumed
  /// checkpoint already consumed, so wall budgets and timestamps span
  /// interruptions.
  [[nodiscard]] double Elapsed() const { return time_base_ + watch_.Elapsed(); }
  /// Restores every campaign field from a checkpointed state (Begin's
  /// resume path; replaces seeding).
  void RestoreFromState(const FuzzerState& state);
  /// Writes options_.checkpoint_path atomically from MakeCheckpoint().
  void WriteCheckpoint();
  /// Books a step-budget blowout: counts it, emits a trace event, and saves
  /// the input under options_.hangs_dir (content-hashed name, so re-hitting
  /// the same hang after a resume dedups).
  void QuarantineHang(const std::vector<std::uint8_t>& data);
  /// Renders the current self-profile and hands it to
  /// options_.profile_publisher (no-op without one).
  void PublishProfile(double now);
  /// Picks the focus frontier objective's slice fields for the next
  /// mutation (null when focus is off, the frontier is empty, or the
  /// current objective has no influencing fields). Rebuilds the cached
  /// frontier lazily after coverage growth; rotates through the frontier
  /// every FocusPlan::rotate_every executions. Pure function of campaign
  /// state — deterministic and resume-stable.
  const std::vector<std::size_t>* PickFocusFields();
  int DecisionOutcomesCovered() const;
  std::size_t IdcDensity(std::size_t metric, const std::vector<std::uint8_t>& data) const;
  void Attribute(double t, std::int64_t entry_id, const std::string& chain);

  const vm::Program* instrumented_;
  const vm::Program* fuzz_only_;
  const coverage::CoverageSpec* spec_;
  FuzzerOptions options_;
  vm::Machine machine_;          // instrumented program
  vm::CmpTrace cmp_trace_;       // libFuzzer-style table of recent compares
  coverage::CoverageSink sink_;  // model coverage (measurement space)
  DynamicBitset last_cov_;       // Algorithm 1's lastCov
  TupleMutator tuple_mutator_;
  ByteMutator byte_mutator_;
  Corpus corpus_;
  Rng rng_;
  std::uint64_t model_iterations_ = 0;
  std::uint64_t measure_iterations_ = 0;
  StrategyStats strategy_stats_;
  // Self-profiling state (always attached; see FuzzerOptions::profile_timing).
  vm::ExecProfile exec_profile_;       // instrumented machine
  vm::ExecProfile fuzz_exec_profile_;  // edge machine (Fuzz Only mode)
  obs::PhaseProfile phase_profile_;
  // Fuzz-only state.
  std::unique_ptr<vm::Machine> fuzz_machine_;
  std::vector<std::uint8_t> edge_total_;
  std::vector<std::uint8_t> edge_curr_;
  // Campaign-in-progress state (Begin .. RunChunk* .. Finish).
  FuzzBudget budget_;
  CampaignResult result_;
  obs::Stopwatch watch_;
  std::unique_ptr<Monitor> monitor_;
  std::vector<std::size_t> seen_eval_sizes_;  // per-decision eval-set sizes at last check
  std::vector<MutationStrategy> applied_;     // scratch, reused across executions
  std::size_t best_metric_ = 0;
  bool track_strategies_ = false;
  bool campaign_active_ = false;
  bool campaign_done_ = false;
  bool frontier_exhausted_ = false;  // all reachable slots covered (early stop)
  // Focused-mutation state (options_.focus; rebuilt lazily, never persisted).
  std::vector<int> focus_frontier_;   // uncovered, non-excluded, sliced slots
  bool focus_frontier_stale_ = true;
  int focus_component_ = -1;          // component of the last focused mutation
  std::uint64_t last_signature_ = 0;  // coverage signature of the last run input
  // Campaign durability state.
  double time_base_ = 0;              // elapsed seconds restored from a checkpoint
  std::uint64_t next_checkpoint_ = 0; // execution count of the next periodic write
  bool interrupted_ = false;
  bool last_input_hung_ = false;      // step budget blew during the last run
};

}  // namespace cftcg::fuzz
