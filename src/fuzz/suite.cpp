#include "fuzz/suite.hpp"

namespace cftcg::fuzz {

DynamicBitset CoverageOf(vm::Machine& machine, const coverage::CoverageSpec& spec,
                         const std::vector<std::uint8_t>& data) {
  coverage::CoverageSink sink(spec);
  const std::size_t tuple = machine.program().TupleSize();
  machine.Reset();
  for (std::size_t off = 0; off + tuple <= data.size(); off += tuple) {
    sink.BeginIteration();
    machine.SetInputsFromBytes(data.data() + off);
    machine.Step(&sink);
    sink.AccumulateIteration();
  }
  return sink.total();
}

namespace {

bool Covers(const DynamicBitset& have, const DynamicBitset& need) {
  // `need` must not set any bit that `have` lacks.
  return !need.HasNewBitsRelativeTo(have);
}

}  // namespace

std::vector<std::uint8_t> MinimizeTestCase(vm::Machine& machine,
                                           const coverage::CoverageSpec& spec,
                                           const std::vector<std::uint8_t>& data,
                                           const DynamicBitset& must_cover) {
  const std::size_t tuple = machine.program().TupleSize();
  if (tuple == 0) return data;
  std::vector<std::uint8_t> current = data;
  current.resize(current.size() / tuple * tuple);

  // Chunked delta-debugging over tuples: try dropping [start, start+chunk)
  // ranges, halving the chunk until single tuples.
  for (std::size_t chunk = std::max<std::size_t>(current.size() / tuple / 2, 1);;
       chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      // The bound must track `current`, which shrinks inside the loop.
      for (std::size_t start = 0; start + chunk <= current.size() / tuple;) {
        std::vector<std::uint8_t> candidate = current;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start * tuple),
                        candidate.begin() + static_cast<std::ptrdiff_t>((start + chunk) * tuple));
        if (Covers(CoverageOf(machine, spec, candidate), must_cover)) {
          current = std::move(candidate);
          removed_any = true;
          // Do not advance: the next range has shifted into `start`.
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  return current;
}

SuiteReduction ReduceSuite(vm::Machine& machine, const coverage::CoverageSpec& spec,
                           const std::vector<TestCase>& suite) {
  SuiteReduction out;
  out.union_coverage.Resize(static_cast<std::size_t>(spec.FuzzBranchCount()));

  std::vector<DynamicBitset> covers;
  covers.reserve(suite.size());
  for (const auto& tc : suite) covers.push_back(CoverageOf(machine, spec, tc.data));

  std::vector<bool> used(suite.size(), false);
  for (;;) {
    // Pick the case with the largest marginal gain.
    std::size_t best = suite.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (used[i]) continue;
      DynamicBitset merged = out.union_coverage;
      const std::size_t gain = merged.MergeAndCountNew(covers[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == suite.size() || best_gain == 0) break;
    used[best] = true;
    out.kept.push_back(best);
    out.union_coverage.MergeAndCountNew(covers[best]);
  }
  return out;
}

}  // namespace cftcg::fuzz
