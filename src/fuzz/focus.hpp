// Focused mutation plan — the fuzzer-side projection of the static
// dependence slices (analysis/slice.hpp).
//
// cftcg_fuzz does not link against the analysis library, so the slice
// geometry is carried across as plain data: for every fuzz branch slot the
// set of root inport tuple fields that can influence it, plus an
// independence-component id for per-slice strategy credit. The pipeline/CLI
// layer (`cftcg fuzz --focus`) computes the slices and populates this
// struct; the fuzzer only consumes it.
//
// Determinism contract: a null FuzzerOptions::focus (the default) draws the
// exact same RNG sequence as builds that predate focus — default campaigns
// stay bit-identical, including checkpoint fingerprints. FocusStats are
// campaign telemetry only and are intentionally NOT checkpointed.
#pragma once

#include <cstdint>
#include <vector>

namespace cftcg::fuzz {

struct FocusPlan {
  /// Per fuzz slot: influencing root inport tuple fields (sorted). An empty
  /// entry means "no inport influences this slot" — the frontier skips it.
  std::vector<std::vector<std::size_t>> slot_fields;
  /// Per fuzz slot: independence-component id (-1 when unowned).
  std::vector<int> slot_component;
  int num_components = 0;
  /// The focus frontier advances to the next uncovered objective every
  /// `rotate_every` executions, so one stubborn objective cannot starve the
  /// rest of the frontier.
  std::uint64_t rotate_every = 256;
};

/// Per-component focus accounting: how many executions were mutated under
/// each component's slice, and how many of those found new coverage.
struct FocusStats {
  std::vector<std::uint64_t> executions;
  std::vector<std::uint64_t> credited;

  void EnsureSize(std::size_t n) {
    if (executions.size() < n) executions.resize(n, 0);
    if (credited.size() < n) credited.resize(n, 0);
  }
  void MergeFrom(const FocusStats& other) {
    EnsureSize(other.executions.size());
    for (std::size_t i = 0; i < other.executions.size(); ++i) {
      executions[i] += other.executions[i];
    }
    for (std::size_t i = 0; i < other.credited.size(); ++i) credited[i] += other.credited[i];
  }
  [[nodiscard]] bool empty() const { return executions.empty(); }
};

}  // namespace cftcg::fuzz
