// Little-endian binary wire format shared by the checkpoint file layer and
// the supervisor's pipe protocol.
//
// PR 5 introduced the checkpoint blob; the process-isolation engine reuses
// the exact same primitives (and the same FuzzerState field order) for the
// messages workers exchange with the supervisor, so a round-barrier state
// message *is* a checkpoint fragment. Writer appends; Reader is strictly
// bounds-checked: any out-of-range read latches failed() and every
// subsequent read returns zero — callers check failed() once at the end
// instead of after every field. Sized reads (Bytes/Str/U64Vec) validate the
// length against the remaining input before allocating, so a bit-flipped
// count can never trigger a huge allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cftcg::fuzz::wire {

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Bytes(const std::vector<std::uint8_t>& v) {
    U64(v.size());
    out_.append(reinterpret_cast<const char*>(v.data()), v.size());
  }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }
  void U64Vec(const std::vector<std::uint64_t>& v) {
    U64(v.size());
    for (std::uint64_t x : v) U64(x);
  }
  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == bytes_.size(); }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::vector<std::uint8_t> Bytes() {
    const std::uint64_t size = U64();
    if (!Need(size)) return {};
    std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += size;
    return v;
  }
  std::string Str() {
    const std::uint64_t size = U64();
    if (!Need(size)) return {};
    std::string s(bytes_.substr(pos_, size));
    pos_ += size;
    return s;
  }
  std::vector<std::uint64_t> U64Vec() {
    const std::uint64_t size = U64();
    if (failed_ || size > bytes_.size() / 8 + 1) {  // cheap sanity bound
      failed_ = true;
      return {};
    }
    std::vector<std::uint64_t> v;
    v.reserve(size);
    for (std::uint64_t i = 0; i < size && !failed_; ++i) v.push_back(U64());
    return v;
  }

 private:
  bool Need(std::uint64_t n) {
    if (failed_ || n > bytes_.size() - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cftcg::fuzz::wire
