// Test-suite post-processing.
//
// A fuzzing campaign outputs one test case per new-coverage event, so the
// raw suite is redundant and individual cases carry dead iterations. Two
// standard reductions make the suite fit for inspection and regression use
// (the paper hands its test cases to engineers via CSV; these keep that
// hand-off small):
//
//   * MinimizeTestCase — per-case tuple reduction: greedily drop tuple
//     ranges while the case still covers every slot it contributed.
//   * ReduceSuite — greedy set-cover across cases: keep a subset whose
//     union coverage equals the full suite's.
//
// Both operate on the fuzz branch space (decision outcomes + condition
// polarities), so Decision and Condition coverage are preserved exactly;
// MCDC can drop slightly, because independence pairs may have lived in
// iterations that contribute no new slot.
#pragma once

#include <cstdint>
#include <vector>

#include "coverage/sink.hpp"
#include "fuzz/fuzzer.hpp"
#include "vm/machine.hpp"

namespace cftcg::fuzz {

/// Coverage slots (fuzz branch space) reached by running `data` from a
/// fresh model state.
DynamicBitset CoverageOf(vm::Machine& machine, const coverage::CoverageSpec& spec,
                         const std::vector<std::uint8_t>& data);

/// Shrinks one test case: repeatedly removes tuple chunks (halving chunk
/// size down to single tuples) while the case still covers every slot in
/// `must_cover`. Deterministic; returns the shrunk data.
std::vector<std::uint8_t> MinimizeTestCase(vm::Machine& machine,
                                           const coverage::CoverageSpec& spec,
                                           const std::vector<std::uint8_t>& data,
                                           const DynamicBitset& must_cover);

struct SuiteReduction {
  std::vector<std::size_t> kept;     // indices into the input suite, in pick order
  DynamicBitset union_coverage;      // coverage of the kept subset (== full suite's)
};

/// Greedy set-cover: orders cases by marginal new coverage and keeps only
/// those that add something.
SuiteReduction ReduceSuite(vm::Machine& machine, const coverage::CoverageSpec& spec,
                           const std::vector<TestCase>& suite);

}  // namespace cftcg::fuzz
