#include "fuzz/mutator.hpp"

#include "ir/value.hpp"

#include <algorithm>
#include <cstring>

namespace cftcg::fuzz {

TupleLayout::TupleLayout(std::vector<ir::DType> fields) : fields_(std::move(fields)) {
  for (const auto t : fields_) {
    offsets_.push_back(tuple_size_);
    tuple_size_ += ir::DTypeSize(t);
  }
}

std::string_view MutationStrategyName(MutationStrategy s) {
  switch (s) {
    case MutationStrategy::kChangeBinaryInteger: return "ChangeBinaryInteger";
    case MutationStrategy::kChangeBinaryFloat: return "ChangeBinaryFloat";
    case MutationStrategy::kEraseTuples: return "EraseTuples";
    case MutationStrategy::kInsertTuple: return "InsertTuple";
    case MutationStrategy::kInsertRepeatedTuples: return "InsertRepeatedTuples";
    case MutationStrategy::kShuffleTuples: return "ShuffleTuples";
    case MutationStrategy::kCopyTuples: return "CopyTuples";
    case MutationStrategy::kTuplesCrossOver: return "TuplesCrossOver";
  }
  return "?";
}

std::string StrategyChainString(const std::vector<MutationStrategy>& chain) {
  if (chain.empty()) return "seed";
  std::string out;
  for (MutationStrategy s : chain) {
    if (!out.empty()) out += '>';
    out += MutationStrategyName(s);
  }
  return out;
}

TupleMutator::TupleMutator(TupleLayout layout, std::size_t max_tuples)
    : layout_(std::move(layout)), max_tuples_(max_tuples) {}

std::vector<std::uint8_t> TupleMutator::RandomInput(std::size_t n, Rng& rng) const {
  std::vector<std::uint8_t> data(n * layout_.tuple_size());
  rng.FillBytes(data.data(), data.size());
  ClampAllFields(data);
  return data;
}

void TupleMutator::ClampField(std::vector<std::uint8_t>& data, std::size_t tuple_index,
                              std::size_t field) const {
  if (field >= ranges_.size() || !ranges_[field].active) return;
  const FieldRange& r = ranges_[field];
  const ir::DType t = layout_.field_type(field);
  const std::size_t off = tuple_index * layout_.tuple_size() + layout_.field_offset(field);
  ir::Value v = ir::Value::FromBytes(t, data.data() + off);
  const double x = v.AsDouble();
  if (x >= r.lo && x <= r.hi) return;
  const double clamped = x < r.lo ? r.lo : r.hi;
  (ir::DTypeIsFloat(t) ? ir::Value::Real(t, clamped)
                       : ir::Value::Int(t, static_cast<std::int64_t>(clamped)))
      .ToBytes(data.data() + off);
}

void TupleMutator::ClampAllFields(std::vector<std::uint8_t>& data) const {
  if (ranges_.empty()) return;
  const std::size_t n = data.size() / layout_.tuple_size();
  for (std::size_t tuple = 0; tuple < n; ++tuple) {
    for (std::size_t f = 0; f < layout_.num_fields(); ++f) ClampField(data, tuple, f);
  }
}

void TupleMutator::MutateIntegerField(std::vector<std::uint8_t>& data, std::size_t offset,
                                      std::size_t size, Rng& rng,
                                      const vm::CmpTrace* dict) const {
  // The paper's "Change Binary Integer" sub-strategies: sign bit, byte swap,
  // bit flip, byte modification, add/subtract, random change — plus the
  // interesting boundary values every coverage-guided fuzzer carries and
  // operands harvested from comparison tracing (libFuzzer TORC).
  if (dict != nullptr && dict->int_count() > 0 && rng.NextBool(0.3)) {
    std::int64_t v = dict->int_at(rng.NextIndex(dict->int_count()));
    if (rng.NextBool(0.25)) v += rng.NextInRange(-2, 2);
    std::memcpy(data.data() + offset, &v, size);
    return;
  }
  switch (rng.NextBelow(7)) {
    case 0:  // sign bit
      data[offset + size - 1] ^= 0x80;
      break;
    case 1: {  // byte swap
      if (size >= 2) {
        const std::size_t a = rng.NextIndex(size);
        const std::size_t b = rng.NextIndex(size);
        std::swap(data[offset + a], data[offset + b]);
      } else {
        data[offset] = static_cast<std::uint8_t>((data[offset] << 4) | (data[offset] >> 4));
      }
      break;
    }
    case 2: {  // bit flip
      const std::size_t bit = rng.NextIndex(size * 8);
      data[offset + bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      break;
    }
    case 3:  // byte modification
      data[offset + rng.NextIndex(size)] = rng.NextByte();
      break;
    case 4: {  // add or subtract a small value
      std::int64_t v = 0;
      std::memcpy(&v, data.data() + offset, size);
      v += rng.NextInRange(-16, 16);
      std::memcpy(data.data() + offset, &v, size);
      break;
    }
    case 5: {  // interesting boundary values
      static constexpr std::int64_t kInteresting[] = {0,  1,   -1,  2,   3,    4,    7,   8,
                                                      16, 31,  32,  64,  100,  127,  128, 255,
                                                      256, 512, 1000, 1024, 4096, 32767, 65535};
      const std::int64_t v = kInteresting[rng.NextIndex(std::size(kInteresting))] *
                             (rng.NextBool() ? 1 : -1);
      std::memcpy(data.data() + offset, &v, size);
      break;
    }
    default:  // random change
      rng.FillBytes(data.data() + offset, size);
      break;
  }
}

void TupleMutator::MutateFloatField(std::vector<std::uint8_t>& data, std::size_t offset,
                                    std::size_t size, Rng& rng,
                                    const vm::CmpTrace* dict) const {
  // Targeted mutation by IEEE-754 memory regions (sign / exponent /
  // mantissa), interesting values, comparison-trace operands, or full
  // random replace.
  const bool is_double = size == 8;
  if (dict != nullptr && dict->double_count() > 0 && rng.NextBool(0.3)) {
    const double v = dict->double_at(rng.NextIndex(dict->double_count()));
    if (is_double) {
      std::memcpy(data.data() + offset, &v, 8);
    } else {
      const float f = static_cast<float>(v);
      std::memcpy(data.data() + offset, &f, 4);
    }
    return;
  }
  switch (rng.NextBelow(5)) {
    case 0:  // sign bit
      data[offset + size - 1] ^= 0x80;
      break;
    case 1: {  // exponent perturbation
      if (is_double) {
        double v = 0;
        std::memcpy(&v, data.data() + offset, 8);
        v *= rng.NextBool() ? 2.0 : 0.5;
        std::memcpy(data.data() + offset, &v, 8);
      } else {
        float v = 0;
        std::memcpy(&v, data.data() + offset, 4);
        v *= rng.NextBool() ? 2.0F : 0.5F;
        std::memcpy(data.data() + offset, &v, 4);
      }
      break;
    }
    case 2: {  // mantissa bit flip (low bytes)
      const std::size_t bit = rng.NextIndex((size - 1) * 8);
      data[offset + bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      break;
    }
    case 3: {  // interesting values
      static constexpr double kInteresting[] = {0.0, 1.0, -1.0, 0.5,  -0.5, 10.0,
                                                -10.0, 100.0, 1e6, -1e6, 1e-6};
      const double v = kInteresting[rng.NextIndex(std::size(kInteresting))];
      if (is_double) {
        std::memcpy(data.data() + offset, &v, 8);
      } else {
        const float f = static_cast<float>(v);
        std::memcpy(data.data() + offset, &f, 4);
      }
      break;
    }
    default:
      rng.FillBytes(data.data() + offset, size);
      break;
  }
}

std::vector<std::uint8_t> TupleMutator::ApplyStrategy(MutationStrategy s,
                                                      const std::vector<std::uint8_t>& input,
                                                      const std::vector<std::uint8_t>& crossover,
                                                      Rng& rng, const vm::CmpTrace* dict,
                                                      const std::vector<std::size_t>*
                                                          focus_fields) const {
  const std::size_t ts = layout_.tuple_size();
  std::vector<std::uint8_t> data = input;
  // Drop any trailing partial tuple (the driver would discard it anyway).
  data.resize((data.size() / ts) * ts);
  std::size_t n = data.size() / ts;
  if (n == 0) {
    data = RandomInput(1 + rng.NextBelow(4), rng);
    n = data.size() / ts;
  }

  auto field_edit = [&](bool want_float) {
    // Pick a tuple, then a field of the wanted class (fall back to any).
    // With a focus slice the candidate pool shrinks to the slice's fields
    // (same draw count either way — determinism with focus off).
    const std::size_t tuple = rng.NextIndex(n);
    const bool focused = focus_fields != nullptr && !focus_fields->empty();
    std::vector<std::size_t> candidates;
    auto collect = [&](bool class_only) {
      if (focused) {
        for (std::size_t f : *focus_fields) {
          if (f >= layout_.num_fields()) continue;
          if (!class_only || ir::DTypeIsFloat(layout_.field_type(f)) == want_float) {
            candidates.push_back(f);
          }
        }
      } else {
        for (std::size_t f = 0; f < layout_.num_fields(); ++f) {
          if (!class_only || ir::DTypeIsFloat(layout_.field_type(f)) == want_float) {
            candidates.push_back(f);
          }
        }
      }
    };
    collect(/*class_only=*/true);
    if (candidates.empty()) collect(/*class_only=*/false);
    if (candidates.empty()) {
      for (std::size_t f = 0; f < layout_.num_fields(); ++f) candidates.push_back(f);
    }
    const std::size_t f = candidates[rng.NextIndex(candidates.size())];
    const std::size_t offset = tuple * ts + layout_.field_offset(f);
    if (ir::DTypeIsFloat(layout_.field_type(f))) {
      MutateFloatField(data, offset, layout_.field_size(f), rng, dict);
    } else {
      MutateIntegerField(data, offset, layout_.field_size(f), rng, dict);
    }
    ClampField(data, tuple, f);
  };

  switch (s) {
    case MutationStrategy::kChangeBinaryInteger: field_edit(false); break;
    case MutationStrategy::kChangeBinaryFloat: field_edit(true); break;
    case MutationStrategy::kEraseTuples: {
      if (n <= 1) break;
      const std::size_t start = rng.NextIndex(n);
      const std::size_t count = 1 + rng.NextBelow(std::min<std::size_t>(n - start, 8));
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(start * ts),
                 data.begin() + static_cast<std::ptrdiff_t>((start + count) * ts));
      break;
    }
    case MutationStrategy::kInsertTuple: {
      if (n >= max_tuples_) break;
      const std::size_t pos = rng.NextBelow(n + 1);
      std::vector<std::uint8_t> tuple(ts);
      rng.FillBytes(tuple.data(), ts);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos * ts), tuple.begin(),
                  tuple.end());
      break;
    }
    case MutationStrategy::kInsertRepeatedTuples: {
      if (n >= max_tuples_) break;
      const std::size_t pos = rng.NextBelow(n + 1);
      // Long repeated runs are what drives counters/integrators/charge
      // states to their deep branches.
      const std::size_t reps =
          1 + rng.NextBelow(std::min<std::size_t>(max_tuples_ - n, 128));
      std::vector<std::uint8_t> tuple(ts);
      if (n > 0 && rng.NextBool(0.7)) {
        // Repeat an existing tuple (holds an input steady across steps —
        // how deep stateful logic like charge/queue states gets driven).
        const std::size_t src = rng.NextIndex(n);
        std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(src * ts), ts, tuple.begin());
      } else {
        rng.FillBytes(tuple.data(), ts);
      }
      std::vector<std::uint8_t> run;
      for (std::size_t k = 0; k < reps; ++k) run.insert(run.end(), tuple.begin(), tuple.end());
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos * ts), run.begin(), run.end());
      break;
    }
    case MutationStrategy::kShuffleTuples: {
      if (n <= 1) break;
      const std::size_t start = rng.NextIndex(n - 1);
      const std::size_t count = 2 + rng.NextBelow(std::min<std::size_t>(n - start - 1, 7));
      std::vector<std::size_t> order(count);
      for (std::size_t k = 0; k < count; ++k) order[k] = k;
      rng.Shuffle(order);
      std::vector<std::uint8_t> window(count * ts);
      for (std::size_t k = 0; k < count; ++k) {
        std::copy_n(data.begin() + static_cast<std::ptrdiff_t>((start + order[k]) * ts), ts,
                    window.begin() + static_cast<std::ptrdiff_t>(k * ts));
      }
      std::copy(window.begin(), window.end(),
                data.begin() + static_cast<std::ptrdiff_t>(start * ts));
      break;
    }
    case MutationStrategy::kCopyTuples: {
      if (n == 0 || n >= max_tuples_) break;
      const std::size_t src = rng.NextIndex(n);
      const std::size_t count = 1 + rng.NextBelow(std::min<std::size_t>(n - src, 8));
      std::vector<std::uint8_t> run(data.begin() + static_cast<std::ptrdiff_t>(src * ts),
                                    data.begin() + static_cast<std::ptrdiff_t>((src + count) * ts));
      const std::size_t pos = rng.NextBelow(n + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos * ts), run.begin(), run.end());
      break;
    }
    case MutationStrategy::kTuplesCrossOver: {
      const std::size_t pn = (crossover.size() / ts);
      if (pn == 0) break;
      // Head of one stream + tail of the other, cut at tuple boundaries.
      const std::size_t head = rng.NextBelow(n + 1);
      const std::size_t tail_start = rng.NextIndex(pn);
      std::vector<std::uint8_t> combined(data.begin(),
                                         data.begin() + static_cast<std::ptrdiff_t>(head * ts));
      combined.insert(combined.end(),
                      crossover.begin() + static_cast<std::ptrdiff_t>(tail_start * ts),
                      crossover.begin() + static_cast<std::ptrdiff_t>(pn * ts));
      data = std::move(combined);
      break;
    }
  }
  // Enforce the length cap at tuple granularity.
  if (data.size() > max_tuples_ * ts) data.resize(max_tuples_ * ts);
  // Structural strategies can introduce fresh random tuples; keep every
  // field inside its declared range.
  if (!ranges_.empty() && s != MutationStrategy::kChangeBinaryInteger &&
      s != MutationStrategy::kChangeBinaryFloat) {
    ClampAllFields(data);
  }
  return data;
}

std::vector<std::uint8_t> TupleMutator::Mutate(const std::vector<std::uint8_t>& input,
                                               const std::vector<std::uint8_t>& crossover,
                                               Rng& rng, const vm::CmpTrace* dict,
                                               std::vector<MutationStrategy>* applied,
                                               const std::vector<std::size_t>* focus_fields)
    const {
  std::vector<std::uint8_t> data = input;
  const std::size_t rounds = 1 + rng.NextBelow(3);
  for (std::size_t k = 0; k < rounds; ++k) {
    // Field edits are the bread and butter; structural edits are rarer.
    MutationStrategy s;
    const std::uint64_t roll = rng.NextBelow(100);
    if (roll < 34) s = MutationStrategy::kChangeBinaryInteger;
    else if (roll < 54) s = MutationStrategy::kChangeBinaryFloat;
    else if (roll < 62) s = MutationStrategy::kEraseTuples;
    else if (roll < 68) s = MutationStrategy::kInsertTuple;
    else if (roll < 80) s = MutationStrategy::kInsertRepeatedTuples;  // drives deep states
    else if (roll < 86) s = MutationStrategy::kShuffleTuples;
    else if (roll < 93) s = MutationStrategy::kCopyTuples;
    else s = MutationStrategy::kTuplesCrossOver;
    if (applied != nullptr) applied->push_back(s);
    data = ApplyStrategy(s, data, crossover, rng, dict, focus_fields);
  }
  return data;
}

std::vector<std::uint8_t> ByteMutator::Mutate(const std::vector<std::uint8_t>& input,
                                              const std::vector<std::uint8_t>& crossover,
                                              Rng& rng, const vm::CmpTrace* dict) const {
  std::vector<std::uint8_t> data = input;
  if (data.empty()) {
    data.resize(1 + rng.NextBelow(64));
    rng.FillBytes(data.data(), data.size());
    return data;
  }
  const std::size_t rounds = 1 + rng.NextBelow(3);
  for (std::size_t k = 0; k < rounds; ++k) {
    // libFuzzer's default cmp-trace mutation: paste a compared value at an
    // arbitrary byte offset (no field awareness).
    if (dict != nullptr && dict->int_count() > 0 && rng.NextBool(0.2)) {
      const std::int64_t v = dict->int_at(rng.NextIndex(dict->int_count()));
      const std::size_t width = rng.NextBool() ? 4 : 8;
      if (data.size() >= width) {
        const std::size_t pos = rng.NextIndex(data.size() - width + 1);
        std::memcpy(data.data() + pos, &v, width);
      }
      continue;
    }
    switch (rng.NextBelow(6)) {
      case 0:  // bit flip
        data[rng.NextIndex(data.size())] ^= static_cast<std::uint8_t>(1U << rng.NextBelow(8));
        break;
      case 1:  // byte set
        data[rng.NextIndex(data.size())] = rng.NextByte();
        break;
      case 2: {  // erase range (arbitrary offset: misaligns tuples)
        if (data.size() <= 1) break;
        const std::size_t start = rng.NextIndex(data.size());
        const std::size_t count =
            1 + rng.NextBelow(std::min<std::size_t>(data.size() - start, 16));
        data.erase(data.begin() + static_cast<std::ptrdiff_t>(start),
                   data.begin() + static_cast<std::ptrdiff_t>(start + count));
        break;
      }
      case 3: {  // insert random bytes
        if (data.size() >= max_len_) break;
        const std::size_t pos = rng.NextBelow(data.size() + 1);
        std::vector<std::uint8_t> run(1 + rng.NextBelow(16));
        rng.FillBytes(run.data(), run.size());
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), run.begin(), run.end());
        break;
      }
      case 4: {  // copy range
        if (data.empty() || data.size() >= max_len_) break;
        const std::size_t src = rng.NextIndex(data.size());
        const std::size_t count =
            1 + rng.NextBelow(std::min<std::size_t>(data.size() - src, 16));
        std::vector<std::uint8_t> run(data.begin() + static_cast<std::ptrdiff_t>(src),
                                      data.begin() + static_cast<std::ptrdiff_t>(src + count));
        const std::size_t pos = rng.NextBelow(data.size() + 1);
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), run.begin(), run.end());
        break;
      }
      default: {  // byte-level crossover
        if (crossover.empty()) break;
        const std::size_t head = rng.NextBelow(data.size() + 1);
        const std::size_t tail = rng.NextIndex(crossover.size());
        std::vector<std::uint8_t> combined(data.begin(),
                                           data.begin() + static_cast<std::ptrdiff_t>(head));
        combined.insert(combined.end(), crossover.begin() + static_cast<std::ptrdiff_t>(tail),
                        crossover.end());
        data = std::move(combined);
        break;
      }
    }
  }
  if (data.size() > max_len_) data.resize(max_len_);
  return data;
}

}  // namespace cftcg::fuzz
