// Campaign durability: versioned checkpoint / resume for the fuzzing engine.
//
// A checkpoint is the complete mid-campaign state of one engine — sequential
// or parallel — captured at a deterministic point of the schedule (between
// executions for the sequential loop; at a round barrier for the parallel
// driver). Restoring it and continuing is bit-identical to never having
// stopped: the corpus (with lineage and energies), the coverage frontier
// and MCDC evaluation sets, the comparison-operand mutation dictionary, the
// per-worker RNG streams, the provenance first-hits, and every counter are
// serialized, so the resumed campaign replays the exact same mutation /
// admission sequence.
//
// The on-disk format is a little-endian binary blob with a magic tag and a
// version word; readers reject any version other than their own (forward
// and backward) with a structured error instead of misparsing. Files are
// written through support::AtomicFileWriter, so a kill mid-write can never
// leave a torn checkpoint — the previous complete one survives.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coverage/provenance.hpp"
#include "coverage/spec.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/wire.hpp"
#include "support/status.hpp"
#include "vm/cmp_trace.hpp"
#include "vm/program.hpp"

namespace cftcg::fuzz {

// Version history: 1 = initial format; 2 = appended the self-profile planes
// (per-instruction dispatch/sample counters, strobe countdown, phase times)
// to every worker state.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Complete resumable state of one sequential Fuzzer (one parallel worker).
/// Produced by Fuzzer::SaveState(), consumed via FuzzerOptions::resume.
struct FuzzerState {
  std::array<std::uint64_t, 4> rng_state{};
  std::uint64_t executions = 0;
  std::uint64_t model_iterations = 0;
  std::uint64_t measure_iterations = 0;
  std::uint64_t hangs = 0;
  double elapsed_s = 0;            // wall seconds consumed before the save
  std::uint64_t best_metric = 0;
  bool frontier_exhausted = false;
  StrategyStats strategy_stats;
  std::vector<CorpusEntry> corpus;
  std::vector<TestCase> test_cases;
  // Coverage frontier: the cumulative bitmap's raw words plus the
  // per-decision MCDC evaluation sets (canonically sorted).
  std::uint64_t total_bits = 0;
  std::vector<std::uint64_t> total_words;
  std::vector<std::vector<std::uint64_t>> evals;
  std::vector<std::uint64_t> seen_eval_sizes;
  // Fuzz-only mode: the cumulative edge map.
  std::vector<std::uint8_t> edge_total;
  // Mutation dictionary (libFuzzer TORC) — feeds future draws.
  vm::CmpTrace::State cmp_trace;
  // First-hit attribution recorded so far (replayed via AbsorbHit).
  std::vector<coverage::ObjectiveFirstHit> provenance_hits;
  // Self-profile planes (obs/profiler.hpp), v2: resumed campaigns continue
  // the dispatch counters and strobe schedule bit-identically.
  vm::ExecProfile exec_profile;
  vm::ExecProfile fuzz_exec_profile;
  obs::PhaseProfile phase_profile;
};

/// One on-disk checkpoint: campaign identity (validated on resume), engine
/// shape, parallel-driver state, and one FuzzerState per worker
/// (num_workers == 1 for the sequential engine; driver fields zero).
struct CampaignCheckpoint {
  std::uint32_t version = kCheckpointVersion;
  // -- Campaign identity ---------------------------------------------------
  std::uint64_t spec_fingerprint = 0;  // model/coverage-universe shape
  std::uint64_t seed = 0;
  bool model_oriented = true;
  bool use_idc_energy = true;
  bool analyzed = false;  // campaign ran with static-analysis justifications
  std::uint64_t max_tuples = 0;
  std::uint64_t step_budget = 0;  // hang-containment budget in force
  // -- Engine shape --------------------------------------------------------
  std::uint32_t num_workers = 1;
  std::uint64_t sync_every = 0;
  // -- Parallel driver state (zero / empty for the sequential engine) ------
  std::uint64_t rounds = 0;
  std::uint64_t imports = 0;
  std::vector<std::uint64_t> seen_signatures;  // sorted
  std::vector<std::uint64_t> scanned;          // per-worker corpus cursors
  double elapsed_s = 0;                        // driver wall clock
  // -- Per-worker state ----------------------------------------------------
  std::vector<FuzzerState> workers;
};

/// Structural hash of the coverage universe and program shape a campaign
/// runs against. Resume refuses a checkpoint whose fingerprint differs —
/// restoring bitsets against a different model would silently corrupt the
/// campaign.
std::uint64_t SpecFingerprint(const coverage::CoverageSpec& spec, const vm::Program& program);

std::string SerializeCheckpoint(const CampaignCheckpoint& ckpt);
Result<CampaignCheckpoint> ParseCheckpoint(std::string_view bytes);

/// One worker state in the checkpoint wire format. The supervisor's pipe
/// protocol ships these as round-barrier messages, so a worker state on the
/// wire is byte-identical to the corresponding checkpoint fragment.
void AppendFuzzerState(wire::Writer& w, const FuzzerState& s);
/// Bounds-checked inverse. Returns false (never crashes, never over-allocates)
/// on truncated or corrupted input.
bool ReadFuzzerState(wire::Reader& r, FuzzerState& s);

/// Atomic write (temp + rename): a kill mid-write leaves the previous
/// complete checkpoint in place.
Status WriteCheckpointFile(const std::string& path, const CampaignCheckpoint& ckpt);
Result<CampaignCheckpoint> ReadCheckpointFile(const std::string& path);

/// Validates checkpoint identity against the campaign about to resume.
Status ValidateCheckpoint(const CampaignCheckpoint& ckpt, const FuzzerOptions& options,
                          std::uint32_t num_workers, std::uint64_t spec_fingerprint);

/// Structural validation against the coverage universe the campaign will run
/// in: bitmap word counts, MCDC table sizes, eval-size tables. A bit-flipped
/// checkpoint that survives parsing must still fail here rather than feed
/// mis-shaped tables into the engine (whose restore path asserts in debug
/// builds but must never be reached with hostile sizes in release builds).
Status ValidateCheckpointShape(const CampaignCheckpoint& ckpt, std::uint64_t total_bits,
                               std::size_t num_decisions);

// -- Determinism fingerprints ---------------------------------------------
// Order-insensitive where the underlying container is a set, order-exact
// where order is part of campaign state. The resume-identity tests (and the
// CLI's final "state:" line) compare these across interrupted-and-resumed
// vs. uninterrupted campaigns.
std::uint64_t CorpusFingerprint(const Corpus& corpus);
/// Same digest over a serialized entry list (e.g. a FuzzerState's corpus) —
/// lets the supervisor fingerprint a lane it can no longer ask to do so.
std::uint64_t CorpusEntriesFingerprint(const std::vector<CorpusEntry>& entries);
std::uint64_t CoverageFingerprint(const coverage::CoverageSink& sink);
std::uint64_t ProvenanceFingerprint(const coverage::ProvenanceMap& provenance);

}  // namespace cftcg::fuzz
