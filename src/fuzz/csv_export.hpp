// Binary test case -> CSV conversion.
//
// The paper ships a tool converting binary test-case files into the CSV
// format Simulink's coverage tooling imports ("for fair comparison, we
// implemented a tool to convert binary test case files into csv"). This is
// that tool: one row per model iteration, one column per inport, values
// decoded with the same field layout the fuzz driver uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"
#include "support/status.hpp"

namespace cftcg::fuzz {

/// Converts one binary test case to CSV text. `names` supplies the header
/// row (one per field); a trailing partial tuple is discarded, mirroring
/// the driver.
std::string TestCaseToCsv(const TupleLayout& layout, const std::vector<std::string>& names,
                          const std::vector<std::uint8_t>& data);

/// Inverse: parses CSV text back into a binary test case (used to import
/// externally authored test vectors and by the round-trip tests).
Result<std::vector<std::uint8_t>> CsvToTestCase(const TupleLayout& layout,
                                                const std::string& csv_text);

}  // namespace cftcg::fuzz
