#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cassert>

namespace cftcg::fuzz {

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Fuzzer::Fuzzer(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
               FuzzerOptions options, const vm::Program* fuzz_only_program)
    : instrumented_(&instrumented),
      fuzz_only_(fuzz_only_program),
      spec_(&spec),
      options_(options),
      machine_(instrumented),
      sink_(spec),
      tuple_mutator_(TupleLayout(instrumented.input_types), options.max_tuples),
      byte_mutator_(options.max_tuples * std::max<std::size_t>(instrumented.TupleSize(), 1)),
      rng_(options.seed) {
  last_cov_.Resize(static_cast<std::size_t>(spec.FuzzBranchCount()));
  assert(options_.model_oriented || fuzz_only_ != nullptr);
  // Comparison tracing (libFuzzer TORC): operands of failed equality
  // comparisons feed the mutation dictionary in both modes.
  machine_.set_cmp_trace(&cmp_trace_);
  if (!options_.field_ranges.empty()) tuple_mutator_.SetFieldRanges(options_.field_ranges);
}

int Fuzzer::DecisionOutcomesCovered() const {
  int covered = 0;
  for (int slot = 0; slot < spec_->num_outcome_slots(); ++slot) {
    if (sink_.total().Test(static_cast<std::size_t>(slot))) ++covered;
  }
  return covered;
}

std::size_t Fuzzer::RunOneInstrumented(const std::vector<std::uint8_t>& data, bool* found_new,
                                       std::size_t* new_slots) {
  // Algorithm 1 (Model Coverage Collection).
  const std::size_t tuple_size = instrumented_->TupleSize();
  machine_.Reset();              // Model_init()
  std::size_t metric = 0;        // Iteration Difference Coverage
  last_cov_.ClearAll();          // lastCov = {0,...}
  bool any_new = false;
  std::size_t total_new = 0;
  for (std::size_t off = 0; off + tuple_size <= data.size(); off += tuple_size) {
    sink_.BeginIteration();                    // g_CurrCov = {0,...}
    machine_.SetInputsFromBytes(data.data() + off);
    machine_.Step(&sink_);                     // Model_step(tuple)
    ++model_iterations_;
    const std::size_t fresh = sink_.AccumulateIteration();  // new bits vs g_TotalCov
    if (fresh > 0) {
      any_new = true;  // outputTestCase(data, size)
      total_new += fresh;
    }
    metric += sink_.curr().CountDifferences(last_cov_);  // per-branch difference count
    last_cov_ = sink_.curr();
  }
  if (found_new != nullptr) *found_new = any_new;
  if (new_slots != nullptr) *new_slots = total_new;
  return metric;
}

void Fuzzer::MeasureOnInstrumented(const std::vector<std::uint8_t>& data) {
  bool unused_new = false;
  std::size_t unused_slots = 0;
  RunOneInstrumented(data, &unused_new, &unused_slots);
}

std::size_t Fuzzer::RunOneEdges(const std::vector<std::uint8_t>& data, bool* found_new) {
  assert(fuzz_only_ != nullptr);
  if (!fuzz_machine_) {
    fuzz_machine_ = std::make_unique<vm::Machine>(*fuzz_only_);
    fuzz_machine_->set_cmp_trace(&cmp_trace_);
  }
  vm::Machine* fuzz_machine = fuzz_machine_.get();
  if (edge_total_.empty()) {
    edge_total_.assign(static_cast<std::size_t>(fuzz_only_->num_edges), 0);
    edge_curr_.assign(static_cast<std::size_t>(fuzz_only_->num_edges), 0);
  }
  std::fill(edge_curr_.begin(), edge_curr_.end(), 0);
  const std::size_t tuple_size = fuzz_only_->TupleSize();
  fuzz_machine->Reset();
  assert(tuple_size == instrumented_->TupleSize());
  for (std::size_t off = 0; off + tuple_size <= data.size(); off += tuple_size) {
    fuzz_machine->SetInputsFromBytes(data.data() + off);
    fuzz_machine->Step(nullptr, edge_curr_.data());
    ++model_iterations_;
  }
  bool any_new = false;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < edge_curr_.size(); ++i) {
    if (edge_curr_[i] != 0) {
      ++covered;
      if (edge_total_[i] == 0) {
        edge_total_[i] = 1;
        any_new = true;
      }
    }
  }
  if (found_new != nullptr) *found_new = any_new;
  return covered;
}

CampaignResult Fuzzer::Run(const FuzzBudget& budget) {
  CampaignResult result;
  const auto start = std::chrono::steady_clock::now();
  std::size_t best_metric = 0;
  // The raw IDC metric is a sum over iterations, so longer inputs score
  // higher just by being long; energy and admission use the per-iteration
  // density instead (scaled x16 to keep integer resolution).
  const std::size_t tuple_size = std::max<std::size_t>(instrumented_->TupleSize(), 1);
  auto idc_density = [&](std::size_t metric, const std::vector<std::uint8_t>& data) {
    return metric * 16 / std::max<std::size_t>(data.size() / tuple_size, 1);
  };

  // Seed corpus: a handful of short random inputs.
  for (std::size_t k = 0; k < options_.seed_inputs; ++k) {
    const std::size_t n = 1 + rng_.NextBelow(32);
    CorpusEntry seed;
    seed.data = tuple_mutator_.RandomInput(n, rng_);
    bool found_new = false;
    std::size_t new_slots = 0;
    if (options_.model_oriented) {
      seed.metric = idc_density(RunOneInstrumented(seed.data, &found_new, &new_slots), seed.data);
    } else {
      seed.metric = RunOneEdges(seed.data, &found_new);
      if (found_new) MeasureOnInstrumented(seed.data);
    }
    ++result.executions;
    seed.new_slots = new_slots;
    if (!options_.use_idc_energy) seed.metric = 0;
    if (found_new) {
      result.test_cases.push_back(TestCase{seed.data, Elapsed(start), new_slots,
                                           DecisionOutcomesCovered()});
    }
    best_metric = std::max(best_metric, seed.metric);
    corpus_.Add(std::move(seed));
  }

  static const std::vector<std::uint8_t> kEmpty;
  while (Elapsed(start) < budget.wall_seconds && result.executions < budget.max_executions) {
    const CorpusEntry& parent = corpus_.Pick(rng_);
    const std::vector<std::uint8_t>& partner =
        corpus_.size() > 1 ? corpus_.PickUniform(rng_).data : kEmpty;
    std::vector<std::uint8_t> data =
        options_.model_oriented
            ? tuple_mutator_.Mutate(parent.data, partner, rng_, &cmp_trace_)
            : byte_mutator_.Mutate(parent.data, partner, rng_, &cmp_trace_);

    bool found_new = false;
    std::size_t new_slots = 0;
    std::size_t metric = 0;
    if (options_.model_oriented) {
      metric = idc_density(RunOneInstrumented(data, &found_new, &new_slots), data);
    } else {
      metric = RunOneEdges(data, &found_new);
      if (found_new) MeasureOnInstrumented(data);
    }
    ++result.executions;

    if (found_new) {
      result.test_cases.push_back(
          TestCase{data, Elapsed(start), new_slots, DecisionOutcomesCovered()});
    }
    // Corpus policy (paper §3.2.2): keep inputs that trigger new coverage,
    // and inputs whose Iteration Difference Coverage beats what we've seen.
    const bool idc_interesting =
        options_.model_oriented && options_.use_idc_energy && metric > best_metric;
    if (found_new || idc_interesting) {
      best_metric = std::max(best_metric, metric);
      CorpusEntry entry;
      entry.data = std::move(data);
      entry.metric = options_.use_idc_energy ? metric : 0;
      entry.new_slots = new_slots;
      corpus_.Add(std::move(entry));
    }
  }

  result.elapsed_s = Elapsed(start);
  result.model_iterations = model_iterations_;
  result.report = coverage::ComputeReport(sink_);
  return result;
}

}  // namespace cftcg::fuzz
