#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

#include "fuzz/checkpoint.hpp"
#include "ir/value.hpp"
#include "obs/clock.hpp"
#include "obs/monitor.hpp"
#include "support/atomic_file.hpp"

namespace cftcg::fuzz {

namespace {

// FNV-1a step for the per-input coverage signatures.
inline std::uint64_t MixSignature(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
  return h;
}

const std::vector<std::uint8_t> kEmptyInput;

}  // namespace

// Telemetry state for one campaign. All emission funnels through here so
// the loop stays readable; every method early-outs when its sink is absent,
// and a campaign without telemetry constructs this as a handful of null
// pointers (no clocks, no allocation on the hot path).
class Fuzzer::Monitor {
 public:
  Monitor(const obs::CampaignTelemetry* telemetry, const coverage::CoverageSink& sink,
          const coverage::CoverageSpec& spec, const Corpus& corpus,
          const coverage::ProvenanceMap* provenance, const coverage::MarginRecorder* margins,
          const coverage::JustificationSet* justifications,
          obs::CampaignStatusBoard* board, int worker)
      : tm_(telemetry), sink_(&sink), spec_(&spec), corpus_(&corpus), prov_(provenance),
        margins_(margins), just_(justifications), board_(board), worker_(worker) {
    if (tm_ != nullptr && tm_->stats_every_s > 0) next_stat_ = tm_->stats_every_s;
  }

  [[nodiscard]] bool active() const { return tm_ != nullptr && tm_->active(); }

  /// Time at which the next heartbeat is due (infinity when disabled); the
  /// main loop compares its already-computed elapsed value against this, so
  /// an idle heartbeat costs one double comparison per execution.
  [[nodiscard]] double next_stat_due() const { return next_stat_; }

  void OnStart(const FuzzerOptions& options, const FuzzBudget& budget) {
    if (tm_ == nullptr || tm_->trace == nullptr) return;
    tm_->trace->Emit(obs::TraceEvent("start")
                         .Str("mode", options.model_oriented ? "cftcg" : "fuzz_only")
                         .U64("seed", options.seed)
                         .U64("seed_inputs", options.seed_inputs)
                         .U64("max_tuples", options.max_tuples)
                         .U64("idc_energy", options.use_idc_energy ? 1 : 0)
                         .F64("budget_s", budget.wall_seconds)
                         .I64("fuzz_slots", spec_->FuzzBranchCount())
                         .I64("outcome_slots", spec_->num_outcome_slots()));
  }

  /// Emitted instead of OnStart when a campaign restores from a checkpoint.
  void OnResume(const FuzzerOptions& options, const CampaignResult& result,
                double resumed_elapsed_s, std::size_t corpus_size) {
    if (tm_ == nullptr || tm_->trace == nullptr) return;
    tm_->trace->Emit(obs::TraceEvent("resume")
                         .Str("mode", options.model_oriented ? "cftcg" : "fuzz_only")
                         .U64("seed", options.seed)
                         .U64("exec", result.executions)
                         .U64("corpus", corpus_size)
                         .U64("test_cases", result.test_cases.size())
                         .F64("resumed_elapsed_s", resumed_elapsed_s));
  }

  void OnCheckpoint(double t, std::uint64_t exec, std::size_t bytes, bool ok) {
    if (tm_ == nullptr) return;
    if (tm_->registry != nullptr) tm_->registry->GetCounter("fuzz.checkpoints").Increment();
    if (tm_->trace == nullptr) return;
    tm_->trace->Emit(obs::TraceEvent("checkpoint")
                         .F64("time_s", t)
                         .U64("exec", exec)
                         .U64("bytes", bytes)
                         .U64("ok", ok ? 1 : 0));
  }

  void OnHang(double t, std::uint64_t exec, std::size_t input_bytes, const std::string& file) {
    if (tm_ == nullptr) return;
    if (tm_->registry != nullptr) tm_->registry->GetCounter("fuzz.hangs").Increment();
    if (tm_->trace == nullptr) return;
    obs::TraceEvent ev("hang");
    ev.F64("time_s", t).U64("exec", exec).U64("input_bytes", input_bytes);
    if (!file.empty()) ev.Str("file", file);
    tm_->trace->Emit(ev);
  }

  void OnNewCoverage(double t, const CampaignResult& result, const TestCase& tc,
                     std::size_t metric, std::size_t tuple_size) {
    if (tm_ == nullptr) return;
    if (tm_->registry != nullptr) {
      tm_->registry->GetCounter("fuzz.new_coverage_inputs").Increment();
      tm_->registry
          ->GetHistogram("fuzz.test_case_tuples", {1, 2, 4, 8, 16, 32, 64, 128, 256})
          .Record(static_cast<double>(tc.data.size() / std::max<std::size_t>(tuple_size, 1)));
    }
    if (tm_->trace == nullptr) return;
    tm_->trace->Emit(obs::TraceEvent("new")
                         .F64("time_s", t)
                         .U64("exec", result.executions)
                         .U64("new_slots", tc.new_slots)
                         .I64("outcomes_covered", tc.decision_outcomes_covered)
                         .U64("corpus", corpus_->size())
                         .U64("idc", metric)
                         .U64("tuples", tc.data.size() / std::max<std::size_t>(tuple_size, 1)));
    // Coverage-frontier update: the covered branch-slot set grew.
    const std::size_t covered = sink_->total().Count();
    if (covered > last_frontier_) {
      last_frontier_ = covered;
      tm_->trace->Emit(obs::TraceEvent("frontier")
                           .F64("time_s", t)
                           .U64("covered_slots", covered)
                           .I64("total_slots", spec_->FuzzBranchCount())
                           .I64("outcomes_covered", tc.decision_outcomes_covered));
    }
  }

  /// One `objective` trace event per newly attributed coverage objective
  /// (first-hit provenance: discovery iteration/time, corpus entry id and
  /// strategy chain). `fresh` holds indices into provenance.hits().
  void OnObjectives(const std::vector<std::size_t>& fresh) {
    if (fresh.empty() || tm_ == nullptr || prov_ == nullptr) return;
    if (tm_->registry != nullptr) {
      tm_->registry->GetGauge("fuzz.objectives_covered")
          .Set(static_cast<double>(prov_->num_covered()));
    }
    if (tm_->trace == nullptr) return;
    for (const std::size_t idx : fresh) {
      const coverage::ObjectiveFirstHit& h = prov_->hits()[idx];
      tm_->trace->Emit(obs::TraceEvent("objective")
                           .Str("kind", coverage::ObjectiveKindName(h.kind))
                           .Str("name", h.name)
                           .I64("outcome", h.outcome)
                           .I64("slot", h.slot)
                           .U64("iter", h.iteration)
                           .F64("time_s", h.time_s)
                           .I64("entry", h.entry_id)
                           .Str("chain", h.chain));
    }
  }

  /// One `corpus` trace event per admitted entry: the genealogy record
  /// (`cftcg explain` reconstructs the corpus tree from these).
  void OnCorpusAdd(double t, const CorpusEntry& entry, const std::string& chain) {
    if (tm_ == nullptr || tm_->trace == nullptr) return;
    tm_->trace->Emit(obs::TraceEvent("corpus")
                         .F64("time_s", t)
                         .I64("id", entry.id)
                         .I64("parent", entry.parent_id)
                         .U64("depth", entry.depth)
                         .Str("chain", chain)
                         .U64("metric", entry.metric)
                         .U64("new_slots", entry.new_slots));
  }

  void Heartbeat(double now, const CampaignResult& result, const StrategyStats& strategies) {
    if (tm_ == nullptr || next_stat_ == std::numeric_limits<double>::infinity()) return;
    // Reschedule, skipping any periods a long execution ran through.
    do next_stat_ += tm_->stats_every_s;
    while (next_stat_ <= now);

    const double window_begin = window_start_;
    const double window_s = now - window_start_;
    const std::uint64_t window_execs = result.executions - window_exec_;
    const double exec_per_s =
        window_s > 0 ? static_cast<double>(window_execs) / window_s : 0;
    const double iters_per_s =
        window_s > 0 ? static_cast<double>(result.model_iterations - window_iters_) / window_s
                     : 0;
    window_start_ = now;
    window_exec_ = result.executions;
    window_iters_ = result.model_iterations;

    // Per-execution duration, sampled as the window mean so the hot loop
    // never reads a clock per input. One histogram sample per heartbeat.
    if (window_execs > 0 && window_s > 0) {
      const double exec_seconds = window_s / static_cast<double>(window_execs);
      exec_hist_.Record(exec_seconds);
      if (tm_->registry != nullptr) {
        tm_->registry->GetHistogram("fuzz.exec_seconds", obs::ExecDurationBucketBounds())
            .Record(exec_seconds);
      }
    }

    const coverage::MetricReport report = coverage::ComputeReport(*sink_, just_);
    SyncRegistry(result, report, exec_per_s, iters_per_s);
    PublishBoard(now, result, report, exec_per_s);
    if (board_ != nullptr) board_->LogSpan("window", worker_ + 1, window_begin, window_s);

    if (tm_->trace != nullptr) {
      obs::TraceEvent ev("stat");
      ev.F64("time_s", now)
          .U64("exec", result.executions)
          .U64("iters", result.model_iterations)
          .U64("measure_iters", result.measure_iterations)
          .F64("exec_per_s", exec_per_s)
          .F64("iters_per_s", iters_per_s)
          .U64("corpus", corpus_->size())
          .U64("corpus_energy", corpus_->total_energy())
          .U64("max_metric", corpus_->MaxMetric())
          .U64("test_cases", result.test_cases.size())
          .F64("decision_pct", report.DecisionPct())
          .F64("condition_pct", report.ConditionPct())
          .F64("mcdc_pct", report.McdcPct());
      for (int s = 0; s < kNumMutationStrategies; ++s) {
        const auto name = MutationStrategyName(static_cast<MutationStrategy>(s));
        const auto idx = static_cast<std::size_t>(s);
        ev.U64("strat." + std::string(name) + ".applied", strategies.applied[idx]);
        ev.U64("strat." + std::string(name) + ".new", strategies.credited[idx]);
      }
      tm_->trace->Emit(ev);
    }
    if (tm_->status_stream != nullptr) {
      const obs::HistogramSnapshot exec_snap = ExecSnapshot();
      std::fprintf(tm_->status_stream,
                   "#%llu\tcov: %.1f/%.1f/%.1f corp: %zu exec/s: %.0f"
                   " exec_us p50/p95/p99: %.1f/%.1f/%.1f\n",
                   static_cast<unsigned long long>(result.executions), report.DecisionPct(),
                   report.ConditionPct(), report.McdcPct(), corpus_->size(), exec_per_s,
                   exec_snap.Quantile(0.5) * 1e6, exec_snap.Quantile(0.95) * 1e6,
                   exec_snap.Quantile(0.99) * 1e6);
    }
  }

  void OnStop(double elapsed, const CampaignResult& result) {
    if (board_ != nullptr) {
      const double exec_per_s_final =
          elapsed > 0 ? static_cast<double>(result.executions) / elapsed : 0;
      PublishBoard(elapsed, result, result.report, exec_per_s_final);
    }
    if (tm_ == nullptr) return;
    const double exec_per_s =
        elapsed > 0 ? static_cast<double>(result.executions) / elapsed : 0;
    const double iters_per_s =
        elapsed > 0 ? static_cast<double>(result.model_iterations) / elapsed : 0;
    SyncRegistry(result, result.report, exec_per_s, iters_per_s);
    if (tm_->registry != nullptr) {
      for (int s = 0; s < kNumMutationStrategies; ++s) {
        const auto name = std::string(MutationStrategyName(static_cast<MutationStrategy>(s)));
        const auto idx = static_cast<std::size_t>(s);
        tm_->registry->GetCounter("fuzz.strategy." + name + ".applied")
            .Add(result.strategy_stats.applied[idx]);
        tm_->registry->GetCounter("fuzz.strategy." + name + ".new")
            .Add(result.strategy_stats.credited[idx]);
      }
    }
    // Residual diagnostics: every decision outcome still uncovered, with
    // the best margin distance observed toward it ("how close did we get,
    // and where"). Emitted before `stop` so a truncated trace that has the
    // stop record also has the residuals.
    if (prov_ != nullptr && tm_->trace != nullptr) {
      const auto residuals =
          coverage::ResidualDiagnostics(*spec_, sink_->total(), margins_, just_);
      for (const auto& r : residuals) {
        obs::TraceEvent ev("residual");
        ev.Str("name", r.name).I64("decision", r.decision).I64("outcome", r.outcome);
        if (r.distance < coverage::MarginRecorder::kUnreached) {
          ev.F64("distance", r.distance);
        } else {
          ev.Str("distance", "unreached");
        }
        if (r.justified) {
          ev.U64("justified", 1).Str("reason", r.justify_reason);
        }
        tm_->trace->Emit(ev);
      }
      tm_->trace->Emit(obs::TraceEvent("provenance")
                           .U64("covered", prov_->num_covered())
                           .U64("total", prov_->num_objectives())
                           .U64("residual", residuals.size()));
      if (tm_->registry != nullptr) {
        tm_->registry->GetGauge("fuzz.objectives_covered")
            .Set(static_cast<double>(prov_->num_covered()));
        tm_->registry->GetGauge("fuzz.objectives_total")
            .Set(static_cast<double>(prov_->num_objectives()));
        tm_->registry->GetGauge("fuzz.objectives_residual")
            .Set(static_cast<double>(residuals.size()));
      }
    }
    if (tm_->trace != nullptr) {
      tm_->trace->Emit(obs::TraceEvent("stop")
                           .F64("elapsed_s", elapsed)
                           .U64("exec", result.executions)
                           .U64("iters", result.model_iterations)
                           .U64("measure_iters", result.measure_iterations)
                           .F64("exec_per_s", exec_per_s)
                           .U64("corpus", corpus_->size())
                           .U64("test_cases", result.test_cases.size())
                           .F64("decision_pct", result.report.DecisionPct())
                           .F64("condition_pct", result.report.ConditionPct())
                           .F64("mcdc_pct", result.report.McdcPct()));
      tm_->trace->Flush();
    }
  }

 private:
  /// Snapshot of the local exec-duration histogram for Quantile().
  [[nodiscard]] obs::HistogramSnapshot ExecSnapshot() const {
    return obs::HistogramSnapshot{"fuzz.exec_seconds", exec_hist_.count(), exec_hist_.sum(),
                                  exec_hist_.min(),    exec_hist_.max(),   exec_hist_.bounds(),
                                  exec_hist_.bucket_counts()};
  }

  /// Pushes the heartbeat aggregates to the live status board (no-op
  /// without one).
  void PublishBoard(double now, const CampaignResult& result,
                    const coverage::MetricReport& report, double exec_per_s) {
    if (board_ == nullptr) return;
    obs::CampaignAggregates agg;
    agg.elapsed_s = now;
    agg.executions = result.executions;
    agg.model_iterations = result.model_iterations;
    agg.exec_per_s = exec_per_s;
    agg.corpus = corpus_->size();
    agg.test_cases = result.test_cases.size();
    agg.decision_pct = report.DecisionPct();
    agg.condition_pct = report.ConditionPct();
    agg.mcdc_pct = report.McdcPct();
    agg.adj_decision_pct = report.AdjustedDecisionPct();
    agg.adj_condition_pct = report.AdjustedConditionPct();
    agg.adj_mcdc_pct = report.AdjustedMcdcPct();
    if (prov_ != nullptr) {
      agg.objectives_covered = prov_->num_covered();
      agg.objectives_total = prov_->num_objectives();
    }
    agg.hangs = result.hangs;
    board_->UpdateAggregates(agg);
  }

  void SyncRegistry(const CampaignResult& result, const coverage::MetricReport& report,
                    double exec_per_s, double iters_per_s) {
    if (tm_->registry == nullptr) return;
    obs::Registry& reg = *tm_->registry;
    // Counters are monotonic and may be shared across campaigns (e.g. the
    // global registry in hybrid mode), so sync by delta.
    reg.GetCounter("fuzz.executions").Add(result.executions - synced_exec_);
    reg.GetCounter("fuzz.model_iterations").Add(result.model_iterations - synced_iters_);
    reg.GetCounter("fuzz.measure_iterations")
        .Add(result.measure_iterations - synced_measure_);
    synced_exec_ = result.executions;
    synced_iters_ = result.model_iterations;
    synced_measure_ = result.measure_iterations;
    reg.GetGauge("fuzz.exec_per_s").Set(exec_per_s);
    reg.GetGauge("fuzz.iters_per_s").Set(iters_per_s);
    reg.GetGauge("fuzz.corpus_size").Set(static_cast<double>(corpus_->size()));
    reg.GetGauge("fuzz.corpus_energy").Set(static_cast<double>(corpus_->total_energy()));
    reg.GetGauge("fuzz.coverage.decision_pct").Set(report.DecisionPct());
    reg.GetGauge("fuzz.coverage.condition_pct").Set(report.ConditionPct());
    reg.GetGauge("fuzz.coverage.mcdc_pct").Set(report.McdcPct());
  }

  const obs::CampaignTelemetry* tm_;
  const coverage::CoverageSink* sink_;
  const coverage::CoverageSpec* spec_;
  const Corpus* corpus_;
  const coverage::ProvenanceMap* prov_;
  const coverage::MarginRecorder* margins_;
  const coverage::JustificationSet* just_;
  obs::CampaignStatusBoard* board_;
  int worker_;
  obs::Histogram exec_hist_{obs::ExecDurationBucketBounds()};
  double next_stat_ = std::numeric_limits<double>::infinity();
  double window_start_ = 0;
  std::uint64_t window_exec_ = 0;
  std::uint64_t window_iters_ = 0;
  std::uint64_t synced_exec_ = 0;
  std::uint64_t synced_iters_ = 0;
  std::uint64_t synced_measure_ = 0;
  std::size_t last_frontier_ = 0;
};

Fuzzer::Fuzzer(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
               FuzzerOptions options, const vm::Program* fuzz_only_program)
    : instrumented_(&instrumented),
      fuzz_only_(fuzz_only_program),
      spec_(&spec),
      options_(options),
      machine_(instrumented),
      sink_(spec),
      tuple_mutator_(TupleLayout(instrumented.input_types), options.max_tuples),
      byte_mutator_(options.max_tuples * std::max<std::size_t>(instrumented.TupleSize(), 1)),
      rng_(options.seed) {
  last_cov_.Resize(static_cast<std::size_t>(spec.FuzzBranchCount()));
  assert(options_.model_oriented || fuzz_only_ != nullptr);
  // Comparison tracing (libFuzzer TORC): operands of failed equality
  // comparisons feed the mutation dictionary in both modes.
  machine_.set_cmp_trace(&cmp_trace_);
  // Hang containment: cap backward control transfers per model iteration.
  machine_.set_step_budget(options_.step_budget);
  // Self-profiling count plane: always attached (one add per dispatch); the
  // strobe sampler only arms in the --profile timed mode.
  exec_profile_.strobe_period = options_.profile_timing ? options_.profile_strobe_period : 0;
  exec_profile_.AttachTo(instrumented);
  machine_.set_profile(&exec_profile_);
  if (!options_.field_ranges.empty()) tuple_mutator_.SetFieldRanges(options_.field_ranges);
  // Residual-distance recording: margin events only fire if `instrumented`
  // carries kMargin instructions (the caller picks the lowering).
  if (options_.margins != nullptr) {
    options_.margins->Reset(spec);
    sink_.set_margin_recorder(options_.margins);
  }
}

Fuzzer::~Fuzzer() = default;

int Fuzzer::DecisionOutcomesCovered() const {
  int covered = 0;
  for (int slot = 0; slot < spec_->num_outcome_slots(); ++slot) {
    if (sink_.total().Test(static_cast<std::size_t>(slot))) ++covered;
  }
  return covered;
}

std::size_t Fuzzer::IdcDensity(std::size_t metric, const std::vector<std::uint8_t>& data) const {
  // The raw IDC metric is a sum over iterations, so longer inputs score
  // higher just by being long; energy and admission use the per-iteration
  // density instead (scaled x16 to keep integer resolution).
  const std::size_t tuple_size = std::max<std::size_t>(instrumented_->TupleSize(), 1);
  return metric * 16 / std::max<std::size_t>(data.size() / tuple_size, 1);
}

std::size_t Fuzzer::RunOneInstrumented(const std::vector<std::uint8_t>& data, bool* found_new,
                                       std::size_t* new_slots) {
  // Algorithm 1 (Model Coverage Collection).
  if (options_.input_tap != nullptr) {
    options_.input_tap(options_.input_tap_ctx, data.data(), data.size());
  }
  const std::size_t tuple_size = instrumented_->TupleSize();
  machine_.Reset();              // Model_init()
  std::size_t metric = 0;        // Iteration Difference Coverage
  last_cov_.ClearAll();          // lastCov = {0,...}
  bool any_new = false;
  std::size_t total_new = 0;
  std::uint64_t signature = 1469598103934665603ULL;
  last_input_hung_ = false;
  for (std::size_t off = 0; off + tuple_size <= data.size(); off += tuple_size) {
    sink_.BeginIteration();                    // g_CurrCov = {0,...}
    machine_.SetInputsFromBytes(data.data() + off);
    if (!machine_.Step(&sink_)) {              // Model_step(tuple)
      // Step budget blown: discard the aborted iteration's partial coverage
      // and stop replaying this input; the caller quarantines it. Coverage
      // accumulated by earlier (complete) iterations is kept.
      last_input_hung_ = true;
      break;
    }
    ++model_iterations_;
    const std::size_t fresh = sink_.AccumulateIteration();  // new bits vs g_TotalCov
    if (fresh > 0) {
      any_new = true;  // outputTestCase(data, size)
      total_new += fresh;
    }
    metric += sink_.curr().CountDifferences(last_cov_);  // per-branch difference count
    last_cov_ = sink_.curr();
    if (options_.collect_signatures) signature = MixSignature(signature, sink_.curr().Hash());
  }
  if (options_.collect_signatures) last_signature_ = signature;
  if (found_new != nullptr) *found_new = any_new;
  if (new_slots != nullptr) *new_slots = total_new;
  return metric;
}

void Fuzzer::MeasureOnInstrumented(const std::vector<std::uint8_t>& data) {
  // Measurement re-runs replay an input on the instrumented program (the
  // paper's post-hoc Simulink coverage measurement); their iterations are
  // booked under measure_iterations so throughput only counts the fuzzing
  // target.
  const std::uint64_t before = model_iterations_;
  bool unused_new = false;
  std::size_t unused_slots = 0;
  RunOneInstrumented(data, &unused_new, &unused_slots);
  measure_iterations_ += model_iterations_ - before;
  model_iterations_ = before;
}

std::size_t Fuzzer::RunOneEdges(const std::vector<std::uint8_t>& data, bool* found_new) {
  assert(fuzz_only_ != nullptr);
  if (options_.input_tap != nullptr) {
    options_.input_tap(options_.input_tap_ctx, data.data(), data.size());
  }
  if (!fuzz_machine_) {
    fuzz_machine_ = std::make_unique<vm::Machine>(*fuzz_only_);
    fuzz_machine_->set_cmp_trace(&cmp_trace_);
    fuzz_machine_->set_step_budget(options_.step_budget);
    fuzz_exec_profile_.strobe_period = exec_profile_.strobe_period;
    fuzz_exec_profile_.AttachTo(*fuzz_only_);
    fuzz_machine_->set_profile(&fuzz_exec_profile_);
  }
  vm::Machine* fuzz_machine = fuzz_machine_.get();
  if (edge_total_.empty()) {
    edge_total_.assign(static_cast<std::size_t>(fuzz_only_->num_edges), 0);
    edge_curr_.assign(static_cast<std::size_t>(fuzz_only_->num_edges), 0);
  }
  std::fill(edge_curr_.begin(), edge_curr_.end(), 0);
  const std::size_t tuple_size = fuzz_only_->TupleSize();
  fuzz_machine->Reset();
  assert(tuple_size == instrumented_->TupleSize());
  last_input_hung_ = false;
  for (std::size_t off = 0; off + tuple_size <= data.size(); off += tuple_size) {
    fuzz_machine->SetInputsFromBytes(data.data() + off);
    if (!fuzz_machine->Step(nullptr, edge_curr_.data())) {
      last_input_hung_ = true;
      break;
    }
    ++model_iterations_;
  }
  bool any_new = false;
  std::size_t covered = 0;
  std::uint64_t signature = 1469598103934665603ULL;
  for (std::size_t i = 0; i < edge_curr_.size(); ++i) {
    if (edge_curr_[i] != 0) {
      ++covered;
      if (options_.collect_signatures) signature = MixSignature(signature, i);
      if (edge_total_[i] == 0) {
        edge_total_[i] = 1;
        any_new = true;
      }
    }
  }
  if (options_.collect_signatures) last_signature_ = signature;
  if (found_new != nullptr) *found_new = any_new;
  return covered;
}

void Fuzzer::Attribute(double t, std::int64_t entry_id, const std::string& chain) {
  coverage::ProvenanceMap* prov = options_.provenance;
  std::vector<std::size_t> fresh =
      prov->AttributeSlots(sink_.total(), result_.executions, t, entry_id, chain);
  // MCDC pairs can complete without any new branch slot, so recheck every
  // decision whose evaluation set grew since the last admission.
  const auto& evals = sink_.evals();
  for (std::size_t d = 0; d < evals.size(); ++d) {
    if (evals[d].size() == seen_eval_sizes_[d]) continue;
    seen_eval_sizes_[d] = evals[d].size();
    const auto more = prov->AttributeMcdc(static_cast<coverage::DecisionId>(d), evals[d],
                                          result_.executions, t, entry_id, chain);
    fresh.insert(fresh.end(), more.begin(), more.end());
  }
  monitor_->OnObjectives(fresh);
}

void Fuzzer::Begin(const FuzzBudget& budget) {
  assert(!campaign_active_);
  campaign_active_ = true;
  campaign_done_ = false;
  interrupted_ = false;
  budget_ = budget;
  result_ = CampaignResult{};
  best_metric_ = 0;
  time_base_ = 0;
  track_strategies_ = options_.model_oriented;
  // One monotonic clock (obs::Clock) drives every timestamp of the
  // campaign: TestCase::time_s, elapsed_s, and trace-event times.
  watch_.Restart();
  monitor_ = std::make_unique<Monitor>(options_.telemetry, sink_, *spec_, corpus_,
                                       options_.provenance, options_.margins,
                                       options_.justifications, options_.status_board,
                                       options_.status_worker);

  // Per-objective first-hit attribution. Runs only on corpus admissions
  // (rare), so a provenance-enabled campaign pays nothing per execution;
  // a campaign without a ProvenanceMap skips even the admission-time work.
  if (options_.provenance != nullptr) seen_eval_sizes_.assign(spec_->decisions().size(), 0);

  if (options_.resume != nullptr) {
    // Resume path: restore the checkpointed state instead of seeding. The
    // first mutation drawn after this is the exact one the interrupted
    // campaign would have drawn next.
    RestoreFromState(*options_.resume);
  } else {
    monitor_->OnStart(options_, budget_);
    const std::size_t tuple_size = std::max<std::size_t>(instrumented_->TupleSize(), 1);
    // Seed corpus: a handful of short random inputs, then (when the static
    // analyzer supplied inport ranges) deterministic boundary-value inputs.
    // Seeding is execution work, so the timed profile books it as execute.
    obs::PhaseLapTimer lap(options_.profile_timing ? &phase_profile_ : nullptr);
    lap.Arm();
    for (std::size_t k = 0; k < options_.seed_inputs; ++k) {
      const std::size_t n = 1 + rng_.NextBelow(32);
      AdmitSeed(tuple_mutator_.RandomInput(n, rng_), "seed", tuple_size);
    }
    SeedBoundaryInputs(tuple_size);
    frontier_exhausted_ = AllReachableCovered();
    focus_frontier_stale_ = true;
    lap.Lap(obs::ProfilePhase::kExecute);
  }
  // First periodic checkpoint: the next multiple of checkpoint_every above
  // the current execution count (resume restarts the cadence from there).
  next_checkpoint_ =
      options_.checkpoint_every > 0
          ? (result_.executions / options_.checkpoint_every + 1) * options_.checkpoint_every
          : std::numeric_limits<std::uint64_t>::max();
}

void Fuzzer::AdmitSeed(std::vector<std::uint8_t> data, const char* chain,
                       std::size_t tuple_size) {
  CorpusEntry seed;
  seed.data = std::move(data);
  bool found_new = false;
  std::size_t new_slots = 0;
  std::size_t metric = 0;
  if (options_.model_oriented) {
    metric = IdcDensity(RunOneInstrumented(seed.data, &found_new, &new_slots), seed.data);
    seed.metric = metric;
  } else {
    seed.metric = RunOneEdges(seed.data, &found_new);
    metric = seed.metric;
    if (found_new && !last_input_hung_) MeasureOnInstrumented(seed.data);
  }
  ++result_.executions;
  if (options_.status_board != nullptr) {
    options_.status_board->StampWorker(options_.status_worker, result_.executions);
  }
  if (last_input_hung_) {
    // A seed that wedges the model is quarantined, not admitted — the rest
    // of the seed schedule proceeds (same RNG draws as a healthy campaign).
    QuarantineHang(seed.data);
    return;
  }
  seed.new_slots = new_slots;
  seed.signature = last_signature_;
  if (!options_.use_idc_energy) seed.metric = 0;
  if (found_new) {
    result_.test_cases.push_back(
        TestCase{seed.data, Elapsed(), new_slots, DecisionOutcomesCovered()});
    monitor_->OnNewCoverage(result_.test_cases.back().time_s, result_,
                            result_.test_cases.back(), metric, tuple_size);
  }
  best_metric_ = std::max(best_metric_, seed.metric);
  if (options_.provenance != nullptr) Attribute(Elapsed(), corpus_.next_id(), chain);
  corpus_.Add(std::move(seed));
  monitor_->OnCorpusAdd(Elapsed(), corpus_.entry(corpus_.size() - 1), chain);
}

void Fuzzer::SeedBoundaryInputs(std::size_t tuple_size) {
  if (options_.boundary_seed_ranges.empty()) return;
  const TupleLayout& layout = tuple_mutator_.layout();
  if (layout.num_fields() == 0 || layout.tuple_size() == 0) return;
  // Four deterministic inputs over the analyzer's harvested ranges: every
  // field at its low bound, high bound, midpoint, and alternating lo/hi per
  // iteration (the alternation drives delta-sensitive blocks: rate limiters,
  // edge detectors, counters). Eight tuples each so stateful blocks get a
  // few steps of the same regime.
  constexpr std::size_t kTuples = 8;
  auto field_value = [&](std::size_t f, int which) {
    const FieldRange& r = options_.boundary_seed_ranges[f];
    if (which == 0) return r.lo;
    if (which == 1) return r.hi;
    return r.lo + 0.5 * (r.hi - r.lo);
  };
  for (int variant = 0; variant < 4; ++variant) {
    std::vector<std::uint8_t> data(kTuples * layout.tuple_size(), 0);
    for (std::size_t tuple = 0; tuple < kTuples; ++tuple) {
      for (std::size_t f = 0; f < layout.num_fields(); ++f) {
        if (f >= options_.boundary_seed_ranges.size() ||
            !options_.boundary_seed_ranges[f].active) {
          continue;
        }
        const int which = variant == 3 ? static_cast<int>(tuple % 2) : variant;
        const double v = field_value(f, which);
        const ir::DType t = layout.field_type(f);
        const std::size_t off = tuple * layout.tuple_size() + layout.field_offset(f);
        (ir::DTypeIsFloat(t) ? ir::Value::Real(t, v)
                             : ir::Value::Int(t, static_cast<std::int64_t>(v)))
            .ToBytes(data.data() + off);
      }
    }
    AdmitSeed(std::move(data), "boundary", tuple_size);
  }
}

bool Fuzzer::AllReachableCovered() const {
  if (options_.justifications == nullptr) return false;
  const int n = spec_->FuzzBranchCount();
  for (int slot = 0; slot < n; ++slot) {
    if (options_.justifications->SlotExcluded(slot)) continue;
    if (!sink_.total().Test(static_cast<std::size_t>(slot))) return false;
  }
  return true;
}

const std::vector<std::size_t>* Fuzzer::PickFocusFields() {
  focus_component_ = -1;
  const FocusPlan& plan = *options_.focus;
  if (focus_frontier_stale_) {
    // Frontier = uncovered, not analyzer-excluded, and actually influenced
    // by at least one inport field. Rebuilt only after coverage growth (or
    // Begin/resume), so the per-execution cost is an index rotation.
    focus_frontier_.clear();
    const int n = spec_->FuzzBranchCount();
    for (int slot = 0; slot < n && slot < static_cast<int>(plan.slot_fields.size()); ++slot) {
      if (sink_.total().Test(static_cast<std::size_t>(slot))) continue;
      if (options_.justifications != nullptr && options_.justifications->SlotExcluded(slot)) {
        continue;
      }
      if (plan.slot_fields[static_cast<std::size_t>(slot)].empty()) continue;
      focus_frontier_.push_back(slot);
    }
    focus_frontier_stale_ = false;
  }
  if (focus_frontier_.empty()) return nullptr;
  // Rotate through the frontier so one stubborn objective cannot starve the
  // rest. Pure function of the execution count: deterministic and stable
  // across checkpoint/resume.
  const std::uint64_t rotate = std::max<std::uint64_t>(plan.rotate_every, 1);
  const std::size_t idx = static_cast<std::size_t>((result_.executions / rotate) %
                                                   focus_frontier_.size());
  const int slot = focus_frontier_[idx];
  if (static_cast<std::size_t>(slot) < plan.slot_component.size()) {
    focus_component_ = plan.slot_component[static_cast<std::size_t>(slot)];
  }
  return &plan.slot_fields[static_cast<std::size_t>(slot)];
}

std::uint64_t Fuzzer::RunChunk(std::uint64_t until_executions) {
  assert(campaign_active_);
  if (campaign_done_) return result_.executions;
  const std::size_t tuple_size = std::max<std::size_t>(instrumented_->TupleSize(), 1);
  // Hoisted so the per-execution stamp is a null check when monitoring is
  // off (the --serve-off case pays nothing measurable).
  obs::CampaignStatusBoard* const board = options_.status_board;
  // Phase lap clock: one clock read per phase boundary, and none at all
  // unless the --profile timed mode is on (a disarmed lap is a null check).
  obs::PhaseLapTimer lap(options_.profile_timing ? &phase_profile_ : nullptr);

  while (true) {
    const double now = Elapsed();
    if (now >= monitor_->next_stat_due()) {
      result_.model_iterations = model_iterations_;
      result_.measure_iterations = measure_iterations_;
      result_.strategy_stats = strategy_stats_;
      monitor_->Heartbeat(now, result_, strategy_stats_);
      PublishProfile(now);
    }
    // Cooperative interruption (SIGINT/SIGTERM): the in-flight execution
    // already finished; flush a final checkpoint and hand back to the
    // caller, who runs Finish() for the partial report.
    if (options_.interrupt != nullptr &&
        options_.interrupt->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      if (!options_.checkpoint_path.empty()) {
        lap.Arm();
        WriteCheckpoint();
        lap.Lap(obs::ProfilePhase::kCheckpoint);
      }
      break;
    }
    if (now >= budget_.wall_seconds || result_.executions >= budget_.max_executions) {
      campaign_done_ = true;
      break;
    }
    // Early stop: the static analyzer justified every remaining uncovered
    // slot as unreachable — more executions cannot find new coverage.
    if (frontier_exhausted_) {
      campaign_done_ = true;
      break;
    }
    // Pathological campaign where every seed hung: nothing to mutate.
    if (corpus_.empty()) {
      campaign_done_ = true;
      break;
    }
    if (result_.executions >= until_executions) break;  // chunk boundary, not campaign end
    // Periodic checkpoint, taken between executions so it captures a state
    // the resumed campaign continues from without perturbing the schedule.
    if (result_.executions >= next_checkpoint_) {
      if (!options_.checkpoint_path.empty()) {
        lap.Arm();
        WriteCheckpoint();
        lap.Lap(obs::ProfilePhase::kCheckpoint);
      }
      next_checkpoint_ += options_.checkpoint_every;
    }

    lap.Arm();
    const CorpusEntry& parent = corpus_.Pick(rng_);
    const std::vector<std::uint8_t>& partner =
        corpus_.size() > 1 ? corpus_.PickUniform(rng_).data : kEmptyInput;
    applied_.clear();
    // With --focus, the field-edit strategies target the frontier
    // objective's dependence slice; without it (focus == nullptr) this is a
    // no-op and the RNG schedule is bit-identical to pre-focus builds.
    const std::vector<std::size_t>* focus_fields =
        options_.focus != nullptr && options_.model_oriented ? PickFocusFields() : nullptr;
    std::vector<std::uint8_t> data =
        options_.model_oriented
            ? tuple_mutator_.Mutate(parent.data, partner, rng_, &cmp_trace_,
                                    track_strategies_ ? &applied_ : nullptr, focus_fields)
            : byte_mutator_.Mutate(parent.data, partner, rng_, &cmp_trace_);
    if (track_strategies_) strategy_stats_.CountApplied(applied_);
    lap.Lap(obs::ProfilePhase::kMutate);

    bool found_new = false;
    std::size_t new_slots = 0;
    std::size_t metric = 0;
    if (options_.model_oriented) {
      metric = IdcDensity(RunOneInstrumented(data, &found_new, &new_slots), data);
    } else {
      metric = RunOneEdges(data, &found_new);
      if (found_new && !last_input_hung_) MeasureOnInstrumented(data);
    }
    lap.Lap(obs::ProfilePhase::kExecute);
    const std::uint64_t signature = last_signature_;
    ++result_.executions;
    if (board != nullptr) board->StampWorker(options_.status_worker, result_.executions);

    if (last_input_hung_) {
      // Step-budget blowout: quarantine the input and move on (libFuzzer's
      // timeout-artifact handling). Coverage from the input's complete
      // iterations is kept in the frontier, but the input is neither
      // admitted nor exported as a test case — it wedges the model.
      QuarantineHang(data);
      lap.Lap(obs::ProfilePhase::kCoverageUpdate);
      continue;
    }

    if (options_.focus != nullptr && focus_component_ >= 0) {
      result_.focus_stats.EnsureSize(static_cast<std::size_t>(options_.focus->num_components));
      ++result_.focus_stats.executions[static_cast<std::size_t>(focus_component_)];
      if (found_new) {
        ++result_.focus_stats.credited[static_cast<std::size_t>(focus_component_)];
      }
    }
    if (found_new) {
      if (track_strategies_) strategy_stats_.CountCredited(applied_);
      result_.test_cases.push_back(
          TestCase{data, Elapsed(), new_slots, DecisionOutcomesCovered()});
      monitor_->OnNewCoverage(result_.test_cases.back().time_s, result_,
                              result_.test_cases.back(), metric, tuple_size);
      // Only new coverage can exhaust the frontier, so the scan stays off
      // the hot path.
      frontier_exhausted_ = AllReachableCovered();
      focus_frontier_stale_ = true;  // some frontier objective may be done
    }
    // Corpus policy (paper §3.2.2): keep inputs that trigger new coverage,
    // and inputs whose Iteration Difference Coverage beats what we've seen.
    const bool idc_interesting =
        options_.model_oriented && options_.use_idc_energy && metric > best_metric_;
    if (found_new || idc_interesting) {
      best_metric_ = std::max(best_metric_, metric);
      const std::string chain =
          options_.model_oriented ? StrategyChainString(applied_) : std::string("bytes");
      if (options_.provenance != nullptr) Attribute(Elapsed(), corpus_.next_id(), chain);
      CorpusEntry entry;
      entry.data = std::move(data);
      entry.metric = options_.use_idc_energy ? metric : 0;
      entry.new_slots = new_slots;
      entry.signature = signature;
      entry.parent_id = parent.id;
      entry.depth = parent.depth + 1;
      entry.chain = applied_;
      corpus_.Add(std::move(entry));
      monitor_->OnCorpusAdd(Elapsed(), corpus_.entry(corpus_.size() - 1), chain);
    }
    lap.Lap(obs::ProfilePhase::kCoverageUpdate);
  }
  result_.model_iterations = model_iterations_;
  result_.measure_iterations = measure_iterations_;
  // Workers finish at different times; the stall watchdog exempts lanes
  // whose campaign is over (budget, frontier, or interrupt).
  if (board != nullptr && (campaign_done_ || interrupted_)) {
    board->SetWorkerDone(options_.status_worker);
  }
  return result_.executions;
}

void Fuzzer::ImportEntry(const std::vector<std::uint8_t>& data, std::uint64_t signature) {
  assert(campaign_active_);
  // Replay the foreign input so the local sink and feedback maps absorb its
  // coverage; book the iterations as measurement (it is a re-run of work
  // another worker already paid for).
  const std::uint64_t before = model_iterations_;
  bool found_new = false;
  std::size_t new_slots = 0;
  std::size_t metric = 0;
  if (options_.model_oriented) {
    metric = IdcDensity(RunOneInstrumented(data, &found_new, &new_slots), data);
  } else {
    metric = RunOneEdges(data, &found_new);
    if (found_new) MeasureOnInstrumented(data);
  }
  measure_iterations_ += model_iterations_ - before;
  model_iterations_ = before;

  best_metric_ = std::max(best_metric_, options_.use_idc_energy ? metric : 0);
  CorpusEntry entry;
  entry.data = data;
  entry.metric = options_.use_idc_energy ? metric : 0;
  entry.new_slots = new_slots;
  entry.signature = signature;
  corpus_.Add(std::move(entry));
  monitor_->OnCorpusAdd(Elapsed(), corpus_.entry(corpus_.size() - 1), "import");
}

CampaignResult Fuzzer::Finish() {
  assert(campaign_active_);
  obs::PhaseLapTimer lap(options_.profile_timing ? &phase_profile_ : nullptr);
  lap.Arm();
  // Final MCDC sweep: independence pairs completed by inputs that were not
  // retained in the corpus (neither new coverage nor a better IDC score)
  // are attributed here, with entry id -1 / chain "unretained" — honest
  // bookkeeping for pairs no exported test case reproduces on its own.
  if (options_.provenance != nullptr) {
    std::vector<std::size_t> fresh;
    const auto& evals = sink_.evals();
    for (std::size_t d = 0; d < evals.size(); ++d) {
      const auto more =
          options_.provenance->AttributeMcdc(static_cast<coverage::DecisionId>(d), evals[d],
                                             result_.executions, Elapsed(), -1,
                                             "unretained");
      fresh.insert(fresh.end(), more.begin(), more.end());
    }
    monitor_->OnObjectives(fresh);
  }

  result_.elapsed_s = Elapsed();
  result_.model_iterations = model_iterations_;
  result_.measure_iterations = measure_iterations_;
  result_.report = coverage::ComputeReport(sink_, options_.justifications);
  result_.strategy_stats = strategy_stats_;
  // Determinism fingerprints: identical for an interrupted-and-resumed
  // campaign and an uninterrupted one (times are excluded by construction).
  result_.corpus_fingerprint = CorpusFingerprint(corpus_);
  result_.coverage_fingerprint = CoverageFingerprint(sink_);
  result_.interrupted = interrupted_;
  lap.Lap(obs::ProfilePhase::kReport);
  result_.exec_profile = exec_profile_;
  result_.fuzz_exec_profile = fuzz_exec_profile_;
  result_.phase_profile = phase_profile_;
  PublishProfile(result_.elapsed_s);
  monitor_->OnStop(result_.elapsed_s, result_);
  campaign_active_ = false;
  campaign_done_ = true;
  if (options_.status_board != nullptr) {
    options_.status_board->SetWorkerDone(options_.status_worker);
  }
  return std::move(result_);
}

FuzzerState Fuzzer::SaveState() const {
  assert(campaign_active_);
  FuzzerState s;
  s.rng_state = rng_.GetState();
  s.executions = result_.executions;
  s.model_iterations = model_iterations_;
  s.measure_iterations = measure_iterations_;
  s.hangs = result_.hangs;
  s.elapsed_s = Elapsed();
  s.best_metric = best_metric_;
  s.frontier_exhausted = frontier_exhausted_;
  s.strategy_stats = strategy_stats_;
  s.corpus.reserve(corpus_.size());
  for (std::size_t i = 0; i < corpus_.size(); ++i) s.corpus.push_back(corpus_.entry(i));
  s.test_cases = result_.test_cases;
  s.total_bits = sink_.total().size();
  s.total_words = sink_.total().words();
  s.evals.reserve(sink_.evals().size());
  for (const auto& set : sink_.evals()) {
    std::vector<std::uint64_t> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());  // canonical on-disk order
    s.evals.push_back(std::move(sorted));
  }
  s.seen_eval_sizes.assign(seen_eval_sizes_.begin(), seen_eval_sizes_.end());
  s.edge_total = edge_total_;
  s.cmp_trace = cmp_trace_.Save();
  if (options_.provenance != nullptr) s.provenance_hits = options_.provenance->hits();
  s.exec_profile = exec_profile_;
  s.fuzz_exec_profile = fuzz_exec_profile_;
  s.phase_profile = phase_profile_;
  return s;
}

std::uint64_t Fuzzer::spec_fingerprint() const { return SpecFingerprint(*spec_, *instrumented_); }

CampaignCheckpoint Fuzzer::MakeCheckpoint() const {
  CampaignCheckpoint ckpt;
  ckpt.spec_fingerprint = spec_fingerprint();
  ckpt.seed = options_.seed;
  ckpt.model_oriented = options_.model_oriented;
  ckpt.use_idc_energy = options_.use_idc_energy;
  ckpt.analyzed = options_.justifications != nullptr;
  ckpt.max_tuples = options_.max_tuples;
  ckpt.step_budget = options_.step_budget;
  ckpt.num_workers = 1;
  ckpt.scanned = {0};
  ckpt.elapsed_s = Elapsed();
  ckpt.workers.push_back(SaveState());
  return ckpt;
}

void Fuzzer::RestoreFromState(const FuzzerState& state) {
  rng_.SetState(state.rng_state);
  result_.executions = state.executions;
  result_.test_cases = state.test_cases;
  result_.hangs = state.hangs;
  model_iterations_ = state.model_iterations;
  measure_iterations_ = state.measure_iterations;
  result_.model_iterations = model_iterations_;
  result_.measure_iterations = measure_iterations_;
  strategy_stats_ = state.strategy_stats;
  best_metric_ = state.best_metric;
  frontier_exhausted_ = state.frontier_exhausted;
  focus_frontier_stale_ = true;  // rebuilt from restored coverage on demand
  time_base_ = state.elapsed_s;
  corpus_.Restore(state.corpus);
  const bool sink_ok = state.total_bits == sink_.total().size() &&
                       sink_.RestoreCampaign(state.total_words, state.evals);
  assert(sink_ok && "checkpoint coverage shape mismatch (ValidateCheckpoint not run?)");
  (void)sink_ok;
  cmp_trace_.Restore(state.cmp_trace);
  edge_total_ = state.edge_total;
  if (!edge_total_.empty()) edge_curr_.assign(edge_total_.size(), 0);
  // Self-profile planes: counters and the strobe countdown carry over so a
  // resumed profile is bit-identical; the strobe period stays an option of
  // the resuming campaign. AttachTo re-sizes defensively (a fingerprint-
  // validated checkpoint always matches already); the fuzz-only plane is
  // re-armed by the lazy fuzz-machine init.
  exec_profile_ = state.exec_profile;
  exec_profile_.strobe_period = options_.profile_timing ? options_.profile_strobe_period : 0;
  exec_profile_.AttachTo(*instrumented_);
  fuzz_exec_profile_ = state.fuzz_exec_profile;
  phase_profile_ = state.phase_profile;
  if (options_.provenance != nullptr) {
    seen_eval_sizes_.assign(spec_->decisions().size(), 0);
    for (std::size_t d = 0; d < state.seen_eval_sizes.size() && d < seen_eval_sizes_.size();
         ++d) {
      seen_eval_sizes_[d] = static_cast<std::size_t>(state.seen_eval_sizes[d]);
    }
    // Replay first-hit attributions in discovery order; the resumed trace
    // re-emits them so `cftcg explain` works on the resumed trace alone.
    std::vector<std::size_t> fresh;
    for (const coverage::ObjectiveFirstHit& hit : state.provenance_hits) {
      if (options_.provenance->AbsorbHit(hit)) {
        fresh.push_back(options_.provenance->hits().size() - 1);
      }
    }
    monitor_->OnObjectives(fresh);
  }
  monitor_->OnResume(options_, result_, time_base_, corpus_.size());
}

void Fuzzer::WriteCheckpoint() {
  const CampaignCheckpoint ckpt = MakeCheckpoint();
  const std::string bytes = SerializeCheckpoint(ckpt);
  const Status status = support::WriteFileAtomic(options_.checkpoint_path, bytes);
  if (!status.ok()) {
    std::fprintf(stderr, "cftcg: checkpoint write failed: %s\n", status.message().c_str());
  }
  monitor_->OnCheckpoint(Elapsed(), result_.executions, bytes.size(), status.ok());
}

void Fuzzer::QuarantineHang(const std::vector<std::uint8_t>& data) {
  ++result_.hangs;
  std::string file;
  if (!options_.hangs_dir.empty()) {
    // Content-hashed name: the same wedging input rediscovered (or re-hit
    // after a resume) maps to the same artifact, libFuzzer-style.
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "hang-%016llx.bin", static_cast<unsigned long long>(h));
    if (support::EnsureDir(options_.hangs_dir).ok()) {
      file = options_.hangs_dir + "/" + name;
      const Status status = support::WriteFileAtomic(
          file, std::string_view(reinterpret_cast<const char*>(data.data()), data.size()));
      if (!status.ok()) {
        std::fprintf(stderr, "cftcg: hang artifact write failed: %s\n",
                     status.message().c_str());
        file.clear();
      }
    }
  }
  monitor_->OnHang(Elapsed(), result_.executions, data.size(), file);
}

void Fuzzer::PublishProfile(double now) {
  // Profile snapshots flow to two sinks on the same heartbeat cadence: the
  // /profile HTTP endpoint (via the publisher) and, in timed mode, `profile`
  // trace events (trace-summary reports the first->last deltas).
  const bool trace_it = options_.profile_timing && options_.telemetry != nullptr &&
                        options_.telemetry->trace != nullptr;
  if (options_.profile_publisher == nullptr && !trace_it) return;
  obs::CampaignProfile profile =
      obs::BuildCampaignProfile(*instrumented_, exec_profile_, phase_profile_);
  profile.mode = options_.model_oriented ? "cftcg" : "fuzz_only";
  profile.seed = options_.seed;
  profile.workers = 1;
  profile.elapsed_s = now;
  if (options_.profile_publisher != nullptr) {
    options_.profile_publisher->Publish(profile.ToJson());
  }
  if (trace_it) {
    auto phase_s = [&](obs::ProfilePhase p) {
      return phase_profile_.seconds[static_cast<std::size_t>(p)];
    };
    obs::TraceEvent ev("profile");
    ev.F64("time_s", now)
        .U64("steps", profile.vm_steps)
        .U64("dispatches", profile.vm_dispatches)
        .U64("samples", profile.samples)
        .F64("execute_s", phase_s(obs::ProfilePhase::kExecute))
        .F64("mutate_s", phase_s(obs::ProfilePhase::kMutate))
        .F64("coverage_s", phase_s(obs::ProfilePhase::kCoverageUpdate));
    if (!profile.blocks.empty()) {
      ev.Str("hot_block", profile.blocks[0].name)
          .F64("hot_pct", profile.blocks[0].dispatch_pct);
    }
    options_.telemetry->trace->Emit(ev);
  }
}

CampaignResult Fuzzer::Run(const FuzzBudget& budget) {
  Begin(budget);
  RunChunk(std::numeric_limits<std::uint64_t>::max());
  return Finish();
}

}  // namespace cftcg::fuzz
