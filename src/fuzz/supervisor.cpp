#include "fuzz/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_set>

#include "coverage/report.hpp"
#include "obs/clock.hpp"
#include "obs/monitor.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "support/atomic_file.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"

namespace cftcg::fuzz {

namespace {

// -- Pipe frame protocol ---------------------------------------------------
// [magic u32][type u8][len u64][fnv64(payload) u64][payload]. The checksum
// is not a security boundary — it catches torn writes and the injector's
// deliberate bit flips, turning a corrupted delta into a detectable worker
// exit instead of silent state divergence.

constexpr std::uint32_t kFrameMagic = 0x57544643;  // "CFTW"
constexpr std::uint64_t kMaxFrame = 1ULL << 30;
constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 8;

enum MsgType : std::uint8_t {
  kMsgRun = 1,
  kMsgSync = 2,
  kMsgFinish = 3,
  kMsgHello = 4,
  kMsgRound = 5,
  kMsgState = 6,
  kMsgResult = 7,
};

constexpr std::uint8_t kNoFault = 0xFF;

// Child exit codes (diagnostic only; any abnormal exit triggers recovery).
constexpr int kExitCrashFault = 77;  // injected crash
constexpr int kExitProtocol = 70;    // malformed command frame

std::uint64_t Fnv64(const char* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void PutU32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}
void PutU64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}
std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}
std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::string FrameHeader(std::uint8_t type, const std::string& payload) {
  std::string h(kHeaderSize, '\0');
  PutU32(&h[0], kFrameMagic);
  h[4] = static_cast<char>(type);
  PutU64(&h[5], payload.size());
  PutU64(&h[13], Fnv64(payload.data(), payload.size()));
  return h;
}

// -- Child-side blocking framing ------------------------------------------

bool ChildWriteFrame(int fd, std::uint8_t type, const std::string& payload) {
  const std::string header = FrameHeader(type, payload);
  if (!support::io::WriteFull(fd, header.data(), header.size()).ok()) return false;
  return support::io::WriteFull(fd, payload.data(), payload.size()).ok();
}

bool ChildReadFrame(int fd, std::uint8_t* type, std::string* payload) {
  char header[kHeaderSize];
  if (!support::io::ReadFull(fd, header, sizeof(header)).ok()) return false;
  if (GetU32(&header[0]) != kFrameMagic) return false;
  *type = static_cast<std::uint8_t>(header[4]);
  const std::uint64_t len = GetU64(&header[5]);
  const std::uint64_t sum = GetU64(&header[13]);
  if (len > kMaxFrame) return false;
  payload->assign(len, '\0');
  if (len > 0 && !support::io::ReadFull(fd, payload->data(), len).ok()) return false;
  return Fnv64(payload->data(), payload->size()) == sum;
}

// -- Crash-input capture ---------------------------------------------------
// A shared-memory window the worker stamps before every execution (via
// FuzzerOptions::input_tap). When the process dies mid-execution, the
// supervisor reads the window and quarantines the in-flight input. The
// sequence counter is even when the stamp is complete; with the writer dead
// a torn stamp is still usable forensics, just flagged as such.

constexpr std::size_t kCaptureCap = 1 << 16;

struct InputCapture {
  std::atomic<std::uint32_t> seq;
  std::uint32_t len;       // stamped bytes (truncated to kCaptureCap)
  std::uint32_t full_len;  // original input size
  std::uint8_t data[kCaptureCap];
};

void StampInput(void* ctx, const std::uint8_t* data, std::size_t size) {
  auto* cap = static_cast<InputCapture*>(ctx);
  cap->seq.fetch_add(1, std::memory_order_release);  // odd: stamp in progress
  cap->full_len = static_cast<std::uint32_t>(size);
  cap->len = static_cast<std::uint32_t>(std::min(size, kCaptureCap));
  std::memcpy(cap->data, data, cap->len);
  cap->seq.fetch_add(1, std::memory_order_release);  // even: stamp complete
}

// -- SIGCHLD notification --------------------------------------------------
// The handler writes one byte into a self-pipe the supervisor polls along
// with the worker pipes, so a lane death wakes the driver immediately even
// when it is idling between replies. Reaping happens synchronously in the
// driver (waitpid), never in the handler.

int g_sigchld_pipe = -1;

void SigchldHandler(int) {
  if (g_sigchld_pipe >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_sigchld_pipe, &b, 1);
  }
}

// -- Worker process --------------------------------------------------------

struct ChildSpec {
  FuzzerOptions wopts;          // per-lane options (telemetry/board stripped)
  FuzzBudget budget;
  const FuzzerState* resume = nullptr;
  bool want_provenance = false;
  int cmd_fd = -1;              // commands in
  int res_fd = -1;              // replies out
  InputCapture* capture = nullptr;
};

[[noreturn]] void ChildRun(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
                           const vm::Program* fuzz_only, ChildSpec cs) {
  // Lane processes must outlive terminal signals aimed at the campaign (the
  // supervisor coordinates shutdown at barriers) but never outlive the
  // supervisor itself.
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);
  std::signal(SIGCHLD, SIG_DFL);
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif

  FuzzerOptions wopts = cs.wopts;
  std::unique_ptr<coverage::ProvenanceMap> prov;
  if (cs.want_provenance) {
    prov = std::make_unique<coverage::ProvenanceMap>(spec);
    wopts.provenance = prov.get();
  }
  wopts.resume = cs.resume;
  if (cs.capture != nullptr) {
    wopts.input_tap = StampInput;
    wopts.input_tap_ctx = cs.capture;
  }

  Fuzzer fuzzer(instrumented, spec, wopts, fuzz_only);
  fuzzer.Begin(cs.budget);
  // Entries the supervisor already knows about: everything restored from a
  // resume state was scanned at the barrier that produced the state.
  std::size_t shipped = cs.resume != nullptr ? fuzzer.corpus().size() : 0;

  const auto send_corpus_tail = [&](std::uint8_t type) {
    wire::Writer w;
    const Corpus& corpus = fuzzer.corpus();
    w.U64(shipped);  // base cursor: parent skips anything it already scanned
    w.U8(fuzzer.done() ? 1 : 0);
    w.U64(fuzzer.executions());
    w.U64(corpus.size() - shipped);
    for (std::size_t k = shipped; k < corpus.size(); ++k) {
      const CorpusEntry& e = corpus.entry(k);
      w.Bytes(e.data);
      w.U64(e.signature);
    }
    shipped = corpus.size();
    if (!ChildWriteFrame(cs.res_fd, type, w.take())) std::_Exit(kExitProtocol + 1);
  };

  send_corpus_tail(kMsgHello);

  while (true) {
    std::uint8_t type = 0;
    std::string payload;
    if (!ChildReadFrame(cs.cmd_fd, &type, &payload)) std::_Exit(kExitProtocol);
    wire::Reader r(payload);
    if (type == kMsgRun) {
      const std::uint64_t target = r.U64();
      const std::uint8_t fault = r.U8();
      const std::uint64_t fault_at = r.U64();
      const std::uint64_t fault_param = r.U64();
      if (r.failed()) std::_Exit(kExitProtocol);
      if (fault == static_cast<std::uint8_t>(support::FaultKind::kCrash) ||
          fault == static_cast<std::uint8_t>(support::FaultKind::kHang)) {
        // Run up to the fault point so the lane dies with real mid-round
        // state (that is what recovery has to cope with), then fault.
        fuzzer.RunChunk(std::min(fault_at, target));
        if (fault == static_cast<std::uint8_t>(support::FaultKind::kCrash)) {
          std::_Exit(kExitCrashFault);
        }
        while (true) support::io::SleepMs(1000);  // wedged: heartbeat timeout
      }
      fuzzer.RunChunk(target);
      if (fault == static_cast<std::uint8_t>(support::FaultKind::kSlowLane)) {
        support::io::SleepMs(static_cast<int>(fault_param));
      }
      send_corpus_tail(kMsgRound);
    } else if (type == kMsgSync) {
      const std::uint64_t count = r.U64();
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::vector<std::uint8_t> data = r.Bytes();
        const std::uint64_t signature = r.U64();
        if (r.failed()) std::_Exit(kExitProtocol);
        fuzzer.ImportEntry(data, signature);
      }
      shipped = fuzzer.corpus().size();  // imports carry already-seen signatures
      wire::Writer w;
      AppendFuzzerState(w, fuzzer.SaveState());
      if (!ChildWriteFrame(cs.res_fd, kMsgState, w.take())) std::_Exit(kExitProtocol + 1);
    } else if (type == kMsgFinish) {
      const FuzzerState st = fuzzer.SaveState();
      const CampaignResult res = fuzzer.Finish();
      wire::Writer w;
      AppendFuzzerState(w, st);
      w.U64(res.corpus_fingerprint);
      w.U64(res.exec_profile.strobe_period);
      w.U64Vec(res.focus_stats.executions);
      w.U64Vec(res.focus_stats.credited);
      // Post-Finish provenance: includes the "unretained" MCDC sweep the
      // barrier states never see.
      const auto& hits =
          wopts.provenance != nullptr ? wopts.provenance->hits()
                                      : std::vector<coverage::ObjectiveFirstHit>{};
      w.U64(hits.size());
      for (const coverage::ObjectiveFirstHit& h : hits) {
        w.U8(static_cast<std::uint8_t>(h.kind));
        w.Str(h.name);
        w.I64(h.decision);
        w.I64(h.condition);
        w.I64(h.outcome);
        w.I64(h.slot);
        w.U64(h.iteration);
        w.F64(h.time_s);
        w.I64(h.entry_id);
        w.Str(h.chain);
      }
      if (!ChildWriteFrame(cs.res_fd, kMsgResult, w.take())) std::_Exit(kExitProtocol + 1);
      std::_Exit(0);
    } else {
      std::_Exit(kExitProtocol);
    }
  }
}

// Parsed ROUND / HELLO reply.
struct RoundReply {
  std::uint64_t base = 0;
  bool done = false;
  std::uint64_t executions = 0;
  std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> entries;
};

bool ParseRoundReply(const std::string& payload, RoundReply* out) {
  wire::Reader r(payload);
  out->base = r.U64();
  out->done = r.U8() != 0;
  out->executions = r.U64();
  const std::uint64_t count = r.U64();
  out->entries.clear();
  for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
    std::vector<std::uint8_t> data = r.Bytes();
    const std::uint64_t sig = r.U64();
    out->entries.emplace_back(std::move(data), sig);
  }
  return !r.failed();
}

struct LaneResult {
  FuzzerState state;
  std::uint64_t corpus_fingerprint = 0;
  std::uint64_t strobe_period = 0;
  FocusStats focus_stats;
  std::vector<coverage::ObjectiveFirstHit> hits;
  bool from_finish = false;  // false: reconstructed from the last barrier state
};

bool ParseLaneResult(const std::string& payload, LaneResult* out) {
  wire::Reader r(payload);
  if (!ReadFuzzerState(r, out->state)) return false;
  out->corpus_fingerprint = r.U64();
  out->strobe_period = r.U64();
  out->focus_stats.executions = r.U64Vec();
  out->focus_stats.credited = r.U64Vec();
  const std::uint64_t num_hits = r.U64();
  for (std::uint64_t i = 0; i < num_hits && !r.failed(); ++i) {
    coverage::ObjectiveFirstHit h;
    h.kind = static_cast<coverage::ObjectiveKind>(r.U8());
    h.name = r.Str();
    h.decision = static_cast<coverage::DecisionId>(r.I64());
    h.condition = static_cast<coverage::ConditionId>(r.I64());
    h.outcome = static_cast<int>(r.I64());
    h.slot = static_cast<int>(r.I64());
    h.iteration = r.U64();
    h.time_s = r.F64();
    h.entry_id = r.I64();
    h.chain = r.Str();
    out->hits.push_back(std::move(h));
  }
  out->from_finish = true;
  return !r.failed();
}

}  // namespace

Supervisor::Supervisor(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
                       FuzzerOptions options, SupervisorOptions supervise,
                       const vm::Program* fuzz_only_program)
    : instrumented_(&instrumented),
      fuzz_only_(fuzz_only_program),
      spec_(&spec),
      options_(options),
      supervise_(supervise) {
  supervise_.num_workers = std::max(supervise_.num_workers, 1);
  supervise_.sync_every = std::max<std::uint64_t>(supervise_.sync_every, 1);
  assert(supervise_.resume == nullptr ||
         supervise_.resume->workers.size() ==
             static_cast<std::size_t>(supervise_.num_workers));
}

Supervisor::~Supervisor() = default;

SupervisedCampaignResult Supervisor::Run(const FuzzBudget& budget) {
  const auto n = static_cast<std::size_t>(supervise_.num_workers);
  SupervisedCampaignResult out;
  obs::Stopwatch watch;
  obs::CampaignTelemetry* tm = options_.telemetry;
  obs::CampaignStatusBoard* const board = options_.status_board;
  support::FaultInjector* const faults = supervise_.faults;

  const double time_base = supervise_.resume != nullptr ? supervise_.resume->elapsed_s : 0;
  const auto elapsed = [&]() { return time_base + watch.Elapsed(); };

  if (tm != nullptr && tm->trace != nullptr) {
    obs::TraceEvent ev(supervise_.resume != nullptr ? "resume" : "start");
    ev.Str("mode", options_.model_oriented ? "cftcg" : "fuzz_only")
        .U64("seed", options_.seed)
        .U64("workers", n)
        .U64("sync_every", supervise_.sync_every)
        .U64("isolated", 1);
    if (supervise_.resume != nullptr) {
      ev.U64("rounds", supervise_.resume->rounds).F64("resumed_elapsed_s", time_base);
    } else {
      ev.F64("budget_s", budget.wall_seconds)
          .I64("fuzz_slots", spec_->FuzzBranchCount())
          .I64("outcome_slots", spec_->num_outcome_slots());
    }
    tm->trace->Emit(std::move(ev));
  }

  // Per-lane options and budgets: identical construction order to the
  // threaded engine (worker 0 keeps the campaign seed; the master stream is
  // drawn in lane order), so the RNG schedule matches bit for bit.
  std::vector<FuzzerOptions> lane_opts;
  std::vector<FuzzBudget> lane_budget(n, budget);
  {
    Rng master(options_.seed);
    if (budget.max_executions != std::numeric_limits<std::uint64_t>::max()) {
      const std::uint64_t base = budget.max_executions / n;
      const std::uint64_t rem = budget.max_executions % n;
      for (std::size_t i = 0; i < n; ++i) {
        lane_budget[i].max_executions = base + (i < rem ? 1 : 0);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      FuzzerOptions wopts = options_;
      wopts.seed = i == 0 ? options_.seed : master.NextU64();
      wopts.status_worker = static_cast<int>(i);
      // Everything driver-owned in the threaded engine is parent-owned
      // here; a forked child must additionally drop the board (its copy of
      // the parent's memory is invisible to the real /status page).
      wopts.telemetry = nullptr;
      wopts.margins = nullptr;
      wopts.interrupt = nullptr;
      wopts.checkpoint_path.clear();
      wopts.checkpoint_every = 0;
      wopts.profile_publisher = nullptr;
      wopts.status_board = nullptr;
      wopts.provenance = nullptr;  // child builds its own map (want_provenance)
      if (n > 1) wopts.collect_signatures = true;
      lane_opts.push_back(std::move(wopts));
    }
  }

  // -- Lane bookkeeping ----------------------------------------------------
  struct Lane {
    pid_t pid = -1;
    int cmd = -1;  // parent writes commands
    int res = -1;  // parent reads replies
    InputCapture* capture = nullptr;
    bool retired = false;
    bool done = false;
    std::uint64_t executions = 0;
    std::uint64_t run_target = 0;  // this round's RUN target, latched at round top
    FuzzerState state;           // last post-sync barrier state (respawn point)
    bool has_state = false;
    int restarts = 0;
    double backoff_s = 0;  // seeded from supervise_.restart_backoff_s below
    RoundReply reply;
    bool ran_this_round = false;
    std::string sync_payload;    // kept until STATE lands, for replay
    double round_t0 = 0;
    double round_dur = -1;
  };
  std::vector<Lane> lanes(n);
  for (Lane& lane : lanes) lane.backoff_s = supervise_.restart_backoff_s;
  std::vector<void*> maps(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    void* m = ::mmap(nullptr, sizeof(InputCapture), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (m != MAP_FAILED) {
      maps[i] = m;
      lanes[i].capture = new (m) InputCapture();
      lanes[i].capture->seq.store(0, std::memory_order_relaxed);
      lanes[i].capture->len = 0;
    }
  }

  // Signal plumbing: SIGCHLD self-pipe (death wakes the driver poll) and
  // SIGPIPE ignored (a dead lane's command pipe surfaces as EPIPE).
  int chld_pipe[2] = {-1, -1};
  if (::pipe(chld_pipe) == 0) {
    ::fcntl(chld_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(chld_pipe[1], F_SETFL, O_NONBLOCK);
  }
  g_sigchld_pipe = chld_pipe[1];
  struct sigaction old_chld {};
  struct sigaction sa {};
  sa.sa_handler = SigchldHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &sa, &old_chld);
  void (*old_pipe)(int) = std::signal(SIGPIPE, SIG_IGN);

  // -- Parent-side framed I/O with deadlines -------------------------------
  enum class Io { kOk, kDead, kTimeout };

  const auto read_exact = [&](int fd, char* buf, std::size_t size, double deadline) -> Io {
    std::size_t got = 0;
    while (got < size) {
      const ssize_t r = ::read(fd, buf + got, size - got);
      if (r > 0) {
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) return Io::kDead;
      if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) return Io::kDead;
      const double left = deadline - elapsed();
      if (left <= 0) return Io::kTimeout;
      struct pollfd pfd {fd, POLLIN, 0};
      const int pr = support::io::PollRetry(&pfd, 1, static_cast<int>(left * 1000) + 1);
      if (pr == 0) return Io::kTimeout;
      if (pr < 0) return Io::kDead;
    }
    return Io::kOk;
  };

  const auto write_exact = [&](int fd, const char* buf, std::size_t size,
                               double deadline) -> Io {
    std::size_t sent = 0;
    while (sent < size) {
      const ssize_t r = ::write(fd, buf + sent, size - sent);
      if (r > 0) {
        sent += static_cast<std::size_t>(r);
        continue;
      }
      if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) return Io::kDead;
      const double left = deadline - elapsed();
      if (left <= 0) return Io::kTimeout;
      struct pollfd pfd {fd, POLLOUT, 0};
      const int pr = support::io::PollRetry(&pfd, 1, static_cast<int>(left * 1000) + 1);
      if (pr == 0) return Io::kTimeout;
      if (pr < 0) return Io::kDead;
    }
    return Io::kOk;
  };

  const auto send_frame = [&](Lane& lane, std::uint8_t type, const std::string& payload,
                              bool corrupt = false) -> bool {
    std::string header = FrameHeader(type, payload);
    std::string body = payload;
    if (corrupt && !body.empty()) body[body.size() / 2] ^= 0x20;  // checksum now lies
    const double deadline = elapsed() + supervise_.lane_timeout_s;
    if (write_exact(lane.cmd, header.data(), header.size(), deadline) != Io::kOk) return false;
    return write_exact(lane.cmd, body.data(), body.size(), deadline) == Io::kOk;
  };

  const auto read_frame = [&](Lane& lane, std::uint8_t* type, std::string* payload,
                              double deadline) -> Io {
    char header[kHeaderSize];
    Io io = read_exact(lane.res, header, sizeof(header), deadline);
    if (io != Io::kOk) return io;
    if (GetU32(&header[0]) != kFrameMagic) return Io::kDead;
    *type = static_cast<std::uint8_t>(header[4]);
    const std::uint64_t len = GetU64(&header[5]);
    const std::uint64_t sum = GetU64(&header[13]);
    if (len > kMaxFrame) return Io::kDead;
    payload->assign(len, '\0');
    if (len > 0) {
      io = read_exact(lane.res, payload->data(), len, deadline);
      if (io != Io::kOk) return io;
    }
    return Fnv64(payload->data(), payload->size()) == sum ? Io::kOk : Io::kDead;
  };

  // -- Spawn / death / recovery --------------------------------------------
  const auto lane_id = [&](const Lane& lane) {
    return static_cast<int>(&lane - lanes.data());
  };

  const auto spawn = [&](Lane& lane) -> bool {
    const int i = lane_id(lane);
    int cmd_pipe[2];
    int res_pipe[2];
    if (::pipe(cmd_pipe) != 0) return false;
    if (::pipe(res_pipe) != 0) {
      ::close(cmd_pipe[0]);
      ::close(cmd_pipe[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {cmd_pipe[0], cmd_pipe[1], res_pipe[0], res_pipe[1]}) ::close(fd);
      return false;
    }
    if (pid == 0) {
      // Child: drop every inherited supervisor-side descriptor — holding a
      // sibling's pipe end would mask that sibling's EOF from the parent.
      for (const Lane& other : lanes) {
        if (other.cmd >= 0) ::close(other.cmd);
        if (other.res >= 0) ::close(other.res);
      }
      if (chld_pipe[0] >= 0) ::close(chld_pipe[0]);
      if (chld_pipe[1] >= 0) ::close(chld_pipe[1]);
      ::close(cmd_pipe[1]);
      ::close(res_pipe[0]);
      ChildSpec cs;
      cs.wopts = lane_opts[static_cast<std::size_t>(i)];
      cs.budget = lane_budget[static_cast<std::size_t>(i)];
      if (lane.has_state) {
        cs.resume = &lane.state;
      } else if (supervise_.resume != nullptr) {
        cs.resume = &supervise_.resume->workers[static_cast<std::size_t>(i)];
      }
      cs.want_provenance = options_.provenance != nullptr;
      cs.cmd_fd = cmd_pipe[0];
      cs.res_fd = res_pipe[1];
      cs.capture = lane.capture;
      ChildRun(*instrumented_, *spec_, fuzz_only_, std::move(cs));  // never returns
    }
    ::close(cmd_pipe[0]);
    ::close(res_pipe[1]);
    ::fcntl(cmd_pipe[1], F_SETFL, O_NONBLOCK);
    ::fcntl(res_pipe[0], F_SETFL, O_NONBLOCK);
    lane.pid = pid;
    lane.cmd = cmd_pipe[1];
    lane.res = res_pipe[0];
    return true;
  };

  const auto close_lane = [&](Lane& lane) {
    if (lane.cmd >= 0) ::close(lane.cmd);
    if (lane.res >= 0) ::close(lane.res);
    lane.cmd = lane.res = -1;
  };

  const auto reap = [&](Lane& lane, bool force_kill) {
    if (lane.pid < 0) return;
    if (force_kill) ::kill(lane.pid, SIGKILL);
    int status = 0;
    ::waitpid(lane.pid, &status, 0);
    lane.pid = -1;
  };

  // Quarantines the input that was executing when the lane died.
  const auto quarantine_crash = [&](Lane& lane) -> std::string {
    InputCapture* cap = lane.capture;
    if (cap == nullptr) return {};
    const std::uint32_t len = std::min<std::uint32_t>(cap->len, kCaptureCap);
    if (len == 0) return {};
    std::vector<std::uint8_t> data(cap->data, cap->data + len);
    if (supervise_.crashes_dir.empty()) return {};
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "crash-%016llx.bin", static_cast<unsigned long long>(h));
    if (!support::EnsureDir(supervise_.crashes_dir).ok()) return {};
    const std::string path = supervise_.crashes_dir + "/" + name;
    std::string bytes(reinterpret_cast<const char*>(data.data()), data.size());
    if (!support::WriteFileAtomic(path, bytes).ok()) return {};
    return path;
  };

  const auto on_lane_death = [&](Lane& lane, const char* reason, bool hang) {
    const int i = lane_id(lane);
    reap(lane, /*force_kill=*/hang);
    close_lane(lane);
    ++out.crashes;
    if (hang) ++out.hang_kills;
    const std::string artifact = quarantine_crash(lane);
    if (board != nullptr) {
      board->LogInstant(hang ? "hang_kill" : "crash", i + 1, elapsed());
      board->SetWorkerRestarting(i, true);
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetCounter("fuzz.worker_crashes").Increment();
      if (hang) tm->registry->GetCounter("fuzz.worker_hang_kills").Increment();
    }
    if (tm != nullptr && tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("worker_crash")
                          .F64("time_s", elapsed())
                          .U64("worker", static_cast<std::uint64_t>(i))
                          .U64("exec", lane.executions)
                          .Str("reason", reason)
                          .Str("artifact", artifact));
    }
  };

  const auto retire = [&](Lane& lane) {
    const int i = lane_id(lane);
    lane.retired = true;
    ++out.lanes_retired;
    if (board != nullptr) {
      board->SetWorkerRestarting(i, false);
      board->SetWorkerDone(i);
      board->LogInstant("lane_retired", i + 1, elapsed());
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetCounter("fuzz.lanes_retired").Increment();
    }
    if (tm != nullptr && tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("lane_retired")
                          .F64("time_s", elapsed())
                          .U64("worker", static_cast<std::uint64_t>(i))
                          .U64("restarts", static_cast<std::uint64_t>(lane.restarts)));
    }
  };

  // Respawns a dead lane with capped exponential backoff. Returns false if
  // the lane hit its restart cap and was retired instead.
  const auto respawn = [&](Lane& lane) -> bool {
    const int i = lane_id(lane);
    if (lane.restarts >= supervise_.max_restarts) {
      retire(lane);
      return false;
    }
    support::io::SleepMs(static_cast<int>(lane.backoff_s * 1000));
    lane.backoff_s = std::min(lane.backoff_s * 2, supervise_.restart_backoff_cap_s);
    ++lane.restarts;
    ++out.restarts;
    if (!spawn(lane)) {
      retire(lane);
      return false;
    }
    if (board != nullptr) {
      board->CountWorkerRestart(i);
      board->LogInstant("respawn", i + 1, elapsed());
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetCounter("fuzz.worker_restarts").Increment();
    }
    if (tm != nullptr && tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("worker_respawn")
                          .F64("time_s", elapsed())
                          .U64("worker", static_cast<std::uint64_t>(i))
                          .U64("restarts", static_cast<std::uint64_t>(lane.restarts)));
    }
    return true;
  };

  const auto alive = [](const Lane& lane) { return !lane.retired; };

  // Awaits one frame of `want` type, discarding HELLOs from respawned
  // children. kDead / kTimeout are reported to the caller, which owns the
  // recovery sequence for its protocol phase.
  const auto await = [&](Lane& lane, std::uint8_t want, std::string* payload) -> Io {
    const double deadline = elapsed() + supervise_.lane_timeout_s;
    while (true) {
      std::uint8_t type = 0;
      const Io io = read_frame(lane, &type, payload, deadline);
      if (io != Io::kOk) return io;
      if (type == want) return Io::kOk;
      if (type == kMsgHello) continue;  // respawned child announcing itself
      return Io::kDead;                 // protocol violation: treat as dead
    }
  };

  // The supervised RUN for the current round of `lane`; arms at most one
  // injected lane fault, consumed at arming so a respawn never re-fires it.
  // The target is latched in lane.run_target at the round top: a replay
  // after a death in the sync phase (when lane.executions has already been
  // advanced by the barrier scan) must redo THIS round, not skip a barrier.
  const auto send_run = [&](Lane& lane) -> bool {
    const int i = lane_id(lane);
    const std::uint64_t target = lane.run_target;
    std::uint8_t fault_kind = kNoFault;
    std::uint64_t fault_at = 0;
    std::uint64_t fault_param = 0;
    if (faults != nullptr) {
      if (support::FaultEvent* ev = faults->NextLaneFault(i, target)) {
        ev->armed = true;
        ev->fired = true;
        fault_kind = static_cast<std::uint8_t>(ev->kind);
        fault_at = ev->at;
        fault_param = ev->param;
        if (tm != nullptr && tm->trace != nullptr) {
          tm->trace->Emit(obs::TraceEvent("fault_injected")
                              .F64("time_s", elapsed())
                              .Str("kind", support::FaultKindName(ev->kind))
                              .U64("worker", static_cast<std::uint64_t>(i))
                              .U64("at", ev->at));
        }
      }
    }
    wire::Writer w;
    w.U64(target);
    w.U8(fault_kind);
    w.U64(fault_at);
    w.U64(fault_param);
    return send_frame(lane, kMsgRun, w.take());
  };

  // -- Deterministic barrier state (mirrors the threaded driver) -----------
  coverage::CoverageSink global(*spec_);
  std::unordered_set<std::uint64_t> seen_sigs;
  std::vector<std::size_t> scanned(n, 0);
  if (supervise_.resume != nullptr) {
    seen_sigs.insert(supervise_.resume->seen_signatures.begin(),
                     supervise_.resume->seen_signatures.end());
    for (std::size_t i = 0; i < n && i < supervise_.resume->scanned.size(); ++i) {
      scanned[i] = static_cast<std::size_t>(supervise_.resume->scanned[i]);
    }
    out.rounds = supervise_.resume->rounds;
    out.imports = supervise_.resume->imports;
  }

  struct Export {
    std::size_t worker = 0;
    const std::vector<std::uint8_t>* data = nullptr;
    std::uint64_t signature = 0;
  };

  // Pass 1 of the barrier: scan this round's replies in lane-id order; the
  // base-aware window makes a replayed (post-respawn) report idempotent.
  const auto scan_exports = [&](std::vector<Export>* exports) {
    for (std::size_t i = 0; i < n; ++i) {
      Lane& lane = lanes[i];
      if (!lane.ran_this_round) continue;
      const RoundReply& rep = lane.reply;
      const std::size_t end = static_cast<std::size_t>(rep.base) + rep.entries.size();
      for (std::size_t k = std::max(scanned[i], static_cast<std::size_t>(rep.base)); k < end;
           ++k) {
        const auto& [data, sig] = rep.entries[k - static_cast<std::size_t>(rep.base)];
        if (seen_sigs.insert(sig).second) {
          exports->push_back(Export{i, &data, sig});
        }
      }
      scanned[i] = std::max(scanned[i], end);
      lane.executions = rep.executions;
      lane.done = rep.done;
    }
  };

  // Pass 2: per-lane import payloads in export order (identical to the
  // threaded engine's import loop nesting).
  const auto build_imports = [&](const std::vector<Export>& exports,
                                 std::vector<std::string>* payloads) {
    std::vector<wire::Writer> writers(n);
    std::vector<std::uint64_t> counts(n, 0);
    for (const Export& e : exports) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == e.worker || !alive(lanes[j]) || lanes[j].done) continue;
        writers[j].Bytes(*e.data);
        writers[j].U64(e.signature);
        ++counts[j];
        ++out.imports;
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      wire::Writer w;
      w.U64(counts[j]);
      std::string body = writers[j].take();
      std::string head = w.take();
      (*payloads)[j] = head + body;
    }
  };

  std::uint64_t sync_ordinal = 0;  // counts sync phases (pre-loop included)

  // Runs the SYNC → STATE exchange for one lane, including the full
  // replay-from-last-state recovery ladder. `in_round` selects whether a
  // recovered lane must redo a RUN before the SYNC replay.
  const auto sync_lane = [&](Lane& lane, bool in_round) -> bool {
    const int i = lane_id(lane);
    while (alive(lane)) {
      bool corrupt = false;
      if (faults != nullptr) {
        if (support::FaultEvent* ev = faults->NextCorruptDelta(i, sync_ordinal)) {
          ev->fired = true;
          corrupt = true;
          if (tm != nullptr && tm->trace != nullptr) {
            tm->trace->Emit(obs::TraceEvent("fault_injected")
                                .F64("time_s", elapsed())
                                .Str("kind", "corrupt")
                                .U64("worker", static_cast<std::uint64_t>(i))
                                .U64("at", sync_ordinal));
          }
        }
      }
      std::string payload;
      if (send_frame(lane, kMsgSync, lane.sync_payload, corrupt) &&
          await(lane, kMsgState, &payload) == Io::kOk) {
        wire::Reader r(payload);
        FuzzerState st;
        if (ReadFuzzerState(r, st)) {
          lane.state = std::move(st);
          lane.has_state = true;
          lane.executions = lane.state.executions;
          scanned[i] = lane.state.corpus.size();
          if (board != nullptr) {
            board->SetWorkerRestarting(i, false);
            board->StampWorker(i, lane.executions);
            if (lane.done) board->SetWorkerDone(i);
          }
          return true;
        }
      }
      // Death (or an unparseable state, treated the same) anywhere in the
      // exchange: respawn from the last barrier state and replay the phase.
      on_lane_death(lane, corrupt ? "corrupted delta" : "died in sync", /*hang=*/false);
      if (!respawn(lane)) return false;
      if (in_round) {
        // Redo the round (deterministic: same state, same RNG, no fault —
        // it was consumed at arming). The re-reported entries fall below
        // scanned[i], so the barrier scan ignores them.
        std::string round_payload;
        if (!send_run(lane) || await(lane, kMsgRound, &round_payload) != Io::kOk ||
            !ParseRoundReply(round_payload, &lane.reply)) {
          on_lane_death(lane, "died replaying round", /*hang=*/false);
          if (!respawn(lane)) return false;
          continue;  // retry the whole ladder with the fresh process
        }
        lane.done = lane.reply.done;
      }
    }
    return false;
  };

  // Collects the ROUND reply for one lane, recovering through deaths and
  // hangs. Returns false when the lane retired instead.
  const auto collect_round = [&](Lane& lane) -> bool {
    while (alive(lane)) {
      std::string payload;
      const Io io = await(lane, kMsgRound, &payload);
      if (io == Io::kOk && ParseRoundReply(payload, &lane.reply)) {
        lane.round_dur = elapsed() - lane.round_t0;
        if (board != nullptr) board->StampWorker(lane_id(lane), lane.reply.executions);
        return true;
      }
      on_lane_death(lane, io == Io::kTimeout ? "heartbeat timeout" : "died mid-round",
                    /*hang=*/io == Io::kTimeout);
      if (!respawn(lane)) return false;
      if (!send_run(lane)) {
        on_lane_death(lane, "died at respawn", /*hang=*/false);
        if (!respawn(lane)) return false;
        if (!send_run(lane)) {
          retire(lane);
          return false;
        }
      }
    }
    return false;
  };

  // -- Heartbeats / checkpoints (parent-side, from barrier states) ---------
  double next_stat = tm != nullptr && tm->stats_every_s > 0
                         ? tm->stats_every_s
                         : std::numeric_limits<double>::infinity();
  std::uint64_t last_stat_exec = 0;
  double last_stat_time = 0;
  obs::PhaseProfile driver_phases;
  std::vector<obs::PhaseAccumulator> phase;
  phase.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    phase.emplace_back("fuzz.worker" + std::to_string(i));
  }

  const auto total_executions = [&]() {
    std::uint64_t exec = 0;
    for (const Lane& lane : lanes) exec += lane.executions;
    return exec;
  };

  const auto merge_lane_sinks = [&]() {
    for (const Lane& lane : lanes) {
      if (!lane.has_state) continue;
      coverage::CoverageSink scratch(*spec_);
      if (scratch.RestoreCampaign(lane.state.total_words, lane.state.evals)) {
        global.MergeFrom(scratch);
      }
    }
  };

  const auto heartbeat = [&]() {
    const double now = elapsed();
    if (now < next_stat) return;
    do next_stat += tm->stats_every_s;
    while (next_stat <= now);
    merge_lane_sinks();
    const coverage::MetricReport report = coverage::ComputeReport(global, options_.justifications);
    std::uint64_t exec = 0;
    std::uint64_t corpus = 0;
    std::uint64_t iters = 0;
    for (const Lane& lane : lanes) {
      exec += lane.executions;
      corpus += lane.state.corpus.size();
      iters += lane.state.model_iterations;
    }
    const double window = now - last_stat_time;
    const double exec_per_s = window > 0 ? static_cast<double>(exec - last_stat_exec) / window : 0;
    last_stat_time = now;
    last_stat_exec = exec;
    if (board != nullptr) {
      obs::CampaignAggregates agg;
      agg.elapsed_s = now;
      agg.executions = exec;
      agg.model_iterations = iters;
      agg.exec_per_s = exec_per_s;
      agg.corpus = corpus;
      agg.decision_pct = report.DecisionPct();
      agg.condition_pct = report.ConditionPct();
      agg.mcdc_pct = report.McdcPct();
      agg.adj_decision_pct = report.AdjustedDecisionPct();
      agg.adj_condition_pct = report.AdjustedConditionPct();
      agg.adj_mcdc_pct = report.AdjustedMcdcPct();
      board->UpdateAggregates(agg);
    }
    if (tm->registry != nullptr) {
      tm->registry->GetGauge("fuzz.exec_per_s").Set(exec_per_s);
      tm->registry->GetGauge("fuzz.corpus_size").Set(static_cast<double>(corpus));
      tm->registry->GetGauge("fuzz.coverage.decision_pct").Set(report.DecisionPct());
      tm->registry->GetGauge("fuzz.coverage.condition_pct").Set(report.ConditionPct());
      tm->registry->GetGauge("fuzz.coverage.mcdc_pct").Set(report.McdcPct());
    }
    if (tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("stat")
                          .F64("time_s", now)
                          .U64("exec", exec)
                          .F64("exec_per_s", exec_per_s)
                          .U64("workers", n)
                          .U64("rounds", out.rounds)
                          .U64("imports", out.imports)
                          .U64("corpus", corpus)
                          .U64("crashes", out.crashes)
                          .U64("restarts", out.restarts)
                          .F64("decision_pct", report.DecisionPct())
                          .F64("condition_pct", report.ConditionPct())
                          .F64("mcdc_pct", report.McdcPct()));
    }
    if (tm->status_stream != nullptr) {
      std::fprintf(tm->status_stream,
                   "#%llu\tcov: %.1f/%.1f/%.1f corp: %llu exec/s: %.0f (j%zu iso)\n",
                   static_cast<unsigned long long>(exec), report.DecisionPct(),
                   report.ConditionPct(), report.McdcPct(),
                   static_cast<unsigned long long>(corpus), exec_per_s, n);
    }
  };

  std::uint64_t next_checkpoint = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t checkpoint_ordinal = 0;
  const std::uint64_t spec_fp = SpecFingerprint(*spec_, *instrumented_);

  const auto write_checkpoint = [&]() {
    const double ckpt_t0 = elapsed();
    CampaignCheckpoint ckpt;
    ckpt.spec_fingerprint = spec_fp;
    ckpt.seed = options_.seed;
    ckpt.model_oriented = options_.model_oriented;
    ckpt.use_idc_energy = options_.use_idc_energy;
    ckpt.analyzed = options_.justifications != nullptr;
    ckpt.max_tuples = options_.max_tuples;
    ckpt.step_budget = options_.step_budget;
    ckpt.num_workers = static_cast<std::uint32_t>(n);
    ckpt.sync_every = supervise_.sync_every;
    ckpt.rounds = out.rounds;
    ckpt.imports = out.imports;
    ckpt.seen_signatures.assign(seen_sigs.begin(), seen_sigs.end());
    std::sort(ckpt.seen_signatures.begin(), ckpt.seen_signatures.end());
    ckpt.scanned.assign(scanned.begin(), scanned.end());
    ckpt.elapsed_s = elapsed();
    ckpt.workers.reserve(n);
    for (const Lane& lane : lanes) ckpt.workers.push_back(lane.state);
    std::string bytes = SerializeCheckpoint(ckpt);
    ++checkpoint_ordinal;
    Status status = Status::Ok();
    bool torn = false;
    if (faults != nullptr) {
      if (support::FaultEvent* ev =
              faults->NextDriverFault(support::FaultKind::kTornCheckpoint, checkpoint_ordinal)) {
        // Simulated power-cut mid-write: a truncated blob lands at the final
        // path without the temp+rename dance. The next read must reject it
        // with a structured diagnostic, never crash (satellite: --resume
        // hardening); the next periodic checkpoint heals the file.
        ev->fired = true;
        torn = true;
        bytes.resize(bytes.size() / 3);
        std::FILE* f = std::fopen(options_.checkpoint_path.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(bytes.data(), 1, bytes.size(), f);
          std::fclose(f);
        }
        if (tm != nullptr && tm->trace != nullptr) {
          tm->trace->Emit(obs::TraceEvent("fault_injected")
                              .F64("time_s", elapsed())
                              .Str("kind", "torn")
                              .U64("at", checkpoint_ordinal));
        }
      }
    }
    if (!torn) {
      status = support::WriteFileAtomic(options_.checkpoint_path, bytes);
      if (!status.ok()) {
        std::fprintf(stderr, "cftcg: checkpoint write failed: %s\n", status.message().c_str());
      }
    }
    if (tm != nullptr && tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("checkpoint")
                          .F64("time_s", elapsed())
                          .U64("exec", total_executions())
                          .U64("bytes", bytes.size())
                          .U64("ok", status.ok() && !torn ? 1 : 0));
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetCounter("fuzz.checkpoints").Increment();
    }
    driver_phases.Add(obs::ProfilePhase::kCheckpoint, elapsed() - ckpt_t0);
  };

  // -- Campaign ------------------------------------------------------------
  // Spawn every lane; collect HELLOs (seed corpora); pre-loop sync.
  for (Lane& lane : lanes) {
    if (!spawn(lane)) retire(lane);
  }
  for (std::size_t i = 0; i < n; ++i) {
    Lane& lane = lanes[i];
    while (alive(lane)) {
      std::string payload;
      if (await(lane, kMsgHello, &payload) == Io::kOk &&
          ParseRoundReply(payload, &lane.reply)) {
        lane.ran_this_round = true;  // the seed "round"
        break;
      }
      on_lane_death(lane, "died during seeding", /*hang=*/false);
      respawn(lane);
    }
  }

  const auto run_sync_phase = [&](bool in_round) {
    ++sync_ordinal;
    std::vector<Export> exports;
    scan_exports(&exports);
    std::vector<std::string> payloads(n);
    build_imports(exports, &payloads);
    for (std::size_t j = 0; j < n; ++j) {
      Lane& lane = lanes[j];
      if (!alive(lane)) continue;
      if (lane.done) {
        // Done lanes receive no imports (threaded semantics) but still
        // hand over their final barrier state.
        wire::Writer w;
        w.U64(0);
        lane.sync_payload = w.take();
      } else {
        lane.sync_payload = std::move(payloads[j]);
      }
      sync_lane(lane, in_round);
      lane.sync_payload.clear();
    }
  };

  // Seed-corpus sync before the first round (threaded pre-loop sync_round).
  run_sync_phase(/*in_round=*/false);

  while (true) {
    bool any_alive = false;
    for (const Lane& lane : lanes) any_alive |= alive(lane) && !lane.done;
    if (!any_alive) break;

    // Drain SIGCHLD notifications; actual recovery happens at the await
    // sites (a death between replies surfaces as EOF on its reply pipe).
    if (chld_pipe[0] >= 0) {
      char buf[64];
      while (::read(chld_pipe[0], buf, sizeof(buf)) > 0) {
      }
    }

    for (Lane& lane : lanes) {
      lane.ran_this_round = false;
      lane.round_dur = -1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Lane& lane = lanes[i];
      if (!alive(lane) || lane.done) continue;
      lane.round_t0 = elapsed();
      lane.run_target = lane.executions + supervise_.sync_every;
      if (!send_run(lane)) {
        on_lane_death(lane, "died before round", /*hang=*/false);
        if (!respawn(lane) || !send_run(lane)) {
          if (!lane.retired) retire(lane);
          continue;
        }
      }
      lane.ran_this_round = true;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Lane& lane = lanes[i];
      if (!lane.ran_this_round) continue;
      if (!collect_round(lane)) lane.ran_this_round = false;  // retired mid-round
    }
    ++out.rounds;
    double round_span = 0;
    for (const Lane& lane : lanes) round_span = std::max(round_span, lane.round_dur);
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes[i].round_dur >= 0) {
        phase[i].Add(lanes[i].round_dur);
        if (board != nullptr) {
          board->LogSpan("round", static_cast<int>(i) + 1, lanes[i].round_t0,
                         lanes[i].round_dur);
        }
        if (round_span > lanes[i].round_dur) {
          driver_phases.Add(obs::ProfilePhase::kIdle, round_span - lanes[i].round_dur);
        }
      }
    }

    const double sync_t0 = elapsed();
    run_sync_phase(/*in_round=*/true);
    driver_phases.Add(obs::ProfilePhase::kCorpusSync, elapsed() - sync_t0);
    if (board != nullptr && n > 1) board->LogSpan("sync", 0, sync_t0, elapsed() - sync_t0);
    if (tm != nullptr) heartbeat();

    if (next_checkpoint == std::numeric_limits<std::uint64_t>::max() &&
        options_.checkpoint_every > 0 && !options_.checkpoint_path.empty()) {
      next_checkpoint =
          (total_executions() / options_.checkpoint_every + 1) * options_.checkpoint_every;
    } else if (total_executions() >= next_checkpoint) {
      write_checkpoint();
      next_checkpoint += options_.checkpoint_every;
    }
    if (options_.interrupt != nullptr && options_.interrupt->load(std::memory_order_relaxed)) {
      out.interrupted = true;
      if (!options_.checkpoint_path.empty()) write_checkpoint();
      break;
    }
  }

  // -- Finish: collect final states, reap every child ----------------------
  std::vector<LaneResult> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    Lane& lane = lanes[i];
    bool collected = false;
    if (alive(lane) && lane.pid >= 0) {
      std::string payload;
      if (send_frame(lane, kMsgFinish, std::string()) &&
          await(lane, kMsgResult, &payload) == Io::kOk &&
          ParseLaneResult(payload, &results[i])) {
        collected = true;
        reap(lane, /*force_kill=*/false);
      } else {
        on_lane_death(lane, "died during finish", /*hang=*/false);
      }
    }
    if (!collected) {
      // Retired or just-died lane: its last barrier state still joins the
      // merge (coverage and corpus up to the barrier are valid campaign
      // output); only the Finish-time extras are reconstructed.
      results[i].state = lane.state;
      results[i].corpus_fingerprint = CorpusEntriesFingerprint(lane.state.corpus);
      results[i].strobe_period = lane.state.exec_profile.strobe_period;
      for (const coverage::ObjectiveFirstHit& h : lane.state.provenance_hits) {
        results[i].hits.push_back(h);
      }
      results[i].from_finish = false;
    }
    close_lane(lane);
    if (board != nullptr) board->SetWorkerDone(static_cast<int>(i));
  }
  // Sweep any stragglers (a lane that died after its last reply).
  while (::waitpid(-1, nullptr, WNOHANG) > 0) {
  }

  // -- Final merge (worker-id order, mirroring the threaded engine) --------
  CampaignResult& merged = out.merged;
  for (std::size_t i = 0; i < n; ++i) {
    const FuzzerState& st = results[i].state;
    merged.executions += st.executions;
    merged.model_iterations += st.model_iterations;
    merged.measure_iterations += st.measure_iterations;
    merged.hangs += st.hangs;
    merged.strategy_stats.MergeFrom(st.strategy_stats);
    merged.focus_stats.MergeFrom(results[i].focus_stats);
    merged.test_cases.insert(merged.test_cases.end(), st.test_cases.begin(),
                             st.test_cases.end());
    merged.exec_profile.MergeFrom(st.exec_profile);
    merged.fuzz_exec_profile.MergeFrom(st.fuzz_exec_profile);
    merged.phase_profile.MergeFrom(st.phase_profile);
    out.worker_executions.push_back(st.executions);
    coverage::CoverageSink scratch(*spec_);
    if (scratch.RestoreCampaign(st.total_words, st.evals)) global.MergeFrom(scratch);
    merged.corpus_fingerprint =
        (merged.corpus_fingerprint ^ results[i].corpus_fingerprint) * 1099511628211ULL;
  }
  merged.report = coverage::ComputeReport(global, options_.justifications);
  merged.coverage_fingerprint = CoverageFingerprint(global);
  merged.elapsed_s = elapsed();
  merged.interrupted = out.interrupted;
  merged.exec_profile.strobe_period = results.empty() ? 0 : results[0].strobe_period;
  merged.phase_profile.MergeFrom(driver_phases);

  obs::CampaignAggregates final_agg;
  final_agg.elapsed_s = merged.elapsed_s;
  final_agg.executions = merged.executions;
  final_agg.model_iterations = merged.model_iterations;
  final_agg.exec_per_s =
      merged.elapsed_s > 0 ? static_cast<double>(merged.executions) / merged.elapsed_s : 0;
  for (const LaneResult& r : results) final_agg.corpus += r.state.corpus.size();
  final_agg.test_cases = merged.test_cases.size();
  final_agg.decision_pct = merged.report.DecisionPct();
  final_agg.condition_pct = merged.report.ConditionPct();
  final_agg.mcdc_pct = merged.report.McdcPct();
  final_agg.adj_decision_pct = merged.report.AdjustedDecisionPct();
  final_agg.adj_condition_pct = merged.report.AdjustedConditionPct();
  final_agg.adj_mcdc_pct = merged.report.AdjustedMcdcPct();
  final_agg.hangs = merged.hangs;

  {
    std::unordered_set<std::uint64_t> sigs;
    for (const LaneResult& r : results) {
      for (const CorpusEntry& e : r.state.corpus) sigs.insert(e.signature);
    }
    out.corpus_signatures.assign(sigs.begin(), sigs.end());
    std::sort(out.corpus_signatures.begin(), out.corpus_signatures.end());
  }

  if (options_.provenance != nullptr) {
    // Rebuild per-lane maps from the shipped hit lists, then merge with the
    // same earliest-iteration / lowest-lane-id tie-break as the threaded
    // engine.
    std::vector<std::unique_ptr<coverage::ProvenanceMap>> lane_maps;
    std::vector<const coverage::ProvenanceMap*> maps;
    for (const LaneResult& r : results) {
      auto m = std::make_unique<coverage::ProvenanceMap>(*spec_);
      for (const coverage::ObjectiveFirstHit& h : r.hits) m->AbsorbHit(h);
      maps.push_back(m.get());
      lane_maps.push_back(std::move(m));
    }
    const auto hits = coverage::MergeFirstHits(maps);
    for (const auto& h : hits) options_.provenance->AbsorbHit(h);
    if (tm != nullptr && tm->trace != nullptr) {
      for (const auto& h : options_.provenance->hits()) {
        tm->trace->Emit(obs::TraceEvent("objective")
                            .Str("kind", coverage::ObjectiveKindName(h.kind))
                            .Str("name", h.name)
                            .I64("outcome", h.outcome)
                            .I64("slot", h.slot)
                            .U64("iter", h.iteration)
                            .F64("time_s", h.time_s)
                            .I64("entry", h.entry_id)
                            .Str("chain", h.chain));
      }
      tm->trace->Emit(obs::TraceEvent("provenance")
                          .U64("covered", options_.provenance->num_covered())
                          .U64("total", options_.provenance->num_objectives()));
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetGauge("fuzz.objectives_covered")
          .Set(static_cast<double>(options_.provenance->num_covered()));
      tm->registry->GetGauge("fuzz.objectives_total")
          .Set(static_cast<double>(options_.provenance->num_objectives()));
    }
    final_agg.objectives_covered = options_.provenance->num_covered();
    final_agg.objectives_total = options_.provenance->num_objectives();
  }
  if (board != nullptr) board->UpdateAggregates(final_agg);

  if (tm != nullptr) {
    if (tm->registry != nullptr) {
      obs::Registry& reg = *tm->registry;
      reg.GetCounter("fuzz.executions").Add(merged.executions);
      reg.GetCounter("fuzz.model_iterations").Add(merged.model_iterations);
      reg.GetCounter("fuzz.measure_iterations").Add(merged.measure_iterations);
      reg.GetGauge("fuzz.workers").Set(static_cast<double>(n));
      reg.GetGauge("fuzz.coverage.decision_pct").Set(merged.report.DecisionPct());
      reg.GetGauge("fuzz.coverage.condition_pct").Set(merged.report.ConditionPct());
      reg.GetGauge("fuzz.coverage.mcdc_pct").Set(merged.report.McdcPct());
    }
    for (std::size_t i = 0; i < n; ++i) phase[i].Commit(tm->registry, tm->trace);
    if (tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("supervision")
                          .F64("time_s", merged.elapsed_s)
                          .U64("crashes", out.crashes)
                          .U64("hang_kills", out.hang_kills)
                          .U64("restarts", out.restarts)
                          .U64("lanes_retired", out.lanes_retired));
      tm->trace->Emit(obs::TraceEvent("stop")
                          .F64("elapsed_s", merged.elapsed_s)
                          .U64("exec", merged.executions)
                          .U64("iters", merged.model_iterations)
                          .U64("measure_iters", merged.measure_iterations)
                          .F64("exec_per_s",
                               merged.elapsed_s > 0
                                   ? static_cast<double>(merged.executions) / merged.elapsed_s
                                   : 0)
                          .U64("workers", n)
                          .U64("rounds", out.rounds)
                          .U64("imports", out.imports)
                          .U64("test_cases", merged.test_cases.size())
                          .F64("decision_pct", merged.report.DecisionPct())
                          .F64("condition_pct", merged.report.ConditionPct())
                          .F64("mcdc_pct", merged.report.McdcPct()));
      tm->trace->Flush();
    }
  }

  // -- Teardown ------------------------------------------------------------
  ::sigaction(SIGCHLD, &old_chld, nullptr);
  g_sigchld_pipe = -1;
  std::signal(SIGPIPE, old_pipe);
  if (chld_pipe[0] >= 0) ::close(chld_pipe[0]);
  if (chld_pipe[1] >= 0) ::close(chld_pipe[1]);
  for (std::size_t i = 0; i < n; ++i) {
    if (maps[i] != nullptr) ::munmap(maps[i], sizeof(InputCapture));
  }
  return out;
}

}  // namespace cftcg::fuzz
