// Parallel multi-worker fuzzing engine.
//
// N workers each run a full sequential Fuzzer (own vm::Machine, own
// CoverageSink, own corpus view, own Rng stream forked from the campaign
// seed) in round-based lockstep against shared campaign state:
//
//   round:  every live worker advances its loop by `sync_every` executions
//           on its own thread (no shared mutable state is touched while
//           worker threads run — workers only read the shared Programs);
//   barrier: the driver joins all threads, then — single-threaded, in
//           worker-id order — performs the merge:
//             * corpus sync: entries admitted by one worker this round are
//               imported into every other worker, deduplicated by coverage
//               signature (first worker in id order wins a signature);
//             * frontier merge: worker sinks fold into a global
//               CoverageSink (CoverageSink::MergeFrom) for aggregated
//               heartbeats and the final union report;
//             * telemetry: one aggregated `stat` heartbeat when due.
//
// Rounds are bounded by *execution counts*, never wall time, and imports
// draw nothing from worker RNG streams, so for a fixed (seed, num_workers)
// the whole campaign is deterministic regardless of thread scheduling —
// same coverage report, same corpus signature set, same merged first-hit
// attribution (ties broken by worker id). Wall-clock budgets still work
// (each worker checks its own clock) but trade that determinism away, as
// they already do in the sequential engine.
//
// With num_workers == 1 the single worker runs with the campaign seed
// itself and no imports ever occur, so the run is bit-identical to the
// sequential Fuzzer::Run for the same options.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coverage/provenance.hpp"
#include "fuzz/fuzzer.hpp"

namespace cftcg::fuzz {

struct ParallelOptions {
  /// Worker count; clamped to >= 1. 1 reproduces the sequential campaign.
  int num_workers = 1;
  /// Executions each worker runs between corpus-sync barriers. Larger
  /// values amortize the (single-threaded) merge; smaller values spread
  /// discoveries faster. The round structure is part of the deterministic
  /// schedule: changing it changes which mutations see imported entries.
  std::uint64_t sync_every = 1024;
  /// Resume from a multi-worker checkpoint (checkpoint.hpp). Must carry
  /// exactly num_workers worker states and the same sync_every — the caller
  /// validates with ValidateCheckpoint() first. Not owned; must outlive
  /// Run(). The driver restores its own barrier state (signature dedup set,
  /// corpus-scan cursors, round/import counters) and hands each worker its
  /// FuzzerState; checkpoints are taken at round barriers only, so the
  /// resumed schedule is bit-identical to an uninterrupted campaign.
  const CampaignCheckpoint* resume = nullptr;
};

struct ParallelCampaignResult {
  /// Union of the workers' campaigns: summed executions / iterations,
  /// test cases concatenated in worker-id order, merged strategy stats,
  /// coverage report computed over the merged frontier.
  CampaignResult merged;
  /// Sorted, deduplicated coverage signatures of every admitted corpus
  /// entry across all workers — the determinism suite's corpus fingerprint.
  std::vector<std::uint64_t> corpus_signatures;
  std::vector<std::uint64_t> worker_executions;
  std::uint64_t rounds = 0;
  /// Cross-worker corpus imports performed (0 when num_workers == 1).
  std::uint64_t imports = 0;
  /// True when Run() returned because options.interrupt fired at a round
  /// barrier (a checkpoint was written if checkpoint_path is set; `merged`
  /// still carries the partial report).
  bool interrupted = false;
};

class ParallelFuzzer {
 public:
  /// Same contract as Fuzzer: `instrumented` is the measurement/CFTCG
  /// target, `fuzz_only_program` is required when options.model_oriented is
  /// false. Worker campaigns run with telemetry and margins disabled (the
  /// driver owns telemetry: aggregated heartbeats, per-worker phase spans);
  /// options.provenance, when set, receives the merged first-hit
  /// attribution after the run.
  ParallelFuzzer(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
                 FuzzerOptions options, ParallelOptions parallel,
                 const vm::Program* fuzz_only_program = nullptr);
  ~ParallelFuzzer();

  ParallelCampaignResult Run(const FuzzBudget& budget);

 private:
  const vm::Program* instrumented_;
  const vm::Program* fuzz_only_;
  const coverage::CoverageSpec* spec_;
  FuzzerOptions options_;
  ParallelOptions parallel_;
  std::vector<std::unique_ptr<Fuzzer>> workers_;
  std::vector<std::unique_ptr<coverage::ProvenanceMap>> worker_prov_;
};

}  // namespace cftcg::fuzz
