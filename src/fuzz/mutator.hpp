// Model input mutation — the paper's Table 1.
//
// A test case is a byte stream that the fuzz driver splits into *tuples*:
// one tuple = the bytes consumed by one model iteration (sum of the inport
// type sizes, in port order). Unlike generic byte-level fuzzing, every
// mutation here respects tuple and field boundaries, so inserting/erasing
// data never misaligns later iterations — exactly the deficiency the paper
// demonstrates in the "Fuzz Only" ablation (Figure 8).
//
// The eight strategies:
//   Change Binary Integer   — sign flip, byte swap, bit flip, byte set,
//                             add/subtract small delta, random replace
//   Change Binary Float     — sign/exponent/mantissa bits, interesting
//                             values, random replace
//   Erase Tuples            — remove a tuple range
//   Insert Tuple            — insert one random tuple
//   Insert Repeated Tuples  — insert N copies of one tuple
//   Shuffle Tuples          — permute a tuple range
//   Copy Tuples             — duplicate a tuple range elsewhere
//   Tuples Cross Over       — splice tuples from a second stream
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/dtype.hpp"
#include "support/rng.hpp"
#include "vm/cmp_trace.hpp"

namespace cftcg::fuzz {

/// Field layout of one tuple.
class TupleLayout {
 public:
  explicit TupleLayout(std::vector<ir::DType> fields);

  [[nodiscard]] std::size_t tuple_size() const { return tuple_size_; }
  [[nodiscard]] std::size_t num_fields() const { return fields_.size(); }
  [[nodiscard]] ir::DType field_type(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] std::size_t field_offset(std::size_t i) const { return offsets_[i]; }
  [[nodiscard]] std::size_t field_size(std::size_t i) const { return ir::DTypeSize(fields_[i]); }

 private:
  std::vector<ir::DType> fields_;
  std::vector<std::size_t> offsets_;
  std::size_t tuple_size_ = 0;
};

enum class MutationStrategy {
  kChangeBinaryInteger,
  kChangeBinaryFloat,
  kEraseTuples,
  kInsertTuple,
  kInsertRepeatedTuples,
  kShuffleTuples,
  kCopyTuples,
  kTuplesCrossOver,
};
inline constexpr int kNumMutationStrategies = 8;
std::string_view MutationStrategyName(MutationStrategy s);

/// Renders a mutation chain as ">"-joined strategy names (application
/// order), e.g. "ChangeBinaryInteger>TuplesCrossOver" — the spelling the
/// provenance trace events and `cftcg explain` use. An empty chain renders
/// as "seed" (seed corpus entries have no producing mutation; the fuzzing
/// loop substitutes "bytes" itself for Fuzz Only's structureless mutation).
std::string StrategyChainString(const std::vector<MutationStrategy>& chain);

/// Per-campaign accounting over the eight Table 1 strategies: how often
/// each was applied, and how many applications contributed to an input
/// that triggered NEW model coverage. A multi-round Mutate() call credits
/// every strategy in the chain (ancestry is not disentangled — this is the
/// same attribution libFuzzer's -print_mutation_stats uses).
struct StrategyStats {
  std::array<std::uint64_t, kNumMutationStrategies> applied{};
  std::array<std::uint64_t, kNumMutationStrategies> credited{};

  void CountApplied(const std::vector<MutationStrategy>& chain) {
    for (MutationStrategy s : chain) ++applied[static_cast<std::size_t>(s)];
  }
  void CountCredited(const std::vector<MutationStrategy>& chain) {
    for (MutationStrategy s : chain) ++credited[static_cast<std::size_t>(s)];
  }
  /// Element-wise sum — the parallel engine folds worker stats into the
  /// campaign totals with this.
  void MergeFrom(const StrategyStats& other) {
    for (std::size_t i = 0; i < applied.size(); ++i) {
      applied[i] += other.applied[i];
      credited[i] += other.credited[i];
    }
  }
};

/// Optional per-field value ranges (the paper's §5 mitigation for the
/// "validity of randomized values" problem: testers specify inport ranges
/// and mutation stays inside them).
struct FieldRange {
  double lo = 0;
  double hi = 0;
  bool active = false;
};

/// Field-wise tuple mutator (CFTCG's model input mutation module).
class TupleMutator {
 public:
  TupleMutator(TupleLayout layout, std::size_t max_tuples = 256);

  /// Installs range constraints (one per field; inactive entries are
  /// unconstrained). Mutated and randomly generated field values are
  /// clamped into their range.
  void SetFieldRanges(std::vector<FieldRange> ranges) { ranges_ = std::move(ranges); }

  /// Applies 1-3 randomly chosen strategies. `crossover` (may be empty) is
  /// the partner stream for kTuplesCrossOver; `dict` (optional) is the
  /// libFuzzer-style table of recent compares whose operands get written
  /// into fields. When `applied` is non-null the chosen strategies are
  /// appended to it in application order (telemetry / Table 1 accounting).
  /// When `focus_fields` is non-null and non-empty, the two field-edit
  /// strategies restrict their target field to that set (an objective's
  /// dependence slice); structural strategies (erase/insert/shuffle/copy/
  /// crossover) are unaffected. Passing nullptr draws the exact same RNG
  /// sequence as before the parameter existed — default campaigns stay
  /// bit-identical.
  std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& input,
                                   const std::vector<std::uint8_t>& crossover, Rng& rng,
                                   const vm::CmpTrace* dict = nullptr,
                                   std::vector<MutationStrategy>* applied = nullptr,
                                   const std::vector<std::size_t>* focus_fields = nullptr) const;

  /// Applies exactly one named strategy (unit tests / ablation).
  std::vector<std::uint8_t> ApplyStrategy(MutationStrategy s,
                                          const std::vector<std::uint8_t>& input,
                                          const std::vector<std::uint8_t>& crossover, Rng& rng,
                                          const vm::CmpTrace* dict = nullptr,
                                          const std::vector<std::size_t>* focus_fields =
                                              nullptr) const;

  /// A fresh random input of `n` tuples.
  std::vector<std::uint8_t> RandomInput(std::size_t n, Rng& rng) const;

  [[nodiscard]] const TupleLayout& layout() const { return layout_; }

 private:
  void MutateIntegerField(std::vector<std::uint8_t>& data, std::size_t offset, std::size_t size,
                          Rng& rng, const vm::CmpTrace* dict) const;
  void MutateFloatField(std::vector<std::uint8_t>& data, std::size_t offset, std::size_t size,
                        Rng& rng, const vm::CmpTrace* dict) const;

  void ClampField(std::vector<std::uint8_t>& data, std::size_t tuple_index,
                  std::size_t field) const;
  void ClampAllFields(std::vector<std::uint8_t>& data) const;

  TupleLayout layout_;
  std::size_t max_tuples_;
  std::vector<FieldRange> ranges_;
};

/// Generic byte-level mutator (the "Fuzz Only" baseline's mutation): byte
/// flips, arbitrary-position erase/insert/copy, byte-level crossover. No
/// tuple or field awareness, so structural edits misalign fields.
class ByteMutator {
 public:
  explicit ByteMutator(std::size_t max_len) : max_len_(max_len) {}
  std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& input,
                                   const std::vector<std::uint8_t>& crossover, Rng& rng,
                                   const vm::CmpTrace* dict = nullptr) const;

 private:
  std::size_t max_len_;
};

}  // namespace cftcg::fuzz
