#include "fuzz/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "support/atomic_file.hpp"

namespace cftcg::fuzz {

using wire::Reader;
using wire::Writer;

namespace {

constexpr char kMagic[8] = {'C', 'F', 'T', 'G', 'C', 'K', 'P', '\0'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

inline std::uint64_t MixBytes(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) h = Mix(h, p[i]);
  return h;
}

inline std::uint64_t MixStr(std::uint64_t h, std::string_view s) {
  h = Mix(h, s.size());
  return MixBytes(h, s.data(), s.size());
}

}  // namespace

void AppendFuzzerState(wire::Writer& w, const FuzzerState& s) {
  for (std::uint64_t word : s.rng_state) w.U64(word);
  w.U64(s.executions);
  w.U64(s.model_iterations);
  w.U64(s.measure_iterations);
  w.U64(s.hangs);
  w.F64(s.elapsed_s);
  w.U64(s.best_metric);
  w.U8(s.frontier_exhausted ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(kNumMutationStrategies));
  for (std::uint64_t v : s.strategy_stats.applied) w.U64(v);
  for (std::uint64_t v : s.strategy_stats.credited) w.U64(v);
  w.U64(s.corpus.size());
  for (const CorpusEntry& e : s.corpus) {
    w.Bytes(e.data);
    w.U64(e.metric);
    w.U64(e.new_slots);
    w.U64(e.signature);
    w.I64(e.id);
    w.I64(e.parent_id);
    w.U32(e.depth);
    w.U32(static_cast<std::uint32_t>(e.chain.size()));
    for (MutationStrategy strat : e.chain) w.U8(static_cast<std::uint8_t>(strat));
  }
  w.U64(s.test_cases.size());
  for (const TestCase& tc : s.test_cases) {
    w.Bytes(tc.data);
    w.F64(tc.time_s);
    w.U64(tc.new_slots);
    w.I64(tc.decision_outcomes_covered);
  }
  w.U64(s.total_bits);
  w.U64Vec(s.total_words);
  w.U64(s.evals.size());
  for (const auto& set : s.evals) w.U64Vec(set);
  w.U64Vec(s.seen_eval_sizes);
  w.Bytes(s.edge_total);
  for (std::int64_t v : s.cmp_trace.ints) w.I64(v);
  for (double v : s.cmp_trace.doubles) w.F64(v);
  w.U64(s.cmp_trace.int_idx);
  w.U64(s.cmp_trace.int_count);
  w.U64(s.cmp_trace.double_idx);
  w.U64(s.cmp_trace.double_count);
  w.U64(s.provenance_hits.size());
  for (const coverage::ObjectiveFirstHit& h : s.provenance_hits) {
    w.U8(static_cast<std::uint8_t>(h.kind));
    w.Str(h.name);
    w.I64(h.decision);
    w.I64(h.condition);
    w.I64(h.outcome);
    w.I64(h.slot);
    w.U64(h.iteration);
    w.F64(h.time_s);
    w.I64(h.entry_id);
    w.Str(h.chain);
  }
  // v2: self-profile planes. strobe_period is an option, not state — the
  // resuming campaign supplies its own; only the countdown carries over.
  w.U64Vec(s.exec_profile.insn_counts);
  w.U64Vec(s.exec_profile.insn_samples);
  w.U64(s.exec_profile.steps);
  w.U64(s.exec_profile.strobe_countdown);
  w.U64Vec(s.fuzz_exec_profile.insn_counts);
  w.U64Vec(s.fuzz_exec_profile.insn_samples);
  w.U64(s.fuzz_exec_profile.steps);
  w.U64(s.fuzz_exec_profile.strobe_countdown);
  w.U32(static_cast<std::uint32_t>(obs::kNumProfilePhases));
  for (int i = 0; i < obs::kNumProfilePhases; ++i) {
    w.F64(s.phase_profile.seconds[static_cast<std::size_t>(i)]);
    w.U64(s.phase_profile.laps[static_cast<std::size_t>(i)]);
  }
}

bool ReadFuzzerState(wire::Reader& r, FuzzerState& s) {
  for (std::uint64_t& word : s.rng_state) word = r.U64();
  s.executions = r.U64();
  s.model_iterations = r.U64();
  s.measure_iterations = r.U64();
  s.hangs = r.U64();
  s.elapsed_s = r.F64();
  s.best_metric = r.U64();
  s.frontier_exhausted = r.U8() != 0;
  if (r.U32() != static_cast<std::uint32_t>(kNumMutationStrategies)) return false;
  for (std::uint64_t& v : s.strategy_stats.applied) v = r.U64();
  for (std::uint64_t& v : s.strategy_stats.credited) v = r.U64();
  const std::uint64_t corpus_size = r.U64();
  for (std::uint64_t i = 0; i < corpus_size && !r.failed(); ++i) {
    CorpusEntry e;
    e.data = r.Bytes();
    e.metric = r.U64();
    e.new_slots = r.U64();
    e.signature = r.U64();
    e.id = r.I64();
    e.parent_id = r.I64();
    e.depth = r.U32();
    const std::uint32_t chain = r.U32();
    for (std::uint32_t k = 0; k < chain && !r.failed(); ++k) {
      const std::uint8_t strat = r.U8();
      if (strat >= static_cast<std::uint8_t>(kNumMutationStrategies)) return false;
      e.chain.push_back(static_cast<MutationStrategy>(strat));
    }
    s.corpus.push_back(std::move(e));
  }
  const std::uint64_t num_cases = r.U64();
  for (std::uint64_t i = 0; i < num_cases && !r.failed(); ++i) {
    TestCase tc;
    tc.data = r.Bytes();
    tc.time_s = r.F64();
    tc.new_slots = r.U64();
    tc.decision_outcomes_covered = static_cast<int>(r.I64());
    s.test_cases.push_back(std::move(tc));
  }
  s.total_bits = r.U64();
  s.total_words = r.U64Vec();
  const std::uint64_t num_decisions = r.U64();
  for (std::uint64_t d = 0; d < num_decisions && !r.failed(); ++d) {
    s.evals.push_back(r.U64Vec());
  }
  s.seen_eval_sizes = r.U64Vec();
  s.edge_total = r.Bytes();
  for (std::int64_t& v : s.cmp_trace.ints) v = r.I64();
  for (double& v : s.cmp_trace.doubles) v = r.F64();
  s.cmp_trace.int_idx = r.U64();
  s.cmp_trace.int_count = r.U64();
  s.cmp_trace.double_idx = r.U64();
  s.cmp_trace.double_count = r.U64();
  const std::uint64_t num_hits = r.U64();
  bool bad_hit_kind = false;
  for (std::uint64_t i = 0; i < num_hits && !r.failed(); ++i) {
    coverage::ObjectiveFirstHit h;
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(coverage::ObjectiveKind::kMcdcPair)) {
      bad_hit_kind = true;  // bit-flipped kind: reject instead of misparsing
    }
    h.kind = static_cast<coverage::ObjectiveKind>(kind);
    h.name = r.Str();
    h.decision = static_cast<coverage::DecisionId>(r.I64());
    h.condition = static_cast<coverage::ConditionId>(r.I64());
    h.outcome = static_cast<int>(r.I64());
    h.slot = static_cast<int>(r.I64());
    h.iteration = r.U64();
    h.time_s = r.F64();
    h.entry_id = r.I64();
    h.chain = r.Str();
    s.provenance_hits.push_back(std::move(h));
  }
  if (bad_hit_kind) return false;
  s.exec_profile.insn_counts = r.U64Vec();
  s.exec_profile.insn_samples = r.U64Vec();
  s.exec_profile.steps = r.U64();
  s.exec_profile.strobe_countdown = r.U64();
  s.fuzz_exec_profile.insn_counts = r.U64Vec();
  s.fuzz_exec_profile.insn_samples = r.U64Vec();
  s.fuzz_exec_profile.steps = r.U64();
  s.fuzz_exec_profile.strobe_countdown = r.U64();
  if (r.U32() != static_cast<std::uint32_t>(obs::kNumProfilePhases)) return false;
  for (int i = 0; i < obs::kNumProfilePhases; ++i) {
    s.phase_profile.seconds[static_cast<std::size_t>(i)] = r.F64();
    s.phase_profile.laps[static_cast<std::size_t>(i)] = r.U64();
  }
  return !r.failed();
}

std::uint64_t SpecFingerprint(const coverage::CoverageSpec& spec, const vm::Program& program) {
  std::uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<std::uint64_t>(spec.FuzzBranchCount()));
  h = Mix(h, static_cast<std::uint64_t>(spec.num_outcome_slots()));
  h = Mix(h, spec.decisions().size());
  h = Mix(h, spec.conditions().size());
  for (const coverage::Decision& d : spec.decisions()) {
    h = MixStr(h, d.name);
    h = Mix(h, static_cast<std::uint64_t>(d.num_outcomes));
    h = Mix(h, d.conditions.size());
  }
  h = Mix(h, program.TupleSize());
  h = Mix(h, program.input_types.size());
  return h;
}

std::string SerializeCheckpoint(const CampaignCheckpoint& ckpt) {
  Writer w;
  for (char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(ckpt.version);
  w.U64(ckpt.spec_fingerprint);
  w.U64(ckpt.seed);
  w.U8(ckpt.model_oriented ? 1 : 0);
  w.U8(ckpt.use_idc_energy ? 1 : 0);
  w.U8(ckpt.analyzed ? 1 : 0);
  w.U64(ckpt.max_tuples);
  w.U64(ckpt.step_budget);
  w.U32(ckpt.num_workers);
  w.U64(ckpt.sync_every);
  w.U64(ckpt.rounds);
  w.U64(ckpt.imports);
  w.U64Vec(ckpt.seen_signatures);
  w.U64Vec(ckpt.scanned);
  w.F64(ckpt.elapsed_s);
  w.U64(ckpt.workers.size());
  for (const FuzzerState& s : ckpt.workers) AppendFuzzerState(w, s);
  return w.take();
}

Result<CampaignCheckpoint> ParseCheckpoint(std::string_view bytes) {
  Reader r(bytes);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (r.failed() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("not a CFTCG checkpoint (bad magic)");
  }
  CampaignCheckpoint ckpt;
  ckpt.version = r.U32();
  if (ckpt.version != kCheckpointVersion) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "checkpoint version %u is not supported (this build reads version %u)",
                  ckpt.version, kCheckpointVersion);
    return Status::Error(buf);
  }
  ckpt.spec_fingerprint = r.U64();
  ckpt.seed = r.U64();
  ckpt.model_oriented = r.U8() != 0;
  ckpt.use_idc_energy = r.U8() != 0;
  ckpt.analyzed = r.U8() != 0;
  ckpt.max_tuples = r.U64();
  ckpt.step_budget = r.U64();
  ckpt.num_workers = r.U32();
  ckpt.sync_every = r.U64();
  ckpt.rounds = r.U64();
  ckpt.imports = r.U64();
  ckpt.seen_signatures = r.U64Vec();
  ckpt.scanned = r.U64Vec();
  ckpt.elapsed_s = r.F64();
  const std::uint64_t num_workers = r.U64();
  if (r.failed() || num_workers != ckpt.num_workers || num_workers == 0 ||
      num_workers > 4096) {
    return Status::Error("corrupt checkpoint: inconsistent worker count");
  }
  for (std::uint64_t i = 0; i < num_workers; ++i) {
    FuzzerState s;
    if (!ReadFuzzerState(r, s)) {
      return Status::Error("corrupt checkpoint: truncated at byte " + std::to_string(r.pos()));
    }
    ckpt.workers.push_back(std::move(s));
  }
  if (!r.AtEnd()) {
    return Status::Error("corrupt checkpoint: " +
                         std::to_string(bytes.size() - r.pos()) + " trailing byte(s)");
  }
  return ckpt;
}

Status WriteCheckpointFile(const std::string& path, const CampaignCheckpoint& ckpt) {
  return support::WriteFileAtomic(path, SerializeCheckpoint(ckpt));
}

Result<CampaignCheckpoint> ReadCheckpointFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Error("cannot open checkpoint " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  Result<CampaignCheckpoint> parsed = ParseCheckpoint(bytes);
  if (!parsed.ok()) return Status::Error(path + ": " + parsed.message());
  return parsed;
}

Status ValidateCheckpoint(const CampaignCheckpoint& ckpt, const FuzzerOptions& options,
                          std::uint32_t num_workers, std::uint64_t spec_fingerprint) {
  if (ckpt.spec_fingerprint != spec_fingerprint) {
    return Status::Error("checkpoint was taken against a different model (fingerprint mismatch)");
  }
  if (ckpt.seed != options.seed) {
    return Status::Error("checkpoint seed " + std::to_string(ckpt.seed) +
                         " does not match campaign seed " + std::to_string(options.seed));
  }
  if (ckpt.model_oriented != options.model_oriented) {
    return Status::Error("checkpoint mode (cftcg/fuzz-only) does not match the campaign");
  }
  if (ckpt.use_idc_energy != options.use_idc_energy) {
    return Status::Error("checkpoint IDC-energy setting does not match the campaign");
  }
  if (ckpt.max_tuples != options.max_tuples) {
    return Status::Error("checkpoint max_tuples does not match the campaign");
  }
  if (ckpt.num_workers != num_workers) {
    return Status::Error("checkpoint has " + std::to_string(ckpt.num_workers) +
                         " worker stream(s); the campaign was configured with " +
                         std::to_string(num_workers));
  }
  if (ckpt.workers.size() != ckpt.num_workers || ckpt.scanned.size() != ckpt.num_workers) {
    return Status::Error("corrupt checkpoint: worker table size mismatch");
  }
  return Status::Ok();
}

Status ValidateCheckpointShape(const CampaignCheckpoint& ckpt, std::uint64_t total_bits,
                               std::size_t num_decisions) {
  const std::uint64_t words = (total_bits + 63) / 64;
  for (std::size_t i = 0; i < ckpt.workers.size(); ++i) {
    const FuzzerState& s = ckpt.workers[i];
    const std::string who = "worker " + std::to_string(i);
    if (s.total_bits != total_bits) {
      return Status::Error("corrupt checkpoint: " + who + " coverage universe has " +
                           std::to_string(s.total_bits) + " bit(s), expected " +
                           std::to_string(total_bits));
    }
    if (s.total_words.size() != words) {
      return Status::Error("corrupt checkpoint: " + who + " bitmap has " +
                           std::to_string(s.total_words.size()) + " word(s), expected " +
                           std::to_string(words));
    }
    if (s.evals.size() != num_decisions) {
      return Status::Error("corrupt checkpoint: " + who + " has MCDC sets for " +
                           std::to_string(s.evals.size()) + " decision(s), expected " +
                           std::to_string(num_decisions));
    }
    if (!s.seen_eval_sizes.empty() && s.seen_eval_sizes.size() != num_decisions) {
      return Status::Error("corrupt checkpoint: " + who + " eval-size table has " +
                           std::to_string(s.seen_eval_sizes.size()) + " entr(ies), expected " +
                           std::to_string(num_decisions));
    }
  }
  return Status::Ok();
}

std::uint64_t CorpusEntriesFingerprint(const std::vector<CorpusEntry>& entries) {
  std::uint64_t h = kFnvOffset;
  h = Mix(h, entries.size());
  for (const CorpusEntry& e : entries) {
    h = Mix(h, e.data.size());
    h = MixBytes(h, e.data.data(), e.data.size());
    h = Mix(h, e.metric);
    h = Mix(h, e.new_slots);
    h = Mix(h, static_cast<std::uint64_t>(e.id));
    h = Mix(h, static_cast<std::uint64_t>(e.parent_id));
    h = Mix(h, e.depth);
    for (MutationStrategy s : e.chain) h = Mix(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

std::uint64_t CorpusFingerprint(const Corpus& corpus) {
  std::uint64_t h = kFnvOffset;
  h = Mix(h, corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const CorpusEntry& e = corpus.entry(i);
    h = Mix(h, e.data.size());
    h = MixBytes(h, e.data.data(), e.data.size());
    h = Mix(h, e.metric);
    h = Mix(h, e.new_slots);
    h = Mix(h, static_cast<std::uint64_t>(e.id));
    h = Mix(h, static_cast<std::uint64_t>(e.parent_id));
    h = Mix(h, e.depth);
    for (MutationStrategy s : e.chain) h = Mix(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

std::uint64_t CoverageFingerprint(const coverage::CoverageSink& sink) {
  std::uint64_t h = kFnvOffset;
  h = Mix(h, sink.total().size());
  for (std::uint64_t word : sink.total().words()) h = Mix(h, word);
  for (const auto& set : sink.evals()) {
    std::vector<std::uint64_t> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());
    h = Mix(h, sorted.size());
    for (std::uint64_t e : sorted) h = Mix(h, e);
  }
  return h;
}

std::uint64_t ProvenanceFingerprint(const coverage::ProvenanceMap& provenance) {
  // Hash an order-insensitive digest of the attributions: the first-hit set
  // is identical between an interrupted-and-resumed campaign and an
  // uninterrupted one, but wall-clock times are not — so time_s is excluded.
  std::uint64_t h = kFnvOffset;
  h = Mix(h, provenance.num_objectives());
  std::uint64_t acc = 0;
  for (const coverage::ObjectiveFirstHit& hit : provenance.hits()) {
    std::uint64_t one = kFnvOffset;
    one = Mix(one, static_cast<std::uint64_t>(hit.kind));
    one = MixStr(one, hit.name);
    one = Mix(one, static_cast<std::uint64_t>(hit.decision));
    one = Mix(one, static_cast<std::uint64_t>(hit.condition));
    one = Mix(one, static_cast<std::uint64_t>(hit.outcome));
    one = Mix(one, static_cast<std::uint64_t>(hit.slot));
    one = Mix(one, hit.iteration);
    one = Mix(one, static_cast<std::uint64_t>(hit.entry_id));
    one = MixStr(one, hit.chain);
    acc += one;  // commutative fold: hit order may differ across engines
  }
  h = Mix(h, acc);
  h = Mix(h, provenance.hits().size());
  return h;
}

}  // namespace cftcg::fuzz
