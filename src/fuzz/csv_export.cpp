#include "fuzz/csv_export.hpp"

#include "ir/value.hpp"
#include "support/strings.hpp"

namespace cftcg::fuzz {

std::string TestCaseToCsv(const TupleLayout& layout, const std::vector<std::string>& names,
                          const std::vector<std::uint8_t>& data) {
  std::string out;
  std::vector<std::string> header;
  for (std::size_t f = 0; f < layout.num_fields(); ++f) {
    header.push_back(f < names.size() ? names[f] : StrFormat("in%zu", f));
  }
  out += JoinStrings(header, ",") + "\n";

  const std::size_t ts = layout.tuple_size();
  for (std::size_t off = 0; off + ts <= data.size(); off += ts) {
    std::vector<std::string> row;
    for (std::size_t f = 0; f < layout.num_fields(); ++f) {
      const ir::Value v =
          ir::Value::FromBytes(layout.field_type(f), data.data() + off + layout.field_offset(f));
      row.push_back(v.ToString());
    }
    out += JoinStrings(row, ",") + "\n";
  }
  return out;
}

Result<std::vector<std::uint8_t>> CsvToTestCase(const TupleLayout& layout,
                                                const std::string& csv_text) {
  std::vector<std::uint8_t> data;
  const auto lines = SplitString(csv_text, '\n');
  bool first = true;
  for (const auto& line : lines) {
    const auto trimmed = TrimString(line);
    if (trimmed.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    const auto cells = SplitString(trimmed, ',');
    if (cells.size() != layout.num_fields()) {
      return Status::Error(StrFormat("csv row has %zu cells, want %zu", cells.size(),
                                     layout.num_fields()));
    }
    std::vector<std::uint8_t> tuple(layout.tuple_size());
    for (std::size_t f = 0; f < layout.num_fields(); ++f) {
      const ir::DType t = layout.field_type(f);
      ir::Value v;
      if (ir::DTypeIsFloat(t)) {
        double d = 0;
        if (!ParseDouble(cells[f], d)) return Status::Error("bad csv number: " + cells[f]);
        v = ir::Value::Real(t, d);
      } else if (t == ir::DType::kBool) {
        v = ir::Value::Bool(TrimString(cells[f]) == "true" || TrimString(cells[f]) == "1");
      } else {
        long long i = 0;
        if (!ParseInt64(cells[f], i)) return Status::Error("bad csv integer: " + cells[f]);
        v = ir::Value::Int(t, i);
      }
      v.ToBytes(tuple.data() + layout.field_offset(f));
    }
    data.insert(data.end(), tuple.begin(), tuple.end());
  }
  return data;
}

}  // namespace cftcg::fuzz
