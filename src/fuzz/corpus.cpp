#include "fuzz/corpus.hpp"

#include <cassert>

namespace cftcg::fuzz {

void Corpus::Add(CorpusEntry entry) {
  entry.id = next_id();
  total_energy_ += entry.metric + 1;
  if (entry.metric > max_metric_) max_metric_ = entry.metric;
  entries_.push_back(std::move(entry));
}

const CorpusEntry& Corpus::Pick(Rng& rng) const {
  assert(!entries_.empty());
  std::uint64_t roll = rng.NextBelow(total_energy_);
  for (const auto& e : entries_) {
    const std::uint64_t energy = e.metric + 1;
    if (roll < energy) return e;
    roll -= energy;
  }
  return entries_.back();
}

const CorpusEntry& Corpus::PickUniform(Rng& rng) const {
  assert(!entries_.empty());
  return entries_[rng.NextIndex(entries_.size())];
}

}  // namespace cftcg::fuzz
