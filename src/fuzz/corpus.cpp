#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cassert>

namespace cftcg::fuzz {

void Corpus::Add(CorpusEntry entry) {
  entry.id = next_id();
  total_energy_ += entry.metric + 1;
  cumulative_energy_.push_back(total_energy_);
  if (entry.metric > max_metric_) max_metric_ = entry.metric;
  entries_.push_back(std::move(entry));
}

void Corpus::Restore(std::vector<CorpusEntry> entries) {
  entries_ = std::move(entries);
  cumulative_energy_.clear();
  cumulative_energy_.reserve(entries_.size());
  total_energy_ = 0;
  max_metric_ = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    assert(entries_[i].id == static_cast<std::int64_t>(i));
    total_energy_ += entries_[i].metric + 1;
    cumulative_energy_.push_back(total_energy_);
    max_metric_ = std::max(max_metric_, entries_[i].metric);
  }
}

const CorpusEntry& Corpus::Pick(Rng& rng) const {
  assert(!entries_.empty());
  // Entry i owns the roll interval [cumulative_[i-1], cumulative_[i]) — the
  // first prefix sum strictly greater than the roll, exactly the entry the
  // old linear subtraction scan selected for the same roll.
  const std::uint64_t roll = rng.NextBelow(total_energy_);
  const auto it =
      std::upper_bound(cumulative_energy_.begin(), cumulative_energy_.end(), roll);
  const auto idx = static_cast<std::size_t>(it - cumulative_energy_.begin());
  return entries_[std::min(idx, entries_.size() - 1)];
}

const CorpusEntry& Corpus::PickUniform(Rng& rng) const {
  assert(!entries_.empty());
  return entries_[rng.NextIndex(entries_.size())];
}

}  // namespace cftcg::fuzz
