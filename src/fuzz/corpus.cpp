#include "fuzz/corpus.hpp"

#include <cassert>

namespace cftcg::fuzz {

void Corpus::Add(CorpusEntry entry) {
  total_energy_ += entry.metric + 1;
  entries_.push_back(std::move(entry));
}

const CorpusEntry& Corpus::Pick(Rng& rng) const {
  assert(!entries_.empty());
  std::uint64_t roll = rng.NextBelow(total_energy_);
  for (const auto& e : entries_) {
    const std::uint64_t energy = e.metric + 1;
    if (roll < energy) return e;
    roll -= energy;
  }
  return entries_.back();
}

const CorpusEntry& Corpus::PickUniform(Rng& rng) const {
  assert(!entries_.empty());
  return entries_[rng.NextIndex(entries_.size())];
}

std::size_t Corpus::MaxMetric() const {
  std::size_t best = 0;
  for (const auto& e : entries_) best = e.metric > best ? e.metric : best;
  return best;
}

}  // namespace cftcg::fuzz
