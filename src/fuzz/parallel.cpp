#include "fuzz/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>
#include <thread>
#include <unordered_set>

#include "coverage/report.hpp"
#include "fuzz/checkpoint.hpp"
#include "obs/clock.hpp"
#include "obs/monitor.hpp"
#include "obs/timer.hpp"
#include "support/atomic_file.hpp"
#include "support/rng.hpp"

namespace cftcg::fuzz {

namespace {

/// One entry exported for cross-worker import this round.
struct Export {
  std::size_t worker = 0;  // discovering worker (its local corpus keeps it)
  std::vector<std::uint8_t> data;
  std::uint64_t signature = 0;
};

}  // namespace

ParallelFuzzer::ParallelFuzzer(const vm::Program& instrumented,
                               const coverage::CoverageSpec& spec, FuzzerOptions options,
                               ParallelOptions parallel, const vm::Program* fuzz_only_program)
    : instrumented_(&instrumented),
      fuzz_only_(fuzz_only_program),
      spec_(&spec),
      options_(options),
      parallel_(parallel) {
  parallel_.num_workers = std::max(parallel_.num_workers, 1);
  parallel_.sync_every = std::max<std::uint64_t>(parallel_.sync_every, 1);
  const auto n = static_cast<std::size_t>(parallel_.num_workers);

  // Worker RNG streams: worker 0 runs the campaign seed itself — that is
  // what makes a one-worker campaign bit-identical to the sequential
  // Fuzzer — and workers i > 0 draw forked seeds from a master stream
  // (Rng::Fork semantics: seed_i = master.NextU64()).
  assert(parallel_.resume == nullptr ||
         parallel_.resume->workers.size() == n);  // ValidateCheckpoint's job
  Rng master(options_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    FuzzerOptions wopts = options_;
    wopts.seed = i == 0 ? options_.seed : master.NextU64();
    // The status board is per-lane by construction, so workers keep it (the
    // stamps are wait-free); everything aggregate-level stays driver-owned.
    wopts.status_worker = static_cast<int>(i);
    // The driver owns telemetry (aggregated heartbeats, per-worker phase
    // spans); margins are a sequential-only feature (a shared recorder
    // would race and per-worker recorders have no merge semantics).
    wopts.telemetry = nullptr;
    wopts.margins = nullptr;
    // Durability is driver-owned too: a worker seeing the interrupt flag
    // mid-round would stop at an uneven execution count and wreck the
    // deterministic round schedule, so workers never see the flag and never
    // write checkpoints — the driver does both at round barriers, where the
    // whole campaign state is at a well-defined point. Hang quarantine
    // stays per-worker (content-hashed names, atomic writes: no collisions).
    wopts.interrupt = nullptr;
    wopts.checkpoint_path.clear();
    wopts.checkpoint_every = 0;
    // Profile publication is driver-owned as well: the driver merges the
    // worker planes at barriers and publishes one campaign-wide snapshot.
    wopts.profile_publisher = nullptr;
    if (parallel_.resume != nullptr) wopts.resume = &parallel_.resume->workers[i];
    // Corpus sync needs signatures; a single worker never syncs, so it
    // keeps the caller's setting (default off = zero hot-path hashing).
    if (n > 1) wopts.collect_signatures = true;
    if (options_.provenance != nullptr) {
      worker_prov_.push_back(std::make_unique<coverage::ProvenanceMap>(spec));
      wopts.provenance = worker_prov_.back().get();
    } else {
      worker_prov_.push_back(nullptr);
    }
    workers_.push_back(std::make_unique<Fuzzer>(*instrumented_, *spec_, wopts, fuzz_only_));
  }
}

ParallelFuzzer::~ParallelFuzzer() = default;

ParallelCampaignResult ParallelFuzzer::Run(const FuzzBudget& budget) {
  const auto n = workers_.size();
  ParallelCampaignResult out;
  obs::Stopwatch watch;
  obs::CampaignTelemetry* tm = options_.telemetry;
  obs::CampaignStatusBoard* const board = options_.status_board;

  // Campaign wall time spans interruptions: a resumed driver starts its
  // clock where the checkpointed one stopped.
  const double time_base = parallel_.resume != nullptr ? parallel_.resume->elapsed_s : 0;
  const auto elapsed = [&]() { return time_base + watch.Elapsed(); };

  if (tm != nullptr && tm->trace != nullptr) {
    if (parallel_.resume != nullptr) {
      tm->trace->Emit(obs::TraceEvent("resume")
                          .Str("mode", options_.model_oriented ? "cftcg" : "fuzz_only")
                          .U64("seed", options_.seed)
                          .U64("workers", n)
                          .U64("sync_every", parallel_.sync_every)
                          .U64("rounds", parallel_.resume->rounds)
                          .F64("resumed_elapsed_s", time_base));
    } else {
      tm->trace->Emit(obs::TraceEvent("start")
                          .Str("mode", options_.model_oriented ? "cftcg" : "fuzz_only")
                          .U64("seed", options_.seed)
                          .U64("workers", n)
                          .U64("sync_every", parallel_.sync_every)
                          .F64("budget_s", budget.wall_seconds)
                          .I64("fuzz_slots", spec_->FuzzBranchCount())
                          .I64("outcome_slots", spec_->num_outcome_slots()));
    }
  }

  // Execution quota per worker: an even split of the campaign budget, with
  // the remainder spread over the first workers. Quotas — not wall time —
  // bound the deterministic schedule.
  std::vector<FuzzBudget> worker_budget(n, budget);
  if (budget.max_executions != std::numeric_limits<std::uint64_t>::max()) {
    const std::uint64_t base = budget.max_executions / n;
    const std::uint64_t rem = budget.max_executions % n;
    for (std::size_t i = 0; i < n; ++i) {
      worker_budget[i].max_executions = base + (i < rem ? 1 : 0);
    }
  }

  std::vector<obs::PhaseAccumulator> phase;
  phase.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    phase.emplace_back("fuzz.worker" + std::to_string(i));
  }

  // Driver-side phase plane: corpus-sync, checkpoint writes, and barrier
  // idle (a worker finishing its round early) are driver work the workers'
  // own lap clocks never see. Round-granularity, so always on.
  obs::PhaseProfile driver_phases;
  obs::ProfilePublisher* const pub = options_.profile_publisher;
  // Merged snapshot for the /profile endpoint: worker planes + driver plane,
  // folded in worker-id order (deterministic like every other merge here).
  const auto merged_profile = [&](double now) {
    vm::ExecProfile exec;
    obs::PhaseProfile phases = driver_phases;
    for (const auto& w : workers_) {
      exec.MergeFrom(w->exec_profile());
      phases.MergeFrom(w->phase_profile());
    }
    exec.strobe_period = workers_[0]->exec_profile().strobe_period;
    obs::CampaignProfile p = obs::BuildCampaignProfile(*instrumented_, exec, phases);
    p.mode = options_.model_oriented ? "cftcg" : "fuzz_only";
    p.seed = options_.seed;
    p.workers = static_cast<int>(n);
    p.elapsed_s = now;
    return p;
  };
  double next_profile_pub = 0;  // rate-limits /profile snapshots to ~1/s

  // Seed every worker's campaign (sequential: Begin draws from the worker's
  // own RNG only, and the seed loops are a tiny fraction of the budget).
  for (std::size_t i = 0; i < n; ++i) workers_[i]->Begin(worker_budget[i]);

  // Shared campaign state, touched only between rounds (single-threaded).
  coverage::CoverageSink global(*spec_);
  std::unordered_set<std::uint64_t> seen_sigs;
  std::vector<std::size_t> scanned(n, 0);
  if (parallel_.resume != nullptr) {
    // Barrier state from the checkpoint: the signature-dedup set and the
    // per-worker scan cursors are exactly where the checkpointed barrier
    // left them (cursors == corpus sizes, so the pre-loop sync is a no-op),
    // and the round/import counters continue rather than restart.
    seen_sigs.insert(parallel_.resume->seen_signatures.begin(),
                     parallel_.resume->seen_signatures.end());
    for (std::size_t i = 0; i < n && i < parallel_.resume->scanned.size(); ++i) {
      scanned[i] = static_cast<std::size_t>(parallel_.resume->scanned[i]);
    }
    out.rounds = parallel_.resume->rounds;
    out.imports = parallel_.resume->imports;
  }
  double next_stat = tm != nullptr && tm->stats_every_s > 0
                         ? tm->stats_every_s
                         : std::numeric_limits<double>::infinity();
  std::uint64_t last_stat_exec = 0;
  double last_stat_time = 0;

  const auto total_executions = [&]() {
    std::uint64_t exec = 0;
    for (const auto& w : workers_) exec += w->executions();
    return exec;
  };

  // Periodic checkpointing: the driver writes the whole-campaign checkpoint
  // (worker states + barrier state) once the summed execution count crosses
  // each checkpoint_every boundary — evaluated at barriers only, so every
  // checkpoint sits at a deterministic point of the round schedule.
  std::uint64_t next_checkpoint = std::numeric_limits<std::uint64_t>::max();
  if (options_.checkpoint_every > 0 && !options_.checkpoint_path.empty()) {
    const std::uint64_t every = options_.checkpoint_every;
    next_checkpoint = (total_executions() / every + 1) * every;
  }

  const auto write_checkpoint = [&]() {
    const double ckpt_t0 = elapsed();
    CampaignCheckpoint ckpt;
    ckpt.spec_fingerprint = workers_[0]->spec_fingerprint();
    ckpt.seed = options_.seed;
    ckpt.model_oriented = options_.model_oriented;
    ckpt.use_idc_energy = options_.use_idc_energy;
    ckpt.analyzed = options_.justifications != nullptr;
    ckpt.max_tuples = options_.max_tuples;
    ckpt.step_budget = options_.step_budget;
    ckpt.num_workers = static_cast<std::uint32_t>(n);
    ckpt.sync_every = parallel_.sync_every;
    ckpt.rounds = out.rounds;
    ckpt.imports = out.imports;
    ckpt.seen_signatures.assign(seen_sigs.begin(), seen_sigs.end());
    std::sort(ckpt.seen_signatures.begin(), ckpt.seen_signatures.end());
    ckpt.scanned.assign(scanned.begin(), scanned.end());
    ckpt.elapsed_s = elapsed();
    ckpt.workers.reserve(n);
    for (const auto& w : workers_) ckpt.workers.push_back(w->SaveState());
    const std::string bytes = SerializeCheckpoint(ckpt);
    const Status status = support::WriteFileAtomic(options_.checkpoint_path, bytes);
    if (!status.ok()) {
      std::fprintf(stderr, "cftcg: checkpoint write failed: %s\n", status.message().c_str());
    }
    if (tm != nullptr && tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("checkpoint")
                          .F64("time_s", elapsed())
                          .U64("exec", total_executions())
                          .U64("bytes", bytes.size())
                          .U64("ok", status.ok() ? 1 : 0));
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetCounter("fuzz.checkpoints").Increment();
    }
    driver_phases.Add(obs::ProfilePhase::kCheckpoint, elapsed() - ckpt_t0);
  };

  const auto sync_round = [&]() {
    if (n < 2) return;
    // Pass 1 (worker-id order): collect entries admitted since the last
    // barrier whose coverage signature is globally new. First worker in id
    // order wins a signature — deterministic for a fixed seed and count.
    std::vector<Export> exports;
    for (std::size_t i = 0; i < n; ++i) {
      const Corpus& corpus = workers_[i]->corpus();
      for (std::size_t k = scanned[i]; k < corpus.size(); ++k) {
        const CorpusEntry& entry = corpus.entry(k);
        if (seen_sigs.insert(entry.signature).second) {
          exports.push_back(Export{i, entry.data, entry.signature});
        }
      }
      scanned[i] = corpus.size();
    }
    // Pass 2: replay every export into every *other* live worker. Imports
    // draw nothing from worker RNG streams and their iterations are booked
    // as measurement, so the round schedule stays deterministic and the
    // throughput numbers honest.
    for (const Export& e : exports) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == e.worker || workers_[j]->done()) continue;
        workers_[j]->ImportEntry(e.data, e.signature);
        ++out.imports;
      }
    }
    // Imported entries carry already-seen signatures; fast-forward the
    // cursors over them so the next round's scan starts at fresh entries.
    for (std::size_t j = 0; j < n; ++j) scanned[j] = workers_[j]->corpus().size();
  };

  const auto heartbeat = [&]() {
    const double now = elapsed();
    if (now < next_stat) return;
    do next_stat += tm->stats_every_s;
    while (next_stat <= now);
    for (std::size_t i = 0; i < n; ++i) global.MergeFrom(workers_[i]->sink());
    const coverage::MetricReport report =
        coverage::ComputeReport(global, options_.justifications);
    std::uint64_t exec = 0;
    std::uint64_t corpus = 0;
    std::uint64_t iters = 0;
    for (std::size_t i = 0; i < n; ++i) {
      exec += workers_[i]->executions();
      corpus += workers_[i]->corpus().size();
      iters += workers_[i]->model_iterations();
    }
    const double window = now - last_stat_time;
    const double exec_per_s = window > 0 ? static_cast<double>(exec - last_stat_exec) / window : 0;
    last_stat_time = now;
    last_stat_exec = exec;
    if (board != nullptr) {
      obs::CampaignAggregates agg;
      agg.elapsed_s = now;
      agg.executions = exec;
      agg.model_iterations = iters;
      agg.exec_per_s = exec_per_s;
      agg.corpus = corpus;
      agg.decision_pct = report.DecisionPct();
      agg.condition_pct = report.ConditionPct();
      agg.mcdc_pct = report.McdcPct();
      agg.adj_decision_pct = report.AdjustedDecisionPct();
      agg.adj_condition_pct = report.AdjustedConditionPct();
      agg.adj_mcdc_pct = report.AdjustedMcdcPct();
      board->UpdateAggregates(agg);
    }
    if (tm->registry != nullptr) {
      tm->registry->GetGauge("fuzz.exec_per_s").Set(exec_per_s);
      tm->registry->GetGauge("fuzz.corpus_size").Set(static_cast<double>(corpus));
      tm->registry->GetGauge("fuzz.coverage.decision_pct").Set(report.DecisionPct());
      tm->registry->GetGauge("fuzz.coverage.condition_pct").Set(report.ConditionPct());
      tm->registry->GetGauge("fuzz.coverage.mcdc_pct").Set(report.McdcPct());
    }
    if (tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("stat")
                          .F64("time_s", now)
                          .U64("exec", exec)
                          .F64("exec_per_s", exec_per_s)
                          .U64("workers", n)
                          .U64("rounds", out.rounds)
                          .U64("imports", out.imports)
                          .U64("corpus", corpus)
                          .F64("decision_pct", report.DecisionPct())
                          .F64("condition_pct", report.ConditionPct())
                          .F64("mcdc_pct", report.McdcPct()));
    }
    if (tm->status_stream != nullptr) {
      std::fprintf(tm->status_stream, "#%llu\tcov: %.1f/%.1f/%.1f corp: %llu exec/s: %.0f (j%zu)\n",
                   static_cast<unsigned long long>(exec), report.DecisionPct(),
                   report.ConditionPct(), report.McdcPct(),
                   static_cast<unsigned long long>(corpus), exec_per_s, n);
    }
  };

  // Seed entries sync before the first fuzzing round so no worker mutates
  // blind to coverage another worker's seeds already reached.
  sync_round();

  while (true) {
    bool any_alive = false;
    for (const auto& w : workers_) any_alive |= !w->done();
    if (!any_alive) break;
    // Round: every live worker advances sync_every executions on its own
    // thread. Worker state is disjoint; shared Programs are read-only.
    std::vector<std::thread> threads;
    threads.reserve(n);
    std::vector<double> round_dur(n, -1.0);  // -1 = did not run this round
    for (std::size_t i = 0; i < n; ++i) {
      if (workers_[i]->done()) continue;
      Fuzzer* worker = workers_[i].get();
      obs::PhaseAccumulator* acc = &phase[i];
      double* dur_slot = &round_dur[i];  // disjoint per thread
      const std::uint64_t target = worker->executions() + parallel_.sync_every;
      const double round_t0 = elapsed();
      const int tid = static_cast<int>(i) + 1;
      threads.emplace_back([worker, acc, target, board, round_t0, tid, dur_slot]() {
        obs::Stopwatch chunk;
        worker->RunChunk(target);
        const double dur = chunk.Elapsed();
        *dur_slot = dur;
        acc->Add(dur);
        if (board != nullptr) board->LogSpan("round", tid, round_t0, dur);
      });
    }
    for (auto& t : threads) t.join();  // barrier: the merge is single-threaded
    ++out.rounds;
    // Barrier-idle accounting: the round lasts as long as its slowest
    // worker; everyone else waited the difference out at the join.
    double round_span = 0;
    for (std::size_t i = 0; i < n; ++i) round_span = std::max(round_span, round_dur[i]);
    for (std::size_t i = 0; i < n; ++i) {
      if (round_dur[i] >= 0 && round_span > round_dur[i]) {
        driver_phases.Add(obs::ProfilePhase::kIdle, round_span - round_dur[i]);
      }
    }
    const double sync_t0 = elapsed();
    sync_round();
    driver_phases.Add(obs::ProfilePhase::kCorpusSync, elapsed() - sync_t0);
    if (board != nullptr && n > 1) board->LogSpan("sync", 0, sync_t0, elapsed() - sync_t0);
    if (tm != nullptr) heartbeat();
    if (pub != nullptr && elapsed() >= next_profile_pub) {
      const double now = elapsed();
      pub->Publish(merged_profile(now).ToJson());
      next_profile_pub = now + 1.0;
    }
    if (total_executions() >= next_checkpoint) {
      write_checkpoint();
      next_checkpoint += options_.checkpoint_every;
    }
    // Cooperative interruption, honored at the barrier only: workers always
    // complete their round, so the flushed checkpoint sits at the same
    // schedule point an uninterrupted campaign passes through.
    if (options_.interrupt != nullptr &&
        options_.interrupt->load(std::memory_order_relaxed)) {
      out.interrupted = true;
      if (!options_.checkpoint_path.empty()) write_checkpoint();
      break;
    }
  }

  // Final merge, in worker-id order throughout.
  std::vector<CampaignResult> results;
  results.reserve(n);
  for (auto& w : workers_) results.push_back(w->Finish());

  CampaignResult& merged = out.merged;
  for (std::size_t i = 0; i < n; ++i) {
    const CampaignResult& r = results[i];
    merged.executions += r.executions;
    merged.model_iterations += r.model_iterations;
    merged.measure_iterations += r.measure_iterations;
    merged.hangs += r.hangs;
    merged.strategy_stats.MergeFrom(r.strategy_stats);
    merged.focus_stats.MergeFrom(r.focus_stats);
    merged.test_cases.insert(merged.test_cases.end(), r.test_cases.begin(),
                             r.test_cases.end());
    merged.exec_profile.MergeFrom(r.exec_profile);
    merged.fuzz_exec_profile.MergeFrom(r.fuzz_exec_profile);
    merged.phase_profile.MergeFrom(r.phase_profile);
    out.worker_executions.push_back(r.executions);
    global.MergeFrom(workers_[i]->sink());
    // Worker-id-order fold of the per-worker fingerprints: position-
    // sensitive, so swapped worker states would not cancel out.
    merged.corpus_fingerprint =
        (merged.corpus_fingerprint ^ r.corpus_fingerprint) * 1099511628211ULL;
  }
  merged.report = coverage::ComputeReport(global, options_.justifications);
  merged.coverage_fingerprint = CoverageFingerprint(global);
  merged.elapsed_s = elapsed();
  merged.interrupted = out.interrupted;
  merged.exec_profile.strobe_period = results.empty() ? 0 : results[0].exec_profile.strobe_period;
  merged.phase_profile.MergeFrom(driver_phases);
  if (pub != nullptr) pub->Publish(merged_profile(merged.elapsed_s).ToJson());
  // Final board aggregates; published after the provenance merge below so
  // the objective counts make it into the last /status document.
  obs::CampaignAggregates final_agg;
  final_agg.elapsed_s = merged.elapsed_s;
  final_agg.executions = merged.executions;
  final_agg.model_iterations = merged.model_iterations;
  final_agg.exec_per_s =
      merged.elapsed_s > 0 ? static_cast<double>(merged.executions) / merged.elapsed_s : 0;
  for (const auto& w : workers_) final_agg.corpus += w->corpus().size();
  final_agg.test_cases = merged.test_cases.size();
  final_agg.decision_pct = merged.report.DecisionPct();
  final_agg.condition_pct = merged.report.ConditionPct();
  final_agg.mcdc_pct = merged.report.McdcPct();
  final_agg.adj_decision_pct = merged.report.AdjustedDecisionPct();
  final_agg.adj_condition_pct = merged.report.AdjustedConditionPct();
  final_agg.adj_mcdc_pct = merged.report.AdjustedMcdcPct();
  final_agg.hangs = merged.hangs;

  // Corpus fingerprint: the union of admitted coverage signatures.
  {
    std::unordered_set<std::uint64_t> sigs;
    for (const auto& w : workers_) {
      const Corpus& corpus = w->corpus();
      for (std::size_t k = 0; k < corpus.size(); ++k) sigs.insert(corpus.entry(k).signature);
    }
    out.corpus_signatures.assign(sigs.begin(), sigs.end());
    std::sort(out.corpus_signatures.begin(), out.corpus_signatures.end());
  }

  // Merged first-hit attribution: earliest worker-local iteration wins,
  // ties to the lowest worker id; folded into the caller's map.
  if (options_.provenance != nullptr) {
    std::vector<const coverage::ProvenanceMap*> maps;
    for (const auto& p : worker_prov_) maps.push_back(p.get());
    const auto hits = coverage::MergeFirstHits(maps);
    for (const auto& h : hits) options_.provenance->AbsorbHit(h);
    if (tm != nullptr && tm->trace != nullptr) {
      for (const auto& h : options_.provenance->hits()) {
        tm->trace->Emit(obs::TraceEvent("objective")
                            .Str("kind", coverage::ObjectiveKindName(h.kind))
                            .Str("name", h.name)
                            .I64("outcome", h.outcome)
                            .I64("slot", h.slot)
                            .U64("iter", h.iteration)
                            .F64("time_s", h.time_s)
                            .I64("entry", h.entry_id)
                            .Str("chain", h.chain));
      }
      tm->trace->Emit(obs::TraceEvent("provenance")
                          .U64("covered", options_.provenance->num_covered())
                          .U64("total", options_.provenance->num_objectives()));
    }
    if (tm != nullptr && tm->registry != nullptr) {
      tm->registry->GetGauge("fuzz.objectives_covered")
          .Set(static_cast<double>(options_.provenance->num_covered()));
      tm->registry->GetGauge("fuzz.objectives_total")
          .Set(static_cast<double>(options_.provenance->num_objectives()));
    }
    final_agg.objectives_covered = options_.provenance->num_covered();
    final_agg.objectives_total = options_.provenance->num_objectives();
  }
  if (board != nullptr) board->UpdateAggregates(final_agg);

  if (tm != nullptr) {
    if (tm->registry != nullptr) {
      obs::Registry& reg = *tm->registry;
      reg.GetCounter("fuzz.executions").Add(merged.executions);
      reg.GetCounter("fuzz.model_iterations").Add(merged.model_iterations);
      reg.GetCounter("fuzz.measure_iterations").Add(merged.measure_iterations);
      reg.GetGauge("fuzz.workers").Set(static_cast<double>(n));
      reg.GetGauge("fuzz.coverage.decision_pct").Set(merged.report.DecisionPct());
      reg.GetGauge("fuzz.coverage.condition_pct").Set(merged.report.ConditionPct());
      reg.GetGauge("fuzz.coverage.mcdc_pct").Set(merged.report.McdcPct());
    }
    for (std::size_t i = 0; i < n; ++i) phase[i].Commit(tm->registry, tm->trace);
    if (tm->trace != nullptr) {
      tm->trace->Emit(obs::TraceEvent("stop")
                          .F64("elapsed_s", merged.elapsed_s)
                          .U64("exec", merged.executions)
                          .U64("iters", merged.model_iterations)
                          .U64("measure_iters", merged.measure_iterations)
                          .F64("exec_per_s", merged.elapsed_s > 0
                                                 ? static_cast<double>(merged.executions) /
                                                       merged.elapsed_s
                                                 : 0)
                          .U64("workers", n)
                          .U64("rounds", out.rounds)
                          .U64("imports", out.imports)
                          .U64("test_cases", merged.test_cases.size())
                          .F64("decision_pct", merged.report.DecisionPct())
                          .F64("condition_pct", merged.report.ConditionPct())
                          .F64("mcdc_pct", merged.report.McdcPct()));
      tm->trace->Flush();
    }
  }
  return out;
}

}  // namespace cftcg::fuzz
