// Corpus of interesting inputs.
//
// Entries carry the Iteration Difference Coverage metric (Algorithm 1's
// return value); selection is energy-weighted toward higher-IDC entries so
// that inputs whose iterations keep visiting *different* branch sets — the
// paper's proxy for state-space exploration — get mutated more often.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace cftcg::fuzz {

struct CorpusEntry {
  std::vector<std::uint8_t> data;
  std::size_t metric = 0;      // IDC metric (or edge count in Fuzz Only mode)
  std::size_t new_slots = 0;   // slots newly covered when this entry was added
};

class Corpus {
 public:
  void Add(CorpusEntry entry);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const CorpusEntry& entry(std::size_t i) const { return entries_[i]; }

  /// Energy-weighted pick: probability proportional to (metric + 1).
  [[nodiscard]] const CorpusEntry& Pick(Rng& rng) const;
  /// Uniform pick (crossover partner).
  [[nodiscard]] const CorpusEntry& PickUniform(Rng& rng) const;

  /// Sum of (metric + 1) over all entries — the denominator of the energy
  /// distribution (telemetry heartbeats report it alongside max_metric).
  [[nodiscard]] std::uint64_t total_energy() const { return total_energy_; }
  /// Largest per-entry metric currently in the corpus.
  [[nodiscard]] std::size_t MaxMetric() const;

 private:
  std::vector<CorpusEntry> entries_;
  std::uint64_t total_energy_ = 0;
};

}  // namespace cftcg::fuzz
