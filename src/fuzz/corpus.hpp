// Corpus of interesting inputs.
//
// Entries carry the Iteration Difference Coverage metric (Algorithm 1's
// return value); selection is energy-weighted toward higher-IDC entries so
// that inputs whose iterations keep visiting *different* branch sets — the
// paper's proxy for state-space exploration — get mutated more often.
//
// Every entry additionally carries its lineage: a corpus-unique id, the id
// of the parent it was mutated from (kNoParent for seed inputs), its
// generation depth, and the Table 1 strategy chain of the mutation that
// produced it. The fuzzing loop maintains these on admission; the
// provenance layer joins them against per-objective first hits so a
// campaign's genealogy is reconstructible from the trace alone.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/mutator.hpp"
#include "support/rng.hpp"

namespace cftcg::fuzz {

struct CorpusEntry {
  static constexpr std::int64_t kNoParent = -1;

  std::vector<std::uint8_t> data;
  std::size_t metric = 0;      // IDC metric (or edge count in Fuzz Only mode)
  std::size_t new_slots = 0;   // slots newly covered when this entry was added
  /// Coverage signature of the producing execution (0 unless the campaign
  /// ran with collect_signatures) — the parallel engine's dedup key for
  /// cross-worker corpus sync.
  std::uint64_t signature = 0;
  // -- Lineage (assigned by the fuzzing loop / Corpus::Add) ---------------
  std::int64_t id = kNoParent;         // corpus-unique, insertion order
  std::int64_t parent_id = kNoParent;  // entry this was mutated from
  std::uint32_t depth = 0;             // generations from a seed entry
  std::vector<MutationStrategy> chain; // strategies of the producing mutation
};

class Corpus {
 public:
  /// Stamps the entry with the next id (insertion order) and stores it.
  void Add(CorpusEntry entry);

  /// Replaces the whole corpus with checkpointed entries (ids preserved)
  /// and rebuilds the energy prefix sums. Entries must already be in
  /// insertion order with ids 0..n-1, as SaveState captured them.
  void Restore(std::vector<CorpusEntry> entries);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const CorpusEntry& entry(std::size_t i) const { return entries_[i]; }

  /// Energy-weighted pick: probability proportional to (metric + 1).
  /// O(log n) binary search over the cumulative-energy vector (the corpus
  /// is append-only, so the prefix sums never need rebuilding).
  [[nodiscard]] const CorpusEntry& Pick(Rng& rng) const;
  /// Uniform pick (crossover partner).
  [[nodiscard]] const CorpusEntry& PickUniform(Rng& rng) const;

  /// Sum of (metric + 1) over all entries — the denominator of the energy
  /// distribution (telemetry heartbeats report it alongside max_metric).
  [[nodiscard]] std::uint64_t total_energy() const { return total_energy_; }
  /// Largest per-entry metric currently in the corpus. O(1): the max is
  /// cached on Add (entries are never removed or re-scored).
  [[nodiscard]] std::size_t MaxMetric() const { return max_metric_; }
  /// Id the next Add() will assign (== size(); entries are append-only).
  [[nodiscard]] std::int64_t next_id() const {
    return static_cast<std::int64_t>(entries_.size());
  }

 private:
  std::vector<CorpusEntry> entries_;
  std::vector<std::uint64_t> cumulative_energy_;  // cumulative_energy_[i] = sum of energies 0..i
  std::uint64_t total_energy_ = 0;
  std::size_t max_metric_ = 0;
};

}  // namespace cftcg::fuzz
