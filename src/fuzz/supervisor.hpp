// Crash-isolated supervised execution engine.
//
// The Supervisor runs the same deterministic round-barrier campaign as
// fuzz::ParallelFuzzer, but each worker lives in its own forked process
// instead of a thread: a VM bug, a malformed model, or a hostile input can
// kill one lane without taking the campaign down. Worker state crosses the
// process boundary as checkpoint-format messages (fuzz/wire.hpp, the exact
// FuzzerState encoding of PR 5 checkpoints) over a pair of pipes per lane:
//
//   parent → child:  RUN(target [, armed fault])   one round of executions
//                    SYNC(import list)             round-barrier corpus merge
//                    FINISH                        final state + report extras
//   child → parent:  HELLO(seed entries)           after Fuzzer::Begin
//                    ROUND(done, execs, new corpus entries since the cursor)
//                    STATE(full FuzzerState)       post-sync barrier state
//                    RESULT(state + fingerprints + provenance)
//
// Fault containment: the supervisor detects worker death (SIGCHLD + pipe
// EOF), kills lanes that miss their reply deadline (heartbeat timeout),
// quarantines the input that was executing at the time of death to a
// content-hashed crashes/ artifact (the shared-memory input stamp mirrors
// the hang quarantine of PR 5), and respawns the lane from its last
// post-sync state with capped exponential backoff. A lane that keeps dying
// is retired and the campaign degrades gracefully to fewer workers.
//
// Determinism: with no faults injected and no lane deaths, the supervised
// campaign is bit-identical to the threaded engine for the same seed and
// worker count — same RNG forking, same budget split, same export/import
// ordering at every barrier, same worker-id-order final merge. A respawned
// lane replays its round from the last barrier state, so even a faulted
// campaign re-joins the deterministic schedule unless the crashing input is
// quarantined out of it.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/checkpoint.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/parallel.hpp"
#include "support/fault_inject.hpp"

namespace cftcg::fuzz {

struct SupervisorOptions {
  /// Lane count; clamped to >= 1. Unlike the threaded engine there is no
  /// sequential delegation: -j1 --isolate still forks one worker.
  int num_workers = 1;
  /// Executions per lane between barriers (ParallelOptions::sync_every).
  std::uint64_t sync_every = 1024;
  /// Resume from a checkpoint (same format as the threaded engine's).
  const CampaignCheckpoint* resume = nullptr;
  /// A lane that produces no reply for this long is presumed wedged,
  /// killed, and respawned. Also bounds the FINISH collection.
  double lane_timeout_s = 30.0;
  /// Consecutive respawns before a lane is retired. 0 retires on first
  /// death (no respawn).
  int max_restarts = 3;
  /// First respawn backoff; doubles per consecutive restart of the same
  /// lane, capped at restart_backoff_cap_s.
  double restart_backoff_s = 0.05;
  double restart_backoff_cap_s = 2.0;
  /// Where inputs in flight at worker death are quarantined (content-hashed
  /// `crash-<hash>.bin`, mirroring the hang quarantine). Empty: not saved.
  std::string crashes_dir;
  /// Deterministic fault schedule (tests, CI). Not owned; may be null.
  support::FaultInjector* faults = nullptr;
};

struct SupervisedCampaignResult : ParallelCampaignResult {
  std::uint64_t crashes = 0;       // lanes that died (any cause, incl. injected)
  std::uint64_t hang_kills = 0;    // of which: reply-deadline kills
  std::uint64_t restarts = 0;      // successful respawns
  std::uint64_t lanes_retired = 0; // lanes given up on
};

class Supervisor {
 public:
  Supervisor(const vm::Program& instrumented, const coverage::CoverageSpec& spec,
             FuzzerOptions options, SupervisorOptions supervise,
             const vm::Program* fuzz_only_program = nullptr);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  SupervisedCampaignResult Run(const FuzzBudget& budget);

 private:
  const vm::Program* instrumented_;
  const vm::Program* fuzz_only_;
  const coverage::CoverageSpec* spec_;
  FuzzerOptions options_;
  SupervisorOptions supervise_;
};

}  // namespace cftcg::fuzz
