#include "bench_models/bench_models.hpp"

namespace cftcg::bench_models {

const std::vector<BenchModelInfo>& Roster() {
  static const std::vector<BenchModelInfo> kRoster = {
      {"CPUTask", "AutoSAR CPU task dispatch system"},
      {"AFC", "Engine air-fuel control system"},
      {"TCP", "TCP three-way handshake protocol"},
      {"RAC", "Robotic arm controller"},
      {"EVCS", "Electric vehicle charging system"},
      {"TWC", "Train wheel speed controller"},
      {"UTPC", "Underwater thruster power control"},
      {"SolarPV", "Solar PV panel output control"},
  };
  return kRoster;
}

Result<std::unique_ptr<ir::Model>> Build(const std::string& name) {
  if (name == "CPUTask") return BuildCpuTask();
  if (name == "AFC") return BuildAfc();
  if (name == "TCP") return BuildTcp();
  if (name == "RAC") return BuildRac();
  if (name == "EVCS") return BuildEvcs();
  if (name == "TWC") return BuildTwc();
  if (name == "UTPC") return BuildUtpc();
  if (name == "SolarPV") return BuildSolarPv();
  return Status::Error("unknown benchmark model: " + name);
}

}  // namespace cftcg::bench_models
