// RAC — robotic arm controller.
//
// Inports: T1..T4:int16 (joint target angles, tenths of degree), Go:int8,
// EStop:int8. Outport: Cmd:int32 (packed joint commands + supervisor
// state).
//
// Four identical joint servo subsystems (position estimate integrator,
// PD-ish command, rate limiter, saturation, endstop protection) under a
// supervisor chart (Init/Homing/Ready/Moving/Holding/EStop).
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;
using ir::PortRef;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

/// One joint servo: inports (target, enabled), outports (command, at_limit).
std::unique_ptr<ir::Model> BuildJoint(int index, double lo, double hi) {
  ModelBuilder mb("joint" + std::to_string(index));
  auto target = mb.Inport("target", DType::kInt16);
  auto enabled = mb.Inport("enabled", DType::kBool);

  auto tgt_f = mb.Op(BlockKind::kDataTypeConversion, "tgt_f", {target},
                     P({{"to", ParamValue("double")}}));
  auto tgt_sat = mb.Saturation(tgt_f, lo, hi, "tgt_sat");

  // Position estimate: integrator over the commanded velocity (a
  // first-order servo loop). The integrator is created unwired and its
  // input connected after the command path exists — legal because the
  // integrator input is not direct feedthrough.
  const auto pos_id = mb.AddBlock(BlockKind::kDiscreteIntegrator, "pos_est", {},
                                  P({{"gain", ParamValue(1.0)}, {"lower", ParamValue(lo)},
                                     {"upper", ParamValue(hi)}}));
  auto pos = ModelBuilder::Out(pos_id);
  auto err = mb.Sub(tgt_sat, pos, "err");
  auto err_dz = mb.Op(BlockKind::kDeadZone, "err_dz", {err},
                      P({{"start", ParamValue(-2.0)}, {"end", ParamValue(2.0)}}));
  auto p_term = mb.Gain(err_dz, 0.4, "p_term");
  auto cmd_raw = mb.Switch(p_term, enabled, mb.Constant(0.0), 0.5, "cmd_gate");
  auto cmd_slew = mb.Op(BlockKind::kRateLimiter, "cmd_slew", {cmd_raw},
                        P({{"rising", ParamValue(15.0)}, {"falling", ParamValue(-15.0)}}));
  auto cmd = mb.Saturation(cmd_slew, -50.0, 50.0, "cmd_sat");
  mb.Connect(cmd, pos_id, 0);  // close the servo loop

  // Endstop proximity detection.
  auto near_lo = mb.Op(BlockKind::kCompareToConstant, "near_lo", {pos},
                       P({{"op", ParamValue("le")}, {"value", ParamValue(lo + 5.0)}}));
  auto near_hi = mb.Op(BlockKind::kCompareToConstant, "near_hi", {pos},
                       P({{"op", ParamValue("ge")}, {"value", ParamValue(hi - 5.0)}}));
  auto at_limit = mb.Or({near_lo, near_hi}, "at_limit");
  auto at_limit_i = mb.Op(BlockKind::kDataTypeConversion, "at_limit_i", {at_limit},
                          P({{"to", ParamValue("int32")}}));

  auto cmd_i = mb.Op(BlockKind::kDataTypeConversion, "cmd_i", {cmd},
                     P({{"to", ParamValue("int32")}}));
  mb.Outport("command", cmd_i);
  mb.Outport("at_limit_out", at_limit_i);
  return mb.Build();
}

}  // namespace

std::unique_ptr<ir::Model> BuildRac() {
  ModelBuilder mb("RAC");
  auto t1 = mb.Inport("T1", DType::kInt16);
  auto t2 = mb.Inport("T2", DType::kInt16);
  auto t3 = mb.Inport("T3", DType::kInt16);
  auto t4 = mb.Inport("T4", DType::kInt16);
  auto go = mb.Inport("Go", DType::kInt8);
  auto estop = mb.Inport("EStop", DType::kInt8);

  auto going = mb.Op(BlockKind::kCompareToZero, "going", {go}, P({{"op", ParamValue("ne")}}));
  auto stopped = mb.Op(BlockKind::kCompareToZero, "stopped", {estop},
                       P({{"op", ParamValue("ne")}}));
  auto run_ok = mb.And({going, mb.Not(stopped, "not_stop")}, "run_ok");

  // Four joints with different travel ranges.
  struct JointSpec {
    PortRef target;
    double lo, hi;
  };
  const JointSpec specs[] = {
      {t1, -1800.0, 1800.0}, {t2, -900.0, 900.0}, {t3, -1350.0, 1350.0}, {t4, -450.0, 450.0}};
  std::vector<PortRef> commands;
  std::vector<PortRef> limits;
  for (int k = 0; k < 4; ++k) {
    std::vector<std::unique_ptr<ir::Model>> body;
    body.push_back(BuildJoint(k + 1, specs[k].lo, specs[k].hi));
    const auto joint = mb.AddCompound(BlockKind::kSubsystem, "servo" + std::to_string(k + 1),
                                      {specs[k].target, run_ok}, std::move(body));
    commands.push_back(ModelBuilder::Out(joint, 0));
    limits.push_back(ModelBuilder::Out(joint, 1));
  }

  // Any-joint-at-limit and total commanded effort.
  auto lim12 = mb.Or({limits[0], limits[1]}, "lim12");
  auto lim34 = mb.Or({limits[2], limits[3]}, "lim34");
  auto any_limit = mb.Or({lim12, lim34}, "any_limit");
  auto effort12 = mb.Sum(mb.Op(BlockKind::kAbs, "a1", {commands[0]}),
                         mb.Op(BlockKind::kAbs, "a2", {commands[1]}), "effort12");
  auto effort34 = mb.Sum(mb.Op(BlockKind::kAbs, "a3", {commands[2]}),
                         mb.Op(BlockKind::kAbs, "a4", {commands[3]}), "effort34");
  auto effort = mb.Sum(effort12, effort34, "effort");
  auto overload = mb.Op(BlockKind::kCompareToConstant, "overload", {effort},
                        P({{"op", ParamValue("gt")}, {"value", ParamValue(150.0)}}));

  // Supervisor chart.
  ChartDef chart;
  chart.inputs = {"go", "estop", "limit", "ovl", "effort"};
  chart.outputs = {ChartOutput{"mode", DType::kInt32, 0.0}};
  chart.vars = {ChartVar{"settle", 0.0}, ChartVar{"trips", 0.0}};
  chart.states = {
      ChartState{"Init", "mode = 0;", "", ""},
      ChartState{"Homing", "mode = 1;", "settle = settle + 1;", ""},
      ChartState{"Ready", "mode = 2;", "", ""},
      ChartState{"Moving", "mode = 3;", "if (effort < 5) { settle = settle + 1; } else { settle "
                                        "= 0; }",
                 ""},
      ChartState{"Holding", "mode = 4;", "", ""},
      ChartState{"EStopped", "mode = 5; trips = trips + 1;", "", ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "go != 0 && estop == 0", "settle = 0;"},
      ChartTransition{1, 2, "settle >= 3", "settle = 0;"},
      ChartTransition{2, 3, "go != 0 && limit == 0", "settle = 0;"},
      ChartTransition{3, 4, "settle >= 4", ""},
      ChartTransition{3, 2, "go == 0", ""},
      ChartTransition{4, 3, "go != 0 && effort > 10", "settle = 0;"},
      ChartTransition{4, 2, "go == 0", ""},
      ChartTransition{0, 5, "estop != 0", ""},
      ChartTransition{1, 5, "estop != 0", ""},
      ChartTransition{2, 5, "estop != 0 || ovl != 0", ""},
      ChartTransition{3, 5, "estop != 0 || ovl != 0 || limit != 0 && effort > 120", ""},
      ChartTransition{4, 5, "estop != 0", ""},
      ChartTransition{5, 0, "estop == 0 && go == 0 && trips < 5", ""},
  };
  chart.initial_state = 0;
  const auto fsm = mb.AddChart("supervisor", {going, stopped, any_limit, overload, effort}, chart);
  auto smode = ModelBuilder::Out(fsm, 0);

  // Packed output.
  auto packed = mb.Op(
      BlockKind::kExprFunc, "pack", {smode, effort, commands[0], any_limit},
      P({{"in", ParamValue(4)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("m e c1 al")},
         {"body", ParamValue("y1 = m * 1000000 + min(e, 999) * 1000 + abs(c1); if (al != 0) { y1 "
                             "= y1 + 500; }")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("Cmd", packed);
  return mb.Build();
}

}  // namespace cftcg::bench_models
