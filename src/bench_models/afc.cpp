// AFC — engine air-fuel control system.
//
// Inports: Throttle:double (0..100 %), Rpm:int32, O2:double (sensor volts),
// Mode:int8 (0 off, 1 open loop, 2 closed loop). Outport: FuelCmd:double.
//
// Classic structure: speed-density base fuel from lookup tables, a limited
// integrator for closed-loop trim, sensor-fault detection forcing open
// loop, dead zone around stoichiometric error, rate-limited and saturated
// final command.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

}  // namespace

std::unique_ptr<ir::Model> BuildAfc() {
  ModelBuilder mb("AFC");
  auto throttle = mb.Inport("Throttle", DType::kDouble);
  auto rpm = mb.Inport("Rpm", DType::kInt32);
  auto o2 = mb.Inport("O2", DType::kDouble);
  auto mode = mb.Inport("Mode", DType::kInt8);

  auto thr_sat = mb.Saturation(throttle, 0.0, 100.0, "thr_sat");
  auto rpm_sat = mb.Saturation(rpm, 0, 8000, "rpm_sat");
  auto rpm_f = mb.Op(BlockKind::kDataTypeConversion, "rpm_f", {rpm_sat},
                     P({{"to", ParamValue("double")}}));

  // Base fuel: rpm volumetric-efficiency table x throttle airflow table.
  auto ve = mb.Op(BlockKind::kLookup1D, "ve_table", {rpm_f},
                  P({{"breakpoints", ParamValue(std::vector<double>{0, 1000, 2500, 4000, 6000,
                                                                    8000})},
                     {"table", ParamValue(std::vector<double>{0.2, 0.55, 0.8, 0.95, 0.85, 0.7})}}));
  auto airflow = mb.Op(BlockKind::kLookup1D, "air_table", {thr_sat},
                       P({{"breakpoints", ParamValue(std::vector<double>{0, 10, 30, 60, 100})},
                          {"table", ParamValue(std::vector<double>{1, 4, 12, 28, 40})}}));
  auto base = mb.Mul(ve, airflow, "base_fuel");

  // Sensor fault detection: O2 outside [0.05, 0.95] or stalled engine.
  auto o2_low = mb.Op(BlockKind::kCompareToConstant, "o2_low", {o2},
                      P({{"op", ParamValue("lt")}, {"value", ParamValue(0.05)}}));
  auto o2_high = mb.Op(BlockKind::kCompareToConstant, "o2_high", {o2},
                       P({{"op", ParamValue("gt")}, {"value", ParamValue(0.95)}}));
  auto stalled = mb.Op(BlockKind::kCompareToConstant, "stalled", {rpm_sat},
                       P({{"op", ParamValue("lt")}, {"value", ParamValue(400.0)}}));
  auto sensor_fault = mb.Or({o2_low, o2_high, stalled}, "sensor_fault");

  // Closed-loop request: Mode==2 and sensor healthy.
  auto closed_req = mb.Op(BlockKind::kCompareToConstant, "closed_req", {mode},
                          P({{"op", ParamValue("eq")}, {"value", ParamValue(2.0)}}));
  auto healthy = mb.Not(sensor_fault, "healthy");
  auto closed_loop = mb.And({closed_req, healthy}, "closed_loop");

  // Stoichiometric error with dead zone, trimmed by a limited integrator.
  auto err = mb.Op(BlockKind::kBias, "o2_err", {o2}, P({{"bias", ParamValue(-0.45)}}));
  auto dz = mb.Op(BlockKind::kDeadZone, "err_dz", {err},
                  P({{"start", ParamValue(-0.05)}, {"end", ParamValue(0.05)}}));
  auto gated_err = mb.Switch(dz, closed_loop, mb.Constant(0.0), 0.5, "gated_err");
  auto trim = mb.Op(BlockKind::kDiscreteIntegrator, "trim", {gated_err},
                    P({{"gain", ParamValue(0.5)},
                       {"lower", ParamValue(-0.3)},
                       {"upper", ParamValue(0.3)}}));

  // Enrichment on heavy throttle (open-loop power mode).
  auto heavy = mb.Op(BlockKind::kCompareToConstant, "heavy", {thr_sat},
                     P({{"op", ParamValue("gt")}, {"value", ParamValue(85.0)}}));
  auto enrich = mb.Switch(mb.Constant(1.15), heavy, mb.Constant(1.0), 0.5, "enrich");

  // fuel = base * (1 + trim) * enrich, unless Mode==0 (engine off).
  auto one_plus = mb.Op(BlockKind::kBias, "one_plus_trim", {trim}, P({{"bias", ParamValue(1.0)}}));
  auto fuel_cl = mb.Mul(base, one_plus, "fuel_cl");
  auto fuel_rich = mb.Mul(fuel_cl, enrich, "fuel_rich");
  auto off = mb.Op(BlockKind::kCompareToConstant, "mode_off", {mode},
                   P({{"op", ParamValue("eq")}, {"value", ParamValue(0.0)}}));
  auto fuel_sel = mb.Switch(mb.Constant(0.0), off, fuel_rich, 0.5, "fuel_sel");

  // Actuator conditioning: slew limit then clamp.
  auto slewed = mb.Op(BlockKind::kRateLimiter, "fuel_slew", {fuel_sel},
                      P({{"rising", ParamValue(3.0)}, {"falling", ParamValue(-5.0)}}));
  auto fuel_cmd = mb.Saturation(slewed, 0.0, 45.0, "fuel_clamp");

  // Lean-misfire protection: if commanded fuel very low at high rpm, bump
  // to idle minimum.
  auto lean = mb.Op(BlockKind::kCompareToConstant, "lean", {fuel_cmd},
                    P({{"op", ParamValue("lt")}, {"value", ParamValue(0.8)}}));
  auto spinning = mb.Op(BlockKind::kCompareToConstant, "spinning", {rpm_sat},
                        P({{"op", ParamValue("gt")}, {"value", ParamValue(1200.0)}}));
  auto running = mb.Not(off, "running");
  auto misfire_risk = mb.And({lean, spinning, running}, "misfire_risk");
  auto final_fuel = mb.Switch(mb.Constant(0.9), misfire_risk, fuel_cmd, 0.5, "final_fuel");

  mb.Outport("FuelCmd", final_fuel);
  return mb.Build();
}

}  // namespace cftcg::bench_models
