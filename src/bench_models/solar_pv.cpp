// SolarPV — solar PV panel energy output control (the paper's Figure 1/3
// running example).
//
// Inports (9 bytes per iteration, exactly the Figure 3 driver layout):
//   Enable  : int8   — global enable
//   Power   : int32  — measured panel output power [W]
//   PanelID : int32  — which panel the sample belongs to (1..4)
// Outport:
//   Ret     : int32  — packed controller status
//
// Each panel has its own charge-state machine (Idle/Charging/Full/Fault)
// that only advances when its PanelID is addressed, so covering deep states
// needs *sequences* of correlated tuples — the stateful difficulty the
// paper builds its case on. A top-level storage chart picks the energy
// storage mode from smoothed total power.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;
using ir::PortRef;

namespace {

/// One panel's charge controller: inports (power, enabled), outport status.
std::unique_ptr<ir::Model> BuildPanelController(int panel_index) {
  ModelBuilder mb("panel" + std::to_string(panel_index));
  auto power = mb.Inport("power", DType::kInt32);
  auto enabled = mb.Inport("enabled", DType::kBool);

  // Condition the raw power sample.
  auto p_sat = mb.Saturation(power, 0, 5000, "p_sat");
  auto p_hi = mb.Op(BlockKind::kCompareToConstant, "p_overload", {p_sat}, [] {
    ParamMap p;
    p.Set("op", ParamValue("gt"));
    p.Set("value", ParamValue(4500.0));
    return p;
  }());
  auto p_live = mb.Op(BlockKind::kCompareToConstant, "p_live", {p_sat}, [] {
    ParamMap p;
    p.Set("op", ParamValue("gt"));
    p.Set("value", ParamValue(100.0));
    return p;
  }());
  auto can_charge = mb.And({enabled, p_live}, "can_charge");
  auto fault_now = mb.And({enabled, p_hi}, "fault_now");

  ChartDef chart;
  chart.inputs = {"p", "go", "overload"};
  chart.outputs = {ChartOutput{"mode", DType::kInt32, 0.0},
                   ChartOutput{"level", DType::kDouble, 0.0}};
  chart.vars = {ChartVar{"charge", 0.0}, ChartVar{"faults", 0.0}};
  chart.states = {
      ChartState{"Idle", "mode = 0;", "", ""},
      ChartState{"Charging", "mode = 1;",
                 "charge = charge + p / 100; level = charge;", ""},
      ChartState{"Full", "mode = 2; level = charge;", "", ""},
      ChartState{"Fault", "mode = 3; faults = faults + 1;", "", ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "go != 0", ""},                       // Idle -> Charging
      ChartTransition{1, 3, "overload != 0", ""},                 // Charging -> Fault
      ChartTransition{1, 2, "charge >= 1000", ""},                // Charging -> Full
      ChartTransition{1, 0, "go == 0", ""},                       // Charging -> Idle
      ChartTransition{2, 0, "p < 50", "charge = 0; level = 0;"},  // Full -> Idle (drained)
      ChartTransition{3, 0, "go == 0 && faults < 3", ""},         // Fault -> Idle (recover)
  };
  chart.initial_state = 0;

  const auto chart_id = mb.AddChart("charge_fsm", {p_sat, can_charge, fault_now}, chart);

  // status = mode * 1000 + min(level, 999)
  auto level_cap = mb.Saturation(ModelBuilder::Out(chart_id, 1), 0, 999, "level_cap");
  auto mode_scaled = mb.Gain(ModelBuilder::Out(chart_id, 0), 1000.0, "mode_scaled");
  auto status = mb.Sum(mode_scaled, level_cap, "status");
  auto status_int = mb.Op(BlockKind::kDataTypeConversion, "status_i32", {status}, [] {
    ParamMap p;
    p.Set("to", ParamValue("int32"));
    return p;
  }());
  mb.Outport("status_out", status_int);
  return mb.Build();
}

/// Default ActionSwitch case: a panel id out of range reports status -1.
std::unique_ptr<ir::Model> BuildDefaultPanel() {
  ModelBuilder mb("panel_default");
  (void)mb.Inport("power", DType::kInt32);
  (void)mb.Inport("enabled", DType::kBool);
  auto err = mb.ConstantInt(-1, DType::kInt32);
  mb.Outport("status_out", err);
  return mb.Build();
}

}  // namespace

std::unique_ptr<ir::Model> BuildSolarPv() {
  ModelBuilder mb("SolarPV");
  auto enable = mb.Inport("Enable", DType::kInt8);
  auto power = mb.Inport("Power", DType::kInt32);
  auto panel_id = mb.Inport("PanelID", DType::kInt32);

  auto enabled = mb.Op(BlockKind::kCompareToZero, "enabled", {enable}, [] {
    ParamMap p;
    p.Set("op", ParamValue("ne"));
    return p;
  }());

  // Per-panel controllers behind a switch-case action subsystem: only the
  // addressed panel's state machine advances each step.
  std::vector<std::unique_ptr<ir::Model>> panels;
  for (int k = 1; k <= 4; ++k) panels.push_back(BuildPanelController(k));
  panels.push_back(BuildDefaultPanel());
  const auto panel_switch =
      mb.AddCompound(BlockKind::kActionSwitch, "panel_select", {panel_id, power, enabled},
                     std::move(panels));
  auto status = ModelBuilder::Out(panel_switch, 0);

  // Smoothed total power for storage-mode selection.
  auto p_f = mb.Op(BlockKind::kDataTypeConversion, "p_f", {power}, [] {
    ParamMap p;
    p.Set("to", ParamValue("double"));
    return p;
  }());
  auto p_pos = mb.Saturation(p_f, 0.0, 6000.0, "p_pos");
  ParamMap integ;
  integ.Set("gain", ParamValue(0.1));
  integ.Set("lower", ParamValue(0.0));
  integ.Set("upper", ParamValue(10000.0));
  auto smoothed = mb.Op(BlockKind::kDiscreteIntegrator, "avg_power", {p_pos}, std::move(integ));
  auto decay = mb.Gain(smoothed, 0.02, "decay");
  // Feedback: integrator accumulates p - decay (leaky average). Build the
  // subtraction and rewire the integrator input.
  auto leak_in = mb.Sub(p_pos, decay, "leak_in");
  // Replace the integrator input by adding a wire is not possible (single
  // driver), so instead integrate the leak term through a second stage:
  ParamMap integ2;
  integ2.Set("gain", ParamValue(0.05));
  integ2.Set("lower", ParamValue(0.0));
  integ2.Set("upper", ParamValue(8000.0));
  auto bank = mb.Op(BlockKind::kDiscreteIntegrator, "bank_level", {leak_in}, std::move(integ2));

  // Storage mode chart: Standby / Store / Deliver / Protect.
  ChartDef storage;
  storage.inputs = {"avg", "bank", "en"};
  storage.outputs = {ChartOutput{"smode", DType::kInt32, 0.0}};
  storage.vars = {ChartVar{"hold", 0.0}};
  storage.states = {
      ChartState{"Standby", "smode = 0;", "hold = 0;", ""},
      ChartState{"Store", "smode = 1;", "hold = hold + 1;", ""},
      ChartState{"Deliver", "smode = 2;", "hold = hold + 1;", ""},
      ChartState{"Protect", "smode = 3;", "", ""},
  };
  storage.transitions = {
      ChartTransition{0, 1, "en != 0 && avg > 500", ""},
      ChartTransition{1, 2, "bank > 2000 && hold > 5", ""},
      ChartTransition{1, 0, "en == 0 || avg < 100", ""},
      ChartTransition{2, 3, "bank > 7000", ""},
      ChartTransition{2, 1, "bank < 1500", ""},
      ChartTransition{3, 0, "en == 0", ""},
  };
  const auto storage_id = mb.AddChart("storage_fsm", {smoothed, bank, enabled}, storage);
  auto smode = ModelBuilder::Out(storage_id, 0);

  // Uptime counter (counts while enabled) and enable edge detection.
  ParamMap counter;
  counter.Set("limit", ParamValue(static_cast<std::int64_t>(100)));
  auto uptime = mb.Op(BlockKind::kCounterLimited, "uptime", {enabled}, std::move(counter));
  ParamMap edge;
  edge.Set("edge", ParamValue("rising"));
  auto started = mb.Op(BlockKind::kEdgeDetector, "started", {enabled}, std::move(edge));

  // Ret = status + smode * 10000 (+100000 on the start edge).
  auto smode_scaled = mb.Gain(smode, 10000.0, "smode_scaled");
  auto start_bonus = mb.Switch(mb.Constant(100000.0), started, mb.Constant(0.0), 0.5, "start_bonus");
  auto acc = mb.Sum(status, smode_scaled, "acc");
  auto acc2 = mb.Sum(acc, start_bonus, "acc2");
  // Keep the uptime observable so its wrap branch matters.
  auto tick_bit = mb.Op(BlockKind::kCompareToConstant, "tick_hit", {uptime}, [] {
    ParamMap p;
    p.Set("op", ParamValue("ge"));
    p.Set("value", ParamValue(100.0));
    return p;
  }());
  auto tick_bonus = mb.Switch(mb.Constant(7.0), tick_bit, mb.Constant(0.0), 0.5, "tick_bonus");
  auto total = mb.Sum(acc2, tick_bonus, "total");
  auto ret = mb.Op(BlockKind::kDataTypeConversion, "ret_i32", {total}, [] {
    ParamMap p;
    p.Set("to", ParamValue("int32"));
    return p;
  }());
  mb.Outport("Ret", ret);
  return mb.Build();
}

}  // namespace cftcg::bench_models
