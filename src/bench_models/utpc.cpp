// UTPC — underwater thruster power control.
//
// Inports: Depth:int32 (cm), Demand:int32 (total thrust request, N),
// Battery:int16 (deci-volts), Enable:int8. Outport: Power:int32.
//
// Depth-dependent power ceiling (pressure derating lookup), allocation of
// the demand across three thrusters with per-thruster saturation, a
// battery-health chart whose Critical/Recovery states need long discharge
// sequences (the ~917 s deep-coverage event of Figure 7's UTPC panel), and
// an emergency-surface mode.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;
using ir::PortRef;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

/// One thruster: inports (share, ceiling, enabled), outport power.
std::unique_ptr<ir::Model> BuildThruster(int index, double efficiency) {
  ModelBuilder mb("thruster" + std::to_string(index));
  auto share = mb.Inport("share", DType::kDouble);
  auto ceiling = mb.Inport("ceiling", DType::kDouble);
  auto enabled = mb.Inport("enabled", DType::kBool);
  auto limited = mb.Op(BlockKind::kMin, "limited", {share, ceiling});
  auto eff = mb.Gain(limited, efficiency, "eff");
  auto gated = mb.Switch(eff, enabled, mb.Constant(0.0), 0.5, "gated");
  auto slew = mb.Op(BlockKind::kRateLimiter, "slew", {gated},
                    P({{"rising", ParamValue(40.0)}, {"falling", ParamValue(-60.0)}}));
  auto out = mb.Saturation(slew, 0.0, 400.0, "thrust_sat");
  mb.Outport("power", out);
  return mb.Build();
}

}  // namespace

std::unique_ptr<ir::Model> BuildUtpc() {
  ModelBuilder mb("UTPC");
  auto depth = mb.Inport("Depth", DType::kInt32);
  auto demand = mb.Inport("Demand", DType::kInt32);
  auto battery = mb.Inport("Battery", DType::kInt16);
  auto enable = mb.Inport("Enable", DType::kInt8);

  auto enabled = mb.Op(BlockKind::kCompareToZero, "enabled", {enable},
                       P({{"op", ParamValue("ne")}}));
  auto depth_sat = mb.Saturation(depth, 0, 600000, "depth_sat");
  auto depth_m = mb.Gain(mb.Op(BlockKind::kDataTypeConversion, "depth_f", {depth_sat},
                               P({{"to", ParamValue("double")}})),
                         0.01, "depth_m");

  // Pressure derating: deeper -> lower per-thruster ceiling.
  auto ceiling = mb.Op(
      BlockKind::kLookup1D, "pressure_ceiling", {depth_m},
      P({{"breakpoints", ParamValue(std::vector<double>{0, 100, 500, 1500, 3000, 6000})},
         {"table", ParamValue(std::vector<double>{400, 380, 320, 220, 120, 40})}}));

  // Battery voltage conditioning and discharge model: a leaky integrator of
  // commanded power approximates drained charge.
  auto batt_f = mb.Gain(mb.Op(BlockKind::kDataTypeConversion, "batt_f", {battery},
                              P({{"to", ParamValue("double")}})),
                        0.1, "batt_v");
  auto batt_low = mb.Op(BlockKind::kCompareToConstant, "batt_low", {batt_f},
                        P({{"op", ParamValue("lt")}, {"value", ParamValue(44.0)}}));
  auto batt_crit = mb.Op(BlockKind::kCompareToConstant, "batt_crit", {batt_f},
                         P({{"op", ParamValue("lt")}, {"value", ParamValue(40.0)}}));

  // Demand conditioning and 3-way allocation (40/35/25 split).
  auto demand_sat = mb.Saturation(demand, 0, 1200, "demand_sat");
  auto demand_f = mb.Op(BlockKind::kDataTypeConversion, "demand_f", {demand_sat},
                        P({{"to", ParamValue("double")}}));
  const double kSplit[3] = {0.40, 0.35, 0.25};
  const double kEff[3] = {0.95, 0.92, 0.90};
  std::vector<PortRef> thrust;
  for (int k = 0; k < 3; ++k) {
    auto share = mb.Gain(demand_f, kSplit[k], "share" + std::to_string(k + 1));
    std::vector<std::unique_ptr<ir::Model>> body;
    body.push_back(BuildThruster(k + 1, kEff[k]));
    const auto th = mb.AddCompound(BlockKind::kSubsystem, "thr" + std::to_string(k + 1),
                                   {share, ceiling, enabled}, std::move(body));
    thrust.push_back(ModelBuilder::Out(th, 0));
  }
  auto total12 = mb.Sum(thrust[0], thrust[1], "total12");
  auto total = mb.Sum(total12, thrust[2], "total_power");

  // Battery-health chart: Critical needs ~20 heavy-draw iterations, and
  // Recovery needs a long cool-down — the deep UTPC states.
  ChartDef chart;
  chart.inputs = {"low", "crit", "draw", "en"};
  chart.outputs = {ChartOutput{"bmode", DType::kInt32, 0.0},
                   ChartOutput{"budget", DType::kDouble, 1000.0}};
  chart.vars = {ChartVar{"drain", 0.0}, ChartVar{"rest", 0.0}};
  chart.states = {
      ChartState{"Normal", "bmode = 0; budget = 1000;",
                 "if (draw > 600) { drain = drain + 2; } elseif (draw > 300) { drain = drain + 1; "
                 "} else { drain = max(drain - 1, 0); }",
                 ""},
      ChartState{"Low", "bmode = 1; budget = 500;",
                 "if (draw > 300) { drain = drain + 1; }", ""},
      ChartState{"Critical", "bmode = 2; budget = 100;", "rest = rest + 1;", ""},
      ChartState{"Recovery", "bmode = 3;", "budget = min(budget + 20, 800); rest = rest + 1;",
                 ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "low != 0 || drain >= 12", "rest = 0;"},
      ChartTransition{1, 2, "crit != 0 || drain >= 20", "rest = 0;"},
      ChartTransition{1, 0, "low == 0 && drain < 6", ""},
      ChartTransition{2, 3, "rest >= 8 && draw < 100", "rest = 0;"},
      ChartTransition{3, 0, "rest >= 10 && crit == 0", "drain = 0; rest = 0;"},
      ChartTransition{3, 2, "crit != 0", "rest = 0;"},
  };
  chart.initial_state = 0;
  const auto fsm = mb.AddChart("battery_fsm", {batt_low, batt_crit, total, enabled}, chart);
  auto bmode = ModelBuilder::Out(fsm, 0);
  auto budget = ModelBuilder::Out(fsm, 1);

  // Emergency surface: critical battery at depth forces fixed ascent power.
  auto deep = mb.Op(BlockKind::kCompareToConstant, "deep", {depth_m},
                    P({{"op", ParamValue("gt")}, {"value", ParamValue(50.0)}}));
  auto is_crit = mb.Op(BlockKind::kCompareToConstant, "is_crit", {bmode},
                       P({{"op", ParamValue("ge")}, {"value", ParamValue(2.0)}}));
  auto emergency = mb.And({deep, is_crit, enabled}, "emergency");

  // Final power: min(total, budget), overridden in emergency.
  auto budgeted = mb.Op(BlockKind::kMin, "budgeted", {total, budget});
  auto final_power = mb.Switch(mb.Constant(150.0), emergency, budgeted, 0.5, "final_power");
  auto packed = mb.Op(
      BlockKind::kExprFunc, "pack", {bmode, final_power, emergency},
      P({{"in", ParamValue(3)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("m p e")},
         {"body", ParamValue("y1 = m * 10000 + floor(p); if (e != 0) { y1 = y1 + 100000; }")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("Power", packed);
  return mb.Build();
}

}  // namespace cftcg::bench_models
