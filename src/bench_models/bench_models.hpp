// The eight benchmark models of the paper's Table 2, rebuilt from their
// descriptions:
//
//   CPUTask  — AutoSAR CPU task dispatch system (internal task queue whose
//              full state guards deep branches — §4's 37 s vs 44.5 h story)
//   AFC      — engine air-fuel control system
//   TCP      — TCP three-way handshake protocol (full connection FSM)
//   RAC      — robotic arm controller (4 joints + supervisor)
//   EVCS     — electric vehicle charging system
//   TWC      — train wheel speed controller (anti-slip)
//   UTPC     — underwater thruster power control
//   SolarPV  — solar PV panel output control (the paper's running example:
//              inports Enable:int8, Power:int32, PanelID:int32 — Figure 3)
//
// All are industrial-style discrete controllers: charts with internal
// state, conditional subsystems, saturations/dead zones, counters, mixed
// int8/int32/double inports (the width mix that defeats byte-blind
// mutation in Figure 8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/model.hpp"
#include "support/status.hpp"

namespace cftcg::bench_models {

struct BenchModelInfo {
  std::string name;
  std::string functionality;
};

/// The Table 2 roster, in paper order.
const std::vector<BenchModelInfo>& Roster();

/// Builds a benchmark model by name ("CPUTask", ..., "SolarPV").
Result<std::unique_ptr<ir::Model>> Build(const std::string& name);

// Individual builders (used directly by focused tests).
std::unique_ptr<ir::Model> BuildCpuTask();
std::unique_ptr<ir::Model> BuildAfc();
std::unique_ptr<ir::Model> BuildTcp();
std::unique_ptr<ir::Model> BuildRac();
std::unique_ptr<ir::Model> BuildEvcs();
std::unique_ptr<ir::Model> BuildTwc();
std::unique_ptr<ir::Model> BuildUtpc();
std::unique_ptr<ir::Model> BuildSolarPv();

}  // namespace cftcg::bench_models
