// TCP — three-way handshake / connection state machine.
//
// Inports: Syn:int8, Ack:int8, Fin:int8, Rst:int8 (flag bytes), Seq:int32,
// AckNo:int32, Timeout:int8. Outport: State:int32 (packed).
//
// The chart is the full RFC 793 connection FSM (11 states); guards combine
// flag tests with sequence/acknowledgement arithmetic, giving dense
// condition/MCDC structure. A retransmission counter and a packet
// validator (MATLAB-Function-style) surround it.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

}  // namespace

std::unique_ptr<ir::Model> BuildTcp() {
  ModelBuilder mb("TCP");
  auto syn = mb.Inport("Syn", DType::kInt8);
  auto ack = mb.Inport("Ack", DType::kInt8);
  auto fin = mb.Inport("Fin", DType::kInt8);
  auto rst = mb.Inport("Rst", DType::kInt8);
  auto seq = mb.Inport("Seq", DType::kInt32);
  auto ack_no = mb.Inport("AckNo", DType::kInt32);
  auto timeout = mb.Inport("Timeout", DType::kInt8);

  // Packet validator: a MATLAB-Function-style block classifying the
  // segment (0 invalid, 1 syn, 2 synack, 3 ack, 4 fin, 5 rst).
  auto pkt = mb.Op(
      BlockKind::kExprFunc, "classify",
      {syn, ack, fin, rst},
      P({{"in", ParamValue(4)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("s a f r")},
         {"body", ParamValue("if (r != 0) { y1 = 5; } elseif (s != 0 && a != 0) { y1 = 2; } "
                             "elseif (s != 0) { y1 = 1; } elseif (f != 0) { y1 = 4; } elseif "
                             "(a != 0) { y1 = 3; } else { y1 = 0; }")},
         {"out_types", ParamValue("int32")}}));

  ChartDef chart;
  chart.inputs = {"syn", "ack", "fin", "rst", "seq", "ackno", "tmo"};
  chart.outputs = {ChartOutput{"st", DType::kInt32, 0.0},
                   ChartOutput{"events", DType::kInt32, 0.0}};
  chart.vars = {ChartVar{"snd_nxt", 0.0}, ChartVar{"rcv_nxt", 0.0}, ChartVar{"retries", 0.0},
                ChartVar{"tw_ticks", 0.0}};
  // State indices: 0 CLOSED, 1 LISTEN, 2 SYN_SENT, 3 SYN_RCVD,
  // 4 ESTABLISHED, 5 FIN_WAIT_1, 6 FIN_WAIT_2, 7 CLOSE_WAIT, 8 CLOSING,
  // 9 LAST_ACK, 10 TIME_WAIT.
  chart.states = {
      ChartState{"CLOSED", "st = 0;", "", ""},
      ChartState{"LISTEN", "st = 1;", "", ""},
      ChartState{"SYN_SENT", "st = 2;", "", ""},
      ChartState{"SYN_RCVD", "st = 3;", "", ""},
      ChartState{"ESTABLISHED", "st = 4; events = events + 1;",
                 "if (ack != 0 && ackno > snd_nxt) { snd_nxt = ackno; }", ""},
      ChartState{"FIN_WAIT_1", "st = 5;", "", ""},
      ChartState{"FIN_WAIT_2", "st = 6;", "", ""},
      ChartState{"CLOSE_WAIT", "st = 7;", "", ""},
      ChartState{"CLOSING", "st = 8;", "", ""},
      ChartState{"LAST_ACK", "st = 9;", "", ""},
      ChartState{"TIME_WAIT", "st = 10;", "tw_ticks = tw_ticks + 1;", ""},
  };
  chart.transitions = {
      // Passive and active open.
      ChartTransition{0, 1, "syn == 0 && ack == 0 && fin == 0 && rst == 0", "rcv_nxt = 0;"},
      ChartTransition{0, 2, "syn != 0 && ack == 0", "snd_nxt = seq + 1;"},
      // LISTEN: inbound SYN.
      ChartTransition{1, 3, "syn != 0 && ack == 0 && rst == 0", "rcv_nxt = seq + 1;"},
      ChartTransition{1, 0, "rst != 0", ""},
      // SYN_SENT: got SYN+ACK with the right acknowledgement.
      ChartTransition{2, 4, "syn != 0 && ack != 0 && ackno == snd_nxt",
                      "rcv_nxt = seq + 1; retries = 0;"},
      ChartTransition{2, 3, "syn != 0 && ack == 0", "rcv_nxt = seq + 1;"},  // simultaneous open
      ChartTransition{2, 0, "rst != 0 || tmo != 0 && retries >= 3", "retries = 0;"},
      // SYN_RCVD: final ACK of the handshake.
      ChartTransition{3, 4, "ack != 0 && syn == 0 && ackno == rcv_nxt", "retries = 0;"},
      ChartTransition{3, 1, "rst != 0", ""},
      ChartTransition{3, 0, "tmo != 0 && retries >= 5", "retries = 0;"},
      // ESTABLISHED: close paths.
      ChartTransition{4, 5, "fin == 0 && tmo != 0 && retries > 1", ""},  // local close on stall
      ChartTransition{4, 7, "fin != 0 && seq == rcv_nxt", "rcv_nxt = rcv_nxt + 1;"},
      ChartTransition{4, 0, "rst != 0", ""},
      // FIN_WAIT_1.
      ChartTransition{5, 8, "fin != 0 && ack == 0", ""},
      ChartTransition{5, 6, "ack != 0 && fin == 0 && ackno >= snd_nxt", ""},
      ChartTransition{5, 10, "fin != 0 && ack != 0", "tw_ticks = 0;"},
      // FIN_WAIT_2 / CLOSING / CLOSE_WAIT / LAST_ACK.
      ChartTransition{6, 10, "fin != 0", "tw_ticks = 0;"},
      ChartTransition{8, 10, "ack != 0", "tw_ticks = 0;"},
      ChartTransition{7, 9, "tmo != 0", ""},
      ChartTransition{9, 0, "ack != 0 && ackno >= snd_nxt", ""},
      // TIME_WAIT: 2MSL expiry needs repeated timeout ticks (deep state).
      ChartTransition{10, 0, "tw_ticks >= 4", "tw_ticks = 0;"},
  };
  chart.initial_state = 0;
  const auto fsm =
      mb.AddChart("connection", {syn, ack, fin, rst, seq, ack_no, timeout}, chart);
  auto st = ModelBuilder::Out(fsm, 0);
  auto events = ModelBuilder::Out(fsm, 1);

  // Retransmission pressure: count timeouts while not established.
  auto is_established = mb.Op(BlockKind::kCompareToConstant, "is_est", {st},
                              P({{"op", ParamValue("eq")}, {"value", ParamValue(4.0)}}));
  auto timing_out = mb.Op(BlockKind::kCompareToZero, "timing_out", {timeout},
                          P({{"op", ParamValue("ne")}}));
  auto not_est = mb.Not(is_established, "not_est");
  auto rtx_pressure = mb.And({timing_out, not_est}, "rtx_pressure");
  auto rtx = mb.Op(BlockKind::kCounterLimited, "rtx_count", {rtx_pressure},
                   P({{"limit", ParamValue(static_cast<std::int64_t>(6))}}));
  auto gave_up = mb.Op(BlockKind::kCompareToConstant, "gave_up", {rtx},
                       P({{"op", ParamValue("ge")}, {"value", ParamValue(6.0)}}));

  // Window bookkeeping: |Seq - AckNo| clipped, just to exercise arithmetic.
  auto delta = mb.Sub(seq, ack_no, "delta");
  auto win = mb.Op(BlockKind::kAbs, "win_abs", {delta});
  auto win_cap = mb.Saturation(win, 0, 65535, "win_cap");
  auto win_busy = mb.Op(BlockKind::kCompareToConstant, "win_busy", {win_cap},
                        P({{"op", ParamValue("gt")}, {"value", ParamValue(32768.0)}}));

  // Keepalive machinery: while established and quiet (no flags), count
  // toward a probe; an ACK resets the silence run via edge detection.
  auto any_flag = mb.Or({mb.Op(BlockKind::kCompareToZero, "syn_b", {syn},
                               P({{"op", ParamValue("ne")}})),
                         mb.Op(BlockKind::kCompareToZero, "ack_b", {ack},
                               P({{"op", ParamValue("ne")}})),
                         mb.Op(BlockKind::kCompareToZero, "fin_b", {fin},
                               P({{"op", ParamValue("ne")}}))},
                        "any_flag");
  auto quiet = mb.Not(any_flag, "quiet");
  auto idle_est = mb.And({is_established, quiet}, "idle_est");
  auto ka_timer = mb.Op(BlockKind::kCounterLimited, "ka_timer", {idle_est},
                        P({{"limit", ParamValue(static_cast<std::int64_t>(10))}}));
  auto ka_probe = mb.Op(BlockKind::kCompareToConstant, "ka_probe", {ka_timer},
                        P({{"op", ParamValue("ge")}, {"value", ParamValue(10.0)}}));
  ParamMap edge;
  edge.Set("edge", ParamValue("rising"));
  auto est_edge = mb.Op(BlockKind::kEdgeDetector, "est_edge", {is_established}, std::move(edge));
  auto sessions = mb.Op(BlockKind::kCounterLimited, "sessions", {est_edge},
                        P({{"limit", ParamValue(static_cast<std::int64_t>(1000))}}));

  // Packed status.
  auto status = mb.Op(
      BlockKind::kExprFunc, "status_pack",
      {st, events, pkt, gave_up, win_busy, ka_probe, sessions},
      P({{"in", ParamValue(7)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("st ev pk gu wb ka ss")},
         {"body",
          ParamValue("y1 = st * 1000 + pk * 100 + min(ev, 99); if (gu != 0) { y1 = y1 + 100000; } "
                     "if (wb != 0) { y1 = y1 + 200000; } if (ka != 0) { y1 = y1 + 400000; } "
                     "y1 = y1 + min(ss, 9) * 1000000;")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("State", status);
  return mb.Build();
}

}  // namespace cftcg::bench_models
