// TWC — train wheel speed controller (wheel-slide / wheel-slip protection).
//
// Inports: WheelSpeed:int32 (mm/s), TrainSpeed:int32 (mm/s), BrakeDemand:int8
// (0..100 %), TractionDemand:int8 (0..100 %). Outport: Cmd:int32.
//
// Slip/slide detection from the wheel-vs-train speed difference, an
// anti-slip chart whose Locked state needs sustained slide (deep state),
// rate-limited brake/traction effort, and jerk protection.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

}  // namespace

std::unique_ptr<ir::Model> BuildTwc() {
  ModelBuilder mb("TWC");
  auto wheel = mb.Inport("WheelSpeed", DType::kInt32);
  auto train = mb.Inport("TrainSpeed", DType::kInt32);
  auto brake = mb.Inport("BrakeDemand", DType::kInt8);
  auto traction = mb.Inport("TractionDemand", DType::kInt8);

  auto wheel_sat = mb.Saturation(wheel, 0, 90000, "wheel_sat");
  auto train_sat = mb.Saturation(train, 0, 90000, "train_sat");
  auto brake_sat = mb.Saturation(brake, 0, 100, "brake_sat");
  auto traction_sat = mb.Saturation(traction, 0, 100, "traction_sat");

  // Creep = wheel - train: negative when sliding under braking, positive
  // when slipping under traction.
  auto creep = mb.Sub(wheel_sat, train_sat, "creep");
  auto slide = mb.Op(BlockKind::kCompareToConstant, "slide", {creep},
                     P({{"op", ParamValue("lt")}, {"value", ParamValue(-1500.0)}}));
  auto slip = mb.Op(BlockKind::kCompareToConstant, "slip", {creep},
                    P({{"op", ParamValue("gt")}, {"value", ParamValue(1500.0)}}));
  auto braking = mb.Op(BlockKind::kCompareToConstant, "braking", {brake_sat},
                       P({{"op", ParamValue("gt")}, {"value", ParamValue(5.0)}}));
  auto pulling = mb.Op(BlockKind::kCompareToConstant, "pulling", {traction_sat},
                       P({{"op", ParamValue("gt")}, {"value", ParamValue(5.0)}}));
  auto slide_active = mb.And({slide, braking}, "slide_active");
  auto slip_active = mb.And({slip, pulling}, "slip_active");
  auto moving = mb.Op(BlockKind::kCompareToConstant, "moving", {train_sat},
                      P({{"op", ParamValue("gt")}, {"value", ParamValue(500.0)}}));

  // Sustained-slide counter: the Locked state only becomes reachable after
  // five consecutive sliding iterations.
  auto slide_run = mb.Op(BlockKind::kCounterLimited, "slide_run", {slide_active},
                         P({{"limit", ParamValue(static_cast<std::int64_t>(5))}}));

  ChartDef chart;
  chart.inputs = {"slide", "slip", "run", "moving", "creep"};
  chart.outputs = {ChartOutput{"wsp", DType::kInt32, 0.0},
                   ChartOutput{"relief", DType::kDouble, 0.0}};
  chart.vars = {ChartVar{"recover", 0.0}};
  chart.states = {
      ChartState{"Normal", "wsp = 0; relief = 0;", "", ""},
      ChartState{"SlipDetected", "wsp = 1; relief = 0.3;", "", ""},
      ChartState{"Correcting", "wsp = 2;", "relief = min(relief + 0.1, 0.8);", ""},
      ChartState{"Locked", "wsp = 3; relief = 1;", "recover = recover + 1;", ""},
      ChartState{"Recovery", "wsp = 4;", "relief = max(relief - 0.05, 0);", ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "(slide != 0 || slip != 0) && moving != 0", "recover = 0;"},
      ChartTransition{1, 2, "slide != 0 || slip != 0", ""},
      ChartTransition{1, 0, "slide == 0 && slip == 0", ""},
      ChartTransition{2, 3, "run >= 5 && slide != 0", "recover = 0;"},
      ChartTransition{2, 4, "slide == 0 && slip == 0", ""},
      ChartTransition{3, 4, "recover >= 6 && slide == 0", ""},
      ChartTransition{4, 0, "relief <= 0.05", "relief = 0;"},
      ChartTransition{4, 2, "slide != 0 || slip != 0", ""},
  };
  chart.initial_state = 0;
  const auto fsm =
      mb.AddChart("wsp_fsm", {slide_active, slip_active, slide_run, moving, creep}, chart);
  auto wsp = ModelBuilder::Out(fsm, 0);
  auto relief = ModelBuilder::Out(fsm, 1);

  // Relieved brake effort: demand scaled down by the chart's relief signal,
  // then jerk-limited.
  auto brake_f = mb.Op(BlockKind::kDataTypeConversion, "brake_f", {brake_sat},
                       P({{"to", ParamValue("double")}}));
  auto keep = mb.Op(BlockKind::kExprFunc, "relief_inv", {relief},
                    P({{"in", ParamValue(1)},
                       {"out", ParamValue(1)},
                       {"body", ParamValue("y1 = 1 - u1; if (y1 < 0) { y1 = 0; }")}}));
  auto brake_eff = mb.Mul(brake_f, keep, "brake_eff");
  auto brake_jerk = mb.Op(BlockKind::kRateLimiter, "brake_jerk", {brake_eff},
                          P({{"rising", ParamValue(8.0)}, {"falling", ParamValue(-20.0)}}));

  // Traction is cut entirely while correcting a slip.
  auto correcting = mb.Op(BlockKind::kCompareToConstant, "correcting", {wsp},
                          P({{"op", ParamValue("ge")}, {"value", ParamValue(2.0)}}));
  auto traction_f = mb.Op(BlockKind::kDataTypeConversion, "traction_f", {traction_sat},
                          P({{"to", ParamValue("double")}}));
  auto traction_eff = mb.Switch(mb.Constant(0.0), correcting, traction_f, 0.5, "traction_eff");
  auto traction_jerk = mb.Op(BlockKind::kRateLimiter, "traction_jerk", {traction_eff},
                             P({{"rising", ParamValue(5.0)}, {"falling", ParamValue(-30.0)}}));

  // Conflict check: simultaneous heavy brake + traction is a fault.
  auto conflict = mb.And({braking, pulling}, "conflict");
  auto stopped_wheel = mb.Op(BlockKind::kCompareToConstant, "stopped_wheel", {wheel_sat},
                             P({{"op", ParamValue("lt")}, {"value", ParamValue(100.0)}}));
  auto flat_risk = mb.And({stopped_wheel, moving, braking}, "flat_risk");

  auto cmd = mb.Op(
      BlockKind::kExprFunc, "pack", {wsp, brake_jerk, traction_jerk, conflict, flat_risk},
      P({{"in", ParamValue(5)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("w b t c fr")},
         {"body",
          ParamValue("y1 = w * 100000 + floor(b) * 1000 + floor(t) * 10; if (c != 0) { y1 = y1 + "
                     "1; } if (fr != 0) { y1 = y1 + 2; }")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("Cmd", cmd);
  return mb.Build();
}

}  // namespace cftcg::bench_models
