// EVCS — electric vehicle charging system.
//
// Inports: Plugged:int8, Auth:int8, CurrentReq:int32 (deciamps),
// Temp:int16 (deci-degC). Outport: Out:int32 (packed).
//
// Session chart (Idle/Connected/Authorizing/Charging/Balancing/Complete/
// Fault), temperature-derating lookup, contactor relay with hysteresis,
// authorization timeout counter.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

}  // namespace

std::unique_ptr<ir::Model> BuildEvcs() {
  ModelBuilder mb("EVCS");
  auto plugged = mb.Inport("Plugged", DType::kInt8);
  auto auth = mb.Inport("Auth", DType::kInt8);
  auto current_req = mb.Inport("CurrentReq", DType::kInt32);
  auto temp = mb.Inport("Temp", DType::kInt16);

  auto is_plugged = mb.Op(BlockKind::kCompareToZero, "is_plugged", {plugged},
                          P({{"op", ParamValue("ne")}}));
  auto is_auth = mb.Op(BlockKind::kCompareToZero, "is_auth", {auth},
                       P({{"op", ParamValue("ne")}}));

  // Temperature conditioning and derating.
  auto temp_f = mb.Op(BlockKind::kDataTypeConversion, "temp_f", {temp},
                      P({{"to", ParamValue("double")}}));
  auto temp_c = mb.Gain(temp_f, 0.1, "temp_c");
  auto derate = mb.Op(
      BlockKind::kLookup1D, "derate", {temp_c},
      P({{"breakpoints", ParamValue(std::vector<double>{-20, 0, 25, 40, 55, 70})},
         {"table", ParamValue(std::vector<double>{0.4, 0.8, 1.0, 1.0, 0.5, 0.0})}}));
  auto overheat = mb.Op(BlockKind::kCompareToConstant, "overheat", {temp_c},
                        P({{"op", ParamValue("gt")}, {"value", ParamValue(65.0)}}));
  auto frozen = mb.Op(BlockKind::kCompareToConstant, "frozen", {temp_c},
                      P({{"op", ParamValue("lt")}, {"value", ParamValue(-25.0)}}));
  auto temp_fault = mb.Or({overheat, frozen}, "temp_fault");

  // Requested current conditioning.
  auto req_sat = mb.Saturation(current_req, 0, 3200, "req_sat");
  auto req_f = mb.Op(BlockKind::kDataTypeConversion, "req_f", {req_sat},
                     P({{"to", ParamValue("double")}}));
  auto granted = mb.Mul(req_f, derate, "granted");
  auto granted_slew = mb.Op(BlockKind::kRateLimiter, "granted_slew", {granted},
                            P({{"rising", ParamValue(100.0)}, {"falling", ParamValue(-400.0)}}));

  // Authorization timeout: counts while plugged but unauthorized.
  auto not_auth = mb.Not(is_auth, "not_auth");
  auto waiting = mb.And({is_plugged, not_auth}, "waiting");
  auto auth_timer = mb.Op(BlockKind::kCounterLimited, "auth_timer", {waiting},
                          P({{"limit", ParamValue(static_cast<std::int64_t>(20))}}));
  auto auth_expired = mb.Op(BlockKind::kCompareToConstant, "auth_expired", {auth_timer},
                            P({{"op", ParamValue("ge")}, {"value", ParamValue(20.0)}}));

  // Session chart. Energy accumulates only in Charging; Balancing trickles.
  ChartDef chart;
  chart.inputs = {"plugged", "authed", "amps", "tfault", "expired"};
  chart.outputs = {ChartOutput{"mode", DType::kInt32, 0.0},
                   ChartOutput{"energy", DType::kDouble, 0.0}};
  chart.vars = {ChartVar{"ticks", 0.0}};
  chart.states = {
      ChartState{"Idle", "mode = 0; energy = 0;", "", ""},
      ChartState{"Connected", "mode = 1;", "ticks = ticks + 1;", ""},
      ChartState{"Authorizing", "mode = 2;", "", ""},
      ChartState{"Charging", "mode = 3;", "energy = energy + amps / 100;", ""},
      ChartState{"Balancing", "mode = 4;", "energy = energy + amps / 1000;", ""},
      ChartState{"Complete", "mode = 5;", "", ""},
      ChartState{"Fault", "mode = 6;", "", ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "plugged != 0", "ticks = 0;"},
      ChartTransition{1, 2, "authed == 0 && ticks >= 1", ""},
      ChartTransition{1, 3, "authed != 0 && amps > 50 && tfault == 0", ""},
      ChartTransition{1, 0, "plugged == 0", ""},
      ChartTransition{2, 3, "authed != 0 && tfault == 0", ""},
      ChartTransition{2, 6, "expired != 0", ""},
      ChartTransition{2, 0, "plugged == 0", ""},
      ChartTransition{3, 4, "energy >= 800", ""},
      ChartTransition{3, 6, "tfault != 0", ""},
      ChartTransition{3, 0, "plugged == 0", ""},
      ChartTransition{4, 5, "energy >= 1000", ""},
      ChartTransition{4, 6, "tfault != 0", ""},
      ChartTransition{5, 0, "plugged == 0", ""},
      ChartTransition{6, 0, "plugged == 0", ""},
  };
  chart.initial_state = 0;
  const auto fsm = mb.AddChart(
      "session", {is_plugged, is_auth, granted_slew, temp_fault, auth_expired}, chart);
  auto mode = ModelBuilder::Out(fsm, 0);
  auto energy = ModelBuilder::Out(fsm, 1);

  // Contactor: closes while charging/balancing; relay adds hysteresis on
  // the granted current.
  auto charging = mb.Op(BlockKind::kCompareToConstant, "mode_chg", {mode},
                        P({{"op", ParamValue("eq")}, {"value", ParamValue(3.0)}}));
  auto balancing = mb.Op(BlockKind::kCompareToConstant, "mode_bal", {mode},
                         P({{"op", ParamValue("eq")}, {"value", ParamValue(4.0)}}));
  auto closed = mb.Or({charging, balancing}, "contactor_cmd");
  auto relay = mb.Op(BlockKind::kRelay, "precharge", {granted_slew},
                     P({{"on_point", ParamValue(200.0)},
                        {"off_point", ParamValue(50.0)},
                        {"on_value", ParamValue(1.0)},
                        {"off_value", ParamValue(0.0)}}));

  auto out = mb.Op(
      BlockKind::kExprFunc, "pack", {mode, energy, closed, relay},
      P({{"in", ParamValue(4)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("m e c r")},
         {"body", ParamValue("y1 = m * 100000 + min(e, 9999) * 10; if (c != 0) { y1 = y1 + 1; } "
                             "if (r != 0) { y1 = y1 + 2; }")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("Out", out);
  return mb.Build();
}

}  // namespace cftcg::bench_models
