// CPUTask — AutoSAR CPU task dispatch system.
//
// Inports: TaskID:uint8, Prio:int32, Cmd:int8 (0 idle, 1 enqueue,
// 2 dispatch, 3 flush), Tick:int8. Outport: Status:int32.
//
// The dispatcher chart keeps an internal ready-queue fill counter; the
// Overflow state is reachable only after eight consecutive enqueues without
// a dispatch — the "task queue is fulfilled" condition §4 of the paper
// calls "very stringent" for SLDV (state-space depth) and SimCoTest
// (simulation speed). Around the chart: priority banding, per-band budget
// subsystems, and a watchdog.
#include "bench_models/bench_models.hpp"
#include "ir/builder.hpp"

namespace cftcg::bench_models {

using ir::BlockKind;
using ir::ChartDef;
using ir::ChartOutput;
using ir::ChartState;
using ir::ChartTransition;
using ir::ChartVar;
using ir::DType;
using ir::ModelBuilder;
using ir::ParamMap;
using ir::ParamValue;
using ir::PortRef;

namespace {

ParamMap P(std::initializer_list<std::pair<const char*, ParamValue>> kv) {
  ParamMap p;
  for (const auto& [k, v] : kv) p.Set(k, v);
  return p;
}

/// Per-priority-band budget accounting: inports (active, prio), outport
/// budget score.
std::unique_ptr<ir::Model> BuildBandBudget(int band, double weight) {
  ModelBuilder mb("band" + std::to_string(band));
  auto active = mb.Inport("active", DType::kBool);
  auto prio = mb.Inport("prio", DType::kInt32);
  auto scaled = mb.Gain(prio, weight, "scaled");
  auto capped = mb.Saturation(scaled, 0, 64 * band, "capped");
  auto bonus = mb.Switch(mb.Constant(static_cast<double>(8 * band)), active,
                         mb.Constant(0.0), 0.5, "bonus");
  auto score = mb.Sum(capped, bonus, "score");
  mb.Outport("budget", score);
  return mb.Build();
}

}  // namespace

std::unique_ptr<ir::Model> BuildCpuTask() {
  ModelBuilder mb("CPUTask");
  auto task_id = mb.Inport("TaskID", DType::kUInt8);
  auto prio = mb.Inport("Prio", DType::kInt32);
  auto cmd = mb.Inport("Cmd", DType::kInt8);
  auto tick = mb.Inport("Tick", DType::kInt8);

  auto prio_sat = mb.Saturation(prio, 0, 255, "prio_sat");
  auto ticking = mb.Op(BlockKind::kCompareToZero, "ticking", {tick},
                       P({{"op", ParamValue("ne")}}));
  auto is_enqueue = mb.Op(BlockKind::kCompareToConstant, "is_enqueue", {cmd},
                          P({{"op", ParamValue("eq")}, {"value", ParamValue(1.0)}}));
  auto is_dispatch = mb.Op(BlockKind::kCompareToConstant, "is_dispatch", {cmd},
                           P({{"op", ParamValue("eq")}, {"value", ParamValue(2.0)}}));
  auto hi_prio = mb.Op(BlockKind::kCompareToConstant, "hi_prio", {prio_sat},
                       P({{"op", ParamValue("ge")}, {"value", ParamValue(200.0)}}));
  auto urgent = mb.And({is_enqueue, hi_prio}, "urgent");
  auto busy_cmd = mb.Or({is_enqueue, is_dispatch}, "busy_cmd");

  // The dispatcher state machine with the internal ready queue.
  ChartDef chart;
  chart.inputs = {"cmd", "prio", "tick", "tid"};
  chart.outputs = {ChartOutput{"state_code", DType::kInt32, 0.0},
                   ChartOutput{"queue_len", DType::kInt32, 0.0},
                   ChartOutput{"running_prio", DType::kInt32, 0.0}};
  chart.vars = {ChartVar{"count", 0.0}, ChartVar{"cur", 0.0}, ChartVar{"load", 0.0},
                ChartVar{"drops", 0.0}};
  chart.states = {
      ChartState{"Idle", "state_code = 0;", "", ""},
      ChartState{"Ready", "state_code = 1;",
                 "if (cmd == 1) { if (count >= 8) { drops = drops + 1; } else { count = count + "
                 "1; } } queue_len = count;",
                 ""},
      ChartState{"Running", "state_code = 2; running_prio = cur;",
                 "load = load + 1; if (cmd == 1 && count < 8) { count = count + 1; } queue_len = "
                 "count;",
                 ""},
      ChartState{"Preempted", "state_code = 3;", "", ""},
      ChartState{"Overflow", "state_code = 4;", "drops = drops + 1;", ""},
  };
  chart.transitions = {
      ChartTransition{0, 1, "cmd == 1", "count = 1;"},
      ChartTransition{1, 4, "count >= 8 && cmd == 1", ""},  // queue full: deep state
      ChartTransition{1, 2, "cmd == 2 && count > 0", "count = count - 1; cur = prio;"},
      ChartTransition{1, 0, "count == 0 && cmd == 0", ""},
      ChartTransition{2, 3, "cmd == 1 && prio > cur && count < 8", "count = count + 1;"},
      ChartTransition{2, 1, "tick != 0 && load > 5", "load = 0;"},
      ChartTransition{2, 0, "cmd == 3", "count = 0; load = 0;"},
      ChartTransition{3, 2, "tick != 0", "cur = prio;"},
      ChartTransition{4, 1, "cmd == 3", "count = 0; drops = 0;"},
  };
  chart.initial_state = 0;
  const auto fsm = mb.AddChart("dispatcher", {cmd, prio_sat, tick, task_id}, chart);
  auto state_code = ModelBuilder::Out(fsm, 0);
  auto queue_len = ModelBuilder::Out(fsm, 1);
  auto running_prio = ModelBuilder::Out(fsm, 2);

  // Priority banding: band = prio / 64 + 1 (1..4), selecting a per-band
  // budget subsystem.
  auto band = mb.Op(BlockKind::kExprFunc, "band_of", {prio_sat},
                    P({{"in", ParamValue(1)},
                       {"out", ParamValue(1)},
                       {"body", ParamValue("if (u1 < 64) { y1 = 1; } elseif (u1 < 128) { y1 = 2; } "
                                           "elseif (u1 < 192) { y1 = 3; } else { y1 = 4; }")},
                       {"out_types", ParamValue("int32")}}));
  std::vector<std::unique_ptr<ir::Model>> bands;
  for (int k = 1; k <= 4; ++k) bands.push_back(BuildBandBudget(k, 0.25 * k));
  {
    ModelBuilder def("band_default");
    (void)def.Inport("active", DType::kBool);
    (void)def.Inport("prio", DType::kInt32);
    def.Outport("budget", def.Constant(0.0));
    bands.push_back(def.Build());
  }
  const auto band_switch =
      mb.AddCompound(BlockKind::kActionSwitch, "band_budget", {band, busy_cmd, prio_sat},
                     std::move(bands));
  auto budget = ModelBuilder::Out(band_switch, 0);

  // Watchdog: starves when the queue stays full; barks after 12 ticks.
  auto q_full = mb.Op(BlockKind::kCompareToConstant, "q_full", {queue_len},
                      P({{"op", ParamValue("ge")}, {"value", ParamValue(8.0)}}));
  auto starving = mb.And({q_full, ticking}, "starving");
  auto wd_count = mb.Op(BlockKind::kCounterLimited, "wd_count", {starving},
                        P({{"limit", ParamValue(static_cast<std::int64_t>(12))}}));
  auto wd_bark = mb.Op(BlockKind::kCompareToConstant, "wd_bark", {wd_count},
                       P({{"op", ParamValue("ge")}, {"value", ParamValue(12.0)}}));

  // Urgency bypass path.
  auto bypass = mb.Switch(mb.Gain(running_prio, 2.0, "rp2"), urgent,
                          mb.Constant(0.0), 0.5, "bypass");

  // Status packing.
  auto status = mb.Op(
      BlockKind::kExprFunc, "status_pack", {state_code, queue_len, budget, bypass, wd_bark},
      P({{"in", ParamValue(5)},
         {"out", ParamValue(1)},
         {"in_names", ParamValue("st q bud byp wd")},
         {"body",
          ParamValue("y1 = st * 100000 + q * 1000 + min(bud, 999); if (byp > 0) { y1 = y1 + "
                     "300000; } if (wd != 0) { y1 = y1 + 7000000; }")},
         {"out_types", ParamValue("int32")}}));
  mb.Outport("Status", status);
  return mb.Build();
}

}  // namespace cftcg::bench_models
