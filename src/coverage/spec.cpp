#include "coverage/spec.hpp"

namespace cftcg::coverage {

DecisionId CoverageSpec::AddDecision(std::string name, int outcomes) {
  Decision d;
  d.id = static_cast<DecisionId>(decisions_.size());
  d.name = std::move(name);
  d.num_outcomes = outcomes;
  d.outcome_slot = next_outcome_slot_;
  next_outcome_slot_ += outcomes;
  decisions_.push_back(std::move(d));
  return decisions_.back().id;
}

ConditionId CoverageSpec::AddCondition(std::string name, DecisionId decision) {
  Condition c;
  c.id = static_cast<ConditionId>(conditions_.size());
  c.name = std::move(name);
  c.decision = decision;
  if (decision >= 0) {
    auto& d = decisions_[static_cast<std::size_t>(decision)];
    c.index_in_decision = static_cast<int>(d.conditions.size());
    d.conditions.push_back(c.id);
  }
  conditions_.push_back(std::move(c));
  return conditions_.back().id;
}

}  // namespace cftcg::coverage
