#include "coverage/html_report.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace cftcg::coverage {

namespace {

const char* kStyle = R"(
<style>
  body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  .tiles { display: flex; gap: 1em; }
  .tile { border: 1px solid #ccc; border-radius: 6px; padding: 0.8em 1.2em; }
  .tile .pct { font-size: 1.6em; font-weight: 600; }
  table { border-collapse: collapse; margin-top: 0.6em; }
  th, td { border: 1px solid #ddd; padding: 0.25em 0.6em; font-size: 0.9em; }
  th { background: #f5f5f5; text-align: left; }
  .hit { background: #e6f4e6; }
  .miss { background: #fbe7e7; }
  .just { background: #e8eaf6; color: #555; font-style: italic; }
  code { font-family: ui-monospace, monospace; }
  .heat0 { background: #1a9850; color: #fff; }
  .heat1 { background: #91cf60; }
  .heat2 { background: #fee08b; }
  .heat3 { background: #fc8d59; }
  .heat4 { background: #d73027; color: #fff; }
  .bar { background: #4a90d9; height: 0.7em; display: inline-block; }
  ul.tree { list-style: none; padding-left: 1.2em; border-left: 1px dotted #bbb; }
  .warn { color: #a33; }
</style>
)";

std::string Cell(bool covered, const char* label) {
  return StrFormat("<td class=\"%s\">%s</td>", covered ? "hit" : "miss", label);
}

}  // namespace

std::string RenderHtmlReport(const std::string& title, const CoverageSpec& spec,
                             const DynamicBitset& total,
                             const std::vector<std::unordered_set<std::uint64_t>>& evals) {
  const MetricReport report = ComputeReportFrom(spec, total, evals);
  std::string html = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
                     XmlEscape(title) + "</title>" + kStyle + "</head><body>\n";
  html += "<h1>Model coverage — " + XmlEscape(title) + "</h1>\n";

  html += "<div class=\"tiles\">\n";
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>Decision<br>%d / %d outcomes</div>\n",
      report.DecisionPct(), report.outcome_covered, report.outcome_total);
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>Condition<br>%d / %d polarities</div>\n",
      report.ConditionPct(), report.condition_polarity_covered, report.condition_polarity_total);
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>MCDC<br>%d / %d conditions</div>\n",
      report.McdcPct(), report.mcdc_covered, report.mcdc_total);
  html += "</div>\n";

  html += "<h2>Decisions</h2>\n<table><tr><th>Decision</th><th>Outcomes</th></tr>\n";
  for (const auto& d : spec.decisions()) {
    html += "<tr><td><code>" + XmlEscape(d.name) + "</code></td><td><table><tr>";
    for (int k = 0; k < d.num_outcomes; ++k) {
      const bool covered = total.Test(static_cast<std::size_t>(spec.OutcomeSlot(d.id, k)));
      html += Cell(covered, StrFormat("[%d]", k).c_str());
    }
    html += "</tr></table></td></tr>\n";
  }
  html += "</table>\n";

  html += "<h2>Conditions</h2>\n<table><tr><th>Condition</th><th>T</th><th>F</th><th>MCDC</th></tr>\n";
  for (const auto& c : spec.conditions()) {
    const bool t = total.Test(static_cast<std::size_t>(spec.ConditionTrueSlot(c.id)));
    const bool f = total.Test(static_cast<std::size_t>(spec.ConditionFalseSlot(c.id)));
    std::string mcdc_cell = "<td>—</td>";
    if (c.decision >= 0 && c.index_in_decision < 24) {
      const auto& set = evals[static_cast<std::size_t>(c.decision)];
      const bool independent = !set.empty() && HasIndependencePair(set, c.index_in_decision);
      mcdc_cell = Cell(independent, independent ? "pair" : "no pair");
    }
    html += "<tr><td><code>" + XmlEscape(c.name) + "</code></td>" + Cell(t, "true") +
            Cell(f, "false") + mcdc_cell + "</tr>\n";
  }
  html += "</table>\n</body></html>\n";
  return html;
}

std::string RenderHtmlReport(const std::string& title, const CoverageSink& sink) {
  return RenderHtmlReport(title, sink.spec(), sink.total(), sink.evals());
}

namespace {

/// Heat bucket for a first-hit time relative to the campaign length: early
/// hits render green (cheap objectives), late ones red (the hard tail).
const char* HeatClass(double time_s, double elapsed_s) {
  if (elapsed_s <= 0) return "heat0";
  const double f = time_s / elapsed_s;
  if (f < 0.05) return "heat0";
  if (f < 0.2) return "heat1";
  if (f < 0.5) return "heat2";
  if (f < 0.8) return "heat3";
  return "heat4";
}

std::string ShortKind(const std::string& kind) {
  if (kind == "decision_outcome") return "D";
  if (kind == "condition_true") return "C+";
  if (kind == "condition_false") return "C-";
  if (kind == "mcdc_pair") return "M";
  return "?";
}

/// Strips the "[k]" outcome suffix residual names carry so residuals group
/// under the same block row as covered objectives.
std::string ResidualBlock(const std::string& name) {
  const std::size_t bracket = name.rfind('[');
  return bracket == std::string::npos ? name : name.substr(0, bracket);
}

}  // namespace

std::string RenderCampaignExplorer(const CampaignExplorerData& data) {
  std::string html = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
                     XmlEscape(data.title) + "</title>" + kStyle + "</head><body>\n";
  html += "<h1>Campaign explorer — " + XmlEscape(data.title) + "</h1>\n";

  // --- Summary tiles -------------------------------------------------------
  const std::size_t covered = data.objectives.size();
  const std::size_t total =
      data.objectives_total > 0 ? data.objectives_total : covered + data.residuals.size();
  const double pct = total > 0 ? 100.0 * static_cast<double>(covered) / static_cast<double>(total)
                               : 0.0;
  html += "<div class=\"tiles\">\n";
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>Objectives<br>%zu / %zu first-hit</div>\n",
      pct, covered, total);
  html += StrFormat("<div class=\"tile\"><div class=\"pct\">%zu</div>Corpus entries</div>\n",
                    data.corpus.size());
  html += StrFormat("<div class=\"tile\"><div class=\"pct\">%zu</div>Residual objectives</div>\n",
                    data.residuals.size());
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1fs</div>Campaign<br>%llu executions</div>\n",
      data.elapsed_s, static_cast<unsigned long long>(data.executions));
  html += "</div>\n";
  if (data.malformed_lines > 0) {
    html += StrFormat("<p class=\"warn\">%zu malformed trace line(s) skipped.</p>\n",
                      data.malformed_lines);
  }

  // --- Per-block heatmap ---------------------------------------------------
  // One row per block path; each covered objective is a cell tinted by when
  // it was first hit, each residual outcome a red miss cell.
  std::map<std::string, std::vector<const ExplorerObjective*>> blocks;
  for (const auto& o : data.objectives) blocks[o.name].push_back(&o);
  std::map<std::string, std::vector<const ExplorerResidual*>> missing;
  for (const auto& r : data.residuals) missing[ResidualBlock(r.name)].push_back(&r);
  for (const auto& [name, residuals] : missing) {
    blocks.emplace(name, std::vector<const ExplorerObjective*>{});  // rows with only misses
    (void)residuals;
  }
  html += "<h2>Per-block first-hit heatmap</h2>\n";
  html += "<p>D = decision outcome, C± = condition polarity, M = MCDC pair; "
          "green = hit early, red = hit late, <span class=\"miss\">miss</span> = uncovered, "
          "<span class=\"just\">justified</span> = proved unreachable by static analysis.</p>\n";
  html += "<table><tr><th>Block</th><th>Objectives</th></tr>\n";
  for (const auto& [name, objectives] : blocks) {
    html += "<tr><td><code>" + XmlEscape(name) + "</code></td><td><table><tr>";
    for (const ExplorerObjective* o : objectives) {
      std::string label = ShortKind(o->kind);
      if (o->kind == "decision_outcome") label += StrFormat("[%d]", o->outcome);
      html += StrFormat("<td class=\"%s\" title=\"%.3fs iter %llu entry %lld\">%s</td>",
                        HeatClass(o->time_s, data.elapsed_s), o->time_s,
                        static_cast<unsigned long long>(o->iteration),
                        static_cast<long long>(o->entry_id), XmlEscape(label).c_str());
    }
    auto miss_it = missing.find(name);
    if (miss_it != missing.end()) {
      for (const ExplorerResidual* r : miss_it->second) {
        std::string dist =
            r->unreached ? "unreached" : StrFormat("best distance %.4g", r->distance);
        if (r->justified) dist = "justified: " + r->reason;
        html += StrFormat("<td class=\"%s\" title=\"%s\">D[%d]</td>",
                          r->justified ? "just" : "miss", XmlEscape(dist).c_str(), r->outcome);
      }
    }
    html += "</tr></table></td></tr>\n";
  }
  html += "</table>\n";

  // --- Hot-block execution heatmap (self-profile join) ---------------------
  // Where the campaign actually spent its VM work: dispatch share per block,
  // tinted hot (red) to cold (green), with the strobe-sampled time share in
  // the tooltip when the profile was recorded in timed mode.
  if (!data.profile_blocks.empty()) {
    html += "<h2>Hot-block execution heatmap</h2>\n";
    html += StrFormat(
        "<p>Campaign self-profile: %llu VM instruction dispatches (%llu strobe samples); "
        "red = hot, green = cold.</p>\n",
        static_cast<unsigned long long>(data.profile_dispatches),
        static_cast<unsigned long long>(data.profile_samples));
    html += "<table><tr><th>Block</th><th>Dispatches</th><th>Share</th><th></th></tr>\n";
    for (const auto& b : data.profile_blocks) {
      const char* heat = b.dispatch_pct >= 30 ? "heat4"
                         : b.dispatch_pct >= 15 ? "heat3"
                         : b.dispatch_pct >= 5  ? "heat2"
                         : b.dispatch_pct >= 1  ? "heat1"
                                                : "heat0";
      const int width = static_cast<int>(b.dispatch_pct / 100.0 * 240.0) + 1;
      html += StrFormat(
          "<tr><td><code>%s</code></td><td>%llu</td>"
          "<td class=\"%s\" title=\"sampled time share %.1f%%\">%.1f%%</td>"
          "<td><div class=\"bar\" style=\"width:%dpx\"></div></td></tr>\n",
          XmlEscape(b.name).c_str(), static_cast<unsigned long long>(b.dispatches), heat,
          b.sample_pct, b.dispatch_pct, width);
    }
    html += "</table>\n";
  }
  if (!data.profile_phases.empty()) {
    html += "<h2>Phase time accounting</h2>\n";
    html += "<table><tr><th>Phase</th><th>Seconds</th><th>Share</th><th></th></tr>\n";
    for (const auto& p : data.profile_phases) {
      const int width = static_cast<int>(p.pct / 100.0 * 240.0) + 1;
      html += StrFormat(
          "<tr><td><code>%s</code></td><td>%.4f</td><td>%.1f%%</td>"
          "<td><div class=\"bar\" style=\"width:%dpx\"></div></td></tr>\n",
          XmlEscape(p.name).c_str(), p.seconds, p.pct, width);
    }
    html += "</table>\n";
  }

  // --- Time-to-objective timeline ------------------------------------------
  std::vector<const ExplorerObjective*> timeline;
  timeline.reserve(data.objectives.size());
  for (const auto& o : data.objectives) timeline.push_back(&o);
  std::sort(timeline.begin(), timeline.end(),
            [](const ExplorerObjective* a, const ExplorerObjective* b) {
              return a->time_s != b->time_s ? a->time_s < b->time_s
                                            : a->iteration < b->iteration;
            });
  html += "<h2>Time to objective</h2>\n";
  html += "<table><tr><th>Time</th><th></th><th>Objective</th><th>Iter</th><th>Entry</th>"
          "<th>Strategy chain</th></tr>\n";
  for (const ExplorerObjective* o : timeline) {
    const double frac = data.elapsed_s > 0 ? o->time_s / data.elapsed_s : 0;
    const int width = static_cast<int>(frac * 240.0) + 1;
    std::string label = XmlEscape(o->name) + " " + ShortKind(o->kind);
    if (o->kind == "decision_outcome") label += StrFormat("[%d]", o->outcome);
    html += StrFormat(
        "<tr><td>%.3fs</td><td><span class=\"bar\" style=\"width:%dpx\"></span></td>"
        "<td><code>%s</code></td><td>%llu</td><td>%lld</td><td><code>%s</code></td></tr>\n",
        o->time_s, width, label.c_str(), static_cast<unsigned long long>(o->iteration),
        static_cast<long long>(o->entry_id), XmlEscape(o->chain).c_str());
  }
  html += "</table>\n";

  // --- Influencing inports (dependence slices) -----------------------------
  // Joined from the static dependence analysis when a model was supplied:
  // for each objective, the root inports that can influence it at all. A
  // residual objective whose inport list is short tells the tester exactly
  // which inputs to think about.
  if (!data.slices.empty()) {
    html += "<h2>Influencing inports (dependence slices)</h2>\n";
    html += "<table><tr><th>Objective</th><th></th><th>Component</th>"
            "<th>Influencing inports</th><th>Cone blocks</th></tr>\n";
    for (const auto& s : data.slices) {
      html += StrFormat(
          "<tr><td><code>%s</code></td><td>%s</td><td>%d</td><td><code>%s</code></td>"
          "<td>%zu</td></tr>\n",
          XmlEscape(s.name).c_str(),
          s.covered ? "<span class=\"hit\">hit</span>" : "<span class=\"miss\">miss</span>",
          s.component, XmlEscape(s.inports).c_str(), s.cone_blocks);
    }
    html += "</table>\n";
  }

  // --- Strategy credit -----------------------------------------------------
  // Which Table 1 strategy chains discovered objectives, and how many corpus
  // admissions each chain produced.
  std::map<std::string, std::size_t> credit;
  for (const auto& o : data.objectives) ++credit[o.chain];
  std::map<std::string, std::size_t> admissions;
  for (const auto& e : data.corpus) ++admissions[e.chain];
  for (const auto& [chain, n] : admissions) {
    credit.emplace(chain, 0);  // chains that admitted entries but hit nothing new
    (void)n;
  }
  html += "<h2>Strategy credit</h2>\n";
  html += "<table><tr><th>Strategy chain</th><th>Objectives first-hit</th>"
          "<th>Corpus admissions</th></tr>\n";
  for (const auto& [chain, hits] : credit) {
    const auto adm = admissions.find(chain);
    html += StrFormat("<tr><td><code>%s</code></td><td>%zu</td><td>%zu</td></tr>\n",
                      XmlEscape(chain).c_str(), hits,
                      adm != admissions.end() ? adm->second : std::size_t{0});
  }
  html += "</table>\n";

  // --- Corpus genealogy ----------------------------------------------------
  html += "<h2>Corpus genealogy</h2>\n";
  if (data.corpus.empty()) {
    html += "<p>No corpus events in the trace (provenance disabled?).</p>\n";
  } else {
    std::map<std::int64_t, std::vector<const ExplorerCorpusEntry*>> children;
    std::map<std::int64_t, std::size_t> hits_by_entry;
    for (const auto& o : data.objectives) ++hits_by_entry[o.entry_id];
    for (const auto& e : data.corpus) children[e.parent].push_back(&e);
    // Iterative depth-first render of the forest under parent −1 (seeds).
    struct Frame {
      const std::vector<const ExplorerCorpusEntry*>* list;
      std::size_t next;
    };
    html += "<ul class=\"tree\">\n";
    std::vector<Frame> stack{{&children[-1], 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next >= f.list->size()) {
        html += "</ul>\n";
        stack.pop_back();
        continue;
      }
      const ExplorerCorpusEntry* e = (*f.list)[f.next++];
      const auto hit = hits_by_entry.find(e->id);
      const std::size_t n_hits = hit != hits_by_entry.end() ? hit->second : 0;
      html += StrFormat(
          "<li>#%lld <code>%s</code> — %.3fs, metric %.0f, +%llu slots%s</li>\n",
          static_cast<long long>(e->id), XmlEscape(e->chain).c_str(), e->time_s, e->metric,
          static_cast<unsigned long long>(e->new_slots),
          n_hits > 0 ? StrFormat(", <b>%zu objective(s)</b>", n_hits).c_str() : "");
      auto kid = children.find(e->id);
      if (kid != children.end() && !kid->second.empty()) {
        html += "<ul class=\"tree\">\n";
        stack.push_back({&kid->second, 0});
      }
    }
    html += "</ul>\n";
  }

  // --- Residual objectives -------------------------------------------------
  html += "<h2>Residual objectives</h2>\n";
  if (data.residuals.empty()) {
    html += "<p>None — every decision outcome was covered.</p>\n";
  } else {
    std::size_t justified = 0;
    for (const auto& r : data.residuals) justified += r.justified ? 1 : 0;
    if (justified > 0) {
      html += StrFormat(
          "<p><span class=\"just\">justified</span> residuals (%zu of %zu) were proved "
          "unreachable by the static analyzer; they are expected misses, not fuzzing "
          "shortfalls.</p>\n",
          justified, data.residuals.size());
    }
    html += "<table><tr><th>Objective</th><th>Best observed distance</th>"
            "<th>Justification</th></tr>\n";
    for (const auto& r : data.residuals) {
      html += "<tr><td><code>" + XmlEscape(r.name) + "</code></td>" +
              (r.unreached ? std::string("<td class=\"miss\">unreached</td>")
                           : StrFormat("<td>%.6g</td>", r.distance)) +
              (r.justified ? "<td class=\"just\">" + XmlEscape(r.reason) + "</td>"
                           : std::string("<td></td>")) +
              "</tr>\n";
    }
    html += "</table>\n";
  }
  html += "</body></html>\n";
  return html;
}

}  // namespace cftcg::coverage
