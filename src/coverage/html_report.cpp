#include "coverage/html_report.hpp"

#include "support/strings.hpp"

namespace cftcg::coverage {

namespace {

const char* kStyle = R"(
<style>
  body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  .tiles { display: flex; gap: 1em; }
  .tile { border: 1px solid #ccc; border-radius: 6px; padding: 0.8em 1.2em; }
  .tile .pct { font-size: 1.6em; font-weight: 600; }
  table { border-collapse: collapse; margin-top: 0.6em; }
  th, td { border: 1px solid #ddd; padding: 0.25em 0.6em; font-size: 0.9em; }
  th { background: #f5f5f5; text-align: left; }
  .hit { background: #e6f4e6; }
  .miss { background: #fbe7e7; }
  code { font-family: ui-monospace, monospace; }
</style>
)";

std::string Cell(bool covered, const char* label) {
  return StrFormat("<td class=\"%s\">%s</td>", covered ? "hit" : "miss", label);
}

}  // namespace

std::string RenderHtmlReport(const std::string& title, const CoverageSpec& spec,
                             const DynamicBitset& total,
                             const std::vector<std::unordered_set<std::uint64_t>>& evals) {
  const MetricReport report = ComputeReportFrom(spec, total, evals);
  std::string html = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
                     XmlEscape(title) + "</title>" + kStyle + "</head><body>\n";
  html += "<h1>Model coverage — " + XmlEscape(title) + "</h1>\n";

  html += "<div class=\"tiles\">\n";
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>Decision<br>%d / %d outcomes</div>\n",
      report.DecisionPct(), report.outcome_covered, report.outcome_total);
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>Condition<br>%d / %d polarities</div>\n",
      report.ConditionPct(), report.condition_polarity_covered, report.condition_polarity_total);
  html += StrFormat(
      "<div class=\"tile\"><div class=\"pct\">%.1f%%</div>MCDC<br>%d / %d conditions</div>\n",
      report.McdcPct(), report.mcdc_covered, report.mcdc_total);
  html += "</div>\n";

  html += "<h2>Decisions</h2>\n<table><tr><th>Decision</th><th>Outcomes</th></tr>\n";
  for (const auto& d : spec.decisions()) {
    html += "<tr><td><code>" + XmlEscape(d.name) + "</code></td><td><table><tr>";
    for (int k = 0; k < d.num_outcomes; ++k) {
      const bool covered = total.Test(static_cast<std::size_t>(spec.OutcomeSlot(d.id, k)));
      html += Cell(covered, StrFormat("[%d]", k).c_str());
    }
    html += "</tr></table></td></tr>\n";
  }
  html += "</table>\n";

  html += "<h2>Conditions</h2>\n<table><tr><th>Condition</th><th>T</th><th>F</th><th>MCDC</th></tr>\n";
  for (const auto& c : spec.conditions()) {
    const bool t = total.Test(static_cast<std::size_t>(spec.ConditionTrueSlot(c.id)));
    const bool f = total.Test(static_cast<std::size_t>(spec.ConditionFalseSlot(c.id)));
    std::string mcdc_cell = "<td>—</td>";
    if (c.decision >= 0 && c.index_in_decision < 24) {
      const auto& set = evals[static_cast<std::size_t>(c.decision)];
      const bool independent = !set.empty() && HasIndependencePair(set, c.index_in_decision);
      mcdc_cell = Cell(independent, independent ? "pair" : "no pair");
    }
    html += "<tr><td><code>" + XmlEscape(c.name) + "</code></td>" + Cell(t, "true") +
            Cell(f, "false") + mcdc_cell + "</tr>\n";
  }
  html += "</table>\n</body></html>\n";
  return html;
}

std::string RenderHtmlReport(const std::string& title, const CoverageSink& sink) {
  return RenderHtmlReport(title, sink.spec(), sink.total(), sink.evals());
}

}  // namespace cftcg::coverage
