// Standalone HTML coverage report — the analogue of Simulink's model
// coverage report: per-decision outcome tables, per-condition polarities,
// and per-condition MCDC status, with summary tiles on top.
#pragma once

#include <string>

#include "coverage/report.hpp"
#include "coverage/sink.hpp"

namespace cftcg::coverage {

/// Renders a self-contained HTML document (no external assets).
std::string RenderHtmlReport(const std::string& title, const CoverageSpec& spec,
                             const DynamicBitset& total,
                             const std::vector<std::unordered_set<std::uint64_t>>& evals);

/// Convenience overload from a sink's cumulative state.
std::string RenderHtmlReport(const std::string& title, const CoverageSink& sink);

}  // namespace cftcg::coverage
