// Standalone HTML coverage report — the analogue of Simulink's model
// coverage report: per-decision outcome tables, per-condition polarities,
// and per-condition MCDC status, with summary tiles on top.
//
// Also hosts the campaign explorer (`cftcg explain`): an HTML view over a
// campaign's provenance trace — per-block first-hit heatmap, time-to-
// objective timeline, strategy credit, corpus genealogy, and residual
// (uncovered) objectives with best-observed margin distances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/report.hpp"
#include "coverage/sink.hpp"

namespace cftcg::coverage {

/// Renders a self-contained HTML document (no external assets).
std::string RenderHtmlReport(const std::string& title, const CoverageSpec& spec,
                             const DynamicBitset& total,
                             const std::vector<std::unordered_set<std::uint64_t>>& evals);

/// Convenience overload from a sink's cumulative state.
std::string RenderHtmlReport(const std::string& title, const CoverageSink& sink);

/// One covered objective with its first-hit provenance (from an `objective`
/// trace event / provenance snapshot).
struct ExplorerObjective {
  std::string kind;   // decision_outcome | condition_true | condition_false | mcdc_pair
  std::string name;   // block path of the decision/condition
  std::string chain;  // ">"-joined Table 1 strategy lineage ("seed", "bytes", …)
  int outcome = -1;
  int slot = -1;
  std::uint64_t iteration = 0;
  double time_s = 0;
  std::int64_t entry_id = -1;  // discovering corpus entry; -1 = not retained
};

/// One corpus admission (from a `corpus` trace event).
struct ExplorerCorpusEntry {
  std::int64_t id = -1;
  std::int64_t parent = -1;  // -1 = root (seed)
  std::uint64_t depth = 0;
  std::string chain;
  double time_s = 0;
  double metric = 0;
  std::uint64_t new_slots = 0;
};

/// One uncovered decision outcome (from a `residual` trace event).
struct ExplorerResidual {
  std::string name;  // "<block path>[outcome]"
  int decision = -1;
  int outcome = -1;
  double distance = 0;     // best observed distance-to-flip
  bool unreached = false;  // decision never even evaluated
  /// Static-analyzer justification: the objective is proved unreachable, so
  /// the miss is expected rather than a fuzzing shortfall.
  bool justified = false;
  std::string reason;  // analyzer's reason; empty when not justified
};

/// One objective's dependence slice joined from the static analyzer
/// (`cftcg explain --model model.cmx`): which root inports can influence
/// the objective, and how large its supporting block cone is.
struct ExplorerSlice {
  int slot = -1;
  std::string name;     // objective name (analysis::SlotNames spelling)
  std::string inports;  // comma-joined influencing inport names ("-" = none)
  int component = -1;   // independence-partition id
  std::size_t cone_blocks = 0;
  bool covered = false;  // joined against the trace's first-hit slots
};

/// One hot-block row joined from a campaign self-profile (profile.json).
struct ExplorerProfileBlock {
  std::string name;
  std::uint64_t dispatches = 0;
  double dispatch_pct = 0;  // share of all VM instruction dispatches
  double sample_pct = 0;    // strobe-sample share (≈ time); 0 when count-only
};

/// One phase-plane row joined from a campaign self-profile.
struct ExplorerProfilePhase {
  std::string name;
  double seconds = 0;
  double pct = 0;  // share of accounted phase time
};

/// Everything the campaign explorer page needs, decoded from a trace by the
/// caller (the CLI joins trace + metrics snapshot; coverage stays free of
/// the obs JSON reader).
struct CampaignExplorerData {
  std::string title;
  double elapsed_s = 0;
  std::uint64_t executions = 0;
  std::size_t objectives_total = 0;  // covered + uncovered objective count
  std::size_t malformed_lines = 0;   // skipped while reading the trace
  std::vector<ExplorerObjective> objectives;
  std::vector<ExplorerCorpusEntry> corpus;
  std::vector<ExplorerResidual> residuals;
  // Dependence-slice join (`cftcg explain --model model.cmx`); empty when no
  // model was supplied — the section is simply omitted.
  std::vector<ExplorerSlice> slices;
  // Self-profile join (`cftcg explain --profile profile.json`); empty when
  // no profile was supplied — the section is simply omitted.
  std::vector<ExplorerProfileBlock> profile_blocks;
  std::vector<ExplorerProfilePhase> profile_phases;
  std::uint64_t profile_dispatches = 0;
  std::uint64_t profile_samples = 0;
};

/// Renders the self-contained campaign explorer HTML document.
std::string RenderCampaignExplorer(const CampaignExplorerData& data);

}  // namespace cftcg::coverage
