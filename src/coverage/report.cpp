#include "coverage/report.hpp"

#include "support/strings.hpp"

namespace cftcg::coverage {

bool HasIndependencePair(const std::unordered_set<std::uint64_t>& evals, int condition_index) {
  const std::uint32_t bit = 1U << condition_index;
  // Masking MC/DC with short-circuit don't-cares: a pair (e1, e2) shows
  // independence of condition i when
  //   * i was evaluated in both,
  //   * i's value differs,
  //   * the decision outcome differs,
  //   * every other condition evaluated in BOTH runs has the same value
  //     (conditions skipped by short-circuit in either run are masked).
  for (auto it1 = evals.begin(); it1 != evals.end(); ++it1) {
    const std::uint64_t e1 = *it1;
    if (!(EvalMask(e1) & bit)) continue;
    for (auto it2 = std::next(it1); it2 != evals.end(); ++it2) {
      const std::uint64_t e2 = *it2;
      if (!(EvalMask(e2) & bit)) continue;
      if (EvalOutcome(e1) == EvalOutcome(e2)) continue;
      if (((EvalValues(e1) ^ EvalValues(e2)) & bit) == 0) continue;
      const std::uint32_t both = (EvalMask(e1) & EvalMask(e2)) & ~bit;
      if (((EvalValues(e1) ^ EvalValues(e2)) & both) != 0) continue;
      return true;
    }
  }
  return false;
}

MetricReport ComputeReportFrom(const CoverageSpec& spec, const DynamicBitset& total,
                               const std::vector<std::unordered_set<std::uint64_t>>& evals,
                               const JustificationSet* justifications) {
  MetricReport r;
  const auto excluded = [&](int slot) {
    return justifications != nullptr && !total.Test(static_cast<std::size_t>(slot)) &&
           justifications->SlotExcluded(slot);
  };
  r.outcome_total = spec.num_outcome_slots();
  for (int slot = 0; slot < r.outcome_total; ++slot) {
    if (total.Test(static_cast<std::size_t>(slot))) ++r.outcome_covered;
    if (excluded(slot)) ++r.outcome_justified;
  }
  r.condition_polarity_total = 2 * static_cast<int>(spec.conditions().size());
  for (const auto& c : spec.conditions()) {
    if (total.Test(static_cast<std::size_t>(spec.ConditionTrueSlot(c.id)))) {
      ++r.condition_polarity_covered;
    }
    if (total.Test(static_cast<std::size_t>(spec.ConditionFalseSlot(c.id)))) {
      ++r.condition_polarity_covered;
    }
    if (excluded(spec.ConditionTrueSlot(c.id))) ++r.condition_polarity_justified;
    if (excluded(spec.ConditionFalseSlot(c.id))) ++r.condition_polarity_justified;
  }
  for (const auto& d : spec.decisions()) {
    if (d.conditions.empty()) continue;
    const auto& set = evals[static_cast<std::size_t>(d.id)];
    for (std::size_t i = 0; i < d.conditions.size() && i < 24; ++i) {
      ++r.mcdc_total;
      const bool covered = !set.empty() && HasIndependencePair(set, static_cast<int>(i));
      if (covered) ++r.mcdc_covered;
      if (!covered && justifications != nullptr &&
          justifications->McdcVerdict(d.conditions[i]) ==
              ObjectiveVerdict::kProvedUnreachable) {
        ++r.mcdc_justified;
      }
    }
  }
  return r;
}

MetricReport ComputeReport(const CoverageSink& sink, const JustificationSet* justifications) {
  return ComputeReportFrom(sink.spec(), sink.total(), sink.evals(), justifications);
}

std::vector<std::string> UncoveredOutcomes(const CoverageSpec& spec, const DynamicBitset& total) {
  std::vector<std::string> out;
  for (const auto& d : spec.decisions()) {
    for (int k = 0; k < d.num_outcomes; ++k) {
      if (!total.Test(static_cast<std::size_t>(spec.OutcomeSlot(d.id, k)))) {
        out.push_back(StrFormat("%s[%d]", d.name.c_str(), k));
      }
    }
  }
  return out;
}

std::string FormatReport(const MetricReport& report) {
  std::string s = StrFormat("DC %.1f%% (%d/%d) | CC %.1f%% (%d/%d) | MCDC %.1f%% (%d/%d)",
                            report.DecisionPct(), report.outcome_covered, report.outcome_total,
                            report.ConditionPct(), report.condition_polarity_covered,
                            report.condition_polarity_total, report.McdcPct(),
                            report.mcdc_covered, report.mcdc_total);
  if (report.NumJustified() > 0) {
    s += StrFormat(" | justified %d -> adj DC %.1f%% CC %.1f%% MCDC %.1f%%",
                   report.NumJustified(), report.AdjustedDecisionPct(),
                   report.AdjustedConditionPct(), report.AdjustedMcdcPct());
  }
  return s;
}

}  // namespace cftcg::coverage
