// Coverage provenance — per-objective first-hit attribution.
//
// The coverage *objective universe* of a model is every goal the Table 3
// metrics count:
//   * one objective per decision outcome          (Decision Coverage),
//   * one per condition polarity (true / false)   (Condition Coverage),
//   * one per condition of a multi-condition decision that needs a masking
//     independence pair                           (MCDC).
//
// A ProvenanceMap records, for each objective, the moment it was first
// satisfied: the execution index, wall time since campaign start, the id of
// the corpus entry whose input covered it, and the Table 1 strategy chain
// that produced that input. The fuzzing loop feeds it only on new-coverage
// events (rare), so attribution is off the hot path entirely; a campaign
// without a ProvenanceMap pays nothing.
//
// Residual diagnostics are the complement: for every decision outcome never
// hit, how close the campaign got — the best MarginRecorder distance
// observed — mapped back to CoverageSpec block/decision names. This is the
// per-goal bookkeeping a hybrid fuzz+solver pipeline hands to the solver
// (the ROADMAP's BMC/SLDV direction) and what `cftcg explain` renders.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "coverage/justify.hpp"
#include "coverage/sink.hpp"
#include "coverage/spec.hpp"
#include "support/bitset.hpp"

namespace cftcg::coverage {

enum class ObjectiveKind {
  kDecisionOutcome,
  kConditionTrue,
  kConditionFalse,
  kMcdcPair,
};
std::string_view ObjectiveKindName(ObjectiveKind kind);

/// One attributed objective: what was covered, and by whom/when.
struct ObjectiveFirstHit {
  ObjectiveKind kind = ObjectiveKind::kDecisionOutcome;
  std::string name;          // decision / condition name from the spec
  DecisionId decision = -1;  // owning decision (kMcdcPair, kDecisionOutcome)
  ConditionId condition = -1;
  int outcome = -1;          // decision outcome index (kDecisionOutcome)
  int slot = -1;             // fuzz-branch slot (-1 for kMcdcPair)
  std::uint64_t iteration = 0;  // execution count at first hit (1-based)
  double time_s = 0;            // wall time since campaign start
  std::int64_t entry_id = -1;   // discovering corpus entry
  std::string chain;            // producing strategy chain ("seed" for seeds)
};

/// An uncovered decision outcome with its best observed margin distance.
struct ResidualObjective {
  DecisionId decision = -1;
  int outcome = -1;
  std::string name;      // "<decision>[<outcome>]", matching UncoveredOutcomes
  double distance = 0;   // MarginRecorder::kUnreached if never evaluated
  /// Static-analyzer verdict: the objective is proved unreachable, so the
  /// miss is justified rather than a fuzzing shortfall.
  bool justified = false;
  std::string justify_reason;  // analyzer's reason; empty when not justified
};

class ProvenanceMap {
 public:
  explicit ProvenanceMap(const CoverageSpec& spec);

  /// Attributes every slot set in `total` that has no attribution yet to
  /// the given (iteration, time, corpus entry, chain); returns indices into
  /// hits() for the newly attributed objectives. Called only when an input
  /// triggers new coverage, so the scan over the slot space is amortized
  /// over the (rare) coverage-frontier advances.
  std::vector<std::size_t> AttributeSlots(const DynamicBitset& total, std::uint64_t iteration,
                                          double time_s, std::int64_t entry_id,
                                          std::string_view chain);

  /// Rechecks the not-yet-attributed MCDC objectives of decision `d`
  /// against its evaluation set; newly satisfied independence pairs are
  /// attributed to the given discoverer. Callers invoke this only for
  /// decisions whose evaluation set grew since the last check.
  std::vector<std::size_t> AttributeMcdc(DecisionId d,
                                         const std::unordered_set<std::uint64_t>& evals,
                                         std::uint64_t iteration, double time_s,
                                         std::int64_t entry_id, std::string_view chain);

  /// Records an attribution discovered elsewhere (another worker's map) if
  /// the objective is still unattributed here; the hit is copied verbatim,
  /// keeping the discoverer's iteration/time/entry/chain. Returns true if
  /// absorbed. The parallel engine folds MergeFirstHits output into the
  /// caller-provided map through this.
  bool AbsorbHit(const ObjectiveFirstHit& hit);

  /// All attributions so far, in discovery order.
  [[nodiscard]] const std::vector<ObjectiveFirstHit>& hits() const { return hits_; }
  /// Size of the objective universe (covered + uncovered).
  [[nodiscard]] std::size_t num_objectives() const { return num_objectives_; }
  [[nodiscard]] std::size_t num_covered() const { return hits_.size(); }

  /// {"covered":N,"total":M,"objectives":[{...first hit...},...]} — parses
  /// back with obs::ParseJson; the CLI embeds it in the --metrics snapshot.
  [[nodiscard]] std::string ToJson() const;

 private:
  const CoverageSpec* spec_;
  std::vector<ObjectiveFirstHit> hits_;
  // Per-slot / per-MCDC-objective state: -1 unattributed, else hits_ index.
  std::vector<int> slot_hit_;
  std::vector<int> mcdc_hit_;     // flattened (decision, condition index)
  std::vector<int> mcdc_offset_;  // first mcdc_hit_ index per decision
  std::size_t num_objectives_ = 0;
};

/// Merges per-worker first-hit attributions into one deterministic list.
/// For each objective — keyed by (kind, slot, decision, condition, outcome)
/// — the hit with the smallest iteration wins; ties go to the lowest worker
/// index (position in `workers`), so the result is reproducible for a fixed
/// seed and worker count regardless of thread scheduling. Output is ordered
/// by discovery iteration (ties in objective-key order). Null entries in
/// `workers` are skipped.
std::vector<ObjectiveFirstHit> MergeFirstHits(const std::vector<const ProvenanceMap*>& workers);

/// Lists every uncovered decision outcome with its best observed distance
/// (`margins` may be null: all distances report as kUnreached). Order
/// matches UncoveredOutcomes(). A non-null `justifications` flags residuals
/// the static analyzer proved unreachable, carrying its reason string.
std::vector<ResidualObjective> ResidualDiagnostics(const CoverageSpec& spec,
                                                   const DynamicBitset& total,
                                                   const MarginRecorder* margins,
                                                   const JustificationSet* justifications = nullptr);

}  // namespace cftcg::coverage
