#include "coverage/provenance.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "coverage/report.hpp"
#include "support/strings.hpp"

namespace cftcg::coverage {

std::string_view ObjectiveKindName(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kDecisionOutcome: return "decision_outcome";
    case ObjectiveKind::kConditionTrue: return "condition_true";
    case ObjectiveKind::kConditionFalse: return "condition_false";
    case ObjectiveKind::kMcdcPair: return "mcdc_pair";
  }
  return "?";
}

ProvenanceMap::ProvenanceMap(const CoverageSpec& spec) : spec_(&spec) {
  slot_hit_.assign(static_cast<std::size_t>(spec.FuzzBranchCount()), -1);
  // MCDC objectives exist for conditions of multi-condition decisions, with
  // the same <24-condition cap ComputeReportFrom applies.
  int mcdc_total = 0;
  for (const auto& d : spec.decisions()) {
    mcdc_offset_.push_back(mcdc_total);
    mcdc_total += static_cast<int>(std::min<std::size_t>(d.conditions.size(), 24));
  }
  mcdc_hit_.assign(static_cast<std::size_t>(mcdc_total), -1);
  num_objectives_ = slot_hit_.size() + mcdc_hit_.size();
}

std::vector<std::size_t> ProvenanceMap::AttributeSlots(const DynamicBitset& total,
                                                       std::uint64_t iteration, double time_s,
                                                       std::int64_t entry_id,
                                                       std::string_view chain) {
  std::vector<std::size_t> fresh;
  const CoverageSpec& spec = *spec_;
  auto attribute = [&](int slot, ObjectiveFirstHit hit) {
    if (slot_hit_[static_cast<std::size_t>(slot)] >= 0) return;
    if (!total.Test(static_cast<std::size_t>(slot))) return;
    hit.slot = slot;
    hit.iteration = iteration;
    hit.time_s = time_s;
    hit.entry_id = entry_id;
    hit.chain = std::string(chain);
    slot_hit_[static_cast<std::size_t>(slot)] = static_cast<int>(hits_.size());
    fresh.push_back(hits_.size());
    hits_.push_back(std::move(hit));
  };
  for (const auto& d : spec.decisions()) {
    for (int k = 0; k < d.num_outcomes; ++k) {
      ObjectiveFirstHit hit;
      hit.kind = ObjectiveKind::kDecisionOutcome;
      hit.name = d.name;
      hit.decision = d.id;
      hit.outcome = k;
      attribute(spec.OutcomeSlot(d.id, k), std::move(hit));
    }
  }
  for (const auto& c : spec.conditions()) {
    ObjectiveFirstHit t;
    t.kind = ObjectiveKind::kConditionTrue;
    t.name = c.name;
    t.decision = c.decision;
    t.condition = c.id;
    attribute(spec.ConditionTrueSlot(c.id), std::move(t));
    ObjectiveFirstHit f;
    f.kind = ObjectiveKind::kConditionFalse;
    f.name = c.name;
    f.decision = c.decision;
    f.condition = c.id;
    attribute(spec.ConditionFalseSlot(c.id), std::move(f));
  }
  return fresh;
}

std::vector<std::size_t> ProvenanceMap::AttributeMcdc(
    DecisionId d, const std::unordered_set<std::uint64_t>& evals, std::uint64_t iteration,
    double time_s, std::int64_t entry_id, std::string_view chain) {
  std::vector<std::size_t> fresh;
  if (evals.empty()) return fresh;
  const Decision& decision = spec_->decision(d);
  const int base = mcdc_offset_[static_cast<std::size_t>(d)];
  const auto n = std::min<std::size_t>(decision.conditions.size(), 24);
  for (std::size_t i = 0; i < n; ++i) {
    int& state = mcdc_hit_[static_cast<std::size_t>(base) + i];
    if (state >= 0) continue;
    if (!HasIndependencePair(evals, static_cast<int>(i))) continue;
    ObjectiveFirstHit hit;
    hit.kind = ObjectiveKind::kMcdcPair;
    hit.decision = d;
    hit.condition = decision.conditions[i];
    hit.name = spec_->condition(decision.conditions[i]).name;
    hit.iteration = iteration;
    hit.time_s = time_s;
    hit.entry_id = entry_id;
    hit.chain = std::string(chain);
    state = static_cast<int>(hits_.size());
    fresh.push_back(hits_.size());
    hits_.push_back(std::move(hit));
  }
  return fresh;
}

bool ProvenanceMap::AbsorbHit(const ObjectiveFirstHit& hit) {
  int* state = nullptr;
  if (hit.kind == ObjectiveKind::kMcdcPair) {
    if (hit.decision < 0 || static_cast<std::size_t>(hit.decision) >= mcdc_offset_.size()) {
      return false;
    }
    const Decision& decision = spec_->decision(hit.decision);
    const auto n = std::min<std::size_t>(decision.conditions.size(), 24);
    const int base = mcdc_offset_[static_cast<std::size_t>(hit.decision)];
    for (std::size_t i = 0; i < n; ++i) {
      if (decision.conditions[i] == hit.condition) {
        state = &mcdc_hit_[static_cast<std::size_t>(base) + i];
        break;
      }
    }
  } else {
    if (hit.slot < 0 || static_cast<std::size_t>(hit.slot) >= slot_hit_.size()) return false;
    state = &slot_hit_[static_cast<std::size_t>(hit.slot)];
  }
  if (state == nullptr || *state >= 0) return false;
  *state = static_cast<int>(hits_.size());
  hits_.push_back(hit);
  return true;
}

std::vector<ObjectiveFirstHit> MergeFirstHits(const std::vector<const ProvenanceMap*>& workers) {
  // Objective key -> best hit so far. std::map keeps key order deterministic
  // for the tie tiers of the final ordering.
  std::map<std::tuple<int, int, int, int, int>, const ObjectiveFirstHit*> best;
  for (const ProvenanceMap* worker : workers) {
    if (worker == nullptr) continue;
    for (const ObjectiveFirstHit& h : worker->hits()) {
      const auto key = std::make_tuple(static_cast<int>(h.kind), h.slot,
                                       static_cast<int>(h.decision),
                                       static_cast<int>(h.condition), h.outcome);
      const auto it = best.find(key);
      // Strict < keeps the earlier (lower-index) worker's hit on equal
      // iterations — the deterministic tie-break.
      if (it == best.end() || h.iteration < it->second->iteration) best[key] = &h;
    }
  }
  std::vector<ObjectiveFirstHit> merged;
  merged.reserve(best.size());
  for (const auto& [key, hit] : best) merged.push_back(*hit);
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ObjectiveFirstHit& a, const ObjectiveFirstHit& b) {
                     return a.iteration < b.iteration;
                   });
  return merged;
}

namespace {

// Local minimal JSON string escape (coverage does not link cftcg_obs).
// Spec names are block paths; quotes/backslashes/control bytes are escaped
// so the output always parses back with obs::ParseJson.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ProvenanceMap::ToJson() const {
  std::string json = StrFormat("{\"covered\":%zu,\"total\":%zu,\"objectives\":[", hits_.size(),
                               num_objectives_);
  for (std::size_t i = 0; i < hits_.size(); ++i) {
    const ObjectiveFirstHit& h = hits_[i];
    if (i > 0) json += ',';
    json += StrFormat(
        "{\"kind\":\"%s\",\"name\":\"%s\",\"outcome\":%d,\"slot\":%d,\"iter\":%llu,"
        "\"time_s\":%.6f,\"entry\":%lld,\"chain\":\"%s\"}",
        std::string(ObjectiveKindName(h.kind)).c_str(), EscapeJson(h.name).c_str(), h.outcome,
        h.slot, static_cast<unsigned long long>(h.iteration), h.time_s,
        static_cast<long long>(h.entry_id), EscapeJson(h.chain).c_str());
  }
  json += "]}";
  return json;
}

std::vector<ResidualObjective> ResidualDiagnostics(const CoverageSpec& spec,
                                                   const DynamicBitset& total,
                                                   const MarginRecorder* margins,
                                                   const JustificationSet* justifications) {
  std::vector<ResidualObjective> out;
  for (const auto& d : spec.decisions()) {
    for (int k = 0; k < d.num_outcomes; ++k) {
      const int slot = spec.OutcomeSlot(d.id, k);
      if (total.Test(static_cast<std::size_t>(slot))) continue;
      ResidualObjective r;
      r.decision = d.id;
      r.outcome = k;
      r.name = StrFormat("%s[%d]", d.name.c_str(), k);
      r.distance = margins != nullptr ? margins->Distance(d.id, k) : MarginRecorder::kUnreached;
      if (justifications != nullptr && justifications->SlotExcluded(slot)) {
        r.justified = true;
        r.justify_reason = justifications->SlotReason(slot);
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace cftcg::coverage
