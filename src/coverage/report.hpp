// Coverage metric computation: Decision, Condition and (masking) MCDC, the
// three metrics of the paper's Table 3.
#pragma once

#include <string>
#include <vector>

#include "coverage/justify.hpp"
#include "coverage/sink.hpp"
#include "coverage/spec.hpp"

namespace cftcg::coverage {

struct MetricReport {
  int outcome_total = 0;
  int outcome_covered = 0;
  int condition_polarity_total = 0;
  int condition_polarity_covered = 0;
  int mcdc_total = 0;    // conditions belonging to decisions with conditions
  int mcdc_covered = 0;  // of those, conditions with a masking independence pair

  // Objectives the static analyzer proved unreachable (SLDV "justified"):
  // removed from the adjusted denominators below, the way Table 3 numbers
  // are reported once dead outcomes are excluded.
  int outcome_justified = 0;
  int condition_polarity_justified = 0;
  int mcdc_justified = 0;

  [[nodiscard]] double DecisionPct() const {
    return outcome_total == 0 ? 100.0 : 100.0 * outcome_covered / outcome_total;
  }
  [[nodiscard]] double ConditionPct() const {
    return condition_polarity_total == 0
               ? 100.0
               : 100.0 * condition_polarity_covered / condition_polarity_total;
  }
  [[nodiscard]] double McdcPct() const {
    return mcdc_total == 0 ? 100.0 : 100.0 * mcdc_covered / mcdc_total;
  }

  [[nodiscard]] int NumJustified() const {
    return outcome_justified + condition_polarity_justified + mcdc_justified;
  }
  [[nodiscard]] double AdjustedDecisionPct() const {
    const int t = outcome_total - outcome_justified;
    return t <= 0 ? 100.0 : 100.0 * outcome_covered / t;
  }
  [[nodiscard]] double AdjustedConditionPct() const {
    const int t = condition_polarity_total - condition_polarity_justified;
    return t <= 0 ? 100.0 : 100.0 * condition_polarity_covered / t;
  }
  [[nodiscard]] double AdjustedMcdcPct() const {
    const int t = mcdc_total - mcdc_justified;
    return t <= 0 ? 100.0 : 100.0 * mcdc_covered / t;
  }
};

/// Computes the three metrics from a sink's cumulative state. A non-null
/// `justifications` adds justified-objective counts (covered objectives are
/// never counted as justified, keeping adjusted percentages <= 100 even if
/// an unsound verdict slipped through).
MetricReport ComputeReport(const CoverageSink& sink,
                           const JustificationSet* justifications = nullptr);

/// Same, but from an externally accumulated total bitmap + eval sets (used
/// when replaying saved test cases).
MetricReport ComputeReportFrom(const CoverageSpec& spec, const DynamicBitset& total,
                               const std::vector<std::unordered_set<std::uint64_t>>& evals,
                               const JustificationSet* justifications = nullptr);

/// True if condition `index_in_decision` of the decision has a masking MCDC
/// independence pair within `evals`.
bool HasIndependencePair(const std::unordered_set<std::uint64_t>& evals, int condition_index);

/// Lists uncovered decision outcomes as "name[outcome]" strings (debugging
/// and the EXPERIMENTS.md narrative).
std::vector<std::string> UncoveredOutcomes(const CoverageSpec& spec, const DynamicBitset& total);

/// Renders a one-line summary "DC 87.5% | CC 75.0% | MCDC 50.0%".
std::string FormatReport(const MetricReport& report);

}  // namespace cftcg::coverage
