// Runtime coverage collection.
//
// The executors (VM and interpreter) report three kinds of events into a
// CoverageSink:
//   * Hit(slot)                — a fuzz-branch slot fired this iteration
//                                 (decision outcome or condition polarity);
//   * RecordEval(...)          — one evaluation of a multi-condition decision
//                                 (for masking MCDC), as a packed condition
//                                 vector + outcome;
//   * RecordMargin(...)        — numeric distance-to-flip of a decision
//                                 (consumed by the constraint-solving
//                                 baseline's guided search; off by default).
//
// `curr` is the per-model-iteration bitmap of Algorithm 1 (g_CurrCov);
// `total` is the campaign-cumulative bitmap (g_TotalCov). The fuzzing loop
// owns the merging policy; baselines use AccumulateIteration().
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "coverage/spec.hpp"
#include "support/bitset.hpp"

namespace cftcg::coverage {

/// Packs an MCDC evaluation into a single word:
/// bits 0..23 condition values, 24..47 evaluated mask, 48..55 outcome.
inline std::uint64_t PackEval(std::uint32_t values, std::uint32_t mask, int outcome) {
  return (static_cast<std::uint64_t>(values) & 0xFFFFFF) |
         ((static_cast<std::uint64_t>(mask) & 0xFFFFFF) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(outcome) & 0xFF) << 48);
}
inline std::uint32_t EvalValues(std::uint64_t e) { return static_cast<std::uint32_t>(e & 0xFFFFFF); }
inline std::uint32_t EvalMask(std::uint64_t e) {
  return static_cast<std::uint32_t>((e >> 24) & 0xFFFFFF);
}
inline int EvalOutcome(std::uint64_t e) { return static_cast<int>((e >> 48) & 0xFF); }

/// Records per-decision outcome distances for goal-directed search.
class MarginRecorder {
 public:
  void Reset(const CoverageSpec& spec);
  /// Distance bookkeeping for a two-way split inside decision `d`: `margin`
  /// >= 0 selects outcome `ge_outcome`, < 0 selects `lt_outcome`. The
  /// distance to the *other* outcome is |margin| (+1 for the >= side so the
  /// boundary itself is not counted as reached).
  void Record(DecisionId d, int ge_outcome, int lt_outcome, double margin);

  /// Best (smallest) observed distance toward outcome `k` of decision `d`
  /// since the last ResetRun(); kUnreached if never evaluated.
  [[nodiscard]] double Distance(DecisionId d, int outcome) const;
  void ResetRun();

  static constexpr double kUnreached = 1e300;

 private:
  std::vector<int> offset_;
  std::vector<double> dist_;
};

class CoverageSink {
 public:
  explicit CoverageSink(const CoverageSpec& spec);

  [[nodiscard]] const CoverageSpec& spec() const { return *spec_; }

  // -- Hot path (called by executors) -----------------------------------
  void Hit(int slot) { curr_.Set(static_cast<std::size_t>(slot)); }
  void RecordEval(DecisionId d, std::uint32_t values, std::uint32_t mask, int outcome) {
    auto& set = evals_[static_cast<std::size_t>(d)];
    if (set.size() < kMaxEvalsPerDecision) set.insert(PackEval(values, mask, outcome));
  }
  void RecordMargin(DecisionId d, int ge_outcome, int lt_outcome, double margin) {
    if (margins_) margins_->Record(d, ge_outcome, lt_outcome, margin);
  }

  // -- Iteration control --------------------------------------------------
  /// Clears the per-iteration map (Algorithm 1 line 11).
  void BeginIteration() { curr_.ClearAll(); }
  /// Merges curr into total; returns number of newly covered slots.
  std::size_t AccumulateIteration() { return total_.MergeAndCountNew(curr_); }

  [[nodiscard]] const DynamicBitset& curr() const { return curr_; }
  [[nodiscard]] const DynamicBitset& total() const { return total_; }
  [[nodiscard]] DynamicBitset& mutable_total() { return total_; }
  [[nodiscard]] const std::vector<std::unordered_set<std::uint64_t>>& evals() const {
    return evals_;
  }

  /// Merges another sink's campaign-cumulative state into this one: ORs the
  /// total bitmap and unions the per-decision evaluation sets (capped at
  /// kMaxEvalsPerDecision like direct recording). Both sinks must share the
  /// spec. Used by the parallel engine to fold worker frontiers into the
  /// global one; `curr` is per-iteration scratch and is not touched.
  void MergeFrom(const CoverageSink& other);

  /// Enables margin recording (constraint baseline); pass nullptr to disable.
  void set_margin_recorder(MarginRecorder* m) { margins_ = m; }

  /// Restores checkpointed campaign-cumulative state: the total bitmap
  /// (as raw words for size()) and the per-decision evaluation sets. The
  /// shapes must match this sink's spec; returns false (state untouched)
  /// otherwise. `curr` is per-iteration scratch and is simply cleared.
  bool RestoreCampaign(std::vector<std::uint64_t> total_words,
                       const std::vector<std::vector<std::uint64_t>>& evals) {
    if (evals.size() != evals_.size()) return false;
    if (!total_.Restore(total_.size(), std::move(total_words))) return false;
    for (std::size_t d = 0; d < evals.size(); ++d) {
      evals_[d].clear();
      for (std::uint64_t e : evals[d]) {
        if (evals_[d].size() >= kMaxEvalsPerDecision) break;
        evals_[d].insert(e);
      }
    }
    curr_.ClearAll();
    return true;
  }

  /// Full campaign reset (keeps the spec binding).
  void ResetCampaign();

  static constexpr std::size_t kMaxEvalsPerDecision = 2048;

 private:
  const CoverageSpec* spec_;
  DynamicBitset curr_;
  DynamicBitset total_;
  std::vector<std::unordered_set<std::uint64_t>> evals_;
  MarginRecorder* margins_ = nullptr;
};

}  // namespace cftcg::coverage
