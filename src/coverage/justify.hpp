// Justified-objective bookkeeping — the static analyzer's verdict store.
//
// SLDV-style tools separate objectives they *prove unsatisfiable* from
// objectives they merely failed to cover; the proven ones are "justified"
// out of the coverage denominator so that 100% means "everything reachable
// was reached", not "everything including the dead code". The analyzer
// (src/analysis) fills one JustificationSet per model; the fuzzer, the
// metric report, and `cftcg explain` all read it.
//
// Verdicts are indexed two ways, mirroring CoverageSpec's objective spaces:
//   * per fuzz slot (decision outcomes, then condition polarities) — the
//     same indexing the CoverageSink bitmap uses, so slot verdicts line up
//     with coverage bits one-to-one;
//   * per condition for the masking-MCDC independence-pair objective.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coverage/spec.hpp"

namespace cftcg::coverage {

enum class ObjectiveVerdict : std::uint8_t {
  kUnknown = 0,            // analyzer cannot decide; fuzz it
  kProvedUnreachable = 1,  // objective is infeasible: justified out of the denominator
  kTriviallyConstant = 2,  // objective is the only possible behavior of a constant
                           // decision — coverable, but not informative
};

std::string_view ObjectiveVerdictName(ObjectiveVerdict v);

struct Justification {
  ObjectiveVerdict verdict = ObjectiveVerdict::kUnknown;
  std::string reason;  // human-readable, e.g. "input [0, 255] never exceeds upper 300"
};

class JustificationSet {
 public:
  JustificationSet() = default;
  explicit JustificationSet(const CoverageSpec& spec)
      : slots_(static_cast<std::size_t>(spec.FuzzBranchCount())),
        mcdc_(spec.conditions().size()) {}

  [[nodiscard]] bool empty() const { return slots_.empty() && mcdc_.empty(); }

  void JustifySlot(int slot, ObjectiveVerdict v, std::string reason) {
    auto& j = slots_.at(static_cast<std::size_t>(slot));
    j.verdict = v;
    j.reason = std::move(reason);
  }
  [[nodiscard]] ObjectiveVerdict SlotVerdict(int slot) const {
    const auto i = static_cast<std::size_t>(slot);
    return i < slots_.size() ? slots_[i].verdict : ObjectiveVerdict::kUnknown;
  }
  [[nodiscard]] const std::string& SlotReason(int slot) const {
    static const std::string kEmpty;
    const auto i = static_cast<std::size_t>(slot);
    return i < slots_.size() ? slots_[i].reason : kEmpty;
  }
  /// True when the slot is justified out of the coverage denominator (and
  /// out of the fuzzer's frontier): proved unreachable.
  [[nodiscard]] bool SlotExcluded(int slot) const {
    return SlotVerdict(slot) == ObjectiveVerdict::kProvedUnreachable;
  }

  void JustifyMcdc(ConditionId c, ObjectiveVerdict v, std::string reason) {
    auto& j = mcdc_.at(static_cast<std::size_t>(c));
    j.verdict = v;
    j.reason = std::move(reason);
  }
  [[nodiscard]] ObjectiveVerdict McdcVerdict(ConditionId c) const {
    const auto i = static_cast<std::size_t>(c);
    return i < mcdc_.size() ? mcdc_[i].verdict : ObjectiveVerdict::kUnknown;
  }
  [[nodiscard]] const std::string& McdcReason(ConditionId c) const {
    static const std::string kEmpty;
    const auto i = static_cast<std::size_t>(c);
    return i < mcdc_.size() ? mcdc_[i].reason : kEmpty;
  }

  /// Objectives carrying any non-unknown verdict (slots + MCDC pairs).
  [[nodiscard]] std::size_t NumJustified() const;
  /// Of those, the proved-unreachable ones.
  [[nodiscard]] std::size_t NumExcluded() const;

 private:
  std::vector<Justification> slots_;  // indexed by fuzz slot
  std::vector<Justification> mcdc_;   // indexed by ConditionId
};

}  // namespace cftcg::coverage
