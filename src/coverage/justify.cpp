#include "coverage/justify.hpp"

namespace cftcg::coverage {

std::string_view ObjectiveVerdictName(ObjectiveVerdict v) {
  switch (v) {
    case ObjectiveVerdict::kUnknown: return "unknown";
    case ObjectiveVerdict::kProvedUnreachable: return "proved_unreachable";
    case ObjectiveVerdict::kTriviallyConstant: return "trivially_constant";
  }
  return "unknown";
}

std::size_t JustificationSet::NumJustified() const {
  std::size_t n = 0;
  for (const auto& j : slots_) n += j.verdict != ObjectiveVerdict::kUnknown ? 1 : 0;
  for (const auto& j : mcdc_) n += j.verdict != ObjectiveVerdict::kUnknown ? 1 : 0;
  return n;
}

std::size_t JustificationSet::NumExcluded() const {
  std::size_t n = 0;
  for (const auto& j : slots_) n += j.verdict == ObjectiveVerdict::kProvedUnreachable ? 1 : 0;
  for (const auto& j : mcdc_) n += j.verdict == ObjectiveVerdict::kProvedUnreachable ? 1 : 0;
  return n;
}

}  // namespace cftcg::coverage
