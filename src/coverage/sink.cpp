#include "coverage/sink.hpp"

#include <algorithm>
#include <cmath>

namespace cftcg::coverage {

void MarginRecorder::Reset(const CoverageSpec& spec) {
  offset_.clear();
  int total = 0;
  for (const auto& d : spec.decisions()) {
    offset_.push_back(total);
    total += d.num_outcomes;
  }
  dist_.assign(static_cast<std::size_t>(total), kUnreached);
}

void MarginRecorder::Record(DecisionId d, int ge_outcome, int lt_outcome, double margin) {
  if (static_cast<std::size_t>(d) >= offset_.size()) return;
  const int base = offset_[static_cast<std::size_t>(d)];
  auto& ge = dist_[static_cast<std::size_t>(base + ge_outcome)];
  auto& lt = dist_[static_cast<std::size_t>(base + lt_outcome)];
  if (margin >= 0) {
    ge = 0;
    lt = std::min(lt, margin + 1.0);  // need to go strictly below the boundary
  } else {
    lt = 0;
    ge = std::min(ge, -margin);
  }
}

double MarginRecorder::Distance(DecisionId d, int outcome) const {
  if (static_cast<std::size_t>(d) >= offset_.size()) return kUnreached;
  return dist_[static_cast<std::size_t>(offset_[static_cast<std::size_t>(d)] + outcome)];
}

void MarginRecorder::ResetRun() {
  std::fill(dist_.begin(), dist_.end(), kUnreached);
}

CoverageSink::CoverageSink(const CoverageSpec& spec) : spec_(&spec) {
  const auto slots = static_cast<std::size_t>(spec.FuzzBranchCount());
  curr_.Resize(slots);
  total_.Resize(slots);
  evals_.resize(spec.decisions().size());
}

void CoverageSink::MergeFrom(const CoverageSink& other) {
  total_.MergeAndCountNew(other.total_);
  for (std::size_t d = 0; d < evals_.size(); ++d) {
    auto& dst = evals_[d];
    for (const std::uint64_t e : other.evals_[d]) {
      if (dst.size() >= kMaxEvalsPerDecision) break;
      dst.insert(e);
    }
  }
}

void CoverageSink::ResetCampaign() {
  curr_.ClearAll();
  total_.ClearAll();
  for (auto& set : evals_) set.clear();
}

}  // namespace cftcg::coverage
