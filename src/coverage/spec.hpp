// Coverage specification: the registry of decisions and conditions of a
// model, mirroring Simulink's model coverage definitions.
//
//   * A *decision* is a point where model execution picks one of N outcomes
//     (Switch output choice, Saturation region, chart transition
//     taken/not-taken, each if/elseif arm, ...). Decision Coverage asks that
//     every outcome of every decision be exercised.
//   * A *condition* is a leaf boolean expression feeding a decision or a
//     logical block input. Condition Coverage asks for each condition to be
//     seen both true and false.
//   * MCDC (masking form) asks, for each condition of a multi-condition
//     decision, for a pair of evaluations where flipping that condition
//     alone (others masked) flips the decision outcome.
//
// The spec also defines the *fuzzer branch space* of the paper's
// Algorithm 1: one slot per decision outcome plus one slot per condition
// polarity. Its size is the algorithm's `branchCount`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cftcg::coverage {

using DecisionId = int;
using ConditionId = int;

struct Decision {
  DecisionId id = -1;
  std::string name;        // hierarchical, e.g. "ctrl/Switch1" or "chart.t3"
  int num_outcomes = 2;
  int outcome_slot = 0;    // first slot in the outcome-slot space
  std::vector<ConditionId> conditions;  // conditions governing this decision
};

struct Condition {
  ConditionId id = -1;
  std::string name;
  DecisionId decision = -1;  // owning decision, or -1 for logical-block inputs
  int index_in_decision = 0; // bit position in MCDC evaluation vectors
};

class CoverageSpec {
 public:
  /// Registers a decision with `outcomes` outcomes; returns its id.
  DecisionId AddDecision(std::string name, int outcomes);
  /// Registers a condition attached to `decision` (or -1); returns its id.
  ConditionId AddCondition(std::string name, DecisionId decision);

  [[nodiscard]] const std::vector<Decision>& decisions() const { return decisions_; }
  [[nodiscard]] const std::vector<Condition>& conditions() const { return conditions_; }
  [[nodiscard]] const Decision& decision(DecisionId id) const {
    return decisions_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Condition& condition(ConditionId id) const {
    return conditions_[static_cast<std::size_t>(id)];
  }

  /// Total decision-outcome slots.
  [[nodiscard]] int num_outcome_slots() const { return next_outcome_slot_; }
  /// Slot of outcome `k` of decision `d` in the outcome space.
  [[nodiscard]] int OutcomeSlot(DecisionId d, int outcome) const {
    return decision(d).outcome_slot + outcome;
  }

  /// The fuzzer branch space: outcomes first, then condition polarities
  /// (true slot, false slot per condition). This is Algorithm 1's
  /// branchCount.
  [[nodiscard]] int FuzzBranchCount() const {
    return num_outcome_slots() + 2 * static_cast<int>(conditions_.size());
  }
  [[nodiscard]] int ConditionTrueSlot(ConditionId c) const {
    return num_outcome_slots() + 2 * c;
  }
  [[nodiscard]] int ConditionFalseSlot(ConditionId c) const {
    return num_outcome_slots() + 2 * c + 1;
  }

 private:
  std::vector<Decision> decisions_;
  std::vector<Condition> conditions_;
  int next_outcome_slot_ = 0;
};

}  // namespace cftcg::coverage
