// The simulation engine (interpreter) — CFTCG's stand-in for Simulink
// simulation, and the execution substrate of the SimCoTest-style baseline.
//
// It walks the scheduled model graph block-by-block every step, with dynamic
// dispatch per block, hash-map port-value bookkeeping and per-step signal
// logging (what a simulation engine does for scopes/logging). That overhead
// is the honest source of the paper's compiled-code vs simulation speed gap
// (26 000 it/s vs 6 it/s on SolarPV); we measure our own ratio in
// bench_speed.
//
// Semantics are bit-identical to the VM lowering (shared num:: helpers,
// same cast points, same coverage events) — verified by the equivalence
// test suite, mirroring the paper's validation of generated code against
// simulation results.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "coverage/sink.hpp"
#include "ir/value.hpp"
#include "sched/schedule.hpp"

namespace cftcg::sim {

class Interpreter {
 public:
  explicit Interpreter(const sched::ScheduledModel& sm, bool log_signals = true);

  /// Model init: restores all block states.
  void Reset();

  void SetInputsFromBytes(const std::uint8_t* tuple);
  void SetInputs(std::span<const ir::Value> values);

  /// One model iteration.
  void Step(coverage::CoverageSink* sink);

  [[nodiscard]] ir::Value GetOutput(int index) const;
  [[nodiscard]] int num_outputs() const { return static_cast<int>(outputs_.size()); }
  [[nodiscard]] std::size_t TupleSize() const { return sm_->TupleSize(); }

  /// Logged output-signal samples (one row per step, one column per root
  /// outport) — the feedback SimCoTest-style diversity selection uses.
  [[nodiscard]] const std::vector<std::vector<double>>& signal_log() const { return signal_log_; }
  void ClearSignalLog() {
    signal_log_.clear();
    full_log_.clear();
  }

  /// Engine-style full signal logging: every block output of every system
  /// is recorded each step (what a simulation engine does while recording
  /// coverage/scopes). Kept as a bounded ring so long campaigns don't grow
  /// without limit.
  [[nodiscard]] const std::vector<std::vector<double>>& full_signal_log() const {
    return full_log_;
  }

 private:
  friend class Exec;
  const sched::ScheduledModel* sm_;
  bool log_signals_;

  // Persistent block state, keyed by block identity (global across the
  // model tree).
  struct BlockState {
    std::vector<double> d;        // delays (as double), rate limiter prev, ...
    std::vector<std::int64_t> i;  // bools/ints: relay on, edge prev, counter, chart state
    std::map<std::string, double> vars;  // chart variables + outputs
  };
  std::map<const ir::Block*, BlockState> state_;

  std::vector<ir::Value> inputs_;
  std::vector<ir::Value> outputs_;
  std::vector<std::vector<double>> signal_log_;
  std::vector<std::vector<double>> full_log_;
  std::size_t full_log_next_ = 0;
  static constexpr std::size_t kFullLogCapacity = 4096;
};

}  // namespace cftcg::sim
