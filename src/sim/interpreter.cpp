#include "sim/interpreter.hpp"

#include <cassert>
#include <cmath>
#include <tuple>

#include "blocks/registry.hpp"
#include "support/numerics.hpp"

namespace cftcg::sim {

using blocks::mex::Expr;
using blocks::mex::ExprKind;
using blocks::mex::IfBranch;
using blocks::mex::Stmt;
using blocks::mex::StmtKind;
using ir::Block;
using ir::BlockKind;
using ir::DType;
using ir::Model;
using namespace cftcg::num;

namespace {

/// Interpreter value: mirrors the VM's register model (floats carried as
/// double regardless of declared single/double; ints pre-wrapped).
struct IVal {
  bool is_float = true;
  double d = 0.0;
  std::int64_t i = 0;
  DType type = DType::kDouble;

  static IVal D(double v, DType t = DType::kDouble) {
    IVal x;
    x.is_float = true;
    x.d = v;
    x.type = t;
    return x;
  }
  static IVal I(std::int64_t v, DType t) {
    IVal x;
    x.is_float = false;
    x.i = ir::WrapToDType(v, t);
    x.type = t;
    return x;
  }
  static IVal B(bool v) { return I(v ? 1 : 0, DType::kBool); }

  [[nodiscard]] double AsD() const { return is_float ? d : static_cast<double>(i); }
  [[nodiscard]] bool AsB() const { return is_float ? d != 0.0 : i != 0; }
};

/// Identical cast semantics to the VM lowering's CastTo.
IVal Cast(const IVal& v, DType want) {
  const bool want_float = ir::DTypeIsFloat(want);
  if (v.is_float == want_float && (v.type == want || want_float)) {
    IVal out = v;
    out.type = want;
    return out;
  }
  if (want_float && !v.is_float) return IVal::D(static_cast<double>(v.i), want);
  if (!want_float && v.is_float) {
    if (want == DType::kBool) return IVal::B(v.d != 0.0);
    return IVal::I(TruncToI64(v.d), want);
  }
  if (want == DType::kBool) return IVal::B(v.i != 0);
  return IVal::I(v.i, want);
}

}  // namespace

/// One step's evaluation pass.
class Exec {
 public:
  Exec(Interpreter& interp, coverage::CoverageSink* sink)
      : interp_(interp), sm_(*interp.sm_), sink_(sink) {}

  void Run() {
    ExecSystem(*sm_.root);
    if (interp_.log_signals_) LogAllSignals();
    const Model& root = *sm_.root;
    const auto outports = root.Outports();
    for (std::size_t i = 0; i < outports.size(); ++i) {
      const Block& b = root.block(outports[i]);
      const ir::Wire* w = root.DriverOf(b.id(), 0);
      const IVal v = Get(root, w->src.block, w->src.port);
      const DType t = root.block(w->src.block).out_type(w->src.port);
      interp_.outputs_[i] = v.is_float ? ir::Value::Real(t, v.d) : ir::Value::Int(t, v.i);
    }
  }

 private:
  using Key = std::tuple<const Model*, ir::BlockId, int>;

  void Set(const Model& sys, ir::BlockId b, int port, IVal v) {
    values_[Key{&sys, b, port}] = v;
  }
  IVal Get(const Model& sys, ir::BlockId b, int port) const {
    auto it = values_.find(Key{&sys, b, port});
    assert(it != values_.end());
    return it->second;
  }
  IVal In(const Model& sys, const Block& b, int port) const {
    const ir::Wire* w = sys.DriverOf(b.id(), port);
    return Get(sys, w->src.block, w->src.port);
  }

  Interpreter::BlockState& State(const Block& b) { return interp_.state_[&b]; }

  void Hit(int slot) {
    if (sink_ != nullptr) sink_->Hit(slot);
  }
  void CovOutcome(coverage::DecisionId d, int outcome) {
    Hit(sm_.spec.OutcomeSlot(d, outcome));
  }
  void CovCondition(coverage::ConditionId c, bool v) {
    Hit(v ? sm_.spec.ConditionTrueSlot(c) : sm_.spec.ConditionFalseSlot(c));
  }

  void ExecSystem(const Model& sys) {
    for (ir::BlockId id : sm_.OrderOf(&sys)) ExecBlock(sys, sys.block(id));
    for (ir::BlockId id : sm_.OrderOf(&sys)) UpdateState(sys, sys.block(id));
  }

  void UpdateState(const Model& sys, const Block& b) {
    switch (b.kind()) {
      case BlockKind::kUnitDelay:
      case BlockKind::kMemory: {
        const IVal v = Cast(In(sys, b, 0), b.out_type(0));
        auto& st = State(b);
        if (v.is_float) st.d[0] = v.d;
        else st.i[0] = v.i;
        break;
      }
      case BlockKind::kDelay: {
        auto& st = State(b);
        const IVal v = Cast(In(sys, b, 0), b.out_type(0));
        if (v.is_float) {
          for (std::size_t k = st.d.size(); k > 1; --k) st.d[k - 1] = st.d[k - 2];
          st.d[0] = v.d;
        } else {
          for (std::size_t k = st.i.size(); k > 1; --k) st.i[k - 1] = st.i[k - 2];
          st.i[0] = v.i;
        }
        break;
      }
      case BlockKind::kDiscreteIntegrator: {
        auto& st = State(b);
        double acc = st.d[0] + b.params().GetDouble("gain", 1.0) * In(sys, b, 0).AsD();
        if (b.params().Has("upper") || b.params().Has("lower")) {
          const auto d = sm_.DecisionAt(&b, 0);
          const double lo = b.params().GetDouble("lower", -1e30);
          const double hi = b.params().GetDouble("upper", 1e30);
          if (acc < lo) {
            CovOutcome(d, 0);
            acc = lo;
          } else if (acc > hi) {
            CovOutcome(d, 2);
            acc = hi;
          } else {
            CovOutcome(d, 1);
          }
        }
        st.d[0] = acc;
        break;
      }
      default: break;
    }
  }

  void ExecBlock(const Model& sys, const Block& b) {
    switch (b.kind()) {
      case BlockKind::kInport: {
        if (values_.count(Key{&sys, b.id(), 0})) return;  // seeded by compound
        const auto field = static_cast<std::size_t>(b.params().GetInt("port", 0));
        const ir::Value& v = interp_.inputs_[field];
        const DType t = b.out_type(0);
        Set(sys, b.id(), 0,
            ir::DTypeIsFloat(t) ? IVal::D(v.AsDouble(), t) : IVal::I(v.AsInt64(), t));
        return;
      }
      case BlockKind::kOutport: return;
      case BlockKind::kConstant: {
        const DType t = b.out_type(0);
        const double v = b.params().GetDouble("value", 0.0);
        Set(sys, b.id(), 0,
            ir::DTypeIsFloat(t) ? IVal::D(v, t) : IVal::I(static_cast<std::int64_t>(v), t));
        return;
      }
      case BlockKind::kGain: {
        const double y = In(sys, b, 0).AsD() * b.params().GetDouble("gain", 1.0);
        Set(sys, b.id(), 0, Cast(IVal::D(y), b.out_type(0)));
        return;
      }
      case BlockKind::kBias: {
        const double y = In(sys, b, 0).AsD() + b.params().GetDouble("bias", 0.0);
        Set(sys, b.id(), 0, Cast(IVal::D(y), b.out_type(0)));
        return;
      }
      case BlockKind::kSum: {
        const std::string signs = b.params().GetString("signs", "++");
        const DType t = b.out_type(0);
        if (ir::DTypeIsFloat(t)) {
          double acc = 0;
          for (std::size_t k = 0; k < signs.size(); ++k) {
            const double v = In(sys, b, static_cast<int>(k)).AsD();
            acc = (k == 0) ? (signs[k] == '-' ? -v : v)
                           : (signs[k] == '-' ? acc - v : acc + v);
          }
          Set(sys, b.id(), 0, IVal::D(acc, t));
        } else {
          std::int64_t acc = 0;
          for (std::size_t k = 0; k < signs.size(); ++k) {
            const std::int64_t v = Cast(In(sys, b, static_cast<int>(k)), t).i;
            acc = (k == 0) ? (signs[k] == '-' ? ir::WrapToDType(-v, t) : v)
                           : ir::WrapToDType(signs[k] == '-' ? acc - v : acc + v, t);
          }
          Set(sys, b.id(), 0, IVal::I(acc, t));
        }
        return;
      }
      case BlockKind::kSubtract: return Arith2(sys, b, '-');
      case BlockKind::kProduct: {
        const std::string ops = b.params().GetString("ops", "**");
        double acc = In(sys, b, 0).AsD();
        if (ops[0] == '/') acc = SafeDiv(1.0, acc);
        for (std::size_t k = 1; k < ops.size(); ++k) {
          const double v = In(sys, b, static_cast<int>(k)).AsD();
          acc = (ops[k] == '/') ? SafeDiv(acc, v) : acc * v;
        }
        Set(sys, b.id(), 0, Cast(IVal::D(acc), b.out_type(0)));
        return;
      }
      case BlockKind::kDivide: {
        Set(sys, b.id(), 0,
            Cast(IVal::D(SafeDiv(In(sys, b, 0).AsD(), In(sys, b, 1).AsD())), b.out_type(0)));
        return;
      }
      case BlockKind::kMod: return Arith2(sys, b, '%');
      case BlockKind::kRem: return Arith2(sys, b, 'r');
      case BlockKind::kMin: return MinMax(sys, b, true);
      case BlockKind::kMax: return MinMax(sys, b, false);
      case BlockKind::kAbs: {
        const DType t = b.out_type(0);
        const IVal u = Cast(In(sys, b, 0), t);
        if (ir::DTypeIsFloat(t)) {
          Set(sys, b.id(), 0, IVal::D(std::fabs(u.d), t));
          return;
        }
        const auto d = sm_.DecisionAt(&b, 0);
        if (u.i < 0) {
          CovOutcome(d, 0);
          Set(sys, b.id(), 0, IVal::I(-u.i, t));
        } else {
          CovOutcome(d, 1);
          Set(sys, b.id(), 0, u);
        }
        return;
      }
      case BlockKind::kUnaryMinus: {
        const DType t = b.out_type(0);
        const IVal u = Cast(In(sys, b, 0), t);
        Set(sys, b.id(), 0, u.is_float ? IVal::D(-u.d, t) : IVal::I(-u.i, t));
        return;
      }
      case BlockKind::kSign: {
        const DType t = b.out_type(0);
        const IVal u = Cast(In(sys, b, 0), t);
        const auto d = sm_.DecisionAt(&b, 0);
        const double v = u.AsD();
        int outcome;
        double res;
        if (v > 0) {
          outcome = 0;
          res = 1;
        } else if (v < 0) {
          outcome = 1;
          res = -1;
        } else {
          outcome = 2;
          res = 0;
        }
        CovOutcome(d, outcome);
        Set(sys, b.id(), 0,
            u.is_float ? IVal::D(res, t) : IVal::I(static_cast<std::int64_t>(res), t));
        return;
      }
      case BlockKind::kSqrt: return Unary(sys, b, [](double v) { return SafeSqrt(v); });
      case BlockKind::kExp: return Unary(sys, b, [](double v) { return Finite(std::exp(v)); });
      case BlockKind::kLog: return Unary(sys, b, [](double v) { return SafeLog(v); });
      case BlockKind::kSin: return Unary(sys, b, [](double v) { return std::sin(v); });
      case BlockKind::kCos: return Unary(sys, b, [](double v) { return std::cos(v); });
      case BlockKind::kTan: return Unary(sys, b, [](double v) { return Finite(std::tan(v)); });
      case BlockKind::kFloor:
      case BlockKind::kCeil:
      case BlockKind::kRound: {
        const DType t = b.out_type(0);
        if (!ir::DTypeIsFloat(t)) {
          Set(sys, b.id(), 0, In(sys, b, 0));
          return;
        }
        const double u = In(sys, b, 0).AsD();
        double y;
        if (b.kind() == BlockKind::kFloor) y = std::floor(u);
        else if (b.kind() == BlockKind::kCeil) y = std::ceil(u);
        else y = std::nearbyint(u);
        Set(sys, b.id(), 0, IVal::D(y, t));
        return;
      }
      case BlockKind::kAtan2: {
        Set(sys, b.id(), 0, IVal::D(std::atan2(In(sys, b, 0).AsD(), In(sys, b, 1).AsD())));
        return;
      }
      case BlockKind::kPow: {
        Set(sys, b.id(), 0, IVal::D(Finite(std::pow(In(sys, b, 0).AsD(), In(sys, b, 1).AsD()))));
        return;
      }
      case BlockKind::kSaturation: {
        const DType t = b.out_type(0);
        const IVal u = Cast(In(sys, b, 0), t);
        const auto d = sm_.DecisionAt(&b, 0);
        if (ir::DTypeIsFloat(t)) {
          const double lo = b.params().GetDouble("lower", 0.0);
          const double hi = b.params().GetDouble("upper", 1.0);
          if (u.d < lo) {
            CovOutcome(d, 0);
            Set(sys, b.id(), 0, IVal::D(lo, t));
          } else if (u.d > hi) {
            CovOutcome(d, 2);
            Set(sys, b.id(), 0, IVal::D(hi, t));
          } else {
            CovOutcome(d, 1);
            Set(sys, b.id(), 0, u);
          }
        } else {
          const auto lo = ir::WrapToDType(
              static_cast<std::int64_t>(b.params().GetDouble("lower", 0.0)), t);
          const auto hi = ir::WrapToDType(
              static_cast<std::int64_t>(b.params().GetDouble("upper", 1.0)), t);
          if (u.i < lo) {
            CovOutcome(d, 0);
            Set(sys, b.id(), 0, IVal::I(lo, t));
          } else if (u.i > hi) {
            CovOutcome(d, 2);
            Set(sys, b.id(), 0, IVal::I(hi, t));
          } else {
            CovOutcome(d, 1);
            Set(sys, b.id(), 0, u);
          }
        }
        return;
      }
      case BlockKind::kDeadZone: {
        const double u = In(sys, b, 0).AsD();
        const double s0 = b.params().GetDouble("start", -0.5);
        const double s1 = b.params().GetDouble("end", 0.5);
        const auto d = sm_.DecisionAt(&b, 0);
        double y;
        if (u < s0) {
          CovOutcome(d, 0);
          y = u - s0;
        } else if (u > s1) {
          CovOutcome(d, 2);
          y = u - s1;
        } else {
          CovOutcome(d, 1);
          y = 0;
        }
        Set(sys, b.id(), 0, Cast(IVal::D(y), b.out_type(0)));
        return;
      }
      case BlockKind::kRateLimiter: {
        auto& st = State(b);
        if (st.d.empty()) st.d.assign(1, b.params().GetDouble("init", 0.0));
        const double u = In(sys, b, 0).AsD();
        const double rise = b.params().GetDouble("rising", 1.0);
        const double fall = b.params().GetDouble("falling", -1.0);
        const auto d = sm_.DecisionAt(&b, 0);
        const double delta = u - st.d[0];
        double y;
        if (delta > rise) {
          CovOutcome(d, 0);
          y = st.d[0] + rise;
        } else if (delta < fall) {
          CovOutcome(d, 2);
          y = st.d[0] + fall;
        } else {
          CovOutcome(d, 1);
          y = u;
        }
        st.d[0] = y;
        Set(sys, b.id(), 0, IVal::D(y));
        return;
      }
      case BlockKind::kQuantizer: {
        const double q = b.params().GetDouble("interval", 1.0);
        const double y = q * std::nearbyint(SafeDiv(In(sys, b, 0).AsD(), q));
        Set(sys, b.id(), 0, Cast(IVal::D(y), b.out_type(0)));
        return;
      }
      case BlockKind::kRelay: {
        auto& st = State(b);
        if (st.i.empty()) st.i.assign(1, b.params().GetDouble("init", 0.0) != 0.0 ? 1 : 0);
        const double u = In(sys, b, 0).AsD();
        const auto d = sm_.DecisionAt(&b, 0);
        if (st.i[0] != 0) {
          if (u <= b.params().GetDouble("off_point", 0.0)) st.i[0] = 0;
        } else {
          if (u >= b.params().GetDouble("on_point", 1.0)) st.i[0] = 1;
        }
        if (st.i[0] != 0) {
          CovOutcome(d, 0);
          Set(sys, b.id(), 0, IVal::D(b.params().GetDouble("on_value", 1.0)));
        } else {
          CovOutcome(d, 1);
          Set(sys, b.id(), 0, IVal::D(b.params().GetDouble("off_value", 0.0)));
        }
        return;
      }
      case BlockKind::kRelationalOp:
      case BlockKind::kCompareToConstant:
      case BlockKind::kCompareToZero: {
        const std::string op = b.params().GetString("op", "lt");
        const IVal a = In(sys, b, 0);
        IVal c;
        if (b.kind() == BlockKind::kRelationalOp) {
          c = In(sys, b, 1);
        } else if (b.kind() == BlockKind::kCompareToConstant) {
          const double v = b.params().GetDouble("value", 0.0);
          const bool fractional = v != std::floor(v);
          c = (a.is_float || fractional) ? IVal::D(v)
                                         : IVal::I(static_cast<std::int64_t>(v), a.type);
        } else {
          c = a.is_float ? IVal::D(0.0) : IVal::I(0, a.type);
        }
        const bool r = Relate(a, c, op);
        CovCondition(sm_.ConditionAt(&b, 0), r);
        Set(sys, b.id(), 0, IVal::B(r));
        return;
      }
      case BlockKind::kLogicalAnd:
      case BlockKind::kLogicalOr:
      case BlockKind::kLogicalXor:
      case BlockKind::kLogicalNand:
      case BlockKind::kLogicalNor: {
        const int n = b.num_inputs();
        const auto d = sm_.DecisionAt(&b, 0);
        std::uint32_t vals = 0;
        bool acc = In(sys, b, 0).AsB();
        for (int k = 0; k < n; ++k) {
          const bool bk = In(sys, b, k).AsB();
          CovCondition(sm_.ConditionAt(&b, k + 1), bk);
          if (bk) vals |= 1U << k;
          if (k > 0) {
            switch (b.kind()) {
              case BlockKind::kLogicalOr:
              case BlockKind::kLogicalNor: acc = acc || bk; break;
              case BlockKind::kLogicalXor: acc = acc != bk; break;
              default: acc = acc && bk; break;
            }
          }
        }
        if (b.kind() == BlockKind::kLogicalNand || b.kind() == BlockKind::kLogicalNor) acc = !acc;
        if (sink_ != nullptr) sink_->RecordEval(d, vals, (1U << n) - 1, acc ? 1 : 0);
        CovOutcome(d, acc ? 0 : 1);
        Set(sys, b.id(), 0, IVal::B(acc));
        return;
      }
      case BlockKind::kLogicalNot: {
        Set(sys, b.id(), 0, IVal::B(!In(sys, b, 0).AsB()));
        return;
      }
      case BlockKind::kBitwiseAnd:
      case BlockKind::kBitwiseOr:
      case BlockKind::kBitwiseXor: {
        const DType t = b.out_type(0);
        const std::int64_t a = Cast(In(sys, b, 0), t).i;
        const std::int64_t c = Cast(In(sys, b, 1), t).i;
        std::int64_t y = a & c;
        if (b.kind() == BlockKind::kBitwiseOr) y = a | c;
        else if (b.kind() == BlockKind::kBitwiseXor) y = a ^ c;
        Set(sys, b.id(), 0, IVal::I(y, t));
        return;
      }
      case BlockKind::kShiftLeft:
      case BlockKind::kShiftRight: {
        const DType t = b.out_type(0);
        const std::int64_t a = Cast(In(sys, b, 0), t).i;
        const auto bits = static_cast<int>(b.params().GetInt("bits", 1)) & 63;
        const std::int64_t y =
            (b.kind() == BlockKind::kShiftLeft)
                ? static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << bits)
                : (a >> bits);
        Set(sys, b.id(), 0, IVal::I(y, t));
        return;
      }
      case BlockKind::kSwitch: {
        const DType t = b.out_type(0);
        const IVal ctrl = In(sys, b, 1);
        const std::string criteria = b.params().GetString("criteria", "ge");
        const auto d = sm_.DecisionAt(&b, 0);
        bool cond;
        if (criteria == "ne") {
          cond = ctrl.AsB();
        } else {
          const double thr = b.params().GetDouble("threshold", 0.0);
          const bool fractional = thr != std::floor(thr);
          IVal th = (ctrl.is_float || fractional)
                        ? IVal::D(thr)
                        : IVal::I(static_cast<std::int64_t>(thr), ctrl.type);
          cond = Relate(ctrl, th, criteria);
        }
        CovOutcome(d, cond ? 0 : 1);
        Set(sys, b.id(), 0, Cast(In(sys, b, cond ? 0 : 2), t));
        return;
      }
      case BlockKind::kMultiportSwitch: {
        const DType t = b.out_type(0);
        const int cases = static_cast<int>(b.params().GetInt("cases", 2));
        const auto d = sm_.DecisionAt(&b, 0);
        const std::int64_t idx = Cast(In(sys, b, 0), DType::kInt32).i;
        int chosen = cases - 1;
        for (int k = 0; k < cases - 1; ++k) {
          if (idx == k + 1) {
            chosen = k;
            break;
          }
        }
        CovOutcome(d, chosen);
        Set(sys, b.id(), 0, Cast(In(sys, b, 1 + chosen), t));
        return;
      }
      case BlockKind::kMerge: {
        const DType t = b.out_type(0);
        const int n = b.num_inputs();
        int chosen = n - 1;
        for (int k = 0; k < n - 1; ++k) {
          if (In(sys, b, k).AsB()) {
            chosen = k;
            break;
          }
        }
        Set(sys, b.id(), 0, Cast(In(sys, b, chosen), t));
        return;
      }
      case BlockKind::kUnitDelay:
      case BlockKind::kMemory: {
        auto& st = State(b);
        const DType t = b.out_type(0);
        if (st.d.empty() && st.i.empty()) InitDelayState(b, st, 1);
        Set(sys, b.id(), 0, ir::DTypeIsFloat(t) ? IVal::D(st.d[0], t) : IVal::I(st.i[0], t));
        return;
      }
      case BlockKind::kDelay: {
        auto& st = State(b);
        const DType t = b.out_type(0);
        const auto n = static_cast<std::size_t>(b.params().GetInt("length", 1));
        if (st.d.empty() && st.i.empty()) InitDelayState(b, st, n);
        Set(sys, b.id(), 0,
            ir::DTypeIsFloat(t) ? IVal::D(st.d[n - 1], t) : IVal::I(st.i[n - 1], t));
        return;
      }
      case BlockKind::kDiscreteIntegrator: {
        auto& st = State(b);
        if (st.d.empty()) st.d.assign(1, b.params().GetDouble("init", 0.0));
        Set(sys, b.id(), 0, IVal::D(st.d[0]));
        return;
      }
      case BlockKind::kCounterLimited: {
        auto& st = State(b);
        const DType t = b.out_type(0);
        if (st.i.empty()) {
          st.i.assign(
              1, ir::WrapToDType(static_cast<std::int64_t>(b.params().GetDouble("init", 0.0)), t));
        }
        const auto d = sm_.DecisionAt(&b, 0);
        if (In(sys, b, 0).AsB()) {
          const std::int64_t limit = b.params().GetInt("limit", 10);
          if (st.i[0] >= limit) {
            CovOutcome(d, 0);
            st.i[0] = 0;
          } else {
            CovOutcome(d, 1);
            st.i[0] = ir::WrapToDType(st.i[0] + 1, t);
          }
        }
        Set(sys, b.id(), 0, IVal::I(st.i[0], t));
        return;
      }
      case BlockKind::kEdgeDetector: {
        auto& st = State(b);
        if (st.i.empty()) st.i.assign(1, 0);
        const std::string edge = b.params().GetString("edge", "rising");
        const bool u = In(sys, b, 0).AsB();
        const bool prev = st.i[0] != 0;
        bool out;
        if (edge == "falling") out = !u && prev;
        else if (edge == "either") out = u != prev;
        else out = u && !prev;
        st.i[0] = u ? 1 : 0;
        const auto d = sm_.DecisionAt(&b, 0);
        CovOutcome(d, out ? 0 : 1);
        CovCondition(sm_.ConditionAt(&b, 1), out);
        Set(sys, b.id(), 0, IVal::B(out));
        return;
      }
      case BlockKind::kLookup1D: {
        const auto bp = b.params().GetList("breakpoints");
        const auto tb = b.params().GetList("table");
        const double u = In(sys, b, 0).AsD();
        double y;
        if (u <= bp.front()) {
          y = tb.front();
        } else if (u > bp.back()) {
          y = tb.back();
        } else {
          y = tb.back();
          for (std::size_t k = 1; k < bp.size(); ++k) {
            if (u <= bp[k]) {
              const double slope =
                  (bp[k] == bp[k - 1]) ? 0.0 : (tb[k] - tb[k - 1]) / (bp[k] - bp[k - 1]);
              y = tb[k - 1] + (u - bp[k - 1]) * slope;
              break;
            }
          }
        }
        Set(sys, b.id(), 0, IVal::D(y));
        return;
      }
      case BlockKind::kDataTypeConversion: {
        Set(sys, b.id(), 0, Cast(In(sys, b, 0), b.out_type(0)));
        return;
      }
      case BlockKind::kSubsystem: {
        const Model& sub = *b.subs()[0];
        SeedSub(sys, b, sub, 0);
        ExecSystem(sub);
        PublishSub(sys, b, sub);
        return;
      }
      case BlockKind::kActionIf: {
        const auto d = sm_.DecisionAt(&b, 0);
        const bool cond = In(sys, b, 0).AsB();
        CovOutcome(d, cond ? 0 : 1);
        const Model& sub = *b.subs()[cond ? 0 : 1];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub);
        PublishSub(sys, b, sub);
        return;
      }
      case BlockKind::kActionSwitch: {
        const auto d = sm_.DecisionAt(&b, 0);
        const int n_subs = static_cast<int>(b.subs().size());
        const std::int64_t idx = Cast(In(sys, b, 0), DType::kInt32).i;
        int chosen = n_subs - 1;
        for (int k = 0; k < n_subs - 1; ++k) {
          if (idx == k + 1) {
            chosen = k;
            break;
          }
        }
        CovOutcome(d, chosen);
        const Model& sub = *b.subs()[static_cast<std::size_t>(chosen)];
        SeedSub(sys, b, sub, 1);
        ExecSystem(sub);
        PublishSub(sys, b, sub);
        return;
      }
      case BlockKind::kEnabledSubsystem: {
        const auto d = sm_.DecisionAt(&b, 0);
        auto& st = State(b);
        if (st.d.empty() && b.num_outputs() > 0) {
          st.d.assign(static_cast<std::size_t>(b.num_outputs()),
                      b.params().GetDouble("init", 0.0));
        }
        const bool enable = In(sys, b, 0).AsB();
        if (enable) {
          CovOutcome(d, 0);
          const Model& sub = *b.subs()[0];
          SeedSub(sys, b, sub, 1);
          ExecSystem(sub);
          const auto outports = sub.Outports();
          for (std::size_t k = 0; k < outports.size(); ++k) {
            const ir::Wire* w = sub.DriverOf(outports[k], 0);
            const IVal v =
                Cast(Get(sub, w->src.block, w->src.port), b.out_type(static_cast<int>(k)));
            st.d[k] = v.AsD();
          }
        } else {
          CovOutcome(d, 1);
        }
        for (int k = 0; k < b.num_outputs(); ++k) {
          const DType t = b.out_type(k);
          if (ir::DTypeIsFloat(t)) {
            Set(sys, b.id(), k, IVal::D(st.d[static_cast<std::size_t>(k)], t));
          } else {
            Set(sys, b.id(), k,
                IVal::I(static_cast<std::int64_t>(st.d[static_cast<std::size_t>(k)]), t));
          }
        }
        return;
      }
      case BlockKind::kChart: return ExecChart(sys, b);
      case BlockKind::kExprFunc: return ExecExprFunc(sys, b);
    }
  }

  void InitDelayState(const Block& b, Interpreter::BlockState& st, std::size_t n) {
    const DType t = b.out_type(0);
    const double init = b.params().GetDouble("init", 0.0);
    if (ir::DTypeIsFloat(t)) {
      st.d.assign(n, init);
    } else {
      st.i.assign(n, ir::WrapToDType(static_cast<std::int64_t>(init), t));
    }
  }

  template <typename F>
  void Unary(const Model& sys, const Block& b, F fn) {
    Set(sys, b.id(), 0, IVal::D(fn(In(sys, b, 0).AsD())));
  }

  void Arith2(const Model& sys, const Block& b, char op) {
    const DType t = b.out_type(0);
    if (ir::DTypeIsFloat(t)) {
      const double a = In(sys, b, 0).AsD();
      const double c = In(sys, b, 1).AsD();
      double y;
      if (op == '-') y = a - c;
      else if (op == '%') y = SafeMod(a, c);
      else y = SafeRem(a, c);
      Set(sys, b.id(), 0, IVal::D(y, t));
    } else {
      const std::int64_t a = Cast(In(sys, b, 0), t).i;
      const std::int64_t c = Cast(In(sys, b, 1), t).i;
      std::int64_t y;
      if (op == '-') y = a - c;
      else if (op == '%') y = SafeModI(a, c);
      else y = SafeRemI(a, c);
      Set(sys, b.id(), 0, IVal::I(y, t));
    }
  }

  void MinMax(const Model& sys, const Block& b, bool is_min) {
    const DType t = b.out_type(0);
    const IVal a = Cast(In(sys, b, 0), t);
    const IVal c = Cast(In(sys, b, 1), t);
    const auto d = sm_.DecisionAt(&b, 0);
    const bool take_a = Relate(a, c, is_min ? "le" : "ge");
    CovOutcome(d, take_a ? 0 : 1);
    Set(sys, b.id(), 0, take_a ? a : c);
  }

  bool Relate(const IVal& a, const IVal& c, const std::string& op) const {
    const DType pt = ir::PromoteDTypes(a.type, c.type);
    if (ir::DTypeIsFloat(pt)) {
      const double x = a.AsD();
      const double y = c.AsD();
      if (op == "lt" || op == "<") return x < y;
      if (op == "le" || op == "<=") return x <= y;
      if (op == "gt" || op == ">") return x > y;
      if (op == "ge" || op == ">=") return x >= y;
      if (op == "eq" || op == "==") return x == y;
      return x != y;
    }
    const std::int64_t x = Cast(a, pt).i;
    const std::int64_t y = Cast(c, pt).i;
    if (op == "lt" || op == "<") return x < y;
    if (op == "le" || op == "<=") return x <= y;
    if (op == "gt" || op == ">") return x > y;
    if (op == "ge" || op == ">=") return x >= y;
    if (op == "eq" || op == "==") return x == y;
    return x != y;
  }

  void SeedSub(const Model& sys, const Block& b, const Model& sub, int offset) {
    const auto inports = sub.Inports();
    for (std::size_t k = 0; k < inports.size(); ++k) {
      const Block& ip = sub.block(inports[k]);
      Set(sub, ip.id(), 0, Cast(In(sys, b, offset + static_cast<int>(k)), ip.out_type(0)));
    }
  }

  void PublishSub(const Model& sys, const Block& b, const Model& sub) {
    const auto outports = sub.Outports();
    for (std::size_t k = 0; k < outports.size(); ++k) {
      const ir::Wire* w = sub.DriverOf(outports[k], 0);
      Set(sys, b.id(), static_cast<int>(k),
          Cast(Get(sub, w->src.block, w->src.port), b.out_type(static_cast<int>(k))));
    }
  }

  // -- mex evaluation ---------------------------------------------------------
  using Env = std::map<std::string, double>;

  double EvalExpr(const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kNumber: return e.number;
      case ExprKind::kVar: return env.at(e.name);
      case ExprKind::kUnary:
        if (e.op == "!") return EvalBool(*e.args[0], env) ? 0.0 : 1.0;
        return -EvalExpr(*e.args[0], env);
      case ExprKind::kBinary: {
        if (blocks::mex::IsBooleanOp(e.op)) return EvalBool(e, env) ? 1.0 : 0.0;
        const double a = EvalExpr(*e.args[0], env);
        const double c = EvalExpr(*e.args[1], env);
        if (e.op == "+") return a + c;
        if (e.op == "-") return a - c;
        if (e.op == "*") return a * c;
        if (e.op == "/") return SafeDiv(a, c);
        return SafeMod(a, c);
      }
      case ExprKind::kCall: {
        auto arg = [&](std::size_t k) { return EvalExpr(*e.args[k], env); };
        if (e.name == "abs") return std::fabs(arg(0));
        if (e.name == "min") return std::fmin(arg(0), arg(1));
        if (e.name == "max") return std::fmax(arg(0), arg(1));
        if (e.name == "floor") return std::floor(arg(0));
        if (e.name == "ceil") return std::ceil(arg(0));
        if (e.name == "round") return std::nearbyint(arg(0));
        if (e.name == "sqrt") return SafeSqrt(arg(0));
        if (e.name == "exp") return Finite(std::exp(arg(0)));
        if (e.name == "log") return SafeLog(arg(0));
        if (e.name == "sin") return std::sin(arg(0));
        if (e.name == "cos") return std::cos(arg(0));
        if (e.name == "tan") return Finite(std::tan(arg(0)));
        if (e.name == "atan2") return std::atan2(arg(0), arg(1));
        if (e.name == "pow") return Finite(std::pow(arg(0), arg(1)));
        if (e.name == "mod") return SafeMod(arg(0), arg(1));
        if (e.name == "rem") return SafeRem(arg(0), arg(1));
        if (e.name == "sign") {
          const double v = arg(0);
          return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0);
        }
        return 0.0;
      }
    }
    return 0.0;
  }

  bool EvalBool(const Expr& e, Env& env) {
    if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
      const bool lhs = EvalBool(*e.args[0], env);
      if (e.op == "&&") return lhs && EvalBool(*e.args[1], env);
      return lhs || EvalBool(*e.args[1], env);
    }
    if (e.kind == ExprKind::kUnary && e.op == "!") return !EvalBool(*e.args[0], env);
    if (e.kind == ExprKind::kBinary && blocks::mex::IsBooleanOp(e.op)) {
      const double a = EvalExpr(*e.args[0], env);
      const double c = EvalExpr(*e.args[1], env);
      if (e.op == "<") return a < c;
      if (e.op == "<=") return a <= c;
      if (e.op == ">") return a > c;
      if (e.op == ">=") return a >= c;
      if (e.op == "==") return a == c;
      return a != c;
    }
    return EvalExpr(e, env) != 0.0;
  }

  bool EvalCond(const Expr& e, Env& env, const std::map<const Expr*, int>& bit_of,
                std::uint32_t& vals, std::uint32_t& mask) {
    if (e.kind == ExprKind::kBinary && blocks::mex::IsLogicalOp(e.op)) {
      const bool lhs = EvalCond(*e.args[0], env, bit_of, vals, mask);
      if (e.op == "&&") {
        if (!lhs) return false;
        return EvalCond(*e.args[1], env, bit_of, vals, mask);
      }
      if (lhs) return true;
      return EvalCond(*e.args[1], env, bit_of, vals, mask);
    }
    if (e.kind == ExprKind::kUnary && e.op == "!") {
      return !EvalCond(*e.args[0], env, bit_of, vals, mask);
    }
    const bool v = EvalBool(e, env);
    auto it = bit_of.find(&e);
    if (it != bit_of.end() && it->second < 24) {
      mask |= 1U << it->second;
      if (v) vals |= 1U << it->second;
      CovCondition(sm_.ConditionAt(&e, 0), v);
    }
    return v;
  }

  bool EvalDecision(const Expr& cond, Env& env, coverage::DecisionId d) {
    std::map<const Expr*, int> bit_of;
    std::vector<const Expr*> leaves;
    blocks::mex::CollectConditionLeaves(cond, leaves);
    for (std::size_t k = 0; k < leaves.size(); ++k) bit_of[leaves[k]] = static_cast<int>(k);
    std::uint32_t vals = 0;
    std::uint32_t mask = 0;
    const bool r = EvalCond(cond, env, bit_of, vals, mask);
    if (sink_ != nullptr) sink_->RecordEval(d, vals, mask, r ? 1 : 0);
    return r;
  }

  void EvalStmts(const std::vector<blocks::mex::StmtPtr>& stmts, Env& env) {
    for (const auto& s : stmts) EvalStmt(*s, env);
  }

  void EvalStmt(const Stmt& stmt, Env& env) {
    if (stmt.kind == StmtKind::kAssign) {
      env[stmt.target] = EvalExpr(*stmt.value, env);
      return;
    }
    for (std::size_t arm = 0; arm < stmt.branches.size(); ++arm) {
      const IfBranch& br = stmt.branches[arm];
      if (!br.cond) {
        EvalStmts(br.body, env);
        return;
      }
      const auto d = sm_.DecisionAt(&stmt, static_cast<int>(arm));
      if (EvalDecision(*br.cond, env, d)) {
        CovOutcome(d, 0);
        EvalStmts(br.body, env);
        return;
      }
      CovOutcome(d, 1);
    }
  }

  void ExecExprFunc(const Model& sys, const Block& b) {
    const auto* compiled = sm_.analysis.programs.FindExprFunc(&b);
    assert(compiled != nullptr);
    Env env;
    for (std::size_t k = 0; k < compiled->in_names.size(); ++k) {
      env[compiled->in_names[k]] = In(sys, b, static_cast<int>(k)).AsD();
    }
    for (const auto& name : compiled->out_names) env[name] = 0.0;
    for (const auto& name : compiled->local_names) env[name] = 0.0;
    EvalStmts(compiled->program.stmts, env);
    for (std::size_t k = 0; k < compiled->out_names.size(); ++k) {
      Set(sys, b.id(), static_cast<int>(k),
          Cast(IVal::D(env[compiled->out_names[k]]), b.out_type(static_cast<int>(k))));
    }
  }

  void ExecChart(const Model& sys, const Block& b) {
    const auto* compiled = sm_.analysis.programs.FindChart(&b);
    assert(compiled != nullptr);
    const ir::ChartDef& def = *b.chart();
    auto& st = State(b);
    if (st.i.empty()) {
      st.i.assign(1, def.initial_state);
      for (const auto& v : def.vars) st.vars[v.name] = v.init;
      for (const auto& o : def.outputs) st.vars[o.name] = o.init;
    }
    Env env;
    for (std::size_t k = 0; k < def.inputs.size(); ++k) {
      env[def.inputs[k]] = In(sys, b, static_cast<int>(k)).AsD();
    }
    for (const auto& v : def.vars) env[v.name] = st.vars[v.name];
    for (const auto& o : def.outputs) env[o.name] = st.vars[o.name];

    const auto active = static_cast<std::size_t>(st.i[0]);
    bool fired = false;
    for (int t : compiled->outgoing[active]) {
      const auto& ct = compiled->transitions[static_cast<std::size_t>(t)];
      const ir::ChartTransition& dt = def.transitions[static_cast<std::size_t>(t)];
      const auto d = sm_.DecisionAt(&b, 1000 + t);
      const bool taken = !ct.guard || EvalDecision(*ct.guard->expr, env, d);
      CovOutcome(d, taken ? 0 : 1);
      if (taken) {
        if (compiled->states[active].exit) EvalStmts(compiled->states[active].exit->stmts, env);
        if (ct.action) EvalStmts(ct.action->stmts, env);
        const auto dest = static_cast<std::size_t>(dt.to);
        if (compiled->states[dest].entry) EvalStmts(compiled->states[dest].entry->stmts, env);
        st.i[0] = dt.to;
        fired = true;
        break;
      }
    }
    if (!fired && compiled->states[active].during) {
      EvalStmts(compiled->states[active].during->stmts, env);
    }
    for (const auto& v : def.vars) st.vars[v.name] = env[v.name];
    for (const auto& o : def.outputs) st.vars[o.name] = env[o.name];
    for (std::size_t k = 0; k < def.outputs.size(); ++k) {
      Set(sys, b.id(), static_cast<int>(k),
          Cast(IVal::D(st.vars[def.outputs[k].name]), def.outputs[k].type));
    }
  }

  /// Simulation-engine bookkeeping: record every computed signal value of
  /// this step into the bounded ring (Simulink logs signal data while
  /// recording coverage; this is the corresponding cost on our side).
  void LogAllSignals() {
    std::vector<double> row;
    row.reserve(values_.size());
    for (const auto& [key, v] : values_) row.push_back(v.AsD());
    auto& log = interp_.full_log_;
    if (log.size() < Interpreter::kFullLogCapacity) {
      log.push_back(std::move(row));
    } else {
      log[interp_.full_log_next_ % Interpreter::kFullLogCapacity] = std::move(row);
      ++interp_.full_log_next_;
    }
  }

  Interpreter& interp_;
  const sched::ScheduledModel& sm_;
  coverage::CoverageSink* sink_;
  std::map<Key, IVal> values_;
};

Interpreter::Interpreter(const sched::ScheduledModel& sm, bool log_signals)
    : sm_(&sm), log_signals_(log_signals) {
  inputs_.resize(sm.InportTypes().size());
  outputs_.resize(sm.root->Outports().size());
  Reset();
}

void Interpreter::Reset() {
  state_.clear();
  signal_log_.clear();
}

void Interpreter::SetInputsFromBytes(const std::uint8_t* tuple) {
  std::size_t offset = 0;
  const auto types = sm_->InportTypes();
  for (std::size_t i = 0; i < types.size(); ++i) {
    inputs_[i] = ir::Value::FromBytes(types[i], tuple + offset);
    offset += ir::DTypeSize(types[i]);
  }
}

void Interpreter::SetInputs(std::span<const ir::Value> values) {
  const auto types = sm_->InportTypes();
  for (std::size_t i = 0; i < values.size() && i < inputs_.size(); ++i) {
    inputs_[i] = values[i].CastTo(types[i]);
  }
}

void Interpreter::Step(coverage::CoverageSink* sink) {
  Exec exec(*this, sink);
  exec.Run();
  if (log_signals_) {
    std::vector<double> row;
    row.reserve(outputs_.size());
    for (const auto& v : outputs_) row.push_back(v.AsDouble());
    signal_log_.push_back(std::move(row));
  }
}

ir::Value Interpreter::GetOutput(int index) const {
  return outputs_[static_cast<std::size_t>(index)];
}

}  // namespace cftcg::sim
