// Simulation-based test generation — the SimCoTest baseline substitute.
//
// SimCoTest (Matinnejad et al., ICSE'16) generates input *signal shapes*
// (constant / step / ramp / pulse / ...) for each inport, simulates the
// model, and uses meta-heuristic selection maximizing output-signal
// diversity. Our substitute follows the same design and — crucially for the
// paper's argument — runs on the *interpreter* (src/sim), so its throughput
// is simulation-bound, orders of magnitude below the compiled fuzzing loop.
#pragma once

#include "coverage/report.hpp"
#include "coverage/sink.hpp"
#include "fuzz/fuzzer.hpp"  // shared TestCase / CampaignResult / FuzzBudget
#include "sim/interpreter.hpp"
#include "support/rng.hpp"

namespace cftcg::simcotest {

enum class SignalShape { kConstant, kStep, kRamp, kPulse, kRandomWalk, kSpike };
inline constexpr int kNumSignalShapes = 6;

/// One inport's generated signal over the test horizon.
struct SignalProfile {
  SignalShape shape = SignalShape::kConstant;
  double base = 0;       // initial value
  double target = 0;     // step/ramp target, pulse amplitude
  int change_at = 0;     // step index of the discontinuity / pulse start
  int pulse_len = 1;
  /// Value at step k (horizon steps total).
  [[nodiscard]] double At(int k, Rng& walk_rng) const;
};

struct SimCoTestOptions {
  std::uint64_t seed = 1;
  int horizon = 50;           // simulation steps per generated test
  std::size_t archive_size = 32;  // diversity archive capacity
};

class SimCoTest {
 public:
  SimCoTest(const sched::ScheduledModel& sm, SimCoTestOptions options);

  fuzz::CampaignResult Run(const fuzz::FuzzBudget& budget);

  [[nodiscard]] const coverage::CoverageSink& sink() const { return sink_; }

 private:
  struct Features {
    std::vector<double> v;  // per-output: mean, range, direction changes, final
  };
  static double Distance(const Features& a, const Features& b);

  const sched::ScheduledModel* sm_;
  SimCoTestOptions options_;
  sim::Interpreter interp_;
  coverage::CoverageSink sink_;
  Rng rng_;
  std::vector<Features> archive_;
};

}  // namespace cftcg::simcotest
