#include "simcotest/simcotest.hpp"

#include <algorithm>
#include <cmath>

#include "obs/clock.hpp"

namespace cftcg::simcotest {

double SignalProfile::At(int k, Rng& walk_rng) const {
  switch (shape) {
    case SignalShape::kConstant: return base;
    case SignalShape::kStep: return k < change_at ? base : target;
    case SignalShape::kRamp: {
      if (change_at <= 0) return target;
      const double frac = std::min(1.0, static_cast<double>(k) / change_at);
      return base + (target - base) * frac;
    }
    case SignalShape::kPulse:
      return (k >= change_at && k < change_at + pulse_len) ? target : base;
    case SignalShape::kRandomWalk:
      return base + (target - base) * walk_rng.NextDouble();
    case SignalShape::kSpike: return k == change_at ? target : base;
  }
  return base;
}

SimCoTest::SimCoTest(const sched::ScheduledModel& sm, SimCoTestOptions options)
    : sm_(&sm), options_(options), interp_(sm, /*log_signals=*/true), sink_(sm.spec),
      rng_(options.seed) {}

double SimCoTest::Distance(const Features& a, const Features& b) {
  double sum = 0;
  const std::size_t n = std::min(a.v.size(), b.v.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a.v[i] - b.v[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

fuzz::CampaignResult SimCoTest::Run(const fuzz::FuzzBudget& budget) {
  fuzz::CampaignResult result;
  const obs::Stopwatch watch;  // obs::Clock: shared monotonic time source
  const auto in_types = sm_->InportTypes();
  const std::size_t fields = in_types.size();
  const std::size_t tuple_size = sm_->TupleSize();

  while (watch.Elapsed() < budget.wall_seconds && result.executions < budget.max_executions) {
    // Draw one signal profile per inport.
    std::vector<SignalProfile> profiles(fields);
    for (std::size_t f = 0; f < fields; ++f) {
      SignalProfile& p = profiles[f];
      p.shape = static_cast<SignalShape>(rng_.NextBelow(kNumSignalShapes));
      const ir::DType t = in_types[f];
      double lo = -100;
      double hi = 100;
      if (!ir::DTypeIsFloat(t)) {
        lo = static_cast<double>(std::max<std::int64_t>(ir::DTypeMin(t), -100000));
        hi = static_cast<double>(std::min<std::int64_t>(ir::DTypeMax(t), 100000));
      }
      p.base = rng_.NextDouble(lo, hi);
      p.target = rng_.NextDouble(lo, hi);
      p.change_at = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(options_.horizon)));
      p.pulse_len = 1 + static_cast<int>(rng_.NextBelow(8));
    }

    // Simulate (slow path). Coverage accumulates in the shared sink.
    interp_.Reset();
    interp_.ClearSignalLog();
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(options_.horizon) * tuple_size);
    bool found_new = false;
    std::size_t total_fresh = 0;
    std::vector<ir::Value> step_values(fields);
    for (int k = 0; k < options_.horizon; ++k) {
      std::vector<std::uint8_t> tuple(tuple_size);
      std::size_t offset = 0;
      for (std::size_t f = 0; f < fields; ++f) {
        const double raw = profiles[f].At(k, rng_);
        const ir::DType t = in_types[f];
        step_values[f] = ir::DTypeIsFloat(t)
                             ? ir::Value::Real(t, raw)
                             : ir::Value::Int(t, static_cast<std::int64_t>(raw));
        step_values[f].ToBytes(tuple.data() + offset);
        offset += ir::DTypeSize(t);
      }
      data.insert(data.end(), tuple.begin(), tuple.end());
      sink_.BeginIteration();
      interp_.SetInputs(step_values);
      interp_.Step(&sink_);
      ++result.model_iterations;
      const std::size_t fresh = sink_.AccumulateIteration();
      if (fresh > 0) {
        found_new = true;
        total_fresh += fresh;
      }
    }
    ++result.executions;

    if (found_new) {
      int covered = 0;
      for (int slot = 0; slot < sm_->spec.num_outcome_slots(); ++slot) {
        if (sink_.total().Test(static_cast<std::size_t>(slot))) ++covered;
      }
      result.test_cases.push_back(fuzz::TestCase{data, watch.Elapsed(), total_fresh, covered});
    }

    // Output-diversity archive (meta-heuristic selection): compute output
    // signal features and keep shapes that differ most from the archive.
    const auto& log = interp_.signal_log();
    if (!log.empty() && !log[0].empty()) {
      const std::size_t outs = log[0].size();
      Features feat;
      for (std::size_t o = 0; o < outs; ++o) {
        double mean = 0;
        double mn = log[0][o];
        double mx = log[0][o];
        int changes = 0;
        for (std::size_t k = 0; k < log.size(); ++k) {
          mean += log[k][o];
          mn = std::min(mn, log[k][o]);
          mx = std::max(mx, log[k][o]);
          if (k >= 2 && (log[k][o] - log[k - 1][o]) * (log[k - 1][o] - log[k - 2][o]) < 0) {
            ++changes;
          }
        }
        mean /= static_cast<double>(log.size());
        feat.v.push_back(mean);
        feat.v.push_back(mx - mn);
        feat.v.push_back(changes);
        feat.v.push_back(log.back()[o]);
      }
      double min_dist = 1e300;
      for (const auto& a : archive_) min_dist = std::min(min_dist, Distance(feat, a));
      if (archive_.size() < options_.archive_size) {
        archive_.push_back(std::move(feat));
      } else if (min_dist > 1.0) {
        archive_[rng_.NextIndex(archive_.size())] = std::move(feat);
      }
    }
  }

  result.elapsed_s = watch.Elapsed();
  result.report = coverage::ComputeReport(sink_);
  return result;
}

}  // namespace cftcg::simcotest
