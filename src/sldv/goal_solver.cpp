#include "sldv/goal_solver.hpp"

#include <algorithm>
#include <cmath>

#include "obs/clock.hpp"

namespace cftcg::sldv {

GoalSolver::GoalSolver(const vm::Program& program, const coverage::CoverageSpec& spec,
                       SolverOptions options)
    : program_(&program),
      spec_(&spec),
      options_(options),
      machine_(program),
      sink_(spec),
      rng_(options.seed) {
  margins_.Reset(spec);
  sink_.set_margin_recorder(&margins_);
  for (const auto t : program.input_types) {
    field_ranges_.push_back(Interval::OfType(t));
    field_is_float_.push_back(ir::DTypeIsFloat(t));
  }
  // Constraint-system size proxy: every decision contributes its outcomes
  // and conditions at every unrolled step.
  std::uint64_t per_step = 0;
  for (const auto& d : spec.decisions()) {
    per_step += static_cast<std::uint64_t>(d.num_outcomes) + d.conditions.size();
  }
  stats_.constraint_nodes = per_step * static_cast<std::uint64_t>(options.horizon);
}

std::vector<double> GoalSolver::RandomCandidate() {
  const std::size_t fields = field_ranges_.size();
  std::vector<double> c(static_cast<std::size_t>(options_.horizon) * fields);
  for (std::size_t k = 0; k < c.size(); ++k) {
    const Interval& r = field_ranges_[k % fields];
    if (field_is_float_[k % fields]) {
      c[k] = rng_.NextDouble(r.lo(), r.hi());
    } else {
      c[k] = static_cast<double>(
          rng_.NextInRange(static_cast<std::int64_t>(r.lo()), static_cast<std::int64_t>(r.hi())));
    }
  }
  return c;
}

std::vector<std::uint8_t> GoalSolver::Serialize(const std::vector<double>& candidate) const {
  const std::size_t fields = field_ranges_.size();
  std::vector<std::uint8_t> data;
  data.resize(static_cast<std::size_t>(options_.horizon) * program_->TupleSize());
  std::size_t offset = 0;
  for (std::size_t k = 0; k < candidate.size(); ++k) {
    const ir::DType t = program_->input_types[k % fields];
    ir::Value v = ir::DTypeIsFloat(t)
                      ? ir::Value::Real(t, candidate[k])
                      : ir::Value::Int(t, static_cast<std::int64_t>(candidate[k]));
    v.ToBytes(data.data() + offset);
    offset += ir::DTypeSize(t);
  }
  return data;
}

double GoalSolver::Evaluate(const std::vector<double>& candidate, coverage::DecisionId d,
                            int outcome, std::vector<std::size_t>* newly_covered) {
  const std::size_t fields = field_ranges_.size();
  machine_.Reset();
  margins_.ResetRun();
  ++stats_.runs;
  std::vector<ir::Value> step_values(fields);
  const int goal_slot = spec_->OutcomeSlot(d, outcome);
  bool reached = false;
  for (int step = 0; step < options_.horizon; ++step) {
    for (std::size_t f = 0; f < fields; ++f) {
      const ir::DType t = program_->input_types[f];
      const double raw = candidate[static_cast<std::size_t>(step) * fields + f];
      step_values[f] = ir::DTypeIsFloat(t) ? ir::Value::Real(t, raw)
                                           : ir::Value::Int(t, static_cast<std::int64_t>(raw));
    }
    sink_.BeginIteration();
    machine_.SetInputs(step_values);
    machine_.Step(&sink_);
    if (sink_.curr().Test(static_cast<std::size_t>(goal_slot))) reached = true;
    const std::size_t fresh = sink_.AccumulateIteration();
    if (fresh > 0 && newly_covered != nullptr) newly_covered->push_back(fresh);
  }
  if (reached) return 0.0;
  const double dist = margins_.Distance(d, outcome);
  // Flat distance for objectives without numeric margins: search degrades
  // to random restarts (realistic for boolean/structural objectives).
  return (dist >= coverage::MarginRecorder::kUnreached) ? 1e9 : dist;
}

void GoalSolver::SeedCoverage(const DynamicBitset& covered) {
  sink_.mutable_total().MergeAndCountNew(covered);
}

void GoalSolver::SeedInputRanges(const std::vector<Interval>& ranges) {
  for (std::size_t k = 0; k < field_ranges_.size() && k < ranges.size(); ++k) {
    if (ranges[k].empty()) continue;
    const Interval dtype_range = Interval::OfType(program_->input_types[k]);
    const Interval narrowed = ranges[k].Intersect(dtype_range);
    if (!narrowed.empty()) field_ranges_[k] = narrowed;
  }
}

fuzz::CampaignResult GoalSolver::Run(const fuzz::FuzzBudget& budget) {
  fuzz::CampaignResult result;
  const obs::Stopwatch watch;  // obs::Clock: shared monotonic time source

  // Objectives: every decision outcome.
  struct Goal {
    coverage::DecisionId d;
    int outcome;
  };
  std::vector<Goal> goals;
  for (const auto& d : spec_->decisions()) {
    for (int k = 0; k < d.num_outcomes; ++k) goals.push_back(Goal{d.id, k});
  }
  stats_.goals_total = goals.size();

  auto out_of_budget = [&] {
    return watch.Elapsed() >= budget.wall_seconds || stats_.runs >= budget.max_executions;
  };

  auto record_if_new = [&](const std::vector<double>& candidate, std::size_t fresh) {
    if (fresh == 0) return;
    int covered = 0;
    for (int slot = 0; slot < spec_->num_outcome_slots(); ++slot) {
      if (sink_.total().Test(static_cast<std::size_t>(slot))) ++covered;
    }
    result.test_cases.push_back(
        fuzz::TestCase{Serialize(candidate), watch.Elapsed(), fresh, covered});
  };

  bool progress = true;
  while (!out_of_budget() && progress) {
    progress = false;
    for (const auto& goal : goals) {
      if (out_of_budget()) break;
      const int slot = spec_->OutcomeSlot(goal.d, goal.outcome);
      if (sink_.total().Test(static_cast<std::size_t>(slot))) continue;  // already covered

      for (int restart = 0; restart < options_.restarts_per_goal && !out_of_budget(); ++restart) {
        std::vector<double> candidate = RandomCandidate();
        std::vector<std::size_t> fresh_list;
        double best = Evaluate(candidate, goal.d, goal.outcome, &fresh_list);
        for (auto fresh : fresh_list) record_if_new(candidate, fresh);
        if (best == 0.0) {
          progress = true;
          break;
        }
        // Alternating variable method with exponential pattern moves.
        int moves = 0;
        bool improved_any = true;
        while (improved_any && moves < options_.max_moves && !out_of_budget()) {
          improved_any = false;
          for (std::size_t var = 0; var < candidate.size() && moves < options_.max_moves; ++var) {
            const Interval& range = field_ranges_[var % field_ranges_.size()];
            for (const double direction : {1.0, -1.0}) {
              double delta = field_is_float_[var % field_ranges_.size()]
                                 ? std::max(1e-3, std::fabs(candidate[var]) * 1e-3)
                                 : 1.0;
              for (;;) {
                if (out_of_budget() || moves >= options_.max_moves) break;
                std::vector<double> next = candidate;
                next[var] = std::clamp(next[var] + direction * delta, range.lo(), range.hi());
                if (next[var] == candidate[var]) break;
                fresh_list.clear();
                const double score = Evaluate(next, goal.d, goal.outcome, &fresh_list);
                ++moves;
                for (auto fresh : fresh_list) record_if_new(next, fresh);
                if (score < best) {
                  best = score;
                  candidate = std::move(next);
                  improved_any = true;
                  delta *= 2;  // pattern move: accelerate while improving
                  if (best == 0.0) break;
                } else {
                  break;
                }
              }
              if (best == 0.0) break;
            }
            if (best == 0.0) break;
          }
          if (best == 0.0) break;
        }
        if (best == 0.0) {
          progress = true;
          break;
        }
      }
    }
    // One full sweep with zero newly covered goals: the solver has done what
    // its horizon permits; keep sweeping only while budget and progress last.
  }

  stats_.goals_covered = 0;
  for (const auto& goal : goals) {
    if (sink_.total().Test(static_cast<std::size_t>(spec_->OutcomeSlot(goal.d, goal.outcome)))) {
      ++stats_.goals_covered;
    }
  }
  result.executions = stats_.runs;
  result.model_iterations = stats_.runs * static_cast<std::uint64_t>(options_.horizon);
  result.elapsed_s = watch.Elapsed();
  result.report = coverage::ComputeReport(sink_);
  return result;
}

}  // namespace cftcg::sldv
