// Constraint-solving-style test generation — the SLDV baseline substitute.
//
// Simulink Design Verifier is closed source; we reproduce its *qualitative
// profile* as the paper characterizes it:
//   * it works goal-by-goal: each decision outcome / condition polarity is
//     a proof/solving objective;
//   * it unrolls the model's iterative execution a bounded number of steps
//     ("the constraint solver can only perform a limited loop unrolling"),
//     so objectives that need deep sequential state are out of reach;
//   * it is excellent at shallow arithmetic objectives (a solver treats a
//     numeric comparison exactly; our substitute uses recorded branch
//     margins + alternating-variable search, which converges on the same
//     objectives);
//   * its cost grows with the unrolled constraint system; we account for
//     that with an explicit constraint-node budget, mirroring the paper's
//     observation of SLDV exceeding 12 GB on SolarPV.
//
// Interval analysis (interval.hpp) seeds each input variable's search range
// from its declared type.
#pragma once

#include "coverage/report.hpp"
#include "coverage/sink.hpp"
#include "fuzz/fuzzer.hpp"  // TestCase / CampaignResult shapes are shared
#include "sldv/interval.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace cftcg::sldv {

struct SolverOptions {
  std::uint64_t seed = 1;
  /// Bounded unrolling horizon, in model iterations. Objectives needing
  /// longer input sequences are unreachable — the paper's SLDV limitation.
  int horizon = 6;
  /// AVM restarts per objective per sweep.
  int restarts_per_goal = 3;
  /// Local-search step limit per restart.
  int max_moves = 200;
};

struct SolverStats {
  std::uint64_t runs = 0;               // candidate executions
  std::uint64_t goals_total = 0;
  std::uint64_t goals_covered = 0;
  /// Size proxy for the unrolled constraint system (decisions x horizon x
  /// conditions); reported so resource blowup on state-heavy models is
  /// visible, mirroring SLDV's memory growth.
  std::uint64_t constraint_nodes = 0;
};

class GoalSolver {
 public:
  /// `program` must be lowered with model instrumentation AND margin
  /// recording (codegen::LoweringOptions{.record_margins = true}).
  GoalSolver(const vm::Program& program, const coverage::CoverageSpec& spec,
             SolverOptions options);

  fuzz::CampaignResult Run(const fuzz::FuzzBudget& budget);

  /// Pre-marks already-covered slots (hybrid mode: the paper's §6 future
  /// work of combining fuzzing with constraint solving). Goals whose slot
  /// is already set are skipped, so the solver spends its budget only on
  /// the fuzzer's residual objectives.
  void SeedCoverage(const DynamicBitset& covered);

  /// Narrows the per-field search ranges from externally computed interval
  /// analysis (the static analyzer's ModelAnalysis::inport_ranges): each
  /// provided range replaces the declared-dtype default after intersecting
  /// with it, so the alternating-variable search starts near the thresholds
  /// the model actually compares against. Empty or missing entries keep the
  /// dtype default.
  void SeedInputRanges(const std::vector<Interval>& ranges);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] const coverage::CoverageSink& sink() const { return sink_; }

 private:
  /// Runs one candidate (horizon tuples of field values); returns the
  /// margin-based distance to (decision, outcome), 0 when reached.
  double Evaluate(const std::vector<double>& candidate, coverage::DecisionId d, int outcome,
                  std::vector<std::size_t>* newly_covered);

  std::vector<double> RandomCandidate();
  std::vector<std::uint8_t> Serialize(const std::vector<double>& candidate) const;

  const vm::Program* program_;
  const coverage::CoverageSpec* spec_;
  SolverOptions options_;
  vm::Machine machine_;
  coverage::CoverageSink sink_;
  coverage::MarginRecorder margins_;
  Rng rng_;
  SolverStats stats_;
  std::vector<Interval> field_ranges_;  // per input field
  std::vector<bool> field_is_float_;
};

}  // namespace cftcg::sldv
