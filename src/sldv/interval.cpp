#include "sldv/interval.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace cftcg::sldv {

Interval Interval::OfType(ir::DType t) {
  if (ir::DTypeIsFloat(t)) return Interval(-1e6, 1e6);  // practical search range
  return Interval(static_cast<double>(ir::DTypeMin(t)), static_cast<double>(ir::DTypeMax(t)));
}

Interval Interval::Intersect(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  Interval r(std::max(lo_, o.lo_), std::min(hi_, o.hi_));
  return r;
}

Interval Interval::Union(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return Interval(std::min(lo_, o.lo_), std::max(hi_, o.hi_));
}

namespace {
double Sat(double v) {
  if (v > Interval::kInf) return Interval::kInf;
  if (v < -Interval::kInf) return -Interval::kInf;
  return std::isnan(v) ? 0 : v;
}
}  // namespace

Interval Interval::Add(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(Sat(lo_ + o.lo_), Sat(hi_ + o.hi_));
}

Interval Interval::Sub(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(Sat(lo_ - o.hi_), Sat(hi_ - o.lo_));
}

Interval Interval::Mul(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  const double a = Sat(lo_ * o.lo_);
  const double b = Sat(lo_ * o.hi_);
  const double c = Sat(hi_ * o.lo_);
  const double d = Sat(hi_ * o.hi_);
  return Interval(std::min(std::min(a, b), std::min(c, d)),
                  std::max(std::max(a, b), std::max(c, d)));
}

Interval Interval::Neg() const {
  if (empty()) return Interval();
  return Interval(-hi_, -lo_);
}

Interval Interval::Abs() const {
  if (empty()) return Interval();
  if (lo_ >= 0) return *this;
  if (hi_ <= 0) return Neg();
  return Interval(0, std::max(-lo_, hi_));
}

Interval Interval::Min(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(std::min(lo_, o.lo_), std::min(hi_, o.hi_));
}

Interval Interval::Max(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(std::max(lo_, o.lo_), std::max(hi_, o.hi_));
}

Interval Interval::Clamp(double lo, double hi) const {
  if (empty()) return Interval();
  return Interval(std::clamp(lo_, lo, hi), std::clamp(hi_, lo, hi));
}

Interval Interval::RefineLt(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  // this can be < o only when this < o.hi.
  return Intersect(Interval(-kInf, std::nexttoward(o.hi_, -kInf)));
}

Interval Interval::RefineLe(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(-kInf, o.hi_));
}

Interval Interval::RefineGt(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(std::nexttoward(o.lo_, kInf), kInf));
}

Interval Interval::RefineGe(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(o.lo_, kInf));
}

Interval Interval::RefineEq(const Interval& o) const { return Intersect(o); }

int Interval::AlwaysLt(const Interval& o) const {
  if (empty() || o.empty()) return -1;
  if (hi_ < o.lo_) return 1;
  if (lo_ >= o.hi_) return 0;
  return -1;
}

std::string Interval::ToString() const {
  if (empty()) return "[]";
  return StrFormat("[%s, %s]", DoubleToString(lo_).c_str(), DoubleToString(hi_).c_str());
}

}  // namespace cftcg::sldv
