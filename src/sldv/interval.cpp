#include "sldv/interval.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace cftcg::sldv {

Interval Interval::OfType(ir::DType t) {
  if (ir::DTypeIsFloat(t)) return Interval(-1e6, 1e6);  // practical search range
  return Interval(static_cast<double>(ir::DTypeMin(t)), static_cast<double>(ir::DTypeMax(t)));
}

Interval Interval::Intersect(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  Interval r(std::max(lo_, o.lo_), std::min(hi_, o.hi_));
  return r;
}

Interval Interval::Union(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return Interval(std::min(lo_, o.lo_), std::max(hi_, o.hi_));
}

namespace {
double Sat(double v) {
  if (v > Interval::kInf) return Interval::kInf;
  if (v < -Interval::kInf) return -Interval::kInf;
  return std::isnan(v) ? 0 : v;
}

// A bound sitting at +-kInf stands for "unbounded", not for the number
// 1e300: multiplying or dividing it by a finite factor must keep it pinned
// at the saturation limit, or a downstream comparison could treat the
// shrunken bound (e.g. kInf/2) as a real ceiling and prove too much.
double MulSat(double a, double b) {
  if (a == 0 || b == 0) return 0;
  if (std::fabs(a) >= Interval::kInf || std::fabs(b) >= Interval::kInf) {
    return (a > 0) == (b > 0) ? Interval::kInf : -Interval::kInf;
  }
  return Sat(a * b);
}

double DivSat(double n, double d) {  // d != 0 in every caller
  if (std::fabs(n) >= Interval::kInf) {
    return (n > 0) == (d > 0) ? Interval::kInf : -Interval::kInf;
  }
  return Sat(n / d);
}
}  // namespace

Interval Interval::Add(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(Sat(lo_ + o.lo_), Sat(hi_ + o.hi_));
}

Interval Interval::Sub(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(Sat(lo_ - o.hi_), Sat(hi_ - o.lo_));
}

Interval Interval::Mul(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  const double a = MulSat(lo_, o.lo_);
  const double b = MulSat(lo_, o.hi_);
  const double c = MulSat(hi_, o.lo_);
  const double d = MulSat(hi_, o.hi_);
  return Interval(std::min(std::min(a, b), std::min(c, d)),
                  std::max(std::max(a, b), std::max(c, d)));
}

Interval Interval::Div(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  // Divisor strictly one-signed: ordinary outward-rounded quotient hull.
  if (o.lo_ > 0 || o.hi_ < 0) {
    const double a = DivSat(lo_, o.lo_);
    const double b = DivSat(lo_, o.hi_);
    const double c = DivSat(hi_, o.lo_);
    const double d = DivSat(hi_, o.hi_);
    return Interval(std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d)));
  }
  // Divisor contains zero. The quotient is unbounded near the pole; the
  // only sound convex answers are half-lines (when the divisor touches
  // zero only from one side and the numerator is one-signed) or the whole
  // line. [0,0] divisors and zero-containing numerators get Whole().
  if (o.lo_ == 0 && o.hi_ == 0) return Whole();
  if (lo_ > 0) {
    if (o.lo_ == 0) return Interval(DivSat(lo_, o.hi_), kInf);   // divisor (0, hi]
    if (o.hi_ == 0) return Interval(-kInf, DivSat(lo_, o.lo_));  // divisor [lo, 0)
  } else if (hi_ < 0) {
    if (o.lo_ == 0) return Interval(-kInf, DivSat(hi_, o.hi_));
    if (o.hi_ == 0) return Interval(DivSat(hi_, o.lo_), kInf);
  }
  return Whole();
}

Interval Interval::Neg() const {
  if (empty()) return Interval();
  return Interval(-hi_, -lo_);
}

Interval Interval::Abs() const {
  if (empty()) return Interval();
  if (lo_ >= 0) return *this;
  if (hi_ <= 0) return Neg();
  return Interval(0, std::max(-lo_, hi_));
}

Interval Interval::Min(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(std::min(lo_, o.lo_), std::min(hi_, o.hi_));
}

Interval Interval::Max(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Interval(std::max(lo_, o.lo_), std::max(hi_, o.hi_));
}

Interval Interval::Clamp(double lo, double hi) const {
  if (empty()) return Interval();
  return Interval(std::clamp(lo_, lo, hi), std::clamp(hi_, lo, hi));
}

Interval Interval::RefineLt(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  // this can be < o only when this < o.hi.
  return Intersect(Interval(-kInf, std::nexttoward(o.hi_, -kInf)));
}

Interval Interval::RefineLe(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(-kInf, o.hi_));
}

Interval Interval::RefineGt(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(std::nexttoward(o.lo_, kInf), kInf));
}

Interval Interval::RefineGe(const Interval& o) const {
  if (empty() || o.empty()) return Interval();
  return Intersect(Interval(o.lo_, kInf));
}

Interval Interval::RefineEq(const Interval& o) const { return Intersect(o); }

int Interval::AlwaysLt(const Interval& o) const {
  if (empty() || o.empty()) return -1;
  if (hi_ < o.lo_) return 1;
  if (lo_ >= o.hi_) return 0;
  return -1;
}

int Interval::AlwaysLe(const Interval& o) const {
  if (empty() || o.empty()) return -1;
  if (hi_ <= o.lo_) return 1;
  if (lo_ > o.hi_) return 0;
  return -1;
}

int Interval::AlwaysEq(const Interval& o) const {
  if (empty() || o.empty()) return -1;
  if (lo_ == hi_ && o.lo_ == o.hi_ && lo_ == o.lo_) return 1;
  if (Intersect(o).empty()) return 0;
  return -1;
}

Interval Interval::Widen(const Interval& next) const {
  if (empty()) return next;
  if (next.empty()) return *this;
  return Interval(next.lo_ < lo_ ? -kInf : lo_, next.hi_ > hi_ ? kInf : hi_);
}

std::string Interval::ToString() const {
  if (empty()) return "[]";
  return StrFormat("[%s, %s]", DoubleToString(lo_).c_str(), DoubleToString(hi_).c_str());
}

}  // namespace cftcg::sldv
