// Interval arithmetic domain.
//
// Used by the constraint-solving baseline to derive search ranges for model
// inputs (forward propagation through the stateless cone of influence) and
// as the abstract domain for its bounded reachability reasoning. This is
// the "formal" ingredient of our SLDV substitute; the search ingredient is
// in goal_solver.hpp.
#pragma once

#include <algorithm>
#include <string>

#include "ir/dtype.hpp"

namespace cftcg::sldv {

/// Closed interval [lo, hi]; empty when lo > hi.
class Interval {
 public:
  Interval() = default;  // empty
  Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  static Interval Point(double v) { return Interval(v, v); }
  static Interval Whole() { return Interval(-kInf, kInf); }
  static Interval OfType(ir::DType t);

  [[nodiscard]] bool empty() const { return lo_ > hi_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double width() const { return empty() ? 0 : hi_ - lo_; }
  [[nodiscard]] bool Contains(double v) const { return !empty() && v >= lo_ && v <= hi_; }

  [[nodiscard]] Interval Intersect(const Interval& o) const;
  [[nodiscard]] Interval Union(const Interval& o) const;

  // Arithmetic (outward-safe on the reals; overflow saturates to +-inf).
  [[nodiscard]] Interval Add(const Interval& o) const;
  [[nodiscard]] Interval Sub(const Interval& o) const;
  [[nodiscard]] Interval Mul(const Interval& o) const;
  /// Outward-safe division. A divisor interval containing zero widens the
  /// result to cover the unbounded quotients near the pole (the whole line
  /// when the divisor straddles zero); [0,0] as divisor yields Whole(), not
  /// empty, because the runtime produces +-inf/NaN rather than trapping.
  [[nodiscard]] Interval Div(const Interval& o) const;
  [[nodiscard]] Interval Neg() const;
  [[nodiscard]] Interval Abs() const;
  [[nodiscard]] Interval Min(const Interval& o) const;
  [[nodiscard]] Interval Max(const Interval& o) const;
  /// Clamp into [lo, hi] (saturation block semantics).
  [[nodiscard]] Interval Clamp(double lo, double hi) const;

  // Relational refinement: the subset of *this that can satisfy
  // `this <op> o` for some value of o. Used for backward condition
  // propagation.
  [[nodiscard]] Interval RefineLt(const Interval& o) const;   // this < o
  [[nodiscard]] Interval RefineLe(const Interval& o) const;
  [[nodiscard]] Interval RefineGt(const Interval& o) const;
  [[nodiscard]] Interval RefineGe(const Interval& o) const;
  [[nodiscard]] Interval RefineEq(const Interval& o) const;

  /// Tri-state comparison outcome over the interval: 1 = always true,
  /// 0 = always false, -1 = undecided.
  [[nodiscard]] int AlwaysLt(const Interval& o) const;
  [[nodiscard]] int AlwaysLe(const Interval& o) const;
  [[nodiscard]] int AlwaysEq(const Interval& o) const;

  /// Classic widening: bounds that grew since *this jump straight to
  /// +-kInf so fixpoint iteration over loops/state terminates.
  [[nodiscard]] Interval Widen(const Interval& next) const;

  [[nodiscard]] std::string ToString() const;

  bool operator==(const Interval&) const = default;

  static constexpr double kInf = 1e300;

 private:
  double lo_ = 1;
  double hi_ = 0;  // default-constructed: empty
};

}  // namespace cftcg::sldv
