// Tests of the static model analyzer: interval fixpoint verdicts, lint
// diagnostics, justified-objective accounting, the analyzer-driven fuzzer
// features (early stop, boundary seeds), and the soundness property that no
// dynamically hit objective is ever proved unreachable.
#include <gtest/gtest.h>

#include <set>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "bench_models/bench_models.hpp"
#include "cftcg/pipeline.hpp"
#include "fuzz/fuzzer.hpp"
#include "ir/builder.hpp"
#include "obs/json.hpp"
#include "sldv/goal_solver.hpp"

namespace cftcg::analysis {
namespace {

using coverage::ObjectiveVerdict;
using ir::BlockKind;
using ir::DType;
using ir::ModelBuilder;

std::unique_ptr<CompiledModel> Compile(std::unique_ptr<ir::Model> model) {
  auto cm = CompiledModel::FromModel(std::move(model));
  EXPECT_TRUE(cm.ok()) << cm.message();
  return cm.take();
}

/// Finds the decision whose name contains `fragment`; fails the test when
/// absent.
const coverage::Decision* FindDecision(const coverage::CoverageSpec& spec,
                                       const std::string& fragment) {
  for (const auto& d : spec.decisions()) {
    if (d.name.find(fragment) != std::string::npos) return &d;
  }
  ADD_FAILURE() << "no decision matching '" << fragment << "'";
  return nullptr;
}

TEST(AnalyzerTest, ConstantSwitchProvesDeadBranch) {
  // The switch control is the constant 0 (< threshold 0.5), so the control
  // is definitely false: outcome 0 (take first input) can never happen.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kDouble);
  auto sw = mb.Switch(u, mb.Constant(0.0), mb.Constant(5.0), 0.5, "sel");
  mb.Outport("y", sw);
  auto cm = Compile(mb.Build());

  const ModelAnalysis& ma = cm->analysis();
  EXPECT_TRUE(ma.converged);
  const auto* d = FindDecision(cm->spec(), "sel");
  ASSERT_NE(d, nullptr);
  const int slot_true = cm->spec().OutcomeSlot(d->id, 0);
  const int slot_false = cm->spec().OutcomeSlot(d->id, 1);
  EXPECT_EQ(ma.justifications.SlotVerdict(slot_true), ObjectiveVerdict::kProvedUnreachable);
  EXPECT_FALSE(ma.justifications.SlotReason(slot_true).empty());
  // The surviving outcome is the decision's only behavior: trivial, but
  // coverable — it must NOT be excluded from the frontier.
  EXPECT_EQ(ma.justifications.SlotVerdict(slot_false), ObjectiveVerdict::kTriviallyConstant);
  EXPECT_FALSE(ma.justifications.SlotExcluded(slot_false));

  bool saw_lint = false;
  for (const auto& l : ma.lints) saw_lint |= l.check == "constant-switch";
  EXPECT_TRUE(saw_lint) << "expected a constant-switch lint";
}

TEST(AnalyzerTest, ClampedInputNeverSaturates) {
  // The upstream clamp bounds the signal to [0, 100]; the outer saturation
  // at [-5, 200] then never fires on either side (NaN would pass through to
  // the inside branch, so the pass-through outcome stays feasible).
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kDouble);
  auto clamped = mb.Saturation(u, 0.0, 100.0, "clamp");
  mb.Outport("y", mb.Saturation(clamped, -5.0, 200.0, "sat"));
  auto cm = Compile(mb.Build());

  const ModelAnalysis& ma = cm->analysis();
  ASSERT_TRUE(ma.converged);
  const auto* d = FindDecision(cm->spec(), "sat");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->num_outcomes, 3);
  EXPECT_TRUE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 0)));  // below
  EXPECT_FALSE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 1)));
  EXPECT_TRUE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 2)));  // above

  bool saw_lint = false;
  for (const auto& l : ma.lints) saw_lint |= l.check == "never-saturates";
  EXPECT_TRUE(saw_lint);
}

TEST(AnalyzerTest, WrappedIntegerLimitsProveMiddleDead) {
  // The interpreter wraps integer saturation limits to the block dtype:
  // for int8, -500 wraps to 12 and 500 wraps to -12, so lower > upper and
  // every input saturates — the pass-through outcome is genuinely dead at
  // runtime. The analyzer must mirror the wrap instead of reasoning about
  // the unreachable +-500 the model author wrote.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kInt8);
  mb.Outport("y", mb.Saturation(u, -500, 500, "sat"));
  auto cm = Compile(mb.Build());

  const ModelAnalysis& ma = cm->analysis();
  ASSERT_TRUE(ma.converged);
  const auto* d = FindDecision(cm->spec(), "sat");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->num_outcomes, 3);
  EXPECT_FALSE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 0)));
  EXPECT_TRUE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 1)));  // inside
  EXPECT_FALSE(ma.justifications.SlotExcluded(cm->spec().OutcomeSlot(d->id, 2)));

  bool saw_lint = false;
  for (const auto& l : ma.lints) saw_lint |= l.check == "always-saturating";
  EXPECT_TRUE(saw_lint);
}

TEST(AnalyzerTest, UnboundedInputsStayUnknown) {
  // A double inport spans the whole range (and may be NaN): both outcomes
  // of a plain comparison are feasible, so nothing may be justified.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kDouble);
  auto cmp = mb.Relational("gt", u, mb.Constant(10.0), "cmp");
  mb.Outport("y", mb.Switch(mb.Constant(1.0), cmp, mb.Constant(0.0), 0.5, "sel"));
  auto cm = Compile(mb.Build());

  const ModelAnalysis& ma = cm->analysis();
  EXPECT_TRUE(ma.converged);
  EXPECT_EQ(ma.justifications.NumExcluded(), 0U);
}

TEST(AnalyzerTest, DeadBlockLint) {
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kDouble);
  mb.Gain(u, 2.0, "unused");  // output connected to nothing
  mb.Outport("y", mb.Gain(u, 3.0, "used"));
  auto cm = Compile(mb.Build());

  bool saw = false;
  for (const auto& l : cm->analysis().lints) {
    if (l.check == "dead-block" && l.block.find("unused") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(AnalyzerTest, InportRangesCoverComparisonThresholds) {
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kDouble);
  auto cmp = mb.Relational("gt", u, mb.Constant(250.0), "cmp");
  mb.Outport("y", mb.Switch(mb.Constant(1.0), cmp, mb.Constant(0.0), 0.5, "sel"));
  auto cm = Compile(mb.Build());

  const ModelAnalysis& ma = cm->analysis();
  ASSERT_EQ(ma.inport_ranges.size(), 1U);
  // The heuristic range must straddle the threshold the inport feeds, so
  // boundary seeds / solver candidates can land on both sides of it.
  EXPECT_LT(ma.inport_ranges[0].lo(), 250.0);
  EXPECT_GT(ma.inport_ranges[0].hi(), 250.0);
}

TEST(AnalysisReportTest, JsonRoundTrips) {
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kInt8);
  mb.Outport("y", mb.Saturation(u, -500, 500, "sat"));
  auto cm = Compile(mb.Build());

  const std::string json = AnalysisReportJson(cm->scheduled(), cm->analysis());
  const auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.message() << "\n" << json;
  const obs::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.StringOr("model", ""), "m");
  const obs::JsonValue* converged = doc.Find("converged");
  ASSERT_NE(converged, nullptr);
  ASSERT_EQ(converged->kind, obs::JsonValue::Kind::kBool);
  EXPECT_TRUE(converged->boolean);
  const obs::JsonValue* objectives = doc.Find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->kind, obs::JsonValue::Kind::kArray);
  bool saw_unreachable = false;
  for (const auto& o : objectives->items) {
    if (o.StringOr("verdict", "") == "proved_unreachable") {
      saw_unreachable = true;
      EXPECT_FALSE(o.StringOr("reason", "").empty());
    }
  }
  EXPECT_TRUE(saw_unreachable);
  const obs::JsonValue* ranges = doc.Find("inport_ranges");
  ASSERT_NE(ranges, nullptr);
  EXPECT_EQ(ranges->items.size(), 1U);

  // The human rendering mentions the same verdict.
  const std::string text = FormatAnalysisReport(cm->scheduled(), cm->analysis());
  EXPECT_NE(text.find("proved_unreachable"), std::string::npos);
}

TEST(AnalyzerFuzzTest, JustificationsStopCampaignWhenFrontierExhausted) {
  // The wrapped int8 limits prove the pass-through outcome unreachable; the
  // two saturating outcomes are hit by the very first seeds, after which the
  // campaign must stop on its own long before the execution budget.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kInt8);
  mb.Outport("y", mb.Saturation(u, -500, 500, "sat"));
  auto cm = Compile(mb.Build());
  const ModelAnalysis& ma = cm->analysis();
  ASSERT_EQ(ma.justifications.NumExcluded(), 1U);

  fuzz::FuzzerOptions options;
  options.seed = 3;
  options.justifications = &ma.justifications;
  fuzz::Fuzzer fuzzer(cm->instrumented(), cm->spec(), options);
  fuzz::FuzzBudget budget;
  budget.wall_seconds = 30.0;
  budget.max_executions = 1'000'000;
  const auto result = fuzzer.Run(budget);
  EXPECT_LE(result.executions, options.seed_inputs + 16);
  // The report carries the justified counts and the adjusted percentages
  // reach 100% even though the raw denominators do not.
  EXPECT_EQ(result.report.outcome_justified, 1);
  EXPECT_LT(result.report.DecisionPct(), 100.0);
  EXPECT_DOUBLE_EQ(result.report.AdjustedDecisionPct(), 100.0);
}

TEST(AnalyzerFuzzTest, BoundarySeedsHitExactThreshold) {
  // u == 1234567 is effectively unreachable by random int32 mutation in a
  // small budget; a boundary seed range pinned to the value hits it in the
  // seed corpus.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kInt32);
  auto eq = mb.Relational("eq", u, mb.Constant(1234567, DType::kInt32), "eq");
  mb.Outport("y", mb.Switch(mb.Constant(1.0), eq, mb.Constant(0.0), 0.5, "sel"));
  auto cm = Compile(mb.Build());

  fuzz::FuzzerOptions options;
  options.seed = 5;
  options.boundary_seed_ranges.push_back(fuzz::FieldRange{1234567.0, 1234567.0, true});
  fuzz::Fuzzer fuzzer(cm->instrumented(), cm->spec(), options);
  fuzz::FuzzBudget budget;
  budget.wall_seconds = 10.0;
  budget.max_executions = 300;
  const auto result = fuzzer.Run(budget);
  EXPECT_EQ(result.report.outcome_covered, result.report.outcome_total)
      << "boundary seed should cover the == branch";
}

TEST(AnalyzerSolverTest, SeededInputRangePinsSolverCandidates) {
  // With the search range pinned to the exact value, every solver candidate
  // is 42 and the equality goal is covered immediately.
  ModelBuilder mb("m");
  auto u = mb.Inport("u", DType::kInt32);
  auto eq = mb.Relational("eq", u, mb.Constant(42, DType::kInt32), "eq");
  mb.Outport("y", mb.Switch(mb.Constant(1.0), eq, mb.Constant(0.0), 0.5, "sel"));
  auto cm = Compile(mb.Build());

  sldv::SolverOptions so;
  so.seed = 9;
  so.horizon = 2;
  sldv::GoalSolver solver(cm->with_margins(), cm->spec(), so);
  solver.SeedInputRanges({sldv::Interval(42.0, 42.0)});
  fuzz::FuzzBudget budget;
  budget.wall_seconds = 10.0;
  budget.max_executions = 200;
  const auto result = solver.Run(budget);
  // The comparison feeds the switch control, so it is a condition of the
  // switch's decision rather than a decision of its own; the == path is the
  // switch's outcome 0 (control true -> first input).
  const auto* d = FindDecision(cm->spec(), "sel");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(
      solver.sink().total().Test(static_cast<std::size_t>(cm->spec().OutcomeSlot(d->id, 0))));
}

// Soundness property over the whole benchmark suite: fuzz each model and
// check that no slot the campaign actually hit carries a proved-unreachable
// verdict. This is the analyzer's core contract — an unsound justification
// silently deflates the adjusted coverage denominator.
TEST(AnalyzerSoundnessTest, FuzzedCoverageNeverContradictsVerdicts) {
  std::size_t total_justified = 0;
  for (const auto& info : bench_models::Roster()) {
    auto model = bench_models::Build(info.name);
    ASSERT_TRUE(model.ok()) << info.name;
    auto cm = Compile(model.take());
    const ModelAnalysis& ma = cm->analysis();
    EXPECT_TRUE(ma.converged) << info.name;
    total_justified += ma.justifications.NumExcluded();

    fuzz::FuzzerOptions options;
    options.seed = 1234;
    fuzz::Fuzzer fuzzer(cm->instrumented(), cm->spec(), options);
    fuzz::FuzzBudget budget;
    budget.wall_seconds = 2.0;
    budget.max_executions = 30'000;
    fuzzer.Run(budget);

    const DynamicBitset& hit = fuzzer.sink().total();
    for (int slot = 0; slot < cm->spec().FuzzBranchCount(); ++slot) {
      if (!hit.Test(static_cast<std::size_t>(slot))) continue;
      EXPECT_FALSE(ma.justifications.SlotExcluded(slot))
          << info.name << " slot " << slot << " was hit by fuzzing but justified as '"
          << ma.justifications.SlotReason(slot) << "'";
    }
  }
  // The acceptance bar: at least one benchmark model has at least one
  // justified objective with a human-readable reason.
  EXPECT_GT(total_justified, 0U);
}

TEST(AnalyzerSoundnessTest, BenchModelJustificationsCarryReasons) {
  auto model = bench_models::Build("SolarPV");
  ASSERT_TRUE(model.ok());
  auto cm = Compile(model.take());
  const ModelAnalysis& ma = cm->analysis();
  std::size_t with_reason = 0;
  for (int slot = 0; slot < cm->spec().FuzzBranchCount(); ++slot) {
    if (!ma.justifications.SlotExcluded(slot)) continue;
    EXPECT_FALSE(ma.justifications.SlotReason(slot).empty());
    ++with_reason;
  }
  EXPECT_GT(with_reason, 0U);
}

// Determinism: analyzing the same model twice yields identical verdicts and
// ranges (the analyzer is pure; CompiledModel::analysis() caches it).
TEST(AnalyzerTest, DeterministicAcrossRuns) {
  auto m1 = bench_models::Build("TCP");
  auto m2 = bench_models::Build("TCP");
  ASSERT_TRUE(m1.ok() && m2.ok());
  auto cm1 = Compile(m1.take());
  auto cm2 = Compile(m2.take());
  const ModelAnalysis& a = cm1->analysis();
  const ModelAnalysis& b = cm2->analysis();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.inport_ranges.size(), b.inport_ranges.size());
  for (std::size_t i = 0; i < a.inport_ranges.size(); ++i) {
    EXPECT_EQ(a.inport_ranges[i].lo(), b.inport_ranges[i].lo());
    EXPECT_EQ(a.inport_ranges[i].hi(), b.inport_ranges[i].hi());
  }
  for (int slot = 0; slot < cm1->spec().FuzzBranchCount(); ++slot) {
    EXPECT_EQ(a.justifications.SlotVerdict(slot), b.justifications.SlotVerdict(slot)) << slot;
    EXPECT_EQ(a.justifications.SlotReason(slot), b.justifications.SlotReason(slot)) << slot;
  }
}

}  // namespace
}  // namespace cftcg::analysis
