#include <gtest/gtest.h>

#include "coverage/provenance.hpp"
#include "coverage/report.hpp"
#include "coverage/sink.hpp"
#include "coverage/spec.hpp"
#include "obs/json.hpp"

namespace cftcg::coverage {
namespace {

TEST(SpecTest, SlotLayout) {
  CoverageSpec spec;
  const auto d0 = spec.AddDecision("sw", 2);
  const auto d1 = spec.AddDecision("sat", 3);
  const auto c0 = spec.AddCondition("c0", d0);
  const auto c1 = spec.AddCondition("c1", d0);
  EXPECT_EQ(spec.num_outcome_slots(), 5);
  EXPECT_EQ(spec.OutcomeSlot(d0, 0), 0);
  EXPECT_EQ(spec.OutcomeSlot(d0, 1), 1);
  EXPECT_EQ(spec.OutcomeSlot(d1, 2), 4);
  EXPECT_EQ(spec.FuzzBranchCount(), 5 + 4);
  EXPECT_EQ(spec.ConditionTrueSlot(c0), 5);
  EXPECT_EQ(spec.ConditionFalseSlot(c0), 6);
  EXPECT_EQ(spec.ConditionTrueSlot(c1), 7);
  EXPECT_EQ(spec.decision(d0).conditions.size(), 2U);
  EXPECT_EQ(spec.condition(c1).index_in_decision, 1);
}

TEST(SinkTest, IterationLifecycle) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("d", 2);
  CoverageSink sink(spec);
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 0));
  EXPECT_EQ(sink.AccumulateIteration(), 1U);
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 0));
  EXPECT_EQ(sink.AccumulateIteration(), 0U);  // nothing new
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 1));
  EXPECT_EQ(sink.AccumulateIteration(), 1U);
  EXPECT_EQ(sink.total().Count(), 2U);
  sink.ResetCampaign();
  EXPECT_EQ(sink.total().Count(), 0U);
}

TEST(McdcPackTest, RoundTrip) {
  const std::uint64_t e = PackEval(0b101, 0b111, 1);
  EXPECT_EQ(EvalValues(e), 0b101U);
  EXPECT_EQ(EvalMask(e), 0b111U);
  EXPECT_EQ(EvalOutcome(e), 1);
}

TEST(McdcTest, AndGateIndependencePairs) {
  // a && b: evals (1,1)->1, (0,1)->0, (1,0)->0 show independence of both.
  std::unordered_set<std::uint64_t> evals;
  evals.insert(PackEval(0b11, 0b11, 1));
  evals.insert(PackEval(0b10, 0b11, 0));  // a=0,b=1
  evals.insert(PackEval(0b01, 0b11, 0));  // a=1,b=0
  EXPECT_TRUE(HasIndependencePair(evals, 0));
  EXPECT_TRUE(HasIndependencePair(evals, 1));
}

TEST(McdcTest, NoPairWhenOnlyOneOutcome) {
  std::unordered_set<std::uint64_t> evals;
  evals.insert(PackEval(0b11, 0b11, 1));
  evals.insert(PackEval(0b01, 0b11, 1));
  EXPECT_FALSE(HasIndependencePair(evals, 0));
}

TEST(McdcTest, MaskedShortCircuitCounts) {
  // a || b with short circuit: (a=1, b unevaluated) -> 1 and
  // (a=0, b=0) -> 0 demonstrates independence of a (b masked).
  std::unordered_set<std::uint64_t> evals;
  evals.insert(PackEval(0b01, 0b01, 1));  // only a evaluated
  evals.insert(PackEval(0b00, 0b11, 0));
  EXPECT_TRUE(HasIndependencePair(evals, 0));
  EXPECT_FALSE(HasIndependencePair(evals, 1));  // b never flipped the outcome
}

TEST(McdcTest, OtherConditionChangeInvalidatesPair) {
  // Outcome flip caused by BOTH conditions changing: no independence.
  std::unordered_set<std::uint64_t> evals;
  evals.insert(PackEval(0b11, 0b11, 1));
  evals.insert(PackEval(0b00, 0b11, 0));
  EXPECT_FALSE(HasIndependencePair(evals, 0));
  EXPECT_FALSE(HasIndependencePair(evals, 1));
}

TEST(ReportTest, ComputesPercentages) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("d", 2);
  const auto c = spec.AddCondition("c", d);
  CoverageSink sink(spec);
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 0));
  sink.Hit(spec.ConditionTrueSlot(c));
  sink.RecordEval(d, 0b1, 0b1, 1);
  sink.AccumulateIteration();

  auto report = ComputeReport(sink);
  EXPECT_EQ(report.outcome_total, 2);
  EXPECT_EQ(report.outcome_covered, 1);
  EXPECT_DOUBLE_EQ(report.DecisionPct(), 50.0);
  EXPECT_EQ(report.condition_polarity_total, 2);
  EXPECT_EQ(report.condition_polarity_covered, 1);
  EXPECT_EQ(report.mcdc_total, 1);
  EXPECT_EQ(report.mcdc_covered, 0);

  // Cover the other polarity + outcome with a flipping eval.
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 1));
  sink.Hit(spec.ConditionFalseSlot(c));
  sink.RecordEval(d, 0b0, 0b1, 0);
  sink.AccumulateIteration();
  report = ComputeReport(sink);
  EXPECT_DOUBLE_EQ(report.DecisionPct(), 100.0);
  EXPECT_DOUBLE_EQ(report.ConditionPct(), 100.0);
  EXPECT_DOUBLE_EQ(report.McdcPct(), 100.0);
}

TEST(ReportTest, EmptySpecIsFullyCovered) {
  CoverageSpec spec;
  CoverageSink sink(spec);
  const auto report = ComputeReport(sink);
  EXPECT_DOUBLE_EQ(report.DecisionPct(), 100.0);
  EXPECT_DOUBLE_EQ(report.McdcPct(), 100.0);
}

TEST(ReportTest, UncoveredOutcomesNamed) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("mysat", 3);
  CoverageSink sink(spec);
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 1));
  sink.AccumulateIteration();
  const auto uncovered = UncoveredOutcomes(spec, sink.total());
  ASSERT_EQ(uncovered.size(), 2U);
  EXPECT_EQ(uncovered[0], "mysat[0]");
  EXPECT_EQ(uncovered[1], "mysat[2]");
}

TEST(MarginTest, RecordsDistances) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("d", 2);
  MarginRecorder rec;
  rec.Reset(spec);
  EXPECT_EQ(rec.Distance(d, 0), MarginRecorder::kUnreached);
  rec.Record(d, 0, 1, 5.0);  // margin 5 -> outcome 0 reached, outcome 1 at distance 6
  EXPECT_EQ(rec.Distance(d, 0), 0.0);
  EXPECT_EQ(rec.Distance(d, 1), 6.0);
  rec.Record(d, 0, 1, -2.0);  // now outcome 1 reached; 0 at distance 2
  EXPECT_EQ(rec.Distance(d, 1), 0.0);
  EXPECT_EQ(rec.Distance(d, 0), 0.0);  // still 0 from earlier in the run
  rec.ResetRun();
  EXPECT_EQ(rec.Distance(d, 0), MarginRecorder::kUnreached);
}

TEST(MarginTest, DistanceShrinksMonotonically) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("d", 2);
  MarginRecorder rec;
  rec.Reset(spec);
  rec.Record(d, 0, 1, 10.0);
  EXPECT_EQ(rec.Distance(d, 1), 11.0);
  rec.Record(d, 0, 1, 3.0);  // closer observation shrinks the best distance
  EXPECT_EQ(rec.Distance(d, 1), 4.0);
  rec.Record(d, 0, 1, 8.0);  // a worse one must not grow it back
  EXPECT_EQ(rec.Distance(d, 1), 4.0);
}

TEST(ProvenanceTest, FirstHitAttributionSticks) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("sw", 2);
  const auto c = spec.AddCondition("sw.c", d);
  ProvenanceMap prov(spec);
  // 2 outcomes + 2 polarities + 1 MCDC condition.
  EXPECT_EQ(prov.num_objectives(), 5U);
  EXPECT_EQ(prov.num_covered(), 0U);

  DynamicBitset total(static_cast<std::size_t>(spec.FuzzBranchCount()));
  total.Set(static_cast<std::size_t>(spec.OutcomeSlot(d, 0)));
  total.Set(static_cast<std::size_t>(spec.ConditionTrueSlot(c)));
  auto fresh = prov.AttributeSlots(total, 7, 0.5, 3, "flip");
  EXPECT_EQ(fresh.size(), 2U);
  EXPECT_EQ(prov.num_covered(), 2U);

  // A later pass over a grown bitset only attributes the new slot; the
  // earlier first hits keep their original discoverer.
  total.Set(static_cast<std::size_t>(spec.OutcomeSlot(d, 1)));
  fresh = prov.AttributeSlots(total, 9, 1.0, 4, "rand");
  ASSERT_EQ(fresh.size(), 1U);
  const ObjectiveFirstHit& h = prov.hits()[fresh[0]];
  EXPECT_EQ(h.kind, ObjectiveKind::kDecisionOutcome);
  EXPECT_EQ(h.name, "sw");
  EXPECT_EQ(h.outcome, 1);
  EXPECT_EQ(h.iteration, 9U);
  EXPECT_EQ(h.entry_id, 4);
  EXPECT_EQ(h.chain, "rand");
  EXPECT_EQ(prov.hits()[0].iteration, 7U);
  EXPECT_EQ(prov.hits()[0].entry_id, 3);
  EXPECT_EQ(prov.hits()[0].chain, "flip");
}

TEST(ProvenanceTest, McdcAttributedOncePerCondition) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("gate", 2);
  const auto a = spec.AddCondition("a", d);
  const auto b = spec.AddCondition("b", d);
  ProvenanceMap prov(spec);

  std::unordered_set<std::uint64_t> evals;
  evals.insert(PackEval(0b11, 0b11, 1));
  evals.insert(PackEval(0b10, 0b11, 0));  // only `a` flipped -> pair for a
  auto fresh = prov.AttributeMcdc(d, evals, 5, 0.1, 2, "flip");
  ASSERT_EQ(fresh.size(), 1U);
  EXPECT_EQ(prov.hits()[fresh[0]].kind, ObjectiveKind::kMcdcPair);
  EXPECT_EQ(prov.hits()[fresh[0]].condition, a);

  // Same eval set again: nothing new to attribute.
  EXPECT_TRUE(prov.AttributeMcdc(d, evals, 6, 0.2, 3, "rand").empty());

  evals.insert(PackEval(0b01, 0b11, 0));  // now b has a pair too
  fresh = prov.AttributeMcdc(d, evals, 8, 0.3, 4, "rand");
  ASSERT_EQ(fresh.size(), 1U);
  EXPECT_EQ(prov.hits()[fresh[0]].condition, b);
  EXPECT_EQ(prov.hits()[fresh[0]].entry_id, 4);
}

TEST(ProvenanceTest, ToJsonParsesBack) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("blk \"q\"/sw", 2);
  ProvenanceMap prov(spec);
  DynamicBitset total(static_cast<std::size_t>(spec.FuzzBranchCount()));
  total.Set(static_cast<std::size_t>(spec.OutcomeSlot(d, 1)));
  prov.AttributeSlots(total, 3, 0.25, 0, "seed");

  const auto parsed = obs::ParseJson(prov.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  const obs::JsonValue& v = parsed.value();
  EXPECT_EQ(v.NumberOr("covered", -1), 1);
  EXPECT_EQ(v.NumberOr("total", -1), 2);
  const obs::JsonValue* objectives = v.Find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->items.size(), 1U);
  EXPECT_EQ(objectives->items[0].StringOr("name", ""), "blk \"q\"/sw");
  EXPECT_EQ(objectives->items[0].StringOr("chain", ""), "seed");
  EXPECT_EQ(objectives->items[0].NumberOr("iter", -1), 3);
}

TEST(ProvenanceTest, ResidualNamesMatchSpec) {
  CoverageSpec spec;
  const auto d = spec.AddDecision("blk/sat", 3);
  CoverageSink sink(spec);
  sink.BeginIteration();
  sink.Hit(spec.OutcomeSlot(d, 1));
  sink.AccumulateIteration();

  MarginRecorder rec;
  rec.Reset(spec);
  rec.Record(d, 1, 0, 1.5);  // outcome 1 reached; outcome 0 at distance 1.5+1

  const auto residuals = ResidualDiagnostics(spec, sink.total(), &rec);
  ASSERT_EQ(residuals.size(), 2U);
  EXPECT_EQ(residuals[0].name, "blk/sat[0]");
  EXPECT_EQ(residuals[0].outcome, 0);
  EXPECT_EQ(residuals[0].distance, 2.5);
  EXPECT_EQ(residuals[1].name, "blk/sat[2]");
  EXPECT_EQ(residuals[1].distance, MarginRecorder::kUnreached);
}

TEST(ProvenanceTest, ResidualWithoutMarginsIsUnreached) {
  CoverageSpec spec;
  spec.AddDecision("d", 2);
  CoverageSink sink(spec);
  const auto residuals = ResidualDiagnostics(spec, sink.total(), nullptr);
  ASSERT_EQ(residuals.size(), 2U);
  for (const auto& r : residuals) {
    EXPECT_EQ(r.distance, MarginRecorder::kUnreached);
  }
}

}  // namespace
}  // namespace cftcg::coverage
